(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as text tables) and times the toolflow's stages
   with Bechamel.

   Usage:
     main.exe            run every experiment, then the timing suite
     main.exe quick      same with fewer noise trajectories (CI-friendly)
     main.exe <id>       one experiment: fig1 fig2 fig3 tab1 fig5 fig6 fig7
                         fig8 fig9 fig10 fig11 fig12 scaling related
     main.exe timings    only the Bechamel timing suite *)

module E = Bench_kit.Experiments

let experiments : (string * (?trajectories:int -> unit -> unit)) list =
  [
    ("fig1", fun ?trajectories () -> ignore trajectories; E.print_fig1 ());
    ("fig2", fun ?trajectories () -> ignore trajectories; E.print_fig2 ());
    ("fig3", fun ?trajectories () -> ignore trajectories; E.print_fig3 ());
    ("tab1", fun ?trajectories () -> ignore trajectories; E.print_tab1 ());
    ("fig5", fun ?trajectories () -> ignore trajectories; E.print_fig5 ());
    ("fig6", fun ?trajectories () -> ignore trajectories; E.print_fig6 ());
    ("fig7", fun ?trajectories () -> ignore trajectories; E.print_fig7 ());
    ("fig8", fun ?trajectories () -> ignore trajectories; E.print_fig8 ());
    ("fig9", fun ?trajectories () -> E.print_fig9 ?trajectories ());
    ("fig10", fun ?trajectories () -> E.print_fig10 ?trajectories ());
    ("fig11", fun ?trajectories () -> E.print_fig11 ?trajectories ());
    ("fig12", fun ?trajectories () -> E.print_fig12 ?trajectories ());
    ("scaling", fun ?trajectories () -> ignore trajectories; E.print_scaling ());
    ("related", fun ?trajectories () -> ignore trajectories; E.print_related ());
    ("ablation", fun ?trajectories () -> ignore trajectories;
                 E.print_ablation_mapper (); E.print_ablation_peephole ());
    ("iontrap", fun ?trajectories () -> E.print_iontrap ?trajectories ());
    ("tannu", fun ?trajectories () -> E.print_tannu ?trajectories ());
    ("coherence", fun ?trajectories () -> ignore trajectories; E.print_coherence ());
    ("characterize", fun ?trajectories () -> ignore trajectories; E.print_characterize ());
    ("routing", fun ?trajectories () -> E.print_ablation_routing ?trajectories ());
    ("staleness", fun ?trajectories () -> E.print_staleness ?trajectories ());
    ("esp", fun ?trajectories () -> E.print_esp_correlation ?trajectories ());
    ("lookahead", fun ?trajectories () -> E.print_ablation_lookahead ?trajectories ());
    ("heavyhex", fun ?trajectories () -> E.print_heavyhex ?trajectories ());
    ("properties", fun ?trajectories () -> ignore trajectories;
                   E.print_properties Device.Machines.ibmq14;
                   E.print_properties Device.Machines.umdti);
    ("summary", fun ?trajectories () -> E.print_summary ?trajectories ());
    ("report", fun ?trajectories () ->
       print_string (Bench_kit.Report.generate ?trajectories ()));
    ("variability", fun ?trajectories () -> E.print_variability ?trajectories ());
    ("parametric", fun ?trajectories () -> E.print_parametric ?trajectories ());
    ("noisemodel", fun ?trajectories () -> E.print_noise_model ?trajectories ());
    ("ghz", fun ?trajectories () -> E.print_ghz ?trajectories ());
  ]

(* ---------- Bechamel timing suite: one Test.make per experiment ---------- *)

let timing_tests =
  let open Bechamel in
  let quick_traj = 20 in
  let staged name f = Test.make ~name (Staged.stage f) in
  [
    staged "fig1:device-table" (fun () -> ignore (E.fig1_rows ()));
    staged "fig2:gate-sets" (fun () -> ignore (E.fig2_rows ()));
    staged "fig3:calibration-series" (fun () -> ignore (E.fig3_series ()));
    staged "tab1:compiler-table" (fun () -> ignore (E.tab1_rows ()));
    staged "fig5:bv4-ir" (fun () -> ignore (Bench_kit.Programs.bv 4));
    staged "fig6:reliability-matrix" (fun () ->
        ignore
          (Triq.Reliability.of_calibration ~noise_aware:true
             Device.Machines.example_8q.Device.Machine.topology
             Device.Machines.example_8q_calibration));
    staged "fig7:benchmark-table" (fun () -> ignore (E.fig7_rows ()));
    staged "fig8:pulse-counts" (fun () -> ignore (E.fig8_data ()));
    staged "fig9:1q-opt-success" (fun () ->
        ignore (E.fig9_data ~trajectories:quick_traj ()));
    staged "fig10:comm-opt" (fun () ->
        ignore (E.fig10_counts ());
        ignore (E.fig10_success ~trajectories:quick_traj ()));
    staged "fig11:noise-adaptivity" (fun () ->
        ignore (E.fig11_counts ());
        ignore (E.fig11_sequences ~trajectories:quick_traj ()));
    staged "fig12:cross-platform" (fun () ->
        ignore (E.fig12_data ~trajectories:quick_traj ()));
    staged "scaling:supremacy-72q" (fun () ->
        ignore (E.scaling_data ~node_budget:5_000 ~depth:8 ()));
    staged "related:zulehner" (fun () -> ignore (E.related_data ()));
    staged "ablation:mapper-objective" (fun () ->
        ignore (E.ablation_mapper_data ~node_budget:50_000 ()));
    staged "ablation:peephole" (fun () -> ignore (E.ablation_peephole_data ()));
    staged "ext:iontrap" (fun () -> ignore (E.iontrap_data ~trajectories:quick_traj ()));
    staged "ext:tannu-six-days" (fun () ->
        ignore (E.tannu_data ~trajectories:quick_traj ()));
    staged "ext:coherence" (fun () -> ignore (E.coherence_data ()));
    staged "ext:characterize" (fun () -> ignore (E.characterize_data ()));
    staged "ablation:routing" (fun () ->
        ignore (E.ablation_routing_data ~trajectories:quick_traj ()));
    staged "ext:staleness" (fun () ->
        ignore (E.staleness_data ~trajectories:quick_traj ~days:3 ()));
    staged "ext:esp-correlation" (fun () ->
        ignore (E.esp_correlation_data ~trajectories:quick_traj ()));
    staged "ablation:lookahead-routing" (fun () ->
        ignore (E.ablation_lookahead_data ~trajectories:quick_traj ()));
  ]

let run_timings () =
  let open Bechamel in
  print_newline ();
  print_endline "== Bechamel timing suite (per-experiment harness cost) ==";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun (name, elt) ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates result with
          | Some [ ns ] -> Printf.printf "%-28s %12.0f ns/run\n%!" name ns
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        (List.map (fun elt -> (Test.Elt.name elt, elt)) (Test.elements test)))
    timing_tests

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "timings" ] -> run_timings ()
  | _ :: [ "quick" ] ->
    List.iter
      (fun ((_, f) : string * (?trajectories:int -> unit -> unit)) ->
        f ~trajectories:50 ())
      experiments
  | _ :: [ name ] -> (
    match List.assoc_opt name experiments with
    | Some (f : ?trajectories:int -> unit -> unit) -> f ()
    | None ->
      Printf.eprintf "unknown experiment %S; known: %s timings quick\n" name
        (String.concat " " (List.map fst experiments));
      exit 2)
  | _ ->
    List.iter
      (fun ((_, f) : string * (?trajectories:int -> unit -> unit)) -> f ())
      experiments;
    run_timings ()
