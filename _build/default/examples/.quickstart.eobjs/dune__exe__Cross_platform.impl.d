examples/cross_platform.ml: Backend Bench_kit Device List Printf Sim Triq
