examples/custom_device.ml: Bench_kit Characterize Device List Printf Sim Triq
