examples/error_budget.ml: Bench_kit Device Ir List Printf Sim Triq
