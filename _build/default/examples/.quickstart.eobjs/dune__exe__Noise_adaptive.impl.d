examples/noise_adaptive.ml: Array Bench_kit Device List Mathkit Printf Sim String Triq
