examples/noise_adaptive.mli:
