examples/pulse_level.ml: Bench_kit Device List Printf Pulse Triq
