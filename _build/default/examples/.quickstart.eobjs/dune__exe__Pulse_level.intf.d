examples/pulse_level.mli:
