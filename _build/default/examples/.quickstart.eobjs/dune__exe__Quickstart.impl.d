examples/quickstart.ml: Backend Device Format Ir List Printf Scaffold Sim Triq
