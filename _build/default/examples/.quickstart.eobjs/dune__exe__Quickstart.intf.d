examples/quickstart.mli:
