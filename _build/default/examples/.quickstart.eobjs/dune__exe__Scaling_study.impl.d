examples/scaling_study.ml: Bench_kit Device List Printf Sys Triq
