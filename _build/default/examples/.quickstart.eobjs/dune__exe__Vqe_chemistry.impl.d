examples/vqe_chemistry.ml: Array Device Float Ir List Printf Sim Triq
