examples/vqe_chemistry.mli:
