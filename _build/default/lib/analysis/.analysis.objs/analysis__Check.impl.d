lib/analysis/check.ml: Array Device Diag Float Hashtbl Ir List String
