lib/analysis/check.mli: Device Diag Ir
