lib/analysis/diag.ml: Buffer Char Format List Printexc Printf Stdlib String
