lib/analysis/scaffold_lint.ml: Diag Fun Hashtbl List Scaffold
