lib/analysis/scaffold_lint.mli: Diag Scaffold
