(** Source-level lints for Scaffold programs.

    The linter replays the lowering's execution-order event trace
    ({!Scaffold.Lower.lower_traced}) — which survives mid-lowering
    failures — so it reports on partially-invalid programs too. Rules:

    - [scf.parse] (error): the source does not parse.
    - [scf.invalid] (error): lowering rejected the program — out-of-range
      register index, unknown register or gate, repeated operands, a
      qubit measured twice, ...
    - [scf.use-after-measure] (error): a gate touches a qubit after that
      qubit was measured.
    - [scf.unused-register] (warning): a declared register none of whose
      qubits is ever gated or measured.
    - [scf.never-gated] (warning): a qubit is measured but no gate ever
      acts on it (its readout is a constant).
    - [scf.no-measure] (warning): the program measures nothing. *)

val catalog : (string * string) list

(** Lint a parsed program. Diagnostics are sorted ({!Diag.compare}). *)
val lint_ast : Scaffold.Ast.t -> Diag.t list

(** Parse and lint; a parse error becomes a single [scf.parse]
    diagnostic. *)
val lint_source : string -> Diag.t list

(** [lint_file path] reads, parses and lints. Raises [Sys_error] only. *)
val lint_file : string -> Diag.t list
