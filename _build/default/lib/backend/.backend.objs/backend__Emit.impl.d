lib/backend/emit.ml: Device Qasm_emit Quil_emit Ti_emit Triq
