lib/backend/emit.mli: Triq
