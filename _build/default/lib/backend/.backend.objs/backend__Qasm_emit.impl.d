lib/backend/qasm_emit.ml: Buffer Device Ir List Printf Triq
