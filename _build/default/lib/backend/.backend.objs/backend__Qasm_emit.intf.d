lib/backend/qasm_emit.mli: Ir Triq
