lib/backend/qasm_parse.ml: Ir List Printf String
