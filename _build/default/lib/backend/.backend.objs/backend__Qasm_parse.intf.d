lib/backend/qasm_parse.mli: Ir
