lib/backend/quil_emit.ml: Buffer Device Ir List Printf Triq
