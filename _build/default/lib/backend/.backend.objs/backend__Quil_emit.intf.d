lib/backend/quil_emit.mli: Ir Triq
