lib/backend/quil_parse.ml: Float Ir List Printf String
