lib/backend/quil_parse.mli: Ir
