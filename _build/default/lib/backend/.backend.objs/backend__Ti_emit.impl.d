lib/backend/ti_emit.ml: Buffer Device Ir List Printf Triq
