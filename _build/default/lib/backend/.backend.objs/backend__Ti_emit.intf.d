lib/backend/ti_emit.mli: Ir Triq
