lib/backend/ti_parse.ml: Ir List Printf String
