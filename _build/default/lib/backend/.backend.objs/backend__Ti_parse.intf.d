lib/backend/ti_parse.mli: Ir
