let executable (compiled : Triq.Compiled.t) =
  match compiled.Triq.Compiled.machine.Device.Machine.basis with
  | Device.Gateset.Ibm_visible -> Qasm_emit.emit compiled
  | Device.Gateset.Rigetti_visible | Device.Gateset.Rigetti_parametric_visible ->
    Quil_emit.emit compiled
  | Device.Gateset.Umd_visible -> Ti_emit.emit compiled

let format_name (compiled : Triq.Compiled.t) =
  match compiled.Triq.Compiled.machine.Device.Machine.basis with
  | Device.Gateset.Ibm_visible -> "OpenQASM 2.0"
  | Device.Gateset.Rigetti_visible | Device.Gateset.Rigetti_parametric_visible -> "Quil"
  | Device.Gateset.Umd_visible -> "UMD TI ASM"
