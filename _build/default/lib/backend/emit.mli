(** Vendor-dispatching code generation: the last stage of Figure 4.

    "IBM OpenQASM / Rigetti Quil / UMD TI ASM" — chosen by the target
    machine's gate interface. *)

(** [executable compiled] is the executable text in the target machine's
    native format. *)
val executable : Triq.Compiled.t -> string

(** [format_name compiled] names the emitted format ("OpenQASM 2.0",
    "Quil", "UMD TI ASM"). *)
val format_name : Triq.Compiled.t -> string
