let angle fmt_buf a = Buffer.add_string fmt_buf (Printf.sprintf "%.17g" a)

let render buf ~n_qubits ~header (gates : Ir.Gate.t list) =
  Buffer.add_string buf "OPENQASM 2.0;\n";
  Buffer.add_string buf "include \"qelib1.inc\";\n";
  Buffer.add_string buf header;
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" n_qubits);
  let n_measures = List.length (List.filter Ir.Gate.is_measure gates) in
  if n_measures > 0 then Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" n_measures);
  let next_cbit = ref 0 in
  List.iter
    (fun g ->
      (match (g : Ir.Gate.t) with
      | One (U1 l, q) ->
        Buffer.add_string buf "u1(";
        angle buf l;
        Buffer.add_string buf (Printf.sprintf ") q[%d];" q)
      | One (U2 (p, l), q) ->
        Buffer.add_string buf "u2(";
        angle buf p;
        Buffer.add_string buf ",";
        angle buf l;
        Buffer.add_string buf (Printf.sprintf ") q[%d];" q)
      | One (U3 (t, p, l), q) ->
        Buffer.add_string buf "u3(";
        angle buf t;
        Buffer.add_string buf ",";
        angle buf p;
        Buffer.add_string buf ",";
        angle buf l;
        Buffer.add_string buf (Printf.sprintf ") q[%d];" q)
      | Two (Cnot, a, b) -> Buffer.add_string buf (Printf.sprintf "cx q[%d],q[%d];" a b)
      | Measure q ->
        Buffer.add_string buf (Printf.sprintf "measure q[%d] -> c[%d];" q !next_cbit);
        incr next_cbit
      | other ->
        invalid_arg
          (Printf.sprintf "Qasm_emit: gate %s is not IBM software-visible"
             (Ir.Gate.to_string other)));
      Buffer.add_char buf '\n')
    gates

let emit_circuit ~n_qubits ~name (c : Ir.Circuit.t) =
  let buf = Buffer.create 1024 in
  render buf ~n_qubits ~header:(Printf.sprintf "// %s\n" name) c.Ir.Circuit.gates;
  Buffer.contents buf

let emit (compiled : Triq.Compiled.t) =
  if compiled.Triq.Compiled.machine.Device.Machine.basis <> Device.Gateset.Ibm_visible
  then invalid_arg "Qasm_emit.emit: executable is not in IBM form";
  let header =
    Printf.sprintf "// target: %s, compiler: %s, calibration day %d\n"
      compiled.Triq.Compiled.machine.Device.Machine.name
      compiled.Triq.Compiled.compiler compiled.Triq.Compiled.day
  in
  let buf = Buffer.create 1024 in
  render buf
    ~n_qubits:(Device.Machine.n_qubits compiled.Triq.Compiled.machine)
    ~header compiled.Triq.Compiled.hardware.Ir.Circuit.gates;
  Buffer.contents buf

let emit_program ~name (c : Ir.Circuit.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "// %s\n" name);
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" c.Ir.Circuit.n_qubits);
  let n_measures = Ir.Circuit.measure_count c in
  if n_measures > 0 then
    Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" n_measures);
  let next_cbit = ref 0 in
  let q i = Printf.sprintf "q[%d]" i in
  let line s = Buffer.add_string buf (s ^ ";\n") in
  let rec emit_gate (g : Ir.Gate.t) =
    match g with
    | One (X, a) -> line (Printf.sprintf "x %s" (q a))
    | One (Y, a) -> line (Printf.sprintf "y %s" (q a))
    | One (Z, a) -> line (Printf.sprintf "z %s" (q a))
    | One (H, a) -> line (Printf.sprintf "h %s" (q a))
    | One (S, a) -> line (Printf.sprintf "s %s" (q a))
    | One (Sdg, a) -> line (Printf.sprintf "sdg %s" (q a))
    | One (T, a) -> line (Printf.sprintf "t %s" (q a))
    | One (Tdg, a) -> line (Printf.sprintf "tdg %s" (q a))
    | One (Rx t, a) -> line (Printf.sprintf "rx(%.17g) %s" t (q a))
    | One (Ry t, a) -> line (Printf.sprintf "ry(%.17g) %s" t (q a))
    | One (Rz t, a) -> line (Printf.sprintf "rz(%.17g) %s" t (q a))
    | One (U1 l, a) -> line (Printf.sprintf "u1(%.17g) %s" l (q a))
    | One (U2 (p, l), a) -> line (Printf.sprintf "u2(%.17g,%.17g) %s" p l (q a))
    | One (U3 (t, p, l), a) ->
      line (Printf.sprintf "u3(%.17g,%.17g,%.17g) %s" t p l (q a))
    | One (Rxy (t, p), a) ->
      (* Rxy(t, p) = Rz(p) . Rx(t) . Rz(-p) as a matrix product: apply
         Rz(-p) first in circuit order. *)
      emit_gate (Ir.Gate.One (Ir.Gate.Rz (-.p), a));
      emit_gate (Ir.Gate.One (Ir.Gate.Rx t, a));
      emit_gate (Ir.Gate.One (Ir.Gate.Rz p, a))
    | Two (Cnot, a, b) -> line (Printf.sprintf "cx %s,%s" (q a) (q b))
    | Two (Cz, a, b) -> line (Printf.sprintf "cz %s,%s" (q a) (q b))
    | Two (Swap, a, b) -> line (Printf.sprintf "swap %s,%s" (q a) (q b))
    | Two (Xx chi, a, b) -> List.iter emit_gate (Ir.Decompose.xx_gates chi a b)
    | Two (Iswap, a, b) -> List.iter emit_gate (Ir.Decompose.iswap a b)
    | Ccx (a, b, t) -> line (Printf.sprintf "ccx %s,%s,%s" (q a) (q b) (q t))
    | Cswap (cc, a, b) -> line (Printf.sprintf "cswap %s,%s,%s" (q cc) (q a) (q b))
    | Measure a ->
      line (Printf.sprintf "measure %s -> c[%d]" (q a) !next_cbit);
      incr next_cbit
  in
  List.iter emit_gate c.Ir.Circuit.gates;
  Buffer.contents buf
