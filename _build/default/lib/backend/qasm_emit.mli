(** OpenQASM 2.0 code generation (the IBM executable format).

    Emits the software-visible IBM gate set only (u1/u2/u3/cx + measure);
    the compiled circuit must therefore be in [Ibm_visible] form. Classical
    bits follow the readout map's order, so bit [i] of the result register
    is measured program qubit number [i]. *)

(** [emit compiled] renders an OpenQASM 2.0 program. Raises
    [Invalid_argument] when the executable is not IBM-form. *)
val emit : Triq.Compiled.t -> string

(** [emit_circuit ~n_qubits ~name circuit] renders a bare hardware circuit
    (measures map to classical bits in program order) — used by tests and
    the round-trip checks. *)
val emit_circuit : n_qubits:int -> name:string -> Ir.Circuit.t -> string

(** [emit_program ~name circuit] renders a *program-level* IR circuit as
    portable OpenQASM 2.0 using the qelib1 vocabulary (h, x, rz, cx, ccx,
    ...), decomposing gates qelib1 lacks (Rxy, XX, iSWAP) into it. The
    measured qubits map to classical bits in gate order. Round-trips
    through {!Qasm.Frontend} with identical semantics (tested). *)
val emit_program : name:string -> Ir.Circuit.t -> string
