(** Parser for the OpenQASM 2.0 subset {!Qasm_emit} produces (u1/u2/u3,
    cx, measure). Used for round-trip testing of the code generator and
    for re-importing emitted executables. *)

exception Error of string * int
(** [Error (message, line_number)] *)

type program = {
  n_qubits : int;
  circuit : Ir.Circuit.t;
  readout : (int * int) list;  (** classical bit -> hardware qubit *)
}

val parse : string -> program
