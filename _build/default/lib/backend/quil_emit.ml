let render ~name (gates : Ir.Gate.t list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" name);
  let measures = List.filter Ir.Gate.is_measure gates in
  if measures <> [] then
    Buffer.add_string buf (Printf.sprintf "DECLARE ro BIT[%d]\n" (List.length measures));
  let next_cbit = ref 0 in
  List.iter
    (fun g ->
      (match (g : Ir.Gate.t) with
      | One (Rz theta, q) -> Buffer.add_string buf (Printf.sprintf "RZ(%.17g) %d" theta q)
      | One (Rx theta, q) -> Buffer.add_string buf (Printf.sprintf "RX(%.17g) %d" theta q)
      | Two (Cz, a, b) -> Buffer.add_string buf (Printf.sprintf "CZ %d %d" a b)
      | Two (Iswap, a, b) -> Buffer.add_string buf (Printf.sprintf "ISWAP %d %d" a b)
      | Measure q ->
        Buffer.add_string buf (Printf.sprintf "MEASURE %d ro[%d]" q !next_cbit);
        incr next_cbit
      | other ->
        invalid_arg
          (Printf.sprintf "Quil_emit: gate %s is not Rigetti software-visible"
             (Ir.Gate.to_string other)));
      Buffer.add_char buf '\n')
    gates;
  Buffer.contents buf

let emit_circuit ~name (c : Ir.Circuit.t) = render ~name c.Ir.Circuit.gates

let emit (compiled : Triq.Compiled.t) =
  (match compiled.Triq.Compiled.machine.Device.Machine.basis with
  | Device.Gateset.Rigetti_visible | Device.Gateset.Rigetti_parametric_visible -> ()
  | _ -> invalid_arg "Quil_emit.emit: executable is not in Rigetti form");
  render
    ~name:
      (Printf.sprintf "target: %s, compiler: %s, calibration day %d"
         compiled.Triq.Compiled.machine.Device.Machine.name
         compiled.Triq.Compiled.compiler compiled.Triq.Compiled.day)
    compiled.Triq.Compiled.hardware.Ir.Circuit.gates
