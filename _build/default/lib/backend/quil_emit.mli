(** Quil code generation (the Rigetti executable format).

    Emits the Rigetti software-visible set only (RZ, RX(+-pi/2), CZ,
    MEASURE); the compiled circuit must be in [Rigetti_visible] form. *)

(** [emit compiled] renders a Quil program. *)
val emit : Triq.Compiled.t -> string

(** [emit_circuit ~name circuit] renders a bare hardware circuit. *)
val emit_circuit : name:string -> Ir.Circuit.t -> string
