(** Parser for the Quil subset {!Quil_emit} produces (RZ, RX, CZ,
    DECLARE/MEASURE). Used for round-trip testing and for re-importing
    emitted executables. *)

exception Error of string * int
(** [Error (message, line_number)] *)

type program = {
  circuit : Ir.Circuit.t;
      (** over qubits 0..max mentioned; gate order preserved *)
  readout : (int * int) list;  (** classical bit -> hardware qubit *)
}

val parse : string -> program
