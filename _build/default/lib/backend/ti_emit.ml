let render ~name (gates : Ir.Gate.t list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "; %s\n" name);
  List.iter
    (fun g ->
      (match (g : Ir.Gate.t) with
      | One (Rxy (theta, phi), q) ->
        Buffer.add_string buf (Printf.sprintf "R   %d %.17g %.17g" q theta phi)
      | One (Rz lambda, q) -> Buffer.add_string buf (Printf.sprintf "RZ  %d %.17g" q lambda)
      | Two (Xx chi, a, b) ->
        Buffer.add_string buf (Printf.sprintf "XX  %d %d %.17g" a b chi)
      | Measure q -> Buffer.add_string buf (Printf.sprintf "MEAS %d" q)
      | other ->
        invalid_arg
          (Printf.sprintf "Ti_emit: gate %s is not UMD software-visible"
             (Ir.Gate.to_string other)));
      Buffer.add_char buf '\n')
    gates;
  Buffer.contents buf

let emit_circuit ~name (c : Ir.Circuit.t) = render ~name c.Ir.Circuit.gates

let emit (compiled : Triq.Compiled.t) =
  if compiled.Triq.Compiled.machine.Device.Machine.basis <> Device.Gateset.Umd_visible
  then invalid_arg "Ti_emit.emit: executable is not in UMD form";
  render
    ~name:
      (Printf.sprintf "target: %s, compiler: %s, calibration day %d"
         compiled.Triq.Compiled.machine.Device.Machine.name
         compiled.Triq.Compiled.compiler compiled.Triq.Compiled.day)
    compiled.Triq.Compiled.hardware.Ir.Circuit.gates
