(** UMD trapped-ion low-level assembly generation.

    The UMD machine is driven by a lab-internal pulse assembly; the paper
    targets "a special low-level assembly code syntax". We emit the same
    information in a documented textual form:

    {v
    ; comment
    R   <ion> <theta> <phi>     Rxy(theta, phi) rotation pulse
    RZ  <ion> <lambda>          virtual Z frame update (error-free)
    XX  <ion> <ion> <chi>       Ising interaction
    MEAS <ion>                  state-dependent fluorescence readout
    v}

    The compiled circuit must be in [Umd_visible] form. *)

val emit : Triq.Compiled.t -> string

val emit_circuit : name:string -> Ir.Circuit.t -> string
