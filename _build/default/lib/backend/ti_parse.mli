(** Parser for the UMD trapped-ion assembly {!Ti_emit} produces
    (R/RZ/XX/MEAS). Used for round-trip testing. *)

exception Error of string * int
(** [Error (message, line_number)] *)

type program = {
  circuit : Ir.Circuit.t;  (** over ions 0..max mentioned *)
  measured : int list;  (** ions read out, in program order *)
}

val parse : string -> program
