lib/baselines/common.ml: Array Device Ir List Sys Triq
