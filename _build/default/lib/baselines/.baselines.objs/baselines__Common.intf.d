lib/baselines/common.mli: Device Ir Triq
