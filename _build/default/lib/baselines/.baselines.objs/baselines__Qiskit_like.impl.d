lib/baselines/qiskit_like.ml: Array Common Device Ir List Mathkit Sys Triq
