lib/baselines/qiskit_like.mli: Device Ir Triq
