lib/baselines/quil_like.ml: Array Common Device Ir List Sys Triq
