lib/baselines/quil_like.mli: Device Ir Triq
