lib/baselines/zulehner_like.ml: Array Common Device Ir List Sys Triq
