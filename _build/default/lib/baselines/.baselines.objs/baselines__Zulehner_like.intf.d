lib/baselines/zulehner_like.mli: Device Ir Triq
