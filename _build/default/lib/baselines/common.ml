module Machine = Device.Machine
module Topology = Device.Topology

let finalize machine ~compiler ~day ~program ~initial_placement ~routed
    ~final_placement ~swap_count ~started_at =
  let topology = machine.Machine.topology in
  let expanded = Triq.Translate.expand_swaps routed in
  let flipped_cnots = Triq.Direction.flipped_count topology expanded in
  let oriented = Triq.Direction.fix topology expanded in
  let visible = Triq.Translate.two_q_to_visible machine.Machine.basis oriented in
  let hardware = Triq.Oneq_opt.optimize machine.Machine.basis visible in
  let readout_map =
    List.map (fun p -> (p, final_placement.(p))) (Ir.Circuit.measured_qubits program)
  in
  Triq.Compiled.make ~machine ~compiler ~day ~hardware ~initial_placement
    ~final_placement ~readout_map ~swap_count ~flipped_cnots
    ~compile_time_s:(Sys.time () -. started_at)

let hop_distances topology =
  let n = Topology.n_qubits topology in
  Array.init n (fun src ->
      Array.init n (fun dst ->
          match Topology.hop_distance topology src dst with
          | d -> d
          | exception Not_found -> max_int / 2))
