(** Shared back-end for the baseline compilers: once a baseline has placed
    and routed a program, the remaining stages (SWAP expansion, CNOT
    orientation repair, translation to the software-visible gate set, 1Q
    coalescing) are identical, and handled here through the TriQ passes. *)

(** [finalize machine ~compiler ~day ~program ~initial_placement ~routed
    ~final_placement ~swap_count ~started_at] completes compilation of a
    routed hardware circuit and packages it as an executable. [program] is
    the flattened program-level circuit (used for the readout map);
    [started_at] is the [Sys.time] value when the baseline started, for
    compile-time reporting. *)
val finalize :
  Device.Machine.t ->
  compiler:string ->
  day:int ->
  program:Ir.Circuit.t ->
  initial_placement:int array ->
  routed:Ir.Circuit.t ->
  final_placement:int array ->
  swap_count:int ->
  started_at:float ->
  Triq.Compiled.t

(** [hop_distances topology] is the all-pairs hop-count matrix. *)
val hop_distances : Device.Topology.t -> int array array
