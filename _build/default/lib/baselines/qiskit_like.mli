(** Reimplementation of the IBM Qiskit 0.6 compiler behaviour the paper
    compares against (Section 6.3): a lexicographic (identity) initial
    layout — "it always uses the first few qubits in the device regardless
    of noise" — plus greedy stochastic swap insertion that moves the two
    operands toward each other along hop-distance gradients with random
    tie-breaking. One-qubit gates are merged into U gates as Qiskit did.
    Entirely noise-unaware. *)

(** [compile ?day ?seed machine circuit] compiles a program circuit.
    [seed] drives the stochastic tie-breaking (default 1). *)
val compile :
  ?day:int -> ?seed:int -> Device.Machine.t -> Ir.Circuit.t -> Triq.Compiled.t
