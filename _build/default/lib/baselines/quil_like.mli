(** Reimplementation of the Rigetti Quil 1.9 (quilc) compiler behaviour
    the paper compares against: a trivial initial qubit mapping with
    "insufficient communication optimization and no noise-awareness" —
    non-adjacent 2Q operands are brought together along a shortest hop
    path and swapped back home after the gate, so qubits never migrate and
    repeated interactions pay the full routing cost every time. One-qubit
    gates are compressed into the Rz/Rx basis as quilc did. *)

val compile : ?day:int -> Device.Machine.t -> Ir.Circuit.t -> Triq.Compiled.t
