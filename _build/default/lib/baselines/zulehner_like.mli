(** Hop-minimizing mapper in the style of Zulehner, Paler and Wille
    (Section 8's related-work comparison): a locality-greedy initial
    placement (each program qubit lands on the free hardware qubit
    minimizing total hop distance to its already-placed partners) followed
    by persistent shortest-hop routing. Noise-unaware by construction. *)

val compile : ?day:int -> Device.Machine.t -> Ir.Circuit.t -> Triq.Compiled.t
