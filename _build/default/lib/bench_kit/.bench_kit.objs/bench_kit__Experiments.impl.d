lib/bench_kit/experiments.ml: Baselines Characterize Device Float Format Fun Ir List Mathkit Option Printf Programs Pulse Sequences Sim String Supremacy Sys Table Triq
