lib/bench_kit/experiments.mli: Device Triq
