lib/bench_kit/programs.ml: Float Ir List Printf Sim String
