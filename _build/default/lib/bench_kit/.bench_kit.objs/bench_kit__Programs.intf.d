lib/bench_kit/programs.mli: Ir
