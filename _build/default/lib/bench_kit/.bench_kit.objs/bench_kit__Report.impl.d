lib/bench_kit/report.ml: Buffer Device Experiments List Mathkit Option Printf Table
