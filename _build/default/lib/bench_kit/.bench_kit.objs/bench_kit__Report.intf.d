lib/bench_kit/report.mli:
