lib/bench_kit/scaffold_sources.ml: List Printf
