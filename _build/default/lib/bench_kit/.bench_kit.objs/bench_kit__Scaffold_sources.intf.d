lib/bench_kit/scaffold_sources.mli:
