lib/bench_kit/sequences.ml: Ir List Printf Programs
