lib/bench_kit/sequences.mli: Programs
