lib/bench_kit/supremacy.ml: Array Float Ir List Mathkit
