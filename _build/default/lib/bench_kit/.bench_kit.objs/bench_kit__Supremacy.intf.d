lib/bench_kit/supremacy.mli: Ir
