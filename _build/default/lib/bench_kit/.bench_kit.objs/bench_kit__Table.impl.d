lib/bench_kit/table.ml: Array Buffer List Printf String
