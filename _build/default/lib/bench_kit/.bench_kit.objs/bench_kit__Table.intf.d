lib/bench_kit/table.mli:
