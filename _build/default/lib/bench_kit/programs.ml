open Ir.Gate

type t = {
  name : string;
  description : string;
  circuit : Ir.Circuit.t;
  spec : Ir.Spec.t;
}

(* Benchmarks are deterministic; derive the expected bitstring from a
   noiseless simulation so the spec can never drift from the circuit. *)
let make name description n gates ~measured =
  let body = Ir.Circuit.create n gates in
  let circuit = Ir.Circuit.measure_all body measured in
  let spec =
    match Sim.Runner.ideal_distribution body ~measured with
    | (bits, p) :: _ when p > 0.99 -> Ir.Spec.deterministic measured bits
    | (bits, p) :: _ ->
      failwith
        (Printf.sprintf "Programs.%s: output not deterministic (%s has p=%.3f)"
           name bits p)
    | [] -> failwith "Programs.make: empty distribution"
  in
  { name; description; circuit; spec }

let custom ~name ~description ~n gates ~measured = make name description n gates ~measured

let check_bits name s =
  String.iter
    (function '0' | '1' -> () | _ -> invalid_arg (name ^ ": pattern must be 0/1"))
    s

let bv_with_string s =
  check_bits "Programs.bv_with_string" s;
  let data = String.length s in
  let n = data + 1 in
  let anc = data in
  let gates =
    [ One (X, anc) ]
    @ List.init n (fun q -> One (H, q))
    @ List.concat
        (List.init data (fun q ->
             if s.[q] = '1' then [ Two (Cnot, q, anc) ] else []))
    @ List.init data (fun q -> One (H, q))
  in
  make
    (Printf.sprintf "BV%d" n)
    (Printf.sprintf "Bernstein-Vazirani, hidden string %s" s)
    n gates
    ~measured:(List.init data (fun q -> q))

let bv n =
  if n < 2 then invalid_arg "Programs.bv: need at least 2 qubits";
  bv_with_string (String.make (n - 1) '1')

(* Hidden shift for the Maiorana-McFarland bent function
   f(x) = x0 x1 + x2 x3 + ... (its dual is itself): H^n, shifted oracle,
   H^n, oracle, H^n recovers the shift. *)
let hidden_shift_with s =
  check_bits "Programs.hidden_shift_with" s;
  let n = String.length s in
  if n < 2 || n mod 2 = 1 then
    invalid_arg "Programs.hidden_shift_with: length must be even and >= 2";
  let h_all = List.init n (fun q -> One (H, q)) in
  let x_shift =
    List.concat (List.init n (fun q -> if s.[q] = '1' then [ One (X, q) ] else []))
  in
  let oracle = List.init (n / 2) (fun i -> Two (Cz, 2 * i, (2 * i) + 1)) in
  let gates = h_all @ x_shift @ oracle @ x_shift @ h_all @ oracle @ h_all in
  make
    (Printf.sprintf "HS%d" n)
    (Printf.sprintf "Hidden shift, pattern %s" s)
    n gates
    ~measured:(List.init n (fun q -> q))

let hidden_shift n = hidden_shift_with (String.make n '1')

let toffoli =
  make "Toffoli" "Toffoli gate on |110>" 3
    [ One (X, 0); One (X, 1); Ccx (0, 1, 2) ]
    ~measured:[ 0; 1; 2 ]

let fredkin =
  make "Fredkin" "Controlled swap on |110>" 3
    [ One (X, 0); One (X, 1); Cswap (0, 1, 2) ]
    ~measured:[ 0; 1; 2 ]

let or_gate =
  make "Or" "Logical OR of 1,0 into a target" 3
    (One (X, 0) :: Ir.Decompose.logical_or 0 1 2)
    ~measured:[ 0; 1; 2 ]

let peres =
  make "Peres" "Peres gate on |110>" 3
    ([ One (X, 0); One (X, 1) ] @ Ir.Decompose.peres 0 1 2)
    ~measured:[ 0; 1; 2 ]

(* Controlled phase from CNOTs and virtual-Z rotations. *)
let cphase theta a b =
  [
    One (Rz (theta /. 2.0), a);
    One (Rz (theta /. 2.0), b);
    Two (Cnot, a, b);
    One (Rz (-.theta /. 2.0), b);
    Two (Cnot, a, b);
  ]

let qft_inverse_gates n =
  (* Textbook inverse QFT (reversed forward QFT with negated phases),
     without the final bit-reversal swaps — the preparation step below
     already encodes the integer in the matching bit order. *)
  List.concat
    (List.init n (fun idx ->
         let i = n - 1 - idx in
         let phases =
           List.concat
             (List.init (n - 1 - i) (fun jdx ->
                  let j = n - 1 - jdx in
                  let theta = -.Float.pi /. Float.of_int (1 lsl (j - i)) in
                  cphase theta j i))
         in
         phases @ [ One (H, i) ]))

let qft n =
  if n < 2 then invalid_arg "Programs.qft: need at least 2 qubits";
  (* Prepare the Fourier state of k, then invert the QFT to recover |k>. *)
  let k = (1 lsl (n - 1)) + 1 in
  let prepare =
    (* The swap-less inverse QFT expects qubit i to carry the phase
       2 pi k / 2^(n-i) (bit-reversed relative to the textbook form). *)
    List.concat
      (List.init n (fun i ->
           let theta =
             2.0 *. Float.pi *. Float.of_int k /. Float.of_int (1 lsl (n - i))
           in
           [ One (H, i); One (Rz theta, i) ]))
  in
  make
    (Printf.sprintf "QFT%d" n)
    (Printf.sprintf "Inverse QFT recovering |%d>" k)
    n
    (prepare @ qft_inverse_gates n)
    ~measured:(List.init n (fun i -> i))

(* One-bit Cuccaro ripple-carry adder: qubits (cin, a, b, cout), inputs
   a = b = 1, cin = 0; after MAJ / carry-out / UMA, b holds the sum and
   cout the carry. *)
let adder =
  let cin = 0 and a = 1 and b = 2 and cout = 3 in
  make "Adder" "1-bit Cuccaro adder computing 1+1+0" 4
    [
      One (X, a); One (X, b);
      (* MAJ *)
      Two (Cnot, a, b); Two (Cnot, a, cin); Ccx (cin, b, a);
      (* carry out *)
      Two (Cnot, a, cout);
      (* UMA *)
      Ccx (cin, b, a); Two (Cnot, a, cin); Two (Cnot, cin, b);
    ]
    ~measured:[ cin; a; b; cout ]

let custom_distribution ~name ~description ~n gates ~measured =
  let body = Ir.Circuit.create n gates in
  let dist = Sim.Runner.ideal_distribution body ~measured in
  {
    name;
    description;
    circuit = Ir.Circuit.measure_all body measured;
    spec = Ir.Spec.distribution measured dist;
  }

let ghz n =
  if n < 2 then invalid_arg "Programs.ghz: need at least 2 qubits";
  let gates =
    One (H, 0) :: List.init (n - 1) (fun i -> Two (Cnot, i, i + 1))
  in
  let measured = List.init n (fun q -> q) in
  let body = Ir.Circuit.create n gates in
  let spec =
    Ir.Spec.distribution measured
      [ (String.make n '0', 0.5); (String.make n '1', 0.5) ]
  in
  {
    name = Printf.sprintf "GHZ%d" n;
    description = Printf.sprintf "%d-qubit GHZ state (half 0s, half 1s)" n;
    circuit = Ir.Circuit.measure_all body measured;
    spec;
  }

let grover2 =
  let diffusion =
    [ One (H, 0); One (H, 1); One (X, 0); One (X, 1); Two (Cz, 0, 1);
      One (X, 0); One (X, 1); One (H, 0); One (H, 1) ]
  in
  make "Grover2" "Two-qubit Grover search for |11>" 2
    ([ One (H, 0); One (H, 1); Two (Cz, 0, 1) ] @ diffusion)
    ~measured:[ 0; 1 ]

let grover3 iterations =
  if iterations < 1 then invalid_arg "Programs.grover3: need at least one iteration";
  let h_all = List.init 3 (fun q -> One (H, q)) in
  let x_all = List.init 3 (fun q -> One (X, q)) in
  (* CCZ = H on the target around a Toffoli. *)
  let ccz = [ One (H, 2); Ccx (0, 1, 2); One (H, 2) ] in
  let oracle = ccz in
  let diffusion = h_all @ x_all @ ccz @ x_all @ h_all in
  let round = oracle @ diffusion in
  custom_distribution
    ~name:(Printf.sprintf "Grover3-x%d" iterations)
    ~description:(Printf.sprintf "3-qubit Grover for |111>, %d iteration(s)" iterations)
    ~n:3
    (h_all @ List.concat (List.init iterations (fun _ -> round)))
    ~measured:[ 0; 1; 2 ]

let all =
  [
    bv 4; bv 6; bv 8;
    hidden_shift 2; hidden_shift 4; hidden_shift 6;
    toffoli; fredkin; or_gate; peres;
    qft 4; adder;
  ]

let extras = [ ghz 3; ghz 5; grover2; grover3 2 ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun b -> String.lowercase_ascii b.name = target) (all @ extras)
