(** The benchmark programs of the study (Figure 7).

    Twelve programs drawn from prior NISQ evaluation work: three
    Bernstein-Vazirani instances, three Hidden Shift instances, the
    Toffoli, Fredkin, Or and Peres gates, a Quantum Fourier Transform and
    a ripple-carry adder. Every benchmark is deterministic: its spec is
    the single correct output bitstring, obtained by noiseless simulation
    (and cross-checked against the algorithm's known answer in tests). *)

type t = {
  name : string;
  description : string;
  circuit : Ir.Circuit.t;  (** program-level circuit with measures *)
  spec : Ir.Spec.t;
}

(** [bv n] is Bernstein-Vazirani on [n] qubits ([n-1] data + 1 ancilla)
    with the all-ones hidden string; the paper uses BV4, BV6, BV8. *)
val bv : int -> t

(** [bv_with_string s] is BV with hidden string [s] (chars '0'/'1'; the
    data-qubit count is [String.length s]). *)
val bv_with_string : string -> t

(** [hidden_shift n] is the Hidden Shift algorithm for the
    Maiorana-McFarland bent function on [n] qubits ([n] even) with the
    all-ones shift; the paper uses HS2, HS4, HS6. *)
val hidden_shift : int -> t

(** [hidden_shift_with s] uses shift pattern [s] (length must be even). *)
val hidden_shift_with : string -> t

val toffoli : t
val fredkin : t
val or_gate : t
val peres : t

(** [qft n] prepares the Fourier state of a fixed integer and applies the
    inverse QFT, giving a deterministic output. The paper's QFT instance
    fits the 4-qubit Agave machine. *)
val qft : int -> t

(** A 1-bit Cuccaro ripple-carry adder on 4 qubits computing 1+1+0. *)
val adder : t

(** [custom ~name ~description ~n gates ~measured] packages an arbitrary
    deterministic circuit as a benchmark, deriving its spec by noiseless
    simulation; raises [Failure] when the output distribution is not
    (essentially) a single bitstring. *)
val custom :
  name:string -> description:string -> n:int -> Ir.Gate.t list -> measured:int list -> t

(** [custom_distribution ~name ~description ~n gates ~measured] packages a
    circuit whose correct output is its full noiseless distribution —
    for benchmarks without a single deterministic answer. *)
val custom_distribution :
  name:string -> description:string -> n:int -> Ir.Gate.t list -> measured:int list -> t

(** [ghz n] prepares an n-qubit GHZ state; its spec is the *distribution*
    {00..0: 1/2, 11..1: 1/2} — exercising non-deterministic
    specifications. Not part of the paper's 12. *)
val ghz : int -> t

(** [grover2] is two-qubit Grover search for |11> (one oracle + one
    diffusion round finds it with certainty). Not part of the paper's
    12. *)
val grover2 : t

(** The paper's 12 benchmarks, in Figure 7 order:
    BV4 BV6 BV8 HS2 HS4 HS6 Toffoli Fredkin Or Peres QFT Adder. *)
val all : t list

(** [grover3 iterations] is 3-qubit Grover search for |111> using
    CCZ oracles; 2 iterations reach ~94.5% success probability (spec =
    ideal distribution). *)
val grover3 : int -> t

(** Extra programs beyond the study's 12 (GHZ3, GHZ5, Grover2, Grover3). *)
val extras : t list

val find : string -> t option
