(** Live experiment report: a self-contained markdown document
    regenerating every figure/table of the evaluation plus the extension
    studies from the current code — the machine-written counterpart of
    the hand-annotated EXPERIMENTS.md. Printed by
    [dune exec bench/main.exe report]. *)

val generate : ?trajectories:int -> unit -> string
