let bv n =
  Printf.sprintf
    {|// Bernstein-Vazirani, hidden string all-ones (%d qubits).
module main() {
  qbit q[%d];
  X(q[%d]);
  for i in 0..%d { H(q[i]); }
  for i in 0..%d { CNOT(q[i], q[%d]); }
  for i in 0..%d { H(q[i]); }
  for i in 0..%d { measure(q[i]); }
}
|}
    n n (n - 1) n (n - 1) (n - 1) (n - 1) (n - 1)

let hidden_shift n =
  Printf.sprintf
    {|// Hidden shift for the Maiorana-McFarland bent function, shift all-ones.
module main() {
  qbit q[%d];
  for i in 0..%d { H(q[i]); }
  for i in 0..%d { X(q[i]); }
  for i in 0..%d { CZ(q[2*i], q[2*i + 1]); }
  for i in 0..%d { X(q[i]); }
  for i in 0..%d { H(q[i]); }
  for i in 0..%d { CZ(q[2*i], q[2*i + 1]); }
  for i in 0..%d { H(q[i]); }
  measure(q);
}
|}
    n n n (n / 2) n n (n / 2) n

let toffoli =
  {|// Toffoli gate applied to |110>.
module main() {
  qbit q[3];
  X(q[0]);
  X(q[1]);
  Toffoli(q[0], q[1], q[2]);
  measure(q);
}
|}

let fredkin =
  {|// Fredkin (controlled swap) applied to |1;10>.
module main() {
  qbit q[3];
  X(q[0]);
  X(q[1]);
  Fredkin(q[0], q[1], q[2]);
  measure(q);
}
|}

let or_gate =
  {|// Logical OR of inputs 1,0 into a target, inputs restored (De Morgan).
module or_gadget(qbit a, qbit b, qbit t) {
  X(a);
  X(b);
  Toffoli(a, b, t);
  X(a);
  X(b);
  X(t);
}
module main() {
  qbit q[3];
  X(q[0]);
  or_gadget(q[0], q[1], q[2]);
  measure(q);
}
|}

let peres =
  {|// Peres gate applied to |110>.
module peres_gadget(qbit a, qbit b, qbit c) {
  Toffoli(a, b, c);
  CNOT(a, b);
}
module main() {
  qbit q[3];
  X(q[0]);
  X(q[1]);
  peres_gadget(q[0], q[1], q[2]);
  measure(q);
}
|}

let qft4 =
  {|// Inverse QFT recovering |9> from its Fourier state (4 qubits).
module cp2(qbit a, qbit b) {  // controlled phase of -pi/2
  Rz(-pi/4, a);
  Rz(-pi/4, b);
  CNOT(a, b);
  Rz(pi/4, b);
  CNOT(a, b);
}
module cp4(qbit a, qbit b) {  // controlled phase of -pi/4
  Rz(-pi/8, a);
  Rz(-pi/8, b);
  CNOT(a, b);
  Rz(pi/8, b);
  CNOT(a, b);
}
module cp8(qbit a, qbit b) {  // controlled phase of -pi/8
  Rz(-pi/16, a);
  Rz(-pi/16, b);
  CNOT(a, b);
  Rz(pi/16, b);
  CNOT(a, b);
}
module main() {
  qbit q[4];
  // Prepare the Fourier state of k = 9 (bit-reversed phase layout).
  H(q[0]); Rz(2*pi*9/16, q[0]);
  H(q[1]); Rz(2*pi*9/8, q[1]);
  H(q[2]); Rz(2*pi*9/4, q[2]);
  H(q[3]); Rz(2*pi*9/2, q[3]);
  // Inverse QFT (no final swaps; the preparation matches this order).
  H(q[3]);
  cp2(q[3], q[2]); H(q[2]);
  cp4(q[3], q[1]); cp2(q[2], q[1]); H(q[1]);
  cp8(q[3], q[0]); cp4(q[2], q[0]); cp2(q[1], q[0]); H(q[0]);
  measure(q);
}
|}

let adder =
  {|// 1-bit Cuccaro ripple-carry adder computing 1 + 1 + 0.
// Qubits: q[0] = carry-in, q[1] = a, q[2] = b, q[3] = carry-out.
module main() {
  qbit q[4];
  X(q[1]);
  X(q[2]);
  // MAJ
  CNOT(q[1], q[2]);
  CNOT(q[1], q[0]);
  Toffoli(q[0], q[2], q[1]);
  // carry out
  CNOT(q[1], q[3]);
  // UMA
  Toffoli(q[0], q[2], q[1]);
  CNOT(q[1], q[0]);
  CNOT(q[0], q[2]);
  measure(q);
}
|}

let all =
  [
    ("BV4", bv 4); ("BV6", bv 6); ("BV8", bv 8);
    ("HS2", hidden_shift 2); ("HS4", hidden_shift 4); ("HS6", hidden_shift 6);
    ("Toffoli", toffoli); ("Fredkin", fredkin); ("Or", or_gate); ("Peres", peres);
    ("QFT4", qft4); ("Adder", adder);
  ]

let source name =
  match List.assoc_opt name all with Some s -> s | None -> raise Not_found
