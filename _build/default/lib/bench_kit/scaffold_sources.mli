(** The 12 study benchmarks as Scaffold source programs.

    The paper's workflow starts from Scaffold source ("We created Scaffold
    programs for each benchmark", Section 5); these are the source-level
    versions of {!Programs.all}, exercising the language front end on
    realistic programs. Tests check each source lowers to a circuit whose
    ideal output matches the corresponding IR-level construction. *)

(** [source name] is the Scaffold text of the named benchmark
    (names as in {!Programs.all}); raises [Not_found] for unknown names. *)
val source : string -> string

(** [all] is every (benchmark name, source) pair, in Figure 7 order. *)
val all : (string * string) list
