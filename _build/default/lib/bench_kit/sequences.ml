open Ir.Gate

let check k = if k < 1 then invalid_arg "Sequences: iteration count must be >= 1"

let toffoli k =
  check k;
  Programs.custom
    ~name:(Printf.sprintf "Toffoli-x%d" k)
    ~description:(Printf.sprintf "%d chained Toffoli gates on |110>" k)
    ~n:3
    ([ One (X, 0); One (X, 1) ] @ List.concat (List.init k (fun _ -> [ Ccx (0, 1, 2) ])))
    ~measured:[ 0; 1; 2 ]

let fredkin k =
  check k;
  Programs.custom
    ~name:(Printf.sprintf "Fredkin-x%d" k)
    ~description:(Printf.sprintf "%d chained Fredkin gates on |110>" k)
    ~n:3
    ([ One (X, 0); One (X, 1) ]
    @ List.concat (List.init k (fun _ -> [ Cswap (0, 1, 2) ])))
    ~measured:[ 0; 1; 2 ]
