(** Iterated gate-sequence benchmarks (Figures 11e and 11f).

    UMDTI's low error rates make the 12 standard benchmarks easy, so the
    paper stresses it with chains of Toffoli or Fredkin gates: each extra
    iteration lengthens the 2Q gate sequence, exposing the benefit of
    noise-adaptive placement as programs grow. *)

(** [toffoli k] iterates the Toffoli gate [k] times on the |110> input
    (1 <= k; the paper sweeps 1..8). *)
val toffoli : int -> Programs.t

(** [fredkin k] iterates the Fredkin gate [k] times on |110>
    (the paper sweeps 1..7). *)
val fredkin : int -> Programs.t
