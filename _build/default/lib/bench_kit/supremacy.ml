module Rng = Mathkit.Rng
open Ir.Gate

(* The four grid CZ patterns, cycled per layer: horizontal pairs starting
   at even/odd columns, vertical pairs starting at even/odd rows. *)
let pattern ~rows ~cols step =
  let idx r c = (r * cols) + c in
  let pairs = ref [] in
  (match step mod 4 with
  | 0 ->
    for r = 0 to rows - 1 do
      let c = ref 0 in
      while !c + 1 < cols do
        pairs := (idx r !c, idx r (!c + 1)) :: !pairs;
        c := !c + 2
      done
    done
  | 1 ->
    for r = 0 to rows - 1 do
      let c = ref 1 in
      while !c + 1 < cols do
        pairs := (idx r !c, idx r (!c + 1)) :: !pairs;
        c := !c + 2
      done
    done
  | 2 ->
    for c = 0 to cols - 1 do
      let r = ref 0 in
      while !r + 1 < rows do
        pairs := (idx !r c, idx (!r + 1) c) :: !pairs;
        r := !r + 2
      done
    done
  | _ ->
    for c = 0 to cols - 1 do
      let r = ref 1 in
      while !r + 1 < rows do
        pairs := (idx !r c, idx (!r + 1) c) :: !pairs;
        r := !r + 2
      done
    done);
  !pairs

let random_one_q rng =
  match Rng.int rng 3 with
  | 0 -> T
  | 1 -> Rx (Float.pi /. 2.0)
  | _ -> Ry (Float.pi /. 2.0)

let circuit ~seed ~rows ~cols ~depth =
  if rows < 2 || cols < 2 then invalid_arg "Supremacy.circuit: grid too small";
  let n = rows * cols in
  let rng = Rng.create seed in
  let gates = ref [] in
  (* Initial layer of Hadamards, as in the Cirq generator. *)
  for q = n - 1 downto 0 do
    gates := One (H, q) :: !gates
  done;
  for step = 0 to depth - 1 do
    let pairs = pattern ~rows ~cols step in
    let busy = Array.make n false in
    List.iter
      (fun (a, b) ->
        busy.(a) <- true;
        busy.(b) <- true;
        gates := Two (Cz, a, b) :: !gates)
      pairs;
    for q = 0 to n - 1 do
      if not busy.(q) then gates := One (random_one_q rng, q) :: !gates
    done
  done;
  Ir.Circuit.create n (List.rev !gates)

let two_q_count = Ir.Circuit.two_q_count
