(** Quantum-supremacy-style random circuits (Section 6.5's scaling study).

    Modeled on the Google Cirq supremacy circuit generator: a 2D grid of
    qubits, alternating layers of CZ gates drawn from a cycling set of
    coupling patterns, with random single-qubit gates from
    {T, sqrt-X, sqrt-Y} on the qubits idle in each layer. These circuits
    are used only to measure compiler scalability (they are far too large
    to simulate), mapping onto the announced 72-qubit Bristlecone grid. *)

(** [circuit ~seed ~rows ~cols ~depth] builds a supremacy circuit on a
    [rows x cols] grid with [depth] CZ layers. *)
val circuit : seed:int -> rows:int -> cols:int -> depth:int -> Ir.Circuit.t

(** [two_q_count c] counts the CZ interactions of a generated circuit. *)
val two_q_count : Ir.Circuit.t -> int
