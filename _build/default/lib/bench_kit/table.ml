let render ~header rows =
  let arity = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg (Printf.sprintf "Table.render: row %d has wrong arity" i))
    rows;
  let all = header :: rows in
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun c cell -> widths.(c) <- max widths.(c) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if c < arity - 1 then
          Buffer.add_string buf (String.make (widths.(c) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let total = Array.fold_left ( + ) 0 widths + (2 * (arity - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n%s" title (render ~header rows)

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let opt_f2 = function Some x -> f2 x | None -> "X"
let opt_int = function Some n -> string_of_int n | None -> "X"

let markdown ~header rows =
  let arity = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg (Printf.sprintf "Table.markdown: row %d has wrong arity" i))
    rows;
  let line cells = "| " ^ String.concat " | " cells ^ " |\n" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (line header);
  Buffer.add_string buf (line (List.map (fun _ -> "---") header));
  List.iter (fun row -> Buffer.add_string buf (line row)) rows;
  Buffer.contents buf
