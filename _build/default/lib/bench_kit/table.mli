(** Plain-text table rendering for the experiment harness. Columns are
    sized to their widest cell; numeric helpers format the way the paper's
    plots label values. *)

(** [render ~header rows] lays out an aligned table with a separator under
    the header. All rows must have the header's arity. *)
val render : header:string list -> string list list -> string

(** [print ~title ~header rows] renders with a title line to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** [f2 x] formats to 2 decimals; [f3 x] to 3. *)
val f2 : float -> string

val f3 : float -> string

(** [opt_f2 v] formats [Some x] as [f2 x] and [None] as ["X"] — the
    paper's marker for benchmarks too large for a machine. *)
val opt_f2 : float option -> string

(** [opt_int v] formats [Some n] as decimal and [None] as ["X"]. *)
val opt_int : int option -> string

(** [markdown ~header rows] renders a GitHub-flavoured markdown table. *)
val markdown : header:string list -> string list list -> string
