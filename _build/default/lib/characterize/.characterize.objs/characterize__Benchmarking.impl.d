lib/characterize/benchmarking.ml: Array Device Fit Float Ir List Mathkit Sim
