lib/characterize/benchmarking.mli: Device
