lib/characterize/fit.ml: Float List
