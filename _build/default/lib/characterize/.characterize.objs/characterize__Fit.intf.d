lib/characterize/fit.mli:
