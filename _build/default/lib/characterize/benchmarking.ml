module Rng = Mathkit.Rng
module Machine = Device.Machine

type result = {
  decay : float;
  error_per_gate : float;
  r_squared : float;
  points : (float * float) list;
}

let default_lengths = [ 1; 2; 4; 8; 16; 32 ]

(* Survival of a 1-qubit basis state under the uniform X/Y/Z error channel
   decays toward 1/2 with per-gate factor lambda = 1 - 4e/3; for the
   15-Pauli two-qubit channel it decays toward 1/4 with
   lambda = 1 - 16e/15. Normalizing the deviation linearizes the fit. *)
let one_q_error_of_decay lambda = 3.0 *. (1.0 -. lambda) /. 4.0
let two_q_error_of_decay lambda = 15.0 *. (1.0 -. lambda) /. 16.0

let fit points error_of_decay =
  let decay, _ = Fit.exponential_decay points in
  let _, amplitude = Fit.exponential_decay points in
  {
    decay;
    error_per_gate = error_of_decay decay;
    r_squared = Fit.r_squared points (fun x -> amplitude *. (decay ** x));
    points;
  }

let one_qubit ?(seed = 11) ?(lengths = default_lengths) ?(samples = 3) machine ~day
    ~qubit =
  let calibration = Machine.calibration machine ~day in
  let noise = Sim.Noise.create machine calibration in
  let rng = Rng.create seed in
  let survival m =
    (* m self-inverting pairs: 2m gates, net identity. *)
    let acc = ref 0.0 in
    for _ = 1 to samples do
      let rho = Sim.Density.init 1 in
      for _ = 1 to m do
        let kind = if Rng.bool rng 0.5 then Ir.Gate.X else Ir.Gate.Y in
        for _ = 1 to 2 do
          Sim.Density.apply_one rho (Ir.Matrices.one_q kind) 0;
          let p = Sim.Noise.gate_error_prob noise (Ir.Gate.One (kind, qubit)) in
          if p > 0.0 then Sim.Density.depolarize_one rho p 0
        done
      done;
      acc := !acc +. (Sim.Density.populations rho).(0)
    done;
    !acc /. float_of_int samples
  in
  let points =
    List.map
      (fun m ->
        let s = survival m in
        (float_of_int (2 * m), 2.0 *. (s -. 0.5)))
      lengths
  in
  fit points one_q_error_of_decay

let two_qubit ?(seed = 13) ?(lengths = default_lengths) ?(samples = 3) machine ~day ~a
    ~b =
  let calibration = Machine.calibration machine ~day in
  let noise = Sim.Noise.create machine calibration in
  let rng = Rng.create seed in
  let gate = Ir.Gate.Two (Ir.Gate.Cnot, a, b) in
  let p = Sim.Noise.gate_error_prob noise gate in
  let survival m =
    let acc = ref 0.0 in
    for _ = 1 to samples do
      let rho = Sim.Density.init 2 in
      for _ = 1 to m do
        (* A same-orientation CNOT pair is the identity; the orientation
           is drawn per pair. *)
        let swap = Rng.bool rng 0.5 in
        for _ = 1 to 2 do
          let u = Ir.Matrices.two_q Ir.Gate.Cnot in
          if swap then Sim.Density.apply_two rho u 1 0
          else Sim.Density.apply_two rho u 0 1;
          if p > 0.0 then Sim.Density.depolarize_two rho p 0 1
        done
      done;
      acc := !acc +. (Sim.Density.populations rho).(0)
    done;
    !acc /. float_of_int samples
  in
  let points =
    List.map
      (fun m ->
        let s = survival m in
        (float_of_int (2 * m), (s -. 0.25) /. 0.75))
      lengths
  in
  fit points two_q_error_of_decay

type interleaved = { reference : result; interleaved : result; gate_error : float }

let interleaved_two_qubit ?(seed = 17) ?(lengths = default_lengths) ?(samples = 3)
    machine ~day ~a ~b =
  let calibration = Machine.calibration machine ~day in
  let noise = Sim.Noise.create machine calibration in
  let p_one q =
    Sim.Noise.gate_error_prob noise (Ir.Gate.One (Ir.Gate.X, q))
  in
  let p_two = Sim.Noise.gate_error_prob noise (Ir.Gate.Two (Ir.Gate.Cnot, a, b)) in
  let run ~with_gate seed0 =
    let rng = Rng.create seed0 in
    let survival m =
      let acc = ref 0.0 in
      for _ = 1 to samples do
        let rho = Sim.Density.init 2 in
        for _ = 1 to m do
          (* Reference step: a self-inverting 1Q pair on each qubit. *)
          List.iteri
            (fun idx q ->
              let kind = if Rng.bool rng 0.5 then Ir.Gate.X else Ir.Gate.Y in
              let pq = if idx = 0 then p_one a else p_one b in
              for _ = 1 to 2 do
                Sim.Density.apply_one rho (Ir.Matrices.one_q kind) q;
                if pq > 0.0 then Sim.Density.depolarize_one rho pq q
              done)
            [ 0; 1 ];
          if with_gate then
            (* Interleave a self-inverting CNOT pair. *)
            for _ = 1 to 2 do
              Sim.Density.apply_two rho (Ir.Matrices.two_q Ir.Gate.Cnot) 0 1;
              if p_two > 0.0 then Sim.Density.depolarize_two rho p_two 0 1
            done
        done;
        acc := !acc +. (Sim.Density.populations rho).(0)
      done;
      !acc /. float_of_int samples
    in
    let points =
      List.map
        (fun m -> (float_of_int m, (survival m -. 0.25) /. 0.75))
        lengths
    in
    fit points (fun _ -> 0.0)
  in
  let reference = run ~with_gate:false seed in
  let interleaved = run ~with_gate:true (seed + 1) in
  (* Per step the interleaved curve adds two CNOT channels:
     lambda_int = lambda_ref * lambda_cnot^2. *)
  let ratio = interleaved.decay /. reference.decay in
  let lambda_cnot = sqrt (Float.max ratio 0.0) in
  let gate_error = two_q_error_of_decay lambda_cnot in
  { reference; interleaved; gate_error }

type readout = { p_read1_given0 : float; p_read0_given1 : float; error : float }

let readout machine ~day ~qubit =
  let calibration = Machine.calibration machine ~day in
  let noise = Sim.Noise.create machine calibration in
  let flip = Sim.Noise.readout_flip_prob noise qubit in
  (* Prepare |0>: nothing to do; read 1 with the flip probability. *)
  let p_read1_given0 = flip in
  (* Prepare |1>: an X pulse that can itself fail (uniform Pauli: 2/3 of
     failures leave the population wrong), then read 0 on flip. *)
  let p_x = Sim.Noise.gate_error_prob noise (Ir.Gate.One (Ir.Gate.X, qubit)) in
  let rho = Sim.Density.init 1 in
  Sim.Density.apply_one rho (Ir.Matrices.one_q Ir.Gate.X) 0;
  if p_x > 0.0 then Sim.Density.depolarize_one rho p_x 0;
  let pops = Sim.Density.populations rho in
  let p_read0_given1 = (pops.(0) *. (1.0 -. flip)) +. (pops.(1) *. flip) in
  { p_read1_given0; p_read0_given1; error = (p_read1_given0 +. p_read0_given1) /. 2.0 }
