(** Randomized-benchmarking-style error characterization.

    TriQ consumes "a summary of empirical device error data" (Section 4.1)
    — on real systems that summary is produced by calibration experiments
    like randomized benchmarking. This module runs the same style of
    experiment against the simulator: sequences of random self-inverting
    gate pairs of growing length, survival probability fitted to
    A * p^m, and error-per-operation extracted from the decay. The
    recovered rates must agree with the calibration data that drives the
    noise model (tested), closing the loop between the device model and
    the compiler's noise inputs.

    Depolarizing-channel algebra: a one-qubit uniform Pauli error with
    probability e shrinks the Bloch vector by p = 1 - 2e (under the
    X/Y/Z-uniform model used by the simulator, the survival of a basis
    state decays per faulty step by that factor on average); we therefore
    report e_hat = (1 - p)/2 per *pair* step and halve it per gate for
    one-qubit benchmarking, and analogously for two-qubit sequences with
    the 15-Pauli channel. *)

type result = {
  decay : float;  (** fitted p per sequence step *)
  error_per_gate : float;  (** extracted average gate error *)
  r_squared : float;  (** fit quality *)
  points : (float * float) list;  (** (sequence length, survival) *)
}

(** [one_qubit ?seed ?lengths ?samples machine ~day ~qubit] benchmarks the
    1Q error of a hardware qubit by running random X/Y pairs (each pair =
    2 gates, identity in total) of each length and fitting the survival
    decay. *)
val one_qubit :
  ?seed:int -> ?lengths:int list -> ?samples:int -> Device.Machine.t -> day:int ->
  qubit:int -> result

(** [two_qubit ?seed ?lengths ?samples machine ~day ~a ~b] benchmarks a
    coupling with even-length CNOT (or CZ/XX) sequences. *)
val two_qubit :
  ?seed:int -> ?lengths:int list -> ?samples:int -> Device.Machine.t -> day:int ->
  a:int -> b:int -> result

(** Interleaved randomized benchmarking: isolates a *specific* two-qubit
    gate's error by comparing the decay of reference sequences (random
    self-inverting one-qubit pairs on both qubits) against sequences with
    the target CNOT pair interleaved after every step. The per-CNOT decay
    is sqrt(lambda_interleaved / lambda_reference); as in laboratory IRB
    the extraction is approximate (the reference contribution cancels only
    to first order). *)
type interleaved = {
  reference : result;
  interleaved : result;
  gate_error : float;  (** extracted error of one target gate *)
}

val interleaved_two_qubit :
  ?seed:int -> ?lengths:int list -> ?samples:int -> Device.Machine.t -> day:int ->
  a:int -> b:int -> interleaved

(** Readout characterization: prepare |0> and |1> and measure assignment
    fidelities. Under the simulator's symmetric readout-flip model both
    preparations recover the same flip probability; [error] is their
    average (the quantity published in calibration data). *)
type readout = {
  p_read1_given0 : float;  (** probability of reading 1 after preparing 0 *)
  p_read0_given1 : float;  (** probability of reading 0 after preparing 1 *)
  error : float;
}

(** [readout machine ~day ~qubit] runs the two preparation experiments
    analytically (including the 1Q error of the preparation X pulse on the
    |1> side). *)
val readout : Device.Machine.t -> day:int -> qubit:int -> readout
