let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Fit.linear: need at least two points";
  let fx = List.map fst points in
  if List.sort_uniq Float.compare fx |> List.length < 2 then
    invalid_arg "Fit.linear: need at least two distinct x";
  let nf = float_of_int n in
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0.0 points in
  let sx = sum fst and sy = sum snd in
  let sxx = sum (fun (x, _) -> x *. x) and sxy = sum (fun (x, y) -> x *. y) in
  let denom = (nf *. sxx) -. (sx *. sx) in
  let a = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let b = (sy -. (a *. sx)) /. nf in
  (a, b)

let exponential_decay points =
  let usable = List.filter (fun (_, y) -> y > 0.0) points in
  if List.length usable < 2 then
    invalid_arg "Fit.exponential_decay: need at least two positive points";
  let logged = List.map (fun (x, y) -> (x, log y)) usable in
  let slope, intercept = linear logged in
  (exp slope, exp intercept)

let r_squared points f =
  match points with
  | [] | [ _ ] -> invalid_arg "Fit.r_squared: need at least two points"
  | _ ->
    let ys = List.map snd points in
    let mean = List.fold_left ( +. ) 0.0 ys /. float_of_int (List.length ys) in
    let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.0)) 0.0 ys in
    let ss_res =
      List.fold_left (fun acc (x, y) -> acc +. ((y -. f x) ** 2.0)) 0.0 points
    in
    if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot)
