(** Least-squares fitting for benchmarking decay curves. *)

(** [linear points] fits y = a*x + b by ordinary least squares over
    [(x, y)] points (at least two distinct x), returning [(a, b)]. *)
val linear : (float * float) list -> float * float

(** [exponential_decay points] fits y = A * p^x for positive observations
    by linear regression in log space, returning [(p, a)] with [a = A].
    Points with y <= 0 are dropped; raises [Invalid_argument] if fewer
    than two usable points remain. *)
val exponential_decay : (float * float) list -> float * float

(** [r_squared points f] is the coefficient of determination of model [f]
    on the points (1 = perfect fit). *)
val r_squared : (float * float) list -> (float -> float) -> float
