lib/core/compiled.ml: Device Ir List
