lib/core/compiled.mli: Device Ir
