lib/core/direction.ml: Device Ir List Printf
