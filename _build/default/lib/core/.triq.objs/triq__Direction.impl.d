lib/core/direction.ml: Analysis Device Ir List
