lib/core/direction.mli: Device Ir
