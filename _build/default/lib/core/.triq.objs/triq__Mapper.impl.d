lib/core/mapper.ml: Array Float Hashtbl Ir List Option Reliability
