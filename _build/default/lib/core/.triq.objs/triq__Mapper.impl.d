lib/core/mapper.ml: Analysis Array Float Hashtbl Ir List Option Reliability
