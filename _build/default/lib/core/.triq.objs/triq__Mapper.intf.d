lib/core/mapper.mli: Ir Reliability
