lib/core/mapper_smt.ml: Array Float Ir List Mapper Reliability Smt
