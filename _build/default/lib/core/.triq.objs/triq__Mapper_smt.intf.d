lib/core/mapper_smt.mli: Ir Mapper Reliability
