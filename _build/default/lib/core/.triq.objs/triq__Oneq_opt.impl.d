lib/core/oneq_opt.ml: Array Ir List Mathkit Translate
