lib/core/oneq_opt.mli: Device Ir
