lib/core/peephole.ml: Array Ir List
