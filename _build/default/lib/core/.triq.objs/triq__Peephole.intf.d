lib/core/peephole.mli: Ir
