lib/core/pipeline.ml: Array Compiled Device Direction Ir List Mapper Oneq_opt Peephole Printf Reliability Router Router_lookahead String Sys Translate
