lib/core/pipeline.ml: Analysis Array Compiled Device Direction Ir List Mapper Oneq_opt Peephole Reliability Router Router_lookahead String Sys Translate
