lib/core/pipeline.mli: Compiled Device Ir
