lib/core/reliability.ml: Array Device Format List
