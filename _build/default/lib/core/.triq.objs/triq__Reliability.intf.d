lib/core/reliability.mli: Device Format
