lib/core/router.ml: Analysis Array Device Ir List Reliability
