lib/core/router.ml: Array Device Ir List Reliability
