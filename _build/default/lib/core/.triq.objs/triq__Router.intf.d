lib/core/router.mli: Device Ir Reliability
