lib/core/router_lookahead.ml: Array Device Float Ir List Reliability Router
