lib/core/router_lookahead.ml: Analysis Array Device Float Ir List Reliability Router
