lib/core/router_lookahead.mli: Device Ir Reliability Router
