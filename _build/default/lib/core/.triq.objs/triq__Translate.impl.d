lib/core/translate.ml: Analysis Device Float Ir List Mathkit
