lib/core/translate.ml: Device Float Ir List Mathkit
