lib/core/translate.mli: Device Ir Mathkit
