lib/core/validate.ml: Analysis Compiled Pipeline
