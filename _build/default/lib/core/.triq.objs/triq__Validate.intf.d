lib/core/validate.mli: Analysis Compiled Pipeline
