module Topology = Device.Topology

let needs_flip topology a b =
  if not (Topology.directed topology) then false
  else if Topology.has_directed_edge topology a b then false
  else if Topology.has_directed_edge topology b a then true
  else
    Analysis.Diag.invalid ~rule:"topo.coupling" ~layer:"orientation"
      ~loc:(Analysis.Diag.Pair (a, b)) "CNOT on uncoupled pair q%d-q%d" a b

let fix topology (c : Ir.Circuit.t) =
  if not (Topology.directed topology) then c
  else begin
    let rewrite g =
      match (g : Ir.Gate.t) with
      | Two (Cnot, a, b) when needs_flip topology a b ->
        [
          Ir.Gate.One (Ir.Gate.H, a);
          Ir.Gate.One (Ir.Gate.H, b);
          Ir.Gate.Two (Ir.Gate.Cnot, b, a);
          Ir.Gate.One (Ir.Gate.H, a);
          Ir.Gate.One (Ir.Gate.H, b);
        ]
      | other -> [ other ]
    in
    Ir.Circuit.create c.Ir.Circuit.n_qubits
      (List.concat_map rewrite c.Ir.Circuit.gates)
  end

let flipped_count topology (c : Ir.Circuit.t) =
  if not (Topology.directed topology) then 0
  else
    List.length
      (List.filter
         (fun g ->
           match (g : Ir.Gate.t) with
           | Two (Cnot, a, b) -> needs_flip topology a b
           | _ -> false)
         c.Ir.Circuit.gates)
