(** CNOT orientation repair for directed couplings (IBM).

    IBM's cross-resonance CNOTs are hardware-supported in one direction
    per coupling. A CNOT against the grain is rewritten by conjugating the
    hardware-direction CNOT with Hadamards on both qubits; the extra 1Q
    gates are later absorbed by the 1Q optimizer. Undirected topologies
    pass through untouched. *)

(** [fix topology c] reorients every [Cnot] in the hardware circuit [c] to
    a hardware-supported direction. Raises [Invalid_argument] if a CNOT
    sits on an uncoupled pair (the router must run first). SWAPs must
    already be expanded ([Translate.expand_swaps]). *)
val fix : Device.Topology.t -> Ir.Circuit.t -> Ir.Circuit.t

(** [flipped_count topology c] counts CNOTs that [fix] would reverse —
    used for reporting 1Q overhead attribution. *)
val flipped_count : Device.Topology.t -> Ir.Circuit.t -> int
