type result = {
  placement : int array;
  objective : float;
  nodes_explored : int;
  optimal : bool;
}

type objective = Max_min | Product

let interactions (c : Ir.Circuit.t) =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun g ->
      match (g : Ir.Gate.t) with
      | Two (_, a, b) ->
        let key = if Hashtbl.mem table (b, a) then (b, a) else (a, b) in
        if not (Hashtbl.mem table key) then order := key :: !order;
        Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
      | Ccx _ | Cswap _ ->
        Analysis.Diag.invalid ~rule:"circuit.flat" ~layer:"mapping"
          "circuit not flattened: %s" (Ir.Gate.to_string g)
      | One _ | Measure _ -> ())
    c.Ir.Circuit.gates;
  List.rev_map (fun key -> (key, Hashtbl.find table key)) !order

let trivial ~n_program ~n_hardware =
  if n_program > n_hardware then
    Analysis.Diag.invalid ~rule:"circuit.bounds" ~layer:"mapping"
      "%d-qubit program does not fit a %d-qubit device" n_program n_hardware;
  Array.init n_program (fun i -> i)

let log_floor = 1e-12

let evaluate reliability (c : Ir.Circuit.t) placement =
  let pairs = interactions c in
  let measured = Ir.Circuit.measured_qubits c in
  let min_rel = ref 1.0 and log_prod = ref 0.0 in
  let account r count =
    if r < !min_rel then min_rel := r;
    log_prod := !log_prod +. (float_of_int count *. log (Float.max r log_floor))
  in
  List.iter
    (fun ((a, b), count) ->
      account (Reliability.score reliability placement.(a) placement.(b)) count)
    pairs;
  List.iter
    (fun m -> account (Reliability.readout_reliability reliability placement.(m)) 1)
    measured;
  (!min_rel, !log_prod)

(* Program qubits in decreasing connectivity order: placing the busiest
   qubits first makes pruning bite early. *)
let placement_order n_program pairs measured =
  let weight = Array.make n_program 0 in
  List.iter
    (fun ((a, b), count) ->
      weight.(a) <- weight.(a) + count + 10;
      weight.(b) <- weight.(b) + count + 10)
    pairs;
  List.iter (fun m -> weight.(m) <- weight.(m) + 1) measured;
  let order = Array.init n_program (fun i -> i) in
  Array.sort (fun a b -> compare (weight.(b), a) (weight.(a), b)) order;
  order

let solve ?(node_budget = 200_000) ?(objective = Max_min) reliability (c : Ir.Circuit.t) =
  let n_program = c.Ir.Circuit.n_qubits in
  let n_hardware = Reliability.n_qubits reliability in
  if n_program > n_hardware then
    Analysis.Diag.invalid ~rule:"circuit.bounds" ~layer:"mapping"
      "%d-qubit program does not fit a %d-qubit device" n_program n_hardware;
  let pairs = interactions c in
  let measured = Ir.Circuit.measured_qubits c in
  let measured_set = Array.make n_program false in
  List.iter (fun m -> measured_set.(m) <- true) measured;
  (* partners.(p) = [(other_program_qubit, oriented, count)], oriented true
     when p is the first operand of the pair. *)
  let partners = Array.make n_program [] in
  List.iter
    (fun ((a, b), count) ->
      partners.(a) <- (b, true, count) :: partners.(a);
      partners.(b) <- (a, false, count) :: partners.(b))
    pairs;
  let order = placement_order n_program pairs measured in
  let placement = Array.make n_program (-1) in
  let used = Array.make n_hardware false in
  let nodes = ref 0 in
  let truncated = ref false in
  let best_placement = ref None in
  let best_min = ref (-1.0) in
  let best_log = ref neg_infinity in
  (* Seed the incumbent with the trivial placement: it is often already
     good when the program's interaction graph matches the device (and it
     makes the very first pruning bound non-trivial). *)
  let () =
    let trivial_placement = trivial ~n_program ~n_hardware in
    let m, lp = evaluate reliability c trivial_placement in
    best_placement := Some trivial_placement;
    best_min := m;
    best_log := lp
  in
  (* Incremental cost of placing program qubit [p] on hardware qubit [h]
     against already-placed neighbours; (min, log-product) delta. *)
  let placement_cost p h =
    let min_rel = ref 1.0 and log_prod = ref 0.0 in
    let account r count =
      if r < !min_rel then min_rel := r;
      log_prod := !log_prod +. (float_of_int count *. log (Float.max r log_floor))
    in
    List.iter
      (fun (other, oriented, count) ->
        let oh = placement.(other) in
        if oh >= 0 then
          let r =
            if oriented then Reliability.score reliability h oh
            else Reliability.score reliability oh h
          in
          account r count)
      partners.(p);
    if measured_set.(p) then account (Reliability.readout_reliability reliability h) 1;
    (!min_rel, !log_prod)
  in
  let rec search depth cur_min cur_log =
    if !truncated then ()
    else if depth = n_program then begin
      let better =
        match objective with
        | Max_min ->
          cur_min > !best_min +. 1e-12
          || (cur_min > !best_min -. 1e-12 && cur_log > !best_log)
        | Product ->
          cur_log > !best_log
          || (cur_log = !best_log && cur_min > !best_min +. 1e-12)
      in
      if better then begin
        best_min := cur_min;
        best_log := cur_log;
        best_placement := Some (Array.copy placement)
      end
    end
    else begin
      let p = order.(depth) in
      (* Candidate hardware qubits, best local cost first. *)
      let viable next_min next_log =
        match objective with
        | Max_min ->
          (* The running min can only shrink deeper in the tree, so a
             branch already at or below the incumbent (minus tie-break
             tolerance) can be discarded — the pruning rule the paper
             relies on, and the reason this objective scales. *)
          !best_placement = None || next_min >= !best_min -. 1e-12
        | Product ->
          (* The log-product also only decreases, but near-1 reliabilities
             keep it close to 0 for a long time, so this bound bites far
             later — the paper's scalability argument against the product
             objective, measurable via [nodes_explored]. *)
          !best_placement = None || next_log > !best_log
      in
      let candidates = ref [] in
      for h = 0 to n_hardware - 1 do
        if not used.(h) then begin
          let m, lp = placement_cost p h in
          if viable (Float.min cur_min m) (cur_log +. lp) then
            candidates := (m, lp, h) :: !candidates
        end
      done;
      let candidates =
        let by_min (m1, l1, _) (m2, l2, _) = compare (m2, l2) (m1, l1) in
        let by_log (m1, l1, _) (m2, l2, _) = compare (l2, m2) (l1, m1) in
        List.sort (match objective with Max_min -> by_min | Product -> by_log) !candidates
      in
      List.iter
        (fun (m, lp, h) ->
          if not !truncated then begin
            incr nodes;
            if !nodes > node_budget then truncated := true
            else begin
              let next_min = Float.min cur_min m in
              if viable next_min (cur_log +. lp) then begin
                placement.(p) <- h;
                used.(h) <- true;
                search (depth + 1) next_min (cur_log +. lp);
                used.(h) <- false;
                placement.(p) <- -1
              end
            end
          end)
        candidates
    end
  in
  search 0 1.0 0.0;
  match !best_placement with
  | Some pl ->
    { placement = pl; objective = !best_min; nodes_explored = !nodes; optimal = not !truncated }
  | None ->
    (* Budget too small to finish even one assignment: fall back to the
       greedy (first-candidate) dive, which the search visited first. *)
    let pl = trivial ~n_program ~n_hardware in
    let m, _ = evaluate reliability c pl in
    { placement = pl; objective = m; nodes_explored = !nodes; optimal = false }
