module Solver = Smt.Solver

let solve reliability (c : Ir.Circuit.t) =
  let n_program = c.Ir.Circuit.n_qubits in
  let n_hardware = Reliability.n_qubits reliability in
  if n_program > n_hardware then
    invalid_arg "Mapper_smt.solve: program does not fit on device";
  let pairs = Mapper.interactions c in
  let measured = Ir.Circuit.measured_qubits c in
  let var p h = (p * n_hardware) + h + 1 in
  let total_decisions = ref 0 in
  (* Candidate thresholds: every reliability value that can constrain the
     minimum. Sorted ascending; binary search for the largest SAT one. *)
  let candidates =
    let scores = ref [] in
    for h1 = 0 to n_hardware - 1 do
      for h2 = 0 to n_hardware - 1 do
        if h1 <> h2 then scores := Reliability.score reliability h1 h2 :: !scores
      done
    done;
    if measured <> [] then
      for h = 0 to n_hardware - 1 do
        scores := Reliability.readout_reliability reliability h :: !scores
      done;
    List.sort_uniq Float.compare !scores
  in
  let satisfiable threshold =
    let solver = Solver.create (n_program * n_hardware) in
    (* Structure: total assignment, injective. *)
    for p = 0 to n_program - 1 do
      Solver.exactly_one solver (List.init n_hardware (fun h -> var p h))
    done;
    for h = 0 to n_hardware - 1 do
      Solver.at_most_one solver (List.init n_program (fun p -> var p h))
    done;
    (* Reliability floor: forbid placements scoring below the threshold. *)
    List.iter
      (fun ((a, b), _count) ->
        for h1 = 0 to n_hardware - 1 do
          for h2 = 0 to n_hardware - 1 do
            if h1 <> h2 && Reliability.score reliability h1 h2 < threshold then
              Solver.add_clause solver [ -var a h1; -var b h2 ]
          done
        done)
      pairs;
    List.iter
      (fun m ->
        for h = 0 to n_hardware - 1 do
          if Reliability.readout_reliability reliability h < threshold then
            Solver.add_clause solver [ -var m h ]
        done)
      measured;
    let outcome = Solver.solve solver in
    total_decisions := !total_decisions + Solver.decisions solver;
    match outcome with
    | Solver.Sat model ->
      let placement =
        Array.init n_program (fun p ->
            let rec find h =
              if h >= n_hardware then
                invalid_arg "Mapper_smt: model assigns no hardware qubit"
              else if model.(var p h) then h
              else find (h + 1)
            in
            find 0)
      in
      Some placement
    | Solver.Unsat -> None
  in
  (* Threshold 0 (no floor) is always satisfiable for fitting programs. *)
  let base =
    match satisfiable 0.0 with
    | Some placement -> placement
    | None -> invalid_arg "Mapper_smt: unsatisfiable structure constraints"
  in
  let candidates = Array.of_list candidates in
  (* Find the largest candidate threshold that is still satisfiable:
     invariant lo is SAT (with best_placement), hi bound is the first
     known-UNSAT index (or one past the end). *)
  let best_placement = ref base in
  let lo = ref (-1) and hi = ref (Array.length candidates) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    match satisfiable candidates.(mid) with
    | Some placement ->
      best_placement := placement;
      lo := mid
    | None -> hi := mid
  done;
  let min_rel, _ = Mapper.evaluate reliability c !best_placement in
  {
    Mapper.placement = !best_placement;
    objective = min_rel;
    nodes_explored = !total_decisions;
    optimal = true;
  }
