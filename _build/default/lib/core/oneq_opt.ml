module Q = Mathkit.Quaternion

let naive basis (c : Ir.Circuit.t) =
  let rewrite g =
    match (g : Ir.Gate.t) with
    | One (k, q) -> Translate.emit_rotation basis q (Ir.Gate.one_q_to_quaternion k)
    | (Two _ | Measure _) as other -> [ other ]
    | Ccx _ | Cswap _ -> invalid_arg "Oneq_opt.naive: not flattened"
  in
  Ir.Circuit.create c.Ir.Circuit.n_qubits (List.concat_map rewrite c.Ir.Circuit.gates)

let optimize basis (c : Ir.Circuit.t) =
  let n = c.Ir.Circuit.n_qubits in
  let pending = Array.make n Q.identity in
  let out = ref [] in
  let emit gs = List.iter (fun g -> out := g :: !out) gs in
  let flush q =
    emit (Translate.emit_rotation basis q pending.(q));
    pending.(q) <- Q.identity
  in
  (* Z rotations commute with measurement in the computational basis, so a
     pure-Z pending rotation before readout is simply dropped. *)
  let flush_for_measure q =
    if not (Q.is_z_rotation ~eps:1e-9 pending.(q)) then flush q
    else pending.(q) <- Q.identity
  in
  List.iter
    (fun g ->
      match (g : Ir.Gate.t) with
      | One (k, q) ->
        (* The new gate applies after the pending rotation: left-multiply. *)
        pending.(q) <- Q.mul (Ir.Gate.one_q_to_quaternion k) pending.(q)
      | Two (_, a, b) ->
        flush a;
        flush b;
        emit [ g ]
      | Measure q ->
        flush_for_measure q;
        emit [ g ]
      | Ccx _ | Cswap _ -> invalid_arg "Oneq_opt.optimize: not flattened")
    c.Ir.Circuit.gates;
  for q = 0 to n - 1 do
    flush q
  done;
  Ir.Circuit.create n (List.rev !out)
