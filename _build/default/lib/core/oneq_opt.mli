(** One-qubit gate optimization (Section 4.5).

    TriQ represents each 1Q gate as a unit rotation quaternion, multiplies
    out every run of consecutive 1Q gates on a qubit, and re-emits the
    composite as at most two error-free Z rotations around one X/Y-axis
    pulse in the target's software-visible basis. [naive] is the TriQ-N
    behaviour: each IR gate is translated individually, with no
    cross-gate coalescing. *)

(** [optimize basis c] coalesces 1Q runs of a hardware circuit and emits
    software-visible gates. Pure-Z remainders immediately before a
    measurement are dropped (they cannot affect outcome probabilities).
    All 2Q gates must already be software-visible. *)
val optimize : Device.Gateset.basis -> Ir.Circuit.t -> Ir.Circuit.t

(** [naive basis c] translates each 1Q gate separately into the visible
    basis — no coalescing, no cancellation. *)
val naive : Device.Gateset.basis -> Ir.Circuit.t -> Ir.Circuit.t
