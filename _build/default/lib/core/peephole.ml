open Ir.Gate

let cancels g1 g2 =
  match (g1, g2) with
  | Two (Cnot, a1, b1), Two (Cnot, a2, b2) -> a1 = a2 && b1 = b2
  | Two (Cz, a1, b1), Two (Cz, a2, b2) | Two (Swap, a1, b1), Two (Swap, a2, b2) ->
    (a1 = a2 && b1 = b2) || (a1 = b2 && b1 = a2)
  | _ -> false

let one_pass gates =
  (* out is the reversed emitted prefix; last.(q) is the position (from the
     end of out) of the most recent survivor touching q, or -1. A new 2Q
     gate cancels the head of out when the head is its inverse and neither
     operand was touched since the head was emitted — i.e. both operands'
     last gate *is* the head. *)
  let changed = ref false in
  let rec step out = function
    | [] -> List.rev out
    | g :: rest -> (
      match (g, out) with
      | Two _, prev :: out_rest when cancels prev g ->
        changed := true;
        step out_rest rest
      | _ ->
        (* A gate sharing a qubit with the head blocks cancellation of the
           head, which is handled implicitly: once a non-cancelling gate
           with an overlapping operand is emitted it becomes the new head
           for those qubits. However a gate on *disjoint* qubits would
           wrongly block head-cancellation here; to keep the pass simple
           and sound we only cancel literally adjacent pairs and iterate
           with commuting reorder below. *)
        step (g :: out) rest)
  in
  let result = step [] gates in
  (result, !changed)

(* Bubble disjoint gates: stable-partition adjacent gates so that a 2Q gate
   can meet its inverse. We do a simple sweep moving each 2Q gate left past
   gates acting on disjoint qubits; combined with [one_pass] to a fixed
   point this catches the routing-induced patterns. *)
let bubble gates =
  let arr = Array.of_list gates in
  let n = Array.length arr in
  let changed = ref false in
  for i = 1 to n - 1 do
    let g = arr.(i) in
    if Ir.Gate.is_two_qubit g then begin
      let qs = Ir.Gate.qubits g in
      let j = ref i in
      let blocked = ref false in
      while (not !blocked) && !j > 0 do
        let prev = arr.(!j - 1) in
        let disjoint =
          List.for_all (fun q -> not (List.mem q (Ir.Gate.qubits prev))) qs
        in
        if disjoint then begin
          arr.(!j) <- prev;
          arr.(!j - 1) <- g;
          changed := true;
          decr j
        end
        else blocked := true
      done
    end
  done;
  (Array.to_list arr, !changed)

let cancel_two_q (c : Ir.Circuit.t) =
  let rec fixpoint gates fuel =
    if fuel = 0 then gates
    else begin
      let gates, c1 = one_pass gates in
      let gates, c2 = bubble gates in
      if c1 || c2 then
        let gates, c3 = one_pass gates in
        if c3 || c2 then fixpoint gates (fuel - 1) else gates
      else gates
    end
  in
  Ir.Circuit.create c.Ir.Circuit.n_qubits (fixpoint c.Ir.Circuit.gates 32)

let cancelled_count c =
  Ir.Circuit.two_q_count c - Ir.Circuit.two_q_count (cancel_two_q c)
