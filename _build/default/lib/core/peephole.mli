(** Peephole cleanup of hardware circuits (an extension beyond the paper's
    pipeline; off by default, measured by the ablation benchmark).

    Routing composes independently-generated fragments, which regularly
    juxtaposes self-inverse 2Q gates — e.g. a CNOT immediately followed by
    the SWAP expansion's first CNOT on the same coupling. This pass
    cancels adjacent self-inverse pairs:
    - CNOT a,b ; CNOT a,b (same orientation),
    - CZ a,b ; CZ b,a (CZ is symmetric),
    - SWAP a,b ; SWAP b,a,
    with no intervening gate on either qubit, iterating to a fixed point.
    It never touches 1Q gates (the 1Q optimizer owns those). *)

(** [cancel_two_q c] removes cancelling adjacent 2Q pairs. The result is
    exactly unitary-equivalent (checked by tests). *)
val cancel_two_q : Ir.Circuit.t -> Ir.Circuit.t

(** [cancelled_count c] is [Circuit.two_q_count c - two_q_count (cancel_two_q c)]. *)
val cancelled_count : Ir.Circuit.t -> int
