module Topology = Device.Topology
module Calibration = Device.Calibration

type t = {
  n : int;
  topology : Topology.t;
  edge_rel : ((int * int) * float) list;
  swap_rel : float array array;  (** max-product swap reliability, hops^3 *)
  next_hop : int array array;  (** successor matrix for path reconstruction *)
  score : float array array;
  best_neighbor : int array array;  (** argmax t' for (c, t); -1 if none *)
  readout : float array;
}

let normalize (a, b) = if a <= b then (a, b) else (b, a)

let of_calibration ~noise_aware topology calibration =
  let n = Topology.n_qubits topology in
  let avg = Calibration.average_two_q_err calibration in
  let edge_error a b =
    if noise_aware then Calibration.two_q_err calibration a b else avg
  in
  let edge_rel =
    List.map
      (fun (a, b) ->
        let a, b = normalize (a, b) in
        ((a, b), 1.0 -. edge_error a b))
      (Topology.edges topology)
  in
  let rel a b =
    match List.assoc_opt (normalize (a, b)) edge_rel with
    | Some r -> r
    | None -> raise Not_found
  in
  (* Floyd-Warshall on swap reliabilities: one hop costs rel^3 (the three
     CNOTs of a SWAP). Maximize the product over hops. *)
  let swap_rel = Array.make_matrix n n 0.0 in
  let next_hop = Array.make_matrix n n (-1) in
  for q = 0 to n - 1 do
    swap_rel.(q).(q) <- 1.0;
    next_hop.(q).(q) <- q
  done;
  List.iter
    (fun ((a, b), r) ->
      let r3 = r *. r *. r in
      swap_rel.(a).(b) <- r3;
      swap_rel.(b).(a) <- r3;
      next_hop.(a).(b) <- b;
      next_hop.(b).(a) <- a)
    edge_rel;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = swap_rel.(i).(k) *. swap_rel.(k).(j) in
        if via > swap_rel.(i).(j) then begin
          swap_rel.(i).(j) <- via;
          next_hop.(i).(j) <- next_hop.(i).(k)
        end
      done
    done
  done;
  (* Score (c, t): best neighbour t' of t maximizing swap_rel(c, t') times
     the direct t'-t coupling reliability. *)
  let score = Array.make_matrix n n 0.0 in
  let best_neighbor = Array.make_matrix n n (-1) in
  for c = 0 to n - 1 do
    for tgt = 0 to n - 1 do
      if c <> tgt then
        List.iter
          (fun t' ->
            if t' <> tgt then begin
              let candidate = swap_rel.(c).(t') *. rel t' tgt in
              if candidate > score.(c).(tgt) then begin
                score.(c).(tgt) <- candidate;
                best_neighbor.(c).(tgt) <- t'
              end
            end)
          (Topology.neighbors topology tgt)
    done
  done;
  let readout =
    Array.init n (fun q -> 1.0 -. Calibration.readout_err calibration q)
  in
  { n; topology; edge_rel; swap_rel; next_hop; score; best_neighbor; readout }

let compute ~noise_aware machine calibration =
  of_calibration ~noise_aware machine.Device.Machine.topology calibration

let n_qubits t = t.n

let check t q = if q < 0 || q >= t.n then invalid_arg "Reliability: qubit out of range"

let score t c tgt =
  check t c;
  check t tgt;
  t.score.(c).(tgt)

let edge_reliability t a b =
  match List.assoc_opt (normalize (a, b)) t.edge_rel with
  | Some r -> r
  | None -> raise Not_found

let swap_reliability t a b =
  check t a;
  check t b;
  t.swap_rel.(a).(b)

let reconstruct_path t src dst =
  if t.next_hop.(src).(dst) < 0 then raise Not_found;
  let rec walk acc cur =
    if cur = dst then List.rev (cur :: acc)
    else walk (cur :: acc) t.next_hop.(cur).(dst)
  in
  walk [] src

let swap_path t c tgt =
  check t c;
  check t tgt;
  if c = tgt then invalid_arg "Reliability.swap_path: same qubit";
  let t' = t.best_neighbor.(c).(tgt) in
  if t' < 0 then raise Not_found;
  reconstruct_path t c t'

let path_between t a b =
  check t a;
  check t b;
  if a = b then [ a ] else reconstruct_path t a b

let readout_reliability t q =
  check t q;
  t.readout.(q)

let pp fmt t =
  Format.fprintf fmt "    ";
  for j = 0 to t.n - 1 do
    Format.fprintf fmt "%5d " j
  done;
  Format.fprintf fmt "@\n";
  for i = 0 to t.n - 1 do
    Format.fprintf fmt "%3d " i;
    for j = 0 to t.n - 1 do
      if i = j then Format.fprintf fmt "    - "
      else Format.fprintf fmt "%5.2f " t.score.(i).(j)
    done;
    Format.fprintf fmt "@\n"
  done
