module Topology = Device.Topology

type result = {
  circuit : Ir.Circuit.t;
  final_placement : int array;
  swap_count : int;
}

let check_placement n_hardware placement =
  let seen = Array.make n_hardware false in
  Array.iteri
    (fun p h ->
      if h < 0 || h >= n_hardware then
        Analysis.Diag.invalid ~rule:"exec.placement" ~layer:"routing"
          ~loc:(Analysis.Diag.Qubit p) "placement maps program qubit %d to %d outside [0, %d)" p h
          n_hardware;
      if seen.(h) then
        Analysis.Diag.invalid ~rule:"exec.placement" ~layer:"routing"
          ~loc:(Analysis.Diag.Qubit p) "placement not injective: hardware qubit %d assigned twice" h;
      seen.(h) <- true)
    placement

let route reliability topology ~placement (c : Ir.Circuit.t) =
  let n_hardware = Topology.n_qubits topology in
  check_placement n_hardware placement;
  let cur = Array.copy placement in
  (* occupant.(h) = program qubit currently held by hardware qubit h. *)
  let occupant = Array.make n_hardware (-1) in
  Array.iteri (fun p h -> occupant.(h) <- p) cur;
  let out = ref [] in
  let swaps = ref 0 in
  let emit g = out := g :: !out in
  let apply_swap u v =
    emit (Ir.Gate.Two (Ir.Gate.Swap, u, v));
    incr swaps;
    let pu = occupant.(u) and pv = occupant.(v) in
    occupant.(u) <- pv;
    occupant.(v) <- pu;
    if pv >= 0 then cur.(pv) <- u;
    if pu >= 0 then cur.(pu) <- v
  in
  let route_two kind a b =
    if Topology.coupled topology cur.(a) cur.(b) then
      emit (Ir.Gate.Two (kind, cur.(a), cur.(b)))
    else begin
      let path = Reliability.swap_path reliability cur.(a) cur.(b) in
      (* Swap the control's qubit along the path, but stop as soon as the
         two program qubits become adjacent (the path may run through the
         target's own location). *)
      let rec step = function
        | u :: v :: rest ->
          if Topology.coupled topology cur.(a) cur.(b) then ()
          else begin
            ignore u;
            apply_swap cur.(a) v;
            step (v :: rest)
          end
        | [ _ ] | [] -> ()
      in
      step path;
      if not (Topology.coupled topology cur.(a) cur.(b)) then
        Analysis.Diag.invalid ~rule:"topo.coupling" ~layer:"routing"
          ~loc:(Analysis.Diag.Pair (cur.(a), cur.(b)))
          "swap path failed to co-locate program qubits %d and %d" a b;
      emit (Ir.Gate.Two (kind, cur.(a), cur.(b)))
    end
  in
  List.iter
    (fun g ->
      match (g : Ir.Gate.t) with
      | One (k, p) -> emit (Ir.Gate.One (k, cur.(p)))
      | Measure p -> emit (Ir.Gate.Measure cur.(p))
      | Two (kind, a, b) -> route_two kind a b
      | Ccx _ | Cswap _ ->
        Analysis.Diag.invalid ~rule:"circuit.flat" ~layer:"routing"
          "circuit not flattened: %s" (Ir.Gate.to_string g))
    c.Ir.Circuit.gates;
  {
    circuit = Ir.Circuit.create n_hardware (List.rev !out);
    final_placement = cur;
    swap_count = !swaps;
  }
