(** Gate and communication scheduling (Section 4.4).

    Gates are consumed in the IR's (topologically sorted) program order.
    When a 2Q gate's operands are mapped to uncoupled hardware qubits, the
    router inserts SWAPs along the most reliable path recorded in the
    reliability matrix, updates the live program-to-hardware mapping, and
    processes the next gate under the new mapping. On fully-connected
    machines (UMDTI) this pass inserts nothing. *)

type result = {
  circuit : Ir.Circuit.t;
      (** hardware-qubit circuit; 2Q gates only on coupled pairs, SWAPs
          kept explicit for later expansion *)
  final_placement : int array;  (** program qubit -> hardware qubit at exit *)
  swap_count : int;
}

(** [route reliability topology ~placement c] routes the flattened program
    circuit [c] (1Q + CNOT + measure over program qubits) onto hardware.
    [placement] must be injective and in range. *)
val route :
  Reliability.t -> Device.Topology.t -> placement:int array -> Ir.Circuit.t -> result
