module Topology = Device.Topology

(* Future 2Q program pairs after position [i], as (a, b) program qubits. *)
let upcoming_pairs gates =
  let arr = Array.of_list gates in
  let n = Array.length arr in
  let next = Array.make (n + 1) [] in
  for i = n - 1 downto 0 do
    next.(i) <-
      (match arr.(i) with
      | Ir.Gate.Two (_, a, b) -> (a, b) :: next.(i + 1)
      | _ -> next.(i + 1))
  done;
  next

let route ?(lookahead = 4) reliability topology ~placement (c : Ir.Circuit.t) =
  let n_hardware = Topology.n_qubits topology in
  let cur = Array.copy placement in
  let occupant = Array.make n_hardware (-1) in
  Array.iteri (fun p h -> occupant.(h) <- p) cur;
  let out = ref [] in
  let swaps = ref 0 in
  let emit g = out := g :: !out in
  let apply_swap u v =
    emit (Ir.Gate.Two (Ir.Gate.Swap, u, v));
    incr swaps;
    let pu = occupant.(u) and pv = occupant.(v) in
    occupant.(u) <- pv;
    occupant.(v) <- pu;
    if pv >= 0 then cur.(pv) <- u;
    if pu >= 0 then cur.(pu) <- v
  in
  let gates = c.Ir.Circuit.gates in
  let future = upcoming_pairs gates in
  (* Mapping after swapping along [path]: the walker's qubit advances and
     everything on the path shifts one step back. *)
  let simulate_mapping path =
    let sim = Array.copy cur in
    let rec walk = function
      | u :: v :: rest ->
        Array.iteri
          (fun p h -> if h = u then sim.(p) <- v else if h = v then sim.(p) <- u)
          (Array.copy sim);
        walk (v :: rest)
      | [ _ ] | [] -> ()
    in
    walk path;
    sim
  in
  let future_factor sim pairs =
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    List.fold_left
      (fun acc (a, b) ->
        let s = Reliability.score reliability sim.(a) sim.(b) in
        acc *. Float.max s 1e-6)
      1.0
      (take lookahead pairs)
  in
  let route_two i kind a b =
    if Topology.coupled topology cur.(a) cur.(b) then
      emit (Ir.Gate.Two (kind, cur.(a), cur.(b)))
    else begin
      let ha = cur.(a) and hb = cur.(b) in
      (* Candidates: move a to a neighbour of b's position, or b to a
         neighbour of a's position, along max-product paths. *)
      let candidates =
        List.filter_map
          (fun t' ->
            if t' = hb then None
            else
              match Reliability.path_between reliability ha t' with
              | path ->
                let gate_rel =
                  Reliability.swap_reliability reliability ha t'
                  *. Reliability.edge_reliability reliability t' hb
                in
                Some (`Move_a, path, gate_rel)
              | exception Not_found -> None)
          (Topology.neighbors topology hb)
        @ List.filter_map
            (fun s' ->
              if s' = ha then None
              else
                match Reliability.path_between reliability hb s' with
                | path ->
                  let gate_rel =
                    Reliability.swap_reliability reliability hb s'
                    *. Reliability.edge_reliability reliability ha s'
                  in
                  Some (`Move_b, path, gate_rel)
                | exception Not_found -> None)
            (Topology.neighbors topology ha)
      in
      if candidates = [] then
        Analysis.Diag.invalid ~rule:"topo.coupling" ~layer:"routing"
          ~loc:(Analysis.Diag.Pair (ha, hb))
          "lookahead router: no swap path between hardware qubits %d and %d" ha hb;
      let scored =
        List.map
          (fun (who, path, gate_rel) ->
            let sim = simulate_mapping path in
            (gate_rel *. future_factor sim future.(i + 1), who, path))
          candidates
      in
      let _, _, best_path =
        List.fold_left
          (fun ((bs, _, _) as best) ((s, _, _) as cand) ->
            if s > bs then cand else best)
          (List.hd scored) (List.tl scored)
      in
      (* Walk the mover along the chosen path, stopping early if the two
         program qubits become adjacent. *)
      let mover = if List.hd best_path = cur.(a) then a else b in
      let rec step = function
        | _ :: v :: rest ->
          if Topology.coupled topology cur.(a) cur.(b) then ()
          else begin
            apply_swap cur.(mover) v;
            step (v :: rest)
          end
        | [ _ ] | [] -> ()
      in
      step best_path;
      if not (Topology.coupled topology cur.(a) cur.(b)) then
        Analysis.Diag.invalid ~rule:"topo.coupling" ~layer:"routing"
          ~loc:(Analysis.Diag.Pair (cur.(a), cur.(b)))
          "lookahead router: swap path failed to co-locate program qubits %d and %d" a
          b;
      emit (Ir.Gate.Two (kind, cur.(a), cur.(b)))
    end
  in
  List.iteri
    (fun i g ->
      match (g : Ir.Gate.t) with
      | One (k, p) -> emit (Ir.Gate.One (k, cur.(p)))
      | Measure p -> emit (Ir.Gate.Measure cur.(p))
      | Two (kind, a, b) -> route_two i kind a b
      | Ccx _ | Cswap _ ->
        Analysis.Diag.invalid ~rule:"circuit.flat" ~layer:"routing"
          "circuit not flattened: %s" (Ir.Gate.to_string g))
    gates;
  {
    Router.circuit = Ir.Circuit.create n_hardware (List.rev !out);
    final_placement = cur;
    swap_count = !swaps;
  }
