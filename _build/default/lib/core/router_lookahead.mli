(** Lookahead routing (an extension of Section 4.4's scheduler).

    The default router commits, for each 2Q gate in isolation, to the
    reliability-optimal swap path moving the *control* toward the target.
    This variant considers more candidates — moving either operand toward
    any neighbour of the other along max-product paths — and scores each
    by the immediate gate's end-to-end reliability multiplied by the
    reliability the next [lookahead] upcoming 2Q gates would see under the
    post-swap mapping. Picking a marginally worse path now can leave
    frequently-interacting qubits better placed for what follows.

    Compared against the default router by the [lookahead] ablation
    experiment; produces the same interface as {!Router}. *)

(** [route ?lookahead reliability topology ~placement c] (default
    [lookahead] = 4 upcoming 2Q gates). *)
val route :
  ?lookahead:int ->
  Reliability.t ->
  Device.Topology.t ->
  placement:int array ->
  Ir.Circuit.t ->
  Router.result
