module Q = Mathkit.Quaternion
module Gateset = Device.Gateset
open Ir.Gate

let half_pi = Float.pi /. 2.0
let quarter_pi = Float.pi /. 4.0

let expand_swaps ?basis (c : Ir.Circuit.t) =
  let rewrite g =
    match g with
    | Two (Swap, a, b) -> (
      match basis with
      | Some Gateset.Rigetti_parametric_visible ->
        (* The parametric XY gate turns SWAP into two interactions
           (Section 6.4's unexposed native operations). *)
        Ir.Decompose.swap_via_iswap a b
      | _ -> [ Two (Cnot, a, b); Two (Cnot, b, a); Two (Cnot, a, b) ])
    | other -> [ other ]
  in
  Ir.Circuit.create c.Ir.Circuit.n_qubits (List.concat_map rewrite c.Ir.Circuit.gates)

let cnot basis a b =
  match (basis : Gateset.basis) with
  | Ibm_visible -> [ Two (Cnot, a, b) ]
  | Rigetti_visible | Rigetti_parametric_visible ->
    (* Rz(pi/2).Rx(pi/2).Rz(pi/2) is a Hadamard up to phase, so this is
       (I x H) CZ (I x H) in the paper's published gate order. *)
    [
      One (Rz half_pi, b); One (Rx half_pi, b); One (Rz half_pi, b);
      Two (Cz, a, b);
      One (Rz half_pi, b); One (Rx half_pi, b); One (Rz half_pi, b);
    ]
  | Umd_visible ->
    (* Maslov's ion-trap CNOT from one Ising XX(pi/4) interaction. *)
    [
      One (Ry half_pi, a);
      Two (Xx quarter_pi, a, b);
      One (Rx (-.half_pi), a);
      One (Rx (-.half_pi), b);
      One (Ry (-.half_pi), a);
    ]

let two_q_to_visible basis (c : Ir.Circuit.t) =
  let rewrite g =
    match g with
    | Two (Cnot, a, b) -> cnot basis a b
    | Two (Swap, a, b) ->
      Analysis.Diag.invalid ~rule:"gate.set" ~layer:"translation"
        ~loc:(Analysis.Diag.Pair (a, b)) "SWAP q%d,q%d not expanded before translation"
        a b
    | Two (((Cz | Xx _ | Iswap) as kind), a, b) ->
      (* Already-visible interactions pass through (parametric SWAP
         expansion emits CZ and iSWAP directly). *)
      if Gateset.two_q_visible basis kind then [ g ]
      else
        Analysis.Diag.invalid ~rule:"gate.set" ~layer:"translation"
          ~loc:(Analysis.Diag.Pair (a, b)) "%s is not software-visible in basis %s"
          (Ir.Gate.to_string g) (Gateset.basis_name basis)
    | Ccx _ | Cswap _ ->
      Analysis.Diag.invalid ~rule:"circuit.flat" ~layer:"translation"
        "circuit not flattened: %s" (Ir.Gate.to_string g)
    | (One _ | Measure _) as other -> [ other ]
  in
  Ir.Circuit.create c.Ir.Circuit.n_qubits (List.concat_map rewrite c.Ir.Circuit.gates)

let norm_angle a =
  (* Fold into (-pi, pi] to keep emitted angles tidy. *)
  let two_pi = 2.0 *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

let is_zero_angle a = Float.abs (norm_angle a) <= 1e-9

let rz_if q angle = if is_zero_angle angle then [] else [ One (Rz (norm_angle angle), q) ]

let u1_if q angle = if is_zero_angle angle then [] else [ One (U1 (norm_angle angle), q) ]

let emit_rotation basis q rot =
  if Q.is_identity ~eps:1e-9 rot then []
  else begin
    let alpha, beta, gamma = Q.to_zyz rot in
    match (basis : Gateset.basis) with
    | Ibm_visible ->
      if Float.abs beta <= 1e-9 then u1_if q (alpha +. gamma)
      else if Float.abs (beta -. half_pi) <= 1e-9 then
        [ One (U2 (norm_angle alpha, norm_angle gamma), q) ]
      else [ One (U3 (beta, norm_angle alpha, norm_angle gamma), q) ]
    | Rigetti_visible | Rigetti_parametric_visible ->
      if Float.abs beta <= 1e-9 then rz_if q (alpha +. gamma)
      else if Float.abs (beta -. half_pi) <= 1e-9 then
        (* Rz(a).Ry(pi/2).Rz(g) = Rz(a + pi/2).Rx(pi/2).Rz(g - pi/2):
           a single physical pulse. *)
        rz_if q (gamma -. half_pi)
        @ [ One (Rx half_pi, q) ]
        @ rz_if q (alpha +. half_pi)
      else
        (* General case, two pulses:
           Rz(a).Ry(b).Rz(g) = Rz(a).Rx(pi/2).Rz(-b).Rx(-pi/2).Rz(g). *)
        rz_if q gamma
        @ [ One (Rx (-.half_pi), q) ]
        @ rz_if q (-.beta)
        @ [ One (Rx half_pi, q) ]
        @ rz_if q alpha
    | Umd_visible ->
      if Float.abs beta <= 1e-9 then rz_if q (alpha +. gamma)
      else
        (* Rz(a).Ry(b).Rz(g) = Rz(a + g) . Rxy(b, pi/2 - g):
           one pulse about an axis in the XY plane, plus a virtual Z. *)
        One (Rxy (beta, norm_angle (half_pi -. gamma)), q) :: rz_if q (alpha +. gamma)
  end
