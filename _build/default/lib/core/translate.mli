(** Gate implementation and code generation toward vendor gates
    (Section 4.5).

    Rewrites hardware circuits so every 2Q gate is software-visible on the
    target interface:
    - IBM: CNOT is visible as-is;
    - Rigetti: CNOT A,B := Rz(pi/2) B; Rx(pi/2) B; Rz(pi/2) B; CZ A,B;
      Rz(pi/2) B; Rx(pi/2) B; Rz(pi/2) B (the paper's exact sequence);
    - UMD: CNOT via one XX(pi/4) Ising interaction plus 1Q rotations.

    The surrounding 1Q gates are emitted in IR terms; {!Oneq_opt} then
    turns them into the visible 1Q basis (merged or gate-by-gate). *)

(** [expand_swaps ?basis c] rewrites every explicit SWAP: 3 CNOTs by
    default; one CZ + one iSWAP when [basis] is the Rigetti parametric
    interface (Section 6.4's unexposed native operations). *)
val expand_swaps : ?basis:Device.Gateset.basis -> Ir.Circuit.t -> Ir.Circuit.t

(** [cnot basis a b] is the software-visible implementation of CNOT a,b
    (exactly unitary-equivalent; checked in tests). *)
val cnot : Device.Gateset.basis -> int -> int -> Ir.Gate.t list

(** [two_q_to_visible basis c] rewrites every CNOT of [c] through
    {!cnot}. The circuit must contain no SWAP (expand first) and no 2Q
    gate other than CNOT. *)
val two_q_to_visible : Device.Gateset.basis -> Ir.Circuit.t -> Ir.Circuit.t

(** [emit_rotation basis q rot] emits a software-visible 1Q sequence for
    the rotation [rot] on qubit [q], maximizing error-free Z rotations:
    - IBM: U1 / U2 / U3 (0, 1 or 2 physical pulses);
    - Rigetti: Rz-sandwiched Rx(+-pi/2) pulses (0, 1 or 2 pulses);
    - UMD: a single Rxy pulse plus a virtual Rz (0 or 1 pulse).
    Identity rotations produce []. *)
val emit_rotation : Device.Gateset.basis -> int -> Mathkit.Quaternion.t -> Ir.Gate.t list
