(** Static validation of compiled executables.

    The read side of the pass-invariant harness: package a finished
    {!Compiled.t} (or {!Pipeline.t}) as an {!Analysis.Check.executable}
    and run the full rule catalog over it. This is the cheap structural
    complement to the dynamic oracle {!Sim.Verify.check} — it never
    simulates, so it runs in linear time on any size of executable, and
    it applies to the baseline compilers' output just as well as TriQ's.

    Pass [measured] (the source program's measured qubits) when the
    caller still has the program; without it the readout-coverage
    direction of [exec.readout] is relaxed to internal consistency. *)

(** [executable_of_compiled ?measured c] is the static view of [c]. *)
val executable_of_compiled :
  ?measured:int list -> Compiled.t -> Analysis.Check.executable

(** [check_compiled ?measured c] returns every rule violation in [c]
    (empty list = statically well-formed). *)
val check_compiled : ?measured:int list -> Compiled.t -> Analysis.Diag.t list

(** [check_pipeline ?measured t] audits a TriQ pipeline result. *)
val check_pipeline : ?measured:int list -> Pipeline.t -> Analysis.Diag.t list
