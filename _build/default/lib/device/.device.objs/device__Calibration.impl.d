lib/device/calibration.ml: Array Float List Mathkit Printf Topology
