lib/device/calibration.mli: Topology
