lib/device/gateset.ml: Float Ir List
