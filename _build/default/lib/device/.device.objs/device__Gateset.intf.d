lib/device/gateset.mli: Ir
