lib/device/json.ml: Buffer Float List Printf String
