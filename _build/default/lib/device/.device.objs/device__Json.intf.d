lib/device/json.mli:
