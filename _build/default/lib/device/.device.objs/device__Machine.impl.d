lib/device/machine.ml: Array Calibration Float Format Gateset Ir List Topology
