lib/device/machine.mli: Calibration Format Gateset Ir Topology
