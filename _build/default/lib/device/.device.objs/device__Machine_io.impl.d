lib/device/machine_io.ml: Calibration Fun Gateset Json List Machine Printf Topology
