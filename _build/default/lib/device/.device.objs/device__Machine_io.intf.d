lib/device/machine_io.mli: Json Machine
