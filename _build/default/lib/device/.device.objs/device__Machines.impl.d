lib/device/machines.ml: Array Calibration Gateset List Machine Printf String Topology
