lib/device/machines.mli: Calibration Machine
