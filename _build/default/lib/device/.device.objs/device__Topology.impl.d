lib/device/topology.ml: Array Format Hashtbl List Printf Queue
