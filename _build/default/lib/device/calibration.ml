module Rng = Mathkit.Rng

type profile = {
  avg_one_q_err : float;
  avg_two_q_err : float;
  avg_readout_err : float;
  coherence_us : float;
  one_q_time_us : float;
  two_q_time_us : float;
  spatial_sigma : float;
  temporal_sigma : float;
  two_q_scale : (int * int -> float) option;
}

type t = {
  day : int;
  one_q : float array;
  two_q : ((int * int) * float) list;
  readout : float array;
}

let normalize (a, b) = if a <= b then (a, b) else (b, a)

(* Deterministic per-entity generator: every (seed, entity, day) triple gets
   its own stream, so querying day 5 never depends on whether day 4 was
   generated first. *)
let entity_rng ~seed ~kind ~a ~b ~day =
  let h = (((((seed * 31) + kind) * 1_000_003) + ((a * 131) + b)) * 8191) + day in
  let rng = Rng.create h in
  (* Burn a few outputs to decorrelate nearby integer seeds. *)
  ignore (Rng.int64 rng);
  ignore (Rng.int64 rng);
  rng

let lognormal rng sigma = exp (sigma *. Rng.gaussian rng)

let clamp_error avg x =
  let lo = avg /. 10.0 and hi = Float.min 0.5 (avg *. 10.0) in
  Float.max lo (Float.min hi x)

(* Spatial factor is day-independent (a qubit that is bad stays bad);
   temporal factor refreshes each day. *)
let drifted_error ~seed ~kind ~a ~b ~day ~avg ~profile =
  let spatial = lognormal (entity_rng ~seed ~kind ~a ~b ~day:(-1)) profile.spatial_sigma in
  let temporal = lognormal (entity_rng ~seed ~kind ~a ~b ~day) profile.temporal_sigma in
  clamp_error avg (avg *. spatial *. temporal)

let generate ~seed ~day topology profile =
  let n = Topology.n_qubits topology in
  let one_q =
    Array.init n (fun q ->
        drifted_error ~seed ~kind:1 ~a:q ~b:0 ~day ~avg:profile.avg_one_q_err ~profile)
  in
  let readout =
    Array.init n (fun q ->
        drifted_error ~seed ~kind:2 ~a:q ~b:0 ~day ~avg:profile.avg_readout_err ~profile)
  in
  let two_q =
    List.map
      (fun (a, b) ->
        let a', b' = normalize (a, b) in
        let scale =
          match profile.two_q_scale with Some f -> f (a', b') | None -> 1.0
        in
        ( (a', b'),
          drifted_error ~seed ~kind:3 ~a:a' ~b:b' ~day
            ~avg:(profile.avg_two_q_err *. scale) ~profile ))
      (Topology.edges topology)
  in
  { day; one_q; two_q; readout }

let series ~seed ~days topology profile =
  List.init days (fun day -> generate ~seed ~day topology profile)

let check_error name x =
  if x < 0.0 || x > 1.0 then invalid_arg (Printf.sprintf "Calibration: %s out of [0,1]" name)

let explicit ~day ~one_q ~two_q ~readout =
  Array.iter (check_error "one_q") one_q;
  Array.iter (check_error "readout") readout;
  let two_q = List.map (fun (pair, e) -> check_error "two_q" e; (normalize pair, e)) two_q in
  { day; one_q; two_q; readout }

let one_q_err t q = t.one_q.(q)

let two_q_err t a b =
  match List.assoc_opt (normalize (a, b)) t.two_q with
  | Some e -> e
  | None -> raise Not_found

let readout_err t q = t.readout.(q)

let average_two_q_err t =
  match t.two_q with
  | [] -> 0.0
  | l -> List.fold_left (fun acc (_, e) -> acc +. e) 0.0 l /. float_of_int (List.length l)

let average_readout_err t =
  if Array.length t.readout = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 t.readout /. float_of_int (Array.length t.readout)
