(** Calibration data: per-qubit and per-edge error rates with spatial and
    temporal (daily) variation.

    Real systems publish fresh calibration data after every calibration
    cycle (IBM: twice a day, Figure 3). We model each machine's published
    numbers as draws from a seeded log-normal drift process around the
    average rates of Figure 1: every qubit/edge gets a static spatial
    factor, and every day multiplies in a fresh temporal factor. The same
    seed always reproduces the same calibration history. *)

(** Average device characteristics and drift magnitudes. Error rates are
    probabilities in [0,1]; times are microseconds. *)
type profile = {
  avg_one_q_err : float;
  avg_two_q_err : float;
  avg_readout_err : float;
  coherence_us : float;
  one_q_time_us : float;
  two_q_time_us : float;
  spatial_sigma : float;  (** log-normal sigma across qubits/edges *)
  temporal_sigma : float;  (** log-normal sigma across days *)
  two_q_scale : (int * int -> float) option;
      (** optional per-coupling multiplier on the average 2Q error; used to
          model larger ion traps, where interaction strength falls (and
          error grows) with the distance between ions (Section 6.3) *)
}

(** A calibration snapshot for one day. *)
type t = private {
  day : int;
  one_q : float array;  (** per-qubit 1Q gate error *)
  two_q : ((int * int) * float) list;  (** per-coupling 2Q error, normalized pairs *)
  readout : float array;  (** per-qubit readout error *)
}

(** [generate ~seed ~day topology profile] is the snapshot published on
    [day]. Snapshots for the same seed/day are identical; different days
    drift around the profile averages. *)
val generate : seed:int -> day:int -> Topology.t -> profile -> t

(** [series ~seed ~days topology profile] is the calibration history for
    days [0 .. days-1] (Figure 3's time series). *)
val series : seed:int -> days:int -> Topology.t -> profile -> t list

(** [explicit ~day ~one_q ~two_q ~readout] builds a snapshot directly —
    used for the paper's worked example (Figure 6) and for tests. Error
    values must be in [0, 1]. *)
val explicit :
  day:int ->
  one_q:float array ->
  two_q:((int * int) * float) list ->
  readout:float array ->
  t

(** [one_q_err t q] is the 1Q error of qubit [q]. *)
val one_q_err : t -> int -> float

(** [two_q_err t a b] is the 2Q error of coupling [{a,b}]; raises
    [Not_found] for uncoupled pairs. *)
val two_q_err : t -> int -> int -> float

(** [readout_err t q] is the readout error of qubit [q]. *)
val readout_err : t -> int -> float

(** [average_two_q_err t] is the mean over all couplings — what a
    noise-unaware reliability matrix uses for every edge. *)
val average_two_q_err : t -> float

(** [average_readout_err t] is the mean readout error. *)
val average_readout_err : t -> float
