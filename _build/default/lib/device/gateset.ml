type vendor = Ibm | Rigetti | Umd

type basis =
  | Ibm_visible
  | Rigetti_visible
  | Rigetti_parametric_visible
  | Umd_visible

let vendor_of_basis = function
  | Ibm_visible -> Ibm
  | Rigetti_visible | Rigetti_parametric_visible -> Rigetti
  | Umd_visible -> Umd

let vendor_name = function Ibm -> "IBM" | Rigetti -> "Rigetti" | Umd -> "UMD"

let basis_name = function
  | Ibm_visible -> "IBM (U1/U2/U3 + CNOT)"
  | Rigetti_visible -> "Rigetti (Rx(+-pi/2)/Rz + CZ)"
  | Rigetti_parametric_visible -> "Rigetti parametric (Rx(+-pi/2)/Rz + CZ + iSWAP)"
  | Umd_visible -> "UMD (Rxy/Rz + XX)"

let native_description = function
  | Ibm_visible -> "1Q: Rx(pi/2), Rz(lambda); 2Q: CR (cross resonance)"
  | Rigetti_visible -> "1Q: Rx(+-pi/2), Rz(lambda); 2Q: CZ (controlled Z)"
  | Rigetti_parametric_visible ->
    "1Q: Rx(+-pi/2), Rz(lambda); 2Q: CZ, parametric XY (iSWAP)"
  | Umd_visible -> "1Q: Rxy(theta,phi), Rz(lambda); 2Q: XX(chi) (Ising)"

let visible_description = function
  | Ibm_visible -> "1Q: U1(l), U2(p,l), U3(t,p,l); 2Q: CNOT (from CR + 1Q)"
  | Rigetti_visible -> "1Q: Rx(+-pi/2), Rz(lambda); 2Q: CZ"
  | Rigetti_parametric_visible -> "1Q: Rx(+-pi/2), Rz(lambda); 2Q: CZ, iSWAP"
  | Umd_visible -> "1Q: Rxy(theta,phi), Rz(lambda); 2Q: XX(chi)"

let half_pi = Float.pi /. 2.0

let is_half_pi theta =
  Float.abs (Float.abs theta -. half_pi) <= 1e-9

let is_quarter_pi chi = Float.abs (Float.abs chi -. (Float.pi /. 4.0)) <= 1e-9

let one_q_visible basis (g : Ir.Gate.one_q) =
  match (basis, g) with
  | Ibm_visible, (U1 _ | U2 _ | U3 _) -> true
  | Ibm_visible, _ -> false
  | (Rigetti_visible | Rigetti_parametric_visible), Rz _ -> true
  | (Rigetti_visible | Rigetti_parametric_visible), Rx theta -> is_half_pi theta
  | (Rigetti_visible | Rigetti_parametric_visible), _ -> false
  | Umd_visible, (Rz _ | Rxy _) -> true
  | Umd_visible, _ -> false

let two_q_visible basis (g : Ir.Gate.two_q) =
  match (basis, g) with
  | Ibm_visible, Cnot -> true
  | (Rigetti_visible | Rigetti_parametric_visible), Cz -> true
  | Rigetti_parametric_visible, Iswap -> true
  | Umd_visible, Xx chi -> is_quarter_pi chi
  | (Ibm_visible | Rigetti_visible | Rigetti_parametric_visible | Umd_visible), _ ->
    false

let gate_visible basis (g : Ir.Gate.t) =
  match g with
  | One (k, _) -> one_q_visible basis k
  | Two (k, _, _) -> two_q_visible basis k
  | Measure _ -> true
  | Ccx _ | Cswap _ -> false

let circuit_visible basis (c : Ir.Circuit.t) =
  List.for_all (gate_visible basis) c.Ir.Circuit.gates

let is_error_free basis (g : Ir.Gate.one_q) =
  match (basis, g) with
  | Ibm_visible, U1 _ -> true
  | (Rigetti_visible | Rigetti_parametric_visible | Umd_visible), Rz _ -> true
  | (Ibm_visible | Rigetti_visible | Rigetti_parametric_visible | Umd_visible), _ ->
    false

let native_pulse_count basis (g : Ir.Gate.one_q) =
  if not (one_q_visible basis g) then
    invalid_arg "Gateset.native_pulse_count: gate not software-visible";
  match (basis, g) with
  | Ibm_visible, U1 _ -> 0
  | Ibm_visible, U2 _ -> 1
  | Ibm_visible, U3 _ -> 2
  | (Rigetti_visible | Rigetti_parametric_visible), Rz _ -> 0
  | (Rigetti_visible | Rigetti_parametric_visible), Rx _ -> 1
  | Umd_visible, Rz _ -> 0
  | Umd_visible, Rxy _ -> 1
  | (Ibm_visible | Rigetti_visible | Rigetti_parametric_visible | Umd_visible), _ ->
    (* unreachable: visibility already checked *)
    assert false

let circuit_pulse_count basis (c : Ir.Circuit.t) =
  List.fold_left
    (fun acc g ->
      match (g : Ir.Gate.t) with
      | One (k, _) -> acc + native_pulse_count basis k
      | Two _ | Measure _ -> acc
      | Ccx _ | Cswap _ ->
        invalid_arg "Gateset.circuit_pulse_count: undecomposed multi-qubit gate")
    0 c.Ir.Circuit.gates
