(** Vendor gate sets: native operations and the software-visible interface
    (Figure 2 of the paper).

    The three vendors expose different one- and two-qubit bases:
    - IBM: software-visible U1/U2/U3 + directed CNOT (native: Rx(pi/2), Rz,
      cross-resonance);
    - Rigetti: Rx(+-pi/2), Rz(lambda) + CZ (native = software-visible);
    - UMD trapped ion: arbitrary Rxy(theta,phi), Rz + Ising XX(chi)
      (native = software-visible).

    Translation into these bases lives in the compiler ([Triq.Translate]);
    this module is the declarative description the compiler takes as
    input, plus legality checks and pulse accounting. *)

type vendor = Ibm | Rigetti | Umd

(** Software-visible basis, named after the vendor interface it models.
    [Rigetti_parametric_visible] additionally exposes the
    parametrically-activated iSWAP (XY) interaction of newer Rigetti
    devices — the "more powerful native operations [that] were not
    software-visible" in the paper's Aspen experiments (Section 6.4). *)
type basis =
  | Ibm_visible
  | Rigetti_visible
  | Rigetti_parametric_visible
  | Umd_visible

val vendor_of_basis : basis -> vendor
val basis_name : basis -> string
val vendor_name : vendor -> string

(** [native_description b] is the human-readable native gate list
    (Figure 2, middle row). *)
val native_description : basis -> string

(** [visible_description b] is the software-visible gate list (Figure 2,
    bottom row). *)
val visible_description : basis -> string

(** [one_q_visible b g] is true when the one-qubit gate can be emitted
    as-is for this interface. *)
val one_q_visible : basis -> Ir.Gate.one_q -> bool

(** [two_q_visible b g] is true when the two-qubit gate can be emitted
    as-is for this interface. *)
val two_q_visible : basis -> Ir.Gate.two_q -> bool

(** [gate_visible b g] checks a whole IR gate (measures are always
    visible; Ccx/Cswap never are). *)
val gate_visible : basis -> Ir.Gate.t -> bool

(** [circuit_visible b c] is true when every gate of [c] is visible. *)
val circuit_visible : basis -> Ir.Circuit.t -> bool

(** [is_error_free b g] is true for "virtual" gates executed by classical
    frame tracking at zero error — Z-axis rotations on all three vendors. *)
val is_error_free : basis -> Ir.Gate.one_q -> bool

(** [native_pulse_count b g] is the number of physical (error-prone) X/Y
    pulses a visible one-qubit gate costs: 0 for virtual-Z gates, 1 for a
    single rotation pulse, 2 for IBM's U3 (two Rx(pi/2) pulses). Raises
    [Invalid_argument] if [g] is not visible in [b]. *)
val native_pulse_count : basis -> Ir.Gate.one_q -> int

(** [circuit_pulse_count b c] sums [native_pulse_count] over the one-qubit
    gates of [c] — the "native 1Q operations (actual X and Y pulses)"
    metric of Figure 8. *)
val circuit_pulse_count : basis -> Ir.Circuit.t -> int
