type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string * int

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect_char st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> error st (Printf.sprintf "expected %C, found %C" c x)
  | None -> error st (Printf.sprintf "expected %C, found end of input" c)

let parse_literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else error st (Printf.sprintf "bad literal (expected %s)" word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
      | Some c -> error st (Printf.sprintf "unsupported escape \\%c" c)
      | None -> error st "unterminated escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let is_number_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_number_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> error st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' ->
    advance st;
    String (parse_string_body st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Array []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected ',' or ']'"
      in
      Array (elements [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Object []
    end
    else begin
      let field () =
        skip_ws st;
        expect_char st '"';
        let key = parse_string_body st in
        skip_ws st;
        expect_char st ':';
        let v = parse_value st in
        (key, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> error st "expected ',' or '}'"
      in
      Object (fields [])
    end
  | Some c when is_number_char c -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> error st (Printf.sprintf "trailing input starting with %C" c));
  v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let format_number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    (* Shortest representation that parses back to the same float. *)
    let rec shortest p =
      if p > 17 then Printf.sprintf "%.17g" f
      else begin
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else shortest (p + 1)
      end
    in
    shortest 12
  end

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ')
    end
  in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (format_number f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Array [] -> Buffer.add_string buf "[]"
    | Array elements ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          go (level + 1) v)
        elements;
      pad level;
      Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (level + 1) v)
        fields;
      pad level;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let member name = function
  | Object fields -> (
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Json.member: missing %S" name))
  | _ -> invalid_arg (Printf.sprintf "Json.member: %S on a non-object" name)

let member_opt name = function
  | Object fields -> List.assoc_opt name fields
  | _ -> None

let to_float = function
  | Number f -> f
  | _ -> invalid_arg "Json.to_float: not a number"

let to_int v =
  let f = to_float v in
  if Float.is_integer f then int_of_float f
  else invalid_arg "Json.to_int: not an integer"

let to_bool = function Bool b -> b | _ -> invalid_arg "Json.to_bool: not a boolean"
let to_str = function String s -> s | _ -> invalid_arg "Json.to_str: not a string"
let to_list = function Array l -> l | _ -> invalid_arg "Json.to_list: not an array"
