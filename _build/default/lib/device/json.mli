(** Minimal self-contained JSON reader/writer (no external dependency),
    sufficient for machine-description files: null, booleans, numbers,
    strings (with the common escapes), arrays and objects. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string * int
(** [Parse_error (message, position)] *)

val parse : string -> t

(** [to_string ?indent t] serializes; [indent] (default 2) pretty-prints,
    0 emits compact single-line JSON. *)
val to_string : ?indent:int -> t -> string

(** Accessors: raise [Invalid_argument] with the member name on type or
    presence mismatch. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_float : t -> float
val to_int : t -> int
val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
