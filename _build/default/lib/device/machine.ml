type t = {
  name : string;
  basis : Gateset.basis;
  topology : Topology.t;
  profile : Calibration.profile;
  seed : int;
}

let create ~name ~basis ~topology ~profile ~seed =
  if not (Topology.is_connected topology) then
    invalid_arg "Machine.create: disconnected topology";
  { name; basis; topology; profile; seed }

let vendor m = Gateset.vendor_of_basis m.basis

let n_qubits m = Topology.n_qubits m.topology

let calibration m ~day = Calibration.generate ~seed:m.seed ~day m.topology m.profile

let fits m (c : Ir.Circuit.t) = c.Ir.Circuit.n_qubits <= n_qubits m

let duration_us m (c : Ir.Circuit.t) =
  (* Critical path: per-qubit clocks advanced by each gate's duration. *)
  let clocks = Array.make (max c.Ir.Circuit.n_qubits 1) 0.0 in
  List.iter
    (fun g ->
      let d =
        match (g : Ir.Gate.t) with
        | One _ -> m.profile.Calibration.one_q_time_us
        | Two _ -> m.profile.Calibration.two_q_time_us
        | Ccx _ | Cswap _ ->
          (* Undecomposed multi-qubit gates get a conservative 6x 2Q cost. *)
          6.0 *. m.profile.Calibration.two_q_time_us
        | Measure _ -> m.profile.Calibration.one_q_time_us
      in
      let qs = Ir.Gate.qubits g in
      let start = List.fold_left (fun acc q -> Float.max acc clocks.(q)) 0.0 qs in
      List.iter (fun q -> clocks.(q) <- start +. d) qs)
    c.Ir.Circuit.gates;
  Array.fold_left Float.max 0.0 clocks

let pp fmt m =
  Format.fprintf fmt "%s (%s): %d qubits, %d couplings, basis %s" m.name
    (Gateset.vendor_name (vendor m))
    (n_qubits m)
    (Topology.edge_count m.topology)
    (Gateset.basis_name m.basis)
