(** A complete machine description: everything TriQ takes as
    device-specific compile-time input (Figure 4, right-hand inputs).

    A machine bundles its topology, the software-visible gate interface,
    and the calibration profile from which daily noise snapshots are
    generated. *)

type t = private {
  name : string;
  basis : Gateset.basis;
  topology : Topology.t;
  profile : Calibration.profile;
  seed : int;  (** root seed of this machine's calibration history *)
}

val create :
  name:string ->
  basis:Gateset.basis ->
  topology:Topology.t ->
  profile:Calibration.profile ->
  seed:int ->
  t

val vendor : t -> Gateset.vendor
val n_qubits : t -> int

(** [calibration m ~day] is the machine's published calibration snapshot
    for [day] (deterministic in [m.seed] and [day]). *)
val calibration : t -> day:int -> Calibration.t

(** [fits m c] is true when circuit [c] has at most [n_qubits m] qubits —
    benchmarks that do not fit are the "X" entries in the paper's plots. *)
val fits : t -> Ir.Circuit.t -> bool

(** [duration_us m c] estimates execution time of a hardware-level circuit
    as critical-path length weighted by per-gate durations. *)
val duration_us : t -> Ir.Circuit.t -> float

val pp : Format.formatter -> t -> unit
