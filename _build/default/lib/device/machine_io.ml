exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let interface_name = function
  | Gateset.Ibm_visible -> "ibm"
  | Gateset.Rigetti_visible -> "rigetti"
  | Gateset.Rigetti_parametric_visible -> "rigetti-parametric"
  | Gateset.Umd_visible -> "umd"

let interface_of_name = function
  | "ibm" -> Gateset.Ibm_visible
  | "rigetti" -> Gateset.Rigetti_visible
  | "rigetti-parametric" -> Gateset.Rigetti_parametric_visible
  | "umd" -> Gateset.Umd_visible
  | other -> fail "unknown interface %S (ibm, rigetti, rigetti-parametric, umd)" other

let to_json (m : Machine.t) =
  let p = m.Machine.profile in
  Json.Object
    [
      ("name", Json.String m.Machine.name);
      ("interface", Json.String (interface_name m.Machine.basis));
      ("qubits", Json.Number (float_of_int (Topology.n_qubits m.Machine.topology)));
      ("directed", Json.Bool (Topology.directed m.Machine.topology));
      ( "edges",
        Json.Array
          (List.map
             (fun (a, b) ->
               Json.Array [ Json.Number (float_of_int a); Json.Number (float_of_int b) ])
             (Topology.edges m.Machine.topology)) );
      ("seed", Json.Number (float_of_int m.Machine.seed));
      ( "profile",
        Json.Object
          [
            ("one_q_err", Json.Number p.Calibration.avg_one_q_err);
            ("two_q_err", Json.Number p.Calibration.avg_two_q_err);
            ("readout_err", Json.Number p.Calibration.avg_readout_err);
            ("coherence_us", Json.Number p.Calibration.coherence_us);
            ("one_q_time_us", Json.Number p.Calibration.one_q_time_us);
            ("two_q_time_us", Json.Number p.Calibration.two_q_time_us);
            ("spatial_sigma", Json.Number p.Calibration.spatial_sigma);
            ("temporal_sigma", Json.Number p.Calibration.temporal_sigma);
          ] );
    ]

let of_json json =
  try
    let name = Json.to_str (Json.member "name" json) in
    let basis = interface_of_name (Json.to_str (Json.member "interface" json)) in
    let qubits = Json.to_int (Json.member "qubits" json) in
    let directed =
      match Json.member_opt "directed" json with
      | Some v -> Json.to_bool v
      | None -> false
    in
    let edges =
      List.map
        (fun pair ->
          match Json.to_list pair with
          | [ a; b ] -> (Json.to_int a, Json.to_int b)
          | _ -> fail "each edge must be a two-element array")
        (Json.to_list (Json.member "edges" json))
    in
    let seed =
      match Json.member_opt "seed" json with Some v -> Json.to_int v | None -> 1
    in
    let p = Json.member "profile" json in
    let field name = Json.to_float (Json.member name p) in
    let rate name =
      let v = field name in
      if v < 0.0 || v > 1.0 then fail "profile.%s out of [0, 1]" name;
      v
    in
    let positive name =
      let v = field name in
      if v <= 0.0 then fail "profile.%s must be positive" name;
      v
    in
    let nonneg name =
      let v = field name in
      if v < 0.0 then fail "profile.%s must be non-negative" name;
      v
    in
    let profile =
      {
        Calibration.avg_one_q_err = rate "one_q_err";
        avg_two_q_err = rate "two_q_err";
        avg_readout_err = rate "readout_err";
        coherence_us = positive "coherence_us";
        one_q_time_us = positive "one_q_time_us";
        two_q_time_us = positive "two_q_time_us";
        spatial_sigma = nonneg "spatial_sigma";
        temporal_sigma = nonneg "temporal_sigma";
        two_q_scale = None;
      }
    in
    let topology =
      try Topology.create qubits edges ~directed
      with Invalid_argument msg -> fail "bad topology: %s" msg
    in
    try Machine.create ~name ~basis ~topology ~profile ~seed
    with Invalid_argument msg -> fail "bad machine: %s" msg
  with Invalid_argument msg -> raise (Error msg)

let of_string s =
  match Json.parse s with
  | json -> of_json json
  | exception Json.Parse_error (msg, pos) -> fail "JSON error at offset %d: %s" pos msg

let to_string m = Json.to_string (to_json m) ^ "\n"

let of_file path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string source

let to_file path m =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string m))
