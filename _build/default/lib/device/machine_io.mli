(** Machine descriptions as data.

    The paper's central design move is that device characteristics —
    topology, gate interface, error profile — are *inputs* to the
    compiler, not code. This module serializes machine descriptions to a
    JSON document so downstream users can target their own device with
    `triqc --machine-file device.json` and no recompilation:

    {v
    {
      "name": "MyDevice",
      "interface": "ibm" | "rigetti" | "umd",
      "qubits": 5,
      "directed": true,
      "edges": [[1, 0], [2, 0]],
      "seed": 1234,
      "profile": {
        "one_q_err": 0.002,  "two_q_err": 0.048,  "readout_err": 0.062,
        "coherence_us": 40.0, "one_q_time_us": 0.05, "two_q_time_us": 0.3,
        "spatial_sigma": 0.45, "temporal_sigma": 0.3
      }
    }
    v}

    The optional per-coupling error scaling of large ion traps is not
    representable in a data file (it is a function); such machines are
    constructed in code. *)

exception Error of string
(** Malformed description (missing/ill-typed members, invalid values). *)

val to_json : Machine.t -> Json.t
val of_json : Json.t -> Machine.t

(** [of_string s] parses and validates a JSON description. *)
val of_string : string -> Machine.t

val to_string : Machine.t -> string

(** [of_file path] loads a description from disk. *)
val of_file : string -> Machine.t

val to_file : string -> Machine.t -> unit
