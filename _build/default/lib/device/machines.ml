let pct x = x /. 100.0

(* Drift magnitudes: the paper reports up to 9x variation across qubits and
   calibration cycles for superconducting 2Q/readout errors, and only 1-3%
   absolute fluctuation for the trapped-ion machine. *)
let superconducting_profile ~one_q ~two_q ~ro ~coherence =
  {
    Calibration.avg_one_q_err = pct one_q;
    avg_two_q_err = pct two_q;
    avg_readout_err = pct ro;
    coherence_us = coherence;
    one_q_time_us = 0.05;
    two_q_time_us = 0.3;
    spatial_sigma = 0.45;
    temporal_sigma = 0.3;
    two_q_scale = None;
  }

let ion_profile ~one_q ~two_q ~ro ~coherence =
  {
    Calibration.avg_one_q_err = pct one_q;
    avg_two_q_err = pct two_q;
    avg_readout_err = pct ro;
    coherence_us = coherence;
    one_q_time_us = 20.0;
    two_q_time_us = 250.0;
    (* The paper reports 2Q errors fluctuating between roughly 1% and 3%
       across ions and days (Sec 3.3): a ~3x spatial range. *)
    spatial_sigma = 0.35;
    temporal_sigma = 0.18;
    two_q_scale = None;
  }

(* Published coupling maps. IBM edges are directed (control, target). *)

let tenerife_topology =
  Topology.create 5 [ (1, 0); (2, 0); (2, 1); (3, 2); (3, 4); (4, 2) ] ~directed:true

let melbourne_topology =
  Topology.create 14
    [
      (1, 0); (1, 2); (2, 3); (4, 3); (4, 10); (5, 4); (5, 6); (5, 9); (6, 8);
      (7, 8); (9, 8); (9, 10); (11, 3); (11, 10); (11, 12); (12, 2); (13, 1);
      (13, 12);
    ]
    ~directed:true

let rueschlikon_topology =
  Topology.create 16
    [
      (1, 0); (1, 2); (2, 3); (3, 4); (3, 14); (5, 4); (6, 5); (6, 7); (6, 11);
      (7, 10); (8, 7); (9, 8); (9, 10); (11, 10); (12, 5); (12, 11); (12, 13);
      (13, 4); (13, 14); (15, 0); (15, 2); (15, 14);
    ]
    ~directed:true

(* Two octagons with two inter-ring couplers: 8 + 8 + 2 = 18 edges. *)
let aspen_topology =
  let octagon base = List.init 8 (fun i -> (base + i, base + ((i + 1) mod 8))) in
  Topology.create 16 (octagon 0 @ octagon 8 @ [ (1, 14); (2, 13) ]) ~directed:false

let ibmq5 =
  Machine.create ~name:"IBMQ5" ~basis:Gateset.Ibm_visible ~topology:tenerife_topology
    ~profile:(superconducting_profile ~one_q:0.2 ~two_q:4.76 ~ro:6.21 ~coherence:40.0)
    ~seed:501

let ibmq14 =
  Machine.create ~name:"IBMQ14" ~basis:Gateset.Ibm_visible ~topology:melbourne_topology
    ~profile:(superconducting_profile ~one_q:1.19 ~two_q:7.95 ~ro:9.09 ~coherence:30.0)
    ~seed:1401

let ibmq16 =
  Machine.create ~name:"IBMQ16" ~basis:Gateset.Ibm_visible
    ~topology:rueschlikon_topology
    ~profile:(superconducting_profile ~one_q:0.22 ~two_q:7.14 ~ro:4.15 ~coherence:40.0)
    ~seed:1601

let agave =
  Machine.create ~name:"Agave" ~basis:Gateset.Rigetti_visible ~topology:(Topology.line 4)
    ~profile:(superconducting_profile ~one_q:3.68 ~two_q:10.8 ~ro:16.37 ~coherence:15.0)
    ~seed:401

let aspen1 =
  Machine.create ~name:"Aspen1" ~basis:Gateset.Rigetti_visible ~topology:aspen_topology
    ~profile:(superconducting_profile ~one_q:3.43 ~two_q:8.92 ~ro:5.56 ~coherence:20.0)
    ~seed:1611

let aspen3 =
  Machine.create ~name:"Aspen3" ~basis:Gateset.Rigetti_visible ~topology:aspen_topology
    ~profile:(superconducting_profile ~one_q:3.79 ~two_q:5.37 ~ro:6.65 ~coherence:20.0)
    ~seed:1613

let umdti =
  Machine.create ~name:"UMDTI" ~basis:Gateset.Umd_visible
    ~topology:(Topology.fully_connected 5)
    ~profile:(ion_profile ~one_q:0.2 ~two_q:1.0 ~ro:0.6 ~coherence:1.5e6)
    ~seed:505

let all = [ ibmq5; ibmq14; ibmq16; agave; aspen1; aspen3; umdti ]

(* Figure 6's worked example: 2x4 grid, explicit 2Q reliabilities. *)

let example_8q_edges =
  [
    ((0, 1), 0.9); ((1, 2), 0.8); ((2, 3), 0.9);
    ((4, 5), 0.9); ((5, 6), 0.8); ((6, 7), 0.9);
    ((0, 4), 0.9); ((1, 5), 0.9); ((2, 6), 0.7); ((3, 7), 0.8);
  ]

let example_8q =
  Machine.create ~name:"Example8Q" ~basis:Gateset.Ibm_visible
    ~topology:(Topology.create 8 (List.map fst example_8q_edges) ~directed:false)
    ~profile:(superconducting_profile ~one_q:0.2 ~two_q:15.0 ~ro:5.0 ~coherence:40.0)
    ~seed:801

let example_8q_calibration =
  Calibration.explicit ~day:0
    ~one_q:(Array.make 8 0.002)
    ~two_q:(List.map (fun (pair, rel) -> (pair, 1.0 -. rel)) example_8q_edges)
    ~readout:(Array.make 8 0.05)

(* Forward-looking larger ion trap (Section 6.3): still fully connected,
   but gate error grows with the distance between ions in the chain —
   nearest neighbours at the base rate, the farthest pair at ~3x. *)
let ion_trap_chain n =
  if n < 3 then invalid_arg "Machines.ion_trap_chain: need at least 3 ions";
  let base = ion_profile ~one_q:0.2 ~two_q:1.0 ~ro:0.6 ~coherence:1.5e6 in
  let scale (a, b) =
    1.0 +. (2.0 *. float_of_int (abs (a - b) - 1) /. float_of_int (max 1 (n - 2)))
  in
  Machine.create
    ~name:(Printf.sprintf "IonChain%d" n)
    ~basis:Gateset.Umd_visible
    ~topology:(Topology.fully_connected n)
    ~profile:{ base with Calibration.two_q_scale = Some scale }
    ~seed:(9000 + n)

(* IBMQ20 Tokyo-style device: 4x5 lattice with diagonal couplers (43
   couplings). The 20-qubit IBM system is the setting of the Tannu &
   Qureshi variability study the paper compares against in Section 8. *)
let tokyo_topology =
  Topology.create 20
    [
      (0, 1); (1, 2); (2, 3); (3, 4);
      (0, 5); (1, 6); (1, 7); (2, 6); (2, 7); (3, 8); (3, 9); (4, 8); (4, 9);
      (5, 6); (6, 7); (7, 8); (8, 9);
      (5, 10); (5, 11); (6, 10); (6, 11); (7, 12); (7, 13); (8, 12); (8, 13);
      (9, 14);
      (10, 11); (11, 12); (12, 13); (13, 14);
      (10, 15); (11, 16); (11, 17); (12, 16); (12, 17); (13, 18); (13, 19);
      (14, 18); (14, 19);
      (15, 16); (16, 17); (17, 18); (18, 19);
    ]
    ~directed:false

let ibmq20 =
  Machine.create ~name:"IBMQ20" ~basis:Gateset.Ibm_visible ~topology:tokyo_topology
    ~profile:(superconducting_profile ~one_q:0.15 ~two_q:2.5 ~ro:4.0 ~coherence:80.0)
    ~seed:2001

(* The full 8-qubit Agave ring (only 4 qubits were available during the
   paper's study, see Figure 1's caption). *)
let agave_full =
  Machine.create ~name:"Agave8" ~basis:Gateset.Rigetti_visible
    ~topology:(Topology.ring 8)
    ~profile:(superconducting_profile ~one_q:3.68 ~two_q:10.8 ~ro:16.37 ~coherence:15.0)
    ~seed:408

(* Section 6.4 what-if: the same Aspen hardware with the parametric XY
   (iSWAP) interaction exposed to software. *)
let aspen1_parametric =
  Machine.create ~name:"Aspen1P" ~basis:Gateset.Rigetti_parametric_visible
    ~topology:aspen_topology
    ~profile:(superconducting_profile ~one_q:3.43 ~two_q:8.92 ~ro:5.56 ~coherence:20.0)
    ~seed:1611

let aspen3_parametric =
  Machine.create ~name:"Aspen3P" ~basis:Gateset.Rigetti_parametric_visible
    ~topology:aspen_topology
    ~profile:(superconducting_profile ~one_q:3.79 ~two_q:5.37 ~ro:6.65 ~coherence:20.0)
    ~seed:1613

let extended = [ ibmq20; agave_full; aspen1_parametric; aspen3_parametric ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun m -> String.lowercase_ascii m.Machine.name = target)
    (all @ extended)

let bristlecone rows cols =
  Machine.create
    ~name:(Printf.sprintf "Bristlecone%dx%d" rows cols)
    ~basis:Gateset.Ibm_visible ~topology:(Topology.grid rows cols)
    ~profile:(superconducting_profile ~one_q:0.3 ~two_q:5.0 ~ro:4.0 ~coherence:40.0)
    ~seed:(7200 + (rows * 100) + cols)
