(** The machine inventory of the study (Figure 1) plus auxiliary devices.

    Seven real prototypes: three IBM superconducting machines, three
    Rigetti superconducting machines, and the UMD trapped-ion machine.
    Average error rates, coherence times, qubit counts and coupling counts
    follow Figure 1; topologies follow the published coupling maps. *)

val ibmq5 : Machine.t  (** IBM Q5 Tenerife: 5 qubits, bow-tie, directed *)

val ibmq14 : Machine.t  (** IBM Q14 Melbourne: 14 qubits, 2x7 lattice *)

val ibmq16 : Machine.t  (** IBM Q16 Rueschlikon: 16 qubits, 2x8 lattice *)

val agave : Machine.t  (** Rigetti Agave: 4 available qubits in a line *)

val aspen1 : Machine.t  (** Rigetti Aspen-1: 16 qubits, two octagons *)

val aspen3 : Machine.t  (** Rigetti Aspen-3: same topology, better gates *)

val umdti : Machine.t  (** UMD trapped ion: 5 qubits, fully connected *)

(** All seven study machines in the paper's presentation order. *)
val all : Machine.t list

(** [find name] looks a machine up by (case-insensitive) name. *)
val find : string -> Machine.t option

(** The worked example of Figure 6: 8 qubits in a 2x4 grid with fixed 2Q
    reliabilities; [example_8q_calibration] is its (day 0) snapshot. *)
val example_8q : Machine.t

val example_8q_calibration : Calibration.t

(** IBMQ20 Tokyo-style lattice (20 qubits, 43 couplings, lower error
    rates): the 20-qubit IBM system referenced by the Section 8
    variability comparison. Not part of the seven-machine study
    ([all]); listed under [extended]. *)
val ibmq20 : Machine.t

(** The full 8-qubit Agave ring (the study could only use 4 qubits). *)
val agave_full : Machine.t

(** The Aspen machines with the parametric iSWAP interaction made
    software-visible — Section 6.4's "exposing them to the compiler would
    enable higher success rates" hypothesis, testable here. Identical
    hardware (topology, profile, calibration seed) to [aspen1]/[aspen3]. *)
val aspen1_parametric : Machine.t

val aspen3_parametric : Machine.t

(** Machines beyond the seven of the study, resolvable through [find]. *)
val extended : Machine.t list

(** [ion_trap_chain n] is a forward-looking [n]-ion trapped-ion machine:
    fully connected like UMDTI, but with 2Q error growing with ion
    distance (1x at distance 1 up to 3x for the farthest pair), modeling
    the reduced interaction strength the paper projects for larger traps
    (Section 6.3). *)
val ion_trap_chain : int -> Machine.t

(** [bristlecone n_rows n_cols] is a Google-72-qubit-style grid device used
    for the Section 6.5 scaling study, with IBM-like gates and error rates
    sampled per edge. *)
val bristlecone : int -> int -> Machine.t
