type t = {
  n : int;
  directed : bool;
  edge_list : (int * int) list;
  adj : int list array;  (** undirected adjacency, ascending *)
}

let normalize (a, b) = if a <= b then (a, b) else (b, a)

let create n edge_list ~directed =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg (Printf.sprintf "Topology.create: edge (%d,%d) out of range" a b);
      if a = b then invalid_arg "Topology.create: self-loop";
      let key = normalize (a, b) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Topology.create: duplicate edge (%d,%d)" a b);
      Hashtbl.add seen key ())
    edge_list;
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edge_list;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n; directed; edge_list; adj }

let n_qubits t = t.n
let directed t = t.directed
let edges t = t.edge_list
let edge_count t = List.length t.edge_list

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "Topology: qubit out of range"

let neighbors t q =
  check_qubit t q;
  t.adj.(q)

let degree t q = List.length (neighbors t q)

let coupled t a b =
  check_qubit t a;
  check_qubit t b;
  List.mem b t.adj.(a)

let has_directed_edge t a b =
  if not t.directed then coupled t a b
  else List.exists (fun (x, y) -> x = a && y = b) t.edge_list

let bfs t src =
  let dist = Array.make t.n (-1) in
  let parent = Array.make t.n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
      t.adj.(u)
  done;
  (dist, parent)

let is_connected t =
  let dist, _ = bfs t 0 in
  Array.for_all (fun d -> d >= 0) dist

let hop_distance t a b =
  check_qubit t a;
  check_qubit t b;
  let dist, _ = bfs t a in
  if dist.(b) < 0 then raise Not_found else dist.(b)

let shortest_path t a b =
  check_qubit t a;
  check_qubit t b;
  let dist, parent = bfs t a in
  if dist.(b) < 0 then raise Not_found;
  let rec walk acc v = if v = a then a :: acc else walk (v :: acc) parent.(v) in
  walk [] b

let is_fully_connected t =
  let rec all_pairs a =
    if a >= t.n then true
    else begin
      let rec inner b =
        if b >= t.n then true else coupled t a b && inner (b + 1)
      in
      inner (a + 1) && all_pairs (a + 1)
    end
  in
  t.n = 1 || all_pairs 0

let line n = create n (List.init (n - 1) (fun i -> (i, i + 1))) ~directed:false

let ring n =
  if n < 3 then invalid_arg "Topology.ring: need at least 3 qubits";
  create n (List.init n (fun i -> (i, (i + 1) mod n))) ~directed:false

let fully_connected n =
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      edges := (a, b) :: !edges
    done
  done;
  create n !edges ~directed:false

let grid rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.grid: bad shape";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  create (rows * cols) !edges ~directed:false

let heavy_hex cells =
  if cells < 1 then invalid_arg "Topology.heavy_hex: need at least one cell";
  (* A row of hexagons sharing vertical edges. Each hexagon: two rows of 3
     vertex qubits joined by edge qubits; neighbouring hexagons share their
     boundary column. Constructed as a ladder of 12-cycles. *)
  let top i = i and bottom total i = total + i in
  let width = (2 * cells) + 1 in
  let edges = ref [] in
  for i = 0 to width - 2 do
    edges := (top i, top (i + 1)) :: !edges;
    edges := (bottom width i, bottom width (i + 1)) :: !edges
  done;
  (* Vertical rungs every second column (hexagon boundaries). *)
  let i = ref 0 in
  while !i < width do
    edges := (top !i, bottom width !i) :: !edges;
    i := !i + 2
  done;
  create (2 * width) !edges ~directed:false

let diameter t =
  let best = ref 0 in
  for a = 0 to t.n - 1 do
    let dist, _ = bfs t a in
    Array.iter
      (fun d ->
        if d < 0 then raise Not_found;
        if d > !best then best := d)
      dist
  done;
  !best

let average_distance t =
  let total = ref 0 and pairs = ref 0 in
  for a = 0 to t.n - 1 do
    let dist, _ = bfs t a in
    Array.iteri
      (fun b d ->
        if b <> a && d > 0 then begin
          total := !total + d;
          incr pairs
        end)
      dist
  done;
  if !pairs = 0 then 0.0 else float_of_int !total /. float_of_int !pairs

let pp fmt t =
  Format.fprintf fmt "%d qubits, %d %s edges:" t.n (edge_count t)
    (if t.directed then "directed" else "undirected");
  List.iter (fun (a, b) -> Format.fprintf fmt " %d-%d" a b) t.edge_list
