(** Qubit connectivity graphs.

    Nodes are hardware qubits; edges are hardware-supported two-qubit
    interactions. IBM's cross-resonance CNOTs are *directed* (the edge
    records the hardware control direction); Rigetti CZ and UMD XX are
    symmetric, recorded here as a single undirected edge. Routing treats
    all edges as undirected — direction mismatches are repaired later with
    extra one-qubit gates. *)

type t

(** [create n edges ~directed] builds a topology over qubits [0..n-1].
    Edges must connect distinct in-range qubits; duplicates (in either
    orientation) are rejected. *)
val create : int -> (int * int) list -> directed:bool -> t

val n_qubits : t -> int

(** [directed t] is true when edge orientation is architecturally
    meaningful (IBM). *)
val directed : t -> bool

(** [edges t] lists edges as created (oriented for directed topologies). *)
val edges : t -> (int * int) list

(** [edge_count t] is the number of physical couplings. *)
val edge_count : t -> int

(** [coupled t a b] is true when a 2Q gate can be applied between [a] and
    [b] in either orientation. *)
val coupled : t -> int -> int -> bool

(** [has_directed_edge t a b] is true when the hardware natively supports
    the gate with control [a], target [b]. On undirected topologies this
    equals [coupled]. *)
val has_directed_edge : t -> int -> int -> bool

(** [neighbors t q] lists qubits coupled to [q], ascending. *)
val neighbors : t -> int -> int list

(** [degree t q] is [List.length (neighbors t q)]. *)
val degree : t -> int -> int

(** [is_connected t] checks the coupling graph is one component. *)
val is_connected : t -> bool

(** [hop_distance t a b] is the minimum number of couplings between [a]
    and [b] (0 when equal); raises [Not_found] if disconnected. *)
val hop_distance : t -> int -> int -> int

(** [shortest_path t a b] is a minimal-hop qubit path [a; ...; b]. *)
val shortest_path : t -> int -> int -> int list

(** [is_fully_connected t] is true when every qubit pair is coupled. *)
val is_fully_connected : t -> bool

(** Builders for standard shapes. *)
val line : int -> t

val ring : int -> t
val fully_connected : int -> t

(** [grid rows cols] is a rows x cols nearest-neighbour lattice. *)
val grid : int -> int -> t

(** [heavy_hex distance] is an IBM-style heavy-hexagon fragment built
    from [distance] hexagonal cells in a row: degree <= 3 everywhere,
    alternating vertex and edge qubits — the topology IBM moved to after
    the paper's lattice machines. *)
val heavy_hex : int -> t

(** [diameter t] is the maximum hop distance over all pairs; raises
    [Not_found] when disconnected. *)
val diameter : t -> int

(** [average_distance t] is the mean hop distance over distinct pairs. *)
val average_distance : t -> float

val pp : Format.formatter -> t -> unit
