lib/ir/circuit.ml: Format Gate List Printf
