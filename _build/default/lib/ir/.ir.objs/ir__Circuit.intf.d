lib/ir/circuit.mli: Format Gate
