lib/ir/dag.ml: Array Circuit Gate List
