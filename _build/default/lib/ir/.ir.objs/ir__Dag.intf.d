lib/ir/dag.mli: Circuit Gate
