lib/ir/decompose.ml: Circuit Float Gate List
