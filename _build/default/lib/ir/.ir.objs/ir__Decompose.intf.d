lib/ir/decompose.mli: Circuit Gate
