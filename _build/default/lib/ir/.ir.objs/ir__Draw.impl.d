lib/ir/draw.ml: Array Buffer Circuit Dag Format Gate List Printf String
