lib/ir/draw.mli: Circuit Format
