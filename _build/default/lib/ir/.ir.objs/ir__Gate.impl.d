lib/ir/gate.ml: Float Format List Mathkit
