lib/ir/gate.mli: Format Mathkit
