lib/ir/matrices.ml: Circuit Float Gate List Mathkit
