lib/ir/matrices.mli: Circuit Gate Mathkit
