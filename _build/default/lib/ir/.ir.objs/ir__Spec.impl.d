lib/ir/spec.ml: Float Format List String
