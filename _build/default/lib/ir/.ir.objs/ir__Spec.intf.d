lib/ir/spec.mli: Format
