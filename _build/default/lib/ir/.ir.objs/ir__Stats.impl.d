lib/ir/stats.ml: Array Circuit Dag Format Gate Hashtbl List Option
