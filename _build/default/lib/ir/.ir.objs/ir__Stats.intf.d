lib/ir/stats.mli: Circuit Format Gate
