type t = { n_qubits : int; gates : Gate.t list }

let validate n gates =
  if n <= 0 then invalid_arg "Circuit.create: n_qubits must be positive";
  List.iter
    (fun g ->
      if not (Gate.valid_on n g) then
        invalid_arg
          (Printf.sprintf "Circuit.create: invalid gate %s on %d qubits"
             (Gate.to_string g) n))
    gates

let create n_qubits gates =
  validate n_qubits gates;
  { n_qubits; gates }

let empty n = create n []

let append c gates = create c.n_qubits (c.gates @ gates)

let concat a b =
  if a.n_qubits <> b.n_qubits then invalid_arg "Circuit.concat: qubit count mismatch";
  { a with gates = a.gates @ b.gates }

let map_qubits ~n_qubits f c =
  create n_qubits (List.map (Gate.map_qubits f) c.gates)

let gate_count c = List.length c.gates

let count p c = List.length (List.filter p c.gates)

let one_q_count c = count (function Gate.One _ -> true | _ -> false) c
let two_q_count c = count Gate.is_two_qubit c
let measure_count c = count Gate.is_measure c

let sorted_unique l = List.sort_uniq compare l

let used_qubits c = sorted_unique (List.concat_map Gate.qubits c.gates)

let measured_qubits c =
  sorted_unique
    (List.filter_map (function Gate.Measure q -> Some q | _ -> None) c.gates)

let body c = { c with gates = List.filter (fun g -> not (Gate.is_measure g)) c.gates }

let measure_all c qs = append c (List.map (fun q -> Gate.Measure q) qs)

let compact c =
  let used = used_qubits c in
  let mapping = List.mapi (fun i q -> (q, i)) used in
  let rename q =
    match List.assoc_opt q mapping with
    | Some i -> i
    | None -> invalid_arg "Circuit.compact: unknown qubit"
  in
  let n = max 1 (List.length used) in
  (map_qubits ~n_qubits:n rename c, mapping)

let equal a b =
  a.n_qubits = b.n_qubits
  && List.length a.gates = List.length b.gates
  && List.for_all2 Gate.equal a.gates b.gates

let pp fmt c =
  Format.fprintf fmt "circuit(%d qubits):@\n" c.n_qubits;
  List.iter (fun g -> Format.fprintf fmt "  %a@\n" Gate.pp g) c.gates
