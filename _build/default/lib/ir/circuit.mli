(** Quantum circuits: an ordered gate list over [n_qubits] qubits.

    Program order is execution order; the dependency structure used for
    scheduling is derived by {!Dag}. *)

type t = private { n_qubits : int; gates : Gate.t list }

(** [create n gates] validates that every gate's operands lie in
    [\[0, n)] and are distinct, raising [Invalid_argument] otherwise. *)
val create : int -> Gate.t list -> t

(** [empty n] is the circuit with no gates. *)
val empty : int -> t

(** [append c gates] adds gates at the end (validated). *)
val append : t -> Gate.t list -> t

(** [concat a b] runs [a] then [b]; both must have the same qubit count. *)
val concat : t -> t -> t

(** [map_qubits ~n_qubits f c] renames qubits through [f] into a circuit
    over [n_qubits] qubits. *)
val map_qubits : n_qubits:int -> (int -> int) -> t -> t

(** [gate_count c] is the total number of operations, including measures. *)
val gate_count : t -> int

(** [one_q_count c] counts [One _] gates. *)
val one_q_count : t -> int

(** [two_q_count c] counts [Two _] gates ([Ccx]/[Cswap] are not counted;
    decompose first). *)
val two_q_count : t -> int

(** [measure_count c] counts readout operations. *)
val measure_count : t -> int

(** [used_qubits c] is the sorted list of qubits touched by any gate. *)
val used_qubits : t -> int list

(** [measured_qubits c] is the sorted list of qubits that are measured. *)
val measured_qubits : t -> int list

(** [body c] is [c] without its measure operations. *)
val body : t -> t

(** [measure_all c qs] appends measurement of each qubit in [qs]. *)
val measure_all : t -> int list -> t

(** [compact c] renumbers the used qubits densely from 0, returning the
    compacted circuit and the mapping [old_qubit -> new_qubit] as an
    association list. Simulation uses this so a 5-qubit program mapped onto
    a 16-qubit device only simulates the qubits it touches. *)
val compact : t -> t * (int * int) list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
