type t = {
  gates : Gate.t array;
  layer_of : int array;
  preds : int list array;
  n_layers : int;
}

let of_circuit (c : Circuit.t) =
  let gates = Array.of_list c.Circuit.gates in
  let n = Array.length gates in
  let layer_of = Array.make n 0 in
  let preds = Array.make n [] in
  (* frontier.(q) = index of the last gate seen on qubit q, or -1. *)
  let frontier = Array.make c.Circuit.n_qubits (-1) in
  let n_layers = ref 0 in
  for i = 0 to n - 1 do
    let qs = Gate.qubits gates.(i) in
    let deps = List.filter (fun j -> j >= 0) (List.map (fun q -> frontier.(q)) qs) in
    let deps = List.sort_uniq compare deps in
    preds.(i) <- deps;
    let layer =
      List.fold_left (fun acc j -> max acc (layer_of.(j) + 1)) 0 deps
    in
    layer_of.(i) <- layer;
    if layer + 1 > !n_layers then n_layers := layer + 1;
    List.iter (fun q -> frontier.(q) <- i) qs
  done;
  { gates; layer_of; preds; n_layers = !n_layers }

let layers t =
  let buckets = Array.make (max t.n_layers 1) [] in
  Array.iteri (fun i layer -> buckets.(layer) <- t.gates.(i) :: buckets.(layer)) t.layer_of;
  if t.n_layers = 0 then []
  else Array.to_list (Array.map List.rev buckets)

let depth t = t.n_layers

let two_q_depth t =
  List.length (List.filter (List.exists Gate.is_two_qubit) (layers t))

let predecessors t i =
  if i < 0 || i >= Array.length t.gates then invalid_arg "Dag.predecessors: index";
  t.preds.(i)

let critical_path t =
  let n = Array.length t.gates in
  if n = 0 then []
  else begin
    (* Walk back from a gate on the last layer through predecessors that
       realize its layer - 1. *)
    let best = ref 0 in
    Array.iteri (fun i l -> if l > t.layer_of.(!best) then best := i) t.layer_of;
    let rec walk i acc =
      let acc = i :: acc in
      if t.layer_of.(i) = 0 then acc
      else begin
        let pred =
          List.find (fun j -> t.layer_of.(j) = t.layer_of.(i) - 1) t.preds.(i)
        in
        walk pred acc
      end
    in
    walk !best []
  end

let parallelism t =
  if t.n_layers = 0 then 0.0
  else float_of_int (Array.length t.gates) /. float_of_int t.n_layers
