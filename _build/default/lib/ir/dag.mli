(** Dependency structure of a circuit.

    Two gates conflict iff they share a qubit; the DAG orders conflicting
    gates by program order. Scheduling consumes gates in topological order
    (which program order already is); this module exposes the ASAP layering
    used for depth, parallelism reporting and schedule visualization. *)

type t

(** [of_circuit c] builds the dependency structure. *)
val of_circuit : Circuit.t -> t

(** [layers t] groups gates into ASAP time-steps: every gate appears in the
    earliest layer after all gates it depends on. Gates within a layer act
    on disjoint qubits and can execute in parallel. *)
val layers : t -> Gate.t list list

(** [depth t] is the number of layers. *)
val depth : t -> int

(** [two_q_depth t] counts layers containing at least one two-qubit gate. *)
val two_q_depth : t -> int

(** [predecessors t i] are the indices (into the circuit's gate list) of
    the immediate dependencies of gate [i]. *)
val predecessors : t -> int -> int list

(** [parallelism t] is gate count divided by depth — average gates per
    time-step. *)
val parallelism : t -> float

(** [critical_path t] is one longest dependency chain, as gate indices in
    program order (empty for an empty circuit). *)
val critical_path : t -> int list
