open Gate

let cnot a b = Two (Cnot, a, b)

let ccx a b t =
  [
    One (H, t);
    cnot b t;
    One (Tdg, t);
    cnot a t;
    One (T, t);
    cnot b t;
    One (Tdg, t);
    cnot a t;
    One (T, b);
    One (T, t);
    One (H, t);
    cnot a b;
    One (T, a);
    One (Tdg, b);
    cnot a b;
  ]

let cswap c a b = (cnot b a :: ccx c a b) @ [ cnot b a ]

let swap a b = [ cnot a b; cnot b a; cnot a b ]

let cz a b = [ One (H, b); cnot a b; One (H, b) ]

let peres a b c = ccx a b c @ [ cnot a b ]

let logical_or a b t =
  [ One (X, a); One (X, b) ] @ ccx a b t @ [ One (X, a); One (X, b); One (X, t) ]

(* XX(chi) = (H(x)H) . CZ-phase construction. Using the identity
   exp(-i chi XX) = (H(x)H) exp(-i chi ZZ) (H(x)H) and
   exp(-i chi ZZ) = CNOT . (I(x)Rz(2 chi)) . CNOT. *)
let xx chi a b =
  [
    One (H, a);
    One (H, b);
    cnot a b;
    One (Rz (2.0 *. chi), b);
    cnot a b;
    One (H, a);
    One (H, b);
  ]

(* iSWAP from the canonical set: iSWAP = (S(x)S).(H(x)I).CNOT_ab.CNOT_ba.(I(x)H)
   up to global phase (order verified by the unitary tests). *)
let iswap a b =
  [ One (S, a); One (S, b); One (H, a); cnot a b; cnot b a; One (H, b) ]

let flatten (c : Circuit.t) =
  let rewrite g =
    match g with
    | One _ | Measure _ | Two (Cnot, _, _) -> [ g ]
    | Two (Cz, a, b) -> cz a b
    | Two (Swap, a, b) -> swap a b
    | Two (Xx chi, a, b) -> xx chi a b
    | Two (Iswap, a, b) -> iswap a b
    | Ccx (a, b, t) -> ccx a b t
    | Cswap (cq, a, b) -> cswap cq a b
  in
  Circuit.create c.Circuit.n_qubits (List.concat_map rewrite c.Circuit.gates)

(* SWAP from one iSWAP and one CZ: SWAP = iSWAP . (Sdg (x) Sdg) . CZ
   (only two 2Q interactions instead of three CNOTs). *)
let swap_via_iswap a b =
  [ Two (Cz, a, b); One (Sdg, a); One (Sdg, b); Two (Iswap, a, b) ]

let cu1 lambda a b =
  [
    One (Rz (lambda /. 2.0), a);
    One (Rz (lambda /. 2.0), b);
    cnot a b;
    One (Rz (-.lambda /. 2.0), b);
    cnot a b;
  ]

let crz theta a b =
  (* Like cu1 but with no phase on the control: pure conditional Rz. *)
  [ One (Rz (theta /. 2.0), b); cnot a b; One (Rz (-.theta /. 2.0), b); cnot a b ]

let cry theta a b =
  [ One (Ry (theta /. 2.0), b); cnot a b; One (Ry (-.theta /. 2.0), b); cnot a b ]

let crx theta a b =
  (* Conjugate the cry construction into the X basis. *)
  [ One (Rz (Float.pi /. 2.0), b) ] @ cry theta a b
  @ [ One (Rz (-.Float.pi /. 2.0), b) ]

let ch a b =
  (* Controlled-H via V CX V+ with V mapping H's axis to Z: standard
     construction H = e^{i pi/2} Ry(pi/4)... use S,H,T conjugation. *)
  [
    One (S, b); One (H, b); One (T, b);
    cnot a b;
    One (Tdg, b); One (H, b); One (Sdg, b);
  ]

let cy a b = [ One (Sdg, b); cnot a b; One (S, b) ]

let xx_gates = xx

let cu3 theta phi lambda a b =
  (* qelib1's construction. *)
  [
    One (U1 ((lambda +. phi) /. 2.0), a);
    One (U1 ((lambda -. phi) /. 2.0), b);
    cnot a b;
    One (U3 (-.theta /. 2.0, 0.0, -.(phi +. lambda) /. 2.0), b);
    cnot a b;
    One (U3 (theta /. 2.0, phi, 0.0), b);
  ]
