(** IR-level gate decompositions (the ScaffCC role).

    High-level multi-qubit gates are rewritten into the canonical
    vendor-independent set {one-qubit gates, CNOT} before mapping. Every
    rewrite here is exactly unitary-equivalent (up to global phase), which
    the test suite checks by matrix comparison. *)

(** [ccx a b t] is the standard 6-CNOT, 7-T Toffoli construction. *)
val ccx : int -> int -> int -> Gate.t list

(** [cswap c a b] is Fredkin via CNOT-conjugated Toffoli. *)
val cswap : int -> int -> int -> Gate.t list

(** [swap a b] is the 3-CNOT swap (footnote 2 of the paper). *)
val swap : int -> int -> Gate.t list

(** [cz a b] rewrites CZ as H-conjugated CNOT. *)
val cz : int -> int -> Gate.t list

(** [peres a b c] is the Peres gate: Toffoli followed by CNOT a,b. *)
val peres : int -> int -> int -> Gate.t list

(** [logical_or a b t] computes t := a OR b (inputs preserved) using De
    Morgan conjugation of a Toffoli. *)
val logical_or : int -> int -> int -> Gate.t list

(** [flatten c] rewrites a circuit so that only [One _], [Two (Cnot, ..)]
    and [Measure] gates remain — the technology-independent form TriQ-N
    starts from ([Cz], [Xx], [Swap], [Ccx], [Cswap] are all expanded;
    [Xx chi] is expanded via its CNOT construction). *)
val flatten : Circuit.t -> Circuit.t

(** Controlled-gate constructions (the rest of the qelib1 vocabulary),
    all exactly unitary-equivalent (checked in tests). *)

(** [cu1 lambda a b] is the controlled phase gate. *)
val cu1 : float -> int -> int -> Gate.t list

(** [crz theta a b] is the controlled Z rotation. *)
val crz : float -> int -> int -> Gate.t list

(** [cry theta a b] and [crx theta a b] are controlled Y/X rotations. *)
val cry : float -> int -> int -> Gate.t list

val crx : float -> int -> int -> Gate.t list

(** [ch a b] is the controlled Hadamard. *)
val ch : int -> int -> Gate.t list

(** [cy a b] is the controlled Y. *)
val cy : int -> int -> Gate.t list

(** [cu3 theta phi lambda a b] is the controlled generic rotation
    (qelib1's cu3). *)
val cu3 : float -> float -> float -> int -> int -> Gate.t list

(** [iswap a b] expresses iSWAP over the canonical {1Q, CNOT} set. *)
val iswap : int -> int -> Gate.t list

(** [xx_gates chi a b] expresses the Ising XX(chi) interaction over the
    canonical set. *)
val xx_gates : float -> int -> int -> Gate.t list

(** [swap_via_iswap a b] realizes SWAP with one iSWAP and one CZ — two
    native interactions instead of three — for interfaces exposing the
    parametric XY gate (Section 6.4's "more powerful native operations"). *)
val swap_via_iswap : int -> int -> Gate.t list
