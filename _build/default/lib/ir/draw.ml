let one_q_label (k : Gate.one_q) =
  match k with
  | X -> "[X]"
  | Y -> "[Y]"
  | Z -> "[Z]"
  | H -> "[H]"
  | S -> "[S]"
  | Sdg -> "[S']"
  | T -> "[T]"
  | Tdg -> "[T']"
  | Rx t -> Printf.sprintf "[Rx %.2g]" t
  | Ry t -> Printf.sprintf "[Ry %.2g]" t
  | Rz t -> Printf.sprintf "[Rz %.2g]" t
  | Rxy (t, p) -> Printf.sprintf "[R %.2g %.2g]" t p
  | U1 l -> Printf.sprintf "[U1 %.2g]" l
  | U2 (p, l) -> Printf.sprintf "[U2 %.2g %.2g]" p l
  | U3 (t, p, l) -> Printf.sprintf "[U3 %.2g %.2g %.2g]" t p l

(* Cells a gate contributes: (qubit, label) pairs. *)
let cells (g : Gate.t) =
  match g with
  | One (k, q) -> [ (q, one_q_label k) ]
  | Two (Cnot, a, b) -> [ (a, "*"); (b, "X") ]
  | Two (Cz, a, b) -> [ (a, "*"); (b, "*") ]
  | Two (Xx chi, a, b) ->
    let label = Printf.sprintf "XX(%.2g)" chi in
    [ (a, label); (b, label) ]
  | Two (Swap, a, b) -> [ (a, "x"); (b, "x") ]
  | Two (Iswap, a, b) -> [ (a, "iSW"); (b, "iSW") ]
  | Ccx (a, b, t) -> [ (a, "*"); (b, "*"); (t, "X") ]
  | Cswap (c, a, b) -> [ (c, "*"); (a, "x"); (b, "x") ]
  | Measure q -> [ (q, "M") ]

let span qs = (List.fold_left min max_int qs, List.fold_left max min_int qs)

let center_pad width fill s =
  let n = String.length s in
  if n >= width then s
  else begin
    let left = (width - n) / 2 in
    let right = width - n - left in
    String.make left fill ^ s ^ String.make right fill
  end

let render ?wire_labels (c : Circuit.t) =
  let n = c.Circuit.n_qubits in
  let labels =
    match wire_labels with
    | Some l ->
      if List.length l <> n then invalid_arg "Draw.render: wrong label count";
      l
    | None -> List.init n (fun q -> Printf.sprintf "q%d" q)
  in
  let layers = Dag.layers (Dag.of_circuit c) in
  (* Column content per layer: gate cells, '|' connectors on idle wires
     crossed by a multi-qubit gate, '-' otherwise. *)
  let columns =
    List.map
      (fun layer ->
        let col = Array.make n `Idle in
        List.iter
          (fun g ->
            let qs = Gate.qubits g in
            (if List.length qs > 1 then begin
               let lo, hi = span qs in
               for q = lo + 1 to hi - 1 do
                 match col.(q) with `Idle -> col.(q) <- `Bar | `Bar | `Cell _ -> ()
               done
             end);
            List.iter (fun (q, label) -> col.(q) <- `Cell label) (cells g))
          layer;
        col)
      layers
  in
  let label_width =
    List.fold_left (fun acc l -> max acc (String.length l)) 0 labels
  in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun q label ->
      Buffer.add_string buf (center_pad label_width ' ' label);
      Buffer.add_string buf ": -";
      List.iter
        (fun col ->
          let width =
            Array.fold_left
              (fun acc cell ->
                match cell with `Cell s -> max acc (String.length s) | `Bar | `Idle -> acc)
              1 col
          in
          let text =
            match col.(q) with
            | `Cell s -> center_pad width '-' s
            | `Bar -> center_pad width '-' "|"
            | `Idle -> String.make width '-'
          in
          Buffer.add_string buf text;
          Buffer.add_char buf '-')
        columns;
      Buffer.add_char buf '\n')
    labels;
  Buffer.contents buf

let pp fmt c = Format.pp_print_string fmt (render c)
