(** ASCII circuit rendering, one wire per qubit (Figure 5 style).

    Gates are placed left to right in dependency (ASAP) layers; control
    qubits print as [*], targets of CNOT as [X], swap endpoints as [x],
    measurement as [M], and vertical bars connect multi-qubit operands.

    {v
    q0: -[H]-----*---[H]-------M
    q1: -[H]-----|---[H]-------M
    q2: -[H]-----|---[H]-------M
    q3: -[X]-[H]-X-------------M
    v} *)

(** [render ?wire_labels circuit] draws the circuit as a multi-line
    string. [wire_labels] overrides the default "q0", "q1", ... names. *)
val render : ?wire_labels:string list -> Circuit.t -> string

(** [pp] is [render] as a formatter. *)
val pp : Format.formatter -> Circuit.t -> unit
