module Q = Mathkit.Quaternion

type one_q =
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | Rxy of float * float
  | U1 of float
  | U2 of float * float
  | U3 of float * float * float

type two_q = Cnot | Cz | Xx of float | Swap | Iswap

type t =
  | One of one_q * int
  | Two of two_q * int * int
  | Ccx of int * int * int
  | Cswap of int * int * int
  | Measure of int

let qubits = function
  | One (_, q) | Measure q -> [ q ]
  | Two (_, a, b) -> [ a; b ]
  | Ccx (a, b, c) | Cswap (a, b, c) -> [ a; b; c ]

let arity g = List.length (qubits g)

let is_measure = function Measure _ -> true | One _ | Two _ | Ccx _ | Cswap _ -> false

let is_two_qubit = function Two _ -> true | One _ | Ccx _ | Cswap _ | Measure _ -> false

let distinct qs =
  let sorted = List.sort compare qs in
  let rec check = function
    | a :: (b :: _ as rest) -> a <> b && check rest
    | [ _ ] | [] -> true
  in
  check sorted

let map_qubits f g =
  let g' =
    match g with
    | One (k, q) -> One (k, f q)
    | Two (k, a, b) -> Two (k, f a, f b)
    | Ccx (a, b, c) -> Ccx (f a, f b, f c)
    | Cswap (a, b, c) -> Cswap (f a, f b, f c)
    | Measure q -> Measure (f q)
  in
  if not (distinct (qubits g')) then
    invalid_arg "Gate.map_qubits: renaming collapsed operands";
  g'

let valid_on n g =
  let qs = qubits g in
  List.for_all (fun q -> q >= 0 && q < n) qs && distinct qs

let half_pi = Float.pi /. 2.0

let one_q_to_quaternion = function
  | X -> Q.rx Float.pi
  | Y -> Q.ry Float.pi
  | Z -> Q.rz Float.pi
  | H -> Q.of_axis_angle (1.0, 0.0, 1.0) Float.pi
  | S -> Q.rz half_pi
  | Sdg -> Q.rz (-.half_pi)
  | T -> Q.rz (Float.pi /. 4.0)
  | Tdg -> Q.rz (-.(Float.pi /. 4.0))
  | Rx theta -> Q.rx theta
  | Ry theta -> Q.ry theta
  | Rz theta -> Q.rz theta
  | Rxy (theta, phi) -> Q.rxy theta phi
  | U1 lambda -> Q.rz lambda
  | U2 (phi, lambda) -> Q.mul (Q.rz phi) (Q.mul (Q.ry half_pi) (Q.rz lambda))
  | U3 (theta, phi, lambda) -> Q.mul (Q.rz phi) (Q.mul (Q.ry theta) (Q.rz lambda))

let pp_one_q fmt = function
  | X -> Format.fprintf fmt "X"
  | Y -> Format.fprintf fmt "Y"
  | Z -> Format.fprintf fmt "Z"
  | H -> Format.fprintf fmt "H"
  | S -> Format.fprintf fmt "S"
  | Sdg -> Format.fprintf fmt "Sdg"
  | T -> Format.fprintf fmt "T"
  | Tdg -> Format.fprintf fmt "Tdg"
  | Rx t -> Format.fprintf fmt "Rx(%.4g)" t
  | Ry t -> Format.fprintf fmt "Ry(%.4g)" t
  | Rz t -> Format.fprintf fmt "Rz(%.4g)" t
  | Rxy (t, p) -> Format.fprintf fmt "Rxy(%.4g,%.4g)" t p
  | U1 l -> Format.fprintf fmt "U1(%.4g)" l
  | U2 (p, l) -> Format.fprintf fmt "U2(%.4g,%.4g)" p l
  | U3 (t, p, l) -> Format.fprintf fmt "U3(%.4g,%.4g,%.4g)" t p l

let pp_two_q fmt = function
  | Cnot -> Format.fprintf fmt "CNOT"
  | Cz -> Format.fprintf fmt "CZ"
  | Xx chi -> Format.fprintf fmt "XX(%.4g)" chi
  | Swap -> Format.fprintf fmt "SWAP"
  | Iswap -> Format.fprintf fmt "ISWAP"

let pp fmt = function
  | One (k, q) -> Format.fprintf fmt "%a q%d" pp_one_q k q
  | Two (k, a, b) -> Format.fprintf fmt "%a q%d, q%d" pp_two_q k a b
  | Ccx (a, b, c) -> Format.fprintf fmt "CCX q%d, q%d, q%d" a b c
  | Cswap (a, b, c) -> Format.fprintf fmt "CSWAP q%d, q%d, q%d" a b c
  | Measure q -> Format.fprintf fmt "MEASURE q%d" q

let to_string g = Format.asprintf "%a" pp g

let float_equal a b = Float.abs (a -. b) <= 1e-12

let one_q_equal a b =
  match (a, b) with
  | Rx s, Rx t | Ry s, Ry t | Rz s, Rz t | U1 s, U1 t -> float_equal s t
  | Rxy (s1, s2), Rxy (t1, t2) | U2 (s1, s2), U2 (t1, t2) ->
    float_equal s1 t1 && float_equal s2 t2
  | U3 (s1, s2, s3), U3 (t1, t2, t3) ->
    float_equal s1 t1 && float_equal s2 t2 && float_equal s3 t3
  | X, X | Y, Y | Z, Z | H, H | S, S | Sdg, Sdg | T, T | Tdg, Tdg -> true
  | ( (X | Y | Z | H | S | Sdg | T | Tdg | Rx _ | Ry _ | Rz _ | Rxy _ | U1 _ | U2 _ | U3 _),
      _ ) ->
    false

let two_q_equal a b =
  match (a, b) with
  | Cnot, Cnot | Cz, Cz | Swap, Swap | Iswap, Iswap -> true
  | Xx s, Xx t -> float_equal s t
  | (Cnot | Cz | Xx _ | Swap | Iswap), _ -> false

let equal g1 g2 =
  match (g1, g2) with
  | One (k1, q1), One (k2, q2) -> q1 = q2 && one_q_equal k1 k2
  | Two (k1, a1, b1), Two (k2, a2, b2) -> a1 = a2 && b1 = b2 && two_q_equal k1 k2
  | Ccx (a1, b1, c1), Ccx (a2, b2, c2) | Cswap (a1, b1, c1), Cswap (a2, b2, c2) ->
    a1 = a2 && b1 = b2 && c1 = c2
  | Measure q1, Measure q2 -> q1 = q2
  | (One _ | Two _ | Ccx _ | Cswap _ | Measure _), _ -> false
