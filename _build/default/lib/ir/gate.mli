(** The gate-level intermediate representation.

    This is the vocabulary ScaffCC-style lowering produces and every
    compiler pass manipulates: one-qubit rotations and named Cliffords,
    the two-qubit interactions of the three vendors (CNOT, CZ, Ising XX),
    the multi-qubit gates benchmarks are written in (Toffoli, Fredkin), and
    readout. Qubit operands are non-negative integers; whether they denote
    program or hardware qubits depends on the compilation stage. *)

(** One-qubit gates. [Rxy (theta, phi)] rotates by [theta] about the axis
    at angle [phi] in the XY plane (UMD's native gate). [U1]/[U2]/[U3] are
    IBM's software-visible parameterized gates. *)
type one_q =
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | Rxy of float * float
  | U1 of float
  | U2 of float * float
  | U3 of float * float * float

(** Two-qubit gates. For [Cnot] and [Cz] the first operand is the control.
    [Xx chi] is the Ising interaction exp(-i chi X(x)X); [Iswap] is the
    parametrically-activated XY gate of newer Rigetti devices
    (|01> <-> i|10>). *)
type two_q = Cnot | Cz | Xx of float | Swap | Iswap

type t =
  | One of one_q * int
  | Two of two_q * int * int
  | Ccx of int * int * int  (** Toffoli: two controls, then target *)
  | Cswap of int * int * int  (** Fredkin: control, then two targets *)
  | Measure of int

(** [qubits g] lists the operands in gate order. *)
val qubits : t -> int list

(** [arity g] is the number of operands. *)
val arity : t -> int

(** [is_measure g] is true for readout operations. *)
val is_measure : t -> bool

(** [is_two_qubit g] is true for [Two _] gates (not Ccx/Cswap, which must
    be decomposed before counting hardware 2Q operations). *)
val is_two_qubit : t -> bool

(** [map_qubits f g] renames every operand through [f]. The result must
    still have distinct operands or [Invalid_argument] is raised. *)
val map_qubits : (int -> int) -> t -> t

(** [valid_on n g] checks that operands are in [\[0, n)] and pairwise
    distinct. *)
val valid_on : int -> t -> bool

(** [one_q_to_quaternion g] is the rotation a non-measure one-qubit gate
    denotes (global phase discarded). *)
val one_q_to_quaternion : one_q -> Mathkit.Quaternion.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
