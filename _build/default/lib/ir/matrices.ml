module M = Mathkit.Matrix
module C = Mathkit.Cplx

let inv_sqrt2 = 1.0 /. sqrt 2.0

let one_q (g : Gate.one_q) =
  let c = C.re and ci = C.make in
  match g with
  | X -> M.of_rows [ [ C.zero; C.one ]; [ C.one; C.zero ] ]
  | Y -> M.of_rows [ [ C.zero; ci 0.0 (-1.0) ]; [ C.i; C.zero ] ]
  | Z -> M.of_rows [ [ C.one; C.zero ]; [ C.zero; c (-1.0) ] ]
  | H ->
    M.of_rows
      [ [ c inv_sqrt2; c inv_sqrt2 ]; [ c inv_sqrt2; c (-.inv_sqrt2) ] ]
  | S -> M.of_rows [ [ C.one; C.zero ]; [ C.zero; C.i ] ]
  | Sdg -> M.of_rows [ [ C.one; C.zero ]; [ C.zero; ci 0.0 (-1.0) ] ]
  | T -> M.of_rows [ [ C.one; C.zero ]; [ C.zero; C.exp_i (Float.pi /. 4.0) ] ]
  | Tdg ->
    M.of_rows [ [ C.one; C.zero ]; [ C.zero; C.exp_i (-.Float.pi /. 4.0) ] ]
  | Rx theta ->
    let ch = cos (theta /. 2.0) and sh = sin (theta /. 2.0) in
    M.of_rows [ [ c ch; ci 0.0 (-.sh) ]; [ ci 0.0 (-.sh); c ch ] ]
  | Ry theta ->
    let ch = cos (theta /. 2.0) and sh = sin (theta /. 2.0) in
    M.of_rows [ [ c ch; c (-.sh) ]; [ c sh; c ch ] ]
  | Rz theta ->
    M.of_rows
      [
        [ C.exp_i (-.theta /. 2.0); C.zero ];
        [ C.zero; C.exp_i (theta /. 2.0) ];
      ]
  | Rxy (theta, phi) ->
    (* cos(t/2) I - i sin(t/2) (cos(phi) X + sin(phi) Y) *)
    let ch = cos (theta /. 2.0) and sh = sin (theta /. 2.0) in
    let off_01 = C.mul (ci 0.0 (-.sh)) (C.exp_i (-.phi)) in
    let off_10 = C.mul (ci 0.0 (-.sh)) (C.exp_i phi) in
    M.of_rows [ [ c ch; off_01 ]; [ off_10; c ch ] ]
  | U1 lambda -> M.of_rows [ [ C.one; C.zero ]; [ C.zero; C.exp_i lambda ] ]
  | U2 (phi, lambda) ->
    M.of_rows
      [
        [ c inv_sqrt2; C.scale (-.inv_sqrt2) (C.exp_i lambda) ];
        [
          C.scale inv_sqrt2 (C.exp_i phi);
          C.scale inv_sqrt2 (C.exp_i (phi +. lambda));
        ];
      ]
  | U3 (theta, phi, lambda) ->
    let ch = cos (theta /. 2.0) and sh = sin (theta /. 2.0) in
    M.of_rows
      [
        [ c ch; C.scale (-.sh) (C.exp_i lambda) ];
        [ C.scale sh (C.exp_i phi); C.scale ch (C.exp_i (phi +. lambda)) ];
      ]

let two_q (g : Gate.two_q) =
  let c = C.re in
  match g with
  | Cnot ->
    M.of_rows
      [
        [ C.one; C.zero; C.zero; C.zero ];
        [ C.zero; C.one; C.zero; C.zero ];
        [ C.zero; C.zero; C.zero; C.one ];
        [ C.zero; C.zero; C.one; C.zero ];
      ]
  | Cz ->
    M.of_rows
      [
        [ C.one; C.zero; C.zero; C.zero ];
        [ C.zero; C.one; C.zero; C.zero ];
        [ C.zero; C.zero; C.one; C.zero ];
        [ C.zero; C.zero; C.zero; c (-1.0) ];
      ]
  | Xx chi ->
    (* exp(-i chi X(x)X) = cos(chi) I - i sin(chi) X(x)X *)
    let ch = C.re (cos chi) and msh = C.make 0.0 (-.sin chi) in
    M.of_rows
      [
        [ ch; C.zero; C.zero; msh ];
        [ C.zero; ch; msh; C.zero ];
        [ C.zero; msh; ch; C.zero ];
        [ msh; C.zero; C.zero; ch ];
      ]
  | Swap ->
    M.of_rows
      [
        [ C.one; C.zero; C.zero; C.zero ];
        [ C.zero; C.zero; C.one; C.zero ];
        [ C.zero; C.one; C.zero; C.zero ];
        [ C.zero; C.zero; C.zero; C.one ];
      ]
  | Iswap ->
    M.of_rows
      [
        [ C.one; C.zero; C.zero; C.zero ];
        [ C.zero; C.zero; C.i; C.zero ];
        [ C.zero; C.i; C.zero; C.zero ];
        [ C.zero; C.zero; C.zero; C.one ];
      ]

let permutation_8 perm =
  let m = M.create 8 8 in
  List.iteri (fun src dst -> M.set m dst src C.one) perm;
  m

(* Basis index 4*a + 2*b + c for operands (a, b, c). *)
let ccx = permutation_8 [ 0; 1; 2; 3; 4; 5; 7; 6 ]
let cswap = permutation_8 [ 0; 1; 2; 3; 4; 6; 5; 7 ]

(* Lift a k-qubit unitary acting on [operands] (first operand = highest bit
   of the small matrix index) to the full 2^n space where qubit 0 is the
   highest-order bit of the global index. *)
let lift n operands small =
  let dim = 1 lsl n in
  let k = List.length operands in
  let full = M.create dim dim in
  let bit_of_global idx q = (idx lsr (n - 1 - q)) land 1 in
  for col = 0 to dim - 1 do
    let small_col =
      List.fold_left (fun acc q -> (acc lsl 1) lor bit_of_global col q) 0 operands
    in
    for small_row = 0 to (1 lsl k) - 1 do
      let amp = M.get small small_row small_col in
      if not (C.is_zero amp) then begin
        (* Rewrite the operand bits of [col] to [small_row]'s bits. *)
        let row =
          List.fold_left
            (fun acc (pos, q) ->
              let bit = (small_row lsr (k - 1 - pos)) land 1 in
              let mask = 1 lsl (n - 1 - q) in
              if bit = 1 then acc lor mask else acc land lnot mask)
            col
            (List.mapi (fun pos q -> (pos, q)) operands)
        in
        M.set full row col (C.add (M.get full row col) amp)
      end
    done
  done;
  full

let circuit_unitary (c : Circuit.t) =
  let n = c.Circuit.n_qubits in
  if n > 12 then invalid_arg "Matrices.circuit_unitary: circuit too large";
  List.fold_left
    (fun acc g ->
      let lifted =
        match (g : Gate.t) with
        | One (k, q) -> lift n [ q ] (one_q k)
        | Two (k, a, b) -> lift n [ a; b ] (two_q k)
        | Ccx (a, b, t) -> lift n [ a; b; t ] ccx
        | Cswap (a, b, t) -> lift n [ a; b; t ] cswap
        | Measure _ ->
          invalid_arg "Matrices.circuit_unitary: circuit contains Measure"
      in
      M.mul lifted acc)
    (M.identity (1 lsl n))
    c.Circuit.gates
