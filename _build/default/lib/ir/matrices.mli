(** Unitary matrices for IR gates.

    Basis convention: for a two-qubit matrix over operands [(a, b)], the
    basis index is [2*x_a + x_b] — the first operand is the high bit. The
    simulator and all equivalence tests share this convention. *)

(** [one_q g] is the 2x2 unitary of a one-qubit gate. *)
val one_q : Gate.one_q -> Mathkit.Matrix.t

(** [two_q g] is the 4x4 unitary of a two-qubit gate (first operand = high
    bit; for controlled gates the first operand is the control). *)
val two_q : Gate.two_q -> Mathkit.Matrix.t

(** [ccx] and [cswap] are the 8x8 Toffoli and Fredkin unitaries with basis
    index [4*x_a + 2*x_b + x_c] for operands [(a, b, c)]. *)
val ccx : Mathkit.Matrix.t

val cswap : Mathkit.Matrix.t

(** [circuit_unitary c] is the full 2^n x 2^n unitary of a measurement-free
    circuit (qubit 0 is the highest-order bit). Intended for small [n] in
    tests; raises [Invalid_argument] if the circuit contains [Measure]. *)
val circuit_unitary : Circuit.t -> Mathkit.Matrix.t
