type t = { measured : int list; expected : (string * float) list }

let check_bits measured bits =
  if String.length bits <> List.length measured then
    invalid_arg "Spec: bitstring length must match measured qubit count";
  String.iter
    (function '0' | '1' -> () | _ -> invalid_arg "Spec: bitstring must be 0/1")
    bits

let deterministic measured bits =
  check_bits measured bits;
  { measured; expected = [ (bits, 1.0) ] }

let distribution measured dist =
  if dist = [] then invalid_arg "Spec.distribution: empty";
  List.iter
    (fun (bits, p) ->
      check_bits measured bits;
      if p <= 0.0 then invalid_arg "Spec.distribution: non-positive probability")
    dist;
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
  if total > 1.0 +. 1e-6 then invalid_arg "Spec.distribution: probabilities exceed 1";
  { measured; expected = dist }

let total_shots counts = List.fold_left (fun acc (_, n) -> acc + n) 0 counts

let success_rate t counts =
  let shots = total_shots counts in
  if shots = 0 then 0.0
  else begin
    (* Each expected outcome contributes its observed fraction, capped at
       its ideal probability share so the perfect device scores 1. *)
    let observed bits =
      match List.assoc_opt bits counts with
      | Some n -> float_of_int n /. float_of_int shots
      | None -> 0.0
    in
    (* Overlap of the observed distribution with the expected one, scaled
       so a perfect device scores 1. For a single deterministic answer this
       is simply the observed fraction of the correct bitstring. *)
    let overlap =
      List.fold_left
        (fun acc (bits, p) -> acc +. Float.min (observed bits) p)
        0.0 t.expected
    in
    let ideal = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 t.expected in
    overlap /. ideal
  end

let dominates t counts =
  match counts with
  | [] -> false
  | _ ->
    let mode, _ =
      List.fold_left
        (fun ((_, best_n) as best) ((_, n) as cur) ->
          if n > best_n then cur else best)
        (List.hd counts) (List.tl counts)
    in
    List.mem_assoc mode t.expected

let pp fmt t =
  Format.fprintf fmt "measure %s, expect"
    (String.concat "," (List.map string_of_int t.measured));
  List.iter (fun (bits, p) -> Format.fprintf fmt " %s:%.3f" bits p) t.expected
