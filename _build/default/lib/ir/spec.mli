(** Expected-output specification of a benchmark.

    The paper's figure of merit is the success rate: the fraction of
    repeated trials whose measured bitstring is the correct answer. A spec
    records, for the *program* qubits that are measured, the correct
    output distribution (a single bitstring for the deterministic NISQ
    benchmarks used in the paper). *)

type t = private {
  measured : int list;  (** program qubits read out, in bitstring order *)
  expected : (string * float) list;
      (** correct distribution: bitstring (chars '0'/'1', one per measured
          qubit, same order as [measured]) with probability *)
}

(** [deterministic measured bits] expects exactly [bits] with probability
    1. [bits] must have one char per measured qubit. *)
val deterministic : int list -> string -> t

(** [distribution measured dist] expects the given distribution; the
    probabilities must be positive and sum to at most 1 + 1e-6. *)
val distribution : int list -> (string * float) list -> t

(** [success_rate t counts] scores an observed histogram (bitstring ->
    number of shots): the fraction of shots landing on the expected
    answer(s), weighted so a perfect device scores 1. For a deterministic
    spec this is exactly the paper's success rate. *)
val success_rate : t -> (string * int) list -> float

(** [dominates t counts] is true when the expected answer is the mode of
    the observed histogram — the paper reports "failed runs" as those where
    the correct answer did not dominate the output distribution. *)
val dominates : t -> (string * int) list -> bool

val pp : Format.formatter -> t -> unit
