type t = {
  n_qubits : int;
  total_gates : int;
  one_q : int;
  two_q : int;
  multi_q : int;
  measures : int;
  depth : int;
  two_q_depth : int;
  parallelism : float;
  histogram : (string * int) list;
}

let gate_family (g : Gate.t) =
  match g with
  | One (k, _) -> (
    match k with
    | X -> "X"
    | Y -> "Y"
    | Z -> "Z"
    | H -> "H"
    | S -> "S"
    | Sdg -> "Sdg"
    | T -> "T"
    | Tdg -> "Tdg"
    | Rx _ -> "Rx"
    | Ry _ -> "Ry"
    | Rz _ -> "Rz"
    | Rxy _ -> "Rxy"
    | U1 _ -> "U1"
    | U2 _ -> "U2"
    | U3 _ -> "U3")
  | Two (Cnot, _, _) -> "CNOT"
  | Two (Cz, _, _) -> "CZ"
  | Two (Xx _, _, _) -> "XX"
  | Two (Swap, _, _) -> "SWAP"
  | Two (Iswap, _, _) -> "ISWAP"
  | Ccx _ -> "CCX"
  | Cswap _ -> "CSWAP"
  | Measure _ -> "MEASURE"

let of_circuit (c : Circuit.t) =
  let table = Hashtbl.create 16 in
  let bump key = Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)) in
  let one_q = ref 0 and two_q = ref 0 and multi_q = ref 0 and measures = ref 0 in
  List.iter
    (fun g ->
      bump (gate_family g);
      match (g : Gate.t) with
      | One _ -> incr one_q
      | Two _ -> incr two_q
      | Ccx _ | Cswap _ -> incr multi_q
      | Measure _ -> incr measures)
    c.Circuit.gates;
  let dag = Dag.of_circuit c in
  let histogram =
    Hashtbl.fold (fun key count acc -> (key, count) :: acc) table []
    |> List.sort (fun (k1, n1) (k2, n2) -> compare (n2, k1) (n1, k2))
  in
  {
    n_qubits = c.Circuit.n_qubits;
    total_gates = Circuit.gate_count c;
    one_q = !one_q;
    two_q = !two_q;
    multi_q = !multi_q;
    measures = !measures;
    depth = Dag.depth dag;
    two_q_depth = Dag.two_q_depth dag;
    parallelism = Dag.parallelism dag;
    histogram;
  }

let interaction_degree (c : Circuit.t) =
  let partners = Array.make c.Circuit.n_qubits [] in
  List.iter
    (fun g ->
      match (g : Gate.t) with
      | Two (_, a, b) ->
        if not (List.mem b partners.(a)) then partners.(a) <- b :: partners.(a);
        if not (List.mem a partners.(b)) then partners.(b) <- a :: partners.(b)
      | Ccx (a, b, t) | Cswap (a, b, t) ->
        List.iter
          (fun (x, y) ->
            if not (List.mem y partners.(x)) then partners.(x) <- y :: partners.(x))
          [ (a, b); (a, t); (b, a); (b, t); (t, a); (t, b) ]
      | One _ | Measure _ -> ())
    c.Circuit.gates;
  Array.map List.length partners

let pp fmt t =
  Format.fprintf fmt
    "%d qubits, %d gates (%d 1Q, %d 2Q, %d multi, %d measure), depth %d (2Q depth %d), parallelism %.2f@\n"
    t.n_qubits t.total_gates t.one_q t.two_q t.multi_q t.measures t.depth t.two_q_depth
    t.parallelism;
  List.iter (fun (k, n) -> Format.fprintf fmt "  %-8s %d@\n" k n) t.histogram
