(** Circuit statistics: the quantitative summary used by the benchmark
    tables and by compiler diagnostics. *)

type t = {
  n_qubits : int;
  total_gates : int;
  one_q : int;
  two_q : int;
  multi_q : int;  (** undecomposed Ccx/Cswap *)
  measures : int;
  depth : int;  (** ASAP layers *)
  two_q_depth : int;  (** layers containing a 2Q gate *)
  parallelism : float;
  histogram : (string * int) list;
      (** per-gate-family counts (rotations keyed by family, not angle),
          descending *)
}

(** [of_circuit c] computes all statistics in one pass. *)
val of_circuit : Circuit.t -> t

(** [gate_family g] is the histogram key of a gate ("H", "Rz", "CNOT",
    "MEASURE", ...). *)
val gate_family : Gate.t -> string

(** [interaction_degree c] is, per program qubit, the number of distinct
    partners it shares a 2Q gate with — the interaction-graph degree
    driving mapper difficulty. *)
val interaction_degree : Circuit.t -> int array

val pp : Format.formatter -> t -> unit
