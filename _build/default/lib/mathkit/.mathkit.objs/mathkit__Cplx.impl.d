lib/mathkit/cplx.ml: Complex Float Format
