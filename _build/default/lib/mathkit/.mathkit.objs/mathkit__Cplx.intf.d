lib/mathkit/cplx.mli: Complex Format
