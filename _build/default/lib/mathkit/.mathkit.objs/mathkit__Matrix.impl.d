lib/mathkit/matrix.ml: Array Complex Cplx Float Format List
