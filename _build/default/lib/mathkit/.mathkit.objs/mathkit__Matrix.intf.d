lib/mathkit/matrix.mli: Cplx Format
