lib/mathkit/quaternion.ml: Cplx Float Format Matrix
