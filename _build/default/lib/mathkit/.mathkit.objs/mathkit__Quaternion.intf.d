lib/mathkit/quaternion.mli: Format Matrix
