lib/mathkit/rng.ml: Array Float Int64 List
