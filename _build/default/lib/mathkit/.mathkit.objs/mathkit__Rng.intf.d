lib/mathkit/rng.mli:
