lib/mathkit/stats.mli:
