type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i

let re x : t = { Complex.re = x; im = 0.0 }
let make re im : t = { Complex.re; im }

let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let neg = Complex.neg
let conj = Complex.conj

let scale s (z : t) : t = { Complex.re = s *. z.re; im = s *. z.im }

let norm2 (z : t) = (z.re *. z.re) +. (z.im *. z.im)

let abs = Complex.norm

let exp_i theta : t = { Complex.re = cos theta; im = sin theta }

let approx ?(eps = 1e-9) a b = abs (sub a b) <= eps

let is_zero ?(eps = 1e-9) z = abs z <= eps

let pp fmt (z : t) =
  if Float.abs z.im <= 1e-12 then Format.fprintf fmt "%.4g" z.re
  else Format.fprintf fmt "(%.4g%+.4gi)" z.re z.im

let to_string z = Format.asprintf "%a" pp z
