(** Complex-number helpers on top of the standard [Complex] type.

    Quantum amplitudes and gate-matrix entries are [Complex.t] values; this
    module adds the small vocabulary the simulator and the unitary algebra
    need (scaling, approximate equality, phases). *)

type t = Complex.t

val zero : t
val one : t
val i : t

(** [re x] is the real number [x] as a complex value. *)
val re : float -> t

(** [make re im] builds a complex number from parts. *)
val make : float -> float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val conj : t -> t

(** [scale s z] multiplies [z] by the real scalar [s]. *)
val scale : float -> t -> t

(** [norm2 z] is |z|^2, the probability weight of amplitude [z]. *)
val norm2 : t -> float

(** [abs z] is |z|. *)
val abs : t -> float

(** [exp_i theta] is e^{i theta}. *)
val exp_i : float -> t

(** [approx ?eps a b] tests |a - b| <= eps (default 1e-9). *)
val approx : ?eps:float -> t -> t -> bool

(** [is_zero ?eps z] tests |z| <= eps. *)
val is_zero : ?eps:float -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
