type t = { rows : int; cols : int; data : Cplx.t array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) Cplx.zero }

let rows m = m.rows
let cols m = m.cols

let index m r c =
  if r < 0 || r >= m.rows || c < 0 || c >= m.cols then
    invalid_arg "Matrix: index out of bounds";
  (r * m.cols) + c

let get m r c = m.data.(index m r c)
let set m r c v = m.data.(index m r c) <- v

let of_rows row_lists =
  match row_lists with
  | [] -> invalid_arg "Matrix.of_rows: empty"
  | first :: _ ->
    let cols = List.length first in
    let rows = List.length row_lists in
    let m = create rows cols in
    List.iteri
      (fun r row ->
        if List.length row <> cols then invalid_arg "Matrix.of_rows: ragged rows";
        List.iteri (fun c v -> set m r c v) row)
      row_lists;
    m

let identity n =
  let m = create n n in
  for k = 0 to n - 1 do
    set m k k Cplx.one
  done;
  m

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create a.rows b.cols in
  for r = 0 to a.rows - 1 do
    for c = 0 to b.cols - 1 do
      let acc = ref Cplx.zero in
      for k = 0 to a.cols - 1 do
        acc := Cplx.add !acc (Cplx.mul (get a r k) (get b k c))
      done;
      set m r c !acc
    done
  done;
  m

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.add: dimension mismatch";
  { a with data = Array.mapi (fun k v -> Cplx.add v b.data.(k)) a.data }

let scale s a = { a with data = Array.map (Cplx.mul s) a.data }

let kron a b =
  let m = create (a.rows * b.rows) (a.cols * b.cols) in
  for ar = 0 to a.rows - 1 do
    for ac = 0 to a.cols - 1 do
      let v = get a ar ac in
      for br = 0 to b.rows - 1 do
        for bc = 0 to b.cols - 1 do
          set m ((ar * b.rows) + br) ((ac * b.cols) + bc) (Cplx.mul v (get b br bc))
        done
      done
    done
  done;
  m

let adjoint a =
  let m = create a.cols a.rows in
  for r = 0 to a.rows - 1 do
    for c = 0 to a.cols - 1 do
      set m c r (Cplx.conj (get a r c))
    done
  done;
  m

let trace a =
  if a.rows <> a.cols then invalid_arg "Matrix.trace: not square";
  let acc = ref Cplx.zero in
  for k = 0 to a.rows - 1 do
    acc := Cplx.add !acc (get a k k)
  done;
  !acc

let apply a v =
  if Array.length v <> a.cols then invalid_arg "Matrix.apply: dimension mismatch";
  Array.init a.rows (fun r ->
      let acc = ref Cplx.zero in
      for c = 0 to a.cols - 1 do
        acc := Cplx.add !acc (Cplx.mul (get a r c) v.(c))
      done;
      !acc)

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Cplx.approx ~eps x y) a.data b.data

let proportional ?(eps = 1e-9) a b =
  if a.rows <> b.rows || a.cols <> b.cols then false
  else begin
    (* Find the largest entry of [a] and use it to fix the relative phase. *)
    let best = ref (-1) in
    Array.iteri
      (fun k v ->
        if !best < 0 || Cplx.abs v > Cplx.abs a.data.(!best) then
          if Cplx.abs v > eps then best := k)
      a.data;
    if !best < 0 then
      (* [a] is numerically zero: proportional iff [b] is too. *)
      Array.for_all (Cplx.is_zero ~eps) b.data
    else if Cplx.is_zero ~eps b.data.(!best) then false
    else begin
      let phase = Complex.div b.data.(!best) a.data.(!best) in
      if Float.abs (Cplx.abs phase -. 1.0) > 1e-6 then false
      else
        Array.for_all2
          (fun x y -> Cplx.approx ~eps (Cplx.mul phase x) y)
          a.data b.data
    end
  end

let is_unitary ?(eps = 1e-9) a =
  a.rows = a.cols && equal ~eps (mul a (adjoint a)) (identity a.rows)

let pp fmt m =
  for r = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for c = 0 to m.cols - 1 do
      if c > 0 then Format.fprintf fmt ", ";
      Cplx.pp fmt (get m r c)
    done;
    Format.fprintf fmt "]@\n"
  done
