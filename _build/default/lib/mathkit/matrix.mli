(** Small dense complex matrices.

    Gate unitaries are 2x2 (one-qubit) or 4x4 (two-qubit); equivalence
    checking multiplies chains of them. Sizes stay tiny, so a boxed
    row-major array of [Complex.t] is the right representation. *)

type t

(** [create rows cols] is the all-zero matrix. *)
val create : int -> int -> t

(** [of_rows rows] builds a matrix from row lists; all rows must have the
    same length and the list must be non-empty. *)
val of_rows : Cplx.t list list -> t

(** [identity n] is the n x n identity. *)
val identity : int -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Cplx.t
val set : t -> int -> int -> Cplx.t -> unit

(** [mul a b] is the matrix product; dimensions must agree. *)
val mul : t -> t -> t

(** [add a b] is the entry-wise sum; dimensions must agree. *)
val add : t -> t -> t

(** [scale s a] multiplies every entry by [s]. *)
val scale : Cplx.t -> t -> t

(** [kron a b] is the Kronecker (tensor) product a (x) b. *)
val kron : t -> t -> t

(** [adjoint a] is the conjugate transpose. *)
val adjoint : t -> t

(** [trace a] is the trace of a square matrix. *)
val trace : t -> Cplx.t

(** [apply a v] is the matrix-vector product; [Array.length v = cols a]. *)
val apply : t -> Cplx.t array -> Cplx.t array

(** [equal ?eps a b] is entry-wise approximate equality. *)
val equal : ?eps:float -> t -> t -> bool

(** [proportional ?eps a b] tests equality up to a global phase, the notion
    of equivalence that matters for unitaries. *)
val proportional : ?eps:float -> t -> t -> bool

(** [is_unitary ?eps a] tests a * a^dagger = I for a square matrix. *)
val is_unitary : ?eps:float -> t -> bool

val pp : Format.formatter -> t -> unit
