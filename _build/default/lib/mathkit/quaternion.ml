type t = { w : float; x : float; y : float; z : float }

let identity = { w = 1.0; x = 0.0; y = 0.0; z = 0.0 }

let norm q = sqrt ((q.w *. q.w) +. (q.x *. q.x) +. (q.y *. q.y) +. (q.z *. q.z))

let normalize q =
  let n = norm q in
  if n < 1e-12 then invalid_arg "Quaternion.normalize: zero quaternion";
  { w = q.w /. n; x = q.x /. n; y = q.y /. n; z = q.z /. n }

let of_axis_angle (nx, ny, nz) theta =
  let len = sqrt ((nx *. nx) +. (ny *. ny) +. (nz *. nz)) in
  if len < 1e-12 then invalid_arg "Quaternion.of_axis_angle: zero axis";
  let s = sin (theta /. 2.0) /. len in
  { w = cos (theta /. 2.0); x = nx *. s; y = ny *. s; z = nz *. s }

let rx theta = of_axis_angle (1.0, 0.0, 0.0) theta
let ry theta = of_axis_angle (0.0, 1.0, 0.0) theta
let rz theta = of_axis_angle (0.0, 0.0, 1.0) theta
let rxy theta phi = of_axis_angle (cos phi, sin phi, 0.0) theta

let mul a b =
  {
    w = (a.w *. b.w) -. (a.x *. b.x) -. (a.y *. b.y) -. (a.z *. b.z);
    x = (a.w *. b.x) +. (a.x *. b.w) +. (a.y *. b.z) -. (a.z *. b.y);
    y = (a.w *. b.y) -. (a.x *. b.z) +. (a.y *. b.w) +. (a.z *. b.x);
    z = (a.w *. b.z) +. (a.x *. b.y) -. (a.y *. b.x) +. (a.z *. b.w);
  }

let conjugate q = { q with x = -.q.x; y = -.q.y; z = -.q.z }

let equal_rotation ?(eps = 1e-9) a b =
  let close s =
    Float.abs ((s *. a.w) -. b.w) <= eps
    && Float.abs ((s *. a.x) -. b.x) <= eps
    && Float.abs ((s *. a.y) -. b.y) <= eps
    && Float.abs ((s *. a.z) -. b.z) <= eps
  in
  close 1.0 || close (-1.0)

let is_identity ?(eps = 1e-9) q = equal_rotation ~eps q identity

let is_z_rotation ?(eps = 1e-9) q =
  Float.abs q.x <= eps && Float.abs q.y <= eps

let z_angle q = 2.0 *. atan2 q.z q.w

(* Euler decompositions. With q = (w,x,y,z) mapped to the SU(2) matrix
   [[w - iz, -y - ix], [y - ix, w + iz]]:
   - cos(beta/2) = sqrt(w^2 + z^2), sin(beta/2) = sqrt(x^2 + y^2)
   - (alpha + gamma)/2 = atan2(z, w)
   - ZYZ: (alpha - gamma)/2 = atan2(-x, y)
   - ZXZ: (alpha - gamma)/2 = atan2(y, x)
   Degenerate branches (beta = 0 or pi) leave one phase free; we pin the
   free half-angle to 0. *)
let euler_half_angles q half_diff =
  let cos_half = sqrt ((q.w *. q.w) +. (q.z *. q.z)) in
  let sin_half = sqrt ((q.x *. q.x) +. (q.y *. q.y)) in
  let beta = 2.0 *. atan2 sin_half cos_half in
  let half_sum = if cos_half < 1e-12 then 0.0 else atan2 q.z q.w in
  let half_diff = if sin_half < 1e-12 then 0.0 else half_diff in
  (half_sum +. half_diff, beta, half_sum -. half_diff)

let to_zyz q =
  let q = normalize q in
  euler_half_angles q (atan2 (-.q.x) q.y)

let to_zxz q =
  let q = normalize q in
  euler_half_angles q (atan2 q.y q.x)

let to_matrix q =
  Matrix.of_rows
    [
      [ Cplx.make q.w (-.q.z); Cplx.make (-.q.y) (-.q.x) ];
      [ Cplx.make q.y (-.q.x); Cplx.make q.w q.z ];
    ]

let pp fmt q = Format.fprintf fmt "(%.4g, %.4g, %.4g, %.4g)" q.w q.x q.y q.z
