(** Unit quaternions representing single-qubit rotations.

    TriQ coalesces runs of one-qubit gates by composing their rotations as
    quaternion products and re-emitting the result as two (error-free)
    Z-axis rotations around one X- or Y-axis rotation. A unit quaternion
    [(w, x, y, z)] corresponds to the SU(2) element
    [w*I - i*(x*X + y*Y + z*Z)]. *)

type t = { w : float; x : float; y : float; z : float }

(** The identity rotation. *)
val identity : t

(** [of_axis_angle (nx, ny, nz) theta] rotates by [theta] around the given
    axis; the axis is normalized internally and must be non-zero. *)
val of_axis_angle : float * float * float -> float -> t

(** [rx theta], [ry theta], [rz theta] are the standard axis rotations. *)
val rx : float -> t

val ry : float -> t
val rz : float -> t

(** [rxy theta phi] rotates by [theta] around the axis
    [(cos phi, sin phi, 0)] in the XY plane — the native one-qubit gate of
    the UMD trapped-ion machine. *)
val rxy : float -> float -> t

(** [mul a b] composes rotations: apply [b] first, then [a] (matching
    matrix product order [a * b]). *)
val mul : t -> t -> t

(** [normalize q] rescales to unit norm; raises [Invalid_argument] on the
    zero quaternion. *)
val normalize : t -> t

val conjugate : t -> t
val norm : t -> float

(** [equal_rotation ?eps a b] tests whether [a] and [b] denote the same
    rotation, i.e. are equal up to overall sign. *)
val equal_rotation : ?eps:float -> t -> t -> bool

(** [is_identity ?eps q] tests whether [q] is the trivial rotation. *)
val is_identity : ?eps:float -> t -> bool

(** [is_z_rotation ?eps q] tests whether [q] is a pure Z-axis rotation
    (including the identity); such gates are error-free "virtual Z" gates
    on all three vendors. *)
val is_z_rotation : ?eps:float -> t -> bool

(** [z_angle q] is the angle [lambda] such that [q] equals [rz lambda];
    meaningful only when [is_z_rotation q]. *)
val z_angle : t -> float

(** [to_zyz q] returns [(alpha, beta, gamma)] with
    [q = rz alpha * ry beta * rz gamma]. *)
val to_zyz : t -> float * float * float

(** [to_zxz q] returns [(alpha, beta, gamma)] with
    [q = rz alpha * rx beta * rz gamma]. *)
val to_zxz : t -> float * float * float

(** [to_matrix q] is the corresponding 2x2 SU(2) matrix. *)
val to_matrix : t -> Matrix.t

val pp : Format.formatter -> t -> unit
