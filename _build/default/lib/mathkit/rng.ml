type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let float t =
  (* 53 high-quality bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let f = float t in
  let i = int_of_float (f *. Float.of_int bound) in
  if i >= bound then bound - 1 else i

let bool t p = float t < p

let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t l =
  match l with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth l (int t (List.length l))
