(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic component of the toolflow (calibration drift, noise
    trajectories, stochastic swap search) draws from an explicit generator so
    that experiments are reproducible run-to-run. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)
val split : t -> t

(** [int64 t] is the next raw 64-bit output. *)
val int64 : t -> int64

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** [gaussian t] is a standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t l] picks a uniform element of the non-empty list [l]. *)
val choose : t -> 'a list -> 'a
