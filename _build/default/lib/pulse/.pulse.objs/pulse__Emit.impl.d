lib/pulse/emit.ml: Format List Printf Schedule String Waveform
