lib/pulse/emit.mli: Schedule
