lib/pulse/lower.ml: Device Float Ir List Printf Schedule Triq Waveform
