lib/pulse/lower.mli: Device Ir Schedule Triq
