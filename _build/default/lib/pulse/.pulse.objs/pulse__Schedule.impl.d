lib/pulse/schedule.ml: Float Format Hashtbl List Option Waveform
