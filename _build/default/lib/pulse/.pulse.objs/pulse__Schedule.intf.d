lib/pulse/schedule.mli: Format Waveform
