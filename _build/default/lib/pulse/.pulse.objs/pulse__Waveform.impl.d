lib/pulse/waveform.ml: Format
