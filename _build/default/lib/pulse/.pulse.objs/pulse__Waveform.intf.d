lib/pulse/waveform.mli: Format
