let channel_name ch = Format.asprintf "%a" Schedule.pp_channel ch

let json_of_entry (e : Schedule.entry) =
  let common = Printf.sprintf "\"t0\": %.1f, \"ch\": \"%s\"" e.Schedule.start_ns (channel_name e.Schedule.channel) in
  match e.Schedule.instruction with
  | Schedule.Play w ->
    let shape =
      match w.Waveform.shape with
      | Waveform.Gaussian { sigma_ns } -> Printf.sprintf "\"shape\": \"gaussian\", \"sigma\": %.1f" sigma_ns
      | Waveform.Gaussian_square { sigma_ns; width_ns } ->
        Printf.sprintf "\"shape\": \"gaussian_square\", \"sigma\": %.1f, \"width\": %.1f"
          sigma_ns width_ns
      | Waveform.Drag { sigma_ns; beta } ->
        Printf.sprintf "\"shape\": \"drag\", \"sigma\": %.1f, \"beta\": %.2f" sigma_ns beta
      | Waveform.Constant -> "\"shape\": \"constant\""
    in
    Printf.sprintf
      "{\"name\": \"play\", %s, \"pulse\": \"%s\", \"duration\": %.1f, \"amp\": %.3f, \"phase\": %.4f, %s}"
      common w.Waveform.name w.Waveform.duration_ns w.Waveform.amplitude
      w.Waveform.phase shape
  | Schedule.Frame_change phase ->
    Printf.sprintf "{\"name\": \"fc\", %s, \"phase\": %.6f}" common phase
  | Schedule.Acquire { duration_ns } ->
    Printf.sprintf "{\"name\": \"acquire\", %s, \"duration\": %.1f}" common duration_ns
  | Schedule.Busy { duration_ns } ->
    Printf.sprintf "{\"name\": \"delay\", %s, \"duration\": %.1f}" common duration_ns

let openpulse_json schedule =
  let entries = Schedule.entries schedule in
  let body = String.concat ",\n    " (List.map json_of_entry entries) in
  Printf.sprintf
    "{\n  \"schema\": \"openpulse-0.1\",\n  \"duration_ns\": %.1f,\n  \"instructions\": [\n    %s\n  ]\n}\n"
    (Schedule.duration_ns schedule) body

let text schedule = Format.asprintf "%a" Schedule.pp schedule
