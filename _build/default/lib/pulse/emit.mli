(** Pulse-schedule serialization.

    [openpulse_json] renders an OpenPulse-flavoured JSON document (one
    instruction object per entry, with [t0], [ch], [name] and pulse
    parameters), mirroring the interface IBM announced for pulse-level
    control (the paper's Section 7 pointer). [text] is the human-readable
    timing listing. *)

val openpulse_json : Schedule.t -> string

val text : Schedule.t -> string
