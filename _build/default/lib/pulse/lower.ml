module Machine = Device.Machine
module Gateset = Device.Gateset
module Calibration = Device.Calibration
open Schedule

let ns_of_us us = 1000.0 *. us

let readout_duration_ns machine =
  match Gateset.vendor_of_basis machine.Machine.basis with
  | Gateset.Ibm | Gateset.Rigetti -> 2000.0
  | Gateset.Umd -> 200_000.0

(* Single-qubit pulse calibrations. *)

let x90 machine phase =
  let duration = ns_of_us machine.Machine.profile.Calibration.one_q_time_us in
  match Gateset.vendor_of_basis machine.Machine.basis with
  | Gateset.Ibm ->
    Waveform.create ~name:"x90" ~shape:(Waveform.Drag { sigma_ns = duration /. 4.0; beta = 0.6 })
      ~duration_ns:duration ~amplitude:0.2 ~phase
  | Gateset.Rigetti ->
    Waveform.create ~name:"x90"
      ~shape:(Waveform.Gaussian { sigma_ns = duration /. 4.0 })
      ~duration_ns:duration ~amplitude:0.25 ~phase
  | Gateset.Umd ->
    Waveform.create ~name:"raman90" ~shape:Waveform.Constant
      ~duration_ns:(duration /. 2.0) ~amplitude:0.5 ~phase

let raman machine theta phase =
  (* Rotation angle proportional to tone duration. *)
  let full = ns_of_us machine.Machine.profile.Calibration.one_q_time_us in
  let duration = Float.max 1.0 (full *. Float.abs theta /. Float.pi) in
  Waveform.create ~name:"raman" ~shape:Waveform.Constant ~duration_ns:duration
    ~amplitude:0.5
    ~phase:(if theta >= 0.0 then phase else phase +. Float.pi)

let two_q_duration machine = ns_of_us machine.Machine.profile.Calibration.two_q_time_us

let flat_top machine ~name ~fraction ~amplitude ~phase =
  let duration = Float.max 2.0 (two_q_duration machine *. fraction) in
  Waveform.create ~name
    ~shape:(Waveform.Gaussian_square { sigma_ns = duration /. 8.0; width_ns = duration /. 2.0 })
    ~duration_ns:duration ~amplitude ~phase

(* Gate lowering. Returns the updated schedule. *)

let lower_gate machine schedule (g : Ir.Gate.t) =
  let basis = machine.Machine.basis in
  if not (Gateset.gate_visible basis g) then
    invalid_arg
      (Printf.sprintf "Pulse.Lower: gate %s is not software-visible" (Ir.Gate.to_string g));
  let seq steps = List.fold_left (fun sched step -> step sched) schedule steps in
  let play_on sched channels w = fst (append sched ~channels (Play w)) in
  let fc_on sched channels phase = fst (append sched ~channels (Frame_change phase)) in
  match g with
  | One (U1 lambda, q) -> fc_on schedule [ Drive q ] lambda
  | One (U2 (phi, lambda), q) ->
    (* U2 = fc(lambda) . X90 . fc(phi) up to global phase. *)
    seq
      [
        (fun s -> fc_on s [ Drive q ] lambda);
        (fun s -> play_on s [ Drive q ] (x90 machine 0.0));
        (fun s -> fc_on s [ Drive q ] phi);
      ]
  | One (U3 (theta, phi, lambda), q) ->
    seq
      [
        (fun s -> fc_on s [ Drive q ] (lambda -. (Float.pi /. 2.0)));
        (fun s -> play_on s [ Drive q ] (x90 machine 0.0));
        (fun s -> fc_on s [ Drive q ] (Float.pi -. theta));
        (fun s -> play_on s [ Drive q ] (x90 machine 0.0));
        (fun s -> fc_on s [ Drive q ] (phi -. (Float.pi /. 2.0)));
      ]
  | One (Rz lambda, q) -> fc_on schedule [ Drive q ] lambda
  | One (Rx theta, q) ->
    (* Rigetti-visible Rx(+-pi/2) or the generic case: one pulse whose
       phase encodes the sign. *)
    play_on schedule [ Drive q ]
      (x90 machine (if theta >= 0.0 then 0.0 else Float.pi))
  | One (Rxy (theta, phi), q) -> play_on schedule [ Drive q ] (raman machine theta phi)
  | One _ ->
    (* Unreachable: gate_visible already filtered non-visible 1Q gates. *)
    assert false
  | Two (Cnot, a, b) ->
    (* Echoed cross resonance: CR90+ tone, pi echo on the control, CR90-
       tone. The CR tones drive the control channel and occupy the
       target's drive line; the echo occupies the control's. *)
    let cr phase =
      flat_top machine ~name:"cr90" ~fraction:0.45 ~amplitude:0.35 ~phase
    in
    let xp =
      Waveform.create ~name:"xp"
        ~shape:(Waveform.Drag
                  { sigma_ns = ns_of_us machine.Machine.profile.Calibration.one_q_time_us /. 4.0;
                    beta = 0.6 })
        ~duration_ns:(ns_of_us machine.Machine.profile.Calibration.one_q_time_us)
        ~amplitude:0.4 ~phase:0.0
    in
    seq
      [
        (fun s -> play_on s [ Control (a, b); Drive a; Drive b ] (cr 0.0));
        (fun s -> play_on s [ Drive a ] xp);
        (fun s -> play_on s [ Control (a, b); Drive a; Drive b ] (cr Float.pi));
      ]
  | Two (Cz, a, b) ->
    play_on schedule
      [ Control (a, b); Drive a; Drive b ]
      (flat_top machine ~name:"cz" ~fraction:1.0 ~amplitude:0.8 ~phase:0.0)
  | Two (Iswap, a, b) ->
    (* Parametrically-activated XY interaction on the coupler. *)
    play_on schedule
      [ Control (a, b); Drive a; Drive b ]
      (flat_top machine ~name:"iswap" ~fraction:1.0 ~amplitude:0.9 ~phase:0.0)
  | Two (Xx _, a, b) ->
    (* Moelmer-Soerensen: simultaneous bichromatic tones on both ions. *)
    let tone =
      Waveform.create ~name:"ms" ~shape:Waveform.Constant
        ~duration_ns:(two_q_duration machine) ~amplitude:0.6 ~phase:0.0
    in
    play_on schedule [ Drive a; Drive b ] tone
  | Two (Swap, _, _) | Ccx _ | Cswap _ ->
    (* Never software-visible; gate_visible already rejected them. *)
    assert false
  | Measure q ->
    fst
      (append schedule
         ~channels:[ Acquire_ch q; Drive q ]
         (Acquire { duration_ns = readout_duration_ns machine }))

let of_circuit machine (c : Ir.Circuit.t) =
  List.fold_left (lower_gate machine) Schedule.empty c.Ir.Circuit.gates

let of_compiled (compiled : Triq.Compiled.t) =
  of_circuit compiled.Triq.Compiled.machine compiled.Triq.Compiled.hardware
