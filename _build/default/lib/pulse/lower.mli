(** Lowering software-visible gates to pulse schedules.

    Per-vendor calibrations, mirroring the published control schemes:
    - IBM: virtual-Z frame changes + DRAG X90 pulses (U1 = 1 frame
      change, U2 = 1 pulse, U3 = 2 pulses), CNOT as an echoed
      cross-resonance sequence on the coupling's control channel;
    - Rigetti: frame changes + Gaussian X90s, CZ as a flat-top pulse on
      the coupler;
    - UMD: frame changes + constant Raman tones whose duration scales
      with the rotation angle, XX as simultaneous bichromatic tones on
      both ions.

    Multi-qubit operations occupy the drive channels of *both* qubits so
    that schedule-level ASAP packing respects gate dependencies; pulse
    durations come from the machine's gate-time profile, so schedule
    duration agrees with the gate-level duration model. Measures become
    acquisition windows. *)

(** [of_circuit machine circuit] lowers a hardware-level, software-visible
    circuit to a timed schedule. Raises [Invalid_argument] on gates that
    are not software-visible for the machine's interface. *)
val of_circuit : Device.Machine.t -> Ir.Circuit.t -> Schedule.t

(** [of_compiled compiled] lowers a compiled executable. *)
val of_compiled : Triq.Compiled.t -> Schedule.t

(** [readout_duration_ns machine] is the acquisition window length used
    for the machine's technology. *)
val readout_duration_ns : Device.Machine.t -> float
