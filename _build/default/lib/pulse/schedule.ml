type channel = Drive of int | Control of int * int | Acquire_ch of int

type instruction =
  | Play of Waveform.t
  | Frame_change of float
  | Acquire of { duration_ns : float }
  | Busy of { duration_ns : float }

type entry = { start_ns : float; channel : channel; instruction : instruction }

type t = { entries : entry list }

let empty = { entries = [] }

let normalize_channel = function
  | Control (a, b) when a > b -> Control (b, a)
  | other -> other

let instruction_duration = function
  | Play w -> w.Waveform.duration_ns
  | Frame_change _ -> 0.0
  | Acquire { duration_ns } | Busy { duration_ns } -> duration_ns

let entry_end e = e.start_ns +. instruction_duration e.instruction

let duration_ns t = List.fold_left (fun acc e -> Float.max acc (entry_end e)) 0.0 t.entries

let channel_free_at t channel =
  let channel = normalize_channel channel in
  List.fold_left
    (fun acc e -> if e.channel = channel then Float.max acc (entry_end e) else acc)
    0.0 t.entries

let append t ~channels instruction =
  if channels = [] then invalid_arg "Schedule.append: no channels";
  let channels = List.map normalize_channel channels in
  let start =
    List.fold_left (fun acc ch -> Float.max acc (channel_free_at t ch)) 0.0 channels
  in
  (* Only the first channel carries the instruction itself; the remaining
     channels are blocked for its duration so ASAP packing respects the
     dependency, without double-counting pulses. *)
  let duration = instruction_duration instruction in
  let new_entries =
    List.mapi
      (fun i channel ->
        let instruction =
          if i = 0 || duration = 0.0 then instruction
          else Busy { duration_ns = duration }
        in
        { start_ns = start; channel; instruction })
      channels
  in
  ({ entries = t.entries @ new_entries }, start)

let entries t =
  List.stable_sort (fun a b -> Float.compare a.start_ns b.start_ns) t.entries

let play_count t =
  List.length
    (List.filter (fun e -> match e.instruction with Play _ -> true | _ -> false) t.entries)

let frame_change_count t =
  List.length
    (List.filter
       (fun e -> match e.instruction with Frame_change _ -> true | _ -> false)
       t.entries)

let no_overlap t =
  let by_channel = Hashtbl.create 16 in
  List.iter
    (fun e ->
      (* Zero-duration frame changes cannot conflict with anything. *)
      if instruction_duration e.instruction > 0.0 then begin
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_channel e.channel) in
        Hashtbl.replace by_channel e.channel (e :: cur)
      end)
    t.entries;
  Hashtbl.fold
    (fun _ es acc ->
      acc
      &&
      let sorted = List.sort (fun a b -> Float.compare a.start_ns b.start_ns) es in
      let rec check = function
        | a :: (b :: _ as rest) -> entry_end a <= b.start_ns +. 1e-9 && check rest
        | [ _ ] | [] -> true
      in
      check sorted)
    by_channel true

let pp_channel fmt = function
  | Drive q -> Format.fprintf fmt "d%d" q
  | Control (a, b) -> Format.fprintf fmt "u%d_%d" a b
  | Acquire_ch q -> Format.fprintf fmt "m%d" q

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "%8.1f  %-6s " e.start_ns
        (Format.asprintf "%a" pp_channel e.channel);
      (match e.instruction with
      | Play w -> Waveform.pp fmt w
      | Frame_change phase -> Format.fprintf fmt "fc(%.3f)" phase
      | Acquire { duration_ns } -> Format.fprintf fmt "acquire(%.0fns)" duration_ns
      | Busy { duration_ns } -> Format.fprintf fmt "busy(%.0fns)" duration_ns);
      Format.fprintf fmt "@\n")
    (entries t)
