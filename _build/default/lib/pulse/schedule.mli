(** Timed pulse schedules.

    A schedule assigns instructions to channels at explicit start times.
    Channels: per-qubit drive lines, per-coupling control lines (cross
    resonance / CZ flux / Ising bichromatic tones) and per-qubit
    acquisition. Frame changes are the zero-duration, error-free
    implementation of virtual-Z rotations. *)

type channel =
  | Drive of int  (** single-qubit drive line *)
  | Control of int * int  (** two-qubit interaction line, normalized pair *)
  | Acquire_ch of int  (** readout line *)

type instruction =
  | Play of Waveform.t
  | Frame_change of float  (** virtual-Z phase advance, radians *)
  | Acquire of { duration_ns : float }
  | Busy of { duration_ns : float }
      (** channel blocked by an instruction playing on another channel of
          the same multi-channel operation *)

type entry = { start_ns : float; channel : channel; instruction : instruction }

type t = private { entries : entry list (* sorted by start time *) }

val empty : t

(** [duration_ns t] is the end time of the latest instruction. *)
val duration_ns : t -> float

(** [instruction_duration i] is 0 for frame changes. *)
val instruction_duration : instruction -> float

(** [channel_free_at t channel] is the earliest time at which [channel]
    has no pending instruction. *)
val channel_free_at : t -> channel -> float

(** [append t ~channels instruction] schedules [instruction] ASAP on the
    first channel and a same-duration [Busy] marker on the rest (so the
    channels start together at the max of their free times), returning
    the new schedule and the start time. *)
val append : t -> channels:channel list -> instruction -> t * float

(** [entries t] in start-time order. *)
val entries : t -> entry list

(** [play_count t] counts [Play] instructions (physical pulses). *)
val play_count : t -> int

(** [frame_change_count t] counts virtual-Z frame updates. *)
val frame_change_count : t -> int

(** [no_overlap t] checks that no two instructions overlap on the same
    channel — the defining well-formedness property, qcheck-tested. *)
val no_overlap : t -> bool

val normalize_channel : channel -> channel
val pp_channel : Format.formatter -> channel -> unit
val pp : Format.formatter -> t -> unit
