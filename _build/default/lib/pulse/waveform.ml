type shape =
  | Gaussian of { sigma_ns : float }
  | Gaussian_square of { sigma_ns : float; width_ns : float }
  | Drag of { sigma_ns : float; beta : float }
  | Constant

type t = {
  name : string;
  shape : shape;
  duration_ns : float;
  amplitude : float;
  phase : float;
}

let create ~name ~shape ~duration_ns ~amplitude ~phase =
  if duration_ns <= 0.0 then invalid_arg "Waveform.create: non-positive duration";
  if amplitude < 0.0 || amplitude > 1.0 then
    invalid_arg "Waveform.create: amplitude out of [0, 1]";
  (match shape with
  | Gaussian { sigma_ns } | Drag { sigma_ns; _ } ->
    if sigma_ns <= 0.0 then invalid_arg "Waveform.create: non-positive sigma"
  | Gaussian_square { sigma_ns; width_ns } ->
    if sigma_ns <= 0.0 then invalid_arg "Waveform.create: non-positive sigma";
    if width_ns < 0.0 || width_ns > duration_ns then
      invalid_arg "Waveform.create: flat width out of range"
  | Constant -> ());
  { name; shape; duration_ns; amplitude; phase }

let gaussian_envelope centre sigma time = exp (-.((time -. centre) ** 2.0) /. (2.0 *. sigma *. sigma))

let sample t time_ns =
  if time_ns < 0.0 || time_ns > t.duration_ns then 0.0
  else begin
    let envelope =
      match t.shape with
      | Gaussian { sigma_ns } -> gaussian_envelope (t.duration_ns /. 2.0) sigma_ns time_ns
      | Drag { sigma_ns; beta = _ } ->
        (* The in-phase component; the derivative quadrature only matters
           for leakage modeling, which we do not simulate. *)
        gaussian_envelope (t.duration_ns /. 2.0) sigma_ns time_ns
      | Gaussian_square { sigma_ns; width_ns } ->
        let rise = (t.duration_ns -. width_ns) /. 2.0 in
        if time_ns < rise then gaussian_envelope rise sigma_ns time_ns
        else if time_ns > rise +. width_ns then
          gaussian_envelope (rise +. width_ns) sigma_ns time_ns
        else 1.0
      | Constant -> 1.0
    in
    t.amplitude *. envelope
  end

let area t =
  let steps = max 1 (int_of_float t.duration_ns) in
  let dt = t.duration_ns /. float_of_int steps in
  let acc = ref 0.0 in
  for i = 0 to steps - 1 do
    acc := !acc +. (sample t ((float_of_int i +. 0.5) *. dt) *. dt)
  done;
  !acc

let shape_name = function
  | Gaussian _ -> "gaussian"
  | Gaussian_square _ -> "gaussian_square"
  | Drag _ -> "drag"
  | Constant -> "constant"

let pp fmt t =
  Format.fprintf fmt "%s(%s, %.0fns, amp %.3f, ph %.3f)" t.name (shape_name t.shape)
    t.duration_ns t.amplitude t.phase
