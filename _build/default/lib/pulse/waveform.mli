(** Pulse envelopes.

    Section 7 of the paper argues the next step after software-visible
    gates is software-visible *pulses* (IBM's OpenPulse announcement,
    "akin to making micro-operations software-visible"). This library
    models that layer: a waveform is a complex-amplitude envelope played
    for a duration on a channel.

    Durations are in nanoseconds; amplitudes are dimensionless in
    [0, 1]. *)

type shape =
  | Gaussian of { sigma_ns : float }
      (** standard single-qubit drive envelope *)
  | Gaussian_square of { sigma_ns : float; width_ns : float }
      (** flat-top pulse with Gaussian rise/fall (cross resonance, CZ) *)
  | Drag of { sigma_ns : float; beta : float }
      (** derivative-corrected Gaussian suppressing leakage *)
  | Constant
      (** rectangular envelope (long trapped-ion Raman tones) *)

type t = private {
  name : string;
  shape : shape;
  duration_ns : float;
  amplitude : float;  (** peak amplitude in [0, 1] *)
  phase : float;  (** carrier phase offset, radians *)
}

(** [create ~name ~shape ~duration_ns ~amplitude ~phase] validates
    duration > 0 and 0 <= amplitude <= 1. *)
val create :
  name:string -> shape:shape -> duration_ns:float -> amplitude:float -> phase:float -> t

(** [sample t time_ns] is the envelope amplitude at [time_ns] from pulse
    start (0 outside [0, duration]). *)
val sample : t -> float -> float

(** [area t] is the integrated envelope (numerically, 1 ns steps) — the
    rotation angle a resonant drive of this envelope imparts is
    proportional to it. *)
val area : t -> float

val pp : Format.formatter -> t -> unit
