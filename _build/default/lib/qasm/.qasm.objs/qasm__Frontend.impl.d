lib/qasm/frontend.ml: Array Float Fun Ir List Printf String
