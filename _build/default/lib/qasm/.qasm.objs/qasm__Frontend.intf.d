lib/qasm/frontend.mli: Ir
