exception Error of string * int

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error (msg, line))) fmt

(* ---------- Lexer ---------- *)

type token =
  | Ident of string
  | Real of float
  | Nat of int
  | Str of string
  | Sym of char  (** ; , ( ) { } [ ] + - * / ^ *)
  | Arrow
  | Eof

type ltoken = { tok : token; line : int }

let tokenize src =
  let pos = ref 0 and line = ref 1 in
  let n = String.length src in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () =
    (if !pos < n && src.[!pos] = '\n' then incr line);
    incr pos
  in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident c = is_ident_start c || is_digit c in
  let rec go () =
    match peek () with
    | None -> emit Eof
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      go ()
    | Some '/' when !pos + 1 < n && src.[!pos + 1] = '/' ->
      while peek () <> None && peek () <> Some '\n' do
        advance ()
      done;
      go ()
    | Some '"' ->
      advance ();
      let start = !pos in
      while peek () <> None && peek () <> Some '"' do
        advance ()
      done;
      if peek () = None then fail !line "unterminated string";
      emit (Str (String.sub src start (!pos - start)));
      advance ();
      go ()
    | Some '-' when !pos + 1 < n && src.[!pos + 1] = '>' ->
      advance ();
      advance ();
      emit Arrow;
      go ()
    | Some c when is_digit c || (c = '.' && !pos + 1 < n && is_digit src.[!pos + 1]) ->
      let start = !pos in
      let is_real = ref false in
      while
        match peek () with
        | Some c when is_digit c -> true
        | Some ('.' | 'e' | 'E') ->
          is_real := true;
          true
        | Some ('+' | '-')
          when !pos > start && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E') ->
          true
        | _ -> false
      do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      (if !is_real then
         match float_of_string_opt text with
         | Some f -> emit (Real f)
         | None -> fail !line "bad real literal %S" text
       else
         match int_of_string_opt text with
         | Some i -> emit (Nat i)
         | None -> fail !line "bad integer literal %S" text);
      go ()
    | Some c when is_ident_start c ->
      let start = !pos in
      while (match peek () with Some c -> is_ident c | None -> false) do
        advance ()
      done;
      emit (Ident (String.sub src start (!pos - start)));
      go ()
    | Some (( ';' | ',' | '(' | ')' | '{' | '}' | '[' | ']' | '+' | '-' | '*' | '/'
            | '^' | '=' | '!' | '<' | '>' ) as c) ->
      advance ();
      emit (Sym c);
      go ()
    | Some c -> fail !line "unexpected character %C" c
  in
  go ();
  List.rev !out

(* ---------- Parser state ---------- *)

type state = { mutable tokens : ltoken list }

let current st = match st.tokens with t :: _ -> t | [] -> assert false

let advance st =
  match st.tokens with _ :: ((_ :: _) as rest) -> st.tokens <- rest | _ -> ()

let cur_line st = (current st).line

let expect_sym st c =
  match (current st).tok with
  | Sym x when x = c -> advance st
  | _ -> fail (cur_line st) "expected %C" c

let expect_ident st =
  match (current st).tok with
  | Ident name ->
    advance st;
    name
  | _ -> fail (cur_line st) "expected an identifier"

let expect_nat st =
  match (current st).tok with
  | Nat v ->
    advance st;
    v
  | _ -> fail (cur_line st) "expected an integer"

(* ---------- Parameter expressions ---------- *)

type expr =
  | Num of float
  | Pi
  | Param of string
  | Neg of expr
  | Bin of char * expr * expr

let rec parse_expr st = parse_add st

and parse_add st =
  let lhs = parse_mul st in
  match (current st).tok with
  | Sym ('+' as op) | Sym ('-' as op) ->
    advance st;
    let rhs = parse_add_chain st (Bin (op, lhs, parse_mul st)) in
    rhs
  | _ -> lhs

and parse_add_chain st lhs =
  match (current st).tok with
  | Sym ('+' as op) | Sym ('-' as op) ->
    advance st;
    parse_add_chain st (Bin (op, lhs, parse_mul st))
  | _ -> lhs

and parse_mul st =
  let lhs = parse_pow st in
  parse_mul_chain st lhs

and parse_mul_chain st lhs =
  match (current st).tok with
  | Sym ('*' as op) | Sym ('/' as op) ->
    advance st;
    parse_mul_chain st (Bin (op, lhs, parse_pow st))
  | _ -> lhs

and parse_pow st =
  let lhs = parse_atom st in
  match (current st).tok with
  | Sym '^' ->
    advance st;
    Bin ('^', lhs, parse_pow st)
  | _ -> lhs

and parse_atom st =
  match (current st).tok with
  | Real f ->
    advance st;
    Num f
  | Nat v ->
    advance st;
    Num (float_of_int v)
  | Ident "pi" ->
    advance st;
    Pi
  | Ident name ->
    advance st;
    Param name
  | Sym '-' ->
    advance st;
    (* Unary minus binds looser than ^: -pi^2 = -(pi^2). *)
    Neg (parse_pow st)
  | Sym '(' ->
    advance st;
    let e = parse_expr st in
    expect_sym st ')';
    e
  | _ -> fail (cur_line st) "expected a parameter expression"

let rec eval_expr line env = function
  | Num f -> f
  | Pi -> Float.pi
  | Param name -> (
    match List.assoc_opt name env with
    | Some v -> v
    | None -> fail line "unknown parameter %S" name)
  | Neg e -> -.eval_expr line env e
  | Bin (op, a, b) -> (
    let x = eval_expr line env a and y = eval_expr line env b in
    match op with
    | '+' -> x +. y
    | '-' -> x -. y
    | '*' -> x *. y
    | '/' ->
      if Float.abs y < 1e-300 then fail line "division by zero" else x /. y
    | '^' -> Float.pow x y
    | _ -> assert false)

(* ---------- Arguments and gate bodies ---------- *)

type arg = Whole of string | Indexed of string * int

type gate_op = {
  op_name : string;
  op_params : expr list;
  op_args : arg list;
  op_line : int;
}

type gate_def = { g_params : string list; g_qubits : string list; g_body : gate_op list }

let parse_arg st =
  let name = expect_ident st in
  match (current st).tok with
  | Sym '[' ->
    advance st;
    let i = expect_nat st in
    expect_sym st ']';
    Indexed (name, i)
  | _ -> Whole name

let parse_params_opt st =
  match (current st).tok with
  | Sym '(' ->
    advance st;
    if (current st).tok = Sym ')' then begin
      advance st;
      []
    end
    else begin
      let rec collect acc =
        let e = parse_expr st in
        match (current st).tok with
        | Sym ',' ->
          advance st;
          collect (e :: acc)
        | _ ->
          expect_sym st ')';
          List.rev (e :: acc)
      in
      collect []
    end
  | _ -> []

let parse_args st =
  let rec collect acc =
    let a = parse_arg st in
    match (current st).tok with
    | Sym ',' ->
      advance st;
      collect (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  collect []

let parse_gate_op st =
  let op_line = cur_line st in
  let op_name = expect_ident st in
  let op_params = parse_params_opt st in
  let op_args = parse_args st in
  expect_sym st ';';
  { op_name; op_params; op_args; op_line }

(* ---------- Elaboration ---------- *)

type program = {
  circuit : Ir.Circuit.t;
  measured : int list;
  qubit_names : (string * int) list;
}

type env = {
  mutable qregs : (string * (int * int)) list;
  mutable cregs : (string * (int * int)) list;
  mutable next_qubit : int;
  mutable next_cbit : int;
  mutable defs : (string * gate_def) list;
  mutable gates : Ir.Gate.t list;  (** reversed *)
  mutable readout : (int * int) list;  (** cbit -> qubit *)
}

let one k q = Ir.Gate.One (k, q)

(* qelib1 built-ins expressed over the IR. Returns None for unknown names
   (then looked up among user definitions). *)
let builtin line name params (qs : int array) =
  let p i = List.nth params i in
  let need np nq =
    if List.length params <> np then
      fail line "gate %s expects %d parameter(s), got %d" name np (List.length params);
    if Array.length qs <> nq then
      fail line "gate %s expects %d qubit(s), got %d" name nq (Array.length qs)
  in
  match name with
  | "U" | "u3" | "u" ->
    need 3 1;
    Some [ one (Ir.Gate.U3 (p 0, p 1, p 2)) qs.(0) ]
  | "u2" ->
    need 2 1;
    Some [ one (Ir.Gate.U2 (p 0, p 1)) qs.(0) ]
  | "u1" | "p" ->
    need 1 1;
    Some [ one (Ir.Gate.U1 (p 0)) qs.(0) ]
  | "CX" | "cx" ->
    need 0 2;
    Some [ Ir.Gate.Two (Ir.Gate.Cnot, qs.(0), qs.(1)) ]
  | "id" ->
    need 0 1;
    Some []
  | "h" ->
    need 0 1;
    Some [ one Ir.Gate.H qs.(0) ]
  | "x" ->
    need 0 1;
    Some [ one Ir.Gate.X qs.(0) ]
  | "y" ->
    need 0 1;
    Some [ one Ir.Gate.Y qs.(0) ]
  | "z" ->
    need 0 1;
    Some [ one Ir.Gate.Z qs.(0) ]
  | "s" ->
    need 0 1;
    Some [ one Ir.Gate.S qs.(0) ]
  | "sdg" ->
    need 0 1;
    Some [ one Ir.Gate.Sdg qs.(0) ]
  | "t" ->
    need 0 1;
    Some [ one Ir.Gate.T qs.(0) ]
  | "tdg" ->
    need 0 1;
    Some [ one Ir.Gate.Tdg qs.(0) ]
  | "rx" ->
    need 1 1;
    Some [ one (Ir.Gate.Rx (p 0)) qs.(0) ]
  | "ry" ->
    need 1 1;
    Some [ one (Ir.Gate.Ry (p 0)) qs.(0) ]
  | "rz" ->
    need 1 1;
    Some [ one (Ir.Gate.Rz (p 0)) qs.(0) ]
  | "cz" ->
    need 0 2;
    Some [ Ir.Gate.Two (Ir.Gate.Cz, qs.(0), qs.(1)) ]
  | "swap" ->
    need 0 2;
    Some [ Ir.Gate.Two (Ir.Gate.Swap, qs.(0), qs.(1)) ]
  | "iswap" ->
    need 0 2;
    Some [ Ir.Gate.Two (Ir.Gate.Iswap, qs.(0), qs.(1)) ]
  | "ccx" ->
    need 0 3;
    Some [ Ir.Gate.Ccx (qs.(0), qs.(1), qs.(2)) ]
  | "cswap" ->
    need 0 3;
    Some [ Ir.Gate.Cswap (qs.(0), qs.(1), qs.(2)) ]
  | "cu1" | "cp" ->
    need 1 2;
    Some (Ir.Decompose.cu1 (p 0) qs.(0) qs.(1))
  | "crz" ->
    need 1 2;
    Some (Ir.Decompose.crz (p 0) qs.(0) qs.(1))
  | "crx" ->
    need 1 2;
    Some (Ir.Decompose.crx (p 0) qs.(0) qs.(1))
  | "cry" ->
    need 1 2;
    Some (Ir.Decompose.cry (p 0) qs.(0) qs.(1))
  | "ch" ->
    need 0 2;
    Some (Ir.Decompose.ch qs.(0) qs.(1))
  | "cy" ->
    need 0 2;
    Some (Ir.Decompose.cy qs.(0) qs.(1))
  | "cu3" ->
    need 3 2;
    Some (Ir.Decompose.cu3 (p 0) (p 1) (p 2) qs.(0) qs.(1))
  | _ -> None

let max_expansion_depth = 64

let rec apply_gate env depth line name param_values (qs : int array) =
  if depth > max_expansion_depth then
    fail line "gate expansion too deep (recursive definition of %s?)" name;
  let distinct =
    let l = Array.to_list qs in
    List.length (List.sort_uniq compare l) = Array.length qs
  in
  if not distinct then fail line "gate %s applied with repeated qubits" name;
  match builtin line name param_values qs with
  | Some gates -> List.iter (fun g -> env.gates <- g :: env.gates) gates
  | None -> (
    match List.assoc_opt name env.defs with
    | None -> fail line "unknown gate %S" name
    | Some def ->
      if List.length def.g_params <> List.length param_values then
        fail line "gate %s expects %d parameter(s)" name (List.length def.g_params);
      if List.length def.g_qubits <> Array.length qs then
        fail line "gate %s expects %d qubit(s)" name (List.length def.g_qubits);
      let param_env = List.combine def.g_params param_values in
      let qubit_env = List.combine def.g_qubits (Array.to_list qs) in
      List.iter
        (fun op ->
          let values = List.map (eval_expr op.op_line param_env) op.op_params in
          let operands =
            Array.of_list
              (List.map
                 (function
                   | Whole q -> (
                     match List.assoc_opt q qubit_env with
                     | Some hw -> hw
                     | None -> fail op.op_line "unknown gate-body qubit %S" q)
                   | Indexed _ ->
                     fail op.op_line "indexing is not allowed inside gate bodies")
                 op.op_args)
          in
          apply_gate env (depth + 1) op.op_line op.op_name values operands)
        def.g_body)

(* Broadcast a top-level gate call over whole-register arguments. *)
let resolve_call env line name param_values (args : arg list) =
  let lookup_qreg r =
    match List.assoc_opt r env.qregs with
    | Some v -> v
    | None -> fail line "unknown quantum register %S" r
  in
  let sizes =
    List.filter_map
      (function Whole r -> Some (snd (lookup_qreg r)) | Indexed _ -> None)
      args
  in
  (* Size-1 registers act as scalars; all larger registers must agree. *)
  let width =
    match List.sort_uniq compare (List.filter (fun s -> s > 1) sizes) with
    | [] -> 1
    | [ n ] -> n
    | _ -> fail line "broadcast registers must have equal sizes"
  in
  for k = 0 to width - 1 do
    let qs =
      Array.of_list
        (List.map
           (function
             | Whole r ->
               let base, size = lookup_qreg r in
               base + (if size = 1 then 0 else k)
             | Indexed (r, i) ->
               let base, size = lookup_qreg r in
               if i < 0 || i >= size then
                 fail line "index %d out of bounds for %S[%d]" i r size;
               base + i)
           args)
    in
    apply_gate env 0 line name param_values qs
  done

(* ---------- Statements ---------- *)

let parse_gate_def st env =
  let line = cur_line st in
  advance st (* 'gate' *);
  let name = expect_ident st in
  let params =
    match (current st).tok with
    | Sym '(' ->
      advance st;
      if (current st).tok = Sym ')' then begin
        advance st;
        []
      end
      else begin
        let rec collect acc =
          let p = expect_ident st in
          match (current st).tok with
          | Sym ',' ->
            advance st;
            collect (p :: acc)
          | _ ->
            expect_sym st ')';
            List.rev (p :: acc)
        in
        collect []
      end
    | _ -> []
  in
  let rec qubits acc =
    let q = expect_ident st in
    match (current st).tok with
    | Sym ',' ->
      advance st;
      qubits (q :: acc)
    | _ -> List.rev (q :: acc)
  in
  let qs = qubits [] in
  expect_sym st '{';
  let rec body acc =
    match (current st).tok with
    | Sym '}' ->
      advance st;
      List.rev acc
    | Ident "barrier" ->
      advance st;
      let rec skip () =
        match (current st).tok with
        | Sym ';' -> advance st
        | Eof -> fail (cur_line st) "unterminated gate body"
        | _ ->
          advance st;
          skip ()
      in
      skip ();
      body acc
    | Eof -> fail (cur_line st) "unterminated gate body"
    | _ -> body (parse_gate_op st :: acc)
  in
  let g_body = body [] in
  if List.mem_assoc name env.defs then fail line "gate %S already defined" name;
  env.defs <- (name, { g_params = params; g_qubits = qs; g_body }) :: env.defs

let parse_measure st env =
  let line = cur_line st in
  advance st (* 'measure' *);
  let src = parse_arg st in
  (match (current st).tok with Arrow -> advance st | _ -> fail line "expected ->");
  let dst = parse_arg st in
  expect_sym st ';';
  let qreg r =
    match List.assoc_opt r env.qregs with
    | Some v -> v
    | None -> fail line "unknown quantum register %S" r
  in
  let creg r =
    match List.assoc_opt r env.cregs with
    | Some v -> v
    | None -> fail line "unknown classical register %S" r
  in
  let record qubit cbit =
    if List.mem_assoc cbit env.readout then fail line "classical bit measured twice";
    if List.exists (fun (_, q) -> q = qubit) env.readout then
      fail line "qubit measured twice";
    env.readout <- (cbit, qubit) :: env.readout;
    env.gates <- Ir.Gate.Measure qubit :: env.gates
  in
  match (src, dst) with
  | Indexed (q, i), Indexed (c, j) ->
    let qb, qs = qreg q and cb, cs = creg c in
    if i >= qs then fail line "index %d out of bounds for %S" i q;
    if j >= cs then fail line "index %d out of bounds for %S" j c;
    record (qb + i) (cb + j)
  | Whole q, Whole c ->
    let qb, qs = qreg q and cb, cs = creg c in
    if qs <> cs then fail line "register-wide measure needs equal sizes";
    for k = 0 to qs - 1 do
      record (qb + k) (cb + k)
    done
  | _ -> fail line "measure must be index->index or register->register"

let parse st =
  let env =
    {
      qregs = [];
      cregs = [];
      next_qubit = 0;
      next_cbit = 0;
      defs = [];
      gates = [];
      readout = [];
    }
  in
  (* Header. *)
  (match (current st).tok with
  | Ident "OPENQASM" ->
    advance st;
    (match (current st).tok with Real _ | Nat _ -> advance st | _ -> ());
    expect_sym st ';'
  | _ -> fail (cur_line st) "missing OPENQASM header");
  let rec statements () =
    match (current st).tok with
    | Eof -> ()
    | Ident "include" ->
      advance st;
      (match (current st).tok with
      | Str _ -> advance st
      | _ -> fail (cur_line st) "include expects a string");
      expect_sym st ';';
      statements ()
    | Ident "qreg" ->
      let line = cur_line st in
      advance st;
      let name = expect_ident st in
      expect_sym st '[';
      let size = expect_nat st in
      expect_sym st ']';
      expect_sym st ';';
      if size <= 0 then fail line "qreg %S must have positive size" name;
      if List.mem_assoc name env.qregs then fail line "qreg %S already declared" name;
      env.qregs <- env.qregs @ [ (name, (env.next_qubit, size)) ];
      env.next_qubit <- env.next_qubit + size;
      statements ()
    | Ident "creg" ->
      let line = cur_line st in
      advance st;
      let name = expect_ident st in
      expect_sym st '[';
      let size = expect_nat st in
      expect_sym st ']';
      expect_sym st ';';
      if List.mem_assoc name env.cregs then fail line "creg %S already declared" name;
      env.cregs <- env.cregs @ [ (name, (env.next_cbit, size)) ];
      env.next_cbit <- env.next_cbit + size;
      statements ()
    | Ident "gate" ->
      parse_gate_def st env;
      statements ()
    | Ident "measure" ->
      parse_measure st env;
      statements ()
    | Ident "barrier" ->
      advance st;
      let rec skip () =
        match (current st).tok with
        | Sym ';' -> advance st
        | Eof -> fail (cur_line st) "unterminated barrier"
        | _ ->
          advance st;
          skip ()
      in
      skip ();
      statements ()
    | Ident ("if" | "reset" | "opaque") ->
      fail (cur_line st) "%S is not supported (the gate IR is measurement-terminal)"
        (match (current st).tok with Ident s -> s | _ -> "")
    | Ident _ ->
      let op = parse_gate_op st in
      let values = List.map (eval_expr op.op_line []) op.op_params in
      resolve_call env op.op_line op.op_name values op.op_args;
      statements ()
    | _ -> fail (cur_line st) "unexpected token"
  in
  statements ();
  if env.next_qubit = 0 then raise (Error ("program declares no qubits", 1));
  let measured = List.map snd (List.sort compare env.readout) in
  let qubit_names =
    List.concat_map
      (fun (name, (base, size)) ->
        List.init size (fun i -> (Printf.sprintf "%s[%d]" name i, base + i)))
      env.qregs
  in
  {
    circuit = Ir.Circuit.create env.next_qubit (List.rev env.gates);
    measured;
    qubit_names;
  }

let parse source = parse { tokens = tokenize source }

let parse_file path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse source
