(** OpenQASM 2.0 front end.

    A second program-input language alongside Scaffold: most circulating
    NISQ programs are OpenQASM (IBM's executable format, Cross et al.
    2017), so TriQ accepts them directly and re-optimizes them for any
    target. Supported:

    - [OPENQASM 2.0;] header and [include "qelib1.inc";] (the standard
      library is built in);
    - multiple [qreg]/[creg] declarations (quantum registers laid out
      contiguously in declaration order);
    - the qelib1 gate vocabulary: u1 u2 u3 u cx id h x y z s sdg t tdg
      rx ry rz cz swap ccx cswap cu1/cp crz crx cry ch cy cu3;
    - user [gate] definitions with parameters, expanded at use sites;
    - parameter expressions: float literals, [pi], + - * / ^, unary
      minus, parentheses;
    - register broadcast ([h q;] applies to the whole register; [cx q, r]
      maps pairwise over same-length registers);
    - [measure q[i] -> c[j];] and register-wide [measure q -> c;];
    - [barrier] (accepted and ignored — the IR DAG derives scheduling
      from data dependencies).

    [if], [reset] and [opaque] are rejected with a clear error: the gate
    IR is measurement-terminal (the paper's benchmarks measure once, at
    the end). *)

exception Error of string * int
(** [Error (message, line)] *)

type program = {
  circuit : Ir.Circuit.t;
  measured : int list;
      (** qubits in classical-bit order (creg declaration order, ascending
          bit index) — the bitstring order of the program's output *)
  qubit_names : (string * int) list;  (** ["q[0]" -> 0] debug mapping *)
}

val parse : string -> program

val parse_file : string -> program
