lib/scaffold/ast.ml:
