lib/scaffold/ast.mli:
