lib/scaffold/lexer.ml: List Printf String Token
