lib/scaffold/lexer.mli: Token
