lib/scaffold/lower.ml: Array Ast Float Fun Ir List Parser Printf
