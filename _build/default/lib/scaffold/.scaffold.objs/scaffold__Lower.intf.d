lib/scaffold/lower.mli: Ast Ir
