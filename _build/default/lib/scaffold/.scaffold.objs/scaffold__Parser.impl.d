lib/scaffold/parser.ml: Ast Hashtbl Lexer List Printf Token
