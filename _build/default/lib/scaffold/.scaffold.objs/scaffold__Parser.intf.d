lib/scaffold/parser.mli: Ast
