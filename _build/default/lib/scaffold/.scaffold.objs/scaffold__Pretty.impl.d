lib/scaffold/pretty.ml: Ast Float List Printf String
