lib/scaffold/pretty.mli: Ast
