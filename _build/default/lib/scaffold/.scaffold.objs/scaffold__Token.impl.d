lib/scaffold/token.ml: Format Printf
