lib/scaffold/token.mli: Format
