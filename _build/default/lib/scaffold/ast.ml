(** Abstract syntax of the Scaffold-like language.

    A program is a single [module main() { ... }] containing qubit
    register declarations, gate applications, constant-bound [for] loops
    and measurements. Integer expressions index registers and drive
    loops; float expressions (with [pi]) parameterize rotations. *)

type int_expr =
  | Int_lit of int
  | Var of string  (** loop variable *)
  | Binop of binop * int_expr * int_expr

and binop = Add | Sub | Mul | Div | Mod

type float_expr =
  | Float_lit of float
  | Pi
  | Of_int of int_expr
  | Fneg of float_expr
  | Fbinop of fbinop * float_expr * float_expr

and fbinop = Fadd | Fsub | Fmul | Fdiv

(** A qubit reference: a register element [q[i]] or a whole 1-qubit
    register [q]. *)
type qubit_ref = { register : string; index : int_expr option }

type stmt =
  | Decl of { name : string; size : int; line : int }
  | Gate of { name : string; angles : float_expr list; qubits : qubit_ref list; line : int }
  | For of { var : string; from_ : int_expr; to_ : int_expr; body : stmt list; line : int }
      (** iterates var = from_ .. to_-1 (half-open, Rust style) *)
  | Measure_stmt of { target : qubit_ref; line : int }
  | Measure_all of { register : string; line : int }

(** A module definition: [module name(qbit a, qbit b) { ... }]. Parameters
    are scalar qubits bound at each call site; [main] takes none. *)
type module_def = { name : string; params : string list; body : stmt list; line : int }

(** A program is a set of module definitions; the one named [main] is the
    entry point. Gate statements whose name matches a module are calls. *)
type t = { modules : module_def list }
