exception Error of string * int * int

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let keyword = function
  | "module" -> Some Token.Kw_module
  | "qbit" | "qreg" -> Some Token.Kw_qbit
  | "cbit" | "creg" -> Some Token.Kw_cbit
  | "for" -> Some Token.Kw_for
  | "in" -> Some Token.Kw_in
  | "measure" | "MeasZ" -> Some Token.Kw_measure
  | "pi" | "PI" -> Some Token.Kw_pi
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> error st "unterminated block comment"
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  let line = st.line and col = st.col in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    { Token.kind = Float (float_of_string text); line; col }
  end
  else begin
    let text = String.sub st.src start (st.pos - start) in
    { Token.kind = Int (int_of_string text); line; col }
  end

let lex_ident st =
  let start = st.pos in
  let line = st.line and col = st.col in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  let kind = match keyword text with Some k -> k | None -> Token.Ident text in
  { Token.kind; line; col }

let simple st kind =
  let tok = { Token.kind; line = st.line; col = st.col } in
  advance st;
  tok

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col in
  match peek st with
  | None -> { Token.kind = Eof; line; col }
  | Some c when is_digit c -> lex_number st
  | Some c when is_ident_start c -> lex_ident st
  | Some '(' -> simple st Lparen
  | Some ')' -> simple st Rparen
  | Some '{' -> simple st Lbrace
  | Some '}' -> simple st Rbrace
  | Some '[' -> simple st Lbracket
  | Some ']' -> simple st Rbracket
  | Some ',' -> simple st Comma
  | Some ';' -> simple st Semicolon
  | Some '+' -> simple st Plus
  | Some '-' -> simple st Minus
  | Some '*' -> simple st Star
  | Some '/' -> simple st Slash
  | Some '%' -> simple st Percent
  | Some '.' when peek2 st = Some '.' ->
    advance st;
    advance st;
    { Token.kind = Dotdot; line; col }
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec collect acc =
    let tok = next_token st in
    match tok.Token.kind with
    | Eof -> List.rev (tok :: acc)
    | _ -> collect (tok :: acc)
  in
  collect []
