(** Hand-written lexer for the Scaffold-like language.

    Supports line ([//]) and block ([/* */]) comments, decimal integers
    and floats, identifiers, keywords and punctuation. *)

exception Error of string * int * int
(** [Error (message, line, col)] *)

(** [tokenize source] is the token stream, terminated by [Eof]. *)
val tokenize : string -> Token.t list
