exception Error of string * int

type program = {
  circuit : Ir.Circuit.t;
  measured : int list;
  qubit_names : (string * int) list;
}

type event =
  | Reg_decl of { name : string; base : int; size : int; line : int }
  | Gate_use of { qubit : int; line : int }
  | Measure_use of { qubit : int; line : int }

type traced = {
  result : (program, string * int) result;
  events : event list;
}

(* Global lowering state (gates, readout, qubit allocator) plus a
   per-call lexical context: registers in scope and loop variables. *)
type state = {
  modules : (string * Ast.module_def) list;
  mutable next_qubit : int;
  mutable gates : Ir.Gate.t list;  (** reversed *)
  mutable measured : int list;  (** reversed *)
  mutable qubit_names : (string * int) list;  (** reversed *)
  mutable events : event list;  (** reversed; the linter's trace *)
}

type context = {
  registers : (string * (int * int)) list;  (** name -> (base, size) *)
  loop_vars : (string * int) list;
  depth : int;
  scope : string;  (** for error messages and qubit naming *)
}

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error (msg, line))) fmt

let rec eval_int ctx line (e : Ast.int_expr) =
  match e with
  | Int_lit n -> n
  | Var name -> (
    match List.assoc_opt name ctx.loop_vars with
    | Some v -> v
    | None -> fail line "unknown variable %S (only loop variables are in scope)" name)
  | Binop (op, a, b) ->
    let x = eval_int ctx line a and y = eval_int ctx line b in
    (match op with
    | Add -> x + y
    | Sub -> x - y
    | Mul -> x * y
    | Div -> if y = 0 then fail line "division by zero" else x / y
    | Mod -> if y = 0 then fail line "modulo by zero" else x mod y)

let rec eval_float ctx line (e : Ast.float_expr) =
  match e with
  | Float_lit f -> f
  | Pi -> Float.pi
  | Of_int ie -> float_of_int (eval_int ctx line ie)
  | Fneg f -> -.eval_float ctx line f
  | Fbinop (op, a, b) ->
    let x = eval_float ctx line a and y = eval_float ctx line b in
    (match op with
    | Fadd -> x +. y
    | Fsub -> x -. y
    | Fmul -> x *. y
    | Fdiv ->
      if Float.abs y < 1e-300 then fail line "division by zero in angle" else x /. y)

let resolve_qubit ctx line (r : Ast.qubit_ref) =
  match List.assoc_opt r.register ctx.registers with
  | None -> fail line "unknown register %S" r.register
  | Some (base, size) -> (
    match r.index with
    | None ->
      if size <> 1 then
        fail line "register %S has %d qubits; an index is required" r.register size;
      base
    | Some ie ->
      let i = eval_int ctx line ie in
      if i < 0 || i >= size then
        fail line "index %d out of bounds for register %S[%d]" i r.register size;
      base + i)

let emit st g = st.gates <- g :: st.gates

let record st e = st.events <- e :: st.events

let apply_primitive st ctx line name angles qubits =
  let a = Array.of_list angles in
  let q = Array.of_list qubits in
  ignore ctx;
  let need_angles n =
    if Array.length a <> n then
      fail line "gate %s expects %d angle argument(s), got %d" name n (Array.length a)
  in
  let need_qubits n =
    if Array.length q <> n then
      fail line "gate %s expects %d qubit argument(s), got %d" name n (Array.length q)
  in
  let one k =
    need_angles 0;
    need_qubits 1;
    emit st (Ir.Gate.One (k, q.(0)))
  in
  let one_a1 mk =
    need_angles 1;
    need_qubits 1;
    emit st (Ir.Gate.One (mk a.(0), q.(0)))
  in
  let two k =
    need_angles 0;
    need_qubits 2;
    emit st (Ir.Gate.Two (k, q.(0), q.(1)))
  in
  match name with
  | "X" | "NOT" -> one Ir.Gate.X
  | "Y" -> one Ir.Gate.Y
  | "Z" -> one Ir.Gate.Z
  | "H" -> one Ir.Gate.H
  | "S" -> one Ir.Gate.S
  | "Sdag" | "Sdg" -> one Ir.Gate.Sdg
  | "T" -> one Ir.Gate.T
  | "Tdag" | "Tdg" -> one Ir.Gate.Tdg
  | "Rx" -> one_a1 (fun t -> Ir.Gate.Rx t)
  | "Ry" -> one_a1 (fun t -> Ir.Gate.Ry t)
  | "Rz" -> one_a1 (fun t -> Ir.Gate.Rz t)
  | "U1" -> one_a1 (fun t -> Ir.Gate.U1 t)
  | "Rxy" ->
    need_angles 2;
    need_qubits 1;
    emit st (Ir.Gate.One (Ir.Gate.Rxy (a.(0), a.(1)), q.(0)))
  | "U2" ->
    need_angles 2;
    need_qubits 1;
    emit st (Ir.Gate.One (Ir.Gate.U2 (a.(0), a.(1)), q.(0)))
  | "U3" ->
    need_angles 3;
    need_qubits 1;
    emit st (Ir.Gate.One (Ir.Gate.U3 (a.(0), a.(1), a.(2)), q.(0)))
  | "CNOT" | "CX" -> two Ir.Gate.Cnot
  | "CZ" -> two Ir.Gate.Cz
  | "SWAP" -> two Ir.Gate.Swap
  | "ISWAP" | "iSWAP" -> two Ir.Gate.Iswap
  | "XX" ->
    need_angles 1;
    need_qubits 2;
    emit st (Ir.Gate.Two (Ir.Gate.Xx a.(0), q.(0), q.(1)))
  | "Toffoli" | "CCNOT" | "CCX" ->
    need_angles 0;
    need_qubits 3;
    emit st (Ir.Gate.Ccx (q.(0), q.(1), q.(2)))
  | "Fredkin" | "CSWAP" ->
    need_angles 0;
    need_qubits 3;
    emit st (Ir.Gate.Cswap (q.(0), q.(1), q.(2)))
  | other -> fail line "unknown gate or module %S" other

let max_call_depth = 64

let rec exec_stmt st ctx (s : Ast.stmt) =
  match s with
  | Decl { name; size; line } ->
    if List.mem_assoc name ctx.registers then
      fail line "register %S already declared in this scope" name;
    if size <= 0 then fail line "register %S must have positive size" name;
    let base = st.next_qubit in
    st.next_qubit <- st.next_qubit + size;
    for i = 0 to size - 1 do
      st.qubit_names <-
        (Printf.sprintf "%s%s[%d]" ctx.scope name i, base + i) :: st.qubit_names
    done;
    record st (Reg_decl { name = ctx.scope ^ name; base; size; line });
    { ctx with registers = (name, (base, size)) :: ctx.registers }
  | Gate { name; angles; qubits; line } -> (
    match List.assoc_opt name st.modules with
    | Some callee ->
      if angles <> [] then fail line "module %S takes no angle arguments" name;
      call_module st ctx line callee qubits;
      ctx
    | None ->
      let angle_values = List.map (eval_float ctx line) angles in
      let qubit_values = List.map (resolve_qubit ctx line) qubits in
      let distinct = List.sort_uniq compare qubit_values in
      if List.length distinct <> List.length qubit_values then
        fail line "gate %s applied with repeated qubit operands" name;
      List.iter (fun q -> record st (Gate_use { qubit = q; line })) qubit_values;
      apply_primitive st ctx line name angle_values qubit_values;
      ctx)
  | For { var; from_; to_; body; line } ->
    if List.mem_assoc var ctx.loop_vars then
      fail line "loop variable %S shadows an enclosing loop" var;
    let lo = eval_int ctx line from_ and hi = eval_int ctx line to_ in
    if hi - lo > 100_000 then fail line "loop too large to unroll";
    for i = lo to hi - 1 do
      let loop_ctx = { ctx with loop_vars = (var, i) :: ctx.loop_vars } in
      ignore (exec_block st loop_ctx body)
    done;
    ctx
  | Measure_stmt { target; line } ->
    let q = resolve_qubit ctx line target in
    if List.mem q st.measured then fail line "qubit measured twice";
    st.measured <- q :: st.measured;
    record st (Measure_use { qubit = q; line });
    emit st (Ir.Gate.Measure q);
    ctx
  | Measure_all { register; line } -> (
    match List.assoc_opt register ctx.registers with
    | None -> fail line "unknown register %S" register
    | Some (base, size) ->
      for i = 0 to size - 1 do
        let q = base + i in
        if List.mem q st.measured then fail line "qubit measured twice";
        st.measured <- q :: st.measured;
        record st (Measure_use { qubit = q; line });
        emit st (Ir.Gate.Measure q)
      done;
      ctx)

and exec_block st ctx body = List.fold_left (exec_stmt st) ctx body

and call_module st ctx line (callee : Ast.module_def) args =
  if ctx.depth >= max_call_depth then
    fail line "module call depth exceeds %d (recursive modules?)" max_call_depth;
  if List.length args <> List.length callee.Ast.params then
    fail line "module %S expects %d qubit argument(s), got %d" callee.Ast.name
      (List.length callee.Ast.params)
      (List.length args);
  let arg_qubits = List.map (resolve_qubit ctx line) args in
  let distinct = List.sort_uniq compare arg_qubits in
  if List.length distinct <> List.length arg_qubits then
    fail line "module %S called with repeated qubit arguments" callee.Ast.name;
  let callee_ctx =
    {
      registers = List.map2 (fun p q -> (p, (q, 1))) callee.Ast.params arg_qubits;
      loop_vars = [];
      depth = ctx.depth + 1;
      scope = ctx.scope ^ callee.Ast.name ^ ".";
    }
  in
  ignore (exec_block st callee_ctx callee.Ast.body)

let lower_traced (ast : Ast.t) =
  let modules = List.map (fun (m : Ast.module_def) -> (m.Ast.name, m)) ast.Ast.modules in
  let st =
    { modules; next_qubit = 0; gates = []; measured = []; qubit_names = []; events = [] }
  in
  let result =
    try
      let main =
        match List.assoc_opt "main" modules with
        | Some m -> m
        | None -> raise (Error ("program has no module \"main\"", 1))
      in
      if main.Ast.params <> [] then
        raise (Error ("module \"main\" must take no parameters", main.Ast.line));
      ignore
        (exec_block st
           { registers = []; loop_vars = []; depth = 0; scope = "" }
           main.Ast.body);
      if st.next_qubit = 0 then raise (Error ("program declares no qubits", 1));
      Ok
        {
          circuit = Ir.Circuit.create st.next_qubit (List.rev st.gates);
          measured = List.rev st.measured;
          qubit_names = List.rev st.qubit_names;
        }
    with Error (msg, line) -> (Error (msg, line) : (program, string * int) result)
  in
  { result; events = List.rev st.events }

let lower (ast : Ast.t) =
  match (lower_traced ast).result with
  | Ok p -> p
  | Error (msg, line) -> raise (Error (msg, line))

let compile_string source = lower (Parser.parse source)

let compile_file path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  compile_string source
