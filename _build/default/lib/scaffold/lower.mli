(** Lowering from the Scaffold AST to the gate IR (the ScaffCC role).

    Registers are laid out contiguously in declaration order; constant-
    bound [for] loops are fully unrolled and classical expressions are
    resolved at compile time (Scaffold programs are compiled for a fixed
    input, Section 4.1). Gate names are resolved to IR gates, including
    the multi-qubit conveniences (Toffoli/CCNOT, Fredkin/CSWAP). *)

exception Error of string * int
(** [Error (message, line)] *)

type program = {
  circuit : Ir.Circuit.t;
  measured : int list;  (** program qubits in measurement-statement order *)
  qubit_names : (string * int) list;  (** ["q[2]" -> 5] debug mapping *)
}

(** [lower ast] elaborates a parsed program. *)
val lower : Ast.t -> program

(** [compile_string source] parses and lowers in one step. *)
val compile_string : string -> program

(** [compile_file path] reads, parses and lowers a .scaffold file. *)
val compile_file : string -> program
