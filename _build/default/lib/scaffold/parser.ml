exception Error of string * int * int

type state = { mutable tokens : Token.t list }

let current st =
  match st.tokens with
  | tok :: _ -> tok
  | [] -> assert false (* the stream is Eof-terminated *)

let error_at (tok : Token.t) msg = raise (Error (msg, tok.line, tok.col))

let advance st =
  match st.tokens with
  | _ :: ((_ :: _) as rest) -> st.tokens <- rest
  | [ _ ] | [] -> ()

let expect st kind =
  let tok = current st in
  if tok.Token.kind = kind then advance st
  else
    error_at tok
      (Printf.sprintf "expected %s but found %s" (Token.kind_name kind)
         (Token.kind_name tok.Token.kind))

let expect_ident st =
  let tok = current st in
  match tok.Token.kind with
  | Ident name ->
    advance st;
    name
  | other -> error_at tok (Printf.sprintf "expected an identifier, found %s" (Token.kind_name other))

let expect_int st =
  let tok = current st in
  match tok.Token.kind with
  | Int n ->
    advance st;
    n
  | other -> error_at tok (Printf.sprintf "expected an integer, found %s" (Token.kind_name other))

(* Integer expressions: term-level precedence for * / %, then + -. *)
let rec int_expr st =
  let lhs = int_term st in
  int_expr_rest st lhs

and int_expr_rest st lhs =
  let tok = current st in
  match tok.Token.kind with
  | Plus ->
    advance st;
    int_expr_rest st (Ast.Binop (Ast.Add, lhs, int_term st))
  | Minus ->
    advance st;
    int_expr_rest st (Ast.Binop (Ast.Sub, lhs, int_term st))
  | _ -> lhs

and int_term st =
  let lhs = int_atom st in
  int_term_rest st lhs

and int_term_rest st lhs =
  let tok = current st in
  match tok.Token.kind with
  | Star ->
    advance st;
    int_term_rest st (Ast.Binop (Ast.Mul, lhs, int_atom st))
  | Slash ->
    advance st;
    int_term_rest st (Ast.Binop (Ast.Div, lhs, int_atom st))
  | Percent ->
    advance st;
    int_term_rest st (Ast.Binop (Ast.Mod, lhs, int_atom st))
  | _ -> lhs

and int_atom st =
  let tok = current st in
  match tok.Token.kind with
  | Int n ->
    advance st;
    Ast.Int_lit n
  | Ident name ->
    advance st;
    Ast.Var name
  | Minus ->
    advance st;
    Ast.Binop (Ast.Sub, Ast.Int_lit 0, int_atom st)
  | Lparen ->
    advance st;
    let e = int_expr st in
    expect st Token.Rparen;
    e
  | other -> error_at tok (Printf.sprintf "expected an integer expression, found %s" (Token.kind_name other))

(* Float (angle) expressions. *)
let rec float_expr st =
  let lhs = float_term st in
  float_expr_rest st lhs

and float_expr_rest st lhs =
  let tok = current st in
  match tok.Token.kind with
  | Plus ->
    advance st;
    float_expr_rest st (Ast.Fbinop (Ast.Fadd, lhs, float_term st))
  | Minus ->
    advance st;
    float_expr_rest st (Ast.Fbinop (Ast.Fsub, lhs, float_term st))
  | _ -> lhs

and float_term st =
  let lhs = float_atom st in
  float_term_rest st lhs

and float_term_rest st lhs =
  let tok = current st in
  match tok.Token.kind with
  | Star ->
    advance st;
    float_term_rest st (Ast.Fbinop (Ast.Fmul, lhs, float_atom st))
  | Slash ->
    advance st;
    float_term_rest st (Ast.Fbinop (Ast.Fdiv, lhs, float_atom st))
  | _ -> lhs

and float_atom st =
  let tok = current st in
  match tok.Token.kind with
  | Float f ->
    advance st;
    Ast.Float_lit f
  | Kw_pi ->
    advance st;
    Ast.Pi
  | Int n ->
    advance st;
    Ast.Of_int (Ast.Int_lit n)
  | Ident name ->
    advance st;
    Ast.Of_int (Ast.Var name)
  | Minus ->
    advance st;
    Ast.Fneg (float_atom st)
  | Lparen ->
    advance st;
    let e = float_expr st in
    expect st Token.Rparen;
    e
  | other -> error_at tok (Printf.sprintf "expected an angle expression, found %s" (Token.kind_name other))

let qubit_ref st =
  let register = expect_ident st in
  let tok = current st in
  match tok.Token.kind with
  | Lbracket ->
    advance st;
    let index = int_expr st in
    expect st Token.Rbracket;
    { Ast.register; index = Some index }
  | _ -> { Ast.register; index = None }

(* Number of leading angle arguments each parameterized gate takes. *)
let angle_arity name =
  match name with
  | "Rx" | "Ry" | "Rz" | "U1" | "XX" -> 1
  | "Rxy" | "U2" -> 2
  | "U3" -> 3
  | _ -> 0

let rec stmt st =
  let tok = current st in
  match tok.Token.kind with
  | Kw_qbit | Kw_cbit ->
    let line = tok.Token.line in
    advance st;
    let name = expect_ident st in
    let size =
      match (current st).Token.kind with
      | Lbracket ->
        advance st;
        let n = expect_int st in
        expect st Token.Rbracket;
        n
      | _ -> 1
    in
    expect st Token.Semicolon;
    (match tok.Token.kind with
    | Kw_cbit -> None (* classical bits are implicit in measurement *)
    | _ -> Some (Ast.Decl { name; size; line }))
  | Kw_for ->
    let line = tok.Token.line in
    advance st;
    let var = expect_ident st in
    expect st Token.Kw_in;
    let from_ = int_expr st in
    expect st Token.Dotdot;
    let to_ = int_expr st in
    let body = block st in
    Some (Ast.For { var; from_; to_; body; line })
  | Kw_measure ->
    let line = tok.Token.line in
    advance st;
    expect st Token.Lparen;
    let target = qubit_ref st in
    expect st Token.Rparen;
    expect st Token.Semicolon;
    (match target.Ast.index with
    | Some _ -> Some (Ast.Measure_stmt { target; line })
    | None -> Some (Ast.Measure_all { register = target.Ast.register; line }))
  | Ident name ->
    let line = tok.Token.line in
    advance st;
    expect st Token.Lparen;
    let n_angles = angle_arity name in
    let angles = ref [] in
    for i = 0 to n_angles - 1 do
      if i > 0 then expect st Token.Comma;
      angles := float_expr st :: !angles
    done;
    let qubits = ref [] in
    let first = ref (n_angles = 0) in
    let rec collect () =
      match (current st).Token.kind with
      | Rparen -> ()
      | _ ->
        if not !first then expect st Token.Comma else first := false;
        qubits := qubit_ref st :: !qubits;
        collect ()
    in
    collect ();
    expect st Token.Rparen;
    expect st Token.Semicolon;
    Some
      (Ast.Gate
         { name; angles = List.rev !angles; qubits = List.rev !qubits; line })
  | other -> error_at tok (Printf.sprintf "unexpected %s" (Token.kind_name other))

and block st =
  expect st Token.Lbrace;
  let rec collect acc =
    match (current st).Token.kind with
    | Rbrace ->
      advance st;
      List.rev acc
    | Eof -> error_at (current st) "unexpected end of input inside block"
    | _ -> (
      match stmt st with Some s -> collect (s :: acc) | None -> collect acc)
  in
  collect []

(* "qbit a, qbit b" parameter lists. *)
let params st =
  expect st Token.Lparen;
  let rec collect acc first =
    match (current st).Token.kind with
    | Rparen ->
      advance st;
      List.rev acc
    | _ ->
      if not first then expect st Token.Comma;
      expect st Token.Kw_qbit;
      let name = expect_ident st in
      if List.mem name acc then error_at (current st) (Printf.sprintf "duplicate parameter %S" name);
      collect (name :: acc) false
  in
  collect [] true

let module_def st =
  let tok = current st in
  expect st Token.Kw_module;
  let name = expect_ident st in
  let ps = params st in
  let body = block st in
  { Ast.name; params = ps; body; line = tok.Token.line }

let parse source =
  let tokens =
    try Lexer.tokenize source
    with Lexer.Error (msg, line, col) -> raise (Error (msg, line, col))
  in
  let st = { tokens } in
  let rec collect acc =
    match (current st).Token.kind with
    | Eof -> List.rev acc
    | Kw_module -> collect (module_def st :: acc)
    | other ->
      error_at (current st)
        (Printf.sprintf "expected a module definition, found %s" (Token.kind_name other))
  in
  let modules = collect [] in
  if modules = [] then error_at (current st) "empty program";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (m : Ast.module_def) ->
      if Hashtbl.mem seen m.Ast.name then
        raise (Error (Printf.sprintf "module %S defined twice" m.Ast.name, m.Ast.line, 1));
      Hashtbl.add seen m.Ast.name ())
    modules;
  { Ast.modules }
