(** Recursive-descent parser for the Scaffold-like language. *)

exception Error of string * int * int
(** [Error (message, line, col)] *)

(** [parse source] lexes and parses a full program. *)
val parse : string -> Ast.t
