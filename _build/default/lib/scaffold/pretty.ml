(* Fully parenthesized expressions: unambiguous under re-parsing without
   needing a precedence-aware printer. *)
let rec int_expr (e : Ast.int_expr) =
  match e with
  | Int_lit n -> string_of_int n
  | Var v -> v
  | Binop (op, a, b) ->
    let sym =
      match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    in
    Printf.sprintf "(%s %s %s)" (int_expr a) sym (int_expr b)

let rec float_expr (e : Ast.float_expr) =
  match e with
  | Float_lit f ->
    (* Keep a decimal point so the lexer reads it back as a float. *)
    if Float.is_integer f then Printf.sprintf "%.1f" f else Printf.sprintf "%.17g" f
  | Pi -> "pi"
  | Of_int ie -> int_expr ie
  | Fneg f -> Printf.sprintf "(-%s)" (float_expr f)
  | Fbinop (op, a, b) ->
    let sym = match op with Fadd -> "+" | Fsub -> "-" | Fmul -> "*" | Fdiv -> "/" in
    Printf.sprintf "(%s %s %s)" (float_expr a) sym (float_expr b)

let qubit_ref (r : Ast.qubit_ref) =
  match r.index with
  | None -> r.register
  | Some ie -> Printf.sprintf "%s[%s]" r.register (int_expr ie)

let indent level = String.make (2 * level) ' '

let rec stmt level (s : Ast.stmt) =
  match s with
  | Decl { name; size; _ } ->
    if size = 1 then Printf.sprintf "%sqbit %s;" (indent level) name
    else Printf.sprintf "%sqbit %s[%d];" (indent level) name size
  | Gate { name; angles; qubits; _ } ->
    let args = List.map float_expr angles @ List.map qubit_ref qubits in
    Printf.sprintf "%s%s(%s);" (indent level) name (String.concat ", " args)
  | For { var; from_; to_; body; _ } ->
    Printf.sprintf "%sfor %s in %s..%s {\n%s\n%s}" (indent level) var (int_expr from_)
      (int_expr to_)
      (String.concat "\n" (List.map (stmt (level + 1)) body))
      (indent level)
  | Measure_stmt { target; _ } ->
    Printf.sprintf "%smeasure(%s);" (indent level) (qubit_ref target)
  | Measure_all { register; _ } ->
    Printf.sprintf "%smeasure(%s);" (indent level) register

let module_def (m : Ast.module_def) =
  let params = String.concat ", " (List.map (fun p -> "qbit " ^ p) m.Ast.params) in
  Printf.sprintf "module %s(%s) {\n%s\n}" m.Ast.name params
    (String.concat "\n" (List.map (stmt 1) m.Ast.body))

let program (ast : Ast.t) =
  String.concat "\n\n" (List.map module_def ast.Ast.modules) ^ "\n"
