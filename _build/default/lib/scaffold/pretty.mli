(** Pretty-printing Scaffold ASTs back to concrete syntax.

    [program ast] produces source text that parses back to an equivalent
    program (round-trip checked by property tests) — used to emit
    generated benchmarks as .scf files and to normalize user programs. *)

val program : Ast.t -> string
val stmt : int -> Ast.stmt -> string
val int_expr : Ast.int_expr -> string
val float_expr : Ast.float_expr -> string
