type kind =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_module
  | Kw_qbit
  | Kw_cbit
  | Kw_for
  | Kw_in
  | Kw_measure
  | Kw_pi
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Dotdot
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Eof

type t = { kind : kind; line : int; col : int }

let kind_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Float f -> Printf.sprintf "float %g" f
  | Kw_module -> "'module'"
  | Kw_qbit -> "'qbit'"
  | Kw_cbit -> "'cbit'"
  | Kw_for -> "'for'"
  | Kw_in -> "'in'"
  | Kw_measure -> "'measure'"
  | Kw_pi -> "'pi'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Comma -> "','"
  | Semicolon -> "';'"
  | Dotdot -> "'..'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent -> "'%'"
  | Eof -> "end of input"

let pp fmt t = Format.fprintf fmt "%s at %d:%d" (kind_name t.kind) t.line t.col
