(** Lexical tokens of the Scaffold-like input language, with source
    positions for error reporting. *)

type kind =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_module
  | Kw_qbit
  | Kw_cbit
  | Kw_for
  | Kw_in
  | Kw_measure
  | Kw_pi
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Dotdot
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Eof

type t = { kind : kind; line : int; col : int }

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
