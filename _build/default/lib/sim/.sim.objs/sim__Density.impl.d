lib/sim/density.ml: Array Ir List Mathkit Statevector
