lib/sim/density.mli: Ir Mathkit
