lib/sim/density_runner.ml: Array Density Device Dist Ir List Noise Printf Triq
