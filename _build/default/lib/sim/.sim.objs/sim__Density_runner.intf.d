lib/sim/density_runner.mli: Ir Triq
