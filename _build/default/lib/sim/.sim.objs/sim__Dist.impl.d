lib/sim/dist.ml: Array Float List Option String
