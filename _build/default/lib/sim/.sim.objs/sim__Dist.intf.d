lib/sim/dist.mli:
