lib/sim/mitigation.ml: Array Device Dist Float Ir List Noise Runner String Triq
