lib/sim/mitigation.mli: Ir Triq
