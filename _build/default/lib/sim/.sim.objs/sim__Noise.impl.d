lib/sim/noise.ml: Device Ir Mathkit Option Statevector
