lib/sim/noise.mli: Device Ir Mathkit Statevector
