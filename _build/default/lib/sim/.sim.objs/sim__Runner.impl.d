lib/sim/runner.ml: Array Device Dist Hashtbl Ir List Mathkit Noise Option Printf Statevector Triq
