lib/sim/runner.mli: Ir Triq
