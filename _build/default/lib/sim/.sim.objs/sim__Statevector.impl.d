lib/sim/statevector.ml: Array Ir List Mathkit
