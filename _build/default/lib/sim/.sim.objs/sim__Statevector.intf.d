lib/sim/statevector.mli: Ir Mathkit
