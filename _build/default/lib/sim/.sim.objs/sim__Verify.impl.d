lib/sim/verify.ml: Dist Ir List Printf Runner Triq
