lib/sim/verify.mli: Ir Triq
