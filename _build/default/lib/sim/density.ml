module M = Mathkit.Matrix
module C = Mathkit.Cplx

type t = { n : int; vec : Statevector.t }

let init n =
  if n < 1 || n > 10 then invalid_arg "Density.init: n out of range";
  { n; vec = Statevector.init (2 * n) }

let n_qubits t = t.n

let conj_matrix m =
  let out = M.create (M.rows m) (M.cols m) in
  for r = 0 to M.rows m - 1 do
    for c = 0 to M.cols m - 1 do
      M.set out r c (C.conj (M.get m r c))
    done
  done;
  out

let check t q = if q < 0 || q >= t.n then invalid_arg "Density: qubit out of range"

let apply_one t m q =
  check t q;
  Statevector.apply_one t.vec m q;
  Statevector.apply_one t.vec (conj_matrix m) (t.n + q)

let apply_two t m a b =
  check t a;
  check t b;
  Statevector.apply_two t.vec m a b;
  Statevector.apply_two t.vec (conj_matrix m) (t.n + a) (t.n + b)

let rec apply_gate t (g : Ir.Gate.t) =
  match g with
  | One (k, q) -> apply_one t (Ir.Matrices.one_q k) q
  | Two (k, a, b) -> apply_two t (Ir.Matrices.two_q k) a b
  | Ccx (a, b, c) -> List.iter (apply_gate t) (Ir.Decompose.ccx a b c)
  | Cswap (a, b, c) -> List.iter (apply_gate t) (Ir.Decompose.cswap a b c)
  | Measure _ -> invalid_arg "Density.apply_gate: Measure"

let paulis = [| Ir.Matrices.one_q X; Ir.Matrices.one_q Y; Ir.Matrices.one_q Z |]

(* Kraus mixture: acc = (1-p) rho + sum_i w_i K_i rho K_i+ where each K_i
   here is unitary (Pauli), so each term is a conjugated copy. *)
let pauli_mixture t p terms =
  if p < 0.0 || p > 1.0 then invalid_arg "Density: probability out of range";
  if p > 0.0 then begin
    let acc = Statevector.zero_like t.vec in
    Statevector.add_scaled acc (1.0 -. p) t.vec;
    let weight = p /. float_of_int (List.length terms) in
    List.iter
      (fun conjugate ->
        let copy = Statevector.copy t.vec in
        let branch = { t with vec = copy } in
        conjugate branch;
        Statevector.add_scaled acc weight copy)
      terms;
    (* Overwrite t.vec with acc. *)
    Statevector.scale t.vec 0.0;
    Statevector.add_scaled t.vec 1.0 acc
  end

let depolarize_one t p q =
  check t q;
  pauli_mixture t p
    (List.map (fun pauli branch -> apply_one branch pauli q) (Array.to_list paulis))

let depolarize_two t p a b =
  check t a;
  check t b;
  let terms = ref [] in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i > 0 || j > 0 then begin
        let conjugate branch =
          if i > 0 then apply_one branch paulis.(i - 1) a;
          if j > 0 then apply_one branch paulis.(j - 1) b
        in
        terms := conjugate :: !terms
      end
    done
  done;
  pauli_mixture t p !terms

let dephase t p q =
  check t q;
  pauli_mixture t p [ (fun branch -> apply_one branch paulis.(2) q) ]

let amplitude_damp t gamma q =
  check t q;
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Density.amplitude_damp: gamma";
  (* Non-unitary Kraus pair: K0 = [[1,0],[0,sqrt(1-g)]], K1 = [[0,sqrt g],[0,0]]. *)
  let k0 =
    M.of_rows [ [ C.one; C.zero ]; [ C.zero; C.re (sqrt (1.0 -. gamma)) ] ]
  in
  let k1 = M.of_rows [ [ C.zero; C.re (sqrt gamma) ]; [ C.zero; C.zero ] ] in
  let branch m =
    let copy = { t with vec = Statevector.copy t.vec } in
    Statevector.apply_one copy.vec m q;
    Statevector.apply_one copy.vec (conj_matrix m) (t.n + q);
    copy.vec
  in
  let b0 = branch k0 and b1 = branch k1 in
  Statevector.scale t.vec 0.0;
  Statevector.add_scaled t.vec 1.0 b0;
  Statevector.add_scaled t.vec 1.0 b1

let diag_index t i = (i lsl t.n) lor i

let populations t =
  Array.init (1 lsl t.n) (fun i ->
      (Statevector.amplitude t.vec (diag_index t i)).re)

let trace t = Array.fold_left ( +. ) 0.0 (populations t)

let purity t =
  (* Tr(rho^2) = sum_{r,c} |rho_{r,c}|^2 = squared 2-norm of the vectorized
     density matrix. *)
  Statevector.norm2 t.vec
