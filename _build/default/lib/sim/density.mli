(** Exact density-matrix simulation.

    The trajectory runner ({!Runner}) estimates noisy behaviour by Monte
    Carlo; this backend computes it exactly on small systems by evolving
    the full density matrix through unitaries and Kraus channels. The two
    must agree (cross-validated in tests), which is the evidence that the
    trajectory sampling faithfully implements the declared noise model.

    The n-qubit density matrix is stored as a 2n-qubit amplitude vector
    (row index bits then column index bits), so unitary conjugation
    reuses the statevector kernels: U rho U+ applies U on the row qubit
    and conj(U) on the matching column qubit. Practical up to ~8 qubits. *)

type t

(** [init n] is the pure state |0...0><0...0|. *)
val init : int -> t

val n_qubits : t -> int

(** [apply_one t m q] conjugates by a 2x2 unitary on qubit [q]. *)
val apply_one : t -> Mathkit.Matrix.t -> int -> unit

(** [apply_two t m a b] conjugates by a 4x4 unitary on [(a, b)]. *)
val apply_two : t -> Mathkit.Matrix.t -> int -> int -> unit

(** [apply_gate t g] dispatches a non-measure IR gate. *)
val apply_gate : t -> Ir.Gate.t -> unit

(** [depolarize_one t p q] applies the one-qubit depolarizing channel
    rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z). *)
val depolarize_one : t -> float -> int -> unit

(** [depolarize_two t p a b] applies the two-qubit channel mixing the 15
    non-identity Pauli pairs uniformly with total weight [p] — exactly the
    error the trajectory runner injects. *)
val depolarize_two : t -> float -> int -> int -> unit

(** [amplitude_damp t gamma q] applies T1 relaxation toward |0>. *)
val amplitude_damp : t -> float -> int -> unit

(** [dephase t p q] applies the phase-flip channel
    rho -> (1-p) rho + p Z rho Z. *)
val dephase : t -> float -> int -> unit

(** [populations t] is the diagonal (the computational-basis measurement
    distribution), length 2^n. *)
val populations : t -> float array

(** [trace t] is the trace (1 up to rounding for a valid state). *)
val trace : t -> float

(** [purity t] is Tr(rho^2): 1 for pure states, 1/2^n for the maximally
    mixed state. *)
val purity : t -> float
