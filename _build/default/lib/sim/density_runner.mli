(** Exact execution of compiled programs via the density-matrix backend.

    Implements the same noise semantics as the Monte-Carlo {!Runner} —
    each gate followed by its calibrated depolarizing channel, readout
    bits flipped independently — but computes the outcome distribution in
    closed form. Restricted to executables touching at most ~8 hardware
    qubits; used to cross-validate the trajectory sampler and for
    high-precision small-system studies. *)

type outcome = {
  distribution : (string * float) list;
      (** exact readout-corrupted distribution over measured program bits *)
  success_rate : float;
  purity : float;  (** Tr(rho^2) of the final state, before readout *)
}

(** [run ?explicit_t1 compiled spec] executes exactly; [explicit_t1]
    replaces the decoherence fold with amplitude-damping channels. Raises
    [Invalid_argument] when the circuit touches more than 8 qubits. *)
val run : ?explicit_t1:bool -> Triq.Compiled.t -> Ir.Spec.t -> outcome
