let project probs k positions =
  let m = List.length positions in
  let out = Array.make (1 lsl m) 0.0 in
  let positions = Array.of_list positions in
  Array.iteri
    (fun s p ->
      if p > 0.0 then begin
        let y = ref 0 in
        Array.iter
          (fun c -> y := (!y lsl 1) lor ((s lsr (k - 1 - c)) land 1))
          positions;
        out.(!y) <- out.(!y) +. p
      end)
    probs;
  out

let corrupt_readout q flip =
  let m = Array.length flip in
  let out = Array.make (Array.length q) 0.0 in
  Array.iteri
    (fun y0 p0 ->
      if p0 > 0.0 then
        for y = 0 to Array.length q - 1 do
          let w = ref p0 in
          for i = 0 to m - 1 do
            let b0 = (y0 lsr (m - 1 - i)) land 1 in
            let b = (y lsr (m - 1 - i)) land 1 in
            w := !w *. (if b = b0 then 1.0 -. flip.(i) else flip.(i))
          done;
          out.(y) <- out.(y) +. !w
        done)
    q;
  out

let bits_to_string m y =
  String.init m (fun i -> if (y lsr (m - 1 - i)) land 1 = 1 then '1' else '0')

let to_strings dist =
  let m =
    (* dist has length 2^m *)
    let rec log2 x acc = if x <= 1 then acc else log2 (x lsr 1) (acc + 1) in
    log2 (Array.length dist) 0
  in
  Array.to_list (Array.mapi (fun y p -> (bits_to_string m y, p)) dist)
  |> List.filter (fun (_, p) -> p > 1e-6)
  |> List.sort (fun (_, p1) (_, p2) -> Float.compare p2 p1)

let to_counts dist trials =
  let raw = List.map (fun (s, p) -> (s, p *. float_of_int trials)) dist in
  let floored = List.map (fun (s, x) -> (s, int_of_float (Float.floor x), x)) raw in
  let assigned = List.fold_left (fun acc (_, n, _) -> acc + n) 0 floored in
  let remainder_order =
    List.sort
      (fun (_, n1, x1) (_, n2, x2) ->
        compare (x2 -. float_of_int n2) (x1 -. float_of_int n1))
      floored
  in
  let missing = trials - assigned in
  let bumped =
    List.mapi (fun i (s, n, _) -> (s, if i < missing then n + 1 else n)) remainder_order
  in
  List.filter (fun (_, n) -> n > 0) bumped

let outcomes a b =
  List.sort_uniq compare (List.map fst a @ List.map fst b)

let prob dist key = Option.value ~default:0.0 (List.assoc_opt key dist)

let total_variation a b =
  0.5
  *. List.fold_left
       (fun acc key -> acc +. Float.abs (prob a key -. prob b key))
       0.0 (outcomes a b)

let hellinger a b =
  let sum =
    List.fold_left
      (fun acc key ->
        let d = sqrt (prob a key) -. sqrt (prob b key) in
        acc +. (d *. d))
      0.0 (outcomes a b)
  in
  sqrt (sum /. 2.0)

let parity_expectation dist positions =
  List.fold_left
    (fun acc (bits, p) ->
      let ones =
        List.fold_left
          (fun n i ->
            if i < 0 || i >= String.length bits then
              invalid_arg "Dist.parity_expectation: position out of range"
            else if bits.[i] = '1' then n + 1
            else n)
          0 positions
      in
      acc +. (p *. if ones mod 2 = 0 then 1.0 else -1.0))
    0.0 dist
