(** Distribution utilities shared by the trajectory and density-matrix
    runners: projecting a probability vector onto measured qubits,
    corrupting it with per-bit readout error, and scaling to shot
    counts. *)

(** [project probs k positions] marginalizes a 2^k probability vector onto
    the (ordered) qubit [positions]; the result is indexed by the
    bitstring read MSB-first in position order. *)
val project : float array -> int -> int list -> float array

(** [corrupt_readout q flip] applies independent per-bit flip
    probabilities [flip] to the projected distribution [q]. *)
val corrupt_readout : float array -> float array -> float array

(** [to_strings dist] pairs every outcome of a projected distribution with
    its bitstring, descending probability, dropping mass below 1e-6. *)
val to_strings : float array -> (string * float) list

(** [to_counts dist trials] scales a distribution to integer shot counts
    using largest remainders; counts sum exactly to [trials]. *)
val to_counts : (string * float) list -> int -> (string * int) list

(** [total_variation a b] is the total-variation distance between two
    distributions given as bitstring association lists (missing outcomes
    count as 0): 0 = identical, 1 = disjoint support. *)
val total_variation : (string * float) list -> (string * float) list -> float

(** [hellinger a b] is the Hellinger distance, in [0, 1]. *)
val hellinger : (string * float) list -> (string * float) list -> float

(** [parity_expectation dist positions] is the expectation of the parity
    observable (product of Z on the given bitstring positions) under a
    distribution over bitstrings: sum of p * (-1)^(popcount of selected
    bits). Positions index into the bitstring (0 = leftmost). *)
val parity_expectation : (string * float) list -> int list -> float
