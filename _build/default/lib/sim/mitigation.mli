(** Readout-error mitigation (an extension beyond the paper's pipeline).

    Readout corruption is an independent per-bit flip channel whose
    confusion matrix is known from calibration; applying its inverse to
    the measured distribution recovers an unbiased estimate of the
    pre-readout distribution — the standard "measurement error
    mitigation" adopted by vendor toolflows after the paper. Inversion
    can produce small negative quasi-probabilities on finite statistics;
    they are clipped and the result renormalized. *)

(** [correct ~flip dist] applies the inverse confusion transform;
    [flip.(i)] is bit [i]'s flip probability (must be < 0.5). The input
    distribution's bitstrings must share one length equal to
    [Array.length flip]. *)
val correct : flip:float array -> (string * float) list -> (string * float) list

(** [mitigated_success ?seed ?trials ?trajectories compiled spec] runs the
    trajectory engine, then scores the spec against the mitigated
    distribution. Returns (raw success, mitigated success). *)
val mitigated_success :
  ?seed:int ->
  ?trials:int ->
  ?trajectories:int ->
  Triq.Compiled.t ->
  Ir.Spec.t ->
  float * float
