module Machine = Device.Machine
module Calibration = Device.Calibration
module Gateset = Device.Gateset
module Rng = Mathkit.Rng

type t = { machine : Machine.t; calibration : Calibration.t }

let create machine calibration = { machine; calibration }

(* Fold gate infidelity with decoherence over the gate's duration:
   p = 1 - (1 - err) * exp(-duration / T). For the trapped-ion machine the
   second factor is negligible (T = 1.5s); for superconducting machines it
   adds the coherence-limit contribution the paper discusses. *)
let fold_decoherence profile err duration =
  1.0 -. ((1.0 -. err) *. exp (-.duration /. profile.Calibration.coherence_us))

let gate_error_prob t (g : Ir.Gate.t) =
  let profile = t.machine.Machine.profile in
  match g with
  | One (k, q) ->
    if Gateset.is_error_free t.machine.Machine.basis k then 0.0
    else
      fold_decoherence profile
        (Calibration.one_q_err t.calibration q)
        profile.Calibration.one_q_time_us
  | Two (_, a, b) ->
    fold_decoherence profile
      (Calibration.two_q_err t.calibration a b)
      profile.Calibration.two_q_time_us
  | Measure _ -> 0.0
  | Ccx _ | Cswap _ -> invalid_arg "Noise.gate_error_prob: not hardware-level"

let gate_error_prob_raw t (g : Ir.Gate.t) =
  match g with
  | One (k, q) ->
    if Gateset.is_error_free t.machine.Machine.basis k then 0.0
    else Calibration.one_q_err t.calibration q
  | Two (_, a, b) -> Calibration.two_q_err t.calibration a b
  | Measure _ -> 0.0
  | Ccx _ | Cswap _ -> invalid_arg "Noise.gate_error_prob_raw: not hardware-level"

let relaxation_gamma t (g : Ir.Gate.t) =
  let profile = t.machine.Machine.profile in
  let duration =
    match g with
    | One (k, _) ->
      if Gateset.is_error_free t.machine.Machine.basis k then 0.0
      else profile.Calibration.one_q_time_us
    | Two _ -> profile.Calibration.two_q_time_us
    | Measure _ -> 0.0
    | Ccx _ | Cswap _ -> invalid_arg "Noise.relaxation_gamma: not hardware-level"
  in
  if duration = 0.0 then 0.0
  else 1.0 -. exp (-.duration /. profile.Calibration.coherence_us)

let readout_flip_prob t q = Calibration.readout_err t.calibration q

let random_pauli_one rng : Ir.Gate.one_q =
  match Rng.int rng 3 with 0 -> X | 1 -> Y | _ -> Z

let apply_pauli state rng q =
  Statevector.apply_one state (Ir.Matrices.one_q (random_pauli_one rng)) q

let inject t rng (g : Ir.Gate.t) state ~qubit_of =
  match g with
  | Measure _ -> false
  | One (k, q) ->
    let sq = qubit_of q in
    Statevector.apply_one state (Ir.Matrices.one_q k) sq;
    let p = gate_error_prob t g in
    if p > 0.0 && Rng.bool rng p then begin
      apply_pauli state rng sq;
      true
    end
    else false
  | Two (k, a, b) ->
    let sa = qubit_of a and sb = qubit_of b in
    Statevector.apply_two state (Ir.Matrices.two_q k) sa sb;
    let p = gate_error_prob t g in
    if p > 0.0 && Rng.bool rng p then begin
      (* Uniform non-identity two-qubit Pauli: draw until not (I, I). *)
      let rec draw () =
        let pa = Rng.int rng 4 and pb = Rng.int rng 4 in
        if pa = 0 && pb = 0 then draw () else (pa, pb)
      in
      let pa, pb = draw () in
      let pauli = function
        | 1 -> Some Ir.Gate.X
        | 2 -> Some Ir.Gate.Y
        | 3 -> Some Ir.Gate.Z
        | _ -> None
      in
      Option.iter (fun p -> Statevector.apply_one state (Ir.Matrices.one_q p) sa) (pauli pa);
      Option.iter (fun p -> Statevector.apply_one state (Ir.Matrices.one_q p) sb) (pauli pb);
      true
    end
    else false
  | Ccx _ | Cswap _ -> invalid_arg "Noise.inject: not hardware-level"
