(** Noise model driven by calibration data.

    Every physical gate fails independently with its calibrated error
    probability (folded with a decoherence term for the gate's duration
    relative to the machine's coherence time); a failure injects a uniform
    random non-identity Pauli on the gate's qubits after the ideal gate —
    the standard depolarizing trajectory model. Virtual-Z gates are
    error-free on all three vendors. Readout errors flip each measured bit
    independently with the qubit's calibrated readout error. *)

type t

(** [create machine calibration] builds the model for one calibration
    snapshot. *)
val create : Device.Machine.t -> Device.Calibration.t -> t

(** [gate_error_prob t g] is the failure probability of a hardware-level,
    software-visible gate ([Measure] returns 0 — readout is separate). *)
val gate_error_prob : t -> Ir.Gate.t -> float

(** [gate_error_prob_raw t g] is the calibrated error alone, without the
    decoherence fold — used when relaxation is modelled explicitly. *)
val gate_error_prob_raw : t -> Ir.Gate.t -> float

(** [relaxation_gamma t g] is the per-qubit T1 decay probability over the
    gate's duration: 1 - exp(-duration / T). *)
val relaxation_gamma : t -> Ir.Gate.t -> float

(** [readout_flip_prob t q] is the probability that reading hardware qubit
    [q] returns the wrong bit. *)
val readout_flip_prob : t -> int -> float

(** [random_pauli_one rng] picks X, Y or Z uniformly. *)
val random_pauli_one : Mathkit.Rng.t -> Ir.Gate.one_q

(** [inject t rng g state ~qubit_of] applies the ideal gate [g] to [state]
    and, with probability [gate_error_prob t g], follows it with a random
    Pauli error. [qubit_of] maps the gate's hardware qubit numbers to
    state indices (the runner simulates compacted circuits). Measures are
    ignored. Returns [true] when an error was injected. *)
val inject :
  t -> Mathkit.Rng.t -> Ir.Gate.t -> Statevector.t -> qubit_of:(int -> int) -> bool
