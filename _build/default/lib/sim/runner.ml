module Rng = Mathkit.Rng
module Machine = Device.Machine
module Compiled = Triq.Compiled

type outcome = {
  distribution : (string * float) list;
  counts : (string * int) list;
  success_rate : float;
  dominant_correct : bool;
  trials : int;
  trajectories : int;
}

let run ?(seed = 0xC0FFEE) ?(trials = 8192) ?(trajectories = 300) ?day
    ?(sample_counts = false) ?(explicit_t1 = false) compiled spec =
  let hardware = compiled.Compiled.hardware in
  let machine = compiled.Compiled.machine in
  (* [day] overrides the calibration the executable runs under — by default
     the one it was compiled against; passing a later day models running a
     stale executable after the machine drifted. *)
  let day = Option.value ~default:compiled.Compiled.day day in
  let calibration = Machine.calibration machine ~day in
  let noise = Noise.create machine calibration in
  (* Simulate only the qubits the hardware circuit touches. *)
  let used = Ir.Circuit.used_qubits hardware in
  let k = List.length used in
  if k = 0 then invalid_arg "Runner.run: empty circuit";
  if k > 20 then invalid_arg "Runner.run: circuit touches too many qubits to simulate";
  let compact_of_hw = List.mapi (fun i q -> (q, i)) used in
  let qubit_of h = List.assoc h compact_of_hw in
  (* Per-gate precomputation: matrices, compact operands, error probs. *)
  let body =
    List.filter (fun g -> not (Ir.Gate.is_measure g)) hardware.Ir.Circuit.gates
  in
  let prepared =
    List.map
      (fun g ->
        (* With explicit T1 the decoherence contribution is modelled as a
           relaxation channel rather than folded into the Pauli error. *)
        let p =
          if explicit_t1 then Noise.gate_error_prob_raw noise g
          else Noise.gate_error_prob noise g
        in
        let gamma = if explicit_t1 then Noise.relaxation_gamma noise g else 0.0 in
        match (g : Ir.Gate.t) with
        | One (kind, q) -> `One (Ir.Matrices.one_q kind, qubit_of q, p, gamma)
        | Two (kind, a, b) ->
          `Two (Ir.Matrices.two_q kind, qubit_of a, qubit_of b, p, gamma)
        | Measure _ | Ccx _ | Cswap _ -> assert false)
      body
  in
  let pauli = [| Ir.Matrices.one_q X; Ir.Matrices.one_q Y; Ir.Matrices.one_q Z |] in
  let rng = Rng.create seed in
  (* Sample the error pattern first: clean trajectories (the common case on
     good mappings) reuse the cached ideal output without re-simulating. *)
  let sample_error_flags () =
    let any = ref false in
    let flags =
      List.map
        (fun instr ->
          let p = match instr with `One (_, _, p, _) | `Two (_, _, _, p, _) -> p in
          let e = p > 0.0 && Rng.bool rng p in
          if e then any := true;
          e)
        prepared
    in
    (flags, !any)
  in
  let run_trajectory flags =
    let state = Statevector.init k in
    List.iter2
      (fun instr erred ->
        match instr with
        | `One (m, q, _, gamma) ->
          Statevector.apply_one state m q;
          if erred then Statevector.apply_one state pauli.(Rng.int rng 3) q;
          if gamma > 0.0 then ignore (Statevector.relax state q ~gamma rng)
        | `Two (m, a, b, _, gamma) ->
          Statevector.apply_two state m a b;
          if erred then begin
            let rec draw () =
              let pa = Rng.int rng 4 and pb = Rng.int rng 4 in
              if pa = 0 && pb = 0 then draw () else (pa, pb)
            in
            let pa, pb = draw () in
            if pa > 0 then Statevector.apply_one state pauli.(pa - 1) a;
            if pb > 0 then Statevector.apply_one state pauli.(pb - 1) b
          end;
          if gamma > 0.0 then begin
            ignore (Statevector.relax state a ~gamma rng);
            ignore (Statevector.relax state b ~gamma rng)
          end)
      prepared flags;
    state
  in
  (* Clean trajectories all coincide: compute the ideal output once and
     reuse it whenever the sampled error pattern is empty. *)
  let ideal_state = Statevector.init k in
  List.iter
    (fun instr ->
      match instr with
      | `One (m, q, _, _) -> Statevector.apply_one ideal_state m q
      | `Two (m, a, b, _, _) -> Statevector.apply_two ideal_state m a b)
    prepared;
  let ideal_probs = Statevector.probabilities ideal_state in
  let dim = 1 lsl k in
  let avg = Array.make dim 0.0 in
  for _ = 1 to trajectories do
    let probs =
      let flags, any = sample_error_flags () in
      (* Explicit relaxation is stochastic in every trajectory, so the
         clean-trajectory shortcut only applies without it. *)
      if (not any) && not explicit_t1 then ideal_probs
      else Statevector.probabilities (run_trajectory flags)
    in
    for i = 0 to dim - 1 do
      avg.(i) <- avg.(i) +. probs.(i)
    done
  done;
  for i = 0 to dim - 1 do
    avg.(i) <- avg.(i) /. float_of_int trajectories
  done;
  (* Readout: program qubits in spec order -> hardware -> compact. *)
  let measured_program = spec.Ir.Spec.measured in
  let compact_positions =
    List.map
      (fun p ->
        match List.assoc_opt p compiled.Compiled.readout_map with
        | Some hw -> qubit_of hw
        | None ->
          invalid_arg
            (Printf.sprintf "Runner.run: program qubit %d is not measured" p))
      measured_program
  in
  let flip =
    Array.of_list
      (List.map
         (fun p ->
           let hw = List.assoc p compiled.Compiled.readout_map in
           Noise.readout_flip_prob noise hw)
         measured_program)
  in
  let projected = Dist.project avg k compact_positions in
  let final = Dist.corrupt_readout projected flip in
  let distribution = Dist.to_strings final in
  let counts =
    if sample_counts then begin
      (* Realistic multinomial shot noise instead of deterministic
         largest-remainder rounding. *)
      let table = Hashtbl.create 16 in
      let outcomes = Array.of_list distribution in
      let cumulative =
        let acc = ref 0.0 in
        Array.map
          (fun (_, p) ->
            acc := !acc +. p;
            !acc)
          outcomes
      in
      let total = cumulative.(Array.length cumulative - 1) in
      for _ = 1 to trials do
        let r = Rng.float rng *. total in
        let rec find i =
          if i >= Array.length cumulative - 1 || cumulative.(i) >= r then i
          else find (i + 1)
        in
        let bits, _ = outcomes.(find 0) in
        Hashtbl.replace table bits (1 + Option.value ~default:0 (Hashtbl.find_opt table bits))
      done;
      Hashtbl.fold (fun bits n acc -> (bits, n) :: acc) table []
      |> List.sort (fun (_, n1) (_, n2) -> compare n2 n1)
    end
    else Dist.to_counts distribution trials
  in
  {
    distribution;
    counts;
    success_rate = Ir.Spec.success_rate spec counts;
    dominant_correct = Ir.Spec.dominates spec counts;
    trials;
    trajectories;
  }

let ideal_distribution (circuit : Ir.Circuit.t) ~measured =
  let state = Statevector.run circuit in
  let k = circuit.Ir.Circuit.n_qubits in
  Dist.to_strings (Dist.project (Statevector.probabilities state) k measured)
