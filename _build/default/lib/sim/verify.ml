module Compiled = Triq.Compiled

type result = {
  equivalent : bool;
  total_variation : float;
  program_distribution : (string * float) list;
  compiled_distribution : (string * float) list;
}

let check ~program ~measured (compiled : Compiled.t) =
  let program_distribution =
    Runner.ideal_distribution (Ir.Circuit.body program) ~measured
  in
  let hw, mapping = Ir.Circuit.compact compiled.Compiled.hardware in
  let measured_hw =
    List.map
      (fun p ->
        match List.assoc_opt p compiled.Compiled.readout_map with
        | Some hw_qubit -> List.assoc hw_qubit mapping
        | None ->
          invalid_arg
            (Printf.sprintf "Verify.check: program qubit %d is not measured" p))
      measured
  in
  let compiled_distribution =
    Runner.ideal_distribution (Ir.Circuit.body hw) ~measured:measured_hw
  in
  let total_variation = Dist.total_variation program_distribution compiled_distribution in
  {
    equivalent = total_variation < 1e-6;
    total_variation;
    program_distribution;
    compiled_distribution;
  }

let check_spec (spec : Ir.Spec.t) ~program compiled =
  check ~program ~measured:spec.Ir.Spec.measured compiled
