(** Translation validation: check that a compiled executable computes
    exactly what its source program computes.

    The oracle executes both the program and the (compacted) hardware
    circuit noiselessly and compares the output distributions over the
    measured qubits, following the readout map through placement changes.
    This is the invariant every compiler and baseline in the repository
    must maintain; the CLI exposes it as [triqc verify] and the test
    suites apply it across the full machine x level matrix. *)

type result = {
  equivalent : bool;
  total_variation : float;  (** 0 when equivalent *)
  program_distribution : (string * float) list;
  compiled_distribution : (string * float) list;
}

(** [check ~program ~measured compiled] compares noiseless outputs.
    [measured] lists the program qubits in bitstring order (typically
    [spec.measured]); they must all appear in the executable's readout
    map. Distributions match when their total variation is below 1e-6. *)
val check : program:Ir.Circuit.t -> measured:int list -> Triq.Compiled.t -> result

(** [check_spec spec compiled ~program] is [check] with the measured list
    taken from a spec. *)
val check_spec : Ir.Spec.t -> program:Ir.Circuit.t -> Triq.Compiled.t -> result
