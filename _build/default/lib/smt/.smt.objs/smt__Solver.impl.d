lib/smt/solver.ml: Array List
