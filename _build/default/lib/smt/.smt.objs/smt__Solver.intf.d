lib/smt/solver.mli:
