test/test_analysis.ml: Alcotest Analysis Bench_kit Device Float Ir List Option Printf Sim String Triq
