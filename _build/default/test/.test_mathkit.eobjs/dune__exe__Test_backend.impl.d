test/test_backend.ml: Alcotest Backend Bench_kit Device Ir List Mathkit String Triq
