test/test_baselines.ml: Alcotest Array Baselines Bench_kit Device Ir List Mathkit Printf Sim Triq
