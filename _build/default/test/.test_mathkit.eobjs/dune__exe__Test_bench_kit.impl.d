test/test_bench_kit.ml: Alcotest Bench_kit Device Fun Ir List Printf Scaffold Sim String Triq
