test/test_bench_kit.mli:
