test/test_characterize.ml: Alcotest Characterize Device Float Ir List Sim
