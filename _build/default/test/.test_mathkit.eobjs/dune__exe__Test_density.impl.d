test/test_density.ml: Alcotest Array Bench_kit Device Float Ir List Mathkit Printf Sim Triq
