test/test_device.ml: Alcotest Array Device Float Ir List Mathkit Printf QCheck QCheck_alcotest Triq
