test/test_extensions.ml: Alcotest Array Backend Bench_kit Device Float Ir List Mathkit Printf Sim String Triq
