test/test_integration.ml: Alcotest Backend Baselines Bench_kit Device Ir List Printf QCheck QCheck_alcotest Scaffold Sim Triq
