test/test_ir.ml: Alcotest Float Ir List Mathkit QCheck QCheck_alcotest
