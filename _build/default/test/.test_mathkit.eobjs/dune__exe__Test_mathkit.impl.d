test/test_mathkit.ml: Alcotest Array Float Format Gen List Mathkit QCheck QCheck_alcotest
