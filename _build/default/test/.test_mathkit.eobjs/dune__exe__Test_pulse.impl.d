test/test_pulse.ml: Alcotest Array Bench_kit Device Float Ir List Pulse QCheck QCheck_alcotest String Triq
