test/test_pulse.mli:
