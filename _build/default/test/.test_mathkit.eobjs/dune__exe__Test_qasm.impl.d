test/test_qasm.ml: Alcotest Backend Bench_kit Device Float Ir List Mathkit Qasm Sim String Triq
