test/test_scaffold.ml: Alcotest Bench_kit Float Ir List QCheck QCheck_alcotest Scaffold Sim String
