test/test_scaffold.mli:
