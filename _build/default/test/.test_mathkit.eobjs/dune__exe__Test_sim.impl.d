test/test_sim.ml: Alcotest Array Bench_kit Device Float Ir List Mathkit Option Printf QCheck QCheck_alcotest Sim String Triq
