test/test_smt.ml: Alcotest Array Bench_kit Device Float Ir List Mathkit Smt Triq
