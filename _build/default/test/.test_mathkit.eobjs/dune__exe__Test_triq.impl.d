test/test_triq.ml: Alcotest Array Device Float Format Ir List Mathkit Printf QCheck QCheck_alcotest Triq
