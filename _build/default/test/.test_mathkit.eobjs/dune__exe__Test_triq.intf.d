test/test_triq.mli:
