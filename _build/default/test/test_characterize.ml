(* Characterization tests: the fitting primitives, and the key closure
   property — benchmarking the simulated device recovers the error rates
   injected from calibration data. *)

module Fit = Characterize.Fit
module Rb = Characterize.Benchmarking
module Machines = Device.Machines
module Machine = Device.Machine

(* ---------- Fit ---------- *)

let test_fit_linear_exact () =
  let a, b = Fit.linear [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 a;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 b

let test_fit_linear_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "one point" true (raises (fun () -> Fit.linear [ (1.0, 1.0) ]));
  Alcotest.(check bool) "degenerate x" true
    (raises (fun () -> Fit.linear [ (1.0, 1.0); (1.0, 2.0) ]))

let test_fit_exponential_exact () =
  let points = List.init 6 (fun i -> (float_of_int i, 2.0 *. (0.9 ** float_of_int i))) in
  let p, a = Fit.exponential_decay points in
  Alcotest.(check (float 1e-9)) "decay" 0.9 p;
  Alcotest.(check (float 1e-9)) "amplitude" 2.0 a

let test_fit_exponential_drops_nonpositive () =
  let points = [ (0.0, 1.0); (1.0, 0.5); (2.0, -0.1); (3.0, 0.125) ] in
  let p, _ = Fit.exponential_decay points in
  Alcotest.(check (float 1e-6)) "decay 0.5" 0.5 p

let test_fit_r_squared () =
  let points = List.init 5 (fun i -> (float_of_int i, 3.0 +. (2.0 *. float_of_int i))) in
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Fit.r_squared points (fun x -> 3.0 +. (2.0 *. x)));
  Alcotest.(check bool) "bad model" true
    (Fit.r_squared points (fun _ -> 0.0) < 0.0)

(* ---------- Randomized benchmarking recovers injected errors ---------- *)

let relative_error recovered injected = Float.abs (recovered -. injected) /. injected

let test_rb_one_qubit_recovers () =
  List.iter
    (fun machine ->
      let calibration = Machine.calibration machine ~day:0 in
      let noise = Sim.Noise.create machine calibration in
      let injected = Sim.Noise.gate_error_prob noise (Ir.Gate.One (Ir.Gate.X, 0)) in
      let result = Rb.one_qubit machine ~day:0 ~qubit:0 in
      let err = relative_error result.Rb.error_per_gate injected in
      if err > 0.15 then
        Alcotest.failf "%s: recovered %.5f vs injected %.5f" machine.Machine.name
          result.Rb.error_per_gate injected;
      Alcotest.(check bool)
        (machine.Machine.name ^ " good fit")
        true
        (result.Rb.r_squared > 0.98))
    [ Machines.ibmq14; Machines.agave; Machines.umdti ]

let test_rb_two_qubit_recovers () =
  List.iter
    (fun (machine, a, b) ->
      let calibration = Machine.calibration machine ~day:0 in
      let noise = Sim.Noise.create machine calibration in
      let injected = Sim.Noise.gate_error_prob noise (Ir.Gate.Two (Ir.Gate.Cnot, a, b)) in
      let result = Rb.two_qubit machine ~day:0 ~a ~b in
      let err = relative_error result.Rb.error_per_gate injected in
      if err > 0.15 then
        Alcotest.failf "%s %d-%d: recovered %.5f vs injected %.5f"
          machine.Machine.name a b result.Rb.error_per_gate injected)
    [ (Machines.ibmq14, 1, 0); (Machines.agave, 0, 1); (Machines.umdti, 0, 3) ]

let test_rb_distinguishes_good_and_bad_qubits () =
  (* Benchmarking different qubits of IBMQ14 must reproduce their spatial
     ordering from the calibration. *)
  let machine = Machines.ibmq14 in
  let calibration = Machine.calibration machine ~day:0 in
  let noise = Sim.Noise.create machine calibration in
  let injected q = Sim.Noise.gate_error_prob noise (Ir.Gate.One (Ir.Gate.X, q)) in
  let recovered q = (Rb.one_qubit machine ~day:0 ~qubit:q).Rb.error_per_gate in
  let qubits = [ 0; 3; 7; 11 ] in
  let inj = List.map injected qubits and rec_ = List.map recovered qubits in
  let order l = List.map fst (List.sort (fun (_, a) (_, b) -> Float.compare a b)
                                (List.mapi (fun i x -> (i, x)) l)) in
  Alcotest.(check (list int)) "same quality ordering" (order inj) (order rec_)

let test_irb_recovers_gate_error () =
  List.iter
    (fun (machine, a, b) ->
      let calibration = Machine.calibration machine ~day:0 in
      let noise = Sim.Noise.create machine calibration in
      let injected =
        Sim.Noise.gate_error_prob noise (Ir.Gate.Two (Ir.Gate.Cnot, a, b))
      in
      let irb = Rb.interleaved_two_qubit machine ~day:0 ~a ~b in
      let err = relative_error irb.Rb.gate_error injected in
      (* IRB extraction is first-order; allow 30% relative slack. *)
      if err > 0.3 then
        Alcotest.failf "%s: irb %.5f vs injected %.5f" machine.Machine.name
          irb.Rb.gate_error injected;
      (* The interleaved curve must decay at least as fast as the
         reference. *)
      Alcotest.(check bool) "interleaved decays faster" true
        (irb.Rb.interleaved.Rb.decay <= irb.Rb.reference.Rb.decay +. 1e-9))
    [ (Machines.ibmq14, 1, 0); (Machines.umdti, 0, 1) ]

let test_rb_decay_monotone_in_error () =
  (* Noisier machines decay faster. *)
  let decay machine = (Rb.two_qubit machine ~day:0 ~a:0 ~b:1).Rb.decay in
  Alcotest.(check bool) "agave decays faster than umdti" true
    (decay Machines.agave < decay Machines.umdti)

let test_readout_recovers () =
  List.iter
    (fun machine ->
      let calibration = Machine.calibration machine ~day:0 in
      let injected = Device.Calibration.readout_err calibration 0 in
      let r = Rb.readout machine ~day:0 ~qubit:0 in
      (* The |0> side measures the flip probability exactly; the |1> side
         adds preparation error, so the average sits slightly above. *)
      Alcotest.(check (float 1e-12)) "p(1|0)" injected r.Rb.p_read1_given0;
      Alcotest.(check bool) "average above injected" true (r.Rb.error >= injected -. 1e-12);
      if (r.Rb.error -. injected) /. injected > 0.5 then
        Alcotest.failf "%s: readout estimate %.4f too far above %.4f"
          machine.Machine.name r.Rb.error injected)
    [ Machines.ibmq5; Machines.agave; Machines.umdti ]

let () =
  Alcotest.run "characterize"
    [
      ( "fit",
        [
          Alcotest.test_case "linear" `Quick test_fit_linear_exact;
          Alcotest.test_case "linear validation" `Quick test_fit_linear_validation;
          Alcotest.test_case "exponential" `Quick test_fit_exponential_exact;
          Alcotest.test_case "nonpositive dropped" `Quick
            test_fit_exponential_drops_nonpositive;
          Alcotest.test_case "r squared" `Quick test_fit_r_squared;
        ] );
      ( "benchmarking",
        [
          Alcotest.test_case "1q recovery" `Quick test_rb_one_qubit_recovers;
          Alcotest.test_case "2q recovery" `Quick test_rb_two_qubit_recovers;
          Alcotest.test_case "spatial ordering" `Quick
            test_rb_distinguishes_good_and_bad_qubits;
          Alcotest.test_case "noise ordering" `Quick test_rb_decay_monotone_in_error;
          Alcotest.test_case "interleaved rb" `Quick test_irb_recovers_gate_error;
          Alcotest.test_case "readout" `Quick test_readout_recovers;
        ] );
    ]
