(* Tests for the gate IR: gate algebra, circuits, DAG layering and — most
   importantly — exact unitary equivalence of every decomposition. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Dag = Ir.Dag
module Dec = Ir.Decompose
module Mat = Ir.Matrices
module Spec = Ir.Spec
module M = Mathkit.Matrix
module Q = Mathkit.Quaternion

let circuit n gates = Circuit.create n gates

let check_equiv name n reference gates =
  let u_ref = Mat.circuit_unitary (circuit n reference) in
  let u = Mat.circuit_unitary (circuit n gates) in
  Alcotest.(check bool) name true (M.proportional ~eps:1e-9 u_ref u)

(* ---------- Gate ---------- *)

let test_gate_qubits () =
  Alcotest.(check (list int)) "one" [ 3 ] (G.qubits (G.One (G.H, 3)));
  Alcotest.(check (list int)) "two" [ 1; 2 ] (G.qubits (G.Two (G.Cnot, 1, 2)));
  Alcotest.(check (list int)) "ccx" [ 0; 1; 2 ] (G.qubits (G.Ccx (0, 1, 2)));
  Alcotest.(check int) "arity" 3 (G.arity (G.Cswap (0, 1, 2)))

let test_gate_validity () =
  Alcotest.(check bool) "in range" true (G.valid_on 3 (G.Two (G.Cz, 0, 2)));
  Alcotest.(check bool) "out of range" false (G.valid_on 2 (G.Two (G.Cz, 0, 2)));
  Alcotest.(check bool) "duplicate operand" false (G.valid_on 4 (G.Two (G.Cnot, 1, 1)))

let test_gate_map_qubits () =
  let g = G.map_qubits (fun q -> q + 10) (G.Two (G.Cnot, 0, 1)) in
  Alcotest.(check (list int)) "renamed" [ 10; 11 ] (G.qubits g);
  Alcotest.check_raises "collapse rejected"
    (Invalid_argument "Gate.map_qubits: renaming collapsed operands") (fun () ->
      ignore (G.map_qubits (fun _ -> 0) (G.Two (G.Cnot, 0, 1))))

let test_gate_equal () =
  Alcotest.(check bool) "same rotation" true
    (G.equal (G.One (G.Rz 0.5, 0)) (G.One (G.Rz 0.5, 0)));
  Alcotest.(check bool) "different angle" false
    (G.equal (G.One (G.Rz 0.5, 0)) (G.One (G.Rz 0.6, 0)));
  Alcotest.(check bool) "different kind" false
    (G.equal (G.One (G.X, 0)) (G.One (G.Y, 0)))

let test_gate_quaternions_match_matrices () =
  (* For every named 1Q gate, the quaternion view and the matrix view must
     agree up to global phase. *)
  let cases : G.one_q list =
    [
      G.X; G.Y; G.Z; G.H; G.S; G.Sdg; G.T; G.Tdg;
      G.Rx 0.3; G.Ry 1.2; G.Rz (-0.7); G.Rxy (0.9, 0.4);
      G.U1 0.8; G.U2 (0.3, 1.1); G.U3 (0.5, 0.2, -0.9);
    ]
  in
  List.iter
    (fun k ->
      let via_quat = Q.to_matrix (G.one_q_to_quaternion k) in
      let direct = Mat.one_q k in
      if not (M.proportional ~eps:1e-9 via_quat direct) then
        Alcotest.failf "quaternion/matrix mismatch for %s"
          (G.to_string (G.One (k, 0))))
    cases

(* ---------- Circuit ---------- *)

let bv4_like =
  circuit 4
    [
      G.One (G.X, 3); G.One (G.H, 0); G.One (G.H, 1); G.One (G.H, 2);
      G.One (G.H, 3); G.Two (G.Cnot, 1, 3); G.One (G.H, 0); G.One (G.H, 1);
      G.One (G.H, 2); G.Measure 0; G.Measure 1; G.Measure 2;
    ]

let test_circuit_counts () =
  Alcotest.(check int) "gates" 12 (Circuit.gate_count bv4_like);
  Alcotest.(check int) "1q" 8 (Circuit.one_q_count bv4_like);
  Alcotest.(check int) "2q" 1 (Circuit.two_q_count bv4_like);
  Alcotest.(check int) "measures" 3 (Circuit.measure_count bv4_like)

let test_circuit_used_and_measured () =
  Alcotest.(check (list int)) "used" [ 0; 1; 2; 3 ] (Circuit.used_qubits bv4_like);
  Alcotest.(check (list int)) "measured" [ 0; 1; 2 ] (Circuit.measured_qubits bv4_like)

let test_circuit_body () =
  Alcotest.(check int) "body drops measures" 0
    (Circuit.measure_count (Circuit.body bv4_like))

let test_circuit_create_rejects_bad_gates () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (circuit 2 [ G.Two (G.Cnot, 0, 5) ]);
       false
     with Invalid_argument _ -> true)

let test_circuit_concat_append () =
  let a = circuit 2 [ G.One (G.H, 0) ] in
  let b = circuit 2 [ G.Two (G.Cnot, 0, 1) ] in
  Alcotest.(check int) "concat" 2 (Circuit.gate_count (Circuit.concat a b));
  Alcotest.(check int) "append" 2 (Circuit.gate_count (Circuit.append a [ G.One (G.X, 1) ]))

let test_circuit_compact () =
  let c = circuit 10 [ G.Two (G.Cnot, 3, 7); G.Measure 3; G.Measure 7 ] in
  let compacted, mapping = Circuit.compact c in
  Alcotest.(check int) "two qubits left" 2 compacted.Circuit.n_qubits;
  Alcotest.(check (list (pair int int))) "mapping" [ (3, 0); (7, 1) ] mapping;
  Alcotest.(check (list int)) "renamed" [ 0; 1 ]
    (Circuit.used_qubits compacted)

let test_circuit_map_qubits () =
  let c = circuit 2 [ G.Two (G.Cnot, 0, 1) ] in
  let mapped = Circuit.map_qubits ~n_qubits:5 (fun q -> q + 3) c in
  Alcotest.(check (list int)) "used" [ 3; 4 ] (Circuit.used_qubits mapped)

(* ---------- Dag ---------- *)

let test_dag_layers () =
  let d = Dag.of_circuit bv4_like in
  (* Layer 0: X q3 and the three H on q0..q2 are independent. *)
  let layers = Dag.layers d in
  Alcotest.(check int) "layer0 width" 4 (List.length (List.hd layers));
  Alcotest.(check int) "depth" (Dag.depth d) (List.length layers)

let test_dag_chain_depth () =
  let chain = circuit 1 [ G.One (G.H, 0); G.One (G.X, 0); G.One (G.H, 0) ] in
  Alcotest.(check int) "serial depth" 3 (Dag.depth (Dag.of_circuit chain))

let test_dag_parallel_depth () =
  let par = circuit 3 [ G.One (G.H, 0); G.One (G.H, 1); G.One (G.H, 2) ] in
  Alcotest.(check int) "parallel depth" 1 (Dag.depth (Dag.of_circuit par));
  Alcotest.(check (float 1e-9)) "parallelism" 3.0 (Dag.parallelism (Dag.of_circuit par))

let test_dag_two_q_depth () =
  let c =
    circuit 3
      [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 2); G.One (G.X, 0) ]
  in
  Alcotest.(check int) "2q layers" 2 (Dag.two_q_depth (Dag.of_circuit c))

let test_dag_predecessors () =
  let c = circuit 2 [ G.One (G.H, 0); G.One (G.H, 1); G.Two (G.Cnot, 0, 1) ] in
  let d = Dag.of_circuit c in
  Alcotest.(check (list int)) "cnot depends on both" [ 0; 1 ] (Dag.predecessors d 2);
  Alcotest.(check (list int)) "first gate free" [] (Dag.predecessors d 0)

let test_dag_critical_path () =
  let c =
    circuit 3
      [ G.One (G.H, 0); G.One (G.H, 1); G.Two (G.Cnot, 0, 1); G.One (G.X, 2);
        G.One (G.T, 1) ]
  in
  let d = Dag.of_circuit c in
  let path = Dag.critical_path d in
  Alcotest.(check int) "length = depth" (Dag.depth d) (List.length path);
  (* Consecutive path elements must be dependent (share a qubit). *)
  let rec check = function
    | i :: (j :: _ as rest) ->
      let qi = G.qubits (List.nth c.Circuit.gates i) in
      let qj = G.qubits (List.nth c.Circuit.gates j) in
      if not (List.exists (fun q -> List.mem q qj) qi) then
        Alcotest.fail "path elements independent";
      check rest
    | [ _ ] | [] -> ()
  in
  check path;
  Alcotest.(check (list int)) "empty circuit" []
    (Dag.critical_path (Dag.of_circuit (Circuit.empty 1)))

let test_dag_empty () =
  let d = Dag.of_circuit (Circuit.empty 2) in
  Alcotest.(check int) "no layers" 0 (Dag.depth d);
  Alcotest.(check (list (list string))) "layers empty" []
    (List.map (List.map G.to_string) (Dag.layers d))

(* ---------- Decompose: exact unitary equivalence ---------- *)

let test_decompose_swap () =
  check_equiv "swap = 3 cnot" 2 [ G.Two (G.Swap, 0, 1) ] (Dec.swap 0 1)

let test_decompose_cz () =
  check_equiv "cz = h cnot h" 2 [ G.Two (G.Cz, 0, 1) ] (Dec.cz 0 1)

let test_decompose_ccx () =
  check_equiv "toffoli" 3 [ G.Ccx (0, 1, 2) ] (Dec.ccx 0 1 2)

let test_decompose_cswap () =
  check_equiv "fredkin" 3 [ G.Cswap (0, 1, 2) ] (Dec.cswap 0 1 2)

let test_decompose_peres () =
  (* Peres = Toffoli then CNOT a,b. *)
  check_equiv "peres" 3
    [ G.Ccx (0, 1, 2); G.Two (G.Cnot, 0, 1) ]
    (Dec.peres 0 1 2)

let test_decompose_or () =
  (* OR truth table via unitary action on basis states: check the
     decomposition against the direct permutation built from De Morgan. *)
  check_equiv "or" 3
    ([ G.One (G.X, 0); G.One (G.X, 1) ]
    @ [ G.Ccx (0, 1, 2) ]
    @ [ G.One (G.X, 0); G.One (G.X, 1); G.One (G.X, 2) ])
    (Dec.logical_or 0 1 2)

let test_decompose_flatten_only_cnot () =
  let c =
    circuit 3
      [
        G.Two (G.Cz, 0, 1); G.Two (G.Swap, 1, 2); G.Ccx (0, 1, 2);
        G.Cswap (2, 0, 1); G.Two (G.Xx (Float.pi /. 4.0), 0, 1); G.Measure 0;
      ]
  in
  let flat = Dec.flatten c in
  List.iter
    (fun g ->
      match (g : G.t) with
      | G.One _ | G.Measure _ | G.Two (G.Cnot, _, _) -> ()
      | other -> Alcotest.failf "non-canonical gate survived: %s" (G.to_string other))
    flat.Circuit.gates

let test_decompose_flatten_preserves_unitary () =
  let c =
    circuit 3
      [ G.Two (G.Cz, 0, 1); G.Ccx (0, 1, 2); G.Two (G.Swap, 1, 2); G.Cswap (0, 1, 2) ]
  in
  let flat = Dec.flatten c in
  Alcotest.(check bool) "flatten equivalent" true
    (M.proportional ~eps:1e-8 (Mat.circuit_unitary c) (Mat.circuit_unitary flat))

let test_decompose_xx () =
  check_equiv "xx via cnot" 2
    [ G.Two (G.Xx 0.61, 0, 1) ]
    (Dec.flatten (circuit 2 [ G.Two (G.Xx 0.61, 0, 1) ])).Circuit.gates

(* ---------- Matrices ---------- *)

let test_matrices_all_unitary () =
  let one_qs : G.one_q list =
    [ G.X; G.Y; G.Z; G.H; G.S; G.Sdg; G.T; G.Tdg; G.Rx 0.4; G.Ry 0.4; G.Rz 0.4;
      G.Rxy (0.4, 0.9); G.U1 0.4; G.U2 (0.1, 0.2); G.U3 (0.1, 0.2, 0.3) ]
  in
  List.iter
    (fun k ->
      if not (M.is_unitary ~eps:1e-9 (Mat.one_q k)) then
        Alcotest.failf "non-unitary 1q: %s" (G.to_string (G.One (k, 0))))
    one_qs;
  List.iter
    (fun k ->
      if not (M.is_unitary ~eps:1e-9 (Mat.two_q k)) then Alcotest.fail "non-unitary 2q")
    [ G.Cnot; G.Cz; G.Xx 0.7; G.Swap ];
  Alcotest.(check bool) "ccx unitary" true (M.is_unitary Mat.ccx);
  Alcotest.(check bool) "cswap unitary" true (M.is_unitary Mat.cswap)

let test_matrices_cnot_action () =
  (* CNOT with control=first operand flips target iff control set. *)
  let u = Mat.two_q G.Cnot in
  Alcotest.(check (float 1e-12)) "10 -> 11" 1.0 (M.get u 3 2).re;
  Alcotest.(check (float 1e-12)) "00 -> 00" 1.0 (M.get u 0 0).re

let test_matrices_circuit_bell () =
  (* H then CNOT makes a Bell state: columns of the unitary applied to |00>
     give amplitude 1/sqrt2 on |00> and |11>. *)
  let u =
    Mat.circuit_unitary (circuit 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ])
  in
  let a00 = M.get u 0 0 and a11 = M.get u 3 0 in
  Alcotest.(check (float 1e-9)) "a00" (1.0 /. sqrt 2.0) a00.re;
  Alcotest.(check (float 1e-9)) "a11" (1.0 /. sqrt 2.0) a11.re

let test_matrices_rejects_measure () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mat.circuit_unitary (circuit 1 [ G.Measure 0 ]));
       false
     with Invalid_argument _ -> true)

(* ---------- Spec ---------- *)

let test_spec_success_rate () =
  let spec = Spec.deterministic [ 0; 1 ] "01" in
  let counts = [ ("01", 900); ("11", 100) ] in
  Alcotest.(check (float 1e-9)) "90%" 0.9 (Spec.success_rate spec counts);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Spec.success_rate spec [])

let test_spec_dominates () =
  let spec = Spec.deterministic [ 0 ] "1" in
  Alcotest.(check bool) "dominates" true (Spec.dominates spec [ ("1", 60); ("0", 40) ]);
  Alcotest.(check bool) "fails" false (Spec.dominates spec [ ("1", 40); ("0", 60) ])

let test_spec_distribution () =
  let spec = Spec.distribution [ 0 ] [ ("0", 0.5); ("1", 0.5) ] in
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (Spec.success_rate spec [ ("0", 500); ("1", 500) ]);
  Alcotest.(check (float 1e-9)) "skewed" 0.5
    (Spec.success_rate spec [ ("0", 1000) ])

let test_spec_validation () =
  Alcotest.(check bool) "bad length" true
    (try ignore (Spec.deterministic [ 0; 1 ] "0"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad char" true
    (try ignore (Spec.deterministic [ 0 ] "x"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "over 1" true
    (try ignore (Spec.distribution [ 0 ] [ ("0", 0.9); ("1", 0.9) ]); false
     with Invalid_argument _ -> true)

let controlled u =
  (* Block diag(I, U) in the (control, target) basis. *)
  let m = M.create 4 4 in
  M.set m 0 0 Mathkit.Cplx.one;
  M.set m 1 1 Mathkit.Cplx.one;
  for r = 0 to 1 do
    for c = 0 to 1 do
      M.set m (2 + r) (2 + c) (M.get u r c)
    done
  done;
  m

let check_controlled name reference gates =
  let u = Mat.circuit_unitary (circuit 2 gates) in
  Alcotest.(check bool) name true (M.proportional ~eps:1e-9 (controlled reference) u)

let test_decompose_iswap () =
  check_equiv "iswap via cnot" 2 [ G.Two (G.Iswap, 0, 1) ] (Dec.iswap 0 1);
  check_equiv "swap via iswap" 2 [ G.Two (G.Swap, 0, 1) ] (Dec.swap_via_iswap 0 1);
  (* iSWAP costs two interactions in the parametric form vs three CNOTs. *)
  Alcotest.(check int) "two 2q gates" 2
    (Circuit.two_q_count (circuit 2 (Dec.swap_via_iswap 0 1)))

let test_decompose_controlled_gates () =
  check_controlled "cu1" (Mat.one_q (G.U1 0.7)) (Dec.cu1 0.7 0 1);
  check_controlled "crz" (Mat.one_q (G.Rz 0.9)) (Dec.crz 0.9 0 1);
  check_controlled "cry" (Mat.one_q (G.Ry 1.3)) (Dec.cry 1.3 0 1);
  check_controlled "crx" (Mat.one_q (G.Rx 0.5)) (Dec.crx 0.5 0 1);
  check_controlled "ch" (Mat.one_q G.H) (Dec.ch 0 1);
  check_controlled "cy" (Mat.one_q G.Y) (Dec.cy 0 1);
  check_controlled "cu3" (Mat.one_q (G.U3 (0.7, 0.3, 1.1))) (Dec.cu3 0.7 0.3 1.1 0 1)

(* ---------- Stats ---------- *)

module Stats = Ir.Stats

let test_stats_counts () =
  let st = Stats.of_circuit bv4_like in
  Alcotest.(check int) "qubits" 4 st.Stats.n_qubits;
  Alcotest.(check int) "total" 12 st.Stats.total_gates;
  Alcotest.(check int) "1q" 8 st.Stats.one_q;
  Alcotest.(check int) "2q" 1 st.Stats.two_q;
  Alcotest.(check int) "multi" 0 st.Stats.multi_q;
  Alcotest.(check int) "measures" 3 st.Stats.measures;
  Alcotest.(check int) "depth matches dag" (Dag.depth (Dag.of_circuit bv4_like))
    st.Stats.depth

let test_stats_histogram () =
  let st = Stats.of_circuit bv4_like in
  Alcotest.(check (option int)) "H count" (Some 7) (List.assoc_opt "H" st.Stats.histogram);
  Alcotest.(check (option int)) "X count" (Some 1) (List.assoc_opt "X" st.Stats.histogram);
  Alcotest.(check (option int)) "CNOT count" (Some 1)
    (List.assoc_opt "CNOT" st.Stats.histogram);
  Alcotest.(check (option int)) "measures" (Some 3)
    (List.assoc_opt "MEASURE" st.Stats.histogram);
  (* Rotations are keyed by family, not angle. *)
  let c = circuit 1 [ G.One (G.Rz 0.1, 0); G.One (G.Rz 0.2, 0) ] in
  Alcotest.(check (option int)) "Rz merged" (Some 2)
    (List.assoc_opt "Rz" (Stats.of_circuit c).Stats.histogram)

let test_stats_interaction_degree () =
  let c =
    circuit 4 [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 0, 2); G.Two (G.Cnot, 0, 1) ]
  in
  Alcotest.(check (array int)) "degrees" [| 2; 1; 1; 0 |] (Stats.interaction_degree c);
  let t = circuit 3 [ G.Ccx (0, 1, 2) ] in
  Alcotest.(check (array int)) "toffoli clique" [| 2; 2; 2 |]
    (Stats.interaction_degree t)

(* ---------- qcheck ---------- *)

let gate_gen n =
  QCheck.Gen.(
    oneof
      [
        map2 (fun q theta -> G.One (G.Rz theta, q)) (int_range 0 (n - 1)) (float_range 0.0 6.28);
        map2 (fun q theta -> G.One (G.Rx theta, q)) (int_range 0 (n - 1)) (float_range 0.0 6.28);
        map (fun q -> G.One (G.H, q)) (int_range 0 (n - 1));
        map2
          (fun a d -> G.Two (G.Cnot, a, (a + 1 + d) mod n))
          (int_range 0 (n - 1)) (int_range 0 (n - 2));
      ])

let circuit_gen =
  QCheck.Gen.(
    let n = 4 in
    map (fun gates -> circuit n gates) (list_size (int_range 0 20) (gate_gen n)))

let circuit_arb = QCheck.make circuit_gen

let prop_flatten_unitary =
  QCheck.Test.make ~name:"flatten preserves unitary" ~count:100 circuit_arb
    (fun c ->
      M.proportional ~eps:1e-7 (Mat.circuit_unitary c)
        (Mat.circuit_unitary (Dec.flatten c)))

let prop_dag_depth_bounds =
  QCheck.Test.make ~name:"1 <= depth <= gate count (nonempty)" ~count:200
    circuit_arb (fun c ->
      let d = Dag.depth (Dag.of_circuit c) in
      if Circuit.gate_count c = 0 then d = 0
      else d >= 1 && d <= Circuit.gate_count c)

let prop_layers_disjoint =
  QCheck.Test.make ~name:"layers act on disjoint qubits" ~count:200 circuit_arb
    (fun c ->
      List.for_all
        (fun layer ->
          let qs = List.concat_map G.qubits layer in
          List.length qs = List.length (List.sort_uniq compare qs))
        (Dag.layers (Dag.of_circuit c)))

let prop_circuit_unitary_is_unitary =
  QCheck.Test.make ~name:"circuit unitary is unitary" ~count:50 circuit_arb
    (fun c -> M.is_unitary ~eps:1e-7 (Mat.circuit_unitary c))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_flatten_unitary;
      prop_dag_depth_bounds;
      prop_layers_disjoint;
      prop_circuit_unitary_is_unitary;
    ]

let () =
  Alcotest.run "ir"
    [
      ( "gate",
        [
          Alcotest.test_case "qubits/arity" `Quick test_gate_qubits;
          Alcotest.test_case "validity" `Quick test_gate_validity;
          Alcotest.test_case "map_qubits" `Quick test_gate_map_qubits;
          Alcotest.test_case "equality" `Quick test_gate_equal;
          Alcotest.test_case "quaternion vs matrix" `Quick
            test_gate_quaternions_match_matrices;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "counts" `Quick test_circuit_counts;
          Alcotest.test_case "used/measured" `Quick test_circuit_used_and_measured;
          Alcotest.test_case "body" `Quick test_circuit_body;
          Alcotest.test_case "validation" `Quick test_circuit_create_rejects_bad_gates;
          Alcotest.test_case "concat/append" `Quick test_circuit_concat_append;
          Alcotest.test_case "compact" `Quick test_circuit_compact;
          Alcotest.test_case "map_qubits" `Quick test_circuit_map_qubits;
        ] );
      ( "dag",
        [
          Alcotest.test_case "layers" `Quick test_dag_layers;
          Alcotest.test_case "chain depth" `Quick test_dag_chain_depth;
          Alcotest.test_case "parallel depth" `Quick test_dag_parallel_depth;
          Alcotest.test_case "2q depth" `Quick test_dag_two_q_depth;
          Alcotest.test_case "predecessors" `Quick test_dag_predecessors;
          Alcotest.test_case "empty circuit" `Quick test_dag_empty;
          Alcotest.test_case "critical path" `Quick test_dag_critical_path;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "swap" `Quick test_decompose_swap;
          Alcotest.test_case "cz" `Quick test_decompose_cz;
          Alcotest.test_case "toffoli" `Quick test_decompose_ccx;
          Alcotest.test_case "fredkin" `Quick test_decompose_cswap;
          Alcotest.test_case "peres" `Quick test_decompose_peres;
          Alcotest.test_case "or" `Quick test_decompose_or;
          Alcotest.test_case "xx" `Quick test_decompose_xx;
          Alcotest.test_case "flatten canonical" `Quick test_decompose_flatten_only_cnot;
          Alcotest.test_case "flatten equivalence" `Quick
            test_decompose_flatten_preserves_unitary;
          Alcotest.test_case "controlled gates" `Quick test_decompose_controlled_gates;
          Alcotest.test_case "iswap" `Quick test_decompose_iswap;
        ] );
      ( "matrices",
        [
          Alcotest.test_case "all unitary" `Quick test_matrices_all_unitary;
          Alcotest.test_case "cnot action" `Quick test_matrices_cnot_action;
          Alcotest.test_case "bell circuit" `Quick test_matrices_circuit_bell;
          Alcotest.test_case "rejects measure" `Quick test_matrices_rejects_measure;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counts" `Quick test_stats_counts;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "interaction degree" `Quick test_stats_interaction_degree;
        ] );
      ( "spec",
        [
          Alcotest.test_case "success rate" `Quick test_spec_success_rate;
          Alcotest.test_case "dominates" `Quick test_spec_dominates;
          Alcotest.test_case "distribution" `Quick test_spec_distribution;
          Alcotest.test_case "validation" `Quick test_spec_validation;
        ] );
      ("properties", qcheck_cases);
    ]
