(* Front-end tests: lexer, parser and lowering of the Scaffold-like
   language, including loop unrolling, expression evaluation and error
   reporting. *)

module G = Ir.Gate
module Circuit = Ir.Circuit

let compile = Scaffold.Lower.compile_string

let gates src = (compile src).Scaffold.Lower.circuit.Circuit.gates

(* ---------- Lexer ---------- *)

module Token = Scaffold.Token
module Ast = Scaffold.Ast

let kinds src = List.map (fun t -> t.Token.kind) (Scaffold.Lexer.tokenize src)

let test_lexer_basic () =
  (* qbit, ident, '[', int, ']', ';', eof *)
  Alcotest.(check int) "token count" 7 (List.length (kinds "qbit q[4];"))

let test_lexer_tokens () =
  match kinds "module main() { }" with
  | [ Kw_module; Ident "main"; Lparen; Rparen; Lbrace; Rbrace; Eof ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_numbers () =
  (match kinds "42 3.25" with
  | [ Int 42; Float 3.25; Eof ] -> ()
  | _ -> Alcotest.fail "numbers");
  match kinds "0..4" with
  | [ Int 0; Dotdot; Int 4; Eof ] -> ()
  | _ -> Alcotest.fail "range"

let test_lexer_comments () =
  match kinds "X // comment\n/* block\ncomment */ Y" with
  | [ Ident "X"; Ident "Y"; Eof ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try ignore (Scaffold.Lexer.tokenize "qbit @"); false
     with Scaffold.Lexer.Error (_, 1, _) -> true);
  Alcotest.(check bool) "unterminated comment" true
    (try ignore (Scaffold.Lexer.tokenize "/* never ends"); false
     with Scaffold.Lexer.Error _ -> true)

let test_lexer_positions () =
  let toks = Scaffold.Lexer.tokenize "X\n  Y" in
  match toks with
  | [ { Token.kind = Ident "X"; line = 1; col = 1 };
      { Token.kind = Ident "Y"; line = 2; col = 3 }; _ ] -> ()
  | _ -> Alcotest.fail "positions wrong"

(* ---------- Parser / Lower ---------- *)

let test_basic_program () =
  let p = compile "module main() { qbit q[2]; H(q[0]); CNOT(q[0], q[1]); measure(q); }" in
  Alcotest.(check int) "qubits" 2 p.Scaffold.Lower.circuit.Circuit.n_qubits;
  Alcotest.(check int) "gates" 4 (Circuit.gate_count p.Scaffold.Lower.circuit);
  Alcotest.(check (list int)) "measured order" [ 0; 1 ] p.Scaffold.Lower.measured

let test_loop_unrolling () =
  let p = compile "module main() { qbit q[4]; for i in 0..4 { H(q[i]); } }" in
  Alcotest.(check int) "4 hadamards" 4 (Circuit.one_q_count p.Scaffold.Lower.circuit)

let test_nested_loops () =
  let src =
    "module main() { qbit q[6]; for i in 0..2 { for j in 0..3 { X(q[3*i + j]); } } }"
  in
  let p = compile src in
  Alcotest.(check int) "6 X gates" 6 (Circuit.one_q_count p.Scaffold.Lower.circuit);
  Alcotest.(check (list int)) "every qubit touched" [ 0; 1; 2; 3; 4; 5 ]
    (Circuit.used_qubits p.Scaffold.Lower.circuit)

let test_angle_expressions () =
  match gates "module main() { qbit q[1]; Rz(pi/2, q[0]); Rx(-pi, q[0]); }" with
  | [ G.One (G.Rz theta, 0); G.One (G.Rx phi, 0) ] ->
    Alcotest.(check (float 1e-12)) "pi/2" (Float.pi /. 2.0) theta;
    Alcotest.(check (float 1e-12)) "-pi" (-.Float.pi) phi
  | _ -> Alcotest.fail "wrong gates"

let test_multi_register () =
  let p =
    compile
      "module main() { qbit a[2]; qbit b[2]; CNOT(a[0], b[0]); CNOT(a[1], b[1]); }"
  in
  (match p.Scaffold.Lower.circuit.Circuit.gates with
  | [ G.Two (G.Cnot, 0, 2); G.Two (G.Cnot, 1, 3) ] -> ()
  | _ -> Alcotest.fail "registers not laid out contiguously");
  Alcotest.(check (list (pair string int))) "names"
    [ ("a[0]", 0); ("a[1]", 1); ("b[0]", 2); ("b[1]", 3) ]
    p.Scaffold.Lower.qubit_names

let test_gate_aliases () =
  match
    gates
      "module main() { qbit q[3]; NOT(q[0]); CX(q[0], q[1]); CCNOT(q[0], q[1], q[2]); }"
  with
  | [ G.One (G.X, 0); G.Two (G.Cnot, 0, 1); G.Ccx (0, 1, 2) ] -> ()
  | _ -> Alcotest.fail "aliases not resolved"

let test_multi_qubit_gates () =
  match
    gates
      "module main() { qbit q[3]; Toffoli(q[0], q[1], q[2]); Fredkin(q[2], q[0], q[1]); \
       SWAP(q[0], q[2]); XX(pi/4, q[0], q[1]); }"
  with
  | [ G.Ccx (0, 1, 2); G.Cswap (2, 0, 1); G.Two (G.Swap, 0, 2); G.Two (G.Xx chi, 0, 1) ]
    ->
    Alcotest.(check (float 1e-12)) "chi" (Float.pi /. 4.0) chi
  | _ -> Alcotest.fail "multi-qubit gates"

let test_single_qubit_register () =
  match gates "module main() { qbit a; qbit b; CNOT(a, b); measure(a); }" with
  | [ G.Two (G.Cnot, 0, 1); G.Measure 0 ] -> ()
  | _ -> Alcotest.fail "scalar registers"

let test_measure_order_preserved () =
  let p =
    compile "module main() { qbit q[3]; measure(q[2]); measure(q[0]); measure(q[1]); }"
  in
  Alcotest.(check (list int)) "order" [ 2; 0; 1 ] p.Scaffold.Lower.measured

let expect_error src fragment =
  match compile src with
  | exception Scaffold.Lower.Error (msg, _) ->
    if not (String.length msg >= String.length fragment) then
      Alcotest.failf "error %S" msg;
    let contains =
      let rec scan i =
        if i + String.length fragment > String.length msg then false
        else String.sub msg i (String.length fragment) = fragment || scan (i + 1)
      in
      scan 0
    in
    if not contains then Alcotest.failf "error %S does not mention %S" msg fragment
  | exception Scaffold.Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected failure for %S" src

let test_error_unknown_register () =
  expect_error "module main() { qbit q[2]; H(r[0]); }" "unknown register"

let test_error_out_of_bounds () =
  expect_error "module main() { qbit q[2]; H(q[5]); }" "out of bounds"

let test_error_unknown_gate () =
  expect_error "module main() { qbit q[1]; FROB(q[0]); }" "unknown gate"

let test_error_duplicate_register () =
  expect_error "module main() { qbit q[1]; qbit q[2]; }" "already declared"

let test_error_repeated_operand () =
  expect_error "module main() { qbit q[2]; CNOT(q[0], q[0]); }" "repeated"

let test_error_unknown_variable () =
  expect_error "module main() { qbit q[2]; H(q[i]); }" "unknown variable"

let test_error_double_measure () =
  expect_error "module main() { qbit q[1]; measure(q[0]); measure(q[0]); }"
    "measured twice"

let test_error_arity () =
  expect_error "module main() { qbit q[2]; H(q[0], q[1]); }" "expects 1 qubit"

let test_parse_error_position () =
  match compile "module main() {\n qbit q[2]\n H(q[0]); }" with
  | exception Scaffold.Parser.Error (_, line, _) ->
    Alcotest.(check int) "line of missing semicolon" 3 line
  | _ -> Alcotest.fail "expected parse error"

(* ---------- Modules (subroutines) ---------- *)

let test_module_call () =
  let src =
    "module bell(qbit a, qbit b) { H(a); CNOT(a, b); }      module main() { qbit q[2]; bell(q[0], q[1]); measure(q); }"
  in
  match gates src with
  | [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.Measure 0; G.Measure 1 ] -> ()
  | _ -> Alcotest.fail "module body not inlined"

let test_module_call_in_loop () =
  let src =
    "module flip(qbit a) { X(a); }      module main() { qbit q[3]; for i in 0..3 { flip(q[i]); } }"
  in
  let p = compile src in
  Alcotest.(check int) "three inlined X" 3 (Circuit.one_q_count p.Scaffold.Lower.circuit)

let test_module_nested_calls () =
  let src =
    "module inner(qbit a) { T(a); }      module outer(qbit a, qbit b) { inner(a); inner(b); CNOT(a, b); }      module main() { qbit q[2]; outer(q[0], q[1]); }"
  in
  let p = compile src in
  Alcotest.(check int) "2 T + 1 CNOT" 3 (Circuit.gate_count p.Scaffold.Lower.circuit)

let test_module_local_ancilla () =
  (* Local declarations allocate fresh qubits per call. *)
  let src =
    "module probe(qbit a) { qbit anc; CNOT(a, anc); }      module main() { qbit q[2]; probe(q[0]); probe(q[1]); }"
  in
  let p = compile src in
  Alcotest.(check int) "2 + 2 ancillas" 4 p.Scaffold.Lower.circuit.Circuit.n_qubits;
  (match p.Scaffold.Lower.circuit.Circuit.gates with
  | [ G.Two (G.Cnot, 0, 2); G.Two (G.Cnot, 1, 3) ] -> ()
  | _ -> Alcotest.fail "ancillas not fresh per call");
  Alcotest.(check bool) "scoped names" true
    (List.mem_assoc "probe.anc[0]" p.Scaffold.Lower.qubit_names)

let test_module_errors () =
  expect_error
    "module f(qbit a) { X(a); } module main() { qbit q[2]; f(q[0], q[1]); }"
    "expects 1 qubit argument";
  expect_error
    "module f(qbit a, qbit b) { CNOT(a, b); } module main() { qbit q[1]; f(q[0], q[0]); }"
    "repeated qubit arguments";
  expect_error
    "module f(qbit a) { f(a); } module main() { qbit q[1]; f(q[0]); }"
    "call depth";
  (match compile "module helper(qbit a) { X(a); }" with
  | exception Scaffold.Lower.Error (msg, _) ->
    Alcotest.(check bool) "no main" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected missing-main error");
  match Scaffold.Parser.parse "module f() { } module f() { }" with
  | exception Scaffold.Parser.Error _ -> ()
  | _ -> Alcotest.fail "duplicate module accepted"

let test_module_semantics () =
  (* A Toffoli built from a user-defined module equals the builtin. *)
  let src =
    "module toffoli_gadget(qbit a, qbit b, qbit c) { Toffoli(a, b, c); }      module main() { qbit q[3]; X(q[0]); X(q[1]); toffoli_gadget(q[0], q[1], q[2]); measure(q); }"
  in
  let p = compile src in
  let dist =
    Sim.Runner.ideal_distribution (Circuit.body p.Scaffold.Lower.circuit)
      ~measured:p.Scaffold.Lower.measured
  in
  Alcotest.(check string) "answer" "111" (fst (List.hd dist))

(* ---------- Semantics: front end against the direct IR builders ---------- *)

let test_bv4_matches_builtin () =
  let src =
    "module main() { qbit q[4]; X(q[3]); for i in 0..4 { H(q[i]); } for i in 0..3 { \
     CNOT(q[i], q[3]); } for i in 0..3 { H(q[i]); } for i in 0..3 { measure(q[i]); } }"
  in
  let p = compile src in
  let builtin = (Bench_kit.Programs.bv 4).Bench_kit.Programs.circuit in
  let dist_scaffold =
    Sim.Runner.ideal_distribution (Circuit.body p.Scaffold.Lower.circuit)
      ~measured:p.Scaffold.Lower.measured
  in
  let dist_builtin =
    Sim.Runner.ideal_distribution (Circuit.body builtin) ~measured:[ 0; 1; 2 ]
  in
  Alcotest.(check string) "same answer" (fst (List.hd dist_builtin))
    (fst (List.hd dist_scaffold))

(* ---------- Pretty-printer round trips ---------- *)

let roundtrip_equal src =
  let p1 = compile src in
  let printed = Scaffold.Pretty.program (Scaffold.Parser.parse src) in
  let p2 = compile printed in
  Circuit.equal p1.Scaffold.Lower.circuit p2.Scaffold.Lower.circuit
  && p1.Scaffold.Lower.measured = p2.Scaffold.Lower.measured

let test_pretty_roundtrip_programs () =
  List.iter
    (fun src ->
      if not (roundtrip_equal src) then
        Alcotest.failf "roundtrip changed semantics for %s" src)
    [
      "module main() { qbit q[2]; H(q[0]); CNOT(q[0], q[1]); measure(q); }";
      "module main() { qbit q[4]; for i in 0..4 { H(q[i]); } Rz(pi/2, q[3]); }";
      "module f(qbit a) { qbit anc; CNOT(a, anc); } module main() { qbit q[2]; f(q[0]); f(q[1]); }";
      "module main() { qbit q[3]; Toffoli(q[0], q[1], q[2]); Rxy(1.5, -0.5, q[0]); }";
    ]

let ast_gen =
  QCheck.Gen.(
    let gate =
      oneof
        [
          map (fun q -> ("H", [], q)) (int_range 0 3);
          map (fun q -> ("X", [], q)) (int_range 0 3);
          map2 (fun q theta -> ("Rz", [ theta ], q)) (int_range 0 3)
            (float_range (-3.0) 3.0);
        ]
    in
    let stmt =
      oneof
        [
          map
            (fun (name, angles, q) ->
              Ast.Gate
                {
                  name;
                  angles = List.map (fun f -> Ast.Float_lit f) angles;
                  qubits = [ { Ast.register = "q"; index = Some (Ast.Int_lit q) } ];
                  line = 1;
                })
            gate;
          map2
            (fun lo len ->
              Ast.For
                {
                  var = "i";
                  from_ = Ast.Int_lit lo;
                  to_ = Ast.Int_lit (lo + len);
                  body =
                    [
                      Ast.Gate
                        {
                          name = "H";
                          angles = [];
                          qubits =
                            [ { Ast.register = "q"; index = Some (Ast.Binop (Ast.Mod, Ast.Var "i", Ast.Int_lit 4)) } ];
                          line = 1;
                        };
                    ];
                  line = 1;
                })
            (int_range 0 3) (int_range 0 4);
        ]
    in
    map
      (fun stmts ->
        {
          Ast.modules =
            [
              {
                Ast.name = "main";
                params = [];
                body = Ast.Decl { name = "q"; size = 4; line = 1 } :: stmts;
                line = 1;
              };
            ];
        })
      (list_size (int_range 0 12) stmt))

let prop_pretty_roundtrip =
  QCheck.Test.make ~count:200 ~name:"print/parse/lower roundtrip"
    (QCheck.make ast_gen) (fun ast ->
      let printed = Scaffold.Pretty.program ast in
      let direct = Scaffold.Lower.lower ast in
      let reparsed = Scaffold.Lower.compile_string printed in
      Circuit.equal direct.Scaffold.Lower.circuit reparsed.Scaffold.Lower.circuit)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_pretty_roundtrip ]

let () =
  Alcotest.run "scaffold"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "token stream" `Quick test_lexer_tokens;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "basic program" `Quick test_basic_program;
          Alcotest.test_case "loop unrolling" `Quick test_loop_unrolling;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "angle expressions" `Quick test_angle_expressions;
          Alcotest.test_case "multiple registers" `Quick test_multi_register;
          Alcotest.test_case "gate aliases" `Quick test_gate_aliases;
          Alcotest.test_case "multi-qubit gates" `Quick test_multi_qubit_gates;
          Alcotest.test_case "scalar registers" `Quick test_single_qubit_register;
          Alcotest.test_case "measure order" `Quick test_measure_order_preserved;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown register" `Quick test_error_unknown_register;
          Alcotest.test_case "out of bounds" `Quick test_error_out_of_bounds;
          Alcotest.test_case "unknown gate" `Quick test_error_unknown_gate;
          Alcotest.test_case "duplicate register" `Quick test_error_duplicate_register;
          Alcotest.test_case "repeated operand" `Quick test_error_repeated_operand;
          Alcotest.test_case "unknown variable" `Quick test_error_unknown_variable;
          Alcotest.test_case "double measure" `Quick test_error_double_measure;
          Alcotest.test_case "gate arity" `Quick test_error_arity;
          Alcotest.test_case "parse error position" `Quick test_parse_error_position;
        ] );
      ( "modules",
        [
          Alcotest.test_case "call inlines" `Quick test_module_call;
          Alcotest.test_case "call in loop" `Quick test_module_call_in_loop;
          Alcotest.test_case "nested calls" `Quick test_module_nested_calls;
          Alcotest.test_case "local ancilla" `Quick test_module_local_ancilla;
          Alcotest.test_case "errors" `Quick test_module_errors;
          Alcotest.test_case "semantics" `Quick test_module_semantics;
        ] );
      ( "semantics",
        [ Alcotest.test_case "bv4 equals builtin" `Quick test_bv4_matches_builtin ] );
      ( "pretty",
        [ Alcotest.test_case "roundtrip programs" `Quick test_pretty_roundtrip_programs ] );
      ("properties", qcheck_cases);
    ]
