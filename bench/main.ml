(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as text tables) and times the toolflow's stages
   with Bechamel.

   Usage:
     main.exe [-j N]         run every experiment, then the timing suite
     main.exe [-j N] quick   same with fewer noise trajectories (CI-friendly)
     main.exe [-j N] <id>    one experiment: fig1 fig2 fig3 tab1 fig5 fig6
                             fig7 fig8 fig9 fig10 fig11 fig12 scaling related
     main.exe [-j N] timings only the timing suite; also writes
                             BENCH_timings.json (per-stage ns/run, per-pass
                             compile breakdown, sequential vs parallel,
                             cache effect, plus reliability-cache counters
                             and domain-pool histograms from Obs.Metrics)
     main.exe smoke          fast determinism + cache smoke test, plus an
                             enriched-timings-schema gate (runtest)
     main.exe guard BASE NEW compare two BENCH_timings.json files; exit 1
                             if NEW's per_pass.mapping.ns_per_compile
                             exceeds 2x BASE's (the CI regression guard)

   -j N sizes the domain pool (default: Domain.recommended_domain_count);
   results are bit-for-bit identical for every N. *)

module E = Bench_kit.Experiments

let experiments : (string * (?trajectories:int -> unit -> unit)) list =
  [
    ("fig1", fun ?trajectories () -> ignore trajectories; E.print_fig1 ());
    ("fig2", fun ?trajectories () -> ignore trajectories; E.print_fig2 ());
    ("fig3", fun ?trajectories () -> ignore trajectories; E.print_fig3 ());
    ("tab1", fun ?trajectories () -> ignore trajectories; E.print_tab1 ());
    ("fig5", fun ?trajectories () -> ignore trajectories; E.print_fig5 ());
    ("fig6", fun ?trajectories () -> ignore trajectories; E.print_fig6 ());
    ("fig7", fun ?trajectories () -> ignore trajectories; E.print_fig7 ());
    ("fig8", fun ?trajectories () -> ignore trajectories; E.print_fig8 ());
    ("fig9", fun ?trajectories () -> E.print_fig9 ?trajectories ());
    ("fig10", fun ?trajectories () -> E.print_fig10 ?trajectories ());
    ("fig11", fun ?trajectories () -> E.print_fig11 ?trajectories ());
    ("fig12", fun ?trajectories () -> E.print_fig12 ?trajectories ());
    ("scaling", fun ?trajectories () -> ignore trajectories; E.print_scaling ());
    ("related", fun ?trajectories () -> ignore trajectories; E.print_related ());
    ("ablation", fun ?trajectories () -> ignore trajectories;
                 E.print_ablation_mapper (); E.print_ablation_peephole ());
    ("iontrap", fun ?trajectories () -> E.print_iontrap ?trajectories ());
    ("tannu", fun ?trajectories () -> E.print_tannu ?trajectories ());
    ("coherence", fun ?trajectories () -> ignore trajectories; E.print_coherence ());
    ("characterize", fun ?trajectories () -> ignore trajectories; E.print_characterize ());
    ("routing", fun ?trajectories () -> E.print_ablation_routing ?trajectories ());
    ("staleness", fun ?trajectories () -> E.print_staleness ?trajectories ());
    ("esp", fun ?trajectories () -> E.print_esp_correlation ?trajectories ());
    ("lookahead", fun ?trajectories () -> E.print_ablation_lookahead ?trajectories ());
    ("heavyhex", fun ?trajectories () -> E.print_heavyhex ?trajectories ());
    ("properties", fun ?trajectories () -> ignore trajectories;
                   E.print_properties Device.Machines.ibmq14;
                   E.print_properties Device.Machines.umdti);
    ("summary", fun ?trajectories () -> E.print_summary ?trajectories ());
    ("report", fun ?trajectories () ->
       print_string (Bench_kit.Report.generate ?trajectories ()));
    ("variability", fun ?trajectories () -> E.print_variability ?trajectories ());
    ("parametric", fun ?trajectories () -> E.print_parametric ?trajectories ());
    ("noisemodel", fun ?trajectories () -> E.print_noise_model ?trajectories ());
    ("ghz", fun ?trajectories () -> E.print_ghz ?trajectories ());
  ]

(* ---------- Bechamel timing suite: one Test.make per experiment ---------- *)

let timing_tests =
  let open Bechamel in
  let quick_traj = 20 in
  let staged name f = Test.make ~name (Staged.stage f) in
  [
    staged "fig1:device-table" (fun () -> ignore (E.fig1_rows ()));
    staged "fig2:gate-sets" (fun () -> ignore (E.fig2_rows ()));
    staged "fig3:calibration-series" (fun () -> ignore (E.fig3_series ()));
    staged "tab1:compiler-table" (fun () -> ignore (E.tab1_rows ()));
    staged "fig5:bv4-ir" (fun () -> ignore (Bench_kit.Programs.bv 4));
    staged "fig6:reliability-matrix" (fun () ->
        ignore
          (Triq.Reliability.of_calibration ~noise_aware:true
             Device.Machines.example_8q.Device.Machine.topology
             Device.Machines.example_8q_calibration));
    staged "fig7:benchmark-table" (fun () -> ignore (E.fig7_rows ()));
    staged "fig8:pulse-counts" (fun () -> ignore (E.fig8_data ()));
    staged "fig9:1q-opt-success" (fun () ->
        ignore (E.fig9_data ~trajectories:quick_traj ()));
    staged "fig10:comm-opt" (fun () ->
        ignore (E.fig10_counts ());
        ignore (E.fig10_success ~trajectories:quick_traj ()));
    staged "fig11:noise-adaptivity" (fun () ->
        ignore (E.fig11_counts ());
        ignore (E.fig11_sequences ~trajectories:quick_traj ()));
    staged "fig12:cross-platform" (fun () ->
        ignore (E.fig12_data ~trajectories:quick_traj ()));
    staged "scaling:supremacy-72q" (fun () ->
        ignore (E.scaling_data ~node_budget:5_000 ~depth:8 ()));
    staged "related:zulehner" (fun () -> ignore (E.related_data ()));
    staged "ablation:mapper-objective" (fun () ->
        ignore (E.ablation_mapper_data ~node_budget:50_000 ()));
    staged "ablation:peephole" (fun () -> ignore (E.ablation_peephole_data ()));
    staged "ext:iontrap" (fun () -> ignore (E.iontrap_data ~trajectories:quick_traj ()));
    staged "ext:tannu-six-days" (fun () ->
        ignore (E.tannu_data ~trajectories:quick_traj ()));
    staged "ext:coherence" (fun () -> ignore (E.coherence_data ()));
    staged "ext:characterize" (fun () -> ignore (E.characterize_data ()));
    staged "ablation:routing" (fun () ->
        ignore (E.ablation_routing_data ~trajectories:quick_traj ()));
    staged "ext:staleness" (fun () ->
        ignore (E.staleness_data ~trajectories:quick_traj ~days:3 ()));
    staged "ext:esp-correlation" (fun () ->
        ignore (E.esp_correlation_data ~trajectories:quick_traj ()));
    staged "ablation:lookahead-routing" (fun () ->
        ignore (E.ablation_lookahead_data ~trajectories:quick_traj ()));
  ]
  (* Dataflow static-analysis stages: the four-domain analyzer on its own,
     then the deep translation-validation overhead at each level
     (bv6@IBMQ14, same workload as the per-pass breakdown). *)
  @ (let open Bechamel in
     let staged name f = Test.make ~name (Staged.stage f) in
     let bv6 = (Bench_kit.Programs.bv 6).Bench_kit.Programs.circuit in
     let deep = Triq.Pass.Config.make ~validate:Triq.Pass.Config.Deep () in
     staged "dataflow:analyze" (fun () -> ignore (Dataflow.Analyze.summarize bv6))
     :: List.map
          (fun level ->
            staged
              (Printf.sprintf "dataflow:validate-%s"
                 (Triq.Pipeline.level_name level))
              (fun () ->
                ignore
                  (Triq.Pipeline.compile_level ~config:deep
                     Device.Machines.ibmq14 bv6 ~level)))
          Triq.Pipeline.all_levels)
  (* Layout-engine stages: each strategy solving the same bv6@IBMQ14
     mapping problem the per-pass breakdown times (cache bypassed — these
     measure the engines themselves). *)
  @ (let open Bechamel in
     let staged name f = Test.make ~name (Staged.stage f) in
     let layout_pr =
       lazy
         (let machine = Device.Machines.ibmq14 in
          let reliability =
            Triq.Reliability.compute_cached ~noise_aware:true machine ~day:0
          in
          Triq.Placement.problem reliability
            (Ir.Decompose.flatten
               (Bench_kit.Programs.bv 6).Bench_kit.Programs.circuit))
     in
     [
       staged "layout:bb" (fun () -> ignore (Layout.Bb.solve (Lazy.force layout_pr)));
       staged "layout:smt" (fun () ->
           ignore (Layout.Smt_search.solve (Lazy.force layout_pr)));
       staged "layout:greedy" (fun () ->
           ignore (Layout.Greedy.solve (Lazy.force layout_pr)));
       staged "layout:portfolio" (fun () ->
           ignore (Layout.Portfolio.solve (Lazy.force layout_pr)));
     ])

(* ---------- simulation-backend stages ---------- *)

(* fig12-style simulation workload: every benchmark that fits, on every
   Table 2 machine, compiled once at TriQ-1QOptCN. The compiled cells
   are shared by the Bechamel stages and the wall-clock sections below
   so all backend comparisons run the exact same circuits. *)
let sim_cells =
  lazy
    (List.concat_map
       (fun m ->
         List.filter_map
           (fun (p : Bench_kit.Programs.t) ->
             if Device.Machine.fits m p.Bench_kit.Programs.circuit then
               Some
                 ( Triq.Pipeline.to_compiled
                     (Triq.Pipeline.compile_level m
                        p.Bench_kit.Programs.circuit
                        ~level:Triq.Pipeline.OneQOptCN),
                   p.Bench_kit.Programs.spec )
             else None)
           Bench_kit.Programs.all)
       Device.Machines.all)

let sim_sweep ~config () =
  List.iter
    (fun (c, s) -> ignore (Sim.Runner.simulate ~config c s))
    (Lazy.force sim_cells)

(* bv8@IBMQ16 is Clifford end to end (H layers + CNOTs survive 1Q-opt as
   Clifford-angle rotations), so Auto dispatches it to the stabilizer
   tableau — the head-to-head polynomial-vs-dense stage. *)
let sim_bv8 =
  lazy
    (let p = Bench_kit.Programs.bv 8 in
     ( Triq.Pipeline.to_compiled
         (Triq.Pipeline.compile_level Device.Machines.ibmq16
            p.Bench_kit.Programs.circuit ~level:Triq.Pipeline.OneQOptCN),
       p.Bench_kit.Programs.spec ))

let sim_timing_tests =
  let open Bechamel in
  let staged name f = Test.make ~name (Staged.stage f) in
  let cfg backend fusion =
    Sim.Runner.Config.make ~trajectories:60 ~backend ~fusion ()
  in
  let bv8 backend =
    let c, s = Lazy.force sim_bv8 in
    fun () ->
      ignore
        (Sim.Runner.simulate
           ~config:(Sim.Runner.Config.make ~trajectories:200 ~backend ())
           c s)
  in
  [
    staged "sim:sv-nofusion"
      (sim_sweep ~config:(cfg Sim.Runner.Config.Statevector false));
    staged "sim:sv-fusion"
      (sim_sweep ~config:(cfg Sim.Runner.Config.Statevector true));
    staged "sim:auto" (sim_sweep ~config:(cfg Sim.Runner.Config.Auto true));
    staged "sim:bv8-statevector" (bv8 Sim.Runner.Config.Statevector);
    staged "sim:bv8-stabilizer" (bv8 Sim.Runner.Config.Stabilizer);
  ]

let collect_timings () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let name = Test.Elt.name elt in
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates result with
          | Some [ ns ] ->
            Printf.printf "%-28s %12.0f ns/run\n%!" name ns;
            (name, Some ns)
          | _ ->
            Printf.printf "%-28s (no estimate)\n%!" name;
            (name, None))
        (Test.elements test))
    (timing_tests @ sim_timing_tests)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Sequential-vs-parallel wall clock on a fig9-style trajectory workload:
   one compiled executable, 300 Monte-Carlo trajectories. The outcomes
   must be identical — the pool only changes where trajectories run. *)
let seq_vs_par ?(trajectories = 300) () =
  let p = Bench_kit.Programs.bv 6 in
  let compiled =
    Triq.Pipeline.to_compiled
      (Triq.Pipeline.compile_schedule Device.Machines.ibmq14
         p.Bench_kit.Programs.circuit
         (Triq.Pass.Schedule.of_level Triq.Pipeline.OneQOptCN))
  in
  let spec = p.Bench_kit.Programs.spec in
  let run pool = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories ~pool ()) compiled spec in
  (* At least two domains for the parallel leg, so the comparison stays
     meaningful on single-core CI containers. *)
  let jobs = max 2 (Parallel.Pool.default_jobs ()) in
  Parallel.Pool.with_pool ~jobs:1 (fun seq_pool ->
      Parallel.Pool.with_pool ~jobs (fun par_pool ->
          ignore (run seq_pool);
          (* warm code + allocator *)
          let o1, seq_s = wall (fun () -> run seq_pool) in
          let o2, par_s = wall (fun () -> run par_pool) in
          if o1.Sim.Runner.distribution <> o2.Sim.Runner.distribution then
            failwith "parallel trajectory run diverged from sequential";
          (seq_s, par_s, jobs)))

(* Backend/fusion wall clock on the full fig12-style grid at real
   trajectory counts — the headline numbers behind the "simulation"
   section of BENCH_timings.json. Statevector-without-fusion is the
   pre-optimization baseline; fusion and Auto dispatch (stabilizer /
   hybrid where the circuit allows) are the two optimization layers. *)
let backend_effect ?(trajectories = 300) () =
  let run config = sim_sweep ~config () in
  let cfg backend fusion =
    Sim.Runner.Config.make ~trajectories ~backend ~fusion ()
  in
  let base = cfg Sim.Runner.Config.Statevector false in
  let fuse = cfg Sim.Runner.Config.Statevector true in
  let auto = cfg Sim.Runner.Config.Auto true in
  run auto;
  (* warm code, caches and the lazy cell compile *)
  let (), base_s = wall (fun () -> run base) in
  let (), fuse_s = wall (fun () -> run fuse) in
  let (), auto_s = wall (fun () -> run auto) in
  (List.length (Lazy.force sim_cells), trajectories, base_s, fuse_s, auto_s)

(* Sweep-level sharding vs trajectory-only parallelism on the same grid:
   "sharded" fans the individual (machine, benchmark) cells across the
   pool the way Experiments.grid_rows does; "trajectory-only" walks the
   cells sequentially and lets each cell parallelize only its own
   trajectory blocks. Outcomes must be identical — each cell seeds its
   own RNG, so sharding is pure scheduling. *)
let sharding_effect ?(trajectories = 150) () =
  let cells = Lazy.force sim_cells in
  let jobs = max 2 (Parallel.Pool.default_jobs ()) in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let config = Sim.Runner.Config.make ~trajectories ~pool () in
      let run_cell (c, s) = Sim.Runner.simulate ~config c s in
      ignore (Parallel.Pool.map pool run_cell cells);
      (* warm *)
      let o1, traj_only_s = wall (fun () -> List.map run_cell cells) in
      let o2, shard_s = wall (fun () -> Parallel.Pool.map pool run_cell cells) in
      if o1 <> o2 then
        failwith "sharded sweep diverged from trajectory-only sweep";
      (traj_only_s, shard_s, jobs))

(* Reliability-matrix cache: per-call cost cached vs uncached, plus the
   hit rate over a real sweep (fig10's compile grid). *)
let cache_effect ?(reps = 50) () =
  let machine = Device.Machines.ibmq16 in
  let calibration = Device.Machine.calibration machine ~day:0 in
  let (), uncached_s =
    wall (fun () ->
        for _ = 1 to reps do
          ignore (Triq.Reliability.compute ~noise_aware:true machine calibration)
        done)
  in
  Triq.Reliability.cache_clear ();
  let (), cached_s =
    wall (fun () ->
        for _ = 1 to reps do
          ignore (Triq.Reliability.compute_cached ~noise_aware:true machine ~day:0)
        done)
  in
  Triq.Reliability.cache_clear ();
  ignore (E.fig10_counts ());
  let hits, misses = Triq.Reliability.cache_stats () in
  ( uncached_s /. float_of_int reps,
    cached_s /. float_of_int reps,
    hits,
    misses )

(* Layout cache: cold (cache-bypassed) solve vs O(1) cache hit on the
   bv6@IBMQ14 mapping problem, plus the cache's stats after the run. *)
let layout_cache_effect ?(reps = 50) () =
  let machine = Device.Machines.ibmq14 in
  let reliability =
    Triq.Reliability.compute_cached ~noise_aware:true machine ~day:0
  in
  let flat =
    Ir.Decompose.flatten (Bench_kit.Programs.bv 6).Bench_kit.Programs.circuit
  in
  let solve config =
    Triq.Placement.solve ~config ~reliability
      ~machine_name:machine.Device.Machine.name ~day:0 flat
  in
  let nocache = Layout.Config.make ~cache:false () in
  let (), cold_s =
    wall (fun () ->
        for _ = 1 to reps do
          ignore (solve nocache)
        done)
  in
  Triq.Placement.cache_clear ();
  ignore (solve Layout.Config.default);
  (* populate: one miss *)
  let (), hit_s =
    wall (fun () ->
        for _ = 1 to reps do
          ignore (solve Layout.Config.default)
        done)
  in
  let stats = Triq.Placement.cache_stats () in
  (cold_s /. float_of_int reps, hit_s /. float_of_int reps, stats)

(* Per-pass compile-time attribution from the pass runner (Section 6.5):
   average each schedule pass's wall clock over [reps] compiles of
   bv6@IBMQ14 at TriQ-1QOptCN, so future perf work can attribute wins to
   individual passes. The reliability and layout caches are cleared first
   so the reliability and mapping passes show their uncached cost on the
   first rep (and their steady-state cached cost on the rest — repeated
   compile traffic is the sweep drivers' common case). *)
let per_pass_breakdown ?(reps = 20) () =
  let p = Bench_kit.Programs.bv 6 in
  let machine = Device.Machines.ibmq14 in
  let schedule = Triq.Pass.Schedule.of_level Triq.Pipeline.OneQOptCN in
  Triq.Reliability.cache_clear ();
  Triq.Placement.cache_clear ();
  let totals = Hashtbl.create 16 in
  let order = ref [] in
  for _ = 1 to reps do
    let r =
      Triq.Pipeline.compile_schedule machine p.Bench_kit.Programs.circuit schedule
    in
    List.iter
      (fun (name, s) ->
        if not (Hashtbl.mem totals name) then order := name :: !order;
        Hashtbl.replace totals name (s +. (try Hashtbl.find totals name with Not_found -> 0.0)))
      r.Triq.Pipeline.pass_times_s
  done;
  List.rev_map
    (fun name -> (name, Hashtbl.find totals name /. float_of_int reps))
    !order

(* BENCH_timings.json is built on Obs.Json and enriched with the
   observability registry: alongside the Bechamel stage timings and the
   per-pass compile breakdown, it carries the reliability cache's
   process-lifetime counters and the domain pool's queue-wait and busy
   histograms (recorded because the timings/smoke drivers enable
   Obs.Metrics before running their workloads). *)

(* Single metric rendered the same way `triqc metrics --json` renders it
   (counter -> int, gauge -> float, histogram -> {count,sum,buckets}). *)
let metric_json name =
  match List.assoc_opt name (Obs.Metrics.dump ()) with
  | None -> Obs.Json.Null
  | Some v -> (
    match Obs.Export.metrics_json [ (name, v) ] with
    | Obs.Json.Obj [ (_, j) ] -> j
    | j -> j)

let counter_json name =
  match List.assoc_opt name (Obs.Metrics.dump ()) with
  | Some (Obs.Metrics.Counter n) -> Obs.Json.Int n
  | _ -> Obs.Json.Int 0

let timings_payload stages per_pass (seq_s, par_s, jobs)
    (unc, cac, hits, misses) (l_cold, l_hit, l_stats)
    (sim_cells_n, sim_traj, base_s, fuse_s, auto_s)
    (traj_only_s, shard_s, shard_jobs) =
  let open Obs.Json in
  let ns s = Float (Float.round (s *. 1e9)) in
  Obj
    [
      ("jobs", Int jobs);
      ( "stages",
        List
          (List.map
             (fun (name, est) ->
               Obj
                 [
                   ("name", Str name);
                   ( "ns_per_run",
                     match est with
                     | Some v -> Float (Float.round v)
                     | None -> Null );
                 ])
             stages) );
      ( "per_pass",
        Obj
          [
            ("workload", Str "bv6@IBMQ14 TriQ-1QOptCN");
            ( "passes",
              List
                (List.map
                   (fun (name, s) ->
                     Obj [ ("name", Str name); ("ns_per_compile", ns s) ])
                   per_pass) );
          ] );
      ( "trajectory_experiment",
        Obj
          [
            ("name", Str "fig9-style bv6@ibmq14 trajectory sweep");
            ("sequential_ns", ns seq_s);
            ("parallel_ns", ns par_s);
            ("parallel_jobs", Int jobs);
            ( "speedup",
              if par_s > 0.0 then Float (seq_s /. par_s) else Null );
          ] );
      ( "reliability_cache",
        Obj
          [
            ("uncached_ns_per_call", ns unc);
            ("cached_ns_per_call", ns cac);
            ("sweep", Str "fig10 compile grid");
            ("sweep_hits", Int hits);
            ("sweep_misses", Int misses);
            ( "counters",
              Obj
                [
                  ("hits", counter_json "triq.reliability.cache.hits");
                  ("misses", counter_json "triq.reliability.cache.misses");
                  ("evictions", counter_json "triq.reliability.cache.evictions");
                ] );
          ] );
      ( "layout_cache",
        Obj
          [
            ("workload", Str "bv6@IBMQ14 mapping problem");
            ("cold_solve_ns_per_call", ns l_cold);
            ("hit_ns_per_call", ns l_hit);
            ( "speedup",
              if l_hit > 0.0 then Float (l_cold /. l_hit) else Null );
            ("hits", Int l_stats.Layout.Cache.hits);
            ("misses", Int l_stats.Layout.Cache.misses);
            ("evictions", Int l_stats.Layout.Cache.evictions);
            ("entries", Int l_stats.Layout.Cache.size);
            ( "counters",
              Obj
                [
                  ("hits", counter_json "layout.cache.hits");
                  ("misses", counter_json "layout.cache.misses");
                  ("evictions", counter_json "layout.cache.evictions");
                ] );
            ( "portfolio_wins",
              Obj
                [
                  ("bb", counter_json "layout.portfolio.wins.bb");
                  ("smt", counter_json "layout.portfolio.wins.smt");
                  ("greedy", counter_json "layout.portfolio.wins.greedy");
                ] );
          ] );
      ( "simulation",
        Obj
          [
            ( "sweep",
              Str "fig12-style grid: all fitting benchmarks x Table 2 machines \
                   @ TriQ-1QOptCN" );
            ("cells", Int sim_cells_n);
            ("trajectories", Int sim_traj);
            ("statevector_nofusion_ns", ns base_s);
            ("statevector_fusion_ns", ns fuse_s);
            ("auto_ns", ns auto_s);
            ( "fusion_speedup",
              if fuse_s > 0.0 then Float (base_s /. fuse_s) else Null );
            ( "auto_speedup",
              if auto_s > 0.0 then Float (base_s /. auto_s) else Null );
            ( "sharding",
              Obj
                [
                  ("trajectory_only_ns", ns traj_only_s);
                  ("sharded_ns", ns shard_s);
                  ("jobs", Int shard_jobs);
                  ( "speedup",
                    if shard_s > 0.0 then Float (traj_only_s /. shard_s)
                    else Null );
                ] );
          ] );
      ( "pool",
        Obj
          [
            ("jobs", metric_json "parallel.pool.jobs");
            ("tasks", metric_json "parallel.pool.tasks");
            ("queue_wait_ns", metric_json "parallel.pool.queue_wait_ns");
            ("busy_ns", metric_json "parallel.pool.busy_ns");
          ] );
    ]

let write_timings_json path payload =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string ~pretty:true payload);
      Out_channel.output_char oc '\n')

let run_timings () =
  print_newline ();
  print_endline "== Bechamel timing suite (per-experiment harness cost) ==";
  (* Switch on the gated metrics so the pool's queue-wait/busy histograms
     record during seq_vs_par; counters are live regardless. *)
  Obs.Metrics.enable ();
  let stages = collect_timings () in
  let per_pass = per_pass_breakdown () in
  print_endline "per-pass compile time (bv6@IBMQ14, TriQ-1QOptCN):";
  List.iter
    (fun (name, s) -> Printf.printf "  %-15s %10.0f ns/compile\n" name (s *. 1e9))
    per_pass;
  let sp = seq_vs_par () in
  let ce = cache_effect () in
  let seq_s, par_s, jobs = sp in
  Printf.printf "trajectory experiment: sequential %.3fs, parallel %.3fs (-j %d, %.2fx)\n"
    seq_s par_s jobs
    (if par_s > 0.0 then seq_s /. par_s else Float.nan);
  let unc, cac, hits, misses = ce in
  Printf.printf
    "reliability matrix: uncached %.0f ns/call, cached %.0f ns/call; fig10 sweep: %d hits, %d misses\n"
    (unc *. 1e9) (cac *. 1e9) hits misses;
  let lc = layout_cache_effect () in
  let l_cold, l_hit, l_stats = lc in
  Printf.printf
    "layout cache: cold solve %.0f ns/call, hit %.0f ns/call (%.0fx); %d hits, %d misses\n"
    (l_cold *. 1e9) (l_hit *. 1e9)
    (if l_hit > 0.0 then l_cold /. l_hit else Float.nan)
    l_stats.Layout.Cache.hits l_stats.Layout.Cache.misses;
  let be = backend_effect () in
  let cells_n, traj, base_s, fuse_s, auto_s = be in
  Printf.printf
    "simulation backends (%d cells, %d traj): statevector %.1f ms, fused %.1f ms (%.2fx), auto %.1f ms (%.2fx)\n"
    cells_n traj (base_s *. 1e3) (fuse_s *. 1e3)
    (if fuse_s > 0.0 then base_s /. fuse_s else Float.nan)
    (auto_s *. 1e3)
    (if auto_s > 0.0 then base_s /. auto_s else Float.nan);
  let sh = sharding_effect () in
  let traj_only_s, shard_s, shard_jobs = sh in
  Printf.printf
    "sweep sharding: trajectory-only %.1f ms, sharded %.1f ms (-j %d, %.2fx)\n"
    (traj_only_s *. 1e3) (shard_s *. 1e3) shard_jobs
    (if shard_s > 0.0 then traj_only_s /. shard_s else Float.nan);
  write_timings_json "BENCH_timings.json"
    (timings_payload stages per_pass sp ce lc be sh);
  print_endline "wrote BENCH_timings.json"

(* A CI-fast correctness gate (wired under `dune runtest`): the parallel
   execution layer must be invisible in the results. *)
let run_smoke () =
  let traj = 5 in
  let grid jobs =
    Parallel.Pool.set_default_jobs jobs;
    E.fig9_data ~trajectories:traj ()
  in
  let seq = grid 1 in
  let par = grid 4 in
  if seq <> par then begin
    prerr_endline "SMOKE FAIL: fig9 grid differs between -j 1 and -j 4";
    exit 1
  end;
  let machine = Device.Machines.ibmq14 in
  let calibration = Device.Machine.calibration machine ~day:2 in
  Triq.Reliability.cache_clear ();
  let cached = Triq.Reliability.compute_cached ~noise_aware:true machine ~day:2 in
  let fresh = Triq.Reliability.compute ~noise_aware:true machine calibration in
  if not (Triq.Reliability.equal cached fresh) then begin
    prerr_endline "SMOKE FAIL: cached reliability matrix differs from fresh";
    exit 1
  end;
  Printf.printf
    "smoke ok: fig9 grid (%d trajectories) identical at -j 1 and -j 4; reliability cache exact\n"
    traj;
  (* Enriched-schema gate: build a quick timings payload (no Bechamel
     suite), write it to a temp file, re-parse it with the independent
     Device.Json reader, and assert the per-pass, cache and pool
     sections are all present. *)
  Obs.Metrics.enable ();
  let per_pass = per_pass_breakdown ~reps:2 () in
  let sp = seq_vs_par ~trajectories:20 () in
  let ce = cache_effect ~reps:5 () in
  let lc = layout_cache_effect ~reps:5 () in
  let be = backend_effect ~trajectories:10 () in
  let sh = sharding_effect ~trajectories:5 () in
  let path = Filename.temp_file "bench_timings_smoke" ".json" in
  write_timings_json path (timings_payload [] per_pass sp ce lc be sh);
  let doc =
    Device.Json.parse (In_channel.with_open_text path In_channel.input_all)
  in
  Sys.remove path;
  List.iter
    (fun keys ->
      try ignore (List.fold_left (fun j k -> Device.Json.member k j) doc keys)
      with Invalid_argument msg ->
        Printf.eprintf "SMOKE FAIL: BENCH_timings.json missing %s (%s)\n"
          (String.concat "." keys) msg;
        exit 1)
    [
      [ "stages" ];
      [ "per_pass"; "passes" ];
      [ "trajectory_experiment"; "speedup" ];
      [ "reliability_cache"; "sweep_hits" ];
      [ "reliability_cache"; "sweep_misses" ];
      [ "reliability_cache"; "counters"; "hits" ];
      [ "reliability_cache"; "counters"; "misses" ];
      [ "layout_cache"; "cold_solve_ns_per_call" ];
      [ "layout_cache"; "hit_ns_per_call" ];
      [ "layout_cache"; "counters"; "hits" ];
      [ "layout_cache"; "portfolio_wins"; "bb" ];
      [ "simulation"; "statevector_nofusion_ns" ];
      [ "simulation"; "fusion_speedup" ];
      [ "simulation"; "auto_speedup" ];
      [ "simulation"; "sharding"; "speedup" ];
      [ "pool"; "tasks" ];
      [ "pool"; "queue_wait_ns"; "buckets" ];
      [ "pool"; "busy_ns"; "count" ];
    ];
  print_endline
    "smoke ok: enriched BENCH_timings.json schema (stages, per_pass, \
     reliability_cache, layout_cache, simulation, pool)"

(* CI regression guard over committed timings: read the mapping pass's
   ns_per_compile out of two BENCH_timings.json files and fail when the
   fresh run exceeds twice the committed baseline. *)
let mapping_ns_per_compile path =
  let doc =
    Device.Json.parse (In_channel.with_open_text path In_channel.input_all)
  in
  let passes =
    Device.Json.to_list (Device.Json.member "passes" (Device.Json.member "per_pass" doc))
  in
  let rec find = function
    | [] -> failwith (path ^ ": no \"mapping\" entry under per_pass.passes")
    | p :: rest ->
      if Device.Json.to_str (Device.Json.member "name" p) = "mapping" then
        Device.Json.to_float (Device.Json.member "ns_per_compile" p)
      else find rest
  in
  find passes

let run_guard baseline fresh =
  let base_ns = mapping_ns_per_compile baseline in
  let fresh_ns = mapping_ns_per_compile fresh in
  let limit = 2.0 *. base_ns in
  Printf.printf
    "guard: per_pass.mapping.ns_per_compile baseline %.0f ns, fresh %.0f ns, limit %.0f ns\n"
    base_ns fresh_ns limit;
  if fresh_ns > limit then begin
    Printf.eprintf
      "GUARD FAIL: mapping pass regressed to %.2fx the committed baseline\n"
      (fresh_ns /. base_ns);
    exit 1
  end;
  print_endline "guard ok: mapping pass within 2x of the committed baseline"

let () =
  let argv = Array.to_list Sys.argv in
  (* Optional leading `-j N` sizes the domain pool for everything below. *)
  let args =
    match argv with
    | _ :: "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some jobs when jobs >= 1 ->
        Parallel.Pool.set_default_jobs jobs;
        rest
      | _ ->
        Printf.eprintf "bench: -j expects a positive integer, got %S\n" n;
        exit 2)
    | _ :: rest -> rest
    | [] -> []
  in
  match args with
  | [ "timings" ] -> run_timings ()
  | [ "smoke" ] -> run_smoke ()
  | [ "guard"; baseline; fresh ] -> run_guard baseline fresh
  | [ "quick" ] ->
    List.iter
      (fun ((_, f) : string * (?trajectories:int -> unit -> unit)) ->
        f ~trajectories:50 ())
      experiments
  | [ name ] -> (
    match List.assoc_opt name experiments with
    | Some (f : ?trajectories:int -> unit -> unit) -> f ()
    | None ->
      Printf.eprintf "unknown experiment %S; known: %s timings quick smoke guard\n" name
        (String.concat " " (List.map fst experiments));
      exit 2)
  | _ ->
    List.iter
      (fun ((_, f) : string * (?trajectories:int -> unit -> unit)) -> f ())
      experiments;
    run_timings ()
