(* triqc: the TriQ command-line compiler.

   Subcommands:
     compile   Scaffold source -> vendor executable (OpenQASM/Quil/TI asm)
     simulate  compile, then run on the noisy device model
     lint      static checks: Scaffold source lints + compile-time validation
               (--deep adds dataflow lints and translation validation)
     check     dataflow analysis: Clifford/liveness/entanglement/phase facts
               + per-pass translation validation against a machine
     passes    list the registered compiler passes and level schedules
     machines  list the supported machines
     info      describe one machine (topology + calibration snapshot)
     metrics   compile (and optionally simulate), then dump the Obs registry
     bench     list the built-in benchmark programs

   Observability: compile/simulate/sweep accept --trace FILE
   [--trace-format chrome|jsonl|text] to record one span per compiler
   pass (plus simulation blocks and pool activity) and write them out;
   subcommands with --json all print the shared Obs.Output envelope
   {"ok": bool, "command": ..., "data": ...} on one line. *)

open Cmdliner

(* A machine is named either by a built-in name or by a JSON description
   file (the paper's device-characteristics-as-input design). *)
let find_machine spec =
  match Device.Machines.find spec with
  | Some m -> Ok m
  | None ->
    let looks_like_file =
      Filename.check_suffix spec ".json" || String.contains spec '/'
      || Sys.file_exists spec
    in
    if looks_like_file then begin
      try Ok (Device.Machine_io.of_file spec) with
      | Device.Machine_io.Error msg ->
        Error (Printf.sprintf "%s: invalid machine description: %s" spec msg)
      | Sys_error msg -> Error msg
    end
    else
      Error
        (Printf.sprintf "unknown machine %S (known: %s; or pass a .json description)"
           spec
           (String.concat ", "
              (List.map (fun m -> m.Device.Machine.name) Device.Machines.all)))

let find_level name =
  match Triq.Pipeline.level_of_string name with
  | Some l -> Ok l
  | None ->
    Error
      (Printf.sprintf "unknown optimization level %S (valid, case-insensitive: %s)"
         name
         (String.concat ", " Triq.Pipeline.level_strings))

let find_router name =
  match Triq.Pass.Config.router_of_string name with
  | Some r -> Ok r
  | None ->
    Error
      (Printf.sprintf "unknown router %S (valid: %s)" name
         (String.concat ", " Triq.Pass.Config.router_names))

let find_validation = function
  | None -> Ok Triq.Pass.Config.Off
  | Some name ->
    (match Triq.Pass.Config.validation_of_string name with
    | Some v -> Ok v
    | None ->
      Error
        (Printf.sprintf "unknown validation mode %S (valid: %s)" name
           (String.concat ", " Triq.Pass.Config.validation_names)))

(* The level's named schedule, possibly edited by --passes/--disable-pass. *)
let build_schedule ~config ~level passes disabled =
  let ( let* ) = Result.bind in
  let* schedule =
    match passes with
    | None -> Ok (Triq.Pass.Schedule.of_level ~config level)
    | Some names ->
      Triq.Pass.Schedule.make ~config ~level
        (String.split_on_char ',' names
        |> List.map String.trim
        |> List.filter (fun s -> s <> ""))
  in
  List.fold_left
    (fun acc name ->
      let* schedule = acc in
      Triq.Pass.Schedule.disable schedule name)
    (Ok schedule) disabled

let compile_at ?(config = Triq.Pass.Config.default) machine level circuit =
  Triq.Pipeline.compile_schedule ~config machine circuit
    (Triq.Pass.Schedule.of_level ~config level)

(* Programs come in as Scaffold source or (for re-optimizing existing
   vendor output) as OpenQASM 2.0. *)
let load_program path =
  try
    if Filename.check_suffix path ".qasm" then begin
      let parsed = Qasm.Frontend.parse_file path in
      Ok
        {
          Scaffold.Lower.circuit = parsed.Qasm.Frontend.circuit;
          measured = parsed.Qasm.Frontend.measured;
          qubit_names = parsed.Qasm.Frontend.qubit_names;
        }
    end
    else Ok (Scaffold.Lower.compile_file path)
  with
  | Scaffold.Parser.Error (msg, line, col) ->
    Error (Printf.sprintf "%s:%d:%d: parse error: %s" path line col msg)
  | Scaffold.Lower.Error (msg, line) ->
    Error (Printf.sprintf "%s:%d: error: %s" path line msg)
  | Qasm.Frontend.Error (msg, line) ->
    Error (Printf.sprintf "%s:%d: QASM error: %s" path line msg)
  | Sys_error msg -> Error msg

let machine_arg =
  let doc =
    "Target machine: a built-in name (IBMQ5, IBMQ14, IBMQ16, Agave, Aspen1, \
     Aspen3, UMDTI) or the path of a JSON machine description (see 'triqc export')."
  in
  Arg.(required & opt (some string) None & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let level_arg =
  let doc = "Optimization level: n, 1qopt, 1qoptc, 1qoptcn (Table 1)." in
  Arg.(value & opt string "1qoptcn" & info [ "O"; "level" ] ~docv:"LEVEL" ~doc)

let day_arg =
  let doc = "Calibration day to compile against." in
  Arg.(value & opt int 0 & info [ "day" ] ~docv:"DAY" ~doc)

(* Evaluates to () after sizing the shared domain pool; subcommands that
   simulate or sweep thread this term in so -j takes effect before any
   parallel work starts. Results are bit-for-bit identical for every N. *)
let jobs_arg =
  let doc =
    "Number of domains for parallel trajectory simulation and sweeps \
     (default: the number of cores). Any value yields identical results; \
     only wall-clock time changes."
  in
  let setup = function
    | None -> ()
    | Some j when j >= 1 -> Parallel.Pool.set_default_jobs j
    | Some j ->
      Printf.eprintf "triqc: --jobs expects a positive count, got %d\n" j;
      exit 2
  in
  Term.(
    const setup
    $ Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc))

let file_arg =
  let doc = "Scaffold source file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

(* --trace FILE [--trace-format FMT]: record spans around the command's
   work and write them out afterwards. Without --trace the span sink
   stays disabled and the instrumented hot paths are no-ops, so traced
   and untraced runs produce bit-identical command output. *)
let trace_args =
  let trace =
    let doc =
      "Record an execution trace (one span per compiler pass, plus \
       simulation-block and pool spans when simulating) and write it to \
       $(docv) on exit."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let fmt =
    let doc =
      "Trace format: chrome (a trace_event JSON document for \
       chrome://tracing or ui.perfetto.dev), jsonl (one JSON object per \
       span per line), or text (indented tree)."
    in
    Arg.(value & opt string "chrome" & info [ "trace-format" ] ~docv:"FORMAT" ~doc)
  in
  Term.(const (fun file fmt -> (file, fmt)) $ trace $ fmt)

let with_trace (trace, fmt_name) k =
  match trace with
  | None -> k ()
  | Some path -> (
    match Obs.Export.format_of_string fmt_name with
    | None ->
      Printf.eprintf "triqc: unknown trace format %S (valid: chrome, jsonl, text)\n"
        fmt_name;
      2
    | Some fmt ->
      Obs.Span.enable ();
      let code = k () in
      Obs.Span.disable ();
      let rendered = Obs.Export.render fmt (Obs.Span.collected ()) in
      (try
         Out_channel.with_open_text path (fun oc -> output_string oc rendered);
         code
       with Sys_error msg ->
         Printf.eprintf "triqc: cannot write trace: %s\n" msg;
         if code = 0 then 1 else code))

let print_stats (r : Triq.Pipeline.t) =
  Printf.eprintf
    "; %s on %s (day %d): 2Q=%d, pulses=%d, swaps=%d, ESP=%.4f, compile=%.3fs\n"
    (Triq.Pipeline.level_name r.Triq.Pipeline.level)
    r.Triq.Pipeline.machine.Device.Machine.name r.Triq.Pipeline.day
    r.Triq.Pipeline.two_q_count r.Triq.Pipeline.pulse_count
    r.Triq.Pipeline.swap_count r.Triq.Pipeline.esp r.Triq.Pipeline.compile_time_s

let compile_common file machine_name level_name =
  let ( let* ) = Result.bind in
  let* machine = find_machine machine_name in
  let* level = find_level level_name in
  let* program = load_program file in
  let* () =
    if Device.Machine.fits machine program.Scaffold.Lower.circuit then Ok ()
    else
      Error
        (Printf.sprintf "program needs %d qubits; %s has %d"
           program.Scaffold.Lower.circuit.Ir.Circuit.n_qubits
           machine.Device.Machine.name
           (Device.Machine.n_qubits machine))
  in
  Ok (machine, level, program)

let compile_cmd =
  let router_arg =
    let doc = "SWAP-insertion router: default or lookahead (ablation extension)." in
    Arg.(value & opt string "default" & info [ "router" ] ~docv:"ROUTER" ~doc)
  in
  let peephole_arg =
    Arg.(
      value & flag
      & info [ "peephole" ]
          ~doc:
            "Add the 2Q peephole cancellation pass to the schedule (an extension, \
             not part of the paper's flow).")
  in
  let validate_arg =
    Arg.(
      value
      & opt ~vopt:(Some "shape") (some string) None
      & info [ "validate" ] ~docv:"MODE"
          ~doc:
            "Arm the pass-invariant validator during compilation: 'shape' \
             (structural rules; the default when --validate is given without a \
             value) or 'deep' (adds dataflow translation validation: readout \
             liveness and Clifford tableau equivalence after every pass).")
  in
  let mapper_arg =
    let doc =
      "Layout strategy for the mapping pass: 'bb' (branch-and-bound, the \
       default), 'smt' (incremental SAT threshold search), 'greedy' \
       (degree-ordered seeder) or 'portfolio' (race bb and smt in parallel, \
       seeded by greedy)."
    in
    Arg.(value & opt string "bb" & info [ "mapper" ] ~docv:"STRATEGY" ~doc)
  in
  let no_layout_cache_arg =
    Arg.(
      value & flag
      & info [ "no-layout-cache" ]
          ~doc:
            "Bypass the process-wide layout cache (canonical interaction-graph \
             keyed placement reuse) for this compile.")
  in
  let passes_arg =
    let doc =
      "Run exactly this comma-separated pass list instead of the level's named \
       schedule (canonical names from 'triqc passes')."
    in
    Arg.(value & opt (some string) None & info [ "passes" ] ~docv:"NAMES" ~doc)
  in
  let disable_arg =
    let doc = "Remove an optional pass from the schedule (repeatable)." in
    Arg.(value & opt_all string [] & info [ "disable-pass" ] ~docv:"NAME" ~doc)
  in
  let run file machine_name level_name day router_name mapper_name
      no_layout_cache peephole validate passes disabled trace =
    with_trace trace @@ fun () ->
    let ( let* ) = Result.bind in
    let result =
      let* machine, level, program = compile_common file machine_name level_name in
      let* router = find_router router_name in
      let* mapper =
        match Layout.Config.strategy_of_string mapper_name with
        | Some s -> Ok s
        | None ->
          Error
            (Printf.sprintf "unknown mapper %S (expected %s)" mapper_name
               (String.concat ", " Layout.Config.strategy_names))
      in
      let* validate = find_validation validate in
      let config =
        Triq.Pass.Config.make ~day ~router ~mapper
          ~layout_cache:(not no_layout_cache) ~peephole ~validate ()
      in
      let* schedule = build_schedule ~config ~level passes disabled in
      Ok
        (Triq.Pipeline.compile_schedule ~config machine
           program.Scaffold.Lower.circuit schedule)
    in
    match result with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok compiled ->
      print_stats compiled;
      print_string (Backend.Emit.executable (Triq.Pipeline.to_compiled compiled));
      0
  in
  let doc = "Compile a Scaffold program to a vendor executable." in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const run $ file_arg $ machine_arg $ level_arg $ day_arg $ router_arg
      $ mapper_arg $ no_layout_cache_arg $ peephole_arg $ validate_arg
      $ passes_arg $ disable_arg $ trace_args)

let passes_cmd =
  let run () =
    print_endline "Registered passes (canonical names; timing keys and validator tags):";
    List.iter
      (fun (name, about) -> Printf.printf "  %-15s %s\n" name about)
      Triq.Pass.catalog;
    print_newline ();
    print_endline "Level schedules (Table 1; edit with --passes / --disable-pass):";
    List.iter
      (fun (s : Triq.Pass.Schedule.t) ->
        Printf.printf "  %-13s %s\n" s.Triq.Pass.Schedule.name
          (String.concat " > " (Triq.Pass.Schedule.pass_names s)))
      (Triq.Pass.Schedule.all ());
    0
  in
  let doc = "List the registered compiler passes and the named level schedules." in
  Cmd.v (Cmd.info "passes" ~doc) Term.(const run $ const ())

let simulate_cmd =
  let trials_arg =
    Arg.(value & opt int 8192 & info [ "trials" ] ~docv:"N" ~doc:"Shots per run.")
  in
  let trajectories_arg =
    Arg.(
      value & opt int 300
      & info [ "trajectories" ] ~docv:"N" ~doc:"Monte-Carlo noise trajectories.")
  in
  let backend_arg =
    let doc =
      "Simulation backend: $(b,auto) (default) runs Clifford-only circuits \
       on the polynomial-time stabilizer tableau and Clifford prefixes on a \
       tableau/statevector hybrid; $(b,statevector) forces the dense \
       backend; $(b,stabilizer) forces the tableau and rejects non-Clifford \
       circuits."
    in
    Arg.(
      value & opt string "auto" & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let no_fusion_arg =
    let doc =
      "Disable statevector gate fusion (1Q-run merging, diagonal batching, \
       permutation kernels) and execute gate by gate."
    in
    Arg.(value & flag & info [ "no-fusion" ] ~doc)
  in
  let run () file machine_name level_name day trials trajectories backend_name
      no_fusion trace =
    with_trace trace @@ fun () ->
    match
      ( compile_common file machine_name level_name,
        Sim.Runner.Config.backend_of_string backend_name )
    with
    | Error msg, _ ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok _, None ->
      Printf.eprintf
        "triqc: unknown backend %S (expected auto, statevector or stabilizer)\n"
        backend_name;
      1
    | Ok (machine, level, program), Some backend ->
      if program.Scaffold.Lower.measured = [] then begin
        Printf.eprintf "triqc: program has no measure statements\n";
        1
      end
      else begin
        let compiled =
          compile_at ~config:(Triq.Pass.Config.make ~day ()) machine level
            program.Scaffold.Lower.circuit
        in
        print_stats compiled;
        let measured = program.Scaffold.Lower.measured in
        let spec =
          match
            Sim.Runner.ideal_distribution
              (Ir.Circuit.body program.Scaffold.Lower.circuit)
              ~measured
          with
          | (bits, p) :: _ when p > 0.99 -> Ir.Spec.deterministic measured bits
          | dist -> Ir.Spec.distribution measured dist
        in
        let outcome =
          Sim.Runner.simulate
            ~config:
              (Sim.Runner.Config.make ~trials ~trajectories ~backend
                 ~fusion:(not no_fusion) ())
            (Triq.Pipeline.to_compiled compiled) spec
        in
        Printf.printf "success rate: %.4f (%s)\n" outcome.Sim.Runner.success_rate
          (if outcome.Sim.Runner.dominant_correct then "correct answer dominates"
           else "FAILED: wrong answer dominates");
        Printf.printf "top outcomes:\n";
        List.iteri
          (fun i (bits, n) ->
            if i < 8 then Printf.printf "  %s  %6d / %d\n" bits n outcome.Sim.Runner.trials)
          outcome.Sim.Runner.counts;
        0
      end
  in
  let doc = "Compile and execute on the noisy device model." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ jobs_arg $ file_arg $ machine_arg $ level_arg $ day_arg
      $ trials_arg $ trajectories_arg $ backend_arg $ no_fusion_arg
      $ trace_args)

let sweep_cmd =
  let run () file machine_name day trace =
    with_trace trace @@ fun () ->
    let ( let* ) = Result.bind in
    let result =
      let* machine = find_machine machine_name in
      let* program = load_program file in
      Ok (machine, program)
    in
    match result with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok (machine, program) ->
      if not (Device.Machine.fits machine program.Scaffold.Lower.circuit) then begin
        Printf.eprintf "triqc: program does not fit %s\n" machine.Device.Machine.name;
        1
      end
      else begin
        Printf.printf "%-14s %6s %8s %6s %8s %10s\n" "Level" "2Q" "pulses" "swaps"
          "ESP" "success";
        let spec =
          match
            Sim.Runner.ideal_distribution
              (Ir.Circuit.body program.Scaffold.Lower.circuit)
              ~measured:program.Scaffold.Lower.measured
          with
          | (bits, p) :: _ when p > 0.99 ->
            Some (Ir.Spec.deterministic program.Scaffold.Lower.measured bits)
          | _ -> None
        in
        List.iter
          (fun level ->
            let compiled =
              compile_at ~config:(Triq.Pass.Config.make ~day ()) machine level
                program.Scaffold.Lower.circuit
            in
            let success =
              match spec with
              | None -> "n/a"
              | Some spec ->
                Printf.sprintf "%.3f"
                  (Sim.Runner.simulate (Triq.Pipeline.to_compiled compiled) spec)
                    .Sim.Runner.success_rate
            in
            Printf.printf "%-14s %6d %8d %6d %8.4f %10s\n"
              (Triq.Pipeline.level_name level)
              compiled.Triq.Pipeline.two_q_count compiled.Triq.Pipeline.pulse_count
              compiled.Triq.Pipeline.swap_count compiled.Triq.Pipeline.esp success)
          Triq.Pipeline.all_levels;
        0
      end
  in
  let doc = "Compare all four optimization levels on one program (Table 1 sweep)." in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(const run $ jobs_arg $ file_arg $ machine_arg $ day_arg $ trace_args)

let draw_cmd =
  let compiled_arg =
    Arg.(value & flag & info [ "compiled" ] ~doc:"Draw the compiled hardware circuit instead of the program IR.")
  in
  let run file machine_name level_name day compiled_view =
    match compile_common file machine_name level_name with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok (machine, level, program) ->
      if compiled_view then begin
        let compiled =
          compile_at ~config:(Triq.Pass.Config.make ~day ()) machine level
            program.Scaffold.Lower.circuit
        in
        print_string (Ir.Draw.render compiled.Triq.Pipeline.hardware)
      end
      else begin
        let labels =
          List.map fst
            (List.sort
               (fun (_, a) (_, b) -> compare a b)
               program.Scaffold.Lower.qubit_names)
        in
        print_string
          (Ir.Draw.render ~wire_labels:labels program.Scaffold.Lower.circuit)
      end;
      0
  in
  let doc = "Draw a program (or its compiled form) as an ASCII circuit." in
  Cmd.v
    (Cmd.info "draw" ~doc)
    Term.(const run $ file_arg $ machine_arg $ level_arg $ day_arg $ compiled_arg)

let verify_cmd =
  let run file machine_name day =
    let ( let* ) = Result.bind in
    let result =
      let* machine = find_machine machine_name in
      let* program = load_program file in
      Ok (machine, program)
    in
    match result with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok (machine, program) ->
      if not (Device.Machine.fits machine program.Scaffold.Lower.circuit) then begin
        Printf.eprintf "triqc: program does not fit %s\n" machine.Device.Machine.name;
        1
      end
      else if program.Scaffold.Lower.measured = [] then begin
        Printf.eprintf "triqc: program has no measure statements to verify against\n";
        1
      end
      else begin
        let failures = ref 0 in
        List.iter
          (fun level ->
            let compiled =
              Triq.Pipeline.to_compiled
                (compile_at ~config:(Triq.Pass.Config.make ~day ()) machine level
                   program.Scaffold.Lower.circuit)
            in
            let result =
              Sim.Verify.check ~program:program.Scaffold.Lower.circuit
                ~measured:program.Scaffold.Lower.measured compiled
            in
            if result.Sim.Verify.equivalent then
              Printf.printf "%-14s OK   (noiseless outputs identical)\n"
                (Triq.Pipeline.level_name level)
            else begin
              incr failures;
              Printf.printf "%-14s FAIL (total variation %.6f)\n"
                (Triq.Pipeline.level_name level) result.Sim.Verify.total_variation
            end)
          Triq.Pipeline.all_levels;
        if !failures = 0 then 0 else 1
      end
  in
  let doc =
    "Verify that compilation preserves the program's semantics: compile at every \
     optimization level and compare noiseless outputs to the source program's."
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ file_arg $ machine_arg $ day_arg)

let convert_cmd =
  let run file =
    match load_program file with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok program ->
      print_string
        (Backend.Qasm_emit.emit_program
           ~name:(Printf.sprintf "converted from %s" (Filename.basename file))
           program.Scaffold.Lower.circuit);
      0
  in
  let doc = "Convert a program (Scaffold or QASM) to portable OpenQASM 2.0." in
  Cmd.v
    (Cmd.info "convert" ~doc)
    Term.(const run $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"))

let machines_cmd =
  let run () =
    List.iter
      (fun m -> Format.printf "%a@\n" Device.Machine.pp m)
      Device.Machines.all;
    0
  in
  let doc = "List the supported machines." in
  Cmd.v (Cmd.info "machines" ~doc) Term.(const run $ const ())

let info_cmd =
  let machine_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE" ~doc:"Machine name.")
  in
  let run machine_name day =
    match find_machine machine_name with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok machine ->
      Format.printf "%a@\n" Device.Machine.pp machine;
      Format.printf "topology: %a@\n" Device.Topology.pp
        machine.Device.Machine.topology;
      let cal = Device.Machine.calibration machine ~day in
      Format.printf "calibration (day %d):@\n" day;
      Array.iteri
        (fun q e ->
          Format.printf "  q%d: 1Q err %.4f, RO err %.4f@\n" q e
            (Device.Calibration.readout_err cal q))
        cal.Device.Calibration.one_q;
      List.iter
        (fun ((a, b), e) -> Format.printf "  %d-%d: 2Q err %.4f@\n" a b e)
        cal.Device.Calibration.two_q;
      0
  in
  let doc = "Describe a machine: topology and calibration data." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ machine_pos $ day_arg)

let pulse_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit OpenPulse-style JSON instead of the timing listing.")
  in
  let run file machine_name level_name day json =
    match compile_common file machine_name level_name with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok (machine, level, program) ->
      let compiled =
        compile_at ~config:(Triq.Pass.Config.make ~day ()) machine level
          program.Scaffold.Lower.circuit
      in
      print_stats compiled;
      let schedule = Pulse.Lower.of_compiled (Triq.Pipeline.to_compiled compiled) in
      Printf.eprintf "; schedule: %d pulses, %d frame changes, %.1f us\n"
        (Pulse.Schedule.play_count schedule)
        (Pulse.Schedule.frame_change_count schedule)
        (Pulse.Schedule.duration_ns schedule /. 1000.0);
      print_string
        (if json then Pulse.Emit.openpulse_json schedule else Pulse.Emit.text schedule);
      0
  in
  let doc = "Lower a Scaffold program all the way to a pulse schedule." in
  Cmd.v
    (Cmd.info "pulse" ~doc)
    Term.(const run $ file_arg $ machine_arg $ level_arg $ day_arg $ json_arg)

let characterize_cmd =
  let machine_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE" ~doc:"Machine name or JSON description.")
  in
  let run machine_name day =
    match find_machine machine_name with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok machine ->
      let calibration = Device.Machine.calibration machine ~day in
      let noise = Sim.Noise.create machine calibration in
      Printf.printf "Characterizing %s (day %d) by randomized benchmarking:\n\n"
        machine.Device.Machine.name day;
      Printf.printf "%-8s %12s %12s %12s\n" "Qubit" "1Q injected" "1Q recovered"
        "RO error";
      for q = 0 to Device.Machine.n_qubits machine - 1 do
        let injected = Sim.Noise.gate_error_prob noise (Ir.Gate.One (Ir.Gate.X, q)) in
        let rb = Characterize.Benchmarking.one_qubit machine ~day ~qubit:q in
        let ro = Characterize.Benchmarking.readout machine ~day ~qubit:q in
        Printf.printf "%-8d %12.5f %12.5f %12.5f\n" q injected
          rb.Characterize.Benchmarking.error_per_gate
          ro.Characterize.Benchmarking.error
      done;
      Printf.printf "\n%-10s %12s %12s\n" "Coupling" "2Q injected" "2Q recovered";
      List.iter
        (fun (a, b) ->
          let injected =
            Sim.Noise.gate_error_prob noise (Ir.Gate.Two (Ir.Gate.Cnot, a, b))
          in
          let rb = Characterize.Benchmarking.two_qubit machine ~day ~a ~b in
          Printf.printf "%-10s %12.5f %12.5f\n"
            (Printf.sprintf "%d-%d" a b)
            injected rb.Characterize.Benchmarking.error_per_gate)
        (Device.Topology.edges machine.Device.Machine.topology);
      0
  in
  let doc = "Estimate a machine's error rates by randomized benchmarking." in
  Cmd.v (Cmd.info "characterize" ~doc) Term.(const run $ machine_pos $ day_arg)

let export_cmd =
  let machine_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE" ~doc:"Machine name.")
  in
  let run machine_name =
    match find_machine machine_name with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1
    | Ok machine ->
      print_string (Device.Machine_io.to_string machine);
      0
  in
  let doc = "Export a machine description as JSON (edit it, then pass the file as -m)." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ machine_pos)

let lint_cmd =
  let machine_opt =
    let doc =
      "Also compile for MACHINE (built-in name or JSON description) with the \
       pass-invariant validator enabled, and audit the finished executable."
    in
    Arg.(value & opt (some string) None & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)
  in
  let all_levels_arg =
    Arg.(
      value & flag
      & info [ "all-levels" ]
          ~doc:"With -m, validate every optimization level instead of just -O.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON envelope {ok, command, data} with all diagnostics \
             instead of text.")
  in
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Add the dataflow lints (dead.gate, opt.missed) on the program, \
             and (with -m) upgrade the pass validator to deep translation \
             validation (live.mismatch, clifford.mismatch). 'triqc check' is \
             the analysis-first view of the same engine.")
  in
  let run file machine_spec level_name day all_levels deep json =
    let ( let* ) = Result.bind in
    let result =
      (* Source-level lints (Scaffold only; QASM input skips straight to the
         compile-time checks). *)
      let* source_diags =
        if Filename.check_suffix file ".qasm" then Ok []
        else
          try Ok (Analysis.Scaffold_lint.lint_file file)
          with Sys_error msg -> Error msg
      in
      (* Dataflow lints over the program itself (--deep, any input kind). *)
      let* dataflow_diags =
        if (not deep) || Analysis.Diag.has_errors source_diags then Ok []
        else
          let* program = load_program file in
          Ok (Dataflow.Analyze.lints ~layer:"dataflow" program.Scaffold.Lower.circuit)
      in
      (* Compile-time validation, only when a target is named and the source
         itself is not already broken. *)
      let* compile_diags =
        match machine_spec with
        | None -> Ok []
        | Some _ when Analysis.Diag.has_errors source_diags -> Ok []
        | Some spec ->
          let* machine = find_machine spec in
          let* level = find_level level_name in
          let* program = load_program file in
          let* () =
            if Device.Machine.fits machine program.Scaffold.Lower.circuit then Ok ()
            else
              Error
                (Printf.sprintf "program needs %d qubits; %s has %d"
                   program.Scaffold.Lower.circuit.Ir.Circuit.n_qubits
                   machine.Device.Machine.name
                   (Device.Machine.n_qubits machine))
          in
          let levels = if all_levels then Triq.Pipeline.all_levels else [ level ] in
          let validate =
            if deep then Triq.Pass.Config.Deep else Triq.Pass.Config.Shape
          in
          Ok
            (List.concat_map
               (fun level ->
                 match
                   compile_at ~config:(Triq.Pass.Config.make ~day ~validate ())
                     machine level program.Scaffold.Lower.circuit
                 with
                 | compiled ->
                   Triq.Validate.check_pipeline
                     ~measured:program.Scaffold.Lower.measured compiled
                 | exception Analysis.Diag.Violation (_, diags) -> diags)
               levels)
      in
      Ok
        (List.sort_uniq Analysis.Diag.compare
           (source_diags @ dataflow_diags @ compile_diags))
    in
    match result with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      2
    | Ok diags ->
      let errors = Analysis.Diag.error_count diags in
      let warnings = List.length diags - errors in
      if json then
        (* [ok] is the domain outcome (no error-severity findings); the
           exit code stays the authoritative pass/fail signal. *)
        Obs.Output.print ~ok:(errors = 0) ~command:"lint"
          (Obs.Json.Obj
             [
               ( "diagnostics",
                 Obs.Json.List
                   (List.map
                      (fun d -> Obs.Json.Raw (Analysis.Diag.to_json d))
                      diags) );
               ("errors", Obs.Json.Int errors);
               ("warnings", Obs.Json.Int warnings);
             ])
      else begin
        List.iter (fun d -> print_endline (Analysis.Diag.render d)) diags;
        Printf.eprintf "triqc lint: %d error(s), %d warning(s)\n" errors warnings
      end;
      if errors > 0 then 1 else 0
  in
  let doc =
    "Run the static checks: Scaffold source lints, plus (with -m) a full \
     compilation under the pass-invariant validator and a structural audit of \
     the resulting executable. --deep adds the dataflow lints and per-pass \
     translation validation (see also 'triqc check'). Exits 1 if any \
     error-severity diagnostic fires."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const run $ file_arg $ machine_opt $ level_arg $ day_arg $ all_levels_arg
      $ deep_arg $ json_arg)

(* triqc check: the analysis-first face of lib/dataflow. Always reports
   the four abstract-domain summaries over the program; with -m it also
   recompiles under deep validation and reports, per level, whether
   every pass preserved readout liveness and (for Clifford programs)
   the stabilizer state. *)
let check_cmd =
  let machine_opt =
    let doc =
      "Compile for MACHINE (built-in name or JSON description) with deep \
       translation validation armed, reporting per-level results."
    in
    Arg.(value & opt (some string) None & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)
  in
  let all_levels_arg =
    Arg.(
      value & flag
      & info [ "all-levels" ]
          ~doc:"With -m, validate every optimization level instead of just -O.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON envelope {ok, command, data} with the analysis \
             summary, validation results and diagnostics instead of text.")
  in
  let run file machine_spec level_name day all_levels json =
    let ( let* ) = Result.bind in
    let result =
      let* program = load_program file in
      let circuit = program.Scaffold.Lower.circuit in
      let summary = Dataflow.Analyze.summarize circuit in
      let lints = Dataflow.Analyze.lints ~layer:"dataflow" circuit in
      let* validation =
        match machine_spec with
        | None -> Ok []
        | Some spec ->
          let* machine = find_machine spec in
          let* level = find_level level_name in
          let* () =
            if Device.Machine.fits machine circuit then Ok ()
            else
              Error
                (Printf.sprintf "program needs %d qubits; %s has %d"
                   circuit.Ir.Circuit.n_qubits machine.Device.Machine.name
                   (Device.Machine.n_qubits machine))
          in
          let levels = if all_levels then Triq.Pipeline.all_levels else [ level ] in
          let config = Triq.Pass.Config.make ~day ~validate:Triq.Pass.Config.Deep () in
          Ok
            (List.map
               (fun level ->
                 match compile_at ~config machine level circuit with
                 | compiled ->
                   ( Triq.Pipeline.level_name level,
                     List.length compiled.Triq.Pipeline.pass_times_s,
                     [] )
                 | exception Analysis.Diag.Violation (pass, diags) ->
                   (Triq.Pipeline.level_name level, 0, List.map (fun d -> (pass, d)) diags))
               levels)
      in
      Ok (summary, lints, validation)
    in
    match result with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      2
    | Ok (summary, lints, validation) ->
      let validation_diags = List.concat_map (fun (_, _, ds) -> List.map snd ds) validation in
      let diags = List.sort_uniq Analysis.Diag.compare (lints @ validation_diags) in
      let errors = Analysis.Diag.error_count diags in
      let findings = List.length diags - errors in
      if json then
        Obs.Output.print ~ok:(errors = 0) ~command:"check"
          (Obs.Json.Obj
             [
               ("file", Obs.Json.Str file);
               ("analysis", Dataflow.Analyze.summary_json summary);
               ( "validation",
                 Obs.Json.List
                   (List.map
                      (fun (level, passes, ds) ->
                        Obs.Json.Obj
                          [
                            ("level", Obs.Json.Str level);
                            ("ok", Obs.Json.Bool (ds = []));
                            ("passes", Obs.Json.Int passes);
                            ("violations", Obs.Json.Int (List.length ds));
                          ])
                      validation) );
               ( "diagnostics",
                 Obs.Json.List
                   (List.map (fun d -> Obs.Json.Raw (Analysis.Diag.to_json d)) diags)
               );
               ("errors", Obs.Json.Int errors);
               ("findings", Obs.Json.Int findings);
             ])
      else begin
        Printf.printf "dataflow analysis: %s\n" file;
        List.iter (fun l -> Printf.printf "  %s\n" l) (Dataflow.Analyze.summary_text summary);
        if validation <> [] then begin
          Printf.printf "translation validation (day %d):\n" day;
          List.iter
            (fun (level, passes, ds) ->
              match ds with
              | [] -> Printf.printf "  %-13s ok (%d passes)\n" level passes
              | (pass, _) :: _ ->
                Printf.printf "  %-13s FAIL at pass %s (%d violation(s))\n" level
                  pass (List.length ds))
            validation
        end;
        List.iter (fun d -> print_endline (Analysis.Diag.render d)) diags;
        Printf.eprintf "triqc check: %d error(s), %d finding(s)\n" errors findings
      end;
      if errors > 0 then 1 else 0
  in
  let doc =
    "Run the semantic dataflow engine over a program: Clifford tableau, \
     qubit liveness, entanglement partition and phase-merge facts, plus \
     (with -m) per-pass translation validation of the compiled result. \
     Exits 1 if any error-severity diagnostic fires."
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ file_arg $ machine_opt $ level_arg $ day_arg $ all_levels_arg
      $ json_arg)

let metrics_cmd =
  let simulate_arg =
    Arg.(
      value & flag
      & info [ "simulate" ]
          ~doc:
            "Also execute the compiled program on the noisy device model, so \
             the simulator and pool metrics accumulate too.")
  in
  let trajectories_arg =
    Arg.(
      value & opt int 300
      & info [ "trajectories" ] ~docv:"N"
          ~doc:"Monte-Carlo noise trajectories (with --simulate).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the registry as a single JSON envelope instead of text.")
  in
  let run () file machine_name level_name day do_simulate trajectories json =
    Obs.Metrics.enable ();
    match compile_common file machine_name level_name with
    | Error msg ->
      Printf.eprintf "triqc: %s\n" msg;
      2
    | Ok (machine, level, program) ->
      let compiled =
        compile_at ~config:(Triq.Pass.Config.make ~day ()) machine level
          program.Scaffold.Lower.circuit
      in
      let simulated =
        if not do_simulate then Ok ()
        else if program.Scaffold.Lower.measured = [] then
          Error "program has no measure statements to simulate"
        else begin
          let measured = program.Scaffold.Lower.measured in
          let spec =
            match
              Sim.Runner.ideal_distribution
                (Ir.Circuit.body program.Scaffold.Lower.circuit)
                ~measured
            with
            | (bits, p) :: _ when p > 0.99 -> Ir.Spec.deterministic measured bits
            | dist -> Ir.Spec.distribution measured dist
          in
          ignore
            (Sim.Runner.simulate
               ~config:(Sim.Runner.Config.make ~trajectories ())
               (Triq.Pipeline.to_compiled compiled)
               spec);
          Ok ()
        end
      in
      (match simulated with
      | Error msg ->
        Printf.eprintf "triqc: %s\n" msg;
        2
      | Ok () ->
        let dump = Obs.Metrics.dump () in
        if json then
          Obs.Output.print ~ok:true ~command:"metrics"
            (Obs.Export.metrics_json dump)
        else print_string (Obs.Export.metrics_text dump);
        0)
  in
  let doc =
    "Compile a program (and with --simulate, execute it) with the metrics \
     registry enabled, then dump every counter, gauge, and histogram: pass \
     runs, reliability-cache hits/misses, pool queue-wait and busy times, \
     simulated trajectory volume."
  in
  Cmd.v
    (Cmd.info "metrics" ~doc)
    Term.(
      const run $ jobs_arg $ file_arg $ machine_arg $ level_arg $ day_arg
      $ simulate_arg $ trajectories_arg $ json_arg)

let bench_cmd =
  let run_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run" ] ~docv:"MACHINE"
          ~doc:"Compile and execute every fitting benchmark on MACHINE (name or JSON file), printing success rates.")
  in
  let run () machine_spec day =
    match machine_spec with
    | None ->
      List.iter
        (fun (p : Bench_kit.Programs.t) ->
          let flat = Ir.Decompose.flatten p.Bench_kit.Programs.circuit in
          Printf.printf "%-10s %2d qubits, %3d 1Q, %2d 2Q  %s\n"
            p.Bench_kit.Programs.name
            p.Bench_kit.Programs.circuit.Ir.Circuit.n_qubits
            (Ir.Circuit.one_q_count flat) (Ir.Circuit.two_q_count flat)
            p.Bench_kit.Programs.description)
        (Bench_kit.Programs.all @ Bench_kit.Programs.extras);
      0
    | Some spec -> (
      match find_machine spec with
      | Error msg ->
        Printf.eprintf "triqc: %s\n" msg;
        1
      | Ok machine ->
        Printf.printf "%-10s %6s %8s %8s %10s\n" "Benchmark" "2Q" "ESP" "success"
          "dominates";
        List.iter
          (fun (p : Bench_kit.Programs.t) ->
            if Device.Machine.fits machine p.Bench_kit.Programs.circuit then begin
              let compiled =
                compile_at ~config:(Triq.Pass.Config.make ~day ()) machine
                  Triq.Pipeline.OneQOptCN p.Bench_kit.Programs.circuit
              in
              let outcome =
                Sim.Runner.simulate
                  (Triq.Pipeline.to_compiled compiled)
                  p.Bench_kit.Programs.spec
              in
              Printf.printf "%-10s %6d %8.3f %8.3f %10s\n" p.Bench_kit.Programs.name
                compiled.Triq.Pipeline.two_q_count compiled.Triq.Pipeline.esp
                outcome.Sim.Runner.success_rate
                (if outcome.Sim.Runner.dominant_correct then "yes" else "NO")
            end
            else Printf.printf "%-10s %6s\n" p.Bench_kit.Programs.name "X")
          Bench_kit.Programs.all;
        0)
  in
  let doc = "List the built-in benchmarks, or run them all on a machine (--run)." in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ jobs_arg $ run_arg $ day_arg)

let fuzz_cmd =
  let seed_arg =
    let doc = "Seed for the generator. The same seed replays the same cases." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let cases_arg =
    let doc = "Number of generated cases per oracle." in
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let oracle_arg =
    let doc =
      "Run a single oracle (roundtrip, semantic, dataflow, schedule, \
       determinism, clifford, layout) instead of the whole catalog."
    in
    Arg.(value & opt (some string) None & info [ "oracle" ] ~docv:"ORACLE" ~doc)
  in
  let json_arg =
    let doc =
      "Emit one JSON envelope {ok, command, data} with all oracle reports \
       instead of text."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () seed cases oracle json =
    if cases < 1 then begin
      Printf.eprintf "triqc: --cases expects a positive count, got %d\n" cases;
      2
    end
    else begin
      let reports =
        match oracle with
        | None -> Ok (Proptest.Oracle.run_all ~seed ~cases)
        | Some name -> (
          match Proptest.Oracle.run ~seed ~cases name with
          | Ok r -> Ok [ r ]
          | Error msg -> Error msg)
      in
      match reports with
      | Error msg ->
        Printf.eprintf "triqc: %s\n" msg;
        2
      | Ok reports ->
        let failed =
          List.exists (fun r -> r.Proptest.Oracle.failure <> None) reports
        in
        if json then
          Obs.Output.print ~ok:(not failed) ~command:"fuzz"
            (Obs.Json.Obj
               [
                 ( "reports",
                   Obs.Json.List
                     (List.map
                        (fun r -> Obs.Json.Raw (Proptest.Oracle.report_json r))
                        reports) );
               ])
        else List.iter (fun r -> print_endline (Proptest.Oracle.report_text r)) reports;
        if failed then 1 else 0
    end
  in
  let doc =
    "Differential-test the full stack on generated circuits: emit/parse \
     round-trips, statevector-vs-density agreement, schedule semantic \
     preservation, and cross-pool determinism. On failure, exits 1 and \
     prints the shrunk counterexample as a paste-ready test case."
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(const run $ jobs_arg $ seed_arg $ cases_arg $ oracle_arg $ json_arg)

let () =
  let doc = "TriQ: a multi-vendor noise-adaptive quantum compiler." in
  let info = Cmd.info "triqc" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ compile_cmd; simulate_cmd; pulse_cmd; sweep_cmd; verify_cmd; lint_cmd; check_cmd; passes_cmd; draw_cmd; convert_cmd; machines_cmd; info_cmd; export_cmd; characterize_cmd; metrics_cmd; bench_cmd; fuzz_cmd ]
  in
  (* Every subcommand compiles, so handle validator violations uniformly
     here rather than per command. *)
  exit
    (try Cmd.eval' ~catch:false group with
    | Analysis.Diag.Violation (pass, diags) ->
      Printf.eprintf "triqc: internal validation failed after %s:\n" pass;
      List.iter (fun d -> Printf.eprintf "  %s\n" (Analysis.Diag.render d)) diags;
      1
    | Invalid_argument msg ->
      Printf.eprintf "triqc: %s\n" msg;
      1)
