(* Cross-platform compilation: the same source program compiled for all
   seven machines of the study — two qubit technologies, three vendors,
   three executable formats — through the one shared toolflow.

   This is the paper's central capability: device characteristics are
   compiler *inputs*, so retargeting means swapping the machine
   description, not the compiler.

   Run with: dune exec examples/cross_platform.exe *)

let program = Bench_kit.Programs.toffoli

let () =
  Printf.printf "Benchmark: %s — %s\n\n" program.Bench_kit.Programs.name
    program.Bench_kit.Programs.description;
  List.iter
    (fun machine ->
      if Device.Machine.fits machine program.Bench_kit.Programs.circuit then begin
        let compiled =
          Triq.Pipeline.compile_level machine program.Bench_kit.Programs.circuit
            ~level:Triq.Pipeline.OneQOptCN
        in
        let as_compiled = Triq.Pipeline.to_compiled compiled in
        let outcome = Sim.Runner.simulate as_compiled program.Bench_kit.Programs.spec in
        Printf.printf
          "%-8s %-12s  2Q=%2d  pulses=%3d  swaps=%d  ESP=%.3f  success=%.3f\n"
          machine.Device.Machine.name
          (Backend.Emit.format_name as_compiled)
          compiled.Triq.Pipeline.two_q_count compiled.Triq.Pipeline.pulse_count
          compiled.Triq.Pipeline.swap_count compiled.Triq.Pipeline.esp
          outcome.Sim.Runner.success_rate
      end
      else
        Printf.printf "%-8s (program does not fit)\n" machine.Device.Machine.name)
    Device.Machines.all;

  (* Show the three executable formats side by side for the smallest
     machine of each vendor. *)
  List.iter
    (fun machine ->
      let compiled =
        Triq.Pipeline.compile_level machine program.Bench_kit.Programs.circuit
          ~level:Triq.Pipeline.OneQOptCN
      in
      let as_compiled = Triq.Pipeline.to_compiled compiled in
      Printf.printf "\n--- %s (%s) ---\n%s"
        machine.Device.Machine.name
        (Backend.Emit.format_name as_compiled)
        (Backend.Emit.executable as_compiled))
    [ Device.Machines.ibmq5; Device.Machines.agave; Device.Machines.umdti ]
