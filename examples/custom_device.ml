(* Custom devices end to end: the paper's thesis is that device
   characteristics are *inputs*, so supporting a brand-new machine means
   writing a description, not a compiler. This example

   1. defines a hypothetical 10-qubit ladder device in code,
   2. round-trips it through the JSON description format (what
      `triqc export` / `-m file.json` use),
   3. characterizes it with randomized benchmarking (recovering the error
      rates a lab would publish as calibration data),
   4. compiles and runs the benchmark suite on it,
   5. and compares two manufacturing variants of the same design.

   Run with: dune exec examples/custom_device.exe *)

let ladder ~name ~two_q_err ~seed =
  (* A 2x5 ladder: two rails with rungs. *)
  let rail = List.init 4 (fun i -> (i, i + 1)) in
  let edges =
    rail
    @ List.map (fun (a, b) -> (a + 5, b + 5)) rail
    @ List.init 5 (fun i -> (i, i + 5))
  in
  Device.Machine.create ~name ~basis:Device.Gateset.Rigetti_visible
    ~topology:(Device.Topology.create 10 edges ~directed:false)
    ~profile:
      {
        Device.Calibration.avg_one_q_err = 0.001;
        avg_two_q_err = two_q_err;
        avg_readout_err = 0.02;
        coherence_us = 60.0;
        one_q_time_us = 0.04;
        two_q_time_us = 0.2;
        spatial_sigma = 0.4;
        temporal_sigma = 0.25;
        two_q_scale = None;
      }
    ~seed

let () =
  let machine = ladder ~name:"Ladder10" ~two_q_err:0.02 ~seed:77 in

  (* The JSON description a user would commit next to their code. *)
  let json = Device.Machine_io.to_string machine in
  Printf.printf "Machine description (save as ladder10.json, pass as -m):\n%s\n" json;
  let machine = Device.Machine_io.of_string json in

  (* Characterize it the way a lab would. *)
  let rb1 = Characterize.Benchmarking.one_qubit machine ~day:0 ~qubit:0 in
  let rb2 = Characterize.Benchmarking.two_qubit machine ~day:0 ~a:0 ~b:1 in
  Printf.printf "Randomized benchmarking: 1Q error %.4f, 2Q error (0-1) %.4f\n\n"
    rb1.Characterize.Benchmarking.error_per_gate
    rb2.Characterize.Benchmarking.error_per_gate;

  (* Run the paper's benchmark suite on it. *)
  Printf.printf "%-10s %6s %8s %8s\n" "Benchmark" "2Q" "ESP" "success";
  List.iter
    (fun (p : Bench_kit.Programs.t) ->
      if Device.Machine.fits machine p.Bench_kit.Programs.circuit then begin
        let compiled =
          Triq.Pipeline.compile_level machine p.Bench_kit.Programs.circuit
            ~level:Triq.Pipeline.OneQOptCN
        in
        let outcome =
          Sim.Runner.simulate (Triq.Pipeline.to_compiled compiled)
            p.Bench_kit.Programs.spec
        in
        Printf.printf "%-10s %6d %8.3f %8.3f\n" p.Bench_kit.Programs.name
          compiled.Triq.Pipeline.two_q_count compiled.Triq.Pipeline.esp
          outcome.Sim.Runner.success_rate
      end)
    Bench_kit.Programs.all;

  (* Same design, different manufacturing luck: only the seed differs. *)
  Printf.printf "\nManufacturing variants of the same design (BV6 success):\n";
  List.iter
    (fun seed ->
      let variant = ladder ~name:(Printf.sprintf "Ladder10-s%d" seed) ~two_q_err:0.02 ~seed in
      let p = Bench_kit.Programs.bv 6 in
      let compiled =
        Triq.Pipeline.compile_level variant p.Bench_kit.Programs.circuit
          ~level:Triq.Pipeline.OneQOptCN
      in
      let outcome =
        Sim.Runner.simulate (Triq.Pipeline.to_compiled compiled) p.Bench_kit.Programs.spec
      in
      Printf.printf "  seed %3d: success %.3f (ESP %.3f)\n" seed
        outcome.Sim.Runner.success_rate compiled.Triq.Pipeline.esp)
    [ 77; 78; 79; 80 ]
