(* Error-budget walkthrough: where does a program's success probability
   go, and what does each optimization level buy back?

   For one benchmark on one machine this prints the circuit, then for
   every optimization level the ESP decomposed into 2Q-gate, 1Q-pulse and
   readout survival — making the paper's "2Q and RO operations dominate"
   observation (Section 4.2) quantitative per program.

   Run with: dune exec examples/error_budget.exe *)

let () =
  let machine = Device.Machines.ibmq14 in
  let p = Bench_kit.Programs.bv 6 in
  Printf.printf "%s on %s\n\n" p.Bench_kit.Programs.name
    machine.Device.Machine.name;
  Printf.printf "Program circuit:\n%s\n"
    (Ir.Draw.render p.Bench_kit.Programs.circuit);
  Printf.printf "%-14s %8s %10s %10s %10s %10s\n" "Level" "2Q" "2Q surv"
    "1Q surv" "RO surv" "ESP";
  List.iter
    (fun level ->
      let compiled =
        Triq.Pipeline.compile_level machine p.Bench_kit.Programs.circuit ~level
      in
      let budget = Triq.Compiled.budget_of (Triq.Pipeline.to_compiled compiled) in
      Printf.printf "%-14s %8d %10.3f %10.3f %10.3f %10.3f\n"
        (Triq.Pipeline.level_name level)
        compiled.Triq.Pipeline.two_q_count budget.Triq.Compiled.two_q
        budget.Triq.Compiled.one_q budget.Triq.Compiled.readout
        compiled.Triq.Pipeline.esp)
    Triq.Pipeline.all_levels;
  print_newline ();
  (* Decompose the best executable's losses and check against measured
     success. *)
  let compiled =
    Triq.Pipeline.compile_level machine p.Bench_kit.Programs.circuit
      ~level:Triq.Pipeline.OneQOptCN
  in
  let outcome =
    Sim.Runner.simulate (Triq.Pipeline.to_compiled compiled) p.Bench_kit.Programs.spec
  in
  let budget = Triq.Compiled.budget_of (Triq.Pipeline.to_compiled compiled) in
  Printf.printf
    "TriQ-1QOptCN loses %.1f%% to 2Q gates, %.1f%% to 1Q pulses, %.1f%% to readout.\n"
    (100.0 *. (1.0 -. budget.Triq.Compiled.two_q))
    (100.0 *. (1.0 -. budget.Triq.Compiled.one_q))
    (100.0 *. (1.0 -. budget.Triq.Compiled.readout));
  Printf.printf "ESP %.3f vs measured success %.3f.\n" compiled.Triq.Pipeline.esp
    outcome.Sim.Runner.success_rate
