(* Noise-adaptive recompilation: IBM machines are recalibrated daily and
   their error rates move by large factors (Figure 3). This example
   compiles the same benchmark against five different calibration days,
   with and without noise awareness, and shows that (a) recompiling
   against fresh calibration data keeps success high, and (b) a
   noise-unaware executable's quality is at the mercy of the day's noise.

   Run with: dune exec examples/noise_adaptive.exe *)

let () =
  let machine = Device.Machines.ibmq14 in
  let program = Bench_kit.Programs.hidden_shift 4 in
  Printf.printf "%s on %s, five calibration days\n\n"
    program.Bench_kit.Programs.name machine.Device.Machine.name;
  Printf.printf "%-5s  %-22s  %-22s\n" "Day" "TriQ-1QOptC (unaware)" "TriQ-1QOptCN (aware)";
  let rates_c = ref [] and rates_cn = ref [] in
  for day = 0 to 4 do
    let success level =
      let compiled =
        Triq.Pipeline.compile_level ~config:(Triq.Pass.Config.make ~day ()) machine
          program.Bench_kit.Programs.circuit ~level
      in
      let outcome =
        Sim.Runner.simulate (Triq.Pipeline.to_compiled compiled)
          program.Bench_kit.Programs.spec
      in
      outcome.Sim.Runner.success_rate
    in
    let c = success Triq.Pipeline.OneQOptC in
    let cn = success Triq.Pipeline.OneQOptCN in
    rates_c := c :: !rates_c;
    rates_cn := cn :: !rates_cn;
    Printf.printf "%-5d  %-22.3f  %-22.3f\n" day c cn
  done;
  Printf.printf "\nmean: unaware %.3f, aware %.3f (%.2fx)\n"
    (Mathkit.Stats.mean !rates_c)
    (Mathkit.Stats.mean !rates_cn)
    (Mathkit.Stats.mean !rates_cn /. Mathkit.Stats.mean !rates_c);

  (* The placements actually differ day to day: print where the noise-
     aware mapper put the program each day. *)
  Printf.printf "\nNoise-aware placements per day (program qubit -> hardware qubit):\n";
  for day = 0 to 4 do
    let compiled =
      Triq.Pipeline.compile_level ~config:(Triq.Pass.Config.make ~day ()) machine
        program.Bench_kit.Programs.circuit ~level:Triq.Pipeline.OneQOptCN
    in
    let pl = compiled.Triq.Pipeline.initial_placement in
    Printf.printf "  day %d: %s\n" day
      (String.concat ", "
         (List.mapi (fun p h -> Printf.sprintf "%d->%d" p h) (Array.to_list pl)))
  done
