(* Pulse-level lowering (Section 7 of the paper): after gate-level
   compilation, drive the stack one layer further down — to timed pulse
   schedules in each vendor's control vocabulary. Virtual-Z rotations
   become zero-duration frame changes; IBM U gates become DRAG X90
   pulses; CNOTs become echoed cross-resonance sequences; trapped-ion
   gates become Raman tones and Moelmer-Soerensen interactions.

   Run with: dune exec examples/pulse_level.exe *)

let () =
  let program = Bench_kit.Programs.hidden_shift 2 in
  Printf.printf "Benchmark: %s\n" program.Bench_kit.Programs.name;
  List.iter
    (fun machine ->
      let compiled =
        Triq.Pipeline.to_compiled
          (Triq.Pipeline.compile_level machine program.Bench_kit.Programs.circuit
             ~level:Triq.Pipeline.OneQOptCN)
      in
      let schedule = Pulse.Lower.of_compiled compiled in
      Printf.printf
        "\n=== %s ===\n%d gate-level pulses -> %d physical pulses, %d frame changes, %.1f us\n\n"
        machine.Device.Machine.name compiled.Triq.Compiled.pulse_count
        (Pulse.Schedule.play_count schedule)
        (Pulse.Schedule.frame_change_count schedule)
        (Pulse.Schedule.duration_ns schedule /. 1000.0);
      print_string (Pulse.Emit.text schedule))
    [ Device.Machines.ibmq5; Device.Machines.agave; Device.Machines.umdti ];
  print_newline ();
  print_endline "OpenPulse-style JSON for the IBM schedule:";
  let compiled =
    Triq.Pipeline.to_compiled
      (Triq.Pipeline.compile_level Device.Machines.ibmq5
         program.Bench_kit.Programs.circuit ~level:Triq.Pipeline.OneQOptCN)
  in
  print_string (Pulse.Emit.openpulse_json (Pulse.Lower.of_compiled compiled))
