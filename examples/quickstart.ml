(* Quickstart: compile a small program for a real machine model, look at
   the generated OpenQASM, and measure its success rate under the
   machine's calibrated noise.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Write a program. Either build IR directly, or parse Scaffold
     source; here we use the Scaffold front end. *)
  let source =
    {|
      // Bernstein-Vazirani, hidden string 111.
      module main() {
        qbit q[4];
        X(q[3]);
        for i in 0..4 { H(q[i]); }
        for i in 0..3 { CNOT(q[i], q[3]); }
        for i in 0..3 { H(q[i]); }
        for i in 0..3 { measure(q[i]); }
      }
    |}
  in
  let program = Scaffold.Lower.compile_string source in
  Format.printf "Program IR:@\n%a@\n" Ir.Circuit.pp program.Scaffold.Lower.circuit;

  (* 2. Pick a machine and compile with full optimization (Table 1's
     TriQ-1QOptCN: 1Q coalescing + communication + noise adaptivity). *)
  let machine = Device.Machines.ibmq5 in
  let compiled =
    Triq.Pipeline.compile_level machine program.Scaffold.Lower.circuit
      ~level:Triq.Pipeline.OneQOptCN
  in
  Printf.printf "Compiled for %s: %d 2Q gates, %d pulses, %d swaps, ESP %.3f\n\n"
    machine.Device.Machine.name compiled.Triq.Pipeline.two_q_count
    compiled.Triq.Pipeline.pulse_count compiled.Triq.Pipeline.swap_count
    compiled.Triq.Pipeline.esp;

  (* 3. Emit the vendor executable (OpenQASM for IBM machines). *)
  let executable = Backend.Emit.executable (Triq.Pipeline.to_compiled compiled) in
  Printf.printf "Generated %s:\n%s\n"
    (Backend.Emit.format_name (Triq.Pipeline.to_compiled compiled))
    executable;

  (* 4. Execute on the noisy device model and score against the known
     answer (the hidden string). *)
  let spec = Ir.Spec.deterministic program.Scaffold.Lower.measured "111" in
  let outcome = Sim.Runner.simulate (Triq.Pipeline.to_compiled compiled) spec in
  Printf.printf "Success rate on %s: %.3f (%d trials)\n"
    machine.Device.Machine.name outcome.Sim.Runner.success_rate
    outcome.Sim.Runner.trials;
  List.iteri
    (fun i (bits, n) ->
      if i < 4 then Printf.printf "  %s: %d\n" bits n)
    outcome.Sim.Runner.counts
