(* Scaling study (Section 6.5): compile quantum-supremacy-style circuits
   for Bristlecone-grid devices from 16 up to 72 qubits — the largest
   announced NISQ configuration at the time of the paper — and report
   toolflow runtime. The mapper stays fast because it only creates work
   proportional to the number of *distinct* 2Q pairs, not gate count.

   Run with: dune exec examples/scaling_study.exe *)

let () =
  Printf.printf "%-6s %-7s %-10s %-10s %-12s %-10s\n" "Grid" "Qubits" "2Q (IR)"
    "2Q (hw)" "Swaps" "Compile(s)";
  List.iter
    (fun (rows, cols, depth) ->
      let machine = Device.Machines.bristlecone rows cols in
      let circuit =
        Bench_kit.Supremacy.circuit ~seed:42 ~rows ~cols ~depth
      in
      let t0 = Sys.time () in
      let compiled =
        Triq.Pipeline.compile_level
          ~config:(Triq.Pass.Config.make ~node_budget:20_000 ())
          machine circuit
          ~level:Triq.Pipeline.OneQOptCN
      in
      Printf.printf "%-6s %-7d %-10d %-10d %-12d %-10.3f\n"
        (Printf.sprintf "%dx%d" rows cols)
        (rows * cols)
        (Bench_kit.Supremacy.two_q_count circuit)
        compiled.Triq.Pipeline.two_q_count compiled.Triq.Pipeline.swap_count
        (Sys.time () -. t0))
    [
      (4, 4, 16); (5, 5, 16); (6, 6, 16); (6, 9, 16); (6, 12, 16); (6, 12, 128);
    ];
  Printf.printf
    "\nThe 6x12 grid at depth 128 is the paper's largest configuration\n\
     (72 qubits, ~2000 two-qubit gates).\n"
