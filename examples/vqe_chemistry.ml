(* Variational quantum eigensolver for molecular hydrogen — the chemistry
   workload the paper's introduction motivates (Kandala et al., Peruzzo
   et al.). A two-qubit H2 Hamiltonian (Bravyi-Kitaev reduced, STO-3G,
   R = 0.74 A; representative coefficient set — the exact ground energy of
   this Hamiltonian is computed in-code for comparison):

     H = g0*I + g1*Z0 + g2*Z1 + g3*Z0Z1 + g4*X0X1 + g5*Y0Y1

   The ansatz |psi(theta)> = exp(-i theta X0 Y1) |01> is compiled and
   executed on the noisy device models; each Hamiltonian term is measured
   with its own basis-rotation circuit, and expectations come from output
   distributions (with readout-error mitigation). Sweeping theta traces
   the energy curve; the minimum approximates the ground-state energy.

   Run with: dune exec examples/vqe_chemistry.exe *)

let g0 = -0.4804
let g1 = 0.3435
let g2 = -0.4347
let g3 = 0.5716
let g4 = 0.0910
let g5 = 0.0910

open Ir.Gate

(* exp(-i theta X0 Y1) |01> via basis-changed ZZ rotation. *)
let ansatz theta =
  [
    One (X, 1);
    (* X on q0 -> H conjugation; Y on q1 -> Rx(pi/2) conjugation. *)
    One (H, 0);
    One (Rx (Float.pi /. 2.0), 1);
    Two (Cnot, 0, 1);
    One (Rz (2.0 *. theta), 1);
    Two (Cnot, 0, 1);
    One (H, 0);
    One (Rx (-.Float.pi /. 2.0), 1);
  ]

(* Measurement bases: Z-basis directly; X via H; Y via Sdg,H. *)
let measurement_circuit theta basis =
  let rotation =
    match basis with
    | `Z -> []
    | `X -> [ One (H, 0); One (H, 1) ]
    | `Y -> [ One (Sdg, 0); One (H, 0); One (Sdg, 1); One (H, 1) ]
  in
  Ir.Circuit.measure_all (Ir.Circuit.create 2 (ansatz theta @ rotation)) [ 0; 1 ]

let expectations ?(mitigate = true) machine theta =
  (* One run per measurement basis; expectations from parity. *)
  let run basis =
    let circuit = measurement_circuit theta basis in
    let compiled =
      Triq.Pipeline.to_compiled
        (Triq.Pipeline.compile_level machine circuit ~level:Triq.Pipeline.OneQOptCN)
    in
    (* A dummy deterministic spec is not available (superposition output);
       run against the ideal distribution of this measurement circuit. *)
    let spec =
      Ir.Spec.distribution [ 0; 1 ]
        (Sim.Runner.ideal_distribution (Ir.Circuit.body circuit) ~measured:[ 0; 1 ])
    in
    let outcome = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:400 ()) compiled spec in
    if mitigate then begin
      let calibration =
        Device.Machine.calibration machine ~day:compiled.Triq.Compiled.day
      in
      let noise = Sim.Noise.create machine calibration in
      let flip =
        Array.of_list
          (List.map
             (fun p ->
               Sim.Noise.readout_flip_prob noise
                 (List.assoc p compiled.Triq.Compiled.readout_map))
             [ 0; 1 ])
      in
      Sim.Mitigation.correct ~flip outcome.Sim.Runner.distribution
    end
    else outcome.Sim.Runner.distribution
  in
  let z_dist = run `Z in
  let x_dist = run `X in
  let y_dist = run `Y in
  let parity = Sim.Dist.parity_expectation in
  ( parity z_dist [ 0 ],
    parity z_dist [ 1 ],
    parity z_dist [ 0; 1 ],
    parity x_dist [ 0; 1 ],
    parity y_dist [ 0; 1 ] )

let energy ?mitigate machine theta =
  let z0, z1, zz, xx, yy = expectations ?mitigate machine theta in
  g0 +. (g1 *. z0) +. (g2 *. z1) +. (g3 *. zz) +. (g4 *. xx) +. (g5 *. yy)

let ideal_energy theta =
  let state p =
    Sim.Runner.ideal_distribution
      (Ir.Circuit.create 2 (ansatz theta @ p))
      ~measured:[ 0; 1 ]
  in
  let z = state [] in
  let x = state [ One (H, 0); One (H, 1) ] in
  let y = state [ One (Sdg, 0); One (H, 0); One (Sdg, 1); One (H, 1) ] in
  let parity = Sim.Dist.parity_expectation in
  g0
  +. (g1 *. parity z [ 0 ])
  +. (g2 *. parity z [ 1 ])
  +. (g3 *. parity z [ 0; 1 ])
  +. (g4 *. parity x [ 0; 1 ])
  +. (g5 *. parity y [ 0; 1 ])

let () =
  let machine = Device.Machines.umdti in
  Printf.printf "H2 VQE on %s (R = 0.74 A)\n\n" machine.Device.Machine.name;
  Printf.printf "%8s %12s %12s %12s\n" "theta" "ideal" "noisy" "mitigated";
  let thetas = List.init 17 (fun i -> -0.2 +. (0.125 *. float_of_int i)) in
  let results =
    List.map
      (fun theta ->
        let ideal = ideal_energy theta in
        let noisy = energy ~mitigate:false machine theta in
        let mitigated = energy ~mitigate:true machine theta in
        Printf.printf "%8.3f %12.4f %12.4f %12.4f\n" theta ideal noisy mitigated;
        (theta, ideal, mitigated))
      thetas
  in
  let best (t0, e0) (t, e) = if e < e0 then (t, e) else (t0, e0) in
  let t_ideal, e_ideal =
    List.fold_left (fun acc (t, e, _) -> best acc (t, e)) (0.0, infinity) results
  in
  let t_noisy, e_noisy =
    List.fold_left (fun acc (t, _, e) -> best acc (t, e)) (0.0, infinity) results
  in
  Printf.printf
    "\nGround state: ideal %.4f Ha at theta=%.3f; measured (mitigated) %.4f Ha at theta=%.3f\n"
    e_ideal t_ideal e_noisy t_noisy;
  (* Exact ground energy of the single-excitation block the ansatz spans:
     diagonalize [[a, c]; [c, b]] with a = E(|01>), b = E(|10>),
     c = g4 + g5. *)
  let a = g0 -. g3 +. g1 -. g2 in
  let b = g0 -. g3 -. g1 +. g2 in
  let c = g4 +. g5 in
  let exact = ((a +. b) /. 2.0) -. sqrt ((((a -. b) /. 2.0) ** 2.0) +. (c *. c)) in
  Printf.printf "Exact ground energy of this Hamiltonian block: %.4f Ha.\n" exact
