module Gateset = Device.Gateset
module Topology = Device.Topology
module Machine = Device.Machine

let catalog =
  [
    ("circuit.bounds", "every gate operand is a valid qubit index");
    ("circuit.arity", "a gate's operands are pairwise distinct");
    ("circuit.flat", "no undecomposed multi-qubit gate remains");
    ("gate.set", "every gate is software-visible in the target basis");
    ("topo.coupling", "every 2Q gate acts on a coupled hardware pair");
    ("topo.direction", "CNOT orientation matches the directed coupling map");
    ("measure.once", "no qubit is measured twice");
    ("measure.order", "no gate touches a qubit after its measurement");
    ("exec.placement", "placement arrays are injective and in range");
    ("exec.readout", "readout map covers measured qubits and matches final placement");
    ("exec.esp", "estimated success probability lies in [0, 1]");
    ("exec.count-2q", "2Q counter equals the hardware circuit's 2Q gate count");
    ("exec.count-pulse", "pulse counter equals the hardware circuit's pulse count");
  ]

(* Fold a rule over the gate list with its index, collecting diagnostics. *)
let over_gates gates f =
  List.rev (snd (List.fold_left (fun (i, acc) g -> (i + 1, f i acc g)) (0, []) gates))

let qubit_bounds ~n_qubits ~layer gates =
  over_gates gates (fun i acc g ->
      List.fold_left
        (fun acc q ->
          if q < 0 || q >= n_qubits then
            Diag.errorf ~rule:"circuit.bounds" ~layer ~loc:(Diag.Gate i)
              "%s uses qubit %d outside [0, %d)" (Ir.Gate.to_string g) q n_qubits
            :: acc
          else acc)
        acc (Ir.Gate.qubits g))

let distinct qs =
  let sorted = List.sort compare qs in
  let rec check = function
    | a :: (b :: _ as rest) -> a <> b && check rest
    | [ _ ] | [] -> true
  in
  check sorted

let operand_distinct ~layer gates =
  over_gates gates (fun i acc g ->
      if distinct (Ir.Gate.qubits g) then acc
      else
        Diag.errorf ~rule:"circuit.arity" ~layer ~loc:(Diag.Gate i)
          "%s repeats an operand" (Ir.Gate.to_string g)
        :: acc)

let flattened ~layer gates =
  over_gates gates (fun i acc g ->
      match (g : Ir.Gate.t) with
      | Ccx _ | Cswap _ ->
        Diag.errorf ~rule:"circuit.flat" ~layer ~loc:(Diag.Gate i)
          "undecomposed multi-qubit gate %s" (Ir.Gate.to_string g)
        :: acc
      | One _ | Two _ | Measure _ -> acc)

let gateset ~layer basis gates =
  over_gates gates (fun i acc g ->
      if Gateset.gate_visible basis g then acc
      else
        Diag.errorf ~rule:"gate.set" ~layer ~loc:(Diag.Gate i)
          "%s is not software-visible in basis %s" (Ir.Gate.to_string g)
          (Gateset.basis_name basis)
        :: acc)

let coupling ~layer topology gates =
  let n = Topology.n_qubits topology in
  over_gates gates (fun i acc g ->
      match (g : Ir.Gate.t) with
      | Two (_, a, b)
        when a >= 0 && a < n && b >= 0 && b < n && not (Topology.coupled topology a b)
        ->
        Diag.errorf ~rule:"topo.coupling" ~layer ~loc:(Diag.Gate i)
          "%s acts on uncoupled pair q%d-q%d" (Ir.Gate.to_string g) a b
        :: acc
      | _ -> acc)

let direction ~layer topology gates =
  if not (Topology.directed topology) then []
  else
    let n = Topology.n_qubits topology in
    over_gates gates (fun i acc g ->
        match (g : Ir.Gate.t) with
        | Two (Cnot, a, b)
          when a >= 0 && a < n && b >= 0 && b < n
               && Topology.coupled topology a b
               && not (Topology.has_directed_edge topology a b) ->
          Diag.errorf ~rule:"topo.direction" ~layer ~loc:(Diag.Gate i)
            "CNOT q%d->q%d runs against the directed coupling" a b
          :: acc
        | _ -> acc)

let measure_once ~layer gates =
  let seen = Hashtbl.create 8 in
  over_gates gates (fun i acc g ->
      match (g : Ir.Gate.t) with
      | Measure q ->
        if Hashtbl.mem seen q then
          Diag.errorf ~rule:"measure.once" ~layer ~loc:(Diag.Gate i)
            "qubit %d measured a second time" q
          :: acc
        else begin
          Hashtbl.add seen q ();
          acc
        end
      | _ -> acc)

let measure_order ~layer gates =
  let measured = Hashtbl.create 8 in
  over_gates gates (fun i acc g ->
      match (g : Ir.Gate.t) with
      | Measure q ->
        if not (Hashtbl.mem measured q) then Hashtbl.add measured q ();
        acc
      | g ->
        List.fold_left
          (fun acc q ->
            if Hashtbl.mem measured q then
              Diag.errorf ~rule:"measure.order" ~layer ~loc:(Diag.Gate i)
                "%s touches qubit %d after its measurement" (Ir.Gate.to_string g) q
              :: acc
            else acc)
          acc (Ir.Gate.qubits g))

let placement ~layer ~what ~n_hardware arr =
  let diags = ref [] in
  let seen = Array.make (max n_hardware 1) false in
  Array.iteri
    (fun p h ->
      if h < 0 || h >= n_hardware then
        diags :=
          Diag.errorf ~rule:"exec.placement" ~layer ~loc:(Diag.Qubit p)
            "%s maps program qubit %d to %d outside [0, %d)" what p h n_hardware
          :: !diags
      else if seen.(h) then
        diags :=
          Diag.errorf ~rule:"exec.placement" ~layer ~loc:(Diag.Qubit p)
            "%s is not injective: hardware qubit %d assigned twice" what h
          :: !diags
      else seen.(h) <- true)
    arr;
  List.rev !diags

let readout ~layer ?measured ~final_placement ~hardware map =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_program = Array.length final_placement in
  List.iter
    (fun (p, h) ->
      if p < 0 || p >= n_program then
        add
          (Diag.errorf ~rule:"exec.readout" ~layer ~loc:(Diag.Qubit p)
             "readout map names unknown program qubit %d" p)
      else if final_placement.(p) <> h then
        add
          (Diag.errorf ~rule:"exec.readout" ~layer ~loc:(Diag.Qubit p)
             "readout map sends program qubit %d to hardware qubit %d, but the \
              final placement holds it on %d"
             p h final_placement.(p)))
    map;
  let domain = List.sort_uniq compare (List.map fst map) in
  if List.length domain <> List.length map then
    add
      (Diag.errorf ~rule:"exec.readout" ~layer
         "readout map lists a program qubit more than once");
  (match measured with
  | None -> ()
  | Some measured ->
    let expected = List.sort_uniq compare measured in
    if domain <> expected then
      add
        (Diag.errorf ~rule:"exec.readout" ~layer
           "readout map covers program qubits [%s] but the program measures [%s]"
           (String.concat ";" (List.map string_of_int domain))
           (String.concat ";" (List.map string_of_int expected))));
  let codomain = List.sort_uniq compare (List.map snd map) in
  let hw_measured = Ir.Circuit.measured_qubits hardware in
  if codomain <> hw_measured then
    add
      (Diag.errorf ~rule:"exec.readout" ~layer
         "executable measures hardware qubits [%s] but the readout map expects [%s]"
         (String.concat ";" (List.map string_of_int hw_measured))
         (String.concat ";" (List.map string_of_int codomain)));
  List.rev !diags

let esp_range ~layer esp =
  if Float.is_nan esp || esp < 0.0 || esp > 1.0 then
    [
      Diag.errorf ~rule:"exec.esp" ~layer
        "estimated success probability %g outside [0, 1]" esp;
    ]
  else []

let two_q_counter ~layer ~hardware count =
  let actual = Ir.Circuit.two_q_count hardware in
  if actual <> count then
    [
      Diag.errorf ~rule:"exec.count-2q" ~layer
        "2Q counter records %d but the hardware circuit has %d" count actual;
    ]
  else []

let pulse_counter ~layer basis ~hardware count =
  (* Only meaningful on a flattened, fully-visible circuit; otherwise the
     flat/gate-set rules already report and the pulse count is undefined. *)
  if
    flattened ~layer hardware.Ir.Circuit.gates <> []
    || gateset ~layer basis hardware.Ir.Circuit.gates <> []
  then []
  else
    let actual = Gateset.circuit_pulse_count basis hardware in
    if actual <> count then
      [
        Diag.errorf ~rule:"exec.count-pulse" ~layer
          "pulse counter records %d but the hardware circuit costs %d pulses" count
          actual;
      ]
    else []

type executable = {
  machine : Machine.t;
  hardware : Ir.Circuit.t;
  initial_placement : int array;
  final_placement : int array;
  readout_map : (int * int) list;
  measured : int list option;
  two_q_count : int;
  pulse_count : int;
  esp : float;
}

let check_executable e =
  let layer = "executable" in
  let gates = e.hardware.Ir.Circuit.gates in
  let n_hw = Machine.n_qubits e.machine in
  let topology = e.machine.Machine.topology in
  let basis = e.machine.Machine.basis in
  let diags =
    List.concat
      [
        qubit_bounds ~n_qubits:n_hw ~layer gates;
        operand_distinct ~layer gates;
        flattened ~layer gates;
        gateset ~layer basis gates;
        coupling ~layer topology gates;
        direction ~layer topology gates;
        measure_once ~layer gates;
        measure_order ~layer gates;
        placement ~layer ~what:"initial placement" ~n_hardware:n_hw
          e.initial_placement;
        placement ~layer ~what:"final placement" ~n_hardware:n_hw e.final_placement;
        readout ~layer ?measured:e.measured ~final_placement:e.final_placement
          ~hardware:e.hardware e.readout_map;
        esp_range ~layer e.esp;
        two_q_counter ~layer ~hardware:e.hardware e.two_q_count;
        pulse_counter ~layer basis ~hardware:e.hardware e.pulse_count;
      ]
  in
  List.sort_uniq Diag.compare diags
