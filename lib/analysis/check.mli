(** The static rule catalog: cheap structural well-formedness checks over
    circuits and compiled executables, reported as {!Diag.t} values.

    Every function is pure and total — a check never raises, it reports.
    The circuit-shape rules operate on raw gate lists (not validated
    {!Ir.Circuit.t} values) so that violations of the invariants
    [Ir.Circuit.create] enforces by construction remain expressible and
    testable. [layer] tags the diagnostics with the pass being audited
    (["flatten"], ["routing"], ["executable"], ...).

    Rule ids are stable and documented in docs/ANALYSIS.md. *)

(** [(rule id, one-line description)] for every rule this module can
    emit, in documentation order. *)
val catalog : (string * string) list

(** {1 Circuit-shape rules} *)

(** [circuit.bounds]: every gate operand lies in [\[0, n_qubits)]. *)
val qubit_bounds : n_qubits:int -> layer:string -> Ir.Gate.t list -> Diag.t list

(** [circuit.arity]: a gate's operands are pairwise distinct. *)
val operand_distinct : layer:string -> Ir.Gate.t list -> Diag.t list

(** [circuit.flat]: no undecomposed multi-qubit gate (Toffoli/Fredkin)
    remains. *)
val flattened : layer:string -> Ir.Gate.t list -> Diag.t list

(** [gate.set]: every gate is software-visible in the target basis. *)
val gateset : layer:string -> Device.Gateset.basis -> Ir.Gate.t list -> Diag.t list

(** [topo.coupling]: every 2Q gate acts on a coupled hardware pair. *)
val coupling : layer:string -> Device.Topology.t -> Ir.Gate.t list -> Diag.t list

(** [topo.direction]: on a directed topology, every CNOT's control-target
    order matches a directed edge. *)
val direction : layer:string -> Device.Topology.t -> Ir.Gate.t list -> Diag.t list

(** [measure.once]: no qubit is measured twice. *)
val measure_once : layer:string -> Ir.Gate.t list -> Diag.t list

(** [measure.order]: no gate touches a qubit after that qubit was
    measured. *)
val measure_order : layer:string -> Ir.Gate.t list -> Diag.t list

(** {1 Executable-level rules} *)

(** [exec.placement]: the array is injective with entries in
    [\[0, n_hardware)]. [what] names the array in messages ("initial
    placement" / "final placement"). *)
val placement : layer:string -> what:string -> n_hardware:int -> int array -> Diag.t list

(** [exec.readout]: the readout map is injective, agrees with the final
    placement, its codomain is exactly the set of hardware qubits the
    executable measures — and, when the program's [measured] qubits are
    known, its domain covers them exactly. *)
val readout :
  layer:string ->
  ?measured:int list ->
  final_placement:int array ->
  hardware:Ir.Circuit.t ->
  (int * int) list ->
  Diag.t list

(** [exec.esp]: the estimated success probability is a number in [0, 1]. *)
val esp_range : layer:string -> float -> Diag.t list

(** [exec.count-2q]: the recorded 2Q counter equals the hardware
    circuit's 2Q gate count. *)
val two_q_counter : layer:string -> hardware:Ir.Circuit.t -> int -> Diag.t list

(** [exec.count-pulse]: the recorded pulse counter equals the hardware
    circuit's physical pulse count under the basis. Skipped (no
    diagnostics) when the circuit is not flattened-and-visible — the
    [circuit.flat]/[gate.set] rules own that failure. *)
val pulse_counter :
  layer:string -> Device.Gateset.basis -> hardware:Ir.Circuit.t -> int -> Diag.t list

(** {1 Whole-executable audit} *)

(** Everything the static layer knows about a compiled executable.
    [measured] is the program's measured qubits when the caller still has
    the source program ([None] relaxes the readout-coverage direction of
    [exec.readout]). *)
type executable = {
  machine : Device.Machine.t;
  hardware : Ir.Circuit.t;
  initial_placement : int array;
  final_placement : int array;
  readout_map : (int * int) list;
  measured : int list option;
  two_q_count : int;
  pulse_count : int;
  esp : float;
}

(** Run the full rule catalog over one executable; returns the sorted
    list of violations (empty = statically well-formed). *)
val check_executable : executable -> Diag.t list
