type severity = Error | Warning | Info

type loc =
  | Nowhere
  | Line of int
  | Gate of int
  | Qubit of int
  | Pair of int * int

type t = {
  severity : severity;
  rule : string;
  layer : string;
  loc : loc;
  message : string;
}

let make ?(severity = Error) ?(loc = Nowhere) ~rule ~layer message =
  { severity; rule; layer; loc; message }

let errorf ~rule ~layer ?loc fmt =
  Printf.ksprintf (fun message -> make ~severity:Error ?loc ~rule ~layer message) fmt

let warnf ~rule ~layer ?loc fmt =
  Printf.ksprintf (fun message -> make ~severity:Warning ?loc ~rule ~layer message) fmt

let infof ~rule ~layer ?loc fmt =
  Printf.ksprintf (fun message -> make ~severity:Info ?loc ~rule ~layer message) fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let loc_string = function
  | Nowhere -> ""
  | Line l -> Printf.sprintf "line %d" l
  | Gate i -> Printf.sprintf "gate %d" i
  | Qubit q -> Printf.sprintf "q%d" q
  | Pair (a, b) -> Printf.sprintf "q%d-q%d" a b

let render d =
  let where = match loc_string d.loc with "" -> "" | s -> " @ " ^ s in
  Printf.sprintf "%s[%s] %s%s: %s" (severity_name d.severity) d.rule d.layer where
    d.message

let pp fmt d = Format.pp_print_string fmt (render d)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let loc_json =
    match d.loc with
    | Nowhere -> "null"
    | Line l -> Printf.sprintf "{\"line\":%d}" l
    | Gate i -> Printf.sprintf "{\"gate\":%d}" i
    | Qubit q -> Printf.sprintf "{\"qubit\":%d}" q
    | Pair (a, b) -> Printf.sprintf "{\"qubits\":[%d,%d]}" a b
  in
  Printf.sprintf
    "{\"severity\":\"%s\",\"rule\":\"%s\",\"layer\":\"%s\",\"loc\":%s,\"message\":\"%s\"}"
    (severity_name d.severity) (json_escape d.rule) (json_escape d.layer) loc_json
    (json_escape d.message)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let loc_rank = function
  | Nowhere -> (0, 0, 0)
  | Line l -> (1, l, 0)
  | Gate i -> (2, i, 0)
  | Qubit q -> (3, q, 0)
  | Pair (a, b) -> (4, a, b)

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = Stdlib.compare (loc_rank a.loc) (loc_rank b.loc) in
      if c <> 0 then c else Stdlib.compare a.message b.message

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let error_count ds = List.length (List.filter is_error ds)

exception Violation of string * t list

let violation_message pass diags =
  String.concat "\n"
    (Printf.sprintf "pass %S violated %d invariant(s):" pass (List.length diags)
    :: List.map (fun d -> "  " ^ render d) diags)

let () =
  Printexc.register_printer (function
    | Violation (pass, diags) -> Some (violation_message pass diags)
    | _ -> None)

let invalid ~rule ~layer ?loc fmt =
  Printf.ksprintf
    (fun message -> invalid_arg (render (make ~severity:Error ?loc ~rule ~layer message)))
    fmt
