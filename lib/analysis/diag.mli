(** Structured compiler diagnostics.

    Every static check in the toolflow reports through this one type
    instead of ad-hoc exceptions: a diagnostic names the violated rule
    (stable ids, catalogued in docs/ANALYSIS.md), the toolflow layer that
    produced it, where in the program or circuit it points, and a human
    message. The rendering is uniform across [triqc] subcommands, and
    [to_json] gives a machine-readable line for tooling. *)

type severity = Error | Warning | Info

(** Where a diagnostic points. [Line] is a source (Scaffold) line;
    [Gate] an index into a circuit's gate list; [Qubit]/[Pair] hardware
    or program qubits. *)
type loc =
  | Nowhere
  | Line of int
  | Gate of int
  | Qubit of int
  | Pair of int * int

type t = {
  severity : severity;
  rule : string;  (** stable rule id, e.g. ["topo.coupling"] *)
  layer : string;  (** pass or layer that raised it, e.g. ["routing"] *)
  loc : loc;
  message : string;
}

val make : ?severity:severity -> ?loc:loc -> rule:string -> layer:string -> string -> t

(** [errorf ~rule ~layer ?loc fmt ...] builds an [Error] diagnostic with a
    printf-formatted message. *)
val errorf :
  rule:string -> layer:string -> ?loc:loc -> ('a, unit, string, t) format4 -> 'a

(** [warnf] is {!errorf} at [Warning] severity. *)
val warnf :
  rule:string -> layer:string -> ?loc:loc -> ('a, unit, string, t) format4 -> 'a

(** [infof] is {!errorf} at [Info] severity. *)
val infof :
  rule:string -> layer:string -> ?loc:loc -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
val loc_string : loc -> string

(** One-line human rendering:
    [error\[topo.coupling\] routing @ gate 12: CNOT q3-q7 not coupled]. *)
val render : t -> string

val pp : Format.formatter -> t -> unit

(** Machine-readable rendering as a single JSON object line. *)
val to_json : t -> string

(** Sort severity-first (errors before warnings), then rule id, then
    location — a deterministic report order. *)
val compare : t -> t -> int

val is_error : t -> bool
val has_errors : t list -> bool
val error_count : t list -> int

(** [Violation (pass, diags)] is raised by the pass-invariant harness
    ([Triq.Pipeline.compile ~validate:true]) when [pass] breaks a
    well-formedness invariant; [diags] are the violated rules. *)
exception Violation of string * t list

(** Render a violation as a multi-line report attributing the pass. *)
val violation_message : string -> t list -> string

(** [invalid ~rule ~layer ?loc fmt ...] raises [Invalid_argument] whose
    message is the uniform {!render}ing of the diagnostic — the bridge for
    the toolflow's precondition failures, keeping the historical exception
    type while normalizing the text. *)
val invalid :
  rule:string -> layer:string -> ?loc:loc -> ('a, unit, string, 'b) format4 -> 'a
