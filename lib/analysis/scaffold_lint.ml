module Lower = Scaffold.Lower

let layer = "scaffold"

let catalog =
  [
    ("scf.parse", "the source does not parse");
    ("scf.invalid", "lowering rejected the program (bad index, unknown name, ...)");
    ("scf.use-after-measure", "a gate touches a qubit after its measurement");
    ("scf.unused-register", "a declared register is never gated or measured");
    ("scf.never-gated", "a measured qubit is never acted on by any gate");
    ("scf.no-measure", "the program measures nothing");
  ]

let lint_events events =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let gated = Hashtbl.create 16 in
  let measured_at = Hashtbl.create 16 in
  List.iter
    (fun (e : Lower.event) ->
      match e with
      | Reg_decl _ -> ()
      | Gate_use { qubit; line } ->
        Hashtbl.replace gated qubit ();
        (match Hashtbl.find_opt measured_at qubit with
        | Some mline ->
          add
            (Diag.errorf ~rule:"scf.use-after-measure" ~layer ~loc:(Diag.Line line)
               "gate acts on a qubit measured at line %d" mline)
        | None -> ())
      | Measure_use { qubit; line } ->
        if not (Hashtbl.mem measured_at qubit) then
          Hashtbl.add measured_at qubit line)
    events;
  (* Register-level rules need the allocation map. *)
  let touched q = Hashtbl.mem gated q || Hashtbl.mem measured_at q in
  List.iter
    (fun (e : Lower.event) ->
      match e with
      | Reg_decl { name; base; size; line } ->
        let any_touched = ref false in
        for i = base to base + size - 1 do
          if touched i then any_touched := true
        done;
        if not !any_touched then
          add
            (Diag.warnf ~rule:"scf.unused-register" ~layer ~loc:(Diag.Line line)
               "register %S (%d qubit%s) is never gated or measured" name size
               (if size = 1 then "" else "s"))
      | Gate_use _ | Measure_use _ -> ())
    events;
  Hashtbl.iter
    (fun q mline ->
      if not (Hashtbl.mem gated q) then
        add
          (Diag.warnf ~rule:"scf.never-gated" ~layer ~loc:(Diag.Line mline)
             "qubit %d is measured but never acted on by a gate" q))
    measured_at;
  if Hashtbl.length measured_at = 0 then
    add
      (Diag.warnf ~rule:"scf.no-measure" ~layer
         "program measures nothing; its output is empty");
  !diags

let lint_ast ast =
  let traced = Lower.lower_traced ast in
  let hard =
    match traced.Lower.result with
    | Ok _ -> []
    | Error (msg, line) ->
      [ Diag.errorf ~rule:"scf.invalid" ~layer ~loc:(Diag.Line line) "%s" msg ]
  in
  List.sort_uniq Diag.compare (hard @ lint_events traced.Lower.events)

let lint_source source =
  match Scaffold.Parser.parse source with
  | ast -> lint_ast ast
  | exception Scaffold.Parser.Error (msg, line, col) ->
    [
      Diag.errorf ~rule:"scf.parse" ~layer ~loc:(Diag.Line line) "%s (column %d)" msg
        col;
    ]

let lint_file path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_source source
