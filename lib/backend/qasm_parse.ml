exception Error of string * int

type program = {
  n_qubits : int;
  circuit : Ir.Circuit.t;
  readout : (int * int) list;
}

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error (msg, line))) fmt

let strip s = String.trim s

(* Tabs are legal token separators in text some toolchains emit; fold them
   into spaces so the space-based statement splitting below sees one
   dialect. [String.trim] already strips CR from CRLF line endings. *)
let normalize_line s = String.map (fun c -> if c = '\t' then ' ' else c) s

(* Parse "name(args) rest" or "name rest"; returns (name, args, rest). *)
let split_gate line_no text =
  match String.index_opt text '(' with
  | Some open_paren -> (
    match String.index_opt text ')' with
    | Some close_paren when close_paren > open_paren ->
      let name = strip (String.sub text 0 open_paren) in
      let args = String.sub text (open_paren + 1) (close_paren - open_paren - 1) in
      let rest = strip (String.sub text (close_paren + 1) (String.length text - close_paren - 1)) in
      (name, List.map strip (String.split_on_char ',' args), rest)
    | _ -> fail line_no "unbalanced parentheses")
  | None -> (
    match String.index_opt text ' ' with
    | Some sp ->
      ( strip (String.sub text 0 sp),
        [],
        strip (String.sub text sp (String.length text - sp)) )
    | None -> (text, [], ""))

let parse_float line_no s =
  match float_of_string_opt (strip s) with
  | Some f -> f
  | None -> fail line_no "bad angle %S" s

let parse_qubit line_no s =
  let s = strip s in
  if String.length s < 4 || not (String.length s > 2 && s.[0] = 'q' && s.[1] = '[') then
    fail line_no "bad qubit reference %S" s
  else begin
    match String.index_opt s ']' with
    | Some close -> (
      match int_of_string_opt (String.sub s 2 (close - 2)) with
      | Some q -> q
      | None -> fail line_no "bad qubit index in %S" s)
    | None -> fail line_no "bad qubit reference %S" s
  end

let parse_cbit line_no s =
  let s = strip s in
  if String.length s > 2 && s.[0] = 'c' && s.[1] = '[' then begin
    match String.index_opt s ']' with
    | Some close -> (
      match int_of_string_opt (String.sub s 2 (close - 2)) with
      | Some c -> c
      | None -> fail line_no "bad classical index in %S" s)
    | None -> fail line_no "bad classical reference %S" s
  end
  else fail line_no "bad classical reference %S" s

let parse source =
  let lines = String.split_on_char '\n' source in
  let n_qubits = ref 0 in
  let gates = ref [] in
  let readout = ref [] in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let text = strip (normalize_line raw) in
      let text =
        (* Strip trailing // comments. *)
        let rec find_comment i =
          if i + 1 >= String.length text then None
          else if text.[i] = '/' && text.[i + 1] = '/' then Some i
          else find_comment (i + 1)
        in
        match find_comment 0 with
        | Some i -> strip (String.sub text 0 i)
        | None -> text
      in
      if text = "" then ()
      else if String.length text >= 8 && String.sub text 0 8 = "OPENQASM" then ()
      else if String.length text >= 7 && String.sub text 0 7 = "include" then ()
      else begin
        let text =
          if String.length text > 0 && text.[String.length text - 1] = ';' then
            strip (String.sub text 0 (String.length text - 1))
          else text
        in
        if text = "" then ()
        else if String.length text >= 5 && String.sub text 0 5 = "qreg " then
          (* "qreg q[n]": the declaration reuses the qubit-reference shape. *)
          n_qubits := parse_qubit line_no (String.sub text 5 (String.length text - 5))
        else if String.length text >= 5 && String.sub text 0 5 = "creg " then ()
        else if String.length text >= 8 && String.sub text 0 8 = "measure " then begin
          match String.index_opt text '>' with
          | Some arrow when arrow >= 2 && text.[arrow - 1] = '-' ->
            let q = parse_qubit line_no (String.sub text 8 (arrow - 9)) in
            let c =
              parse_cbit line_no
                (String.sub text (arrow + 1) (String.length text - arrow - 1))
            in
            readout := (c, q) :: !readout;
            gates := Ir.Gate.Measure q :: !gates
          | _ -> fail line_no "bad measure statement"
        end
        else begin
          let name, args, rest = split_gate line_no text in
          let qubits = List.map (parse_qubit line_no) (String.split_on_char ',' rest) in
          match (name, args, qubits) with
          | "u1", [ l ], [ q ] ->
            gates := Ir.Gate.One (Ir.Gate.U1 (parse_float line_no l), q) :: !gates
          | "u2", [ p; l ], [ q ] ->
            gates :=
              Ir.Gate.One
                (Ir.Gate.U2 (parse_float line_no p, parse_float line_no l), q)
              :: !gates
          | "u3", [ t; p; l ], [ q ] ->
            gates :=
              Ir.Gate.One
                ( Ir.Gate.U3
                    (parse_float line_no t, parse_float line_no p, parse_float line_no l),
                  q )
              :: !gates
          | "cx", [], [ a; b ] -> gates := Ir.Gate.Two (Ir.Gate.Cnot, a, b) :: !gates
          | _ -> fail line_no "unsupported statement %S" text
        end
      end)
    lines;
  if !n_qubits = 0 then raise (Error ("missing qreg declaration", 1));
  {
    n_qubits = !n_qubits;
    circuit = Ir.Circuit.create !n_qubits (List.rev !gates);
    readout = List.sort compare !readout;
  }
