exception Error of string * int

type program = { circuit : Ir.Circuit.t; readout : (int * int) list }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error (msg, line))) fmt

let parse_int line s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None -> fail line "bad integer %S" s

let parse_angle line s =
  (* "RZ(1.5)" -> 1.5; handles the "pi/2" sugar some Quil writers use. *)
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> (
    match String.trim s with
    | "pi" -> Float.pi
    | "pi/2" -> Float.pi /. 2.0
    | "-pi/2" -> -.Float.pi /. 2.0
    | other -> fail line "bad angle %S" other)

let split_words s =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' s)

(* Fold tab separators into spaces ([String.trim] already strips the CR of
   CRLF line endings and trailing blanks). *)
let normalize_line s = String.map (fun c -> if c = '\t' then ' ' else c) s

let parse_gate_with_angle line text =
  match (String.index_opt text '(', String.index_opt text ')') with
  | Some o, Some c when c > o ->
    let name = String.sub text 0 o in
    let angle = parse_angle line (String.sub text (o + 1) (c - o - 1)) in
    let rest = String.sub text (c + 1) (String.length text - c - 1) in
    (name, angle, split_words rest)
  | _ -> fail line "expected NAME(angle) form in %S" text

let parse_ro line s =
  (* "ro[3]" *)
  let s = String.trim s in
  if String.length s > 3 && String.sub s 0 3 = "ro[" then begin
    match String.index_opt s ']' with
    | Some close -> parse_int line (String.sub s 3 (close - 3))
    | None -> fail line "bad ro reference %S" s
  end
  else fail line "bad ro reference %S" s

let parse source =
  let gates = ref [] in
  let readout = ref [] in
  let max_qubit = ref 0 in
  let note_qubit q = if q > !max_qubit then max_qubit := q in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = String.trim (normalize_line raw) in
      if text = "" || text.[0] = '#' then ()
      else if String.length text >= 7 && String.sub text 0 7 = "DECLARE" then ()
      else if String.length text >= 8 && String.sub text 0 8 = "MEASURE " then begin
        match split_words (String.sub text 8 (String.length text - 8)) with
        | [ q; ro ] ->
          let q = parse_int line q in
          note_qubit q;
          readout := (parse_ro line ro, q) :: !readout;
          gates := Ir.Gate.Measure q :: !gates
        | _ -> fail line "bad MEASURE statement"
      end
      else if String.length text >= 3 && String.sub text 0 3 = "CZ " then begin
        match split_words (String.sub text 3 (String.length text - 3)) with
        | [ a; b ] ->
          let a = parse_int line a and b = parse_int line b in
          note_qubit a;
          note_qubit b;
          gates := Ir.Gate.Two (Ir.Gate.Cz, a, b) :: !gates
        | _ -> fail line "bad CZ statement"
      end
      else if String.length text >= 6 && String.sub text 0 6 = "ISWAP " then begin
        match split_words (String.sub text 6 (String.length text - 6)) with
        | [ a; b ] ->
          let a = parse_int line a and b = parse_int line b in
          note_qubit a;
          note_qubit b;
          gates := Ir.Gate.Two (Ir.Gate.Iswap, a, b) :: !gates
        | _ -> fail line "bad ISWAP statement"
      end
      else begin
        let name, angle, operands = parse_gate_with_angle line text in
        match (name, operands) with
        | "RZ", [ q ] ->
          let q = parse_int line q in
          note_qubit q;
          gates := Ir.Gate.One (Ir.Gate.Rz angle, q) :: !gates
        | "RX", [ q ] ->
          let q = parse_int line q in
          note_qubit q;
          gates := Ir.Gate.One (Ir.Gate.Rx angle, q) :: !gates
        | _ -> fail line "unsupported statement %S" text
      end)
    (String.split_on_char '\n' source);
  if !gates = [] then raise (Error ("empty program", 1));
  {
    circuit = Ir.Circuit.create (!max_qubit + 1) (List.rev !gates);
    readout = List.sort compare !readout;
  }
