exception Error of string * int

type program = { circuit : Ir.Circuit.t; measured : int list }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error (msg, line))) fmt

let parse_int line s =
  match int_of_string_opt s with Some n -> n | None -> fail line "bad integer %S" s

let parse_float line s =
  match float_of_string_opt s with Some f -> f | None -> fail line "bad angle %S" s

(* Fold tab separators into spaces ([String.trim] already strips the CR of
   CRLF line endings and trailing blanks). *)
let normalize_line s = String.map (fun c -> if c = '\t' then ' ' else c) s

let parse source =
  let gates = ref [] in
  let measured = ref [] in
  let max_ion = ref 0 in
  let note q = if q > !max_ion then max_ion := q in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = String.trim (normalize_line raw) in
      if text = "" || text.[0] = ';' then ()
      else begin
        let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' text) in
        match words with
        | [ "R"; ion; theta; phi ] ->
          let ion = parse_int line ion in
          note ion;
          gates :=
            Ir.Gate.One (Ir.Gate.Rxy (parse_float line theta, parse_float line phi), ion)
            :: !gates
        | [ "RZ"; ion; lambda ] ->
          let ion = parse_int line ion in
          note ion;
          gates := Ir.Gate.One (Ir.Gate.Rz (parse_float line lambda), ion) :: !gates
        | [ "XX"; a; b; chi ] ->
          let a = parse_int line a and b = parse_int line b in
          note a;
          note b;
          gates := Ir.Gate.Two (Ir.Gate.Xx (parse_float line chi), a, b) :: !gates
        | [ "MEAS"; ion ] ->
          let ion = parse_int line ion in
          note ion;
          measured := ion :: !measured;
          gates := Ir.Gate.Measure ion :: !gates
        | _ -> fail line "unsupported statement %S" text
      end)
    (String.split_on_char '\n' source);
  if !gates = [] then raise (Error ("empty program", 1));
  {
    circuit = Ir.Circuit.create (!max_ion + 1) (List.rev !gates);
    measured = List.rev !measured;
  }
