module Machine = Device.Machine
module Topology = Device.Topology
module Pass = Triq.Pass

let start machine ~day circuit =
  let config = Pass.Config.make ~day () in
  let state = Pass.init ~config machine circuit in
  Pass.run_passes state [ Pass.flatten ]

(* The stages shared with the TriQ levels once a baseline has placed and
   routed: generic SWAP expansion (baselines know nothing about native
   bases), orientation repair, translation, 1Q coalescing, readout map. *)
let tail_passes =
  Pass.[ swap_expansion_generic; orientation; translation; oneq_coalesce; readout ]

let finalize ~compiler ~routed ~initial_placement ~final_placement ~swap_count
    ~started_at ~front_times (state : Pass.state) =
  let state =
    { state with Pass.circuit = routed; initial_placement; final_placement; swap_count }
  in
  let state, tail_times = Pass.run_passes state tail_passes in
  Triq.Compiled.make
    ~pass_times_s:(front_times @ tail_times)
    ~machine:state.Pass.machine ~compiler
    ~day:state.Pass.config.Pass.Config.day ~hardware:state.Pass.circuit
    ~initial_placement ~final_placement ~readout_map:state.Pass.readout_map
    ~swap_count ~flipped_cnots:state.Pass.flipped_cnots
    ~compile_time_s:(Sys.time () -. started_at) ()

let hop_distances topology =
  let n = Topology.n_qubits topology in
  Array.init n (fun src ->
      Array.init n (fun dst ->
          match Topology.hop_distance topology src dst with
          | d -> d
          | exception Not_found -> max_int / 2))
