(** Shared back-end for the baseline compilers, built on the TriQ pass
    driver ({!Triq.Pass}): the flatten front and — once a baseline has
    placed and routed a program — the remaining stages (generic SWAP
    expansion, CNOT orientation repair, translation to the
    software-visible gate set, 1Q coalescing, readout map) are identical
    across baselines and run as the same passes the TriQ levels use. *)

(** [start machine ~day circuit] initializes a pass state for the
    baseline and runs the shared [flatten] pass through the driver:
    returns the state (whose [circuit] is the flattened program) and the
    front pass times. *)
val start :
  Device.Machine.t -> day:int -> Ir.Circuit.t -> Triq.Pass.state * (string * float) list

(** [finalize ~compiler ~routed ... state] completes compilation of a
    routed hardware circuit through the shared tail passes and packages
    it as an executable. [state] is the value from {!start};
    [front_times] its pass times (prepended to the tail's in
    [pass_times_s]); [started_at] the [Sys.time] value when the baseline
    started, for compile-time reporting. *)
val finalize :
  compiler:string ->
  routed:Ir.Circuit.t ->
  initial_placement:int array ->
  final_placement:int array ->
  swap_count:int ->
  started_at:float ->
  front_times:(string * float) list ->
  Triq.Pass.state ->
  Triq.Compiled.t

(** [hop_distances topology] is the all-pairs hop-count matrix. *)
val hop_distances : Device.Topology.t -> int array array
