module Machine = Device.Machine
module Topology = Device.Topology
module Rng = Mathkit.Rng

(* Greedy stochastic routing: while the operands of a 2Q gate are apart,
   apply the swap (adjacent to either operand) that most reduces their hop
   distance, breaking ties at random. *)
let route machine rng ~placement (c : Ir.Circuit.t) =
  let topology = machine.Machine.topology in
  let n_hardware = Topology.n_qubits topology in
  let dist = Common.hop_distances topology in
  let cur = Array.copy placement in
  let occupant = Array.make n_hardware (-1) in
  Array.iteri (fun p h -> occupant.(h) <- p) cur;
  let out = ref [] in
  let swaps = ref 0 in
  let emit g = out := g :: !out in
  let apply_swap u v =
    emit (Ir.Gate.Two (Ir.Gate.Swap, u, v));
    incr swaps;
    let pu = occupant.(u) and pv = occupant.(v) in
    occupant.(u) <- pv;
    occupant.(v) <- pu;
    if pv >= 0 then cur.(pv) <- u;
    if pu >= 0 then cur.(pu) <- v
  in
  let route_two kind a b =
    let guard = ref 0 in
    while not (Topology.coupled topology cur.(a) cur.(b)) do
      incr guard;
      if !guard > 4 * n_hardware then failwith "Qiskit_like: routing diverged";
      let ha = cur.(a) and hb = cur.(b) in
      let candidates =
        List.map (fun v -> (ha, v)) (Topology.neighbors topology ha)
        @ List.map (fun v -> (hb, v)) (Topology.neighbors topology hb)
      in
      let score (u, v) =
        (* Distance between the operands if we swapped (u, v). *)
        let pos q = if q = u then v else if q = v then u else q in
        dist.(pos ha).(pos hb)
      in
      let best = List.fold_left (fun acc sw -> min acc (score sw)) max_int candidates in
      let best_swaps = List.filter (fun sw -> score sw = best) candidates in
      let u, v = Rng.choose rng best_swaps in
      apply_swap u v
    done;
    emit (Ir.Gate.Two (kind, cur.(a), cur.(b)))
  in
  List.iter
    (fun g ->
      match (g : Ir.Gate.t) with
      | One (k, p) -> emit (Ir.Gate.One (k, cur.(p)))
      | Measure p -> emit (Ir.Gate.Measure cur.(p))
      | Two (kind, a, b) -> route_two kind a b
      | Ccx _ | Cswap _ -> invalid_arg "Qiskit_like: circuit not flattened")
    c.Ir.Circuit.gates;
  (Ir.Circuit.create n_hardware (List.rev !out), cur, !swaps)

let compile ?(day = 0) ?(seed = 1) machine circuit =
  if not (Machine.fits machine circuit) then
    invalid_arg "Qiskit_like.compile: program does not fit";
  let started_at = Sys.time () in
  let state, front_times = Common.start machine ~day circuit in
  let flat = state.Triq.Pass.circuit in
  let placement =
    Triq.Mapper.trivial ~n_program:flat.Ir.Circuit.n_qubits
      ~n_hardware:(Machine.n_qubits machine)
  in
  let rng = Rng.create seed in
  let routed, final_placement, swap_count = route machine rng ~placement flat in
  Common.finalize ~compiler:"Qiskit" ~routed ~initial_placement:placement
    ~final_placement ~swap_count ~started_at ~front_times state
