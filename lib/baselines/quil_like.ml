module Machine = Device.Machine
module Topology = Device.Topology

let route machine ~placement (c : Ir.Circuit.t) =
  let topology = machine.Machine.topology in
  let n_hardware = Topology.n_qubits topology in
  let out = ref [] in
  let swaps = ref 0 in
  let emit g = out := g :: !out in
  (* Home positions never change: swap in, perform the gate, swap out. *)
  let route_two kind a b =
    let ha = placement.(a) and hb = placement.(b) in
    if Topology.coupled topology ha hb then emit (Ir.Gate.Two (kind, ha, hb))
    else begin
      let path = Topology.shortest_path topology ha hb in
      (* Walk the control up to the neighbour of the target. *)
      let rec swap_in acc = function
        | u :: (v :: rest2 as rest) when rest2 <> [] ->
          emit (Ir.Gate.Two (Ir.Gate.Swap, u, v));
          incr swaps;
          swap_in ((u, v) :: acc) rest
        | [ t'; _target ] -> (t', acc)
        | _ -> failwith "Quil_like: malformed path"
      in
      let t', undo = swap_in [] path in
      emit (Ir.Gate.Two (kind, t', hb));
      List.iter
        (fun (u, v) ->
          emit (Ir.Gate.Two (Ir.Gate.Swap, u, v));
          incr swaps)
        undo
    end
  in
  List.iter
    (fun g ->
      match (g : Ir.Gate.t) with
      | One (k, p) -> emit (Ir.Gate.One (k, placement.(p)))
      | Measure p -> emit (Ir.Gate.Measure placement.(p))
      | Two (kind, a, b) -> route_two kind a b
      | Ccx _ | Cswap _ -> invalid_arg "Quil_like: circuit not flattened")
    c.Ir.Circuit.gates;
  (Ir.Circuit.create n_hardware (List.rev !out), !swaps)

let compile ?(day = 0) machine circuit =
  if not (Machine.fits machine circuit) then
    invalid_arg "Quil_like.compile: program does not fit";
  let started_at = Sys.time () in
  let state, front_times = Common.start machine ~day circuit in
  let flat = state.Triq.Pass.circuit in
  let placement =
    Triq.Mapper.trivial ~n_program:flat.Ir.Circuit.n_qubits
      ~n_hardware:(Machine.n_qubits machine)
  in
  let routed, swap_count = route machine ~placement flat in
  Common.finalize ~compiler:"Quil" ~routed ~initial_placement:placement
    ~final_placement:(Array.copy placement) ~swap_count ~started_at ~front_times
    state
