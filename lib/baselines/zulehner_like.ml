module Machine = Device.Machine
module Topology = Device.Topology

let greedy_placement machine (flat : Ir.Circuit.t) =
  let topology = machine.Machine.topology in
  let n_hardware = Topology.n_qubits topology in
  let n_program = flat.Ir.Circuit.n_qubits in
  let dist = Common.hop_distances topology in
  let pairs = Triq.Mapper.interactions flat in
  let weight = Array.make n_program 0 in
  let partners = Array.make n_program [] in
  List.iter
    (fun ((a, b), count) ->
      weight.(a) <- weight.(a) + count;
      weight.(b) <- weight.(b) + count;
      partners.(a) <- (b, count) :: partners.(a);
      partners.(b) <- (a, count) :: partners.(b))
    pairs;
  let order = Array.init n_program (fun i -> i) in
  Array.sort (fun a b -> compare (weight.(b), a) (weight.(a), b)) order;
  let placement = Array.make n_program (-1) in
  let used = Array.make n_hardware false in
  let centre =
    (* Start from the highest-degree hardware qubit. *)
    let best = ref 0 in
    for h = 1 to n_hardware - 1 do
      if Topology.degree topology h > Topology.degree topology !best then best := h
    done;
    !best
  in
  Array.iter
    (fun p ->
      let cost h =
        let partner_cost =
          List.fold_left
            (fun acc (other, count) ->
              if placement.(other) >= 0 then acc + (count * dist.(h).(placement.(other)))
              else acc)
            0 partners.(p)
        in
        (* Tie-break toward the centre to keep placements contiguous. *)
        (partner_cost, dist.(h).(centre), h)
      in
      let best = ref None in
      for h = 0 to n_hardware - 1 do
        if not used.(h) then
          match !best with
          | None -> best := Some (cost h)
          | Some c -> if cost h < c then best := Some (cost h)
      done;
      match !best with
      | Some (_, _, h) ->
        placement.(p) <- h;
        used.(h) <- true
      | None -> invalid_arg "Zulehner_like: program does not fit")
    order;
  placement

let compile ?(day = 0) machine circuit =
  if not (Machine.fits machine circuit) then
    invalid_arg "Zulehner_like.compile: program does not fit";
  let started_at = Sys.time () in
  let state, front_times = Common.start machine ~day circuit in
  let flat = state.Triq.Pass.circuit in
  let placement = greedy_placement machine flat in
  (* Hop-count routing = noise-unaware reliability matrix. *)
  let reliability =
    Triq.Reliability.compute_cached ~noise_aware:false
      ~calibration:state.Triq.Pass.calibration machine ~day
  in
  let routed =
    Triq.Router.route reliability machine.Machine.topology ~placement flat
  in
  Common.finalize ~compiler:"Zulehner" ~routed:routed.Triq.Router.circuit
    ~initial_placement:placement ~final_placement:routed.Triq.Router.final_placement
    ~swap_count:routed.Triq.Router.swap_count ~started_at ~front_times state
