module Machine = Device.Machine
module Machines = Device.Machines
module Calibration = Device.Calibration
module Gateset = Device.Gateset
module Topology = Device.Topology
module Pipeline = Triq.Pipeline
module Config = Triq.Pass.Config
module Schedule = Triq.Pass.Schedule
module Stats = Mathkit.Stats

type 'a row = { bench : string; values : (string * 'a option) list }

(* Grid rows (compile + simulate per benchmark/machine/level/day) are
   independent, so they fan out across the process-wide domain pool.
   Each row's work is self-contained — Runner.simulate seeds its own RNG —
   so every grid below is bit-for-bit identical for any pool size; the
   [-j] flags of bench/main and triqc resize the pool via
   [Parallel.Pool.set_default_jobs]. *)
let pmap f xs = Parallel.Pool.map (Parallel.Pool.default ()) f xs
let pfilter_map f xs = List.filter_map Fun.id (pmap f xs)
let pmap_range n f = pmap f (List.init n Fun.id)

let benches () = Programs.all

(* ---------- sweep-level sharding ---------- *)

let rec split_at n l =
  if n = 0 then ([], l)
  else
    match l with
    | x :: tl ->
      let a, b = split_at (n - 1) tl in
      (x :: a, b)
    | [] -> invalid_arg "Experiments.split_at"

(* Fan a whole (row x column) grid out across the pool as individual
   cells instead of per-row closures: with R rows of C columns the pool
   sees R*C units of work, so a handful of slow cells (a deep benchmark
   on a slow machine) no longer serializes the columns behind its row.
   Cells are enumerated in a deterministic order and regrouped
   row-major, and each cell seeds its own simulation RNG, so the result
   is identical to the nested spelling for every pool size. *)
let grid_rows items ~bench_of ~cols ~cell =
  let cells =
    List.concat_map (fun it -> List.map (fun (_, c) -> (it, c)) cols) items
  in
  let vals = pmap (fun (it, c) -> cell it c) cells in
  let ncols = List.length cols in
  let rec regroup vals = function
    | [] -> []
    | it :: rest ->
      let row_vals, tail = split_at ncols vals in
      {
        bench = bench_of it;
        values = List.map2 (fun (name, _) v -> (name, v)) cols row_vals;
      }
      :: regroup tail rest
  in
  regroup vals items

(* The common machine-major shape: every (machine, benchmark, column)
   cell of a multi-machine figure fans out at once; rows regroup under
   their machine's name afterwards. *)
let machine_grid machines ~cols ~cell =
  let bs = benches () in
  let items = List.concat_map (fun m -> List.map (fun p -> (m, p)) bs) machines in
  let rows =
    grid_rows items
      ~bench_of:(fun (_, p) -> p.Programs.name)
      ~cols
      ~cell:(fun (m, p) c -> cell m c p)
  in
  let nb = List.length bs in
  let rec chunk rows = function
    | [] -> []
    | (m : Machine.t) :: rest ->
      let mine, tail = split_at nb rows in
      (m.Machine.name, mine) :: chunk tail rest
  in
  chunk rows machines

(* Every grid below compiles through the pass driver: a [Config.t] plus
   the level's named schedule, so ablations (peephole, lookahead) are
   config/schedule edits rather than option tuples. *)
let compile_level ?(config = Config.default) ?day machine level circuit =
  let config =
    match day with None -> config | Some day -> { config with Config.day }
  in
  Pipeline.compile_schedule ~config machine circuit (Schedule.of_level ~config level)

(* Compile [p] on [machine] at [level]; None when it does not fit. *)
let try_compile ?config ?day machine level (p : Programs.t) =
  if Machine.fits machine p.Programs.circuit then
    Some (compile_level ?config ?day machine level p.Programs.circuit)
  else None

let try_success ?config ?day ?trajectories machine level p =
  Option.map
    (fun compiled ->
      let outcome =
        Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) (Pipeline.to_compiled compiled) p.Programs.spec
      in
      outcome.Sim.Runner.success_rate)
    (try_compile ?config ?day machine level p)

(* ---------- Figure 1 ---------- *)

let topology_blurb machine =
  let topo = machine.Machine.topology in
  if Topology.is_fully_connected topo then "fully connected"
  else
    Printf.sprintf "%s, max degree %d"
      (if Topology.directed topo then "directed" else "undirected")
      (List.fold_left
         (fun acc q -> max acc (Topology.degree topo q))
         0
         (List.init (Topology.n_qubits topo) (fun q -> q)))

let fig1_rows () =
  List.map
    (fun m ->
      let p = m.Machine.profile in
      [
        m.Machine.name;
        string_of_int (Machine.n_qubits m);
        string_of_int (Topology.edge_count m.Machine.topology);
        Printf.sprintf "%.3g" p.Calibration.coherence_us;
        Table.f2 (100.0 *. p.Calibration.avg_one_q_err);
        Table.f2 (100.0 *. p.Calibration.avg_two_q_err);
        Table.f2 (100.0 *. p.Calibration.avg_readout_err);
        topology_blurb m;
      ])
    Machines.all

let print_fig1 () =
  Table.print ~title:"Figure 1: device characteristics"
    ~header:
      [ "Machine"; "Qubits"; "2Q couplings"; "T (us)"; "1Q err %"; "2Q err %";
        "RO err %"; "Topology" ]
    (fig1_rows ())

(* ---------- Figure 2 ---------- *)

let fig2_rows () =
  List.map
    (fun basis ->
      [
        Gateset.vendor_name (Gateset.vendor_of_basis basis);
        Gateset.native_description basis;
        Gateset.visible_description basis;
      ])
    [ Gateset.Umd_visible; Gateset.Ibm_visible; Gateset.Rigetti_visible ]

let print_fig2 () =
  Table.print ~title:"Figure 2: native and software-visible gates"
    ~header:[ "Vendor"; "Native gates"; "Software-visible gates" ]
    (fig2_rows ())

(* ---------- Figure 3 ---------- *)

let fig3_edges = [ (6, 8); (7, 8); (9, 8); (13, 1) ]

let fig3_series () =
  let machine = Machines.ibmq14 in
  List.map
    (fun (a, b) ->
      let values =
        List.init 26 (fun day ->
            Calibration.two_q_err (Machine.calibration machine ~day) a b)
      in
      ((a, b), values))
    fig3_edges

let print_fig3 () =
  let series = fig3_series () in
  let header = "Day" :: List.map (fun ((a, b), _) -> Printf.sprintf "CNOT %d,%d" a b) series in
  let rows =
    List.init 26 (fun day ->
        string_of_int (day + 1)
        :: List.map (fun (_, values) -> Table.f3 (List.nth values day)) series)
  in
  Table.print ~title:"Figure 3: daily 2Q error variation on IBMQ14" ~header rows;
  List.iter
    (fun ((a, b), values) ->
      Printf.printf "CNOT %d,%d: min %.3f max %.3f (%.1fx range)\n" a b
        (Stats.minimum values) (Stats.maximum values)
        (Stats.maximum values /. Stats.minimum values))
    series

(* ---------- Table 1 ---------- *)

let tab1_rows () =
  [
    [ "TriQ-N"; "TriQ. No optimization. Default qubit mapping" ];
    [ "TriQ-1QOpt"; "TriQ, 1Q gate optimization. Default qubit mapping" ];
    [ "TriQ-1QOptC"; "TriQ. 1Q opt. Communication-optimized mapping" ];
    [ "TriQ-1QOptCN"; "TriQ. 1Q opt. Comm- and noise-optimized mapping" ];
    [ "Qiskit"; "IBM Qiskit 0.6-style baseline (reimplementation)" ];
    [ "Quil"; "Rigetti Quil 1.9-style baseline (reimplementation)" ];
  ]

let print_tab1 () =
  Table.print ~title:"Table 1: compilers and optimization levels"
    ~header:[ "Compiler"; "Description" ] (tab1_rows ())

(* ---------- Figures 5, 6, 7 ---------- *)

let print_fig5 () =
  let bv4 = Programs.bv 4 in
  Printf.printf "\n== Figure 5: IR for Bernstein-Vazirani (BV4) ==\n%s"
    (Ir.Draw.render bv4.Programs.circuit)

let print_fig6 () =
  let reliability =
    Triq.Reliability.of_calibration ~noise_aware:true
      Machines.example_8q.Machine.topology Machines.example_8q_calibration
  in
  Format.printf "\n== Figure 6: 2Q reliability matrix (example 8-qubit device) ==@\n%a"
    Triq.Reliability.pp reliability

let fig7_rows () =
  List.map
    (fun (p : Programs.t) ->
      let flat = Ir.Decompose.flatten p.Programs.circuit in
      [
        p.Programs.name;
        string_of_int p.Programs.circuit.Ir.Circuit.n_qubits;
        string_of_int (Ir.Circuit.one_q_count flat);
        string_of_int (Ir.Circuit.two_q_count flat);
        p.Programs.description;
      ])
    (benches ())

let print_fig7 () =
  Table.print ~title:"Figure 7: benchmarks"
    ~header:[ "Benchmark"; "Qubits"; "1Q (IR)"; "2Q (IR)"; "Description" ]
    (fig7_rows ())

(* ---------- Figure 8 ---------- *)

let fig8_machines () = [ Machines.ibmq14; Machines.agave; Machines.umdti ]

let fig8_data () =
  machine_grid (fig8_machines ())
    ~cols:[ ("TriQ-N", Pipeline.N); ("TriQ-1QOpt", Pipeline.OneQOpt) ]
    ~cell:(fun machine level p ->
      Option.map (fun r -> r.Pipeline.pulse_count) (try_compile machine level p))

let row_table (to_string : 'a option -> string) rows =
  match rows with
  | [] -> ([], [])
  | first :: _ ->
    let header = "Benchmark" :: List.map fst first.values in
    let body =
      List.map (fun r -> r.bench :: List.map (fun (_, v) -> to_string v) r.values) rows
    in
    (header, body)

let print_fig8 () =
  List.iter
    (fun (name, rows) ->
      let header, body = row_table Table.opt_int rows in
      Table.print
        ~title:(Printf.sprintf "Figure 8 (%s): native 1Q pulse counts" name)
        ~header body)
    (fig8_data ())

(* ---------- geomean helper ---------- *)

let geomean_improvement ?(invert = false) rows ~better ~baseline to_float =
  let pairs =
    List.filter_map
      (fun r ->
        match (List.assoc_opt better r.values, List.assoc_opt baseline r.values) with
        | Some (Some b), Some (Some base) ->
          let b = to_float b and base = to_float base in
          if invert then if base = 0.0 then None else Some (b, base)
          else if b = 0.0 then None
          else Some (base, b)
        | _ -> None)
      rows
  in
  (* Missing rows (machine skipped, benchmark absent) are a legitimate
     report state, not a programming error: keep NaN as the "no data"
     marker rather than letting geomean_ratio raise. *)
  match Stats.geomean_ratio_opt pairs with
  | Some g -> g
  | None -> Float.nan

(* ---------- Figure 9 ---------- *)

let fig9_data ?trajectories () =
  machine_grid
    [ Machines.ibmq14; Machines.umdti ]
    ~cols:[ ("TriQ-N", Pipeline.N); ("TriQ-1QOpt", Pipeline.OneQOpt) ]
    ~cell:(fun machine level p -> try_success ?trajectories machine level p)

let print_fig9 ?trajectories () =
  List.iter
    (fun (name, rows) ->
      let header, body = row_table Table.opt_f2 rows in
      Table.print
        ~title:(Printf.sprintf "Figure 9 (%s): success rate, TriQ-N vs TriQ-1QOpt" name)
        ~header body;
      Printf.printf "geomean improvement (1QOpt over N): %.2fx\n"
        (geomean_improvement ~invert:true rows ~better:"TriQ-1QOpt" ~baseline:"TriQ-N"
           Fun.id))
    (fig9_data ?trajectories ())

(* ---------- Figure 10 ---------- *)

let fig10_counts () =
  machine_grid
    [ Machines.ibmq14; Machines.agave ]
    ~cols:[ ("TriQ-1QOpt", Pipeline.OneQOpt); ("TriQ-1QOptC", Pipeline.OneQOptC) ]
    ~cell:(fun machine level p ->
      Option.map (fun r -> r.Pipeline.two_q_count) (try_compile machine level p))

let fig10_success ?trajectories () =
  let machine = Machines.ibmq14 in
  grid_rows (benches ())
    ~bench_of:(fun (p : Programs.t) -> p.Programs.name)
    ~cols:[ ("TriQ-1QOpt", Pipeline.OneQOpt); ("TriQ-1QOptC", Pipeline.OneQOptC) ]
    ~cell:(fun p level -> try_success ?trajectories machine level p)

let print_fig10 ?trajectories () =
  List.iter
    (fun (name, rows) ->
      let header, body = row_table Table.opt_int rows in
      Table.print
        ~title:(Printf.sprintf "Figure 10 (%s): 2Q gate count, +-comm. opt" name)
        ~header body;
      Printf.printf "geomean 2Q reduction: %.2fx\n"
        (geomean_improvement rows ~better:"TriQ-1QOptC" ~baseline:"TriQ-1QOpt"
           float_of_int))
    (fig10_counts ());
  let rows = fig10_success ?trajectories () in
  let header, body = row_table Table.opt_f2 rows in
  Table.print ~title:"Figure 10c (IBMQ14): success rate, +-comm. opt" ~header body

(* ---------- Figure 11 ---------- *)

let compile_with_baseline ?day machine which (p : Programs.t) =
  if not (Machine.fits machine p.Programs.circuit) then None
  else
    Some
      (match which with
      | `Qiskit -> Baselines.Qiskit_like.compile ?day machine p.Programs.circuit
      | `Quil -> Baselines.Quil_like.compile ?day machine p.Programs.circuit
      | `Zulehner -> Baselines.Zulehner_like.compile ?day machine p.Programs.circuit)

let baseline_success ?day ?trajectories machine which p =
  Option.map
    (fun compiled ->
      (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) compiled p.Programs.spec).Sim.Runner.success_rate)
    (compile_with_baseline ?day machine which p)

let fig11_counts () =
  let machine = Machines.ibmq14 in
  grid_rows (benches ())
    ~bench_of:(fun (p : Programs.t) -> p.Programs.name)
    ~cols:
      [
        ("Qiskit", `Qiskit);
        ("TriQ-1QOptC", `Level Pipeline.OneQOptC);
        ("TriQ-1QOptCN", `Level Pipeline.OneQOptCN);
      ]
    ~cell:(fun p -> function
      | `Qiskit ->
        Option.map
          (fun c -> c.Triq.Compiled.two_q_count)
          (compile_with_baseline machine `Qiskit p)
      | `Level level ->
        Option.map (fun r -> r.Pipeline.two_q_count) (try_compile machine level p))

let fig11_ibm_success ?trajectories () =
  let machine = Machines.ibmq14 in
  grid_rows (benches ())
    ~bench_of:(fun (p : Programs.t) -> p.Programs.name)
    ~cols:
      [
        ("Qiskit", `Qiskit);
        ("TriQ-1QOptC", `Level Pipeline.OneQOptC);
        ("TriQ-1QOptCN", `Level Pipeline.OneQOptCN);
      ]
    ~cell:(fun p -> function
      | `Qiskit -> baseline_success ?trajectories machine `Qiskit p
      | `Level level -> try_success ?trajectories machine level p)

let fig11_rigetti_success ?trajectories () =
  machine_grid
    [ Machines.agave; Machines.aspen1 ]
    ~cols:[ ("Quil", `Quil); ("TriQ-1QOptCN", `Level Pipeline.OneQOptCN) ]
    ~cell:(fun machine col p ->
      match col with
      | `Quil -> baseline_success ?trajectories machine `Quil p
      | `Level level -> try_success ?trajectories machine level p)

let fig11_sequences ?trajectories () =
  let machine = Machines.umdti in
  let series name programs =
    ( name,
      grid_rows programs
        ~bench_of:(fun (p : Programs.t) -> p.Programs.name)
        ~cols:
          [ ("TriQ-1QOptC", Pipeline.OneQOptC); ("TriQ-1QOptCN", Pipeline.OneQOptCN) ]
        ~cell:(fun p level -> try_success ?trajectories machine level p) )
  in
  [
    series "Toffoli sequence" (List.init 8 (fun i -> Sequences.toffoli (i + 1)));
    series "Fredkin sequence" (List.init 7 (fun i -> Sequences.fredkin (i + 1)));
  ]

let print_fig11 ?trajectories () =
  let counts = fig11_counts () in
  let header, body = row_table Table.opt_int counts in
  Table.print ~title:"Figure 11a (IBMQ14): 2Q gate count vs Qiskit" ~header body;
  let ibm = fig11_ibm_success ?trajectories () in
  let header, body = row_table Table.opt_f2 ibm in
  Table.print ~title:"Figure 11b (IBMQ14): success rate vs Qiskit" ~header body;
  Printf.printf "geomean improvement over Qiskit: %.2fx\n"
    (geomean_improvement ~invert:true ibm ~better:"TriQ-1QOptCN" ~baseline:"Qiskit" Fun.id);
  List.iter
    (fun (name, rows) ->
      let header, body = row_table Table.opt_f2 rows in
      Table.print
        ~title:(Printf.sprintf "Figure 11c/d (%s): success rate vs Quil" name)
        ~header body;
      Printf.printf "geomean improvement over Quil: %.2fx\n"
        (geomean_improvement ~invert:true rows ~better:"TriQ-1QOptCN" ~baseline:"Quil"
           Fun.id))
    (fig11_rigetti_success ?trajectories ());
  List.iter
    (fun (name, rows) ->
      let header, body = row_table Table.opt_f2 rows in
      Table.print
        ~title:(Printf.sprintf "Figure 11e/f (UMDTI): %s, +-noise adaptivity" name)
        ~header body)
    (fig11_sequences ?trajectories ())

(* ---------- Figure 12 ---------- *)

let fig12_data ?trajectories () =
  grid_rows (benches ())
    ~bench_of:(fun (p : Programs.t) -> p.Programs.name)
    ~cols:(List.map (fun m -> (m.Machine.name, m)) Machines.all)
    ~cell:(fun p machine -> try_success ?trajectories machine Pipeline.OneQOptCN p)

let print_fig12 ?trajectories () =
  let rows = fig12_data ?trajectories () in
  let header, body = row_table Table.opt_f2 rows in
  Table.print ~title:"Figure 12: success rate, 12 benchmarks x 7 systems (TriQ-1QOptCN)"
    ~header body

(* ---------- Scaling (Section 6.5) ---------- *)

let scaling_grids depth =
  [
    (4, 4, depth); (5, 5, depth); (6, 6, depth); (6, 9, depth); (6, 12, depth);
    (* The paper's largest configuration: 72 qubits, depth 128,
       ~2000 two-qubit gates. *)
    (6, 12, 128);
  ]

let scaling_data ?(node_budget = 20_000) ?(depth = 16) () =
  pmap
    (fun (rows, cols, depth) ->
      let n = rows * cols in
      let machine = Machines.bristlecone rows cols in
      let circuit = Supremacy.circuit ~seed:(1000 + n) ~rows ~cols ~depth in
      let config = Config.make ~node_budget () in
      let compiled = compile_level ~config machine Pipeline.OneQOptCN circuit in
      ( Printf.sprintf "%dx%d d%d" rows cols depth,
        n,
        compiled.Pipeline.two_q_count,
        compiled.Pipeline.compile_time_s ))
    (scaling_grids depth)

let print_scaling ?node_budget ?depth () =
  let rows =
    List.map
      (fun (label, n, twoq, secs) ->
        [ label; string_of_int n; string_of_int twoq; Printf.sprintf "%.2f" secs ])
      (scaling_data ?node_budget ?depth ())
  in
  Table.print ~title:"Section 6.5: compile-time scaling on supremacy circuits"
    ~header:[ "Grid"; "Qubits"; "2Q gates (mapped)"; "Compile time (s)" ]
    rows

(* ---------- Related work (Section 8) ---------- *)

let related_data () =
  let machine = Machines.ibmq16 in
  pmap
    (fun (p : Programs.t) ->
      let zulehner =
        Option.map
          (fun c -> c.Triq.Compiled.two_q_count)
          (compile_with_baseline machine `Zulehner p)
      in
      let triq =
        Option.map
          (fun r -> r.Pipeline.two_q_count)
          (try_compile machine Pipeline.OneQOptC p)
      in
      {
        bench = p.Programs.name;
        values = [ ("Zulehner", zulehner); ("TriQ-1QOptC", triq) ];
      })
    (benches ())

let print_related () =
  let rows = related_data () in
  let header, body = row_table Table.opt_int rows in
  Table.print ~title:"Section 8: 2Q count, hop-minimizing mapper vs TriQ (IBMQ16)"
    ~header body;
  Printf.printf "geomean 2Q reduction over Zulehner-style mapper: %.2fx\n"
    (geomean_improvement rows ~better:"TriQ-1QOptC" ~baseline:"Zulehner" float_of_int)

let run_all ?trajectories () =
  print_fig1 ();
  print_fig2 ();
  print_fig3 ();
  print_tab1 ();
  print_fig5 ();
  print_fig6 ();
  print_fig7 ();
  print_fig8 ();
  print_fig9 ?trajectories ();
  print_fig10 ?trajectories ();
  print_fig11 ?trajectories ();
  print_fig12 ?trajectories ();
  print_scaling ();
  print_related ()

(* ---------- Extensions beyond the paper's figures ---------- *)

(* Mapper-objective ablation (Section 4.3's scalability argument): the
   max-min objective prunes far earlier than the whole-graph product
   objective, at equal or better mapped quality. Runs the layout engines
   directly (the rows keep the legacy [Mapper.result] shape). *)
let ablation_mapper_data ?(node_budget = 200_000) () =
  let machine = Machines.ibmq16 in
  let calibration = Machine.calibration machine ~day:0 in
  let reliability = Triq.Reliability.compute ~noise_aware:true machine calibration in
  let legacy (r : Layout.Report.t) =
    {
      Triq.Mapper.placement = r.Layout.Report.placement;
      objective = r.Layout.Report.objective;
      nodes_explored = Layout.Report.legacy_nodes r;
      optimal = r.Layout.Report.proven_optimal;
    }
  in
  pfilter_map
    (fun (p : Programs.t) ->
      if not (Machine.fits machine p.Programs.circuit) then None
      else begin
        let flat = Ir.Decompose.flatten p.Programs.circuit in
        let problem objective = Triq.Placement.problem ~objective reliability flat in
        let run objective = legacy (Layout.Bb.solve ~node_budget (problem objective)) in
        let max_min = run Layout.Problem.Max_min in
        let product = run Layout.Problem.Product in
        let smt = legacy (Layout.Smt_search.solve (problem Layout.Problem.Max_min)) in
        Some (p.Programs.name, max_min, product, smt)
      end)
    (benches ())

let print_ablation_mapper () =
  let rows =
    List.map
      (fun (bench, (mm : Triq.Mapper.result), (pr : Triq.Mapper.result),
            (smt : Triq.Mapper.result)) ->
        [
          bench;
          string_of_int mm.Triq.Mapper.nodes_explored;
          Table.f3 mm.Triq.Mapper.objective;
          string_of_int pr.Triq.Mapper.nodes_explored;
          Table.f3 pr.Triq.Mapper.objective;
          string_of_int smt.Triq.Mapper.nodes_explored;
          Table.f3 smt.Triq.Mapper.objective;
        ])
      (ablation_mapper_data ())
  in
  Table.print
    ~title:
      "Ablation: mapping engines (IBMQ16, Sec 4.3) — B&B max-min vs B&B product vs SAT threshold search"
    ~header:
      [ "Benchmark"; "maxmin nodes"; "min rel"; "product nodes"; "min rel";
        "SAT decisions"; "min rel" ]
    rows

(* Peephole ablation: adjacent self-inverse 2Q pairs produced by routing. *)
let ablation_peephole_data () =
  let machine = Machines.ibmq14 in
  pfilter_map
    (fun (p : Programs.t) ->
      if not (Machine.fits machine p.Programs.circuit) then None
      else begin
        let two_q config =
          (compile_level ~config machine Pipeline.OneQOptCN p.Programs.circuit)
            .Pipeline.two_q_count
        in
        Some
          ( p.Programs.name,
            two_q Config.default,
            two_q { Config.default with Config.peephole = true } )
      end)
    (benches ())

let print_ablation_peephole () =
  let data = ablation_peephole_data () in
  let rows =
    List.map
      (fun (bench, without, with_) ->
        [ bench; string_of_int without; string_of_int with_ ])
      data
  in
  Table.print ~title:"Ablation: 2Q peephole cancellation (IBMQ14, TriQ-1QOptCN)"
    ~header:[ "Benchmark"; "2Q without"; "2Q with peephole" ]
    rows;
  let pairs = List.map (fun (_, w, p) -> (float_of_int w, float_of_int p)) data in
  Printf.printf "geomean 2Q reduction from peephole: %.3fx\n"
    (Stats.geomean_ratio pairs)

(* Larger ion trap with distance-dependent 2Q error: noise adaptivity
   should matter *more* than on the 5-ion UMDTI (Section 6.3's
   projection). *)
let iontrap_programs () =
  [
    Programs.bv 4; Programs.hidden_shift 4; Programs.qft 4; Programs.toffoli;
    Sequences.toffoli 4; Sequences.fredkin 4;
  ]

let iontrap_data ?trajectories ?(ions = 13) () =
  let machine = Machines.ion_trap_chain ions in
  pmap
    (fun (p : Programs.t) ->
      {
        bench = p.Programs.name;
        values =
          [
            ("TriQ-1QOptC", try_success ?trajectories machine Pipeline.OneQOptC p);
            ("TriQ-1QOptCN", try_success ?trajectories machine Pipeline.OneQOptCN p);
          ];
      })
    (iontrap_programs ())

let print_iontrap ?trajectories () =
  let rows = iontrap_data ?trajectories () in
  let header, body = row_table Table.opt_f2 rows in
  Table.print
    ~title:"Extension: 13-ion trap with distance-dependent 2Q error (Sec 6.3)"
    ~header body;
  Printf.printf "geomean noise-adaptivity gain on the large trap: %.2fx\n"
    (geomean_improvement ~invert:true rows ~better:"TriQ-1QOptCN"
       ~baseline:"TriQ-1QOptC" Fun.id)

(* Section 8's comparison with Tannu & Qureshi: BV4 on the 5-qubit IBM
   system across six days of differing error conditions. The paper reports
   [65]'s 0.23 vs TriQ's 0.43-0.51 (average 0.47). *)
let tannu_data ?trajectories () =
  let machine = Machines.ibmq5 in
  let p = Programs.bv 4 in
  pmap
    (fun day ->
      let triq = try_success ~day ?trajectories machine Pipeline.OneQOptCN p in
      let qiskit = baseline_success ~day ?trajectories machine `Qiskit p in
      (day, Option.value ~default:0.0 triq, Option.value ~default:0.0 qiskit))
    [ 0; 1; 2; 3; 4; 5 ]

let print_tannu ?trajectories () =
  let data = tannu_data ?trajectories () in
  let rows =
    List.map
      (fun (day, triq, qiskit) ->
        [ string_of_int day; Table.f2 triq; Table.f2 qiskit ])
      data
  in
  Table.print ~title:"Section 8: BV4 on IBMQ5 across six days (vs noise-unaware)"
    ~header:[ "Day"; "TriQ-1QOptCN"; "Qiskit-like" ]
    rows;
  let triq = List.map (fun (_, t, _) -> t) data in
  Printf.printf "TriQ range %.2f-%.2f, average %.2f (paper: 0.43-0.51, avg 0.47)\n"
    (Stats.minimum triq) (Stats.maximum triq) (Stats.mean triq)

let run_extensions ?trajectories () =
  print_ablation_mapper ();
  print_ablation_peephole ();
  print_iontrap ?trajectories ();
  print_tannu ?trajectories ()

(* Pulse-level timing vs coherence (Sections 3.3 and 7): programs consume
   only a small fraction of the coherence window, supporting the paper's
   observation that gate errors, not coherence, limit NISQ programs. *)
let coherence_data () =
  let p = Programs.toffoli in
  pmap
    (fun machine ->
      let compiled =
        Pipeline.to_compiled
          (compile_level machine Pipeline.OneQOptCN p.Programs.circuit)
      in
      let schedule = Pulse.Lower.of_compiled compiled in
      let duration_us = Pulse.Schedule.duration_ns schedule /. 1000.0 in
      let coherence_us = machine.Machine.profile.Calibration.coherence_us in
      ( machine.Machine.name,
        Pulse.Schedule.play_count schedule,
        Pulse.Schedule.frame_change_count schedule,
        duration_us,
        duration_us /. coherence_us,
        1.0 -. compiled.Triq.Compiled.esp ))
    Machines.all

let print_coherence () =
  let rows =
    List.map
      (fun (name, plays, fcs, duration, fraction, gate_err) ->
        [
          name; string_of_int plays; string_of_int fcs;
          Printf.sprintf "%.1f" duration; Printf.sprintf "%.4f" fraction;
          Table.f2 gate_err;
        ])
      (coherence_data ())
  in
  Table.print
    ~title:"Extension: pulse-level duration vs coherence (Toffoli, TriQ-1QOptCN)"
    ~header:
      [ "Machine"; "Pulses"; "Frame chg"; "Duration (us)"; "T fraction";
        "Accum. gate error" ]
    rows;
  print_endline
    "Gate error dominates the coherence fraction on every machine: the\n\
     paper's observation that NISQ programs are gate-limited, not\n\
     coherence-limited."

(* Characterization closure: randomized-benchmarking the simulated devices
   recovers the calibration error rates the compiler consumes. *)
let characterize_data () =
  pmap
    (fun (machine, a, b) ->
      let calibration = Machine.calibration machine ~day:0 in
      let noise = Sim.Noise.create machine calibration in
      let injected_1q = Sim.Noise.gate_error_prob noise (Ir.Gate.One (Ir.Gate.X, a)) in
      let injected_2q =
        Sim.Noise.gate_error_prob noise (Ir.Gate.Two (Ir.Gate.Cnot, a, b))
      in
      let rb1 = Characterize.Benchmarking.one_qubit machine ~day:0 ~qubit:a in
      let rb2 = Characterize.Benchmarking.two_qubit machine ~day:0 ~a ~b in
      ( machine.Machine.name,
        injected_1q,
        rb1.Characterize.Benchmarking.error_per_gate,
        injected_2q,
        rb2.Characterize.Benchmarking.error_per_gate ))
    [
      (Machines.ibmq5, 1, 0); (Machines.ibmq14, 1, 0); (Machines.agave, 0, 1);
      (Machines.aspen1, 0, 1); (Machines.umdti, 0, 1);
    ]

let print_characterize () =
  let rows =
    List.map
      (fun (name, i1, r1, i2, r2) ->
        [
          name;
          Printf.sprintf "%.4f" i1; Printf.sprintf "%.4f" r1;
          Printf.sprintf "%.4f" i2; Printf.sprintf "%.4f" r2;
        ])
      (characterize_data ())
  in
  Table.print
    ~title:"Extension: randomized benchmarking recovers calibration inputs"
    ~header:[ "Machine"; "1Q inj"; "1Q recovered"; "2Q inj"; "2Q recovered" ]
    rows

(* Routing ablation: noise-aware mapping with hop-count routing isolates
   the contribution of reliability-path SWAP insertion (Section 4.4). *)
let hybrid_routing_compile ?(day = 0) machine (p : Programs.t) =
  let started_at = Sys.time () in
  let state, front_times = Baselines.Common.start machine ~day p.Programs.circuit in
  let flat = state.Triq.Pass.circuit in
  let calibration = state.Triq.Pass.calibration in
  let aware =
    Triq.Reliability.compute_cached ~noise_aware:true ~calibration machine ~day
  in
  let unaware =
    Triq.Reliability.compute_cached ~noise_aware:false ~calibration machine ~day
  in
  let placement =
    (Triq.Placement.solve ~reliability:aware ~machine_name:machine.Machine.name
       ~day flat)
      .Layout.Report.placement
  in
  let routed = Triq.Router.route unaware machine.Machine.topology ~placement flat in
  Baselines.Common.finalize ~compiler:"TriQ-hybrid" ~routed:routed.Triq.Router.circuit
    ~initial_placement:placement ~final_placement:routed.Triq.Router.final_placement
    ~swap_count:routed.Triq.Router.swap_count ~started_at ~front_times state

let ablation_routing_data ?trajectories () =
  let machine = Machines.ibmq14 in
  pfilter_map
    (fun (p : Programs.t) ->
      if not (Machine.fits machine p.Programs.circuit) then None
      else begin
        let full = try_success ?trajectories machine Pipeline.OneQOptCN p in
        let hybrid =
          (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) (hybrid_routing_compile machine p)
             p.Programs.spec).Sim.Runner.success_rate
        in
        Some
          {
            bench = p.Programs.name;
            values = [ ("hop routing", Some hybrid); ("reliability routing", full) ];
          }
      end)
    (benches ())

let print_ablation_routing ?trajectories () =
  let rows = ablation_routing_data ?trajectories () in
  let header, body = row_table Table.opt_f2 rows in
  Table.print
    ~title:"Ablation: hop-count vs reliability-path routing (IBMQ14, noise-aware mapping)"
    ~header body;
  Printf.printf "geomean gain from reliability-path routing: %.2fx\n"
    (geomean_improvement ~invert:true rows ~better:"reliability routing"
       ~baseline:"hop routing" Fun.id)

(* Staleness study (Section 7, "the value of recompiling applications to
   account for up-to-date noise data"): an executable compiled against day
   0's calibration, run on later days, vs recompiling each day. *)
let staleness_data ?trajectories ?(days = 8) () =
  let machine = Machines.ibmq14 in
  let p = Programs.bv 6 in
  let stale_exe =
    Pipeline.to_compiled
      (compile_level ~day:0 machine Pipeline.OneQOptCN p.Programs.circuit)
  in
  pmap_range days (fun day ->
      let stale =
        (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ~day ()) stale_exe p.Programs.spec)
          .Sim.Runner.success_rate
      in
      let fresh =
        (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ())
           (Pipeline.to_compiled
              (compile_level ~day machine Pipeline.OneQOptCN p.Programs.circuit))
           p.Programs.spec)
          .Sim.Runner.success_rate
      in
      (day, stale, fresh))

let print_staleness ?trajectories () =
  let data = staleness_data ?trajectories () in
  let rows =
    List.map
      (fun (day, stale, fresh) ->
        [ string_of_int day; Table.f2 stale; Table.f2 fresh ])
      data
  in
  Table.print
    ~title:"Extension: stale executable vs daily recompilation (BV6, IBMQ14)"
    ~header:[ "Day"; "Day-0 executable"; "Recompiled" ]
    rows;
  let stale = List.map (fun (_, s, _) -> s) data in
  let fresh = List.map (fun (_, _, f) -> f) data in
  Printf.printf "mean: stale %.3f, recompiled %.3f (%.2fx)\n" (Stats.mean stale)
    (Stats.mean fresh)
    (Stats.mean fresh /. Stats.mean stale)

(* ESP validation: the estimated success probability that drives mapping
   decisions must correlate strongly with measured success across the
   whole study grid — otherwise optimizing it would be pointless. *)
let esp_correlation_data ?trajectories () =
  (* One flat (machine x benchmark) cell list: the whole study grid
     fans out across the pool at once. *)
  pfilter_map
    (fun (machine, (p : Programs.t)) ->
      Option.map
        (fun compiled ->
          let success =
            (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) (Pipeline.to_compiled compiled)
               p.Programs.spec)
              .Sim.Runner.success_rate
          in
          ( Printf.sprintf "%s/%s" machine.Machine.name p.Programs.name,
            compiled.Pipeline.esp,
            success ))
        (try_compile machine Pipeline.OneQOptCN p))
    (List.concat_map
       (fun machine -> List.map (fun p -> (machine, p)) (benches ()))
       Machines.all)

let print_esp_correlation ?trajectories () =
  let data = esp_correlation_data ?trajectories () in
  let rows =
    List.map (fun (label, esp, success) -> [ label; Table.f3 esp; Table.f3 success ]) data
  in
  Table.print ~title:"Extension: ESP vs measured success (all machines x benchmarks)"
    ~header:[ "Run"; "ESP"; "Measured" ]
    rows;
  let pairs = List.map (fun (_, esp, success) -> (esp, success)) data in
  Printf.printf "Pearson correlation: %.3f over %d runs\n"
    (Stats.correlation pairs) (List.length pairs)

(* Lookahead-routing ablation: score swap paths by the next few 2Q gates
   too, not just the current one. *)
let ablation_lookahead_data ?trajectories () =
  let machine = Machines.ibmq14 in
  pfilter_map
    (fun (p : Programs.t) ->
      if not (Machine.fits machine p.Programs.circuit) then None
      else begin
        let run router =
          let config = { Config.default with Config.router } in
          let compiled =
            compile_level ~config machine Pipeline.OneQOptCN p.Programs.circuit
          in
          ( compiled.Pipeline.two_q_count,
            (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) (Pipeline.to_compiled compiled)
               p.Programs.spec)
              .Sim.Runner.success_rate )
        in
        let d2, ds = run Config.Default in
        let l2, ls = run Config.Lookahead in
        Some (p.Programs.name, d2, ds, l2, ls)
      end)
    (benches ())

let print_ablation_lookahead ?trajectories () =
  let data = ablation_lookahead_data ?trajectories () in
  let rows =
    List.map
      (fun (bench, d2, ds, l2, ls) ->
        [ bench; string_of_int d2; Table.f2 ds; string_of_int l2; Table.f2 ls ])
      data
  in
  Table.print
    ~title:"Ablation: default vs lookahead routing (IBMQ14, TriQ-1QOptCN)"
    ~header:[ "Benchmark"; "2Q (default)"; "success"; "2Q (lookahead)"; "success" ]
    rows;
  let pairs = List.map (fun (_, _, ds, _, ls) -> (ls, ds)) data in
  Printf.printf "geomean success ratio (lookahead / default): %.3fx\n"
    (Stats.geomean_ratio pairs)

(* Headline summary: the paper's reported numbers next to ours, computed
   live — the quantitative core of EXPERIMENTS.md. *)
let summary_data ?trajectories () =
  let fig9 = fig9_data ?trajectories () in
  let geo_fig9 machine =
    geomean_improvement ~invert:true (List.assoc machine fig9) ~better:"TriQ-1QOpt"
      ~baseline:"TriQ-N" Fun.id
  in
  let fig10 = fig10_counts () in
  let geo_fig10 machine =
    geomean_improvement (List.assoc machine fig10) ~better:"TriQ-1QOptC"
      ~baseline:"TriQ-1QOpt" float_of_int
  in
  let fig11b = fig11_ibm_success ?trajectories () in
  let quil = fig11_rigetti_success ?trajectories () in
  let geo_quil machine =
    geomean_improvement ~invert:true (List.assoc machine quil) ~better:"TriQ-1QOptCN"
      ~baseline:"Quil" Fun.id
  in
  let related = related_data () in
  [
    ("1Q-opt success gain, IBMQ14 (Fig 9)", "1.09x", Printf.sprintf "%.2fx" (geo_fig9 "IBMQ14"));
    ("1Q-opt success gain, UMDTI (Fig 9)", "1.03x", Printf.sprintf "%.2fx" (geo_fig9 "UMDTI"));
    ("comm-opt 2Q reduction, IBMQ14 (Fig 10)", "2.1x", Printf.sprintf "%.2fx" (geo_fig10 "IBMQ14"));
    ("comm-opt 2Q reduction, Agave (Fig 10)", "1.3x", Printf.sprintf "%.2fx" (geo_fig10 "Agave"));
    ( "TriQ-1QOptCN vs Qiskit, IBMQ14 (Fig 11)",
      "3.0x",
      Printf.sprintf "%.2fx"
        (geomean_improvement ~invert:true fig11b ~better:"TriQ-1QOptCN"
           ~baseline:"Qiskit" Fun.id) );
    ("TriQ-1QOptCN vs Quil, Agave (Fig 11)", "1.45x (both Rigetti)",
     Printf.sprintf "%.2fx" (geo_quil "Agave"));
    ("TriQ-1QOptCN vs Quil, Aspen1 (Fig 11)", "1.45x (both Rigetti)",
     Printf.sprintf "%.2fx" (geo_quil "Aspen1"));
    ( "2Q reduction vs hop-minimizing mapper (Sec 8)",
      "1.2x",
      Printf.sprintf "%.2fx"
        (geomean_improvement related ~better:"TriQ-1QOptC" ~baseline:"Zulehner"
           float_of_int) );
  ]

let print_summary ?trajectories () =
  let rows =
    List.map (fun (metric, paper, ours) -> [ metric; paper; ours ])
      (summary_data ?trajectories ())
  in
  Table.print ~title:"Summary: paper-reported geomeans vs this reproduction"
    ~header:[ "Metric"; "Paper"; "Measured" ] rows

(* Per-benchmark compiled-executable properties on one machine: the
   quantities Figures 8-11 are built from, in one table. *)
let properties_rows machine =
  List.filter_map
    (fun (p : Programs.t) ->
      Option.map
        (fun r ->
          let dag = Ir.Dag.of_circuit r.Pipeline.hardware in
          [
            p.Programs.name;
            string_of_int r.Pipeline.two_q_count;
            string_of_int r.Pipeline.pulse_count;
            string_of_int r.Pipeline.swap_count;
            string_of_int (Ir.Dag.depth dag);
            Printf.sprintf "%.2f" (Machine.duration_us machine (Ir.Circuit.body r.Pipeline.hardware));
            Table.f3 r.Pipeline.esp;
          ])
        (try_compile machine Pipeline.OneQOptCN p))
    (benches ())

let print_properties machine =
  Table.print
    ~title:
      (Printf.sprintf "Compiled-executable properties on %s (TriQ-1QOptCN)"
         machine.Machine.name)
    ~header:[ "Benchmark"; "2Q"; "Pulses"; "Swaps"; "Depth"; "Duration us"; "ESP" ]
    (properties_rows machine)

(* Topology projection: the same error profile on IBM's post-2019
   heavy-hex-style layout vs the Melbourne lattice — topology, isolated. *)
let heavyhex_data ?trajectories () =
  let profile = Machines.ibmq14.Machine.profile in
  let heavy =
    (* A 14-qubit heavy-hex fragment (3 cells), degree <= 3 like IBM's
       post-2019 layouts. *)
    Machine.create ~name:"HeavyHex14" ~basis:Gateset.Ibm_visible
      ~topology:(Topology.heavy_hex 3) ~profile ~seed:1401
  in
  pfilter_map
    (fun (p : Programs.t) ->
      match (try_success ?trajectories Machines.ibmq14 Pipeline.OneQOptCN p,
             try_success ?trajectories heavy Pipeline.OneQOptCN p) with
      | Some lattice, Some hex ->
        Some { bench = p.Programs.name; values = [ ("lattice", Some lattice); ("heavy-hex", Some hex) ] }
      | _ -> None)
    (benches ())

let print_heavyhex ?trajectories () =
  let rows = heavyhex_data ?trajectories () in
  let header, body = row_table Table.opt_f2 rows in
  Table.print
    ~title:"Extension: Melbourne lattice vs heavy-hex-style topology (same error profile)"
    ~header body;
  Printf.printf "geomean lattice/heavy-hex success ratio: %.2fx\n"
    (geomean_improvement ~invert:true rows ~better:"lattice" ~baseline:"heavy-hex" Fun.id)

(* Variability panel: BV4 success across ten calibration days on each IBM
   machine — the benchmark-level consequence of Figure 3's error drift. *)
let variability_data ?trajectories ?(days = 10) () =
  let machines = [ Machines.ibmq5; Machines.ibmq14; Machines.ibmq16 ] in
  let p = Programs.bv 4 in
  (* Shard the full (machine x day) grid, then regroup per machine. *)
  let vals =
    pmap
      (fun (machine, day) ->
        Option.value ~default:0.0
          (try_success ~day ?trajectories machine Pipeline.OneQOptCN p))
      (List.concat_map
         (fun m -> List.init days (fun day -> (m, day)))
         machines)
  in
  let rec chunk vals = function
    | [] -> []
    | (m : Machine.t) :: rest ->
      let mine, tail = split_at days vals in
      (m.Machine.name, mine) :: chunk tail rest
  in
  chunk vals machines

let print_variability ?trajectories () =
  let data = variability_data ?trajectories () in
  let days = match data with (_, l) :: _ -> List.length l | [] -> 0 in
  let header = "Day" :: List.map fst data in
  let rows =
    List.init days (fun d ->
        string_of_int d
        :: List.map (fun (_, series) -> Table.f2 (List.nth series d)) data)
  in
  Table.print ~title:"Extension: BV4 success across ten calibration days (TriQ-1QOptCN)"
    ~header rows;
  List.iter
    (fun (name, series) ->
      Printf.printf "%s: mean %.2f, min %.2f, max %.2f\n" name (Stats.mean series)
        (Stats.minimum series) (Stats.maximum series))
    data

(* Section 6.4 what-if: exposing Aspen's parametric iSWAP to software.
   SWAPs cost two interactions instead of three, so swap-heavy
   benchmarks gain. *)
let parametric_data ?trajectories () =
  List.concat_map
    (fun (plain, parametric) ->
      pfilter_map
        (fun (p : Programs.t) ->
          if not (Machine.fits plain p.Programs.circuit) then None
          else begin
            let run machine =
              let compiled =
                compile_level machine Pipeline.OneQOptCN p.Programs.circuit
              in
              ( compiled.Pipeline.two_q_count,
                (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) (Pipeline.to_compiled compiled)
                   p.Programs.spec)
                  .Sim.Runner.success_rate )
            in
            let c2, cs = run plain in
            let p2, ps = run parametric in
            Some (plain.Machine.name, p.Programs.name, c2, cs, p2, ps)
          end)
        (benches ()))
    [ (Machines.aspen1, Machines.aspen1_parametric) ]

let print_parametric ?trajectories () =
  let data = parametric_data ?trajectories () in
  let rows =
    List.map
      (fun (_, bench, c2, cs, p2, ps) ->
        [ bench; string_of_int c2; Table.f2 cs; string_of_int p2; Table.f2 ps ])
      data
  in
  Table.print
    ~title:"Extension (Sec 6.4): Aspen1 with the parametric iSWAP exposed"
    ~header:[ "Benchmark"; "2Q (CZ only)"; "success"; "2Q (+iSWAP)"; "success" ]
    rows;
  let pairs = List.map (fun (_, _, _, cs, _, ps) -> (ps, cs)) data in
  Printf.printf "geomean success gain from exposing iSWAP: %.3fx\n"
    (Stats.geomean_ratio pairs)

(* Noise-model ablation: the default folds decoherence into depolarizing
   probability; the explicit model applies amplitude-damping channels. If
   the study's conclusions were sensitive to this choice the substitution
   would be fragile. *)
let noise_model_data ?trajectories () =
  let machine = Machines.ibmq14 in
  pfilter_map
    (fun (p : Programs.t) ->
      if not (Machine.fits machine p.Programs.circuit) then None
      else begin
        let compiled =
          Pipeline.to_compiled
            (compile_level machine Pipeline.OneQOptCN p.Programs.circuit)
        in
        let folded =
          (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) compiled p.Programs.spec).Sim.Runner.success_rate
        in
        let explicit =
          (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ~explicit_t1:true ()) compiled p.Programs.spec)
            .Sim.Runner.success_rate
        in
        Some (p.Programs.name, folded, explicit)
      end)
    (benches ())

let print_noise_model ?trajectories () =
  let data = noise_model_data ?trajectories () in
  let rows =
    List.map
      (fun (bench, folded, explicit) -> [ bench; Table.f2 folded; Table.f2 explicit ])
      data
  in
  Table.print
    ~title:"Ablation: folded-decoherence vs explicit-T1 noise model (IBMQ14)"
    ~header:[ "Benchmark"; "Folded"; "Explicit T1" ]
    rows;
  let diffs = List.map (fun (_, f, e) -> Float.abs (f -. e)) data in
  Printf.printf "max |difference| across benchmarks: %.3f\n" (Stats.maximum diffs)

(* GHZ fidelity via parity oscillations — the standard multi-qubit
   entanglement witness: F = (P_00..0 + P_11..1)/2 + C/2 where C is the
   amplitude of <parity> under a phase rotation applied to every qubit.
   F > 0.5 certifies genuine n-qubit entanglement. *)
let ghz_fidelity ?trajectories machine n =
  let open Ir.Gate in
  if not (Machine.fits machine (Ir.Circuit.empty n)) then None
  else begin
    let prep = One (H, 0) :: List.init (n - 1) (fun i -> Two (Cnot, i, i + 1)) in
    let measured = List.init n (fun q -> q) in
    let run gates =
      let circuit = Ir.Circuit.measure_all (Ir.Circuit.create n gates) measured in
      let compiled =
        Pipeline.to_compiled (compile_level machine Pipeline.OneQOptCN circuit)
      in
      let spec =
        Ir.Spec.distribution measured
          (Sim.Runner.ideal_distribution (Ir.Circuit.create n gates) ~measured)
      in
      (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ?trajectories ()) compiled spec).Sim.Runner.distribution
    in
    (* Populations from the computational-basis run. *)
    let z_dist = run prep in
    let prob bits = Option.value ~default:0.0 (List.assoc_opt bits z_dist) in
    let populations = prob (String.make n '0') +. prob (String.make n '1') in
    (* Parity oscillation: rotate every qubit by phi about an equatorial
       axis, measure <X^n parity>; the coherence is the amplitude of the
       cos(n phi) component. *)
    let steps = 2 * n in
    let coherence_samples =
      pmap_range steps (fun k ->
          let phi = Float.pi *. float_of_int k /. float_of_int steps in
          let rotate =
            List.init n (fun q -> One (Rz phi, q))
            @ List.init n (fun q -> One (H, q))
          in
          let dist = run (prep @ rotate) in
          let parity = Sim.Dist.parity_expectation dist measured in
          (phi, parity))
    in
    (* Amplitude of the cos(n phi) Fourier component. *)
    let coherence =
      2.0
      /. float_of_int steps
      *. Float.abs
           (List.fold_left
              (fun acc (phi, p) -> acc +. (p *. cos (float_of_int n *. phi)))
              0.0 coherence_samples)
    in
    Some ((populations /. 2.0) +. (coherence /. 2.0))
  end

let ghz_data ?trajectories ?(n = 3) () =
  List.filter_map
    (fun machine ->
      Option.map (fun f -> (machine.Machine.name, f)) (ghz_fidelity ?trajectories machine n))
    Machines.all

let print_ghz ?trajectories () =
  let data = ghz_data ?trajectories () in
  Table.print ~title:"Extension: GHZ3 fidelity via parity oscillations"
    ~header:[ "Machine"; "Fidelity" ]
    (List.map (fun (name, f) -> [ name; Table.f3 f ]) data);
  print_endline "F > 0.5 certifies genuine 3-qubit entanglement."
