(** The experiment harness: one entry per table and figure of the paper's
    evaluation (see DESIGN.md's experiment index).

    Every experiment has a data function (structured rows, used by tests
    and by EXPERIMENTS.md generation) and a [print_*] companion that
    renders the same rows as a text table. [run_all] prints everything in
    paper order. Success-rate experiments accept [?trajectories] to trade
    precision for speed (tests use small values; the bench harness uses
    the default).

    Grid rows fan out across {!Parallel.Pool.default} (resize it with
    [Parallel.Pool.set_default_jobs], i.e. the [-j] flags of bench/main
    and triqc). Every row seeds its own RNG, so all data functions return
    identical values for every pool size — parallelism changes only
    wall-clock time. *)

(** A per-benchmark row: benchmark name and one value per series, [None]
    when the benchmark does not fit the machine (the paper's "X"). *)
type 'a row = { bench : string; values : (string * 'a option) list }

(* -- Device and toolflow descriptions -- *)

val fig1_rows : unit -> string list list
val print_fig1 : unit -> unit

val fig2_rows : unit -> string list list
val print_fig2 : unit -> unit

(** Figure 3: 26 days of 2Q error rates for four IBMQ14 couplings. *)
val fig3_series : unit -> ((int * int) * float list) list

val print_fig3 : unit -> unit

val tab1_rows : unit -> string list list
val print_tab1 : unit -> unit

val print_fig5 : unit -> unit
val print_fig6 : unit -> unit

val fig7_rows : unit -> string list list
val print_fig7 : unit -> unit

(* -- Gate specificity (Figures 8, 9) -- *)

(** Figure 8: native 1Q pulse counts under TriQ-N vs TriQ-1QOpt on
    IBMQ14, Rigetti Agave and UMDTI. Returns (machine name, rows). *)
val fig8_data : unit -> (string * int row list) list

val print_fig8 : unit -> unit

(** Figure 9: measured success rate, TriQ-N vs TriQ-1QOpt, on IBMQ14 and
    UMDTI. *)
val fig9_data : ?trajectories:int -> unit -> (string * float row list) list

val print_fig9 : ?trajectories:int -> unit -> unit

(* -- Communication optimization (Figure 10) -- *)

(** Figure 10a/b: 2Q gate counts, TriQ-1QOpt vs TriQ-1QOptC, on IBMQ14 and
    Agave. *)
val fig10_counts : unit -> (string * int row list) list

(** Figure 10c: success rates for the same two levels on IBMQ14. *)
val fig10_success : ?trajectories:int -> unit -> float row list

val print_fig10 : ?trajectories:int -> unit -> unit

(* -- Noise adaptivity (Figure 11) -- *)

(** Figure 11a: 2Q counts on IBMQ14 for Qiskit, TriQ-1QOptC,
    TriQ-1QOptCN. *)
val fig11_counts : unit -> int row list

(** Figure 11b: success rates on IBMQ14 for the same three compilers. *)
val fig11_ibm_success : ?trajectories:int -> unit -> float row list

(** Figure 11c/d: success rates on Agave and Aspen1, Quil vs
    TriQ-1QOptCN. Returns (machine name, rows). *)
val fig11_rigetti_success :
  ?trajectories:int -> unit -> (string * float row list) list

(** Figure 11e/f: success rate of Toffoli (1..8) and Fredkin (1..7)
    sequences on UMDTI, TriQ-1QOptC vs TriQ-1QOptCN. Returns
    (series name, rows indexed by iteration count). *)
val fig11_sequences : ?trajectories:int -> unit -> (string * float row list) list

val print_fig11 : ?trajectories:int -> unit -> unit

(* -- Cross-platform summary (Figure 12) -- *)

(** Figure 12: TriQ-1QOptCN success rate for the 12 benchmarks on all
    seven systems. *)
val fig12_data : ?trajectories:int -> unit -> float row list

val print_fig12 : ?trajectories:int -> unit -> unit

(* -- Scaling study (Section 6.5) -- *)

(** Compile-time scaling on supremacy circuits mapped to Bristlecone-style
    grids: (label, qubits, 2Q gates, compile seconds). [?node_budget]
    bounds the mapper search per instance. *)
val scaling_data :
  ?node_budget:int -> ?depth:int -> unit -> (string * int * int * float) list

val print_scaling : ?node_budget:int -> ?depth:int -> unit -> unit

(* -- Related-work comparison (Section 8) -- *)

(** 2Q gate counts on IBMQ16: Zulehner-style hop minimizer vs
    TriQ-1QOptC, with the geomean ratio the paper reports (1.2x). *)
val related_data : unit -> int row list

val print_related : unit -> unit

(** [geomean_improvement rows ~better ~baseline] is the geometric mean of
    baseline/better value ratios over rows where both are present —
    improvement factors as the paper reports them (for success rates use
    [~invert:true] to compute better/baseline instead). *)
val geomean_improvement :
  ?invert:bool -> 'a row list -> better:string -> baseline:string -> ('a -> float) -> float

(** [run_all ?trajectories ()] prints every experiment in paper order. *)
val run_all : ?trajectories:int -> unit -> unit

(* -- Extensions beyond the paper's figures (see EXPERIMENTS.md) -- *)

(** Mapper-engine ablation on IBMQ16 (Section 4.3): branch-and-bound with
    TriQ's max-min objective, branch-and-bound with prior work's product
    objective, and the SAT-encoded threshold search
    ({!Triq.Mapper_smt}) — work done and achieved minimum reliability for
    each. *)
val ablation_mapper_data :
  ?node_budget:int ->
  unit ->
  (string * Triq.Mapper.result * Triq.Mapper.result * Triq.Mapper.result) list

val print_ablation_mapper : unit -> unit

(** Peephole ablation: hardware 2Q counts with and without adjacent
    self-inverse pair cancellation. *)
val ablation_peephole_data : unit -> (string * int * int) list

val print_ablation_peephole : unit -> unit

(** Large-ion-trap projection: success with/without noise adaptivity on a
    fully-connected trap whose 2Q error grows with ion distance. *)
val iontrap_data : ?trajectories:int -> ?ions:int -> unit -> float row list

val print_iontrap : ?trajectories:int -> unit -> unit

(** Section 8's six-day BV4-on-IBMQ5 comparison (Tannu & Qureshi):
    (day, TriQ-1QOptCN success, Qiskit-like success). *)
val tannu_data : ?trajectories:int -> unit -> (int * float * float) list

val print_tannu : ?trajectories:int -> unit -> unit

(** [run_extensions ?trajectories ()] prints the four extension studies. *)
val run_extensions : ?trajectories:int -> unit -> unit

(** Pulse-level schedule length against the coherence window for every
    machine (Toffoli benchmark): (machine, pulses, frame changes,
    duration us, fraction of T, accumulated gate error). *)
val coherence_data : unit -> (string * int * int * float * float * float) list

val print_coherence : unit -> unit

(** Characterization closure: (machine, injected 1Q error, RB-recovered 1Q
    error, injected 2Q error, RB-recovered 2Q error) for one
    representative qubit/coupling per machine. *)
val characterize_data : unit -> (string * float * float * float * float) list

val print_characterize : unit -> unit

(** Routing ablation on IBMQ14: noise-aware mapping with hop-count routing
    vs full reliability-path routing. *)
val ablation_routing_data : ?trajectories:int -> unit -> float row list

val print_ablation_routing : ?trajectories:int -> unit -> unit

(** Staleness study: success of a day-0 executable run on later days vs
    recompiling against each day's calibration: (day, stale, fresh). *)
val staleness_data : ?trajectories:int -> ?days:int -> unit -> (int * float * float) list

val print_staleness : ?trajectories:int -> unit -> unit

(** ESP-vs-measured-success validation across the full study grid:
    (machine/benchmark label, ESP, measured success). *)
val esp_correlation_data : ?trajectories:int -> unit -> (string * float * float) list

val print_esp_correlation : ?trajectories:int -> unit -> unit

(** Lookahead-routing ablation on IBMQ14: (benchmark, default-router 2Q
    count, success, lookahead 2Q count, success). *)
val ablation_lookahead_data :
  ?trajectories:int -> unit -> (string * int * float * int * float) list

val print_ablation_lookahead : ?trajectories:int -> unit -> unit

(** Headline summary rows: (metric, paper-reported, measured). *)
val summary_data : ?trajectories:int -> unit -> (string * string * string) list

val print_summary : ?trajectories:int -> unit -> unit

(** Per-benchmark compiled-executable properties on a machine: 2Q count,
    pulses, swaps, depth, duration, ESP. *)
val properties_rows : Device.Machine.t -> string list list

val print_properties : Device.Machine.t -> unit

(** Topology projection: identical error profile on the Melbourne lattice
    vs a heavy-hex-style layout. *)
val heavyhex_data : ?trajectories:int -> unit -> float row list

val print_heavyhex : ?trajectories:int -> unit -> unit

(** Variability panel: BV4 success per calibration day on the IBM
    machines: (machine, per-day success list). *)
val variability_data :
  ?trajectories:int -> ?days:int -> unit -> (string * float list) list

val print_variability : ?trajectories:int -> unit -> unit

(** Section 6.4 what-if: Aspen1 vs the same hardware with the parametric
    iSWAP exposed: (machine, benchmark, 2Q plain, success plain,
    2Q parametric, success parametric). *)
val parametric_data :
  ?trajectories:int -> unit -> (string * string * int * float * int * float) list

val print_parametric : ?trajectories:int -> unit -> unit

(** Noise-model ablation: success under the folded-decoherence model vs
    explicit amplitude-damping channels: (benchmark, folded, explicit). *)
val noise_model_data : ?trajectories:int -> unit -> (string * float * float) list

val print_noise_model : ?trajectories:int -> unit -> unit

(** GHZ-state fidelity via parity oscillations: (machine, fidelity);
    F > 0.5 witnesses genuine n-qubit entanglement. *)
val ghz_data : ?trajectories:int -> ?n:int -> unit -> (string * float) list

val print_ghz : ?trajectories:int -> unit -> unit
