module Machine = Device.Machine
module Calibration = Device.Calibration
module Gateset = Device.Gateset

type t = {
  machine : Machine.t;
  compiler : string;
  day : int;
  hardware : Ir.Circuit.t;
  initial_placement : int array;
  final_placement : int array;
  readout_map : (int * int) list;
  swap_count : int;
  two_q_count : int;
  pulse_count : int;
  flipped_cnots : int;
  esp : float;
  compile_time_s : float;
  pass_times_s : (string * float) list;
}

let estimated_success_probability machine calibration (c : Ir.Circuit.t) =
  let basis = machine.Machine.basis in
  List.fold_left
    (fun acc g ->
      match (g : Ir.Gate.t) with
      | One (k, q) ->
        if Gateset.is_error_free basis k then acc
        else acc *. (1.0 -. Calibration.one_q_err calibration q)
      | Two (_, a, b) -> acc *. (1.0 -. Calibration.two_q_err calibration a b)
      | Measure q -> acc *. (1.0 -. Calibration.readout_err calibration q)
      | Ccx _ | Cswap _ -> invalid_arg "Compiled.esp: not flattened")
    1.0 c.Ir.Circuit.gates

let make ?(pass_times_s = []) ~machine ~compiler ~day ~hardware ~initial_placement
    ~final_placement ~readout_map ~swap_count ~flipped_cnots ~compile_time_s () =
  if not (Gateset.circuit_visible machine.Machine.basis hardware) then
    invalid_arg "Compiled.make: hardware circuit contains non-visible gates";
  let calibration = Machine.calibration machine ~day in
  {
    machine;
    compiler;
    day;
    hardware;
    initial_placement;
    final_placement;
    readout_map;
    swap_count;
    two_q_count = Ir.Circuit.two_q_count hardware;
    pulse_count = Gateset.circuit_pulse_count machine.Machine.basis hardware;
    flipped_cnots;
    esp = estimated_success_probability machine calibration hardware;
    compile_time_s;
    pass_times_s;
  }

type error_budget = { two_q : float; one_q : float; readout : float }

let error_budget machine calibration (c : Ir.Circuit.t) =
  let basis = machine.Machine.basis in
  List.fold_left
    (fun acc g ->
      match (g : Ir.Gate.t) with
      | One (k, q) ->
        if Gateset.is_error_free basis k then acc
        else { acc with one_q = acc.one_q *. (1.0 -. Calibration.one_q_err calibration q) }
      | Two (_, a, b) ->
        { acc with two_q = acc.two_q *. (1.0 -. Calibration.two_q_err calibration a b) }
      | Measure q ->
        { acc with readout = acc.readout *. (1.0 -. Calibration.readout_err calibration q) }
      | Ccx _ | Cswap _ -> invalid_arg "Compiled.error_budget: not flattened")
    { two_q = 1.0; one_q = 1.0; readout = 1.0 }
    c.Ir.Circuit.gates

let budget_of t =
  error_budget t.machine (Machine.calibration t.machine ~day:t.day) t.hardware
