(** A compiled executable: the common output shape of every compiler in
    the study (the four TriQ levels and the vendor-baseline
    reimplementations), consumed by the simulator runner and the
    experiment harness. *)

type t = {
  machine : Device.Machine.t;
  compiler : string;  (** display name, e.g. "TriQ-1QOptCN", "Qiskit" *)
  day : int;  (** calibration day compiled against *)
  hardware : Ir.Circuit.t;  (** software-visible gates on hardware qubits *)
  initial_placement : int array;
  final_placement : int array;
  readout_map : (int * int) list;
      (** measured program qubit -> hardware qubit at readout *)
  swap_count : int;
  two_q_count : int;
  pulse_count : int;  (** physical X/Y pulses (Figure 8's metric) *)
  flipped_cnots : int;
  esp : float;  (** estimated success probability under the calibration *)
  compile_time_s : float;
  pass_times_s : (string * float) list;
      (** per-pass wall time keyed by {!Pass.t} canonical names; [[]] when
          the producer did not run through the pass driver *)
}

(** [make ... ()] assembles an executable, computing the derived
    statistics (2Q count, pulse count, ESP) from the hardware circuit and
    the machine's day-[day] calibration. The hardware circuit must be
    entirely software-visible. [pass_times_s] (default [[]]) records the
    per-pass wall clock when the producer ran through the pass driver. *)
val make :
  ?pass_times_s:(string * float) list ->
  machine:Device.Machine.t ->
  compiler:string ->
  day:int ->
  hardware:Ir.Circuit.t ->
  initial_placement:int array ->
  final_placement:int array ->
  readout_map:(int * int) list ->
  swap_count:int ->
  flipped_cnots:int ->
  compile_time_s:float ->
  unit ->
  t

(** [estimated_success_probability machine calibration c] multiplies the
    per-gate success probabilities of a hardware-level, software-visible
    circuit: 2Q gates and readout use calibrated errors, 1Q pulses the
    qubit's 1Q error; virtual-Z gates are free. *)
val estimated_success_probability :
  Device.Machine.t -> Device.Calibration.t -> Ir.Circuit.t -> float

(** Where the success probability goes: per-category survival products of
    a hardware circuit under a calibration. [two_q *. one_q *. readout]
    equals the ESP. *)
type error_budget = {
  two_q : float;  (** product of 2Q gate success probabilities *)
  one_q : float;  (** product of 1Q pulse success probabilities *)
  readout : float;  (** product of readout success probabilities *)
}

(** [error_budget machine calibration c] decomposes the ESP of a
    software-visible hardware circuit. *)
val error_budget :
  Device.Machine.t -> Device.Calibration.t -> Ir.Circuit.t -> error_budget

(** [budget_of t] is the decomposition for a compiled executable at its
    own calibration day. *)
val budget_of : t -> error_budget
