type result = {
  placement : int array;
  objective : float;
  nodes_explored : int;
  optimal : bool;
}

type objective = Max_min | Product

let interactions (c : Ir.Circuit.t) =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun g ->
      match (g : Ir.Gate.t) with
      | Two (_, a, b) ->
        let key = if Hashtbl.mem table (b, a) then (b, a) else (a, b) in
        if not (Hashtbl.mem table key) then order := key :: !order;
        Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
      | Ccx _ | Cswap _ ->
        Analysis.Diag.invalid ~rule:"circuit.flat" ~layer:"mapping"
          "circuit not flattened: %s" (Ir.Gate.to_string g)
      | One _ | Measure _ -> ())
    c.Ir.Circuit.gates;
  List.rev_map (fun key -> (key, Hashtbl.find table key)) !order

let trivial ~n_program ~n_hardware =
  if n_program > n_hardware then
    Analysis.Diag.invalid ~rule:"circuit.bounds" ~layer:"mapping"
      "%d-qubit program does not fit a %d-qubit device" n_program n_hardware;
  Array.init n_program (fun i -> i)

let log_floor = 1e-12

let evaluate reliability (c : Ir.Circuit.t) placement =
  let pairs = interactions c in
  let measured = Ir.Circuit.measured_qubits c in
  let min_rel = ref 1.0 and log_prod = ref 0.0 in
  let account r count =
    if r < !min_rel then min_rel := r;
    log_prod := !log_prod +. (float_of_int count *. log (Float.max r log_floor))
  in
  List.iter
    (fun ((a, b), count) ->
      account (Reliability.score reliability placement.(a) placement.(b)) count)
    pairs;
  List.iter
    (fun m -> account (Reliability.readout_reliability reliability placement.(m)) 1)
    measured;
  (!min_rel, !log_prod)

(* Compat wrapper: the search itself now lives in Layout.Bb (generalized
   over Layout.Problem.t, with additional sound pruning); this entry point
   keeps the original signature, result shape, and bit-identical
   placements. *)
let solve ?(node_budget = 200_000) ?(objective = Max_min) reliability (c : Ir.Circuit.t) =
  let n_program = c.Ir.Circuit.n_qubits in
  let n_hardware = Reliability.n_qubits reliability in
  if n_program > n_hardware then
    Analysis.Diag.invalid ~rule:"circuit.bounds" ~layer:"mapping"
      "%d-qubit program does not fit a %d-qubit device" n_program n_hardware;
  let problem =
    Layout.Problem.make
      ~objective:
        (match objective with
        | Max_min -> Layout.Problem.Max_min
        | Product -> Layout.Problem.Product)
      ~n_program ~n_hardware ~pairs:(interactions c)
      ~measured:(Ir.Circuit.measured_qubits c)
      ~score:(Reliability.score reliability)
      ~readout:(Reliability.readout_reliability reliability)
      ()
  in
  let r = Layout.Bb.solve ~node_budget problem in
  {
    placement = r.Layout.Report.placement;
    objective = r.Layout.Report.objective;
    nodes_explored = r.Layout.Report.work.Layout.Report.search_nodes;
    optimal = r.Layout.Report.proven_optimal;
  }
