(** Noise-adaptive qubit placement (Section 4.3).

    The paper phrases placement as a constrained-optimization problem
    handed to the Z3 SMT solver with a *maximize-the-minimum-reliability*
    objective, chosen over the product objective of prior work precisely
    because partial assignments can be pruned as soon as any mapped
    operation's reliability drops below the incumbent. No Z3 bindings
    exist in this environment, so we implement that same objective with an
    explicit branch-and-bound search over assignments — the pruning rule
    is literally the one the paper credits for scalability. Ties on the
    min are broken by the product of reliabilities (the estimated success
    probability).

    The search is exact when it terminates within its node budget and
    otherwise returns the best placement found (reported via
    [optimal]). *)

type result = {
  placement : int array;  (** program qubit -> hardware qubit *)
  objective : float;  (** min reliability over mapped 2Q ops and readouts *)
  nodes_explored : int;
  optimal : bool;  (** search space exhausted within budget *)
}

(** The optimization objective. [Max_min] is TriQ's (maximize the minimum
    reliability of any mapped operation — prunes aggressively); [Product]
    is the whole-graph reliability product of prior work (Murali et al.
    ASPLOS'19), kept for the ablation study of Section 4.3's scalability
    argument. *)
type objective = Max_min | Product

(** [interactions c] aggregates the program's 2Q operations as
    [((a, b), count)] pairs over program qubits, with (a, b) in first-seen
    orientation. The circuit must be flattened (no Ccx/Cswap). *)
val interactions : Ir.Circuit.t -> ((int * int) * int) list

(** [trivial ~n_program ~n_hardware] is the identity placement 0..n-1 used
    by the default-mapping configurations (and by the Qiskit baseline).
    Raises [Invalid_argument] when the program does not fit. *)
val trivial : n_program:int -> n_hardware:int -> int array

(** [solve ?node_budget ?objective reliability circuit] searches for the
    placement of [circuit]'s program qubits optimizing [objective]
    (default [Max_min]) over the reliabilities of every 2Q interaction and
    readout. Default budget: 200_000 nodes.

    Deprecated compat wrapper: the search itself lives in
    [Layout.Bb.solve]; this entry lowers the circuit via [Placement] and
    collapses the structured {!Layout.Report.t} back into {!result}.
    Placements are bit-identical to the historical implementation. *)
val solve :
  ?node_budget:int -> ?objective:objective -> Reliability.t -> Ir.Circuit.t -> result
[@@deprecated "use Placement.solve (or Layout.Bb.solve on a lowered problem)"]

(** [evaluate reliability circuit placement] is the (min, log-product)
    objective pair of a complete placement — exposed for tests and for
    scoring externally produced placements. *)
val evaluate : Reliability.t -> Ir.Circuit.t -> int array -> float * float
