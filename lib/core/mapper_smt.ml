(* Compat wrapper: the descending-threshold search now lives in
   Layout.Smt_search, which reuses structural clauses across thresholds
   via Smt.Solver push/pop scopes instead of re-encoding per threshold.
   Results (placement, objective, SAT decision counts) are identical to
   the original from-scratch encoding — the DPLL search depends only on
   the clause set. *)

let solve reliability (c : Ir.Circuit.t) =
  let n_program = c.Ir.Circuit.n_qubits in
  let n_hardware = Reliability.n_qubits reliability in
  if n_program > n_hardware then
    invalid_arg "Mapper_smt.solve: program does not fit on device";
  let problem =
    Layout.Problem.make ~n_program ~n_hardware ~pairs:(Mapper.interactions c)
      ~measured:(Ir.Circuit.measured_qubits c)
      ~score:(Reliability.score reliability)
      ~readout:(Reliability.readout_reliability reliability)
      ()
  in
  let r = Layout.Smt_search.solve problem in
  {
    Mapper.placement = r.Layout.Report.placement;
    objective = r.Layout.Report.objective;
    nodes_explored = r.Layout.Report.work.Layout.Report.sat_decisions;
    optimal = r.Layout.Report.proven_optimal;
  }
