(** SMT-style qubit mapping: the paper's Section 4.3 formulation, encoded
    for a satisfiability solver.

    Variables x(p,h) assert "program qubit p sits on hardware qubit h";
    constraints say every program qubit gets exactly one hardware qubit
    and no hardware qubit holds two. The max-min reliability objective is
    realized the way optimizing SMT solvers realize it: a descending
    threshold search — for a candidate reliability floor t, clauses forbid
    any interacting pair from landing on a placement scoring below t (and
    any measured qubit from a readout below t); the optimum is the largest
    t still satisfiable, found by binary search over the distinct
    reliability values.

    Produces the same objective value as {!Mapper.solve} (cross-checked in
    tests); exposed separately so the two engines can be compared. *)

(** [solve reliability circuit] maps the flattened [circuit]. The result's
    [nodes_explored] reports total SAT decisions across the threshold
    search; [optimal] is always true (the search is exact).

    Deprecated compat wrapper over [Layout.Smt_search.solve]; results
    (placement, objective, decision counts) are identical to the
    historical from-scratch-per-threshold implementation. *)
val solve : Reliability.t -> Ir.Circuit.t -> Mapper.result
[@@deprecated "use Placement.solve ~config:{strategy = Smt} (or Layout.Smt_search.solve)"]
