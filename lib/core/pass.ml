module Machine = Device.Machine
module Calibration = Device.Calibration
module Gateset = Device.Gateset
module Check = Analysis.Check

type level = N | OneQOpt | OneQOptC | OneQOptCN

let all_levels = [ N; OneQOpt; OneQOptC; OneQOptCN ]

let level_name = function
  | N -> "TriQ-N"
  | OneQOpt -> "TriQ-1QOpt"
  | OneQOptC -> "TriQ-1QOptC"
  | OneQOptCN -> "TriQ-1QOptCN"

let level_of_string s =
  match String.lowercase_ascii s with
  | "n" | "triq-n" -> Some N
  | "1qopt" | "triq-1qopt" -> Some OneQOpt
  | "1qoptc" | "triq-1qoptc" -> Some OneQOptC
  | "1qoptcn" | "triq-1qoptcn" -> Some OneQOptCN
  | _ -> None

let level_strings =
  [ "n"; "1qopt"; "1qoptc"; "1qoptcn" ] @ List.map level_name all_levels

module Config = struct
  type router = Default | Lookahead
  type validation = Off | Shape | Deep

  type t = {
    day : int;
    layout : Layout.Config.t;
    router : router;
    peephole : bool;
    validate : validation;
  }

  let default =
    {
      day = 0;
      layout = Layout.Config.default;
      router = Default;
      peephole = false;
      validate = Off;
    }

  let make ?(day = 0) ?node_budget ?mapper ?layout_cache ?layout
      ?(router = Default) ?(peephole = false) ?(validate = Off) () =
    let layout =
      match layout with
      | Some l -> l
      | None ->
        Layout.Config.make
          ?strategy:mapper ?node_budget
          ?cache:layout_cache ()
    in
    { day; layout; router; peephole; validate }

  let router_name = function Default -> "default" | Lookahead -> "lookahead"

  let router_of_string s =
    match String.lowercase_ascii s with
    | "default" -> Some Default
    | "lookahead" -> Some Lookahead
    | _ -> None

  let router_names = [ "default"; "lookahead" ]

  let validation_name = function Off -> "off" | Shape -> "shape" | Deep -> "deep"

  let validation_of_string s =
    match String.lowercase_ascii s with
    | "off" -> Some Off
    | "shape" -> Some Shape
    | "deep" -> Some Deep
    | _ -> None

  let validation_names = [ "off"; "shape"; "deep" ]
end

type state = {
  machine : Machine.t;
  config : Config.t;
  calibration : Calibration.t;
  program : Ir.Circuit.t;
  circuit : Ir.Circuit.t;
  flat : Ir.Circuit.t;
  reliability : Reliability.t option;
  initial_placement : int array;
  final_placement : int array;
  layout : Layout.Report.t option;
  swap_count : int;
  flipped_cnots : int;
  readout_map : (int * int) list;
}

type t = {
  name : string;
  about : string;
  optional : bool;
  run : state -> state;
  checks : state -> Analysis.Diag.t list list;
}

let make ~name ?(about = "") ?(optional = true) ?(checks = fun _ -> []) run =
  { name; about; optional; run; checks }

let reliability_exn s =
  match s.reliability with
  | Some r -> r
  | None ->
    invalid_arg "Pass: reliability matrix required but the reliability pass did not run"

(* -- the built-in catalog -- *)

let flatten =
  {
    name = "flatten";
    about = "decompose Toffoli/Fredkin into the 1Q + CNOT IR";
    optional = false;
    run =
      (fun s ->
        let flat = Ir.Decompose.flatten s.circuit in
        { s with circuit = flat; flat });
    checks =
      (fun s ->
        let gates = s.circuit.Ir.Circuit.gates in
        [
          Check.qubit_bounds ~n_qubits:s.circuit.Ir.Circuit.n_qubits ~layer:"flatten"
            gates;
          Check.operand_distinct ~layer:"flatten" gates;
          Check.flattened ~layer:"flatten" gates;
          Check.measure_once ~layer:"flatten" gates;
          Check.measure_order ~layer:"flatten" gates;
        ]);
  }

let reliability ~noise_aware =
  {
    name = "reliability";
    about =
      (if noise_aware then
         "reliability matrix from the day's calibration (noise-aware)"
       else "reliability matrix from device-average error rates");
    optional = false;
    run =
      (fun s ->
        {
          s with
          reliability =
            Some
              (Reliability.compute_cached ~noise_aware ~calibration:s.calibration
                 s.machine ~day:s.config.Config.day);
        });
    checks = (fun _ -> []);
  }

let placement_checks what s =
  [
    Check.placement ~layer:"mapping" ~what ~n_hardware:(Machine.n_qubits s.machine)
      s.initial_placement;
  ]

let mapping_trivial =
  {
    name = "mapping";
    about = "identity qubit placement (levels N / 1QOpt)";
    optional = true;
    run =
      (fun s ->
        {
          s with
          initial_placement =
            Mapper.trivial ~n_program:s.circuit.Ir.Circuit.n_qubits
              ~n_hardware:(Machine.n_qubits s.machine);
          layout = None;
        });
    checks = placement_checks "initial placement";
  }

let mapping_solver =
  {
    name = "mapping";
    about = "max-min reliability placement via the layout engine (1QOptC/CN)";
    optional = true;
    run =
      (fun s ->
        let r =
          Placement.solve ~config:s.config.Config.layout
            ~reliability:(reliability_exn s)
            ~machine_name:s.machine.Machine.name ~day:s.config.Config.day
            s.circuit
        in
        {
          s with
          initial_placement = r.Layout.Report.placement;
          layout = Some r;
        });
    checks = placement_checks "initial placement";
  }

let routing_checks s =
  let gates = s.circuit.Ir.Circuit.gates in
  let topology = s.machine.Machine.topology in
  [
    Check.qubit_bounds ~n_qubits:(Machine.n_qubits s.machine) ~layer:"routing" gates;
    Check.operand_distinct ~layer:"routing" gates;
    Check.flattened ~layer:"routing" gates;
    Check.coupling ~layer:"routing" topology gates;
    Check.measure_once ~layer:"routing" gates;
    Check.measure_order ~layer:"routing" gates;
    Check.placement ~layer:"routing" ~what:"final placement"
      ~n_hardware:(Machine.n_qubits s.machine) s.final_placement;
  ]

let routing_with about route =
  {
    name = "routing";
    about;
    optional = false;
    run =
      (fun s ->
        let routed =
          route (reliability_exn s) s.machine.Machine.topology
            ~placement:s.initial_placement s.circuit
        in
        {
          s with
          circuit = routed.Router.circuit;
          final_placement = routed.Router.final_placement;
          swap_count = routed.Router.swap_count;
        });
    checks = routing_checks;
  }

let routing_default =
  routing_with "reliability-path SWAP insertion (per-gate optimal)" Router.route

let routing_lookahead =
  routing_with "reliability-path SWAP insertion with lookahead"
    (Router_lookahead.route ?lookahead:None)

let routing = function
  | Config.Default -> routing_default
  | Config.Lookahead -> routing_lookahead

let expansion_checks layer s =
  let gates = s.circuit.Ir.Circuit.gates in
  let topology = s.machine.Machine.topology in
  [
    Check.coupling ~layer topology gates;
    Check.measure_once ~layer gates;
    Check.measure_order ~layer gates;
  ]

let swap_expansion_with about expand =
  {
    name = "swap-expansion";
    about;
    optional = false;
    run =
      (fun s ->
        let expanded = expand s in
        {
          s with
          circuit = expanded;
          flipped_cnots = Direction.flipped_count s.machine.Machine.topology expanded;
        });
    checks = expansion_checks "swap-expansion";
  }

let swap_expansion =
  swap_expansion_with "expand routed SWAPs in the machine's native basis"
    (fun s -> Translate.expand_swaps ~basis:s.machine.Machine.basis s.circuit)

let swap_expansion_generic =
  swap_expansion_with "expand routed SWAPs as generic 3-CNOT sequences"
    (fun s -> Translate.expand_swaps s.circuit)

let peephole =
  {
    name = "peephole";
    about = "cancel adjacent self-inverse 2Q pairs";
    optional = true;
    run = (fun s -> { s with circuit = Peephole.cancel_two_q s.circuit });
    checks = expansion_checks "peephole";
  }

let orientation =
  {
    name = "orientation";
    about = "repair CNOT direction on directed couplings";
    optional = true;
    run = (fun s -> { s with circuit = Direction.fix s.machine.Machine.topology s.circuit });
    checks =
      (fun s ->
        let gates = s.circuit.Ir.Circuit.gates in
        let topology = s.machine.Machine.topology in
        [
          Check.direction ~layer:"orientation" topology gates;
          Check.coupling ~layer:"orientation" topology gates;
        ]);
  }

let translation =
  {
    name = "translation";
    about = "rewrite 2Q gates into the software-visible set";
    optional = false;
    run =
      (fun s ->
        { s with circuit = Translate.two_q_to_visible s.machine.Machine.basis s.circuit });
    checks = expansion_checks "translation";
  }

let oneq_checks s =
  let gates = s.circuit.Ir.Circuit.gates in
  let topology = s.machine.Machine.topology in
  [
    Check.qubit_bounds ~n_qubits:(Machine.n_qubits s.machine) ~layer:"translation" gates;
    Check.gateset ~layer:"translation" s.machine.Machine.basis gates;
    Check.coupling ~layer:"translation" topology gates;
    Check.direction ~layer:"translation" topology gates;
    Check.measure_once ~layer:"translation" gates;
    Check.measure_order ~layer:"translation" gates;
  ]

let oneq_naive =
  {
    name = "oneq";
    about = "naive gate-by-gate 1Q translation (level N)";
    optional = false;
    run = (fun s -> { s with circuit = Oneq_opt.naive s.machine.Machine.basis s.circuit });
    checks = oneq_checks;
  }

let oneq_coalesce =
  {
    name = "oneq";
    about = "quaternion-based 1Q coalescing";
    optional = false;
    run =
      (fun s -> { s with circuit = Oneq_opt.optimize s.machine.Machine.basis s.circuit });
    checks = oneq_checks;
  }

let readout =
  {
    name = "readout";
    about = "measured program qubit -> hardware qubit map at final placement";
    optional = false;
    run =
      (fun s ->
        {
          s with
          readout_map =
            List.map
              (fun p -> (p, s.final_placement.(p)))
              (Ir.Circuit.measured_qubits s.flat);
        });
    checks =
      (fun s ->
        [
          Check.check_executable
            {
              Check.machine = s.machine;
              hardware = s.circuit;
              initial_placement = s.initial_placement;
              final_placement = s.final_placement;
              readout_map = s.readout_map;
              measured = Some (Ir.Circuit.measured_qubits s.flat);
              two_q_count = Ir.Circuit.two_q_count s.circuit;
              pulse_count =
                Gateset.circuit_pulse_count s.machine.Machine.basis s.circuit;
              esp =
                Compiled.estimated_success_probability s.machine s.calibration
                  s.circuit;
            };
        ]);
  }

let catalog =
  [
    ("flatten", "decompose Toffoli/Fredkin into the 1Q + CNOT IR");
    ("reliability", "build the reliability matrix (calibration or device-average)");
    ("mapping", "place program qubits on hardware (identity or layout engine) [optional]");
    ("routing", "insert SWAPs along most-reliable paths");
    ("swap-expansion", "expand SWAPs into native 2Q sequences");
    ("peephole", "cancel adjacent self-inverse 2Q pairs [optional]");
    ("orientation", "repair CNOT direction on directed couplings [optional]");
    ("translation", "rewrite 2Q gates into the software-visible set");
    ("oneq", "translate/coalesce 1Q gates (naive or quaternion)");
    ("readout", "build the measured-qubit readout map");
  ]

let catalog_names = List.map fst catalog
let optional_names = [ "mapping"; "peephole"; "orientation" ]

let pass_of_name ~config ~level name =
  match String.lowercase_ascii name with
  | "flatten" -> Ok flatten
  | "reliability" ->
    Ok (reliability ~noise_aware:(match level with OneQOptCN -> true | _ -> false))
  | "mapping" -> (
    match level with
    | N | OneQOpt -> Ok mapping_trivial
    | OneQOptC | OneQOptCN -> Ok mapping_solver)
  | "routing" -> Ok (routing config.Config.router)
  | "swap-expansion" -> Ok swap_expansion
  | "peephole" -> Ok peephole
  | "orientation" -> Ok orientation
  | "translation" -> Ok translation
  | "oneq" -> (
    match level with N -> Ok oneq_naive | _ -> Ok oneq_coalesce)
  | "readout" -> Ok readout
  | _ ->
    Error
      (Printf.sprintf "unknown pass %S (valid: %s)" name
         (String.concat ", " catalog_names))

module Schedule = struct
  type pass = t

  type t = { name : string; level : level; passes : pass list }

  let of_level ?(config = Config.default) level =
    {
      name = level_name level;
      level;
      passes =
        [
          flatten;
          reliability
            ~noise_aware:(match level with OneQOptCN -> true | _ -> false);
          (match level with
          | N | OneQOpt -> mapping_trivial
          | OneQOptC | OneQOptCN -> mapping_solver);
          routing config.Config.router;
          swap_expansion;
        ]
        @ (if config.Config.peephole then [ peephole ] else [])
        @ [
            orientation;
            translation;
            (match level with N -> oneq_naive | _ -> oneq_coalesce);
            readout;
          ];
    }

  let all ?(config = Config.default) () =
    List.map (fun level -> of_level ~config level) all_levels

  let pass_names t = List.map (fun (p : pass) -> p.name) t.passes

  let disable t name =
    let name = String.lowercase_ascii name in
    match List.find_opt (fun (p : pass) -> p.name = name) t.passes with
    | None ->
      Error
        (Printf.sprintf "pass %S is not in schedule %s (passes: %s)" name t.name
           (String.concat ", " (pass_names t)))
    | Some p when not p.optional ->
      Error (Printf.sprintf "pass %S is required and cannot be disabled" name)
    | Some _ ->
      Ok { t with passes = List.filter (fun (p : pass) -> p.name <> name) t.passes }

  let make ?(config = Config.default) ~level names =
    let rec resolve acc = function
      | [] -> Ok { name = level_name level; level; passes = List.rev acc }
      | n :: rest -> (
        match pass_of_name ~config ~level n with
        | Ok p -> resolve (p :: acc) rest
        | Error _ as e -> e)
    in
    match names with
    | [] -> Error "empty schedule: at least one pass is required"
    | _ -> resolve [] names
end

(* -- driver -- *)

let init ~config machine circuit =
  if not (Machine.fits machine circuit) then
    Analysis.Diag.invalid ~rule:"circuit.bounds" ~layer:"pipeline"
      "%d-qubit program does not fit %s (%d qubits)" circuit.Ir.Circuit.n_qubits
      machine.Machine.name (Machine.n_qubits machine);
  let trivial =
    Mapper.trivial ~n_program:circuit.Ir.Circuit.n_qubits
      ~n_hardware:(Machine.n_qubits machine)
  in
  {
    machine;
    config;
    calibration = Machine.calibration machine ~day:config.Config.day;
    program = circuit;
    circuit;
    flat = circuit;
    reliability = None;
    initial_placement = trivial;
    final_placement = Array.copy trivial;
    layout = None;
    swap_count = 0;
    flipped_cnots = 0;
    readout_map = [];
  }

let guard pass diags =
  match List.concat diags with
  | [] -> ()
  | ds -> raise (Analysis.Diag.Violation (pass, List.sort_uniq Analysis.Diag.compare ds))

(* Every pass runs inside an [Obs] span; the returned wall-clock dt is
   the very same measurement the span records, so [pass_times_s] is a
   derived view of the trace rather than a second clock. *)
let run_pass state (p : t) =
  let state', dt =
    Obs.Span.timed
      ~attrs:[ ("pass", Obs.Span.Str p.name) ]
      ("pass." ^ p.name)
      (fun () -> p.run state)
  in
  Obs.Metrics.incr (Obs.Metrics.counter ("triq.pass.runs." ^ p.name));
  (match state.config.Config.validate with
  | Config.Off -> ()
  | Config.Shape -> guard p.name (p.checks state')
  | Config.Deep ->
      (* Shape rules plus translation validation: the pass's input and
         output circuits must agree on readout liveness and — when both
         are recognized Clifford — on their stabilizer tableaux, modulo
         the placement change the pass made. *)
      let deep =
        Dataflow.Validate.check ~layer:p.name ~before:state.circuit
          ~before_placement:state.final_placement ~after:state'.circuit
          ~after_placement:state'.final_placement
      in
      guard p.name (p.checks state' @ [ deep ]));
  (state', dt)

let run_passes state passes =
  let state, times =
    List.fold_left
      (fun (s, acc) (p : t) ->
        let s', dt = run_pass s p in
        (s', (p.name, dt) :: acc))
      (state, []) passes
  in
  (state, List.rev times)

type outcome = {
  state : state;
  pass_times_s : (string * float) list;
  compile_time_s : float;
}

let run ~config machine circuit (schedule : Schedule.t) =
  Obs.Metrics.incr (Obs.Metrics.counter "triq.compile.count");
  let (state, pass_times_s), compile_time_s =
    Obs.Span.timed
      ~attrs:
        [
          ("machine", Obs.Span.Str machine.Machine.name);
          ("schedule", Obs.Span.Str schedule.Schedule.name);
          ("day", Obs.Span.Int config.Config.day);
        ]
      "compile"
      (fun () ->
        let state = init ~config machine circuit in
        run_passes state schedule.Schedule.passes)
  in
  { state; pass_times_s; compile_time_s }
