(** First-class compiler passes and named schedules.

    The toolflow of Figure 4 is decomposed into named {!t} values — each
    pass transforms a shared compilation {!state} — and a driver ({!run})
    that uniformly handles per-pass wall-clock timing and the
    {!Analysis.Check} pass-invariant harness. The four optimization
    levels of Table 1 are the named {!Schedule.t} values built by
    {!Schedule.of_level}; ablations (peephole cancellation, lookahead
    routing) are schedule/config edits rather than boolean plumbing.

    {!Pipeline.compile} remains the stable high-level entry point; it is a
    thin wrapper over [run] and produces bit-identical output. Use this
    module directly to run custom schedules ([triqc compile --passes],
    [--disable-pass]) or to register project-specific passes
    (see docs/EXTENDING.md, "Adding a pass"). *)

(** {1 Optimization levels} *)

type level = N | OneQOpt | OneQOptC | OneQOptCN

val all_levels : level list
val level_name : level -> string

(** [level_of_string s] is case-insensitive and accepts both the short
    form ("1qoptcn") and the display form ("TriQ-1QOptCN"). *)
val level_of_string : string -> level option

(** The accepted spellings, for error messages: short names first, then
    display names. *)
val level_strings : string list

(** {1 Typed compilation options} *)

module Config : sig
  (** SWAP-insertion strategy: the paper's per-gate reliability-optimal
      router or the {!Router_lookahead} extension. *)
  type router = Default | Lookahead

  (** How much the pass-invariant harness checks after every pass.
      [Shape] runs each pass's structural rules (the PR-1 harness);
      [Deep] adds {!Dataflow.Validate} translation validation — readout
      liveness and, for Clifford circuits, stabilizer-tableau
      equivalence modulo placement. *)
  type validation = Off | Shape | Deep

  type t = {
    day : int;  (** calibration day to compile against *)
    layout : Layout.Config.t;
        (** layout-engine options for the mapping pass: strategy
            (bb/smt/greedy/portfolio), work budget, cache toggle — the
            one typed record shared with [Pipeline] (the former
            [node_budget]/[mapper_nodes]/[mapper_optimal] trio) *)
    router : router;
    peephole : bool;
        (** insert the adjacent self-inverse 2Q cancellation pass after
            SWAP expansion (an extension, not part of the paper's flow) *)
    validate : validation;
        (** arm the pass-invariant harness: after every pass, run the
            selected checks and raise {!Analysis.Diag.Violation} naming
            the pass that introduced a violation *)
  }

  (** Day 0, default layout config (B&B, default budget, cache on),
      default router, no peephole, no validation — the options
      [Pipeline.compile] defaults to. *)
  val default : t

  (** [?node_budget], [?mapper] and [?layout_cache] populate the [layout]
      record piecewise; [?layout] supplies it whole (and wins). *)
  val make :
    ?day:int ->
    ?node_budget:int ->
    ?mapper:Layout.Config.strategy ->
    ?layout_cache:bool ->
    ?layout:Layout.Config.t ->
    ?router:router ->
    ?peephole:bool ->
    ?validate:validation ->
    unit ->
    t

  val router_name : router -> string

  (** Case-insensitive; ["default"] or ["lookahead"]. *)
  val router_of_string : string -> router option

  val router_names : string list

  val validation_name : validation -> string

  (** Case-insensitive; ["off"], ["shape"] or ["deep"]. *)
  val validation_of_string : string -> validation option

  val validation_names : string list
end

(** {1 Compilation state}

    The record every pass transforms. [circuit] is the working circuit:
    program-level after [flatten], hardware-level after [routing],
    software-visible after [translation]/[oneq]. The remaining fields are
    statistics and context filled in as passes run. *)

type state = {
  machine : Device.Machine.t;
  config : Config.t;
  calibration : Device.Calibration.t;  (** the day's calibration data *)
  program : Ir.Circuit.t;  (** the untouched input program *)
  circuit : Ir.Circuit.t;  (** working circuit, rewritten by passes *)
  flat : Ir.Circuit.t;  (** flattened program (readout-map source) *)
  reliability : Reliability.t option;  (** set by the reliability pass *)
  initial_placement : int array;
  final_placement : int array;
  layout : Layout.Report.t option;
      (** the mapping pass's structured report ([None] for the identity
          mapping of levels N/1QOpt) *)
  swap_count : int;
  flipped_cnots : int;
  readout_map : (int * int) list;
}

(** {1 Passes} *)

type t = {
  name : string;  (** canonical identifier; timing key and violation tag *)
  about : string;  (** one-line description shown by [triqc passes] *)
  optional : bool;  (** may be removed from a schedule by [--disable-pass] *)
  run : state -> state;
  checks : state -> Analysis.Diag.t list list;
      (** static rules over the pass's output, run when
          [config.validate] — the PR-1 invariant harness *)
}

(** [make ~name run] defines a custom pass. [about] defaults to [""],
    [optional] to [true] (user passes may always be disabled), [checks]
    to none. *)
val make :
  name:string ->
  ?about:string ->
  ?optional:bool ->
  ?checks:(state -> Analysis.Diag.t list list) ->
  (state -> state) ->
  t

(** {2 The built-in catalog}

    Canonical names are shared by [pass_times_s] keys, validator
    violation tags, and [triqc passes]. Level- or config-dependent stages
    keep one canonical name across their variants (e.g. both
    [mapping_trivial] and [mapping_solver] are ["mapping"]). *)

(** ["flatten"]: decompose Toffoli/Fredkin into the 1Q + CNOT IR. *)
val flatten : t

(** ["reliability"]: build the reliability matrix — from the day's
    calibration when [noise_aware] (TriQ-1QOptCN), from device-average
    rates otherwise. *)
val reliability : noise_aware:bool -> t

(** ["mapping"]: identity placement (levels N / 1QOpt). *)
val mapping_trivial : t

(** ["mapping"]: max-min reliability placement via the layout engine —
    strategy, budget and cache behaviour come from [config.layout]
    (levels 1QOptC / 1QOptCN). *)
val mapping_solver : t

(** ["routing"]: reliability-path SWAP insertion with the given
    strategy. *)
val routing : Config.router -> t

(** ["swap-expansion"]: expand routed SWAPs using the machine's native
    basis (a directed-CNOT basis expands to 3 CNOTs + repairs), and
    record [flipped_cnots] on the expanded circuit. *)
val swap_expansion : t

(** ["swap-expansion"]: generic 3-CNOT SWAP expansion, no basis
    knowledge — the baselines' variant. *)
val swap_expansion_generic : t

(** ["peephole"]: cancel adjacent self-inverse 2Q pairs. *)
val peephole : t

(** ["orientation"]: repair CNOT direction on directed couplings. *)
val orientation : t

(** ["translation"]: rewrite 2Q gates into the software-visible set. *)
val translation : t

(** ["oneq"]: naive gate-by-gate 1Q translation (level N). *)
val oneq_naive : t

(** ["oneq"]: quaternion-based 1Q coalescing (all other levels). *)
val oneq_coalesce : t

(** ["readout"]: build the measured-program-qubit → hardware-qubit map
    from the final placement; when validating, run the full executable
    check ({!Analysis.Check.check_executable}). *)
val readout : t

(** Canonical (name, description) rows in toolflow order — the
    [triqc passes] listing. *)
val catalog : (string * string) list

(** Names of built-in passes a schedule may run without. *)
val optional_names : string list

(** [pass_of_name ~config ~level name] resolves a canonical name to the
    variant the config/level selects (e.g. ["mapping"] →
    [mapping_solver] at 1QOptC). [Error] lists the valid names. *)
val pass_of_name : config:Config.t -> level:level -> string -> (t, string) result

(** {1 Schedules} *)

module Schedule : sig
  type pass := t

  type t = {
    name : string;  (** display name, e.g. "TriQ-1QOptCN" *)
    level : level;  (** level whose variants/labels the schedule uses *)
    passes : pass list;
  }

  (** The named schedule for a Table 1 level under [config] (default
      {!Config.default}): flatten → reliability → mapping → routing →
      swap-expansion [→ peephole] → orientation → translation → oneq →
      readout. *)
  val of_level : ?config:Config.t -> level -> t

  (** The four level schedules, in level order. *)
  val all : ?config:Config.t -> unit -> t list

  val pass_names : t -> string list

  (** [disable s name] removes an optional pass. [Error] if [name] is
      unknown, not in the schedule, or not optional. *)
  val disable : t -> string -> (t, string) result

  (** [make ?config ~level names] builds a custom schedule from canonical
      pass names resolved by {!pass_of_name}. *)
  val make : ?config:Config.t -> level:level -> string list -> (t, string) result
end

(** {1 The driver} *)

(** [init ~config machine circuit] is the starting state: fits-check,
    day-[config.day] calibration, identity placements. Raises
    [Invalid_argument] (rule [circuit.bounds]) if the program has more
    qubits than the machine. *)
val init : config:Config.t -> Device.Machine.t -> Ir.Circuit.t -> state

(** [run_pass state p] runs one pass, returning the new state and the
    pass's wall-clock seconds. The pass body executes inside an
    [Obs.Span] named ["pass.<name>"], and the returned dt is that span's
    own measurement — with tracing enabled, [pass_times_s] is a derived
    view of the trace. When [state.config.validate], [p.checks] run over
    the output (outside the timed region) and a violation raises
    {!Analysis.Diag.Violation}[ (p.name, diags)]. *)
val run_pass : state -> t -> state * float

(** [run_passes state ps] folds {!run_pass}, collecting
    [(name, seconds)] in schedule order. *)
val run_passes : state -> t list -> state * (string * float) list

type outcome = {
  state : state;
  pass_times_s : (string * float) list;
  compile_time_s : float;  (** total wall clock including the driver *)
}

(** [run ~config machine circuit schedule] = {!init} + {!run_passes},
    wrapped in an [Obs.Span] named ["compile"] (attributes: machine,
    schedule, day) whose duration is [compile_time_s]. Per-pass and
    total times come from the same wall clock, so
    [sum pass_times_s <= compile_time_s] up to rounding. *)
val run : config:Config.t -> Device.Machine.t -> Ir.Circuit.t -> Schedule.t -> outcome
