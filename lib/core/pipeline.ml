module Machine = Device.Machine
module Calibration = Device.Calibration
module Gateset = Device.Gateset

type level = N | OneQOpt | OneQOptC | OneQOptCN

let all_levels = [ N; OneQOpt; OneQOptC; OneQOptCN ]

let level_name = function
  | N -> "TriQ-N"
  | OneQOpt -> "TriQ-1QOpt"
  | OneQOptC -> "TriQ-1QOptC"
  | OneQOptCN -> "TriQ-1QOptCN"

let level_of_string s =
  match String.lowercase_ascii s with
  | "n" | "triq-n" -> Some N
  | "1qopt" | "triq-1qopt" -> Some OneQOpt
  | "1qoptc" | "triq-1qoptc" -> Some OneQOptC
  | "1qoptcn" | "triq-1qoptcn" -> Some OneQOptCN
  | _ -> None

type t = {
  machine : Machine.t;
  level : level;
  day : int;
  hardware : Ir.Circuit.t;
  initial_placement : int array;
  final_placement : int array;
  readout_map : (int * int) list;
  swap_count : int;
  two_q_count : int;
  pulse_count : int;
  flipped_cnots : int;
  esp : float;
  mapper_nodes : int;
  mapper_optimal : bool;
  compile_time_s : float;
  pass_times_s : (string * float) list;
}

let estimated_success_probability = Compiled.estimated_success_probability

(* The pass-invariant harness: after each pass, run the applicable static
   rules and attribute any violation to the pass that introduced it. *)
let guard validate pass diags =
  if validate then
    match List.concat diags with
    | [] -> ()
    | ds -> raise (Analysis.Diag.Violation (pass, List.sort_uniq Analysis.Diag.compare ds))

let compile ?(day = 0) ?node_budget ?(peephole = false) ?(router = `Default)
    ?(validate = false) machine circuit ~level =
  if not (Machine.fits machine circuit) then
    Analysis.Diag.invalid ~rule:"circuit.bounds" ~layer:"pipeline"
      "%d-qubit program does not fit %s (%d qubits)" circuit.Ir.Circuit.n_qubits
      machine.Machine.name (Machine.n_qubits machine);
  let t0 = Sys.time () in
  let pass_times = ref [] in
  let timed name f =
    let start = Sys.time () in
    let result = f () in
    pass_times := (name, Sys.time () -. start) :: !pass_times;
    result
  in
  let flat = timed "flatten" (fun () -> Ir.Decompose.flatten circuit) in
  let () =
    let gates = flat.Ir.Circuit.gates in
    guard validate "flatten"
      [
        Analysis.Check.qubit_bounds ~n_qubits:flat.Ir.Circuit.n_qubits ~layer:"flatten"
          gates;
        Analysis.Check.operand_distinct ~layer:"flatten" gates;
        Analysis.Check.flattened ~layer:"flatten" gates;
        Analysis.Check.measure_once ~layer:"flatten" gates;
        Analysis.Check.measure_order ~layer:"flatten" gates;
      ]
  in
  let calibration = Machine.calibration machine ~day in
  let topology = machine.Machine.topology in
  let noise_aware = match level with OneQOptCN -> true | N | OneQOpt | OneQOptC -> false in
  let reliability =
    timed "reliability" (fun () ->
        Reliability.compute_cached ~noise_aware ~calibration machine ~day)
  in
  let initial_placement, mapper_nodes, mapper_optimal =
    timed "mapping" (fun () ->
        match level with
        | N | OneQOpt ->
          ( Mapper.trivial ~n_program:flat.Ir.Circuit.n_qubits
              ~n_hardware:(Machine.n_qubits machine),
            0,
            true )
        | OneQOptC | OneQOptCN ->
          let r = Mapper.solve ?node_budget reliability flat in
          (r.Mapper.placement, r.Mapper.nodes_explored, r.Mapper.optimal))
  in
  let () =
    guard validate "mapping"
      [
        Analysis.Check.placement ~layer:"mapping" ~what:"initial placement"
          ~n_hardware:(Machine.n_qubits machine) initial_placement;
      ]
  in
  let routed =
    timed "routing" (fun () ->
        match router with
        | `Default -> Router.route reliability topology ~placement:initial_placement flat
        | `Lookahead ->
          Router_lookahead.route reliability topology ~placement:initial_placement flat)
  in
  let () =
    let gates = routed.Router.circuit.Ir.Circuit.gates in
    guard validate "routing"
      [
        Analysis.Check.qubit_bounds ~n_qubits:(Machine.n_qubits machine)
          ~layer:"routing" gates;
        Analysis.Check.operand_distinct ~layer:"routing" gates;
        Analysis.Check.flattened ~layer:"routing" gates;
        Analysis.Check.coupling ~layer:"routing" topology gates;
        Analysis.Check.measure_once ~layer:"routing" gates;
        Analysis.Check.measure_order ~layer:"routing" gates;
        Analysis.Check.placement ~layer:"routing" ~what:"final placement"
          ~n_hardware:(Machine.n_qubits machine) routed.Router.final_placement;
      ]
  in
  let hardware =
    timed "translation" (fun () ->
        let expanded =
          Translate.expand_swaps ~basis:machine.Machine.basis routed.Router.circuit
        in
        let expanded = if peephole then Peephole.cancel_two_q expanded else expanded in
        let () =
          let gates = expanded.Ir.Circuit.gates in
          guard validate
            (if peephole then "peephole" else "swap expansion")
            [
              Analysis.Check.coupling ~layer:"translation" topology gates;
              Analysis.Check.measure_once ~layer:"translation" gates;
              Analysis.Check.measure_order ~layer:"translation" gates;
            ]
        in
        let oriented = Direction.fix topology expanded in
        let () =
          guard validate "orientation repair"
            [
              Analysis.Check.direction ~layer:"orientation" topology
                oriented.Ir.Circuit.gates;
              Analysis.Check.coupling ~layer:"orientation" topology
                oriented.Ir.Circuit.gates;
            ]
        in
        let visible_two_q = Translate.two_q_to_visible machine.Machine.basis oriented in
        let hw =
          match level with
          | N -> Oneq_opt.naive machine.Machine.basis visible_two_q
          | OneQOpt | OneQOptC | OneQOptCN ->
            Oneq_opt.optimize machine.Machine.basis visible_two_q
        in
        let () =
          let gates = hw.Ir.Circuit.gates in
          guard validate "translation"
            [
              Analysis.Check.qubit_bounds ~n_qubits:(Machine.n_qubits machine)
                ~layer:"translation" gates;
              Analysis.Check.gateset ~layer:"translation" machine.Machine.basis gates;
              Analysis.Check.coupling ~layer:"translation" topology gates;
              Analysis.Check.direction ~layer:"translation" topology gates;
              Analysis.Check.measure_once ~layer:"translation" gates;
              Analysis.Check.measure_order ~layer:"translation" gates;
            ]
        in
        hw)
  in
  let flipped_cnots =
    Direction.flipped_count topology
      (Translate.expand_swaps ~basis:machine.Machine.basis routed.Router.circuit)
  in
  let compile_time_s = Sys.time () -. t0 in
  let readout_map =
    List.map
      (fun p -> (p, routed.Router.final_placement.(p)))
      (Ir.Circuit.measured_qubits flat)
  in
  let result =
    {
      machine;
      level;
      day;
      hardware;
      initial_placement;
      final_placement = routed.Router.final_placement;
      readout_map;
      swap_count = routed.Router.swap_count;
      two_q_count = Ir.Circuit.two_q_count hardware;
      pulse_count = Gateset.circuit_pulse_count machine.Machine.basis hardware;
      flipped_cnots;
      esp = estimated_success_probability machine calibration hardware;
      mapper_nodes;
      mapper_optimal;
      compile_time_s;
      pass_times_s = List.rev !pass_times;
    }
  in
  let () =
    guard validate "readout"
      [
        Analysis.Check.check_executable
          {
            Analysis.Check.machine;
            hardware;
            initial_placement;
            final_placement = result.final_placement;
            readout_map;
            measured = Some (Ir.Circuit.measured_qubits flat);
            two_q_count = result.two_q_count;
            pulse_count = result.pulse_count;
            esp = result.esp;
          };
      ]
  in
  result

let to_compiled t =
  {
    Compiled.machine = t.machine;
    compiler = level_name t.level;
    day = t.day;
    hardware = t.hardware;
    initial_placement = t.initial_placement;
    final_placement = t.final_placement;
    readout_map = t.readout_map;
    swap_count = t.swap_count;
    two_q_count = t.two_q_count;
    pulse_count = t.pulse_count;
    flipped_cnots = t.flipped_cnots;
    esp = t.esp;
    compile_time_s = t.compile_time_s;
  }
