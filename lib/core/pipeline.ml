module Machine = Device.Machine
module Gateset = Device.Gateset

type level = Pass.level = N | OneQOpt | OneQOptC | OneQOptCN

let all_levels = Pass.all_levels
let level_name = Pass.level_name
let level_of_string = Pass.level_of_string
let level_strings = Pass.level_strings

type t = {
  machine : Machine.t;
  level : level;
  day : int;
  hardware : Ir.Circuit.t;
  initial_placement : int array;
  final_placement : int array;
  readout_map : (int * int) list;
  swap_count : int;
  two_q_count : int;
  pulse_count : int;
  flipped_cnots : int;
  esp : float;
  layout : Layout.Report.t option;
  compile_time_s : float;
  pass_times_s : (string * float) list;
}

let estimated_success_probability = Compiled.estimated_success_probability

let of_outcome ~level (o : Pass.outcome) =
  let s = o.Pass.state in
  {
    machine = s.Pass.machine;
    level;
    day = s.Pass.config.Pass.Config.day;
    hardware = s.Pass.circuit;
    initial_placement = s.Pass.initial_placement;
    final_placement = s.Pass.final_placement;
    readout_map = s.Pass.readout_map;
    swap_count = s.Pass.swap_count;
    two_q_count = Ir.Circuit.two_q_count s.Pass.circuit;
    pulse_count =
      Gateset.circuit_pulse_count s.Pass.machine.Machine.basis s.Pass.circuit;
    flipped_cnots = s.Pass.flipped_cnots;
    esp =
      estimated_success_probability s.Pass.machine s.Pass.calibration s.Pass.circuit;
    layout = s.Pass.layout;
    compile_time_s = o.Pass.compile_time_s;
    pass_times_s = o.Pass.pass_times_s;
  }

let compile_schedule ?(config = Pass.Config.default) machine circuit
    (schedule : Pass.Schedule.t) =
  of_outcome ~level:schedule.Pass.Schedule.level
    (Pass.run ~config machine circuit schedule)

let compile_level ?(config = Pass.Config.default) machine circuit ~level =
  compile_schedule ~config machine circuit (Pass.Schedule.of_level ~config level)

let compile ?(day = 0) ?node_budget ?(peephole = false) ?(router = `Default)
    ?(validate = false) machine circuit ~level =
  let router =
    match router with
    | `Default -> Pass.Config.Default
    | `Lookahead -> Pass.Config.Lookahead
  in
  let validate = if validate then Pass.Config.Shape else Pass.Config.Off in
  let config =
    Pass.Config.make ~day ?node_budget ~router ~peephole ~validate ()
  in
  compile_level ~config machine circuit ~level

let to_compiled t =
  {
    Compiled.machine = t.machine;
    compiler = level_name t.level;
    day = t.day;
    hardware = t.hardware;
    initial_placement = t.initial_placement;
    final_placement = t.final_placement;
    readout_map = t.readout_map;
    swap_count = t.swap_count;
    two_q_count = t.two_q_count;
    pulse_count = t.pulse_count;
    flipped_cnots = t.flipped_cnots;
    esp = t.esp;
    compile_time_s = t.compile_time_s;
    pass_times_s = t.pass_times_s;
  }
