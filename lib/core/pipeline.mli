(** The complete TriQ toolflow (Figure 4) and its optimization levels
    (Table 1).

    - [N]: default (identity) qubit mapping, naive gate-by-gate
      translation to the software-visible set;
    - [OneQOpt]: adds quaternion-based 1Q coalescing;
    - [OneQOptC]: adds communication-optimized mapping and routing over a
      reliability matrix built from device-average error rates
      (noise-unaware);
    - [OneQOptCN]: reliability matrix built from the day's calibration
      data (noise-aware mapping and routing).

    All levels route through the topology, repair CNOT orientation on
    directed machines, and emit only software-visible gates.

    The toolflow itself is implemented as first-class passes in {!Pass};
    this module is the stable entry point: {!compile_level} runs a
    level's named schedule under a {!Pass.Config.t},
    {!compile_schedule} runs any {!Pass.Schedule.t}. The optional-arg
    {!compile} wrapper is deprecated in favour of these two. *)

type level = Pass.level = N | OneQOpt | OneQOptC | OneQOptCN

val all_levels : level list
val level_name : level -> string

(** Case-insensitive; accepts short ("1qoptcn") and display
    ("TriQ-1QOptCN") forms. *)
val level_of_string : string -> level option

(** The accepted level spellings, for error messages. *)
val level_strings : string list

(** A compiled executable plus compilation metadata. *)
type t = {
  machine : Device.Machine.t;
  level : level;
  day : int;  (** calibration day compiled against *)
  hardware : Ir.Circuit.t;  (** software-visible gates on hardware qubits *)
  initial_placement : int array;
  final_placement : int array;
  readout_map : (int * int) list;
      (** measured program qubit -> hardware qubit holding it at readout *)
  swap_count : int;
  two_q_count : int;  (** hardware 2Q operations after all expansion *)
  pulse_count : int;  (** physical X/Y pulses (Figure 8's metric) *)
  flipped_cnots : int;  (** CNOTs reoriented for directed couplings *)
  esp : float;  (** estimated success probability under the calibration *)
  layout : Layout.Report.t option;
      (** the mapping pass's structured layout report — strategy, work
          counters, optimality and cache status ([None] for the identity
          mapping of levels N/1QOpt) *)
  compile_time_s : float;
  pass_times_s : (string * float) list;
      (** per-pass wall time keyed by {!Pass.t} canonical names, in
          schedule order (Section 6.5's compile-time attribution) *)
}

(** [compile_level ?config machine circuit ~level] runs the level's
    named schedule on a program circuit (which may contain
    Toffoli/Fredkin etc.; it is flattened first) under [config] (default
    {!Pass.Config.default}): [level] selects {!Pass.Schedule.of_level}
    and the config's [day]/[layout]/[router]/[peephole]/[validate]
    knobs apply exactly as documented on {!Pass.Config.t}.

    Raises [Invalid_argument] if the program has more qubits than the
    machine. *)
val compile_level :
  ?config:Pass.Config.t -> Device.Machine.t -> Ir.Circuit.t -> level:level -> t

(** Deprecated optional-argument spelling of {!compile_level}: each
    optional argument populates the corresponding {!Pass.Config.t}
    field ([router] maps [`Default]/[`Lookahead] onto
    {!Pass.Config.router}). Behaviour is identical; new code should
    build a [Config.t] (one value to thread through helpers and record
    in reports) instead of growing optional-argument lists. *)
val compile :
  ?day:int ->
  ?node_budget:int ->
  ?peephole:bool ->
  ?router:[ `Default | `Lookahead ] ->
  ?validate:bool ->
  Device.Machine.t ->
  Ir.Circuit.t ->
  level:level ->
  t
[@@deprecated "use Pipeline.compile_level ~config (or Pass.Schedule + compile_schedule)"]

(** [compile_schedule ?config machine circuit schedule] runs an arbitrary
    pass schedule (e.g. one edited with {!Pass.Schedule.disable} or built
    by {!Pass.Schedule.make}) under [config] (default
    {!Pass.Config.default}) and packages the final pass state as a
    result. *)
val compile_schedule :
  ?config:Pass.Config.t -> Device.Machine.t -> Ir.Circuit.t -> Pass.Schedule.t -> t

(** [to_compiled t] is the generic executable view shared with the
    baseline compilers and consumed by the simulator runner. *)
val to_compiled : t -> Compiled.t

(** [estimated_success_probability machine calibration c] multiplies the
    per-gate success probabilities of a hardware-level, software-visible
    circuit: 2Q gates and readout use calibrated errors, 1Q pulses use the
    qubit's 1Q error, virtual-Z gates are free. *)
val estimated_success_probability :
  Device.Machine.t -> Device.Calibration.t -> Ir.Circuit.t -> float
