(* The bridge between the circuit/reliability world and the
   score-model-agnostic layout engine: lowers circuits to
   Layout.Problem.t, dispatches on the configured strategy, and fronts
   the process-wide layout cache.

   The cache token is the Reliability.t itself, compared physically:
   Reliability.compute_cached returns the identical matrix object for the
   same (machine, day, noise-awareness, calibration), so repeated compile
   traffic hits, while any structurally different model — including a
   same-named machine loaded from a different JSON file — misses. *)

let cache : Reliability.t Layout.Cache.t = Layout.Cache.create ~capacity:512 ()

(* Canonicalization dominates the cost of a cache hit: WL refinement with
   individualization spends its full budget on symmetric interaction
   graphs (stars, cycles). Memoize it on the raw interaction structure so
   repeated compiles of the same circuit — the sweep drivers' common
   case — skip straight to the cached form, while relabeled circuits miss
   here and fall through to the full canonization. Keyed structurally, so
   this can never alias two different placement problems. *)
let canon_memo : (int * ((int * int) * int) list * int list, Layout.Canon.t) Hashtbl.t
    =
  Hashtbl.create 64

let canon_of_problem (pr : Layout.Problem.t) =
  let key =
    (pr.Layout.Problem.n_program, pr.Layout.Problem.pairs, pr.Layout.Problem.measured)
  in
  match Hashtbl.find_opt canon_memo key with
  | Some c -> c
  | None ->
    if Hashtbl.length canon_memo >= 512 then Hashtbl.reset canon_memo;
    let c = Layout.Canon.of_problem pr in
    Hashtbl.add canon_memo key c;
    c

let problem ?(objective = Layout.Problem.Max_min) reliability (c : Ir.Circuit.t) =
  let n_program = c.Ir.Circuit.n_qubits in
  let n_hardware = Reliability.n_qubits reliability in
  if n_program > n_hardware then
    Analysis.Diag.invalid ~rule:"circuit.bounds" ~layer:"mapping"
      "%d-qubit program does not fit a %d-qubit device" n_program n_hardware;
  Layout.Problem.make ~objective ~n_program ~n_hardware
    ~pairs:(Mapper.interactions c)
    ~measured:(Ir.Circuit.measured_qubits c)
    ~score:(Reliability.score reliability)
    ~readout:(Reliability.readout_reliability reliability)
    ()

let run_strategy ~(config : Layout.Config.t) pr =
  let budget = config.Layout.Config.node_budget in
  match config.Layout.Config.strategy with
  | Layout.Config.Bb -> Layout.Strategy.bb.Layout.Strategy.solve ~race:None ~seed:None ~budget pr
  | Layout.Config.Smt ->
    Layout.Strategy.smt.Layout.Strategy.solve ~race:None ~seed:None ~budget pr
  | Layout.Config.Greedy ->
    Layout.Strategy.greedy.Layout.Strategy.solve ~race:None ~seed:None ~budget pr
  | Layout.Config.Portfolio -> Layout.Portfolio.solve ?budget pr

let scope ~(config : Layout.Config.t) ~machine_name ~day objective =
  String.concat "|"
    [
      Layout.Config.strategy_name config.Layout.Config.strategy;
      Layout.Problem.objective_name objective;
      (match config.Layout.Config.node_budget with
      | None -> "default"
      | Some b -> string_of_int b);
      machine_name;
      string_of_int day;
    ]

let solve ?(config = Layout.Config.default) ~reliability ~machine_name ~day
    (c : Ir.Circuit.t) : Layout.Report.t =
  let pr = problem reliability c in
  let attrs =
    [
      ("strategy", Obs.Span.Str (Layout.Config.strategy_name config.Layout.Config.strategy));
      ("machine", Obs.Span.Str machine_name);
    ]
  in
  let report, _dt =
    Obs.Span.timed ~attrs "layout.solve" (fun () ->
        if not config.Layout.Config.cache then
          { (run_strategy ~config pr) with Layout.Report.cache = Layout.Report.Bypass }
        else begin
          let canon = canon_of_problem pr in
          let scope = scope ~config ~machine_name ~day pr.Layout.Problem.objective in
          match Layout.Cache.lookup cache ~token:reliability ~scope canon with
          | Some (placement, strategy, proven_optimal) ->
            let objective, log_product = Layout.Problem.evaluate pr placement in
            {
              Layout.Report.strategy;
              placement;
              objective;
              log_product;
              proven_optimal;
              work = Layout.Report.no_work;
              cache = Layout.Report.Hit;
            }
          | None ->
            let r = run_strategy ~config pr in
            Layout.Cache.store cache ~token:reliability ~scope canon
              ~strategy:r.Layout.Report.strategy
              ~proven_optimal:r.Layout.Report.proven_optimal
              r.Layout.Report.placement;
            { r with Layout.Report.cache = Layout.Report.Miss }
        end)
  in
  report

let cache_clear () =
  Layout.Cache.clear cache;
  Hashtbl.reset canon_memo
let cache_stats () = Layout.Cache.stats cache
