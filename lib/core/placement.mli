(** The pipeline's entry to the layout engine: lowers a circuit plus
    reliability matrix to a {!Layout.Problem.t}, dispatches on the
    configured strategy (B&B / SMT / greedy / portfolio), and fronts the
    process-wide layout cache keyed on (canonical interaction-graph form,
    machine, day, objective, strategy, budget).

    Every solve runs inside a [layout.solve] span; the cache maintains
    [layout.cache.hits]/[.misses]/[.evictions] counters. With the default
    config (B&B strategy, cache on) the returned placement is
    bit-identical to the legacy [Mapper.solve] path. *)

(** [problem ?objective reliability circuit] lowers a flattened circuit.
    Raises the standard [circuit.bounds] diagnostic when the program does
    not fit. *)
val problem :
  ?objective:Layout.Problem.objective -> Reliability.t -> Ir.Circuit.t -> Layout.Problem.t

(** [solve ?config ~reliability ~machine_name ~day circuit] consults the
    cache (unless disabled) and otherwise runs the configured strategy. *)
val solve :
  ?config:Layout.Config.t ->
  reliability:Reliability.t ->
  machine_name:string ->
  day:int ->
  Ir.Circuit.t ->
  Layout.Report.t

(** Process-wide layout-cache maintenance (mirrors
    [Reliability.cache_clear]/[cache_stats]). *)
val cache_clear : unit -> unit

val cache_stats : unit -> Layout.Cache.stats
