module Topology = Device.Topology
module Calibration = Device.Calibration
module Machine = Device.Machine

type t = {
  n : int;
  topology : Topology.t;
  edge_rel : float array array;
      (** dense coupling reliability; negative when uncoupled *)
  swap_rel : float array array;  (** max-product swap reliability, hops^3 *)
  next_hop : int array array;  (** successor matrix for path reconstruction *)
  score : float array array;
  best_neighbor : int array array;  (** argmax t' for (c, t); -1 if none *)
  readout : float array;
}

let uncoupled = -1.0

let of_calibration ~noise_aware topology calibration =
  let n = Topology.n_qubits topology in
  let avg = Calibration.average_two_q_err calibration in
  let edge_error a b =
    if noise_aware then Calibration.two_q_err calibration a b else avg
  in
  (* O(1) adjacency lookups: dense n x n reliability with a negative
     sentinel on uncoupled pairs (replaces the former assoc list). *)
  let edge_rel = Array.make_matrix n n uncoupled in
  List.iter
    (fun (a, b) ->
      let r = 1.0 -. edge_error a b in
      edge_rel.(a).(b) <- r;
      edge_rel.(b).(a) <- r)
    (Topology.edges topology);
  (* Floyd-Warshall on swap reliabilities: one hop costs rel^3 (the three
     CNOTs of a SWAP). Maximize the product over hops. *)
  let swap_rel = Array.make_matrix n n 0.0 in
  let next_hop = Array.make_matrix n n (-1) in
  for q = 0 to n - 1 do
    swap_rel.(q).(q) <- 1.0;
    next_hop.(q).(q) <- q
  done;
  List.iter
    (fun (a, b) ->
      let r = edge_rel.(a).(b) in
      let r3 = r *. r *. r in
      swap_rel.(a).(b) <- r3;
      swap_rel.(b).(a) <- r3;
      next_hop.(a).(b) <- b;
      next_hop.(b).(a) <- a)
    (Topology.edges topology);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = swap_rel.(i).(k) *. swap_rel.(k).(j) in
        if via > swap_rel.(i).(j) then begin
          swap_rel.(i).(j) <- via;
          next_hop.(i).(j) <- next_hop.(i).(k)
        end
      done
    done
  done;
  (* Score (c, t): best neighbour t' of t maximizing swap_rel(c, t') times
     the direct t'-t coupling reliability. *)
  let score = Array.make_matrix n n 0.0 in
  let best_neighbor = Array.make_matrix n n (-1) in
  for c = 0 to n - 1 do
    for tgt = 0 to n - 1 do
      if c <> tgt then
        List.iter
          (fun t' ->
            if t' <> tgt then begin
              let candidate = swap_rel.(c).(t') *. edge_rel.(t').(tgt) in
              if candidate > score.(c).(tgt) then begin
                score.(c).(tgt) <- candidate;
                best_neighbor.(c).(tgt) <- t'
              end
            end)
          (Topology.neighbors topology tgt)
    done
  done;
  let readout =
    Array.init n (fun q -> 1.0 -. Calibration.readout_err calibration q)
  in
  { n; topology; edge_rel; swap_rel; next_hop; score; best_neighbor; readout }

let compute ~noise_aware machine calibration =
  of_calibration ~noise_aware machine.Device.Machine.topology calibration

let n_qubits t = t.n

let check t q = if q < 0 || q >= t.n then invalid_arg "Reliability: qubit out of range"

let score t c tgt =
  check t c;
  check t tgt;
  t.score.(c).(tgt)

let edge_reliability t a b =
  check t a;
  check t b;
  let r = t.edge_rel.(a).(b) in
  if r < 0.0 then raise Not_found;
  r

let swap_reliability t a b =
  check t a;
  check t b;
  t.swap_rel.(a).(b)

let reconstruct_path t src dst =
  if t.next_hop.(src).(dst) < 0 then raise Not_found;
  let rec walk acc cur =
    if cur = dst then List.rev (cur :: acc)
    else walk (cur :: acc) t.next_hop.(cur).(dst)
  in
  walk [] src

let swap_path t c tgt =
  check t c;
  check t tgt;
  if c = tgt then invalid_arg "Reliability.swap_path: same qubit";
  let t' = t.best_neighbor.(c).(tgt) in
  if t' < 0 then raise Not_found;
  reconstruct_path t c t'

let path_between t a b =
  check t a;
  check t b;
  if a = b then [ a ] else reconstruct_path t a b

let readout_reliability t q =
  check t q;
  t.readout.(q)

let equal a b =
  a.n = b.n
  && Topology.edges a.topology = Topology.edges b.topology
  && a.edge_rel = b.edge_rel && a.swap_rel = b.swap_rel
  && a.next_hop = b.next_hop && a.score = b.score
  && a.best_neighbor = b.best_neighbor && a.readout = b.readout

let pp fmt t =
  Format.fprintf fmt "    ";
  for j = 0 to t.n - 1 do
    Format.fprintf fmt "%5d " j
  done;
  Format.fprintf fmt "@\n";
  for i = 0 to t.n - 1 do
    Format.fprintf fmt "%3d " i;
    for j = 0 to t.n - 1 do
      if i = j then Format.fprintf fmt "    - "
      else Format.fprintf fmt "%5.2f " t.score.(i).(j)
    done;
    Format.fprintf fmt "@\n"
  done

(* ---- calibration-keyed cache ----

   A sweep recompiles the same (machine, day) pair dozens of times (12
   benchmarks x 4 levels per machine in the paper's grid); the O(n^3)
   Floyd-Warshall pass and the score matrices depend only on (machine,
   day, noise_aware), so they are shared. The table is guarded by a
   mutex and safe to use from pool workers; on the rare double-miss race
   both domains compute the same value and the last store wins. *)

type cache_key = {
  k_name : string;
  k_seed : int;
  k_day : int;
  k_noise_aware : bool;
}

let cache : (cache_key, Machine.t * t) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()
let hits = ref 0
let misses = ref 0

(* The [hits]/[misses] refs reset with [cache_clear] (they describe the
   current cache generation, which sweeps compare across -j levels); the
   Obs counters are cumulative over the process, for traces and the
   bench timings report. *)
let obs_hits = Obs.Metrics.counter "triq.reliability.cache.hits"
let obs_misses = Obs.Metrics.counter "triq.reliability.cache.misses"
let obs_evictions = Obs.Metrics.counter "triq.reliability.cache.evictions"

(* Machine names are not globally unique (users build machines by hand in
   tests and examples), so a hit must also verify the cached machine
   really is the one being asked about. *)
(* Field-wise: [two_q_scale] holds a closure, so polymorphic compare on
   whole profiles would raise; distinct closures count as distinct
   profiles (the conservative direction — at worst a needless miss). *)
let same_profile (a : Calibration.profile) (b : Calibration.profile) =
  a.Calibration.avg_one_q_err = b.Calibration.avg_one_q_err
  && a.Calibration.avg_two_q_err = b.Calibration.avg_two_q_err
  && a.Calibration.avg_readout_err = b.Calibration.avg_readout_err
  && a.Calibration.coherence_us = b.Calibration.coherence_us
  && a.Calibration.one_q_time_us = b.Calibration.one_q_time_us
  && a.Calibration.two_q_time_us = b.Calibration.two_q_time_us
  && a.Calibration.spatial_sigma = b.Calibration.spatial_sigma
  && a.Calibration.temporal_sigma = b.Calibration.temporal_sigma
  &&
  match (a.Calibration.two_q_scale, b.Calibration.two_q_scale) with
  | None, None -> true
  | Some f, Some g -> f == g
  | _ -> false

let same_machine (a : Machine.t) (b : Machine.t) =
  a == b
  || (a.Machine.name = b.Machine.name
     && a.Machine.seed = b.Machine.seed
     && a.Machine.basis = b.Machine.basis
     && same_profile a.Machine.profile b.Machine.profile
     && Topology.directed a.Machine.topology = Topology.directed b.Machine.topology
     && Topology.edges a.Machine.topology = Topology.edges b.Machine.topology
     && Topology.n_qubits a.Machine.topology = Topology.n_qubits b.Machine.topology)

let compute_cached ~noise_aware ?calibration machine ~day =
  let key =
    {
      k_name = machine.Machine.name;
      k_seed = machine.Machine.seed;
      k_day = day;
      k_noise_aware = noise_aware;
    }
  in
  let cached =
    Mutex.protect cache_mutex (fun () ->
        match Hashtbl.find_opt cache key with
        | Some (m, r) when same_machine m machine ->
          incr hits;
          Obs.Metrics.incr obs_hits;
          Some r
        | _ ->
          incr misses;
          Obs.Metrics.incr obs_misses;
          None)
  in
  match cached with
  | Some r -> r
  | None ->
    let calibration =
      match calibration with
      | Some c -> c
      | None -> Machine.calibration machine ~day
    in
    let r = compute ~noise_aware machine calibration in
    Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache key (machine, r));
    r

let cache_clear () =
  Mutex.protect cache_mutex (fun () ->
      Obs.Metrics.incr obs_evictions ~by:(Hashtbl.length cache);
      Hashtbl.reset cache;
      hits := 0;
      misses := 0)

let cache_stats () = Mutex.protect cache_mutex (fun () -> (!hits, !misses))
