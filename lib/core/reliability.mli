(** The 2Q reliability matrix (Section 4.2, Figure 6).

    Entry (c, t) estimates the end-to-end reliability of performing a 2Q
    operation from qubit [c] to qubit [t], including the SWAP routing
    needed to co-locate them: TriQ finds, over all neighbours [t'] of [t],
    the maximum of (most reliable swap-path reliability from [c] to [t'])
    x (2Q gate reliability of the [t'-t] coupling). Swap-path reliability
    is the product over hops of (edge reliability)^3, one factor per CNOT
    of the 3-CNOT swap. The all-pairs swap computation is the
    Floyd-Warshall pass the paper describes.

    In noise-aware mode every coupling uses its calibrated error rate; in
    noise-unaware mode every coupling uses the device-average error, which
    reduces the computation to hop-count minimization. *)

type t

(** [compute ~noise_aware machine calibration] builds the matrix. *)
val compute : noise_aware:bool -> Device.Machine.t -> Device.Calibration.t -> t

(** [compute_cached ~noise_aware machine ~day] is {!compute} behind a
    process-wide cache keyed by (machine, day, noise_aware): repeated
    compiles against the same calibration (a sweep's common case) reuse
    the Floyd-Warshall and score matrices instead of redoing the O(n^3)
    work. Pass [?calibration] when the caller already generated the
    day's snapshot, to avoid regenerating it on a miss. The cache is
    mutex-guarded and safe to use from {!Parallel.Pool} workers. *)
val compute_cached :
  noise_aware:bool ->
  ?calibration:Device.Calibration.t ->
  Device.Machine.t ->
  day:int ->
  t

(** [cache_clear ()] empties the cache and zeroes the hit/miss counters —
    the explicit invalidation hook for callers that mutate calibration
    sources out from under the keys (none of the built-in machines do). *)
val cache_clear : unit -> unit

(** [(hits, misses)] since the last {!cache_clear}. *)
val cache_stats : unit -> int * int

(** Structural equality on every derived field (matrices, paths, readout)
    — the cache-correctness oracle used by the tests. *)
val equal : t -> t -> bool

(** [of_calibration ~noise_aware topology calibration] is the underlying
    computation when no [Machine.t] wrapper is at hand (tests, examples). *)
val of_calibration :
  noise_aware:bool -> Device.Topology.t -> Device.Calibration.t -> t

val n_qubits : t -> int

(** [score t c t'] is the end-to-end 2Q reliability estimate in [0, 1];
    0 when unreachable, and undefined (0) on the diagonal. *)
val score : t -> int -> int -> float

(** [edge_reliability t a b] is the direct coupling reliability used for
    edge [{a,b}]; raises [Not_found] when uncoupled. *)
val edge_reliability : t -> int -> int -> float

(** [swap_path t c tgt] is the hardware-qubit path [c; ...; t'] along
    which SWAPs realize the best 2Q between [c] and [tgt]: [t'] is the
    chosen best neighbour of [tgt] ([t' = c] and a singleton path when
    they are already coupled). Raises [Not_found] when unreachable. *)
val swap_path : t -> int -> int -> int list

(** [swap_reliability t a b] is the best swap-path reliability from [a] to
    [b] (1.0 when [a = b]). *)
val swap_reliability : t -> int -> int -> float

(** [path_between t a b] is the max-product swap path [a; ...; b] realizing
    [swap_reliability t a b]; raises [Not_found] when unreachable. *)
val path_between : t -> int -> int -> int list

(** [readout_reliability t q] is 1 - readout error of [q]. *)
val readout_reliability : t -> int -> float

(** [pp] prints the matrix in the layout of Figure 6. *)
val pp : Format.formatter -> t -> unit
