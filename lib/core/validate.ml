let executable_of_compiled ?measured (c : Compiled.t) =
  {
    Analysis.Check.machine = c.Compiled.machine;
    hardware = c.Compiled.hardware;
    initial_placement = c.Compiled.initial_placement;
    final_placement = c.Compiled.final_placement;
    readout_map = c.Compiled.readout_map;
    measured;
    two_q_count = c.Compiled.two_q_count;
    pulse_count = c.Compiled.pulse_count;
    esp = c.Compiled.esp;
  }

let check_compiled ?measured c =
  Analysis.Check.check_executable (executable_of_compiled ?measured c)

let check_pipeline ?measured t = check_compiled ?measured (Pipeline.to_compiled t)
