module Diag = Analysis.Diag

type clifford_facts = {
  is_clifford : bool;
  prefix_gates : int;
  body_gates : int;
}

type summary = {
  n_qubits : int;
  used_qubits : int;
  clifford : clifford_facts;
  dead : int list;
  components : int list list;
  mergeable : (int * int) list;
}

(* Counters are created at the call site, not at module init: a cold
   [triqc metrics] run must not see dataflow names it never executed. *)
let domain name f =
  Obs.Span.with_span ("dataflow." ^ name) (fun () ->
      Obs.Metrics.incr (Obs.Metrics.counter ("dataflow." ^ name ^ ".runs"));
      f ())

let summarize c =
  let body_gates = Ir.Circuit.gate_count c - Ir.Circuit.measure_count c in
  let clifford =
    domain "clifford" (fun () ->
        let prefix_gates = Tableau.clifford_prefix c in
        { is_clifford = prefix_gates = body_gates; prefix_gates; body_gates })
  in
  let dead = domain "liveness" (fun () -> Liveness.dead_indices c) in
  let components = domain "entangle" (fun () -> Entangle.components c) in
  let mergeable = domain "phase" (fun () -> Phase.mergeable c) in
  {
    n_qubits = c.Ir.Circuit.n_qubits;
    used_qubits = List.length (Ir.Circuit.used_qubits c);
    clifford;
    dead;
    components;
    mergeable;
  }

let lints ~layer c =
  let dead = domain "liveness" (fun () -> Liveness.dead_diags ~layer c) in
  let missed = domain "phase" (fun () -> Phase.diags ~layer c) in
  List.sort Diag.compare (dead @ missed)

let summary_json s =
  Obs.Json.Obj
    [
      ("n_qubits", Obs.Json.Int s.n_qubits);
      ("used_qubits", Obs.Json.Int s.used_qubits);
      ( "clifford",
        Obs.Json.Obj
          [
            ("is_clifford", Obs.Json.Bool s.clifford.is_clifford);
            ("prefix_gates", Obs.Json.Int s.clifford.prefix_gates);
            ("body_gates", Obs.Json.Int s.clifford.body_gates);
          ] );
      ("dead_gates", Obs.Json.List (List.map (fun i -> Obs.Json.Int i) s.dead));
      ( "components",
        Obs.Json.List
          (List.map
             (fun qs -> Obs.Json.List (List.map (fun q -> Obs.Json.Int q) qs))
             s.components) );
      ( "mergeable",
        Obs.Json.List
          (List.map
             (fun (a, b) -> Obs.Json.List [ Obs.Json.Int a; Obs.Json.Int b ])
             s.mergeable) );
    ]

let summary_text s =
  let component_str qs =
    "{" ^ String.concat "," (List.map string_of_int qs) ^ "}"
  in
  [
    Printf.sprintf "qubits:       %d declared, %d used" s.n_qubits s.used_qubits;
    (if s.clifford.is_clifford then
       Printf.sprintf "clifford:     yes (%d gates)" s.clifford.body_gates
     else
       Printf.sprintf "clifford:     no (prefix %d of %d gates)"
         s.clifford.prefix_gates s.clifford.body_gates);
    Printf.sprintf "liveness:     %d dead gate(s)" (List.length s.dead);
    Printf.sprintf "entanglement: %d component(s): %s" (List.length s.components)
      (String.concat " " (List.map component_str s.components));
    Printf.sprintf "phase:        %d mergeable rotation pair(s)"
      (List.length s.mergeable);
  ]
