(** Facade over the four abstract domains: one call computes every
    static fact about a circuit, under [dataflow.*] spans/counters. *)

type clifford_facts = {
  is_clifford : bool;  (** every body gate has a Clifford action *)
  prefix_gates : int;  (** maximal Clifford prefix length *)
  body_gates : int;  (** non-measure gate count *)
}

type summary = {
  n_qubits : int;
  used_qubits : int;
  clifford : clifford_facts;
  dead : int list;  (** dead gate positions ({!Liveness.dead_indices}) *)
  components : int list list;  (** entanglement partition *)
  mergeable : (int * int) list;  (** statically mergeable rotation pairs *)
}

(** [summarize c] runs all four domains. Each domain runs under an
    [Obs] span ([dataflow.clifford], [dataflow.liveness],
    [dataflow.entangle], [dataflow.phase]) and bumps a
    [dataflow.<domain>.runs] counter. *)
val summarize : Ir.Circuit.t -> summary

(** [lints ~layer c] is the diagnostic view: [dead.gate] warnings and
    [opt.missed] infos, sorted with {!Analysis.Diag.compare}. *)
val lints : layer:string -> Ir.Circuit.t -> Analysis.Diag.t list

(** JSON rendering of a summary (for the [triqc check] envelope). *)
val summary_json : summary -> Obs.Json.t

(** Multi-line human rendering of a summary. *)
val summary_text : summary -> string list
