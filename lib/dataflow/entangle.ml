(* Union-find with path compression; sizes here are tiny, rank is not
   worth the bookkeeping. *)
let components c =
  let n = c.Ir.Circuit.n_qubits in
  let parent = Array.init n Fun.id in
  let rec find q = if parent.(q) = q then q else (parent.(q) <- find parent.(q); parent.(q)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter
    (fun g ->
      match Ir.Gate.qubits g with
      | [] | [ _ ] -> ()
      | q0 :: rest -> List.iter (union q0) rest)
    c.Ir.Circuit.gates;
  let used = Ir.Circuit.used_qubits c in
  let classes = Hashtbl.create 8 in
  List.iter
    (fun q ->
      let r = find q in
      Hashtbl.replace classes r (q :: (Option.value ~default:[] (Hashtbl.find_opt classes r))))
    used;
  Hashtbl.fold (fun _ qs acc -> List.rev qs :: acc) classes []
  |> List.sort (fun a b -> Stdlib.compare (List.hd a) (List.hd b))
