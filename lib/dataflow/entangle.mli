(** Entanglement partition domain.

    Union-find over qubits: every multi-qubit gate merges its operands'
    classes. Qubits in different classes are never coupled by any gate,
    so the circuit factors into independent subcircuits — the static
    skeleton for separable simulation and the ROADMAP's resynthesis
    work. This is an over-approximation: coupled qubits may still end
    up unentangled (e.g. CNOT; CNOT), but uncoupled qubits are
    guaranteed separable. *)

(** [components c] partitions the {e used} qubits of [c] into coupling
    classes: each class sorted ascending, classes ordered by their
    least element. Unused qubits are omitted. *)
val components : Ir.Circuit.t -> int list list
