module Diag = Analysis.Diag

let live c =
  let n = c.Ir.Circuit.n_qubits in
  let gates = Array.of_list c.Ir.Circuit.gates in
  let m = Array.length gates in
  let live_q = Array.make n false in
  let live_g = Array.make m false in
  for i = m - 1 downto 0 do
    match gates.(i) with
    | Ir.Gate.Measure q ->
        live_g.(i) <- true;
        live_q.(q) <- true
    | g ->
        let qs = Ir.Gate.qubits g in
        if List.exists (fun q -> live_q.(q)) qs then begin
          live_g.(i) <- true;
          List.iter (fun q -> live_q.(q) <- true) qs
        end
  done;
  live_g

let dead_indices c =
  if Ir.Circuit.measure_count c = 0 then []
  else
    let flags = live c in
    let acc = ref [] in
    Array.iteri (fun i l -> if not l then acc := i :: !acc) flags;
    List.rev !acc

let dead_diags ~layer c =
  let gates = Array.of_list c.Ir.Circuit.gates in
  List.map
    (fun i ->
      Diag.warnf ~rule:"dead.gate" ~layer ~loc:(Diag.Gate i)
        "%s cannot influence any measured outcome"
        (Ir.Gate.to_string gates.(i)))
    (dead_indices c)
