(** Backward qubit liveness from measurements.

    A gate is {e live} when it can influence some measured outcome:
    walking the gate list backward, the live qubit set is seeded by
    [Measure] operations, every gate touching a live qubit is live, and
    a live gate makes all its operands live (quantum gates have no
    one-way dataflow — any operand can carry influence to any other).
    Removing the dead gates preserves the output distribution over the
    measured qubits exactly. *)

(** [live c] is a per-gate flag array (index = position in
    [c.gates]). [Measure] gates are always live. A circuit with no
    measurements has every non-measure gate dead in the literal sense;
    see {!dead_indices} for the lint-facing view. *)
val live : Ir.Circuit.t -> bool array

(** [dead_indices c] lists the dead gate positions, except that a
    circuit with no measurements reports [] — every gate is trivially
    dead there and flagging them all would be noise. *)
val dead_indices : Ir.Circuit.t -> int list

(** [dead_diags ~layer c] renders {!dead_indices} as [dead.gate]
    warnings. *)
val dead_diags : layer:string -> Ir.Circuit.t -> Analysis.Diag.t list
