module Diag = Analysis.Diag

let is_diagonal_rotation (g : Ir.Gate.one_q) =
  match g with
  | Z | S | Sdg | T | Tdg | Rz _ | U1 _ -> true
  | _ -> false

let mergeable c =
  let n = c.Ir.Circuit.n_qubits in
  (* pending.(q) = index of a diagonal rotation whose effect still sits
     on qubit q's Z axis undisturbed. *)
  let pending = Array.make n None in
  let pairs = ref [] in
  List.iteri
    (fun idx g ->
      match g with
      | Ir.Gate.One (og, q) when is_diagonal_rotation og ->
          (match pending.(q) with
          | Some earlier -> pairs := (earlier, idx) :: !pairs
          | None -> ());
          pending.(q) <- Some idx
      | Ir.Gate.One (_, q) -> pending.(q) <- None
      | Ir.Gate.Two (Cz, _, _) -> () (* diagonal: transparent on both *)
      | Ir.Gate.Two (Cnot, _, target) -> pending.(target) <- None
      | Ir.Gate.Two (_, a, b) ->
          pending.(a) <- None;
          pending.(b) <- None
      | Ir.Gate.Ccx (_, _, target) -> pending.(target) <- None
      | Ir.Gate.Cswap (_, t1, t2) ->
          pending.(t1) <- None;
          pending.(t2) <- None
      | Ir.Gate.Measure q -> pending.(q) <- None)
    c.Ir.Circuit.gates;
  List.rev !pairs

let diags ~layer c =
  let gates = Array.of_list c.Ir.Circuit.gates in
  List.map
    (fun (earlier, later) ->
      Diag.infof ~rule:"opt.missed" ~layer ~loc:(Diag.Gate later)
        "%s is statically mergeable with %s at gate %d"
        (Ir.Gate.to_string gates.(later))
        (Ir.Gate.to_string gates.(earlier))
        earlier)
    (mergeable c)
