(** Diagonal-phase constant propagation.

    Tracks, per qubit, a pending diagonal one-qubit rotation (Z, S,
    Sdg, T, Tdg, Rz, U1). A later diagonal rotation on the same qubit
    is statically mergeable with the pending one when every gate in
    between is {e diagonal-transparent} on that qubit — it commutes
    with Z there: CZ on either operand, CNOT on its control, Toffoli
    on its controls, Fredkin on its control, and nothing else. Any
    other intervening gate (including CNOT targets and measures)
    clears the pending rotation. *)

(** [mergeable c] lists [(earlier, later)] gate-position pairs of
    adjacent-up-to-transparency diagonal rotations. Chains report each
    consecutive pair once: [Rz; Rz; Rz] yields [(0,1); (1,2)]. *)
val mergeable : Ir.Circuit.t -> (int * int) list

(** [diags ~layer c] renders {!mergeable} as [opt.missed] info lints. *)
val diags : layer:string -> Ir.Circuit.t -> Analysis.Diag.t list
