module Matrix = Mathkit.Matrix
module Cplx = Mathkit.Cplx

type generator = int * bool array * bool array

(* A generator is i^e * prod_q X_q^{x_q} Z_q^{z_q}, X written before Z
   on each qubit; all phase lives in [e] (mod 4). *)
type row = { mutable e : int; x : bool array; z : bool array }

type t = { n : int; gens : row array }

let init n =
  if n < 1 then invalid_arg "Tableau.init: need at least one qubit";
  {
    n;
    gens =
      Array.init n (fun q ->
          { e = 0; x = Array.make n false; z = (let z = Array.make n false in z.(q) <- true; z) });
  }

let n_qubits t = t.n
let copy_row r = { e = r.e; x = Array.copy r.x; z = Array.copy r.z }
let generators t = Array.to_list (Array.map (fun r -> (r.e, Array.copy r.x, Array.copy r.z)) t.gens)

(* ------------------------------------------------------------------ *)
(* Local Pauli algebra over the k operand slots of a gate.            *)
(* ------------------------------------------------------------------ *)

type local = { le : int; lx : bool array; lz : bool array }

let local_id k = { le = 0; lx = Array.make k false; lz = Array.make k false }

(* (X^x1 Z^z1)(X^x2 Z^z2): commuting X^x2 left across Z^z1 picks up
   (-1) per slot where both are set. *)
let local_mul a b =
  let k = Array.length a.lx in
  let e = ref (a.le + b.le) in
  for j = 0 to k - 1 do
    if a.lz.(j) && b.lx.(j) then e := !e + 2
  done;
  {
    le = !e land 3;
    lx = Array.init k (fun j -> a.lx.(j) <> b.lx.(j));
    lz = Array.init k (fun j -> a.lz.(j) <> b.lz.(j));
  }

(* ------------------------------------------------------------------ *)
(* Numeric derivation of a gate's Clifford action.                    *)
(* ------------------------------------------------------------------ *)

let sigma_i = Matrix.identity 2

let sigma_x =
  Matrix.of_rows [ [ Cplx.zero; Cplx.one ]; [ Cplx.one; Cplx.zero ] ]

let sigma_y =
  Matrix.of_rows [ [ Cplx.zero; Cplx.make 0. (-1.) ]; [ Cplx.i; Cplx.zero ] ]

let sigma_z =
  Matrix.of_rows [ [ Cplx.one; Cplx.zero ]; [ Cplx.zero; Cplx.make (-1.) 0. ] ]

let sigma = [| sigma_i; sigma_x; sigma_y; sigma_z |]

(* Pauli label s in 0..3 as an X-before-Z local factor: Y = i * X Z. *)
let label_local s =
  match s with
  | 0 -> (0, false, false)
  | 1 -> (0, true, false)
  | 2 -> (1, true, true)
  | 3 -> (0, false, true)
  | _ -> assert false

let eps = 1e-6

(* Match [c] against +/- (sigma_{s_0} (x) ... (x) sigma_{s_{k-1}}). A
   unitary conjugate of a Hermitian Pauli is Hermitian with eigenvalues
   +/-1, so the scalar can only be +/-1. *)
let match_signed_pauli k c =
  let rec labels_of i acc m =
    if i = k then if Matrix.equal ~eps c m || Matrix.equal ~eps c (Matrix.scale (Cplx.re (-1.)) m) then Some (List.rev acc, m) else None
    else
      let rec try_s s =
        if s > 3 then None
        else
          match labels_of (i + 1) (s :: acc) (Matrix.kron m sigma.(s)) with
          | Some _ as r -> r
          | None -> try_s (s + 1)
      in
      try_s 0
  in
  match labels_of 0 [] (Matrix.identity 1) with
  | None -> None
  | Some (labels, m) ->
      let negated = Matrix.equal ~eps c (Matrix.scale (Cplx.re (-1.)) m) in
      let lx = Array.make k false and lz = Array.make k false in
      let e = ref (if negated then 2 else 0) in
      List.iteri
        (fun j s ->
          let se, sx, sz = label_local s in
          e := !e + se;
          lx.(j) <- sx;
          lz.(j) <- sz)
        labels;
      Some { le = !e land 3; lx; lz }

(* Basis Pauli X_slot / Z_slot as a 2^k x 2^k matrix (slot 0 = high bit,
   matching {!Ir.Matrices}). *)
let basis_pauli k slot s =
  let m = ref (Matrix.identity 1) in
  for j = 0 to k - 1 do
    m := Matrix.kron !m (if j = slot then sigma.(s) else sigma_i)
  done;
  !m

(* The derived action: image of X_slot and Z_slot under conjugation, or
   None when some image is not a signed Pauli (gate is not Clifford). *)
type action = { img_x : local array; img_z : local array }

let derive_action k u =
  let udag = Matrix.adjoint u in
  let conj p = Matrix.mul u (Matrix.mul p udag) in
  let exception Not_clifford in
  try
    let image s slot =
      match match_signed_pauli k (conj (basis_pauli k slot s)) with
      | Some l -> l
      | None -> raise Not_clifford
    in
    Some
      {
        img_x = Array.init k (fun slot -> image 1 slot);
        img_z = Array.init k (fun slot -> image 3 slot);
      }
  with Not_clifford -> None

(* Memoized per gate shape (operands normalized to slots 0..k-1). *)
let action_cache : (Ir.Gate.t, action option) Hashtbl.t = Hashtbl.create 64

let gate_action g =
  match g with
  | Ir.Gate.Measure _ -> invalid_arg "Tableau: Measure has no unitary action"
  | Ir.Gate.Ccx _ | Ir.Gate.Cswap _ -> None
  | Ir.Gate.One (og, _) ->
      let key = Ir.Gate.One (og, 0) in
      (match Hashtbl.find_opt action_cache key with
      | Some a -> a
      | None ->
          let a = derive_action 1 (Ir.Matrices.one_q og) in
          Hashtbl.replace action_cache key a;
          a)
  | Ir.Gate.Two (tg, _, _) ->
      let key = Ir.Gate.Two (tg, 0, 1) in
      (match Hashtbl.find_opt action_cache key with
      | Some a -> a
      | None ->
          let a = derive_action 2 (Ir.Matrices.two_q tg) in
          Hashtbl.replace action_cache key a;
          a)

let is_clifford_gate g =
  match g with
  | Ir.Gate.Measure _ -> false
  | _ -> gate_action g <> None

(* Conjugation of one Pauli row, exposed over caller-owned bit arrays so
   external tableau representations (e.g. the simulator's
   Aaronson-Gottesman tableau with destabilizers) can reuse the derived
   actions without going through a [t]. *)
module Action = struct
  type t = action

  let of_gate = gate_action
  let arity act = Array.length act.img_x

  (* Restrict the row to the operand qubits (slot order; factors on
     other qubits commute through), replace each basis factor by its
     image, in the canonical X-before-Z per-qubit order. Returns the
     updated phase; [x]/[z] are updated in place. *)
  let conjugate act qs ~x ~z e =
    let k = Array.length act.img_x in
    let acc = ref (local_id k) in
    for i = 0 to k - 1 do
      let q = qs.(i) in
      if x.(q) then acc := local_mul !acc act.img_x.(i);
      if z.(q) then acc := local_mul !acc act.img_z.(i)
    done;
    let a = !acc in
    for i = 0 to k - 1 do
      x.(qs.(i)) <- a.lx.(i);
      z.(qs.(i)) <- a.lz.(i)
    done;
    (e + a.le) land 3

  (* Dense lookup table over the 4^k local Pauli patterns, for callers
     that conjugate rows in bulk (the simulator's tableau backend):
     index and result pack slot j's X bit at 2j and Z bit at 2j+1, with
     the phase increment above bit 2k. *)
  let table act =
    let k = Array.length act.img_x in
    let bits = 2 * k in
    let qs = Array.init k Fun.id in
    Array.init (1 lsl bits) (fun code ->
        let x = Array.make k false and z = Array.make k false in
        for j = 0 to k - 1 do
          x.(j) <- (code lsr (2 * j)) land 1 = 1;
          z.(j) <- (code lsr ((2 * j) + 1)) land 1 = 1
        done;
        let e = conjugate act qs ~x ~z 0 in
        let out = ref (e lsl bits) in
        for j = 0 to k - 1 do
          if x.(j) then out := !out lor (1 lsl (2 * j));
          if z.(j) then out := !out lor (1 lsl ((2 * j) + 1))
        done;
        !out)
end

let conj_row row qs act =
  row.e <- Action.conjugate act qs ~x:row.x ~z:row.z row.e

let apply t g =
  let qs = Array.of_list (Ir.Gate.qubits g) in
  Array.iter
    (fun q ->
      if q < 0 || q >= t.n then invalid_arg "Tableau.apply: operand out of range")
    qs;
  match gate_action g with
  | None -> false
  | Some act ->
      Array.iter (fun row -> conj_row row qs act) t.gens;
      true

let of_circuit c =
  let t = init c.Ir.Circuit.n_qubits in
  let ok =
    List.for_all
      (fun g -> match g with Ir.Gate.Measure _ -> true | _ -> apply t g)
      c.Ir.Circuit.gates
  in
  if ok then Some t else None

let clifford_prefix c =
  let t = init c.Ir.Circuit.n_qubits in
  let rec go count = function
    | [] -> count
    | Ir.Gate.Measure _ :: rest -> go count rest
    | g :: rest -> if apply t g then go (count + 1) rest else count
  in
  go 0 c.Ir.Circuit.gates

(* ------------------------------------------------------------------ *)
(* Canonical form and equality.                                        *)
(* ------------------------------------------------------------------ *)

(* Full-width Pauli product with the same phase rule as {!local_mul}. *)
let row_mul n a b =
  let e = ref (a.e + b.e) in
  for q = 0 to n - 1 do
    if a.z.(q) && b.x.(q) then e := !e + 2
  done;
  {
    e = !e land 3;
    x = Array.init n (fun q -> a.x.(q) <> b.x.(q));
    z = Array.init n (fun q -> a.z.(q) <> b.z.(q));
  }

(* Gaussian elimination to reduced row-echelon form over the 2n GF(2)
   columns x_0..x_{n-1}, z_0..z_{n-1}. Row operations are Pauli
   products, so phases follow the group structure; a group contains each
   bit pattern with exactly one sign, making the result canonical. *)
let rref n rows =
  let rows = Array.map copy_row rows in
  let m = Array.length rows in
  let bit row col = if col < n then row.x.(col) else row.z.(col - n) in
  let r = ref 0 in
  for col = 0 to (2 * n) - 1 do
    if !r < m then begin
      let pivot = ref (-1) in
      (try
         for i = !r to m - 1 do
           if bit rows.(i) col then begin
             pivot := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot >= 0 then begin
        let tmp = rows.(!r) in
        rows.(!r) <- rows.(!pivot);
        rows.(!pivot) <- tmp;
        for i = 0 to m - 1 do
          if i <> !r && bit rows.(i) col then
            rows.(i) <- row_mul n rows.(i) rows.(!r)
        done;
        incr r
      end
    end
  done;
  rows

let canonicalize t = { t with gens = rref t.n t.gens }

let row_equal a b = a.e = b.e && a.x = b.x && a.z = b.z

let equal a b =
  a.n = b.n
  &&
  let ca = canonicalize a and cb = canonicalize b in
  Array.for_all2 row_equal ca.gens cb.gens

(* The subgroup of stabilizers with no X component on any wire of
   [measured], as a canonical basis. Z-basis dephasing on [measured]
   kills exactly the Pauli terms with X/Y there, so this subgroup is the
   complete invariant of the state once those wires are read out: it
   determines the joint outcome distribution and the conditional states
   on the remaining wires. Computed by eliminating the measured X
   columns (row ops = Pauli products); the rows left X-free span the
   kernel by rank-nullity. *)
let dephased_rows t ~measured =
  let rows = Array.map copy_row t.gens in
  let m = Array.length rows in
  let r = ref 0 in
  List.iter
    (fun w ->
      if w < 0 || w >= t.n then invalid_arg "Tableau: measured wire out of range";
      if !r < m then begin
        let pivot = ref (-1) in
        (try
           for i = !r to m - 1 do
             if rows.(i).x.(w) then begin
               pivot := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !pivot >= 0 then begin
          let tmp = rows.(!r) in
          rows.(!r) <- rows.(!pivot);
          rows.(!pivot) <- tmp;
          for i = 0 to m - 1 do
            if i <> !r && rows.(i).x.(w) then
              rows.(i) <- row_mul t.n rows.(i) rows.(!r)
          done;
          incr r
        end
      end)
    (List.sort_uniq Stdlib.compare measured);
  rref t.n (Array.sub rows !r (m - !r))

let dephase t ~measured =
  Array.to_list
    (Array.map (fun r -> (r.e, Array.copy r.x, Array.copy r.z)) (dephased_rows t ~measured))

let measurement_equal a b ~measured =
  a.n = b.n
  &&
  let ra = dephased_rows a ~measured and rb = dephased_rows b ~measured in
  Array.length ra = Array.length rb && Array.for_all2 row_equal ra rb

let generator_to_string (e, x, z) =
  let n = Array.length x in
  let ys = ref 0 in
  for q = 0 to n - 1 do
    if x.(q) && z.(q) then incr ys
  done;
  let sign =
    match (e - !ys) land 3 with
    | 0 -> "+"
    | 1 -> "+i"
    | 2 -> "-"
    | _ -> "-i"
  in
  let buf = Buffer.create (n + 2) in
  Buffer.add_string buf sign;
  for q = 0 to n - 1 do
    Buffer.add_char buf
      (match (x.(q), z.(q)) with
      | false, false -> 'I'
      | true, false -> 'X'
      | false, true -> 'Z'
      | true, true -> 'Y')
  done;
  Buffer.contents buf

let first_difference ?(measured = []) a b =
  if a.n <> b.n then
    Some (Printf.sprintf "qubit counts differ (%d vs %d)" a.n b.n)
  else
    let ra =
      if measured = [] then (canonicalize a).gens else dephased_rows a ~measured
    and rb =
      if measured = [] then (canonicalize b).gens else dephased_rows b ~measured
    in
    if Array.length ra <> Array.length rb then
      Some
        (Printf.sprintf "stabilizer ranks differ (%d vs %d)" (Array.length ra)
           (Array.length rb))
    else
      let rec find i =
        if i >= Array.length ra then None
        else if row_equal ra.(i) rb.(i) then find (i + 1)
        else
          Some
            (Printf.sprintf "%s vs %s"
               (generator_to_string (ra.(i).e, ra.(i).x, ra.(i).z))
               (generator_to_string (rb.(i).e, rb.(i).x, rb.(i).z)))
      in
      find 0

let embed t ~n ~map =
  if Array.length map <> t.n then
    invalid_arg "Tableau.embed: map length must equal qubit count";
  let seen = Array.make n false in
  Array.iter
    (fun q ->
      if q < 0 || q >= n then invalid_arg "Tableau.embed: map image out of range";
      if seen.(q) then invalid_arg "Tableau.embed: map is not injective";
      seen.(q) <- true)
    map;
  let remap row =
    let x = Array.make n false and z = Array.make n false in
    for q = 0 to t.n - 1 do
      x.(map.(q)) <- row.x.(q);
      z.(map.(q)) <- row.z.(q)
    done;
    { e = row.e; x; z }
  in
  let fresh =
    List.filter_map
      (fun q ->
        if seen.(q) then None
        else
          Some
            { e = 0; x = Array.make n false; z = (let z = Array.make n false in z.(q) <- true; z) })
      (List.init n Fun.id)
  in
  { n; gens = Array.of_list (Array.to_list (Array.map remap t.gens) @ fresh) }
