(** Stabilizer tableau domain: polynomial-time Clifford propagation.

    A stabilizer state on [n] qubits is represented by [n] generators,
    each a Pauli operator [i^e * prod_q X_q^{x_q} Z_q^{z_q}] with the
    per-qubit factors written X-before-Z. The initial state |0...0> is
    stabilized by [Z_0 .. Z_{n-1}].

    Clifford recognition is {e derived numerically} from each gate's
    unitary ({!Ir.Matrices}): a gate is Clifford iff conjugating every
    generator-basis Pauli on its operands ([X_a], [Z_a], ...) by the
    unitary lands back on a signed Pauli (up to 1e-6). This covers the
    whole IR gate set uniformly — [Rz (k*pi/2)], [U2]/[U3] at Clifford
    angles, and the Molmer-Sorensen [Xx (k*pi/4)] are all recognized
    without a case table. [Ccx]/[Cswap] are never Clifford. *)

type t

(** A generator as [(e, x, z)]: the Pauli [i^e * prod X^x Z^z]. *)
type generator = int * bool array * bool array

(** [init n] is the tableau of |0...0>: generators [Z_0 .. Z_{n-1}]. *)
val init : int -> t

val n_qubits : t -> int

(** Raw generators, in internal order (no canonicalization). *)
val generators : t -> generator list

(** [is_clifford_gate g] tests whether [g] has a Clifford action.
    [Measure] is not Clifford (it is not unitary). Results are memoized
    per gate. *)
val is_clifford_gate : Ir.Gate.t -> bool

(** A gate's derived Clifford action, applicable to caller-owned Pauli
    rows. This is the reuse surface for external tableau
    representations (e.g. the simulator's Aaronson-Gottesman tableau,
    which carries destabilizer rows this module does not). *)
module Action : sig
  type t

  (** Same memoized derivation as {!is_clifford_gate}: [None] when the
      gate is not Clifford. Raises [Invalid_argument] on [Measure]. *)
  val of_gate : Ir.Gate.t -> t option

  (** Number of operand slots (1 or 2). *)
  val arity : t -> int

  (** [conjugate act qs ~x ~z e] conjugates the Pauli
      [i^e * prod_q X_q^{x_q} Z_q^{z_q}] by the gate acting on qubits
      [qs] (length = {!arity}), updating [x]/[z] in place and returning
      the new phase exponent (mod 4). *)
  val conjugate : t -> int array -> x:bool array -> z:bool array -> int -> int

  (** Dense conjugation table over the 4^arity local Pauli patterns,
      for callers that conjugate rows in bulk: index and result pack
      slot [j]'s X bit at position [2j] and Z bit at [2j+1]; the result
      carries the phase increment (mod 4) above bit [2*arity]. *)
  val table : t -> int array
end

(** [apply t g] conjugates every generator by [g] in place and returns
    [true]; returns [false] (state untouched) when [g] is not Clifford.
    Raises [Invalid_argument] on [Measure] or out-of-range operands. *)
val apply : t -> Ir.Gate.t -> bool

(** [of_circuit c] propagates |0...0> through the measure-free view of
    [c]; [None] when some gate is not Clifford. *)
val of_circuit : Ir.Circuit.t -> t option

(** [clifford_prefix c] is the length (in gates, measures excluded from
    the count) of the maximal Clifford prefix of [c]'s body. *)
val clifford_prefix : Ir.Circuit.t -> int

(** [embed t ~n ~map] re-indexes [t] into an [n]-qubit tableau: old
    qubit [q] becomes [map.(q)] (injective, in range). Qubits of the
    larger space not in the image get fresh [+Z] generators — i.e. the
    embedding asserts they are in |0>. Raises [Invalid_argument] if
    [map] is not an injection into [0..n-1] or [n] is too small. *)
val embed : t -> n:int -> map:int array -> t

(** [canonicalize t] reduces the generator set to its unique
    row-reduced echelon form (Gaussian elimination over the X block
    then the Z block, with Pauli-product row operations so phases stay
    consistent). Two tableaux stabilize the same state iff their
    canonical forms are identical. *)
val canonicalize : t -> t

(** [equal a b] tests whether two tableaux stabilize the same state
    (via {!canonicalize}). False when qubit counts differ. *)
val equal : t -> t -> bool

(** [dephase t ~measured] is the canonical basis of the subgroup of
    stabilizers with no X component on any wire in [measured]. Z-basis
    dephasing on those wires kills exactly the Pauli terms with X/Y
    there, so this basis is the complete invariant of the state once
    the wires are read out: it determines the joint outcome
    distribution and the conditional states of the remaining wires. *)
val dephase : t -> measured:int list -> generator list

(** [measurement_equal a b ~measured] tests whether the two states are
    indistinguishable given that the [measured] wires are read out in
    the Z basis and everything else stays quantum — {!equal} modulo
    diagonal phases on measured wires (e.g. an [S] dropped just before
    its readout, the `oneq` coalescer's legal move). *)
val measurement_equal : t -> t -> measured:int list -> bool

(** [first_difference ?measured a b] is a human-readable witness
    generator pair when the states differ (under {!measurement_equal}
    when [measured] is given, {!equal} otherwise), e.g.
    ["+XZI vs -XZI"]. *)
val first_difference : ?measured:int list -> t -> t -> string option

(** ["+XIZ"]-style rendering of a generator. *)
val generator_to_string : generator -> string
