module Diag = Analysis.Diag

let counter name = Obs.Metrics.incr (Obs.Metrics.counter ("dataflow.validate." ^ name))

(* Wire map from before-circuit wires to after-circuit wires: program
   qubit [p] sits on wire [fb.(p)] before and [fa.(p)] after. Unmapped
   wires are -1; when the placement is unchanged the map extends to the
   identity (pure gate rewrites move nothing). *)
let wire_map ~n_before ~n_after fb fa =
  let map = Array.make n_before (-1) in
  let consistent = ref true in
  Array.iteri
    (fun p qb ->
      let qa = fa.(p) in
      if qb >= 0 && qb < n_before && qa >= 0 && qa < n_after then
        if map.(qb) = -1 then map.(qb) <- qa
        else if map.(qb) <> qa then consistent := false)
    fb;
  let unchanged = n_before = n_after && fb = fa in
  if unchanged then
    Array.iteri (fun q img -> if img = -1 then map.(q) <- q) map;
  (map, !consistent)

let is_total_injection ~n_after map =
  let seen = Array.make n_after false in
  Array.for_all
    (fun img ->
      img >= 0 && img < n_after
      && (not seen.(img))
      && (seen.(img) <- true;
          true))
    map

let check ~layer ~before ~before_placement ~after ~after_placement =
  Obs.Span.with_span "dataflow.validate" (fun () ->
      counter "checks";
      let n_b = before.Ir.Circuit.n_qubits
      and n_a = after.Ir.Circuit.n_qubits in
      if Array.length before_placement <> Array.length after_placement then []
      else begin
        let map, consistent =
          wire_map ~n_before:n_b ~n_after:n_a before_placement after_placement
        in
        let diags = ref [] in
        let emit d = diags := d :: !diags in
        (* Liveness of readout. *)
        let mc_b = Ir.Circuit.measure_count before
        and mc_a = Ir.Circuit.measure_count after in
        if mc_b <> mc_a then
          emit
            (Diag.errorf ~rule:"live.mismatch" ~layer
               "measure count changed across the pass (%d -> %d)" mc_b mc_a);
        let measured_b = Ir.Circuit.measured_qubits before in
        let expected =
          List.filter_map
            (fun q ->
              if q < Array.length map && map.(q) >= 0 then Some map.(q)
              else begin
                emit
                  (Diag.errorf ~rule:"live.mismatch" ~layer ~loc:(Diag.Qubit q)
                     "measured wire q%d has no image under the placement change"
                     q);
                None
              end)
            measured_b
          |> List.sort_uniq Stdlib.compare
        in
        let actual = Ir.Circuit.measured_qubits after in
        if mc_b = mc_a && List.length expected = List.length measured_b
           && expected <> actual
        then
          emit
            (Diag.errorf ~rule:"live.mismatch" ~layer
               "measured wires changed across the pass ({%s} expected, {%s} found)"
               (String.concat "," (List.map string_of_int expected))
               (String.concat "," (List.map string_of_int actual)));
        (* Clifford tableau equivalence. *)
        if consistent && n_a >= n_b && is_total_injection ~n_after:n_a map then (
          match (Tableau.of_circuit before, Tableau.of_circuit after) with
          | Some tb, Some ta ->
              counter "clifford.compared";
              let tb' = Tableau.embed tb ~n:n_a ~map in
              (* Equality modulo dephasing on the wires about to be read
                 out: diagonal phases there are unobservable, and the
                 oneq coalescer legally drops them. *)
              let measured = Ir.Circuit.measured_qubits after in
              if not (Tableau.measurement_equal tb' ta ~measured) then
                emit
                  (Diag.errorf ~rule:"clifford.mismatch" ~layer
                     "stabilizer state not preserved: %s"
                     (Option.value ~default:"tableaux differ"
                        (Tableau.first_difference ~measured tb' ta)))
          | _ -> counter "clifford.skipped")
        else counter "clifford.skipped";
        let result = List.sort Diag.compare !diags in
        if result <> [] then counter "violations";
        result
      end)
