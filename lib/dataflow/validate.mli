(** Per-pass translation validation: static semantic checks between a
    pass's input and output circuits.

    The pipeline invariant this leans on: at every pass boundary,
    program qubit [p] occupies wire [placement.(p)] of the current
    circuit (the identity before mapping, the routed placement after).
    Two checks run:

    - {b Liveness} ([live.mismatch]): the measure count is preserved
      and the measured wires correspond through the placement change.
      This is deliberately weaker than gate-level liveness equality —
      peephole passes may legally delete net-identity rotations — but
      it catches dropped/duplicated/misrouted readout statically.

    - {b Clifford equivalence} ([clifford.mismatch]): when both sides
      are recognized Clifford, the before-tableau embedded through the
      placement map must match the after-tableau under
      {!Tableau.measurement_equal} — exact state equality modulo
      diagonal phases on the wires about to be read out (which the
      oneq coalescer legally drops). Wires of the larger space outside
      the map's image must sit in |0> — exactly the ancilla discipline
      routing promises. Non-Clifford circuits and placement maps that
      are not total injections skip this check (sound: validation
      never errs on circuits it cannot model).

    No simulation is involved; cost is polynomial in qubits x gates. *)

(** [check ~layer ~before ~before_placement ~after ~after_placement]
    returns translation-validation errors attributed to [layer] (the
    pass name). Empty when the pass is semantics-preserving as far as
    the domains can see. *)
val check :
  layer:string ->
  before:Ir.Circuit.t ->
  before_placement:int array ->
  after:Ir.Circuit.t ->
  after_placement:int array ->
  Analysis.Diag.t list
