(* Branch-and-bound placement search.

   This is the original Triq.Mapper.solve search, generalized over
   Problem.t and extended with two additional *sound* pruning devices:

   - a memoized partial-assignment bound: per-qubit optimistic caps
     (precomputed once from row maxima of the score model) folded into
     suffix tables over the fixed placement order, giving an O(1)
     admissible bound on what any completion of the current partial
     assignment can still achieve;

   - dominance pruning over symmetric hardware qubits: hardware qubits
     with bitwise-identical score/readout profiles are interchangeable, so
     at each node only the first unused member of each symmetry class is
     branched on.

   Both prunings only discard subtrees that provably cannot change the
   recorded incumbent chain, so the returned placement (and objective) is
   bit-identical to the original un-pruned search. The argument relies on
   reliability values that are either bitwise equal or separated by much
   more than the 1e-12 tie tolerance — true of every calibration model in
   the tree, and pinned by the golden pipeline fixtures in
   test/test_layout.ml. *)

let log_floor = Problem.log_floor
let default_node_budget = 200_000

(* Hardware symmetry classes: rep.(h) is the smallest hardware qubit whose
   score/readout profile is bitwise identical to h's (swapping the two
   qubits is an automorphism of the score model). *)
let symmetry_reps (pr : Problem.t) =
  let n = pr.n_hardware in
  let rep = Array.init n (fun h -> h) in
  let same h1 h2 =
    pr.readout h1 = pr.readout h2
    && pr.score h1 h2 = pr.score h2 h1
    && (let ok = ref true in
        for x = 0 to n - 1 do
          if x <> h1 && x <> h2 then
            if pr.score h1 x <> pr.score h2 x || pr.score x h1 <> pr.score x h2
            then ok := false
        done;
        !ok)
  in
  for h2 = 1 to n - 1 do
    let h1 = ref 0 in
    while !h1 < h2 && rep.(h2) = h2 do
      if rep.(!h1) = !h1 && same !h1 h2 then rep.(h2) <- !h1;
      incr h1
    done
  done;
  rep

(* Optimistic per-qubit caps and suffix bounds over the placement order.

   cap_min.(q) bounds the best min-contribution qubit [q]'s own terms can
   achieve over any placement; suffix_min.(k) = min of caps over order
   positions >= k. For the product objective, each edge is attributed to
   the later-placed endpoint and bounded by the global best directed
   score; suffix_log.(k) sums those optimistic log terms for positions
   >= k. *)
type bounds = { suffix_min : float array; suffix_log : float array }

let compute_bounds (pr : Problem.t) order partners measured_set =
  let n = pr.n_program and h_n = pr.n_hardware in
  let rowmax_out = Array.make h_n neg_infinity in
  let rowmax_in = Array.make h_n neg_infinity in
  let global_max = ref neg_infinity in
  for h = 0 to h_n - 1 do
    for h' = 0 to h_n - 1 do
      if h <> h' then begin
        let s = pr.score h h' in
        if s > rowmax_out.(h) then rowmax_out.(h) <- s;
        if s > rowmax_in.(h') then rowmax_in.(h') <- s;
        if s > !global_max then global_max := s
      end
    done
  done;
  let cap_min = Array.make n infinity in
  for q = 0 to n - 1 do
    let best = ref neg_infinity in
    for h = 0 to h_n - 1 do
      let cap = ref infinity in
      List.iter
        (fun (_, oriented, _) ->
          let rm = if oriented then rowmax_out.(h) else rowmax_in.(h) in
          if rm < !cap then cap := rm)
        partners.(q);
      if measured_set.(q) then begin
        let r = pr.readout h in
        if r < !cap then cap := r
      end;
      if !cap > !best then best := !cap
    done;
    cap_min.(q) <- !best
  done;
  let pos = Array.make n 0 in
  Array.iteri (fun k q -> pos.(q) <- k) order;
  (* Log terms accounted at each order position: an edge lands on the
     later-placed endpoint; a readout on its own qubit. *)
  let log_at = Array.make n 0.0 in
  let edge_log = log (Float.max !global_max log_floor) in
  List.iter
    (fun ((a, b), count) ->
      let later = if pos.(a) > pos.(b) then pos.(a) else pos.(b) in
      log_at.(later) <- log_at.(later) +. (float_of_int count *. edge_log))
    pr.pairs;
  let max_readout = ref neg_infinity in
  for h = 0 to h_n - 1 do
    let r = pr.readout h in
    if r > !max_readout then max_readout := r
  done;
  List.iter
    (fun m ->
      log_at.(pos.(m)) <- log_at.(pos.(m)) +. log (Float.max !max_readout log_floor))
    pr.measured;
  let suffix_min = Array.make (n + 1) infinity in
  let suffix_log = Array.make (n + 1) 0.0 in
  for k = n - 1 downto 0 do
    suffix_min.(k) <- Float.min suffix_min.(k + 1) cap_min.(order.(k));
    (* Optimistic log terms are <= 0 only when scores are <= 1; clamp at 0
       so the bound stays admissible for any score model. *)
    suffix_log.(k) <- suffix_log.(k + 1) +. Float.min 0.0 log_at.(k)
  done;
  { suffix_min; suffix_log }

let cancel_poll_mask = 0x3ff

let solve ?race ?seed ?(node_budget = default_node_budget) (pr : Problem.t) :
    Report.t =
  let n_program = pr.n_program and n_hardware = pr.n_hardware in
  let objective = pr.objective in
  let partners = Problem.partners pr in
  let measured_set = Problem.measured_set pr in
  let order = Problem.order pr in
  let rep = symmetry_reps pr in
  let bounds = compute_bounds pr order partners measured_set in
  let placement = Array.make n_program (-1) in
  let used = Array.make n_hardware false in
  let nodes = ref 0 in
  let truncated = ref false in
  let best_placement = ref None in
  let best_min = ref (-1.0) in
  let best_log = ref neg_infinity in
  (* Incumbent recording rule — identical to the original search. *)
  let better cur_min cur_log =
    match objective with
    | Problem.Max_min ->
      cur_min > !best_min +. 1e-12
      || (cur_min > !best_min -. 1e-12 && cur_log > !best_log)
    | Problem.Product ->
      cur_log > !best_log || (cur_log = !best_log && cur_min > !best_min +. 1e-12)
  in
  let record pl m lp =
    best_min := m;
    best_log := lp;
    best_placement := Some pl
  in
  (* Seed the incumbent with the trivial placement (exactly like the
     original search), then offer an optional externally supplied seed —
     e.g. the greedy strategy's placement when priming portfolio runs —
     through the same recording rule. *)
  let () =
    let trivial_placement = Problem.trivial pr in
    let m, lp = Problem.evaluate pr trivial_placement in
    record trivial_placement m lp;
    match seed with
    | Some s ->
      let m, lp = Problem.evaluate pr s in
      if better m lp then record (Array.copy s) m lp
    | None -> ()
  in
  let placement_cost p h =
    let min_rel = ref 1.0 and log_prod = ref 0.0 in
    let account r count =
      if r < !min_rel then min_rel := r;
      log_prod := !log_prod +. (float_of_int count *. log (Float.max r log_floor))
    in
    List.iter
      (fun (other, oriented, count) ->
        let oh = placement.(other) in
        if oh >= 0 then
          let r = if oriented then pr.score h oh else pr.score oh h in
          account r count)
      partners.(p);
    if measured_set.(p) then account (pr.readout h) 1;
    (!min_rel, !log_prod)
  in
  (* The original viability rule, plus the O(1) suffix bound: a branch is
     kept only when an optimistic completion could still be recorded. *)
  let viable depth next_min next_log =
    match objective with
    | Problem.Max_min ->
      (!best_placement = None || next_min >= !best_min -. 1e-12)
      && Float.min next_min bounds.suffix_min.(depth) >= !best_min -. 1e-12
    | Problem.Product ->
      (!best_placement = None || next_log > !best_log)
      && next_log +. bounds.suffix_log.(depth) >= !best_log
  in
  let class_seen = Array.make n_hardware false in
  let rec search depth cur_min cur_log =
    if !truncated then ()
    else if depth = n_program then begin
      if better cur_min cur_log then record (Array.copy placement) cur_min cur_log
    end
    else begin
      let p = order.(depth) in
      (* Candidate hardware qubits, best local cost first. Dominance: only
         the first unused member of each hardware symmetry class is
         branched on — its class twins root isomorphic subtrees explored
         no earlier, which can never improve on it. *)
      Array.fill class_seen 0 n_hardware false;
      let candidates = ref [] in
      for h = 0 to n_hardware - 1 do
        if (not used.(h)) && not class_seen.(rep.(h)) then begin
          class_seen.(rep.(h)) <- true;
          let m, lp = placement_cost p h in
          if viable (depth + 1) (Float.min cur_min m) (cur_log +. lp) then
            candidates := (m, lp, h) :: !candidates
        end
      done;
      let candidates =
        let by_min (m1, l1, _) (m2, l2, _) = compare (m2, l2) (m1, l1) in
        let by_log (m1, l1, _) (m2, l2, _) = compare (l2, m2) (l1, m1) in
        List.sort
          (match objective with Problem.Max_min -> by_min | Problem.Product -> by_log)
          !candidates
      in
      List.iter
        (fun (m, lp, h) ->
          if not !truncated then begin
            incr nodes;
            if !nodes > node_budget then truncated := true
            else if
              !nodes land cancel_poll_mask = 0
              && (match race with Some r -> Race.cancelled r | None -> false)
            then truncated := true
            else begin
              let next_min = Float.min cur_min m in
              if viable (depth + 1) next_min (cur_log +. lp) then begin
                placement.(p) <- h;
                used.(h) <- true;
                search (depth + 1) next_min (cur_log +. lp);
                used.(h) <- false;
                placement.(p) <- -1
              end
            end
          end)
        candidates
    end
  in
  search 0 1.0 0.0;
  let pl =
    match !best_placement with Some pl -> pl | None -> Problem.trivial pr
  in
  {
    Report.strategy = "bb";
    placement = pl;
    objective = !best_min;
    log_product = !best_log;
    proven_optimal = not !truncated;
    work = { Report.no_work with search_nodes = !nodes };
    cache = Report.Bypass;
  }
