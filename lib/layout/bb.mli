(** Branch-and-bound placement: the paper's max-min search (Section 4.3)
    rebuilt with memoized partial-assignment bounds and dominance pruning
    over symmetric hardware qubits.

    Both added prunings are conservative: they only discard subtrees that
    provably cannot change the recorded incumbent, so results are
    bit-identical to the original [Triq.Mapper.solve] search (pinned by
    the golden pipeline fixtures). *)

val default_node_budget : int

(** [solve ?race ?seed ?node_budget problem] searches for the placement
    optimizing [problem.objective]. [seed] offers an extra starting
    incumbent (e.g. the greedy strategy's placement) through the normal
    recording rule; [race] enables cooperative cancellation polling when
    racing in a portfolio. Default budget: 200_000 nodes. *)
val solve :
  ?race:Race.t -> ?seed:int array -> ?node_budget:int -> Problem.t -> Report.t
