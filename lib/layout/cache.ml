(* The layout cache, modeled on Triq.Reliability's calibration-keyed
   matrix cache: process-wide, mutex-guarded, bounded LRU, with
   observability counters and structural verification on every hit.

   Entries are keyed by (scope string, canonical-form hash) and verified
   against (token physical identity, scope, canonical form). The token is
   the score model the placement was solved under — callers pass their
   reliability matrix; [==] is the right equality because the reliability
   layer's own cache returns the identical matrix object for the same
   (machine, day, noise-awareness), and structurally different models
   never share one. Placements are stored in canonical labels, so a hit
   from a relabeled circuit is translated through its own permutation. *)

type 'tok entry = {
  token : 'tok;
  scope : string;
  form : Canon.form;
  canonical_placement : int array;  (* canonical program qubit -> hardware *)
  strategy : string;
  proven_optimal : bool;
  mutable last_use : int;
}

type 'tok t = {
  capacity : int;
  table : (string * int, 'tok entry list ref) Hashtbl.t;
  mutable size : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

let obs_hits = Obs.Metrics.counter "layout.cache.hits"
let obs_misses = Obs.Metrics.counter "layout.cache.misses"
let obs_evictions = Obs.Metrics.counter "layout.cache.evictions"

let create ?(capacity = 512) () =
  if capacity <= 0 then invalid_arg "Layout.Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    size = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    mutex = Mutex.create ();
  }

let lookup t ~token ~scope (canon : Canon.t) =
  Mutex.protect t.mutex (fun () ->
      t.clock <- t.clock + 1;
      let found =
        match Hashtbl.find_opt t.table (scope, canon.Canon.hash) with
        | None -> None
        | Some bucket ->
          List.find_opt
            (fun e ->
              e.token == token && e.scope = scope
              && Canon.equal_form e.form canon.Canon.form)
            !bucket
      in
      match found with
      | Some e ->
        e.last_use <- t.clock;
        t.hits <- t.hits + 1;
        Obs.Metrics.incr obs_hits;
        let placement =
          Array.init canon.Canon.form.Canon.n (fun p ->
              e.canonical_placement.(canon.Canon.perm.(p)))
        in
        Some (placement, e.strategy, e.proven_optimal)
      | None ->
        t.misses <- t.misses + 1;
        Obs.Metrics.incr obs_misses;
        None)

let evict_lru t =
  (* O(size) scan; eviction is rare and the cache is small. *)
  let victim = ref None in
  Hashtbl.iter
    (fun key bucket ->
      List.iter
        (fun e ->
          match !victim with
          | Some (_, v) when v.last_use <= e.last_use -> ()
          | _ -> victim := Some (key, e))
        !bucket)
    t.table;
  match !victim with
  | None -> ()
  | Some (key, e) ->
    let bucket = Hashtbl.find t.table key in
    bucket := List.filter (fun e' -> not (e' == e)) !bucket;
    if !bucket = [] then Hashtbl.remove t.table key;
    t.size <- t.size - 1;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr obs_evictions

let store t ~token ~scope (canon : Canon.t) ~strategy ~proven_optimal placement =
  let n = canon.Canon.form.Canon.n in
  if Array.length placement <> n then
    invalid_arg "Layout.Cache.store: placement/canon size mismatch";
  let canonical_placement = Array.make n (-1) in
  Array.iteri (fun p h -> canonical_placement.(canon.Canon.perm.(p)) <- h) placement;
  Mutex.protect t.mutex (fun () ->
      t.clock <- t.clock + 1;
      let key = (scope, canon.Canon.hash) in
      let bucket =
        match Hashtbl.find_opt t.table key with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace t.table key b;
          b
      in
      let already =
        List.exists
          (fun e ->
            e.token == token && e.scope = scope
            && Canon.equal_form e.form canon.Canon.form)
          !bucket
      in
      if not already then begin
        if t.size >= t.capacity then evict_lru t;
        bucket :=
          {
            token;
            scope;
            form = canon.Canon.form;
            canonical_placement;
            strategy;
            proven_optimal;
            last_use = t.clock;
          }
          :: !bucket;
        t.size <- t.size + 1
      end)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Obs.Metrics.incr obs_evictions ~by:t.size;
      Hashtbl.reset t.table;
      t.size <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats t =
  Mutex.protect t.mutex (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions; size = t.size })
