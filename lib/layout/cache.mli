(** The layout cache: O(1) placement reuse for repeated traffic, modeled
    on [Triq.Reliability]'s calibration-keyed matrix cache (bounded LRU,
    mutex-guarded, observability counters, verified hits).

    Keys combine a [scope] string (strategy/objective/budget/machine/day —
    anything that changes the answer), a ['tok] score-model token compared
    by *physical identity* (callers pass their reliability matrix; the
    reliability layer's own cache guarantees one object per distinct
    model), and the circuit's canonical interaction-graph {!Canon.t}.
    Hits verify structural equality of the stored canonical form, so
    canonicalization incompleteness can only reduce the hit rate, never
    correctness. Stored placements live in canonical labels and are
    translated through the querying circuit's permutation on the way out,
    so isomorphic relabelings share one entry.

    Counters: [layout.cache.hits] / [.misses] / [.evictions]. *)

type 'tok t

val create : ?capacity:int -> unit -> 'tok t

(** [lookup t ~token ~scope canon] returns
    [(placement, strategy, proven_optimal)] translated into the querying
    circuit's labels, or [None]. *)
val lookup :
  'tok t -> token:'tok -> scope:string -> Canon.t -> (int array * string * bool) option

(** [store t ~token ~scope canon ~strategy ~proven_optimal placement]
    inserts (no-op if an equivalent entry exists), evicting the least
    recently used entry at capacity. *)
val store :
  'tok t ->
  token:'tok ->
  scope:string ->
  Canon.t ->
  strategy:string ->
  proven_optimal:bool ->
  int array ->
  unit

val clear : 'tok t -> unit

type stats = { hits : int; misses : int; evictions : int; size : int }

val stats : 'tok t -> stats
