(* Canonical forms of program interaction graphs.

   The cache must recognize that two circuits whose interaction
   multigraphs differ only by a program-qubit relabeling are the same
   placement problem. We canonicalize the directed multigraph (edge
   orientation matters: scores are directed) with Weisfeiler-Leman color
   refinement plus individualization on ties, bounded by a refinement
   budget; when the budget trips (pathologically symmetric graphs) the
   tie-break falls back to original qubit indices.

   Correctness never depends on the canonicalization being complete: a
   lookup verifies *structural equality of the stored canonical form*, so
   an imperfect canon can only cost cache hits, never produce wrong
   ones. *)

type form = {
  n : int;
  edges : (int * int * int) array;  (* (from, to, count) in canonical labels *)
  measured : bool array;
}

type t = { form : form; perm : int array; hash : int }

let equal_form (a : form) (b : form) =
  a.n = b.n && a.edges = b.edges && a.measured = b.measured

(* One refinement round: recolor by (color, sorted out-profile, sorted
   in-profile, individualization mark), ranking distinct signatures in
   sorted order so color ids are isomorphism-invariant. Returns the new
   coloring and its distinct-color count. *)
let refine_once n out_adj in_adj marks colors =
  let signature q =
    let profile adj =
      List.sort compare (List.map (fun (o, c) -> (colors.(o), c)) adj.(q))
    in
    (colors.(q), marks.(q), profile out_adj, profile in_adj)
  in
  let sigs = Array.init n signature in
  let distinct = List.sort_uniq compare (Array.to_list sigs) in
  let rank = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace rank s i) distinct;
  (Array.map (fun s -> Hashtbl.find rank s) sigs, List.length distinct)

let refine n out_adj in_adj marks colors =
  let colors = ref colors in
  let classes = ref 0 in
  let stable = ref false in
  while not !stable do
    let colors', classes' = refine_once n out_adj in_adj marks !colors in
    if classes' = !classes then stable := true;
    colors := colors';
    classes := classes'
  done;
  (!colors, !classes)

let form_of_colors ~n ~pairs ~measured_flags perm_of_colors =
  let perm = perm_of_colors in
  let edges =
    Array.of_list (List.map (fun ((a, b), c) -> (perm.(a), perm.(b), c)) pairs)
  in
  Array.sort compare edges;
  let measured = Array.make n false in
  Array.iteri (fun q m -> if m then measured.(perm.(q)) <- true) measured_flags;
  { n; edges; measured }

(* Total refinement budget per canonicalization; beyond it we stop
   branching and break remaining ties by original qubit index. *)
let refine_budget = 128

let of_interactions ~n ~pairs ~measured =
  let out_adj = Array.make n [] and in_adj = Array.make n [] in
  List.iter
    (fun ((a, b), c) ->
      out_adj.(a) <- (b, c) :: out_adj.(a);
      in_adj.(b) <- (a, c) :: in_adj.(b))
    pairs;
  let measured_flags = Array.make n false in
  List.iter (fun m -> measured_flags.(m) <- true) measured;
  let budget = ref refine_budget in
  (* Returns the minimal (form, perm) reachable from this coloring, or the
     index-tie-break fallback once the budget is exhausted. *)
  let rec canonize marks colors =
    decr budget;
    let colors, classes = refine n out_adj in_adj marks colors in
    if classes = n || !budget <= 0 then begin
      (* Discrete (or out of budget): order qubits by (color, index). *)
      let qubits = Array.init n (fun q -> q) in
      Array.sort (fun a b -> compare (colors.(a), a) (colors.(b), b)) qubits;
      let perm = Array.make n 0 in
      Array.iteri (fun label q -> perm.(q) <- label) qubits;
      (form_of_colors ~n ~pairs ~measured_flags perm, perm)
    end
    else begin
      (* Individualize each member of the first tied class; keep the
         lexicographically smallest resulting form. *)
      let target =
        let count = Hashtbl.create 8 in
        Array.iter
          (fun c ->
            Hashtbl.replace count c
              (1 + Option.value ~default:0 (Hashtbl.find_opt count c)))
          colors;
        let best = ref max_int in
        Array.iter
          (fun c -> if c < !best && Hashtbl.find count c > 1 then best := c)
          colors;
        !best
      in
      let members = ref [] in
      Array.iteri (fun q c -> if c = target then members := q :: !members) colors;
      let members = List.rev !members in
      let level = 1 + Array.fold_left max 0 marks in
      List.fold_left
        (fun best q ->
          if !budget <= 0 && best <> None then best
          else begin
            let marks' = Array.copy marks in
            marks'.(q) <- level;
            let candidate = canonize marks' colors in
            match best with
            | None -> Some candidate
            | Some (bf, _) when compare (fst candidate) bf < 0 -> Some candidate
            | Some _ -> best
          end)
        None members
      |> Option.get
    end
  in
  let form, perm = canonize (Array.make n 0) (Array.make n 0) in
  { form; perm; hash = Hashtbl.hash form }

let of_problem (pr : Problem.t) =
  of_interactions ~n:pr.Problem.n_program ~pairs:pr.Problem.pairs
    ~measured:pr.Problem.measured
