(** Canonical forms of directed program-interaction multigraphs, for the
    layout cache.

    Isomorphic relabelings of program qubits canonicalize to the same
    {!form} (up to a bounded refinement budget on pathologically symmetric
    graphs); the cache verifies structural equality of stored forms on
    every hit, so an incomplete canonicalization can only cost hit rate,
    never correctness. *)

type form = {
  n : int;
  edges : (int * int * int) array;
      (** (from, to, count) in canonical labels, sorted *)
  measured : bool array;  (** per canonical qubit *)
}

type t = {
  form : form;
  perm : int array;  (** original program qubit -> canonical label *)
  hash : int;  (** of [form]; the cache's bucket key *)
}

val equal_form : form -> form -> bool

val of_interactions :
  n:int -> pairs:((int * int) * int) list -> measured:int list -> t

val of_problem : Problem.t -> t
