type strategy = Bb | Smt | Greedy | Portfolio

let strategy_name = function
  | Bb -> "bb"
  | Smt -> "smt"
  | Greedy -> "greedy"
  | Portfolio -> "portfolio"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "bb" -> Some Bb
  | "smt" -> Some Smt
  | "greedy" -> Some Greedy
  | "portfolio" -> Some Portfolio
  | _ -> None

let strategy_names = [ "bb"; "smt"; "greedy"; "portfolio" ]

type t = { strategy : strategy; node_budget : int option; cache : bool }

let default = { strategy = Bb; node_budget = None; cache = true }

let make ?(strategy = Bb) ?node_budget ?(cache = true) () =
  { strategy; node_budget; cache }
