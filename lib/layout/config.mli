(** Layout-engine configuration: the one typed record threaded through
    [Pass.Config] and [Pipeline] (replacing the duplicated
    [mapper_nodes]/[mapper_optimal]/[node_budget] fields). *)

type strategy = Bb | Smt | Greedy | Portfolio

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option
val strategy_names : string list

type t = {
  strategy : strategy;  (** which engine the mapping pass runs *)
  node_budget : int option;
      (** engine work cap (B&B nodes / SAT decisions); [None] = engine
          default (200k nodes for B&B, unlimited for SMT) *)
  cache : bool;  (** consult/populate the process-wide layout cache *)
}

val default : t
val make : ?strategy:strategy -> ?node_budget:int -> ?cache:bool -> unit -> t
