(* Greedy degree-ordered seeder: place program qubits busiest-first, each
   on the unused hardware qubit with the best incremental
   (min, log-product) cost against already-placed neighbours (lowest
   hardware index on exact ties). Never optimal by proof, but instant —
   used standalone, and as the incumbent that primes B&B pruning in
   portfolio runs. *)

let solve (pr : Problem.t) : Report.t =
  let n_program = pr.n_program and n_hardware = pr.n_hardware in
  let partners = Problem.partners pr in
  let measured_set = Problem.measured_set pr in
  let order = Problem.order pr in
  let placement = Array.make n_program (-1) in
  let used = Array.make n_hardware false in
  let steps = ref 0 in
  let log_floor = Problem.log_floor in
  Array.iter
    (fun p ->
      let best_h = ref (-1) and best_m = ref neg_infinity and best_l = ref neg_infinity in
      for h = 0 to n_hardware - 1 do
        if not used.(h) then begin
          incr steps;
          let min_rel = ref 1.0 and log_prod = ref 0.0 in
          let account r count =
            if r < !min_rel then min_rel := r;
            log_prod :=
              !log_prod +. (float_of_int count *. log (Float.max r log_floor))
          in
          List.iter
            (fun (other, oriented, count) ->
              let oh = placement.(other) in
              if oh >= 0 then
                let r = if oriented then pr.score h oh else pr.score oh h in
                account r count)
            partners.(p);
          if measured_set.(p) then account (pr.readout h) 1;
          if compare (!min_rel, !log_prod) (!best_m, !best_l) > 0 then begin
            best_m := !min_rel;
            best_l := !log_prod;
            best_h := h
          end
        end
      done;
      placement.(p) <- !best_h;
      used.(!best_h) <- true)
    order;
  let objective, log_product = Problem.evaluate pr placement in
  {
    Report.strategy = "greedy";
    placement;
    objective;
    log_product;
    proven_optimal = false;
    work = { Report.no_work with heuristic_steps = !steps };
    cache = Report.Bypass;
  }
