(** Greedy degree-ordered placement seeder: deterministic, linear-time,
    never proven optimal. Used standalone ([--mapper greedy]) and as the
    incumbent primer for portfolio B&B runs. *)

val solve : Problem.t -> Report.t
