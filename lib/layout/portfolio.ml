(* Portfolio racing: run the greedy seeder synchronously (it is
   microseconds), then race B&B and SMT on the parallel pool, both primed
   with the greedy incumbent.

   First-finisher-wins with deterministic tie-breaking, reconciled as
   follows. B&B is the *primary* entrant: it is never cancelled, so its
   report is bit-deterministic regardless of scheduling; when it finishes
   with a proven optimum it cancels the secondaries (that is the
   wall-clock win — the race returns as soon as the primary is done and
   the others notice). Selection among reports is purely by
   (objective, proven_optimal, fixed entrant order), never by finish
   time. Why the selected placement is deterministic across -j levels and
   schedulings:

   - If B&B proves optimality (the common case), its report carries the
     optimal objective t*; any secondary — cancelled at an arbitrary
     point or not — scores <= t*, and on a tie loses proven_optimal or
     entrant order. B&B's deterministic report wins.
   - If B&B exhausts its node budget, nobody cancels anyone (only the
     primary's proven finish triggers cancellation), so SMT — exact and
     budget-free by default — always completes with t* and strictly
     outranks the truncated B&B on (objective, proven_optimal).

   The greedy report participates as the last-priority entrant and can
   only win when both engines were budget-truncated below its score. *)

let wins_counter name = Obs.Metrics.counter ("layout.portfolio.wins." ^ name)

let entrants () = [ Strategy.bb; Strategy.smt ]

let solve ?pool ?budget (pr : Problem.t) : Report.t =
  let report, _dt =
    Obs.Span.timed
      ~attrs:[ ("strategy", Obs.Span.Str "portfolio") ]
      "layout.strategy.portfolio"
      (fun () ->
        let greedy_r =
          Strategy.greedy.Strategy.solve ~race:None ~seed:None ~budget:None pr
        in
        let race = Race.create () in
        Race.publish race greedy_r.Report.objective;
        let seed = Some greedy_r.Report.placement in
        let run (i, (s : Strategy.t)) =
          let primary = i = 0 in
          let r =
            s.Strategy.solve
              ~race:(if primary then None else Some race)
              ~seed ~budget pr
          in
          if primary && r.Report.proven_optimal then Race.cancel race;
          r
        in
        let indexed = List.mapi (fun i s -> (i, s)) (entrants ()) in
        let results =
          match pool with
          | Some p -> Parallel.Pool.map p run indexed
          | None -> Parallel.Pool.map (Parallel.Pool.default ()) run indexed
        in
        let ranked = results @ [ greedy_r ] in
        let winner =
          List.fold_left
            (fun best (r : Report.t) ->
              if
                r.Report.objective > best.Report.objective
                || (r.Report.objective = best.Report.objective
                   && r.Report.proven_optimal
                   && not best.Report.proven_optimal)
              then r
              else best)
            (List.hd ranked) (List.tl ranked)
        in
        Obs.Metrics.incr (wins_counter winner.Report.strategy);
        let work =
          List.fold_left
            (fun acc (r : Report.t) -> Report.add_work acc r.Report.work)
            Report.no_work ranked
        in
        {
          winner with
          Report.strategy = "portfolio:" ^ winner.Report.strategy;
          work;
        })
  in
  report
