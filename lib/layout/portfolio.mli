(** Portfolio racing over the registered exact strategies.

    Runs the greedy seeder synchronously, then races B&B (primary, never
    cancelled) against the incremental SMT engine on [lib/parallel], both
    primed with the greedy incumbent. The primary's proven finish cancels
    the secondaries; the returned report is selected by
    (objective, proven_optimal, fixed entrant order) — never finish time —
    which makes the selected placement deterministic across [-j] levels
    (see the argument in portfolio.ml). The report's [work] aggregates
    all entrants' effort; [strategy] is ["portfolio:<winner>"], and the
    winner increments the [layout.portfolio.wins.<name>] counter. *)

val solve : ?pool:Parallel.Pool.t -> ?budget:int -> Problem.t -> Report.t
