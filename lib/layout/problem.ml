type objective = Max_min | Product

let objective_name = function Max_min -> "max-min" | Product -> "product"

type t = {
  n_program : int;
  n_hardware : int;
  pairs : ((int * int) * int) list;
  measured : int list;
  score : int -> int -> float;
  readout : int -> float;
  objective : objective;
}

let log_floor = 1e-12

let make ?(objective = Max_min) ~n_program ~n_hardware ~pairs ~measured ~score
    ~readout () =
  if n_program <= 0 then invalid_arg "Layout.Problem.make: empty program";
  if n_program > n_hardware then
    invalid_arg "Layout.Problem.make: program does not fit on device";
  List.iter
    (fun ((a, b), count) ->
      if a < 0 || a >= n_program || b < 0 || b >= n_program || a = b || count <= 0
      then invalid_arg "Layout.Problem.make: malformed interaction pair")
    pairs;
  List.iter
    (fun m ->
      if m < 0 || m >= n_program then
        invalid_arg "Layout.Problem.make: measured qubit out of range")
    measured;
  { n_program; n_hardware; pairs; measured; score; readout; objective }

let trivial t = Array.init t.n_program (fun i -> i)

let evaluate t placement =
  let min_rel = ref 1.0 and log_prod = ref 0.0 in
  let account r count =
    if r < !min_rel then min_rel := r;
    log_prod := !log_prod +. (float_of_int count *. log (Float.max r log_floor))
  in
  List.iter
    (fun ((a, b), count) -> account (t.score placement.(a) placement.(b)) count)
    t.pairs;
  List.iter (fun m -> account (t.readout placement.(m)) 1) t.measured;
  (!min_rel, !log_prod)

(* Program qubits in decreasing connectivity order: placing the busiest
   qubits first makes pruning bite early. Identical weights and ordering
   to the original Mapper.placement_order. *)
let order t =
  let weight = Array.make t.n_program 0 in
  List.iter
    (fun ((a, b), count) ->
      weight.(a) <- weight.(a) + count + 10;
      weight.(b) <- weight.(b) + count + 10)
    t.pairs;
  List.iter (fun m -> weight.(m) <- weight.(m) + 1) t.measured;
  let order = Array.init t.n_program (fun i -> i) in
  Array.sort (fun a b -> compare (weight.(b), a) (weight.(a), b)) order;
  order

(* partners.(p) = [(other_program_qubit, oriented, count)], oriented true
   when p is the first operand of the pair. Construction order matches the
   original mapper exactly (cost accumulation order is part of the
   bit-compatibility contract). *)
let partners t =
  let partners = Array.make t.n_program [] in
  List.iter
    (fun ((a, b), count) ->
      partners.(a) <- (b, true, count) :: partners.(a);
      partners.(b) <- (a, false, count) :: partners.(b))
    t.pairs;
  partners

let measured_set t =
  let set = Array.make t.n_program false in
  List.iter (fun m -> set.(m) <- true) t.measured;
  set
