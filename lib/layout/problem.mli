(** A placement problem, abstracted over the reliability model.

    The layout engine never sees a circuit or a calibration: callers
    (normally [Triq.Placement]) lower the program's aggregated 2Q
    interaction pairs, measured qubits, and two scoring closures over
    hardware qubits into this record. Keeping the engine model-agnostic is
    what lets [lib/layout] sit below [lib/core] without a dependency
    cycle. *)

(** The optimization objective. [Max_min] is TriQ's (maximize the minimum
    reliability of any mapped operation — prunes aggressively); [Product]
    is the whole-graph reliability product of prior work, kept for the
    ablation study. *)
type objective = Max_min | Product

val objective_name : objective -> string

type t = {
  n_program : int;
  n_hardware : int;
  pairs : ((int * int) * int) list;
      (** aggregated 2Q interactions over program qubits, first-seen
          orientation, as produced by [Triq.Mapper.interactions] *)
  measured : int list;  (** program qubits that are measured *)
  score : int -> int -> float;  (** directed hardware-pair reliability *)
  readout : int -> float;  (** hardware-qubit readout reliability *)
  objective : objective;
}

(** Validates ranges and fit; raises [Invalid_argument] otherwise. *)
val make :
  ?objective:objective ->
  n_program:int ->
  n_hardware:int ->
  pairs:((int * int) * int) list ->
  measured:int list ->
  score:(int -> int -> float) ->
  readout:(int -> float) ->
  unit ->
  t

(** The identity placement [0..n_program-1]. *)
val trivial : t -> int array

(** [evaluate t placement] is the (min reliability, log-product) pair of a
    complete placement — the same accumulation order (pairs, then
    readouts) as the original [Triq.Mapper.evaluate], which strategies
    rely on for bit-identical scoring. *)
val evaluate : t -> int array -> float * float

(** Program qubits in decreasing connectivity order (busiest first). *)
val order : t -> int array

(** [partners t] maps each program qubit to its [(other, oriented, count)]
    interaction list; [oriented] is true when the qubit is the pair's
    first operand. *)
val partners : t -> (int * bool * int) list array

(** Membership array for [measured]. *)
val measured_set : t -> bool array

(** Reliabilities at or below this are clamped before taking logs. *)
val log_floor : float
