(* Shared state for portfolio racing: a monotone published lower bound on
   the achievable objective (sound for pruning in any strategy) and a
   cooperative cancellation flag. Bounds are stored as float bits so the
   whole structure is lock-free. *)

type t = { bound_bits : int64 Atomic.t; cancelled : bool Atomic.t }

let create () =
  {
    bound_bits = Atomic.make (Int64.bits_of_float neg_infinity);
    cancelled = Atomic.make false;
  }

let bound t = Int64.float_of_bits (Atomic.get t.bound_bits)

let rec publish t b =
  let cur = Atomic.get t.bound_bits in
  if b > Int64.float_of_bits cur then
    if not (Atomic.compare_and_set t.bound_bits cur (Int64.bits_of_float b)) then
      publish t b

let cancel t = Atomic.set t.cancelled true
let cancelled t = Atomic.get t.cancelled
