(** Shared state for portfolio racing.

    A race carries a monotonically increasing *achieved* objective bound
    (published by whichever strategy finds a placement scoring it — sound
    for pruning everywhere, since it never exceeds the optimum) and a
    cooperative cancellation flag that losing strategies poll.

    Determinism note: {!Portfolio.solve} only hands the cancellation side
    to *secondary* strategies, and only the primary strategy (which is
    never cancelled, and therefore deterministic) may trigger it — see the
    selection argument in [portfolio.ml]. *)

type t

val create : unit -> t

(** Best objective value proven achievable so far ([neg_infinity] if none). *)
val bound : t -> float

(** Monotone max update (no-op if below the current bound). *)
val publish : t -> float -> unit

val cancel : t -> unit
val cancelled : t -> bool
