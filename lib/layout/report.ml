type work = { search_nodes : int; sat_decisions : int; heuristic_steps : int }

let no_work = { search_nodes = 0; sat_decisions = 0; heuristic_steps = 0 }
let work_total w = w.search_nodes + w.sat_decisions + w.heuristic_steps

let add_work a b =
  {
    search_nodes = a.search_nodes + b.search_nodes;
    sat_decisions = a.sat_decisions + b.sat_decisions;
    heuristic_steps = a.heuristic_steps + b.heuristic_steps;
  }

type cache_status = Hit | Miss | Bypass

let cache_status_name = function Hit -> "hit" | Miss -> "miss" | Bypass -> "bypass"

type t = {
  strategy : string;
  placement : int array;
  objective : float;
  log_product : float;
  proven_optimal : bool;
  work : work;
  cache : cache_status;
}

(* The legacy Mapper.result conflated SAT decisions and search nodes in one
   [nodes_explored] field; the compat wrappers keep that shape by collapsing
   the structured work record back down. *)
let legacy_nodes t = work_total t.work
