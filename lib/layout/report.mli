(** The structured result every layout strategy returns.

    The legacy [Triq.Mapper.result] conflated B&B search nodes and SAT
    decisions into a single [nodes_explored] integer; [work] keeps the
    engines' effort metrics in separate, honestly-named fields, and the
    compat wrappers collapse them back via {!legacy_nodes}. *)

type work = {
  search_nodes : int;  (** B&B assignments considered *)
  sat_decisions : int;  (** SAT branching decisions across all thresholds *)
  heuristic_steps : int;  (** greedy candidate scans *)
}

val no_work : work
val work_total : work -> int
val add_work : work -> work -> work

(** How the layout cache participated in producing this report:
    [Hit] (placement served from cache), [Miss] (solved, then stored), or
    [Bypass] (cache disabled for this solve). *)
type cache_status = Hit | Miss | Bypass

val cache_status_name : cache_status -> string

type t = {
  strategy : string;  (** e.g. ["bb"], ["smt"], ["portfolio:bb"] *)
  placement : int array;  (** program qubit -> hardware qubit *)
  objective : float;  (** min reliability over mapped 2Q ops and readouts *)
  log_product : float;  (** log of the reliability product *)
  proven_optimal : bool;  (** search space exhausted (not truncated) *)
  work : work;
  cache : cache_status;
}

(** Total work in the legacy single-integer shape. *)
val legacy_nodes : t -> int
