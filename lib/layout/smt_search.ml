(* Incremental SMT placement (the paper's constraint-based formulation).

   The max-min objective is realized as a binary search for the highest
   satisfiable reliability threshold over the sorted distinct score
   values, exactly like the original Triq.Mapper_smt — but instead of
   re-encoding the whole formula per threshold, the structural
   (assignment-shaped) clauses are asserted once and the
   forbidden-placement clauses are bucketed into per-threshold *bands*
   managed with Solver.push/pop assertion scopes. Moving the threshold is
   then a stack adjustment, not an O(pairs * H^2) re-encoding.

   Determinism: the solver's DPLL search (static decision order, unit
   propagation to closure) depends only on the clause *set*, and the band
   stack for threshold index i always holds bands 0..i in ascending
   order, so every threshold's model — and decision count — is identical
   to the from-scratch encoding the original used. *)

module Solver = Smt.Solver

let solve ?race ?seed ?decision_budget (pr : Problem.t) : Report.t =
  let n_program = pr.n_program and n_hardware = pr.n_hardware in
  let var p h = (p * n_hardware) + h + 1 in
  let total_decisions = ref 0 in
  (* Candidate thresholds: every reliability value that can constrain the
     minimum. Sorted ascending; binary search for the largest SAT one. *)
  let candidates =
    let scores = ref [] in
    for h1 = 0 to n_hardware - 1 do
      for h2 = 0 to n_hardware - 1 do
        if h1 <> h2 then scores := pr.score h1 h2 :: !scores
      done
    done;
    if pr.measured <> [] then
      for h = 0 to n_hardware - 1 do
        scores := pr.readout h :: !scores
      done;
    Array.of_list (List.sort_uniq Float.compare !scores)
  in
  let n_cand = Array.length candidates in
  (* Index of the band a clause with score [s] belongs to: the smallest
     candidate index whose threshold forbids it (thresholds forbid scores
     strictly below themselves). Clauses at the maximum score are never
     forbidden (band index n_cand, dropped). *)
  let band_of s =
    let lo = ref 0 and hi = ref n_cand in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi) / 2 in
      if candidates.(mid) > s then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let bands = Array.make (n_cand + 1) [] in
  let add_band s clause =
    let i = band_of s in
    if i < n_cand then bands.(i) <- clause :: bands.(i)
  in
  List.iter
    (fun ((a, b), _count) ->
      for h1 = 0 to n_hardware - 1 do
        for h2 = 0 to n_hardware - 1 do
          if h1 <> h2 then
            add_band (pr.score h1 h2) [ -var a h1; -var b h2 ]
        done
      done)
    pr.pairs;
  List.iter
    (fun m ->
      for h = 0 to n_hardware - 1 do
        add_band (pr.readout h) [ -var m h ]
      done)
    pr.measured;
  (* Per-band clause order is part of neither determinism argument nor the
     formula semantics, but keep insertion order for tidy stores. *)
  Array.iteri (fun i clauses -> bands.(i) <- List.rev clauses) bands;
  let solver = Solver.create (n_program * n_hardware) in
  (* Structure: total assignment, injective — asserted once, level 0. *)
  for p = 0 to n_program - 1 do
    Solver.exactly_one solver (List.init n_hardware (fun h -> var p h))
  done;
  for h = 0 to n_hardware - 1 do
    Solver.at_most_one solver (List.init n_program (fun p -> var p h))
  done;
  (* The assertion stack holds bands [0..depth-1]; adjusting to threshold
     index i is pop/push to depth i+1 (ascending, canonical order). *)
  let set_depth target =
    while Solver.n_scopes solver > target do
      Solver.pop solver
    done;
    while Solver.n_scopes solver < target do
      let i = Solver.n_scopes solver in
      Solver.push solver;
      List.iter (fun clause -> Solver.add_clause solver clause) bands.(i)
    done
  in
  (* satisfiable at threshold index i (-1 = structural constraints only,
     always SAT for fitting programs). *)
  let satisfiable i =
    set_depth (i + 1);
    let outcome = Solver.solve solver in
    total_decisions := !total_decisions + Solver.decisions solver;
    match outcome with
    | Solver.Sat model ->
      let placement =
        Array.init n_program (fun p ->
            let rec find h =
              if h >= n_hardware then
                invalid_arg "Layout.Smt_search: model assigns no hardware qubit"
              else if model.(var p h) then h
              else find (h + 1)
            in
            find 0)
      in
      Some placement
    | Solver.Unsat -> None
  in
  let exhausted () =
    (match decision_budget with
    | Some b -> !total_decisions > b
    | None -> false)
    || match race with Some r -> Race.cancelled r | None -> false
  in
  (* Seed: an externally supplied placement (e.g. greedy's) raises the
     binary search's SAT floor to its achieved objective without solving
     anything below it. Without a seed, start from the structural-only
     solve exactly like the original. *)
  let best_placement, lo0 =
    match seed with
    | Some s ->
      let m, _ = Problem.evaluate pr s in
      let i = ref (-1) in
      Array.iteri (fun k c -> if c <= m then i := k) candidates;
      (Array.copy s, !i)
    | None -> (
      match satisfiable (-1) with
      | Some placement -> (placement, -1)
      | None -> invalid_arg "Layout.Smt_search: unsatisfiable structure constraints")
  in
  let best_placement = ref best_placement in
  let lo = ref lo0 and hi = ref n_cand in
  let truncated = ref false in
  while (not !truncated) && !hi - !lo > 1 do
    if exhausted () then truncated := true
    else begin
      let mid = (!lo + !hi) / 2 in
      match satisfiable mid with
      | Some placement ->
        best_placement := placement;
        lo := mid
      | None -> hi := mid
    end
  done;
  (match race with
  | Some r ->
    if not !truncated then
      let m, _ = Problem.evaluate pr !best_placement in
      Race.publish r m
  | None -> ());
  let objective, log_product = Problem.evaluate pr !best_placement in
  {
    Report.strategy = "smt";
    placement = !best_placement;
    objective;
    log_product;
    proven_optimal = not !truncated;
    work = { Report.no_work with sat_decisions = !total_decisions };
    cache = Report.Bypass;
  }
