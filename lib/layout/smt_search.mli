(** Incremental SMT placement: the descending-threshold realization of the
    max-min objective, with forbidden-placement clauses bucketed into
    per-threshold bands managed via {!Smt.Solver.push}/{!Smt.Solver.pop}
    so the structural clauses are encoded exactly once.

    Results (placement, objective, decision counts) are identical to the
    original from-scratch-per-threshold [Triq.Mapper_smt.solve]: the DPLL
    search depends only on the clause set, which is unchanged. *)

(** [solve ?race ?seed ?decision_budget problem] maximizes the minimum
    reliability threshold. [seed] (e.g. the greedy placement) raises the
    search's SAT floor to its achieved objective, skipping all thresholds
    at or below it. [decision_budget] caps total SAT decisions; exceeding
    it returns the best placement so far with [proven_optimal = false].
    The product objective is not encodable as a threshold search; the
    problem's objective field is ignored and max-min is optimized. *)
val solve :
  ?race:Race.t -> ?seed:int array -> ?decision_budget:int -> Problem.t -> Report.t
