type t = {
  name : string;
  about : string;
  solve :
    race:Race.t option ->
    seed:int array option ->
    budget:int option ->
    Problem.t ->
    Report.t;
}

let spanned name solve ~race ~seed ~budget pr =
  let report, _dt =
    Obs.Span.timed
      ~attrs:[ ("strategy", Obs.Span.Str name) ]
      ("layout.strategy." ^ name)
      (fun () -> solve ~race ~seed ~budget pr)
  in
  report

let make ~name ~about solve = { name; about; solve = spanned name solve }

let bb =
  make ~name:"bb"
    ~about:
      "branch-and-bound max-min search with memoized bounds and dominance pruning"
    (fun ~race ~seed ~budget pr -> Bb.solve ?race ?seed ?node_budget:budget pr)

let smt =
  make ~name:"smt"
    ~about:"incremental SMT descending-threshold search (push/pop clause reuse)"
    (fun ~race ~seed ~budget pr ->
      Smt_search.solve ?race ?seed ?decision_budget:budget pr)

let greedy =
  make ~name:"greedy" ~about:"degree-ordered greedy seeder (instant, inexact)"
    (fun ~race:_ ~seed:_ ~budget:_ pr -> Greedy.solve pr)

let builtins = [ bb; smt; greedy ]
let registry : t list ref = ref []

let register s =
  if List.exists (fun r -> r.name = s.name) (builtins @ !registry) then
    invalid_arg ("Layout.Strategy.register: duplicate strategy " ^ s.name);
  registry := !registry @ [ s ]

let all () = builtins @ !registry
let find name = List.find_opt (fun s -> s.name = name) (all ())
let names () = List.map (fun s -> s.name) (all ())
