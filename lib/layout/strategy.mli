(** First-class layout strategies.

    A strategy is a named solver over {!Problem.t} returning a structured
    {!Report.t}. The three built-ins ([bb], [smt], [greedy]) are always
    registered; {!register} adds external ones (see docs/EXTENDING.md).
    Every strategy's solve runs inside a [layout.strategy.<name>]
    observability span. *)

type t = {
  name : string;
  about : string;
  solve :
    race:Race.t option ->
    seed:int array option ->
    budget:int option ->
    Problem.t ->
    Report.t;
      (** [race] carries portfolio cancellation/bounds (None outside
          races); [seed] offers a starting incumbent; [budget] caps the
          engine's native work unit (B&B nodes, SAT decisions). *)
}

(** Wraps [solve] in the strategy's observability span. *)
val make :
  name:string ->
  about:string ->
  (race:Race.t option ->
  seed:int array option ->
  budget:int option ->
  Problem.t ->
  Report.t) ->
  t

val bb : t
val smt : t
val greedy : t

(** [register s] adds a strategy to the catalog. Raises
    [Invalid_argument] on duplicate names. *)
val register : t -> unit

val all : unit -> t list
val find : string -> t option
val names : unit -> string list
