let require_non_empty name l =
  if l = [] then invalid_arg (name ^ ": empty list")

let sum l =
  require_non_empty "Stats.sum" l;
  List.fold_left ( +. ) 0.0 l

let mean l =
  require_non_empty "Stats.mean" l;
  sum l /. float_of_int (List.length l)

let geomean l =
  require_non_empty "Stats.geomean" l;
  let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 l in
  exp (log_sum /. float_of_int (List.length l))

let sorted l = List.sort Float.compare l

let median l =
  require_non_empty "Stats.median" l;
  let a = Array.of_list (sorted l) in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let stddev l =
  require_non_empty "Stats.stddev" l;
  let m = mean l in
  let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) l) in
  sqrt var

let minimum l =
  require_non_empty "Stats.minimum" l;
  List.fold_left Float.min Float.infinity l

let maximum l =
  require_non_empty "Stats.maximum" l;
  List.fold_left Float.max Float.neg_infinity l

let geomean_ratio_opt pairs =
  let ratios =
    List.filter_map (fun (a, b) -> if b = 0.0 then None else Some (a /. b)) pairs
  in
  if ratios = [] then None else Some (geomean ratios)

let geomean_ratio pairs =
  match geomean_ratio_opt pairs with
  | Some r -> r
  | None ->
    invalid_arg "Stats.geomean_ratio: no pairs with a non-zero denominator"

let percentile p l =
  require_non_empty "Stats.percentile" l;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list (sorted l) in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let correlation pairs =
  if List.length pairs < 2 then invalid_arg "Stats.correlation: need two pairs";
  let xs = List.map fst pairs and ys = List.map snd pairs in
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0.0 pairs
  in
  let sx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs) in
  let sy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys) in
  if sx < 1e-12 || sy < 1e-12 then
    invalid_arg "Stats.correlation: zero variance";
  cov /. (sx *. sy)
