(** Summary statistics used by the experiment harness (geomean improvement
    factors, distribution summaries). All functions raise
    [Invalid_argument] on an empty input list. *)

val mean : float list -> float
val geomean : float list -> float
val median : float list -> float
val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float

(** [geomean_ratio pairs] is the geometric mean of [a /. b] over pairs
    [(a, b)]; pairs whose denominator is zero are dropped. Raises
    [Invalid_argument] if every pair is dropped (it used to return [nan],
    which propagated silently into report tables). Used for "geomean
    improvement over baseline" rows. *)
val geomean_ratio : (float * float) list -> float

(** Total variant of {!geomean_ratio}: [None] instead of raising when no
    pair has a non-zero denominator. *)
val geomean_ratio_opt : (float * float) list -> float option

(** [percentile p l] is the [p]-th percentile (0 <= p <= 100) using linear
    interpolation between closest ranks. *)
val percentile : float -> float list -> float

(** [correlation pairs] is the Pearson correlation coefficient of [(x, y)]
    pairs; raises [Invalid_argument] with fewer than two pairs or zero
    variance in either coordinate. *)
val correlation : (float * float) list -> float
