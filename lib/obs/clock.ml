let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let elapsed_ns ~since =
  let d = Int64.sub (now_ns ()) since in
  if Int64.compare d 0L < 0 then 0L else d

let ns_to_s ns = Int64.to_float ns /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3
