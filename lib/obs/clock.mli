(** The observability clock: wall-clock nanoseconds from a single source
    shared by spans, the pass driver, and the pool instrumentation, so
    durations from different layers are directly comparable.

    OCaml's portable stdlib has no monotonic clock, so this wraps
    [Unix.gettimeofday] (the only extra dependency the library carries).
    Resolution is a microsecond and the clock can in principle step
    backwards under NTP adjustment; {!elapsed_ns} clamps at zero so a
    step never produces a negative duration. *)

(** Current time in integer nanoseconds since the Unix epoch. *)
val now_ns : unit -> int64

(** [elapsed_ns ~since] is [now_ns () - since], clamped at [0L]. *)
val elapsed_ns : since:int64 -> int64

(** Nanoseconds to seconds ([Int64.to_float ns /. 1e9]). *)
val ns_to_s : int64 -> float

(** Nanoseconds to microseconds — the unit of Chrome [trace_event]
    timestamps. *)
val ns_to_us : int64 -> float
