type format = [ `Chrome | `Jsonl | `Text ]

let format_of_string = function
  | "chrome" -> Some `Chrome
  | "jsonl" -> Some `Jsonl
  | "text" -> Some `Text
  | _ -> None

let format_to_string = function
  | `Chrome -> "chrome"
  | `Jsonl -> "jsonl"
  | `Text -> "text"

let attr_json : Span.attr -> Json.t = function
  | Span.Str s -> Json.Str s
  | Span.Int i -> Json.Int i
  | Span.Float f -> Json.Float f
  | Span.Bool b -> Json.Bool b

let attrs_json attrs = Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) attrs)

let attr_text : Span.attr -> string = function
  | Span.Str s -> s
  | Span.Int i -> string_of_int i
  | Span.Float f -> Printf.sprintf "%g" f
  | Span.Bool b -> string_of_bool b

let text_tree spans =
  let children = Hashtbl.create 64 in
  let ids = Hashtbl.create 64 in
  List.iter (fun (s : Span.t) -> Hashtbl.replace ids s.id ()) spans;
  (* [spans] comes from [Span.collected] already sorted by start time, so
     per-parent child lists stay in start order. Spans whose parent is
     missing from the list (e.g. after a [reset]) root at top level. *)
  let roots =
    List.filter
      (fun (s : Span.t) ->
        match s.parent with
        | Some p when Hashtbl.mem ids p ->
          Hashtbl.add children p s;
          false
        | _ -> true)
      spans
  in
  let b = Buffer.create 1024 in
  let rec emit depth (s : Span.t) =
    Buffer.add_string b (String.make (2 * depth) ' ');
    Buffer.add_string b s.name;
    Buffer.add_string b (Printf.sprintf "  %.3f ms" (Clock.ns_to_s s.dur_ns *. 1e3));
    if s.domain <> 0 then Buffer.add_string b (Printf.sprintf "  [d%d]" s.domain);
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %s=%s" k (attr_text v)))
      s.attrs;
    Buffer.add_char b '\n';
    List.iter (emit (depth + 1)) (List.rev (Hashtbl.find_all children s.id))
  in
  List.iter (emit 0) roots;
  Buffer.contents b

let span_json (s : Span.t) =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("parent", (match s.parent with None -> Json.Null | Some p -> Json.Int p));
      ("name", Json.Str s.name);
      ("domain", Json.Int s.domain);
      ("start_ns", Json.Str (Int64.to_string s.start_ns));
      ("dur_ns", Json.Str (Int64.to_string s.dur_ns));
      ("attrs", attrs_json s.attrs);
    ]

let jsonl spans =
  let b = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string b (Json.to_string (span_json s));
      Buffer.add_char b '\n')
    spans;
  Buffer.contents b

let chrome spans =
  let t0 =
    List.fold_left
      (fun acc (s : Span.t) -> if Int64.compare s.start_ns acc < 0 then s.start_ns else acc)
      (match spans with [] -> 0L | (s : Span.t) :: _ -> s.start_ns)
      spans
  in
  let event (s : Span.t) =
    Json.Obj
      [
        ("name", Json.Str s.name);
        ("cat", Json.Str (match String.index_opt s.name '.' with
                          | Some i -> String.sub s.name 0 i
                          | None -> s.name));
        ("ph", Json.Str "X");
        ("ts", Json.Float (Clock.ns_to_us (Int64.sub s.start_ns t0)));
        ("dur", Json.Float (Clock.ns_to_us s.dur_ns));
        ("pid", Json.Int 0);
        ("tid", Json.Int s.domain);
        ("args", attrs_json s.attrs);
      ]
  in
  Json.to_string ~pretty:true
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map event spans));
         ("displayTimeUnit", Json.Str "ms");
       ])

let render fmt spans =
  match fmt with
  | `Chrome -> chrome spans
  | `Jsonl -> jsonl spans
  | `Text -> text_tree spans

let bucket_label upper =
  if upper = Float.infinity then "+inf" else Printf.sprintf "%g" upper

let metrics_text metrics =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match (v : Metrics.value) with
      | Metrics.Counter n -> Buffer.add_string b (Printf.sprintf "%s counter %d\n" name n)
      | Metrics.Gauge g -> Buffer.add_string b (Printf.sprintf "%s gauge %g\n" name g)
      | Metrics.Histogram { count; sum; buckets } ->
        Buffer.add_string b (Printf.sprintf "%s histogram count=%d sum=%g\n" name count sum);
        List.iter
          (fun (upper, n) ->
            Buffer.add_string b (Printf.sprintf "  le %s: %d\n" (bucket_label upper) n))
          buckets)
    metrics;
  Buffer.contents b

let metrics_json metrics =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let body =
           match (v : Metrics.value) with
           | Metrics.Counter n -> Json.Int n
           | Metrics.Gauge g -> Json.Float g
           | Metrics.Histogram { count; sum; buckets } ->
             Json.Obj
               [
                 ("count", Json.Int count);
                 ("sum", Json.Float sum);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (upper, n) ->
                          Json.List
                            [
                              (if upper = Float.infinity then Json.Str "+inf"
                               else Json.Float upper);
                              Json.Int n;
                            ])
                        buckets) );
               ]
         in
         (name, body))
       metrics)
