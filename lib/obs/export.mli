(** Render collected spans and metric snapshots — pure functions over
    {!Span.t} lists and {!Metrics.dump} snapshots, so they are trivially
    testable and never touch the live sink.

    Three span formats:
    - {!text_tree} — indented human-readable tree for terminals;
    - {!jsonl} — one JSON object per span per line, for [jq]/scripts;
    - {!chrome} — a single Chrome [trace_event] JSON document
      ([{"traceEvents": [...]}], complete ["X"] events, microsecond
      timestamps, [tid] = domain id) that loads directly in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

type format = [ `Chrome | `Jsonl | `Text ]

(** Parse a [--trace-format] value: ["chrome"], ["jsonl"], ["text"]. *)
val format_of_string : string -> format option

val format_to_string : format -> string

(** {1 Span exporters} *)

(** Indented tree (children nested under parents, siblings in start
    order); durations in milliseconds. Orphan spans (parent not in the
    list) print at top level. *)
val text_tree : Span.t list -> string

(** One compact JSON object per line:
    [{"id","parent","name","domain","start_ns","dur_ns","attrs"}]. *)
val jsonl : Span.t list -> string

(** Chrome [trace_event] document; timestamps are microseconds relative
    to the earliest span so traces open near [t=0]. *)
val chrome : Span.t list -> string

(** [render fmt spans] dispatches on [fmt]. *)
val render : format -> Span.t list -> string

(** {1 Metrics exporters} *)

(** Deterministic plain text, one metric per line ([name TYPE value]);
    histograms show [count], [sum], and non-empty buckets. *)
val metrics_text : (string * Metrics.value) list -> string

(** JSON object keyed by metric name; histograms become
    [{"count","sum","buckets":[[upper,count],...]}] with the open-ended
    bucket's bound rendered as the string ["+inf"]. *)
val metrics_json : (string * Metrics.value) list -> Json.t
