type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest rendering that parses back to the same float; integral values
   print without an exponent or trailing dot so they stay valid JSON. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string b (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Raw s -> Buffer.add_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj members ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b (if pretty then "\": " else "\":");
          go (depth + 1) x)
        members;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b
