(** A minimal JSON {e builder} (no parser) shared by the trace exporters,
    the metrics dump, the CLI envelope ({!Output}) and the bench harness.

    Values serialize deterministically: object members print in the order
    given, floats use a shortest-faithful rendering, and non-finite
    floats become [null] (JSON has no representation for them). [Raw]
    splices a pre-rendered JSON fragment verbatim — the bridge for
    producers that already emit JSON text (e.g.
    [Analysis.Diag.to_json], [Proptest.Oracle.report_json]); the caller
    is responsible for its validity. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (** pre-rendered JSON, spliced verbatim *)

(** [to_string ?pretty v] serializes [v]; [pretty] (default false)
    pretty-prints with 2-space indentation, otherwise the output is
    compact single-line JSON. *)
val to_string : ?pretty:bool -> t -> string

(** JSON string-escape (quotes, backslash, control characters); returns
    the escaped body {e without} surrounding quotes. *)
val escape : string -> string
