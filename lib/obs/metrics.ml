type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_buckets : int Atomic.t array;
}

let n_buckets = 64

type entry = C of counter | G of gauge | H of histogram

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let type_clash name wanted =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered as a different type (%s requested)"
       name wanted)

let register name wanted existing build =
  Mutex.lock registry_mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some e -> existing e
    | None ->
      let m = build () in
      Hashtbl.add registry name m;
      existing m
  in
  Mutex.unlock registry_mutex;
  match r with Some m -> m | None -> type_clash name wanted

let counter name =
  register name "counter"
    (function C c -> Some c | _ -> None)
    (fun () -> C (Atomic.make 0))

let gauge name =
  register name "gauge"
    (function G g -> Some g | _ -> None)
    (fun () -> G (Atomic.make 0.0))

let histogram name =
  register name "histogram"
    (function H h -> Some h | _ -> None)
    (fun () ->
      H
        {
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
          h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
        })

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let set g v = Atomic.set g v

let bucket_index v =
  if Float.is_nan v || v <= 1.0 then 0
  else if v = Float.infinity then n_buckets - 1
  else begin
    (* v = m * 2^e, 0.5 <= m < 1.  v in (2^(i-1), 2^i] maps to bucket i:
       an exact power 2^i has m = 0.5, e = i + 1. *)
    let m, e = Float.frexp v in
    let i = if m = 0.5 then e - 1 else e in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

let bucket_upper i =
  if i >= n_buckets - 1 then Float.infinity else Float.ldexp 1.0 i

let atomic_add_float a v =
  let rec go () =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. v)) then go ()
  in
  go ()

let observe h v =
  ignore (Atomic.fetch_and_add h.h_count 1);
  atomic_add_float h.h_sum v;
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

let read_entry = function
  | C c -> Counter (Atomic.get c)
  | G g -> Gauge (Atomic.get g)
  | H h ->
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      let n = Atomic.get h.h_buckets.(i) in
      if n > 0 then buckets := (bucket_upper i, n) :: !buckets
    done;
    Histogram
      { count = Atomic.get h.h_count; sum = Atomic.get h.h_sum; buckets = !buckets }

let dump () =
  Mutex.lock registry_mutex;
  let entries = Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  entries
  |> List.map (fun (name, e) -> (name, read_entry e))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ e ->
      match e with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.0
      | H h ->
        Atomic.set h.h_count 0;
        Atomic.set h.h_sum 0.0;
        Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    registry;
  Mutex.unlock registry_mutex
