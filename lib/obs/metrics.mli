(** Process-wide metrics registry: named counters, gauges, and log-scale
    histograms, safe to update concurrently from {!Parallel.Pool}
    domains.

    Counters are [Atomic] integer adds and gauges [Atomic] float stores,
    cheap enough to stay unconditionally live (the reliability cache
    counts hits/misses whether or not anyone reads them). The {!enabled}
    gate exists for instrumentation whose {e measurement} has a cost —
    the pool's queue-wait and busy histograms each need clock reads, so
    they only record when metrics are switched on (e.g. by
    [triqc metrics] or the bench harness).

    Histograms bucket by powers of two: bucket [i] covers
    [(2^(i-1), 2^i]] with bucket [0] absorbing everything [<= 1] and the
    last bucket open-ended. With {!n_buckets}[ = 64] that spans a
    nanosecond to ~290 years when observations are nanoseconds — one
    fixed shape for every histogram, so merging and rendering need no
    per-metric configuration.

    Naming convention (see docs/OBSERVABILITY.md): dot-separated
    [layer.component.metric], e.g. ["triq.reliability.cache.hits"],
    ["parallel.pool.queue_wait_ns"]; unit suffix ([_ns], [_bytes]) when
    the value has one. Registering the same name twice returns the same
    metric; reusing a name at a different type raises [Invalid_argument]. *)

type counter
type gauge
type histogram

(** {1 Registration (register-or-get, process-wide)} *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Updates} *)

(** [incr ?by c] adds [by] (default 1) to [c]. *)
val incr : ?by:int -> counter -> unit

val set : gauge -> float -> unit

(** [observe h v] adds [v] to histogram [h] (count, sum, bucket). *)
val observe : histogram -> float -> unit

(** {1 Gating for costly instrumentation} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** {1 Reading} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      buckets : (float * int) list;
          (** [(upper_bound, count)] for non-empty buckets only, ascending;
              the open-ended last bucket reports [infinity]. *)
    }

(** Snapshot of every registered metric, sorted by name. *)
val dump : unit -> (string * value) list

(** Zero every registered metric (names stay registered). *)
val reset : unit -> unit

(** {1 Bucket geometry (exposed for tests and exporters)} *)

val n_buckets : int

(** [bucket_index v] is the bucket [v] falls into; NaN and negatives go
    to bucket 0, [infinity] to the last. *)
val bucket_index : float -> int

(** [bucket_upper i] is the inclusive upper bound of bucket [i]
    ([2^i]; [infinity] for the last bucket). *)
val bucket_upper : int -> float
