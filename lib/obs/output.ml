let envelope ~ok ~command data =
  Json.Obj [ ("ok", Json.Bool ok); ("command", Json.Str command); ("data", data) ]

let to_string ~ok ~command data = Json.to_string (envelope ~ok ~command data)

let print ~ok ~command data =
  print_string (to_string ~ok ~command data);
  print_newline ()
