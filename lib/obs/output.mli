(** The shared machine-readable CLI envelope.

    Every [triqc] subcommand that offers [--json] prints exactly one
    compact line of the form

    {[ {"ok": <bool>, "command": "<subcommand>", "data": <payload>} ]}

    so scripts can dispatch on [.ok]/[.command] without per-command
    parsers. [ok] reflects the {e domain} outcome (lint found no errors,
    fuzz found no counterexample) — the process exit code is still the
    authoritative pass/fail signal. *)

(** [envelope ~ok ~command data] builds the standard envelope. *)
val envelope : ok:bool -> command:string -> Json.t -> Json.t

val to_string : ok:bool -> command:string -> Json.t -> string

(** Print the envelope to stdout as one line, then flush. *)
val print : ok:bool -> command:string -> Json.t -> unit
