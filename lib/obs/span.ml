type attr = Str of string | Int of int | Float of float | Bool of bool

type t = {
  id : int;
  parent : int option;
  name : string;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * attr) list;
}

let enabled_flag = Atomic.make false
let next_id = Atomic.make 0
let sink : t list ref = ref []
let sink_mutex = Mutex.create ()

(* Stack of open span ids on the current domain; the head is the parent
   of the next span opened here. *)
let open_stack : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock sink_mutex;
  sink := [];
  Mutex.unlock sink_mutex

let collected () =
  Mutex.lock sink_mutex;
  let spans = !sink in
  Mutex.unlock sink_mutex;
  List.sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with
      | 0 -> compare a.id b.id
      | c -> c)
    spans

let record span =
  Mutex.lock sink_mutex;
  sink := span :: !sink;
  Mutex.unlock sink_mutex

(* Open a span on this domain: allocate an id, note the parent, push.
   Returns everything [finish] needs. The push/record decision is made
   here once, so a concurrent enable/disable flip cannot unbalance the
   per-domain stack. *)
let start name attrs =
  let id = Atomic.fetch_and_add next_id 1 in
  let stack = Domain.DLS.get open_stack in
  let parent = match !stack with [] -> None | p :: _ -> Some p in
  stack := id :: !stack;
  let start_ns = Clock.now_ns () in
  (id, parent, name, attrs, start_ns)

let finish (id, parent, name, attrs, start_ns) =
  let dur_ns = Clock.elapsed_ns ~since:start_ns in
  let stack = Domain.DLS.get open_stack in
  (match !stack with top :: rest when top = id -> stack := rest | _ -> ());
  record
    {
      id;
      parent;
      name;
      domain = (Domain.self () :> int);
      start_ns;
      dur_ns;
      attrs;
    };
  dur_ns

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let open_span = start name attrs in
    match f () with
    | v ->
      ignore (finish open_span);
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (finish open_span);
      Printexc.raise_with_backtrace e bt
  end

let timed ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then begin
    let t0 = Clock.now_ns () in
    let v = f () in
    (v, Clock.ns_to_s (Clock.elapsed_ns ~since:t0))
  end
  else begin
    let open_span = start name attrs in
    match f () with
    | v ->
      let dur_ns = finish open_span in
      (v, Clock.ns_to_s dur_ns)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (finish open_span);
      Printexc.raise_with_backtrace e bt
  end
