(** Hierarchical wall-clock spans with a thread-safe in-memory sink.

    A span is one timed region of work — a compiler pass, a trajectory
    block, a whole compile — with key/value attributes and a parent
    link. Nesting is tracked {e per domain} (an OCaml 5 [Domain.DLS]
    stack of open spans), so work fanned out across a
    {!Parallel.Pool} records correctly-parented spans without
    cross-domain interleaving corruption; finished spans are appended to
    one process-wide sink under a mutex.

    Recording is off by default. When disabled, {!with_span} is a single
    atomic load and a direct call of the body — no clock read, no
    allocation — so instrumentation can stay permanently in hot paths
    ([triqc] only flips it on under [--trace]). {!timed} is the
    exception: it {e always} measures (its contract is to return the
    duration) and records a span only when enabled — the pass driver
    uses it so [pass_times_s] is the same measurement the trace shows.

    Naming convention (see docs/OBSERVABILITY.md): lowercase
    dot-separated segments, [layer.operation] — ["compile"],
    ["pass.routing"], ["sim.block"]. *)

(** Attribute values. *)
type attr = Str of string | Int of int | Float of float | Bool of bool

type t = {
  id : int;  (** unique within the process, allocation order *)
  parent : int option;  (** innermost open span on the same domain *)
  name : string;
  domain : int;  (** domain that ran the span ([Domain.self]) *)
  start_ns : int64;  (** {!Clock.now_ns} at entry *)
  dur_ns : int64;  (** duration, never negative *)
  attrs : (string * attr) list;
}

(** {1 The sink} *)

val enabled : unit -> bool

(** [enable ()] starts recording into the in-memory sink (idempotent). *)
val enable : unit -> unit

(** [disable ()] stops recording. Already-collected spans are kept;
    spans open at the moment of the flip still record on exit so the
    sink never holds an unbalanced stack. *)
val disable : unit -> unit

(** Drop all collected spans (the id counter keeps running). *)
val reset : unit -> unit

(** Snapshot of finished spans, sorted by [(start_ns, id)]. *)
val collected : unit -> t list

(** {1 Recording} *)

(** [with_span ?attrs name f] runs [f ()]; when enabled, records a span
    around it (also on exception). The no-op path when disabled is one
    atomic load. *)
val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

(** [timed ?attrs name f] is [with_span] that additionally returns [f]'s
    wall-clock seconds, measured whether or not the sink is enabled —
    and when it is, the recorded span's [dur_ns] is exactly the same
    measurement ([dur_ns = seconds *. 1e9] up to float rounding). *)
val timed : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a * float
