type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

(* Task count is a cheap atomic add and always on; the two histograms
   each cost clock reads per batch participant, so they only record when
   [Obs.Metrics.enable] was called (triqc metrics / bench). Either way
   the work assignment and results are untouched — instrumentation can
   never break the pool's determinism contract. *)
let m_tasks = Obs.Metrics.counter "parallel.pool.tasks"
let m_jobs = Obs.Metrics.gauge "parallel.pool.jobs"
let m_queue_wait = Obs.Metrics.histogram "parallel.pool.queue_wait_ns"
let m_busy = Obs.Metrics.histogram "parallel.pool.busy_ns"

(* Workers block on the queue and run whatever batch-driver closures maps
   push; a driver returns once its batch has no work left to claim. *)
let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec take () =
      if t.closed then None
      else if Queue.is_empty t.queue then begin
        Condition.wait t.work t.mutex;
        take ()
      end
      else Some (Queue.pop t.queue)
    in
    let job = take () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some run ->
      run ();
      loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  Obs.Metrics.set m_jobs (float_of_int jobs);
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let finished = ref false in
    let all_done = Condition.create () in
    (* The batch driver: claim indices until none are left. The caller
       runs it too, so the batch completes even with zero free workers
       (and nested maps cannot starve each other). *)
    let rec drive () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r = match f xs.(i) with v -> Ok v | exception e -> Error e in
        results.(i) <- Some r;
        if Atomic.fetch_and_add completed 1 = n - 1 then begin
          Mutex.lock t.mutex;
          finished := true;
          Condition.broadcast all_done;
          Mutex.unlock t.mutex
        end;
        drive ()
      end
    in
    Obs.Metrics.incr m_tasks ~by:n;
    let instrumented = Obs.Metrics.enabled () in
    (* [timed_drive] wraps one batch participant: queue-wait is the time
       a helper closure sat in the queue before a worker picked it up,
       busy is the participant's total claiming/working time. *)
    let timed_drive ~queued_ns () =
      (match queued_ns with
      | Some since ->
        Obs.Metrics.observe m_queue_wait
          (Int64.to_float (Obs.Clock.elapsed_ns ~since))
      | None -> ());
      let t0 = Obs.Clock.now_ns () in
      drive ();
      Obs.Metrics.observe m_busy (Int64.to_float (Obs.Clock.elapsed_ns ~since:t0))
    in
    let helpers = min (t.jobs - 1) (n - 1) in
    if helpers > 0 then begin
      Mutex.lock t.mutex;
      if not t.closed then begin
        for _ = 1 to helpers do
          if instrumented then begin
            let queued = Obs.Clock.now_ns () in
            Queue.push (timed_drive ~queued_ns:(Some queued)) t.queue
          end
          else Queue.push drive t.queue
        done;
        Condition.broadcast t.work
      end;
      Mutex.unlock t.mutex
    end;
    if instrumented then timed_drive ~queued_ns:None () else drive ();
    Mutex.lock t.mutex;
    while not !finished do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (* Raise the lowest-indexed failure regardless of which domain hit it
       first — deterministic error reporting across pool sizes. *)
    for i = 0 to n - 1 do
      match results.(i) with Some (Error e) -> raise e | _ -> ()
    done;
    Array.map (function Some (Ok v) -> v | _ -> assert false) results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let map_reduce t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map t f xs)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---- process-wide default pool ---- *)

let default_mutex = Mutex.create ()
let default_size = ref (max 1 (Domain.recommended_domain_count ()))
let default_pool : t option ref = ref None

let default () =
  Mutex.protect default_mutex (fun () ->
      match !default_pool with
      | Some p -> p
      | None ->
        let p = create ~jobs:!default_size in
        default_pool := Some p;
        p)

let default_jobs () = Mutex.protect default_mutex (fun () -> !default_size)

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  let stale =
    Mutex.protect default_mutex (fun () ->
        default_size := n;
        match !default_pool with
        | Some p when p.jobs <> n ->
          default_pool := None;
          Some p
        | _ -> None)
  in
  Option.iter shutdown stale
