(** A fixed-size domain pool for deterministic data parallelism.

    The pool owns [jobs - 1] worker domains (OCaml 5 [Domain.t]); the
    caller of {!map} is always the [jobs]-th participant, executing tasks
    itself while it waits. Because the submitting domain helps drain its
    own batch, a task may itself call {!map} on the same pool (nested
    fan-out) without risk of deadlock, and a pool of [jobs = 1] degrades
    to plain inline iteration with no synchronization at all.

    Determinism contract: {!map} returns results in input order, and the
    assignment of work to domains never influences the result values —
    callers are responsible for making each task self-contained (e.g. a
    pre-split RNG per task, see {!Mathkit.Rng.split}). Everything built on
    this module (trajectory simulation, experiment sweeps) is bit-for-bit
    identical for every [jobs] value.

    Observability: every map reports its task count to the
    ["parallel.pool.tasks"] counter and pool sizes to the
    ["parallel.pool.jobs"] gauge; when [Obs.Metrics.enable] is on, the
    ["parallel.pool.queue_wait_ns"] histogram records how long helper
    closures sat queued before a worker claimed them and
    ["parallel.pool.busy_ns"] each participant's working time per batch
    (per-domain lanes are visible in Chrome traces via span [tid]s).
    Instrumentation never alters scheduling or results. *)

type t

(** [create ~jobs] spawns a pool with [jobs - 1] worker domains
    ([jobs >= 1]; [jobs = 1] spawns none and runs everything inline). *)
val create : jobs:int -> t

(** Total parallelism of the pool, including the calling domain. *)
val jobs : t -> int

(** [map t f xs] applies [f] to every element, in parallel across the
    pool, and returns the results in input order. If any application
    raises, the whole map still runs to completion and the exception of
    the lowest-indexed failing element is re-raised (deterministic
    regardless of scheduling). *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Array counterpart of {!map}. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_reduce t ~map ~reduce ~init xs] folds the mapped results in
    input order: [reduce (... (reduce init y0) ...) yn]. The fold itself
    runs on the calling domain, so a non-associative [reduce] (e.g. float
    accumulation) still gives the same answer for every pool size. *)
val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc

(** [shutdown t] joins the worker domains. Maps on a shut-down pool run
    inline on the caller. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** {1 The process-wide default pool}

    Library entry points ({!Sim.Runner.run}, the experiment harness) fall
    back to a shared lazily-created pool, sized by [-j] flags or
    [Domain.recommended_domain_count ()]. *)

(** The shared pool, created on first use with {!default_jobs} workers. *)
val default : unit -> t

(** Current size the default pool has (or will be created with). *)
val default_jobs : unit -> int

(** [set_default_jobs n] resizes the default pool (shutting down the old
    one if its size differs). This is what [-j N] flags call. *)
val set_default_jobs : int -> unit
