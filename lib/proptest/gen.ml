module Rng = Mathkit.Rng
module G = Ir.Gate

type 'a t = Rng.t -> 'a

let return x _rng = x
let map f g rng = f (g rng)
let bind g f rng = f (g rng) rng
let pair a b rng =
  let x = a rng in
  let y = b rng in
  (x, y)

let int_range lo hi rng =
  if hi < lo then invalid_arg "Gen.int_range: empty range";
  lo + Rng.int rng (hi - lo + 1)

let float_range lo hi rng = lo +. (Rng.float rng *. (hi -. lo))

let bool p rng = Rng.bool rng p

let one_of l rng = Rng.choose rng l

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
  let target = Rng.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Gen.frequency: empty"
    | (w, g) :: rest -> if target < acc + w then g else pick (acc + w) rest
  in
  (pick 0 weighted) rng

let list_n n g rng =
  let len = n rng in
  List.init len (fun _ -> g rng)

(* ---------- domain generators ---------- *)

let two_pi = 2.0 *. Float.pi

let special_angles =
  [
    0.0;
    Float.pi;
    -.Float.pi;
    Float.pi /. 2.0;
    -.(Float.pi /. 2.0);
    Float.pi /. 4.0;
    1e-3;
    -1e-3;
    1e-9;
    2.0;
    12.56637061435917;
  ]

let angle =
  frequency
    [ (3, float_range (-.two_pi) two_pi); (1, one_of special_angles) ]

let distinct_qubits ~n k rng =
  if k > n then invalid_arg "Gen.distinct_qubits: k > n";
  let a = Array.init n Fun.id in
  Rng.shuffle rng a;
  Array.to_list (Array.sub a 0 k)

let one_q_kind : G.one_q t =
  frequency
    [
      (4, one_of [ G.X; G.Y; G.Z; G.H; G.S; G.Sdg; G.T; G.Tdg ]);
      (2, map (fun a -> G.Rx a) angle);
      (2, map (fun a -> G.Ry a) angle);
      (2, map (fun a -> G.Rz a) angle);
      (1, map (fun (t, p) -> G.Rxy (t, p)) (pair angle angle));
      (1, map (fun a -> G.U1 a) angle);
      (1, map (fun (p, l) -> G.U2 (p, l)) (pair angle angle));
      (1, map (fun ((t, p), l) -> G.U3 (t, p, l)) (pair (pair angle angle) angle));
    ]

let two_q_kind : G.two_q t =
  frequency
    [
      (3, return G.Cnot);
      (2, return G.Cz);
      (1, map (fun a -> G.Xx a) angle);
      (1, return G.Swap);
      (1, return G.Iswap);
    ]

let gate ~n_qubits rng =
  let pick_one rng =
    let k = one_q_kind rng in
    G.One (k, int_range 0 (n_qubits - 1) rng)
  in
  let pick_two rng =
    let k = two_q_kind rng in
    match distinct_qubits ~n:n_qubits 2 rng with
    | [ a; b ] -> G.Two (k, a, b)
    | _ -> assert false
  in
  let pick_three ctor rng =
    match distinct_qubits ~n:n_qubits 3 rng with
    | [ a; b; c ] -> ctor a b c
    | _ -> assert false
  in
  let choices =
    if n_qubits >= 3 then
      [
        (5, pick_one);
        (4, pick_two);
        (1, pick_three (fun a b c -> G.Ccx (a, b, c)));
        (1, pick_three (fun a b c -> G.Cswap (a, b, c)));
      ]
    else if n_qubits >= 2 then [ (5, pick_one); (4, pick_two) ]
    else [ (1, pick_one) ]
  in
  frequency choices rng

let body ~max_qubits ~max_gates rng =
  let n = int_range 1 max_qubits rng in
  let gates = list_n (int_range 0 max_gates) (gate ~n_qubits:n) rng in
  Ir.Circuit.create n gates

let measure_layer n rng =
  let k = int_range 1 n rng in
  let qs = List.sort compare (distinct_qubits ~n k rng) in
  List.map (fun q -> G.Measure q) qs

let circuit ~max_qubits ~max_gates rng =
  let b = body ~max_qubits ~max_gates rng in
  Ir.Circuit.append b (measure_layer b.Ir.Circuit.n_qubits rng)

(* ---------- Clifford-only circuits ---------- *)

(* Named Clifford gates plus Clifford-angle rotations (Rz/U1 at
   multiples of pi/2, the Moelmer-Soerensen Xx at multiples of pi/4).
   Every candidate is cross-checked against the numerically derived
   tableau action, so the generator can never emit a non-Clifford gate
   even if an angle convention shifts. *)
let clifford_one_q : G.one_q t =
  let quarter = map (fun k -> float_of_int k *. (Float.pi /. 2.0)) (int_range 0 3) in
  frequency
    [
      (4, one_of [ G.X; G.Y; G.Z; G.H; G.S; G.Sdg ]);
      (2, map (fun a -> G.Rz a) quarter);
      (1, map (fun a -> G.Rx a) quarter);
      (1, map (fun a -> G.U1 a) quarter);
    ]

let clifford_two_q : G.two_q t =
  let ms = map (fun k -> float_of_int k *. (Float.pi /. 4.0)) (int_range 1 3) in
  frequency
    [
      (3, return G.Cnot);
      (2, return G.Cz);
      (1, return G.Swap);
      (1, return G.Iswap);
      (1, map (fun a -> G.Xx a) ms);
    ]

let clifford_gate ~n_qubits rng =
  let g =
    if n_qubits >= 2 && bool 0.45 rng then
      match distinct_qubits ~n:n_qubits 2 rng with
      | [ a; b ] -> G.Two (clifford_two_q rng, a, b)
      | _ -> assert false
    else G.One (clifford_one_q rng, int_range 0 (n_qubits - 1) rng)
  in
  if Dataflow.Tableau.is_clifford_gate g then g
  else
    match g with
    | G.One (_, q) -> G.One (G.H, q)
    | G.Two (_, a, b) -> G.Two (G.Cnot, a, b)
    | G.Measure _ | G.Ccx _ | G.Cswap _ -> assert false

let clifford_body ~max_qubits ~max_gates rng =
  let n = int_range 1 max_qubits rng in
  let gates = list_n (int_range 0 max_gates) (clifford_gate ~n_qubits:n) rng in
  Ir.Circuit.create n gates

(* ---------- vendor-visible circuits ---------- *)

(* Ensure the top wire carries an operation: Quil and TI asm have no
   qubit declaration, so a parser can only infer the count from use. *)
let touch_top_qubit ~mk_one n gates rng =
  let top = n - 1 in
  let touches_top g = List.mem top (G.qubits g) in
  if List.exists touches_top gates then gates
  else gates @ [ mk_one top rng ]

let vendor_circuit ~one_kinds ~two_kinds ~mk_one ~max_qubits ~max_gates
    ~allow_empty rng =
  let n = int_range 1 max_qubits rng in
  let vendor_gate rng =
    if n >= 2 && Rng.bool rng 0.4 then begin
      match distinct_qubits ~n 2 rng with
      | [ a; b ] -> G.Two (one_of two_kinds rng rng, a, b)
      | _ -> assert false
    end
    else G.One (one_of one_kinds rng rng, int_range 0 (n - 1) rng)
  in
  let min_gates = if allow_empty then 0 else 1 in
  let gates = list_n (int_range min_gates max_gates) vendor_gate rng in
  let gates = if allow_empty then gates else touch_top_qubit ~mk_one n gates rng in
  let measures = if Rng.bool rng 0.6 then measure_layer n rng else [] in
  Ir.Circuit.create n (gates @ measures)

let ibm_visible_circuit ~max_qubits ~max_gates rng =
  let one_kinds : G.one_q t list =
    [
      map (fun l -> G.U1 l) angle;
      map (fun (p, l) -> G.U2 (p, l)) (pair angle angle);
      map (fun ((t, p), l) -> G.U3 (t, p, l)) (pair (pair angle angle) angle);
    ]
  in
  vendor_circuit ~one_kinds ~two_kinds:[ return G.Cnot ]
    ~mk_one:(fun q rng -> G.One (G.U1 (angle rng), q))
    ~max_qubits ~max_gates ~allow_empty:true rng

let rigetti_visible_circuit ~max_qubits ~max_gates rng =
  let one_kinds : G.one_q t list =
    [ map (fun a -> G.Rx a) angle; map (fun a -> G.Rz a) angle ]
  in
  vendor_circuit ~one_kinds ~two_kinds:[ return G.Cz; return G.Iswap ]
    ~mk_one:(fun q rng -> G.One (G.Rz (angle rng), q))
    ~max_qubits ~max_gates ~allow_empty:false rng

let umd_visible_circuit ~max_qubits ~max_gates rng =
  let one_kinds : G.one_q t list =
    [
      map (fun (t, p) -> G.Rxy (t, p)) (pair angle angle);
      map (fun a -> G.Rz a) angle;
    ]
  in
  vendor_circuit ~one_kinds ~two_kinds:[ map (fun a -> G.Xx a) angle ]
    ~mk_one:(fun q rng -> G.One (G.Rz (angle rng), q))
    ~max_qubits ~max_gates ~allow_empty:false rng

(* ---------- machine / toolflow space ---------- *)

let machine = one_of (Device.Machines.all @ Device.Machines.extended)

let level = one_of Triq.Pipeline.all_levels

let router = one_of [ Triq.Pass.Config.Default; Triq.Pass.Config.Lookahead ]

let day = int_range 0 6
