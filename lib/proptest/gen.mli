(** Seeded, deterministic generators over circuits and configuration
    space.

    A generator is a function of a {!Mathkit.Rng.t} stream. The harness
    hands every test case its own stream split off a master seed
    ({!Mathkit.Rng.split}), so case [i] of [triqc fuzz --seed S] is the
    same value forever, independent of how many draws earlier cases or
    the shrinker made. No QCheck dependency — the same splittable streams
    the simulator uses drive generation. *)

type 'a t = Mathkit.Rng.t -> 'a

(** {1 Combinators} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t

(** [int_range lo hi] draws uniformly from the inclusive range. *)
val int_range : int -> int -> int t

val float_range : float -> float -> float t

(** [bool p] is true with probability [p]. *)
val bool : float -> bool t

(** Uniform choice; raises [Invalid_argument] on []. *)
val one_of : 'a list -> 'a t

(** Weighted choice of sub-generators; weights must be positive. *)
val frequency : (int * 'a t) list -> 'a t

(** [list_n n g] draws a length with [n] then that many elements. *)
val list_n : int t -> 'a t -> 'a list t

(** {1 Domain generators} *)

(** Rotation angles: a mixture of uniform draws over [-2pi, 2pi] and
    adversarial special values (0, +-pi, +-pi/2, pi/4, tiny
    scientific-notation magnitudes like 1e-3, and large multi-turn
    angles) that stress emitter formatting and parser numerics. *)
val angle : float t

(** [distinct_qubits ~n k] draws [k] distinct qubit indices below [n]
    (requires [k <= n]), in random order. *)
val distinct_qubits : n:int -> int -> int list t

(** A non-measure gate from the full IR set (Toffoli/Fredkin included
    when [n_qubits >= 3]) on distinct in-range qubits. *)
val gate : n_qubits:int -> Ir.Gate.t t

(** A measure-free circuit: [1 <= n <= max_qubits] qubits and up to
    [max_gates] gates from the full IR set. *)
val body : max_qubits:int -> max_gates:int -> Ir.Circuit.t t

(** [circuit ~max_qubits ~max_gates] is {!body} plus a trailing
    measurement layer on a random non-empty qubit subset. *)
val circuit : max_qubits:int -> max_gates:int -> Ir.Circuit.t t

(** A Clifford gate: named Cliffords (X/Y/Z/H/S/Sdg, CNOT/CZ/SWAP/
    iSWAP) plus Clifford-angle rotations (Rz/U1 at multiples of pi/2,
    Xx at multiples of pi/4), each verified against the derived tableau
    action. *)
val clifford_gate : n_qubits:int -> Ir.Gate.t t

(** A measure-free circuit built only from {!clifford_gate} — the
    stabilizer-backend cross-validation workload. *)
val clifford_body : max_qubits:int -> max_gates:int -> Ir.Circuit.t t

(** {2 Vendor software-visible circuits}

    Circuits built only from the gates each vendor's emitter accepts,
    for the emit -> parse round-trip oracle. The last qubit always
    carries at least one operation so formats without a qubit
    declaration (Quil, TI asm) can reconstruct the qubit count. *)

(** IBM: U1/U2/U3 + CNOT (+ trailing measures). *)
val ibm_visible_circuit : max_qubits:int -> max_gates:int -> Ir.Circuit.t t

(** Rigetti: Rx/Rz + CZ/iSWAP (+ trailing measures). *)
val rigetti_visible_circuit : max_qubits:int -> max_gates:int -> Ir.Circuit.t t

(** UMD: Rxy/Rz + XX (+ trailing measures). *)
val umd_visible_circuit : max_qubits:int -> max_gates:int -> Ir.Circuit.t t

(** {2 Machine / toolflow space} *)

(** One of the built-in machines (including the extended set). *)
val machine : Device.Machine.t t

(** One of the four Table 1 levels. *)
val level : Triq.Pipeline.level t

val router : Triq.Pass.Config.router t

(** A calibration day in [0, 6]. *)
val day : int t
