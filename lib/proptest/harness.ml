module Rng = Mathkit.Rng

type 'a property = 'a -> (unit, string) result

type 'a spec = {
  name : string;
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  show : 'a -> string;
  prop : 'a property;
}

type 'a failure = {
  case_index : int;
  original : 'a;
  original_message : string;
  shrunk : 'a;
  shrunk_message : string;
  shrink_steps : int;
}

type 'a outcome = { cases_run : int; failure : 'a failure option }

(* A raising property is a failing property: the harness exists to
   surface crashes, not hide them. *)
let eval prop x =
  match prop x with
  | r -> r
  | exception e -> Error (Printf.sprintf "exception: %s" (Printexc.to_string e))

let minimize ~budget spec x0 msg0 =
  let evals = ref 0 in
  let rec loop x msg steps =
    if !evals >= budget then (x, msg, steps)
    else begin
      let next =
        Seq.find_map
          (fun candidate ->
            if !evals >= budget then None
            else begin
              incr evals;
              match eval spec.prop candidate with
              | Ok () -> None
              | Error m -> Some (candidate, m)
            end)
          (spec.shrink x)
      in
      match next with
      | None -> (x, msg, steps)
      | Some (y, m) -> loop y m (steps + 1)
    end
  in
  loop x0 msg0 0

let run ?(max_shrink_evals = 2000) ~seed ~cases spec =
  let master = Rng.create seed in
  let rec cases_loop i =
    if i >= cases then { cases_run = cases; failure = None }
    else begin
      (* Each case draws from its own split stream: case [i] is the same
         value regardless of other cases' consumption. *)
      let case_rng = Rng.split master in
      let x = spec.gen case_rng in
      match eval spec.prop x with
      | Ok () -> cases_loop (i + 1)
      | Error msg ->
        let shrunk, shrunk_message, shrink_steps =
          minimize ~budget:max_shrink_evals spec x msg
        in
        {
          cases_run = i + 1;
          failure =
            Some
              {
                case_index = i;
                original = x;
                original_message = msg;
                shrunk;
                shrunk_message;
                shrink_steps;
              };
        }
    end
  in
  cases_loop 0
