(** The property-running engine: generate cases from a seed, stop at the
    first failure, shrink it to a local minimum.

    Determinism contract: case [i] under seed [S] is always the same
    value — each case's generator runs on a fresh stream split off the
    master ({!Mathkit.Rng.split}), so neither earlier cases' draw counts
    nor the shrinker perturb it. [triqc fuzz --seed S --cases N] is
    therefore exactly reproducible, and a failure report's [case] index
    plus seed pin down the original input forever. *)

(** A property either holds, or fails with a message. Raising is also a
    failure (the exception is captured); return [Ok ()] for cases that
    don't meet the property's preconditions (vacuous pass) so the
    shrinker cannot wander outside the property's domain. *)
type 'a property = 'a -> (unit, string) result

type 'a spec = {
  name : string;
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  show : 'a -> string;  (** human-readable rendering for reports *)
  prop : 'a property;
}

type 'a failure = {
  case_index : int;  (** 0-based index of the failing generated case *)
  original : 'a;
  original_message : string;
  shrunk : 'a;  (** local minimum under [spec.shrink] *)
  shrunk_message : string;  (** failure message of the shrunk case *)
  shrink_steps : int;  (** committed shrink steps (not candidate evals) *)
}

type 'a outcome = {
  cases_run : int;  (** cases executed, including the failing one *)
  failure : 'a failure option;
}

(** [run ~seed ~cases spec] executes up to [cases] generated cases and
    stops at the first failure, which it shrinks with an evaluation
    budget of [max_shrink_evals] candidate property calls (default
    2000). *)
val run : ?max_shrink_evals:int -> seed:int -> cases:int -> 'a spec -> 'a outcome
