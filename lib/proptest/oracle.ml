module Circuit = Ir.Circuit
module G = Ir.Gate

(* ---------- roundtrip ---------- *)

type vendor = Qasm | Quil | Ti

let vendor_name = function Qasm -> "qasm" | Quil -> "quil" | Ti -> "ti"

let vendor_ctor = function Qasm -> "Qasm" | Quil -> "Quil" | Ti -> "Ti"

(* CRLF line endings, trailing blanks, and tab separators: the
   whitespace dialects real vendor toolchains produce. A parser must
   read the mangled text identically. *)
let mangle_whitespace text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         let tabbed = String.map (fun c -> if c = ' ' then '\t' else c) line in
         tabbed ^ " \t")
  |> String.concat "\r\n"

let expected_readout c =
  List.filter_map (function G.Measure q -> Some q | _ -> None) c.Circuit.gates
  |> List.mapi (fun i q -> (i, q))

let max_used_qubit c =
  List.fold_left max (-1) (Circuit.used_qubits c)

let gates_equal a b =
  List.length a = List.length b && List.for_all2 G.equal a b

(* Full-precision rendering: [G.to_string] rounds angles for display,
   which would make a 1-ulp round-trip divergence print as two identical
   gates. *)
let pp_gates gates =
  String.concat "; " (List.map Repro.gate_src gates)

let check_parsed ~what ~expect_n c (parsed_circuit : Circuit.t) parsed_readout =
  if not (gates_equal c.Circuit.gates parsed_circuit.Circuit.gates) then
    Error
      (Printf.sprintf "%s: gates changed across emit/parse:\n  emitted: %s\n  parsed:  %s"
         what (pp_gates c.Circuit.gates) (pp_gates parsed_circuit.Circuit.gates))
  else if parsed_circuit.Circuit.n_qubits <> expect_n then
    Error
      (Printf.sprintf "%s: qubit count %d parsed back as %d" what expect_n
         parsed_circuit.Circuit.n_qubits)
  else begin
    let expected = expected_readout c in
    if parsed_readout <> expected then
      Error
        (Printf.sprintf "%s: readout map changed: expected [%s], got [%s]" what
           (String.concat "; "
              (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) expected))
           (String.concat "; "
              (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) parsed_readout)))
    else Ok ()
  end

let roundtrip_once vendor c ~what text =
  match vendor with
  | Qasm ->
    let p = Backend.Qasm_parse.parse text in
    check_parsed ~what ~expect_n:c.Circuit.n_qubits c p.Backend.Qasm_parse.circuit
      p.Backend.Qasm_parse.readout
  | Quil ->
    let p = Backend.Quil_parse.parse text in
    (* Quil has no qubit declaration: the parser can only infer the
       count from the highest qubit used. *)
    check_parsed ~what ~expect_n:(max_used_qubit c + 1) c
      p.Backend.Quil_parse.circuit p.Backend.Quil_parse.readout
  | Ti ->
    let p = Backend.Ti_parse.parse text in
    let readout = List.mapi (fun i q -> (i, q)) p.Backend.Ti_parse.measured in
    check_parsed ~what ~expect_n:(max_used_qubit c + 1) c
      p.Backend.Ti_parse.circuit readout

let emit vendor c =
  match vendor with
  | Qasm ->
    Backend.Qasm_emit.emit_circuit ~n_qubits:c.Circuit.n_qubits ~name:"fuzz" c
  | Quil -> Backend.Quil_emit.emit_circuit ~name:"fuzz" c
  | Ti -> Backend.Ti_emit.emit_circuit ~name:"fuzz" c

let check_roundtrip vendor c =
  (* Quil and TI have no qubit declaration, so an empty program carries no
     information and the parsers reject it by design: out of domain (the
     generators never produce one, but the shrinker can). *)
  if c.Circuit.gates = [] && vendor <> Qasm then Ok ()
  else
  match emit vendor c with
  | exception Invalid_argument msg ->
    Error (Printf.sprintf "emitter rejected a software-visible circuit: %s" msg)
  | text -> (
    let name = vendor_name vendor in
    match roundtrip_once vendor c ~what:name text with
    | Error _ as e -> e
    | Ok () -> (
      let mangled = mangle_whitespace text in
      match roundtrip_once vendor c ~what:(name ^ "+whitespace") mangled with
      | exception e ->
        Error
          (Printf.sprintf
             "%s: whitespace-mangled text (CRLF/tabs) no longer parses: %s" name
             (Printexc.to_string e))
      | r -> r))

(* ---------- semantic ---------- *)

let check_semantic c =
  let body = Circuit.body c in
  let n = body.Circuit.n_qubits in
  if n > 6 then Ok () (* vacuous: density sim would be too large *)
  else begin
    let sv = Sim.Statevector.run body in
    let sv_probs = Sim.Statevector.probabilities sv in
    let d = Sim.Density.init n in
    List.iter (Sim.Density.apply_gate d) body.Circuit.gates;
    let rho_probs = Sim.Density.populations d in
    let dim = 1 lsl n in
    if Array.length rho_probs <> dim then
      Error
        (Printf.sprintf "density populations has %d entries, expected %d"
           (Array.length rho_probs) dim)
    else begin
      let l1 = ref 0.0 in
      for i = 0 to dim - 1 do
        l1 := !l1 +. Float.abs (sv_probs.(i) -. rho_probs.(i))
      done;
      if !l1 <= 1e-9 then Ok ()
      else
        Error
          (Printf.sprintf
             "statevector and density disagree: L1 distance %.3e (> 1e-9)" !l1)
    end
  end

(* ---------- dataflow ---------- *)

let pauli_x_matrix =
  Mathkit.Matrix.of_rows
    [ [ Mathkit.Cplx.zero; Mathkit.Cplx.one ]; [ Mathkit.Cplx.one; Mathkit.Cplx.zero ] ]

let pauli_z_matrix =
  Mathkit.Matrix.of_rows
    [ [ Mathkit.Cplx.one; Mathkit.Cplx.zero ];
      [ Mathkit.Cplx.zero; Mathkit.Cplx.re (-1.0) ] ]

let check_dataflow c =
  let n = c.Circuit.n_qubits in
  if n > 6 then Ok () (* vacuous: statevector oracle would be too large *)
  else begin
    (* Static liveness vs dynamics: deleting every [dead.gate] must leave
       the measured-outcome distribution untouched. *)
    let dead = Dataflow.Liveness.dead_indices c in
    let dead_result =
      if dead = [] then Ok ()
      else begin
        let measured = Circuit.measured_qubits c in
        let kept =
          List.filteri (fun i _ -> not (List.mem i dead)) c.Circuit.gates
        in
        let pruned = Circuit.create n kept in
        let d_full = Sim.Runner.ideal_distribution c ~measured in
        let d_pruned = Sim.Runner.ideal_distribution pruned ~measured in
        let lookup d k = Option.value ~default:0.0 (List.assoc_opt k d) in
        let keys =
          List.sort_uniq Stdlib.compare
            (List.map fst d_full @ List.map fst d_pruned)
        in
        let l1 =
          List.fold_left
            (fun acc k -> acc +. Float.abs (lookup d_full k -. lookup d_pruned k))
            0.0 keys
        in
        if l1 <= 1e-9 then Ok ()
        else
          Error
            (Printf.sprintf
               "removing %d statically-dead gate(s) changed the measured \
                distribution: L1 distance %.3e (> 1e-9)"
               (List.length dead) l1)
      end
    in
    match dead_result with
    | Error _ -> dead_result
    | Ok () -> (
      (* Static tableau vs dynamics: every generator the Clifford domain
         reports must stabilize the simulated state, i.e.
         <psi|P|psi> = 1 for P = i^e * prod X^x Z^z. *)
      let body = Circuit.body c in
      match Dataflow.Tableau.of_circuit body with
      | None -> Ok ()
      | Some t ->
        let sv = Sim.Statevector.run body in
        let dim = 1 lsl n in
        let check_gen ((e, x, z) : Dataflow.Tableau.generator) =
          let phi = Sim.Statevector.copy sv in
          for q = 0 to n - 1 do
            (* X-before-Z operator order: Z hits the state first. *)
            if z.(q) then Sim.Statevector.apply_one phi pauli_z_matrix q;
            if x.(q) then Sim.Statevector.apply_one phi pauli_x_matrix q
          done;
          let inner = ref Mathkit.Cplx.zero in
          for i = 0 to dim - 1 do
            inner :=
              Mathkit.Cplx.add !inner
                (Mathkit.Cplx.mul
                   (Mathkit.Cplx.conj (Sim.Statevector.amplitude sv i))
                   (Sim.Statevector.amplitude phi i))
          done;
          (* P|psi> = |psi> requires <psi|(XZ..)|psi> = i^{-e}. *)
          let expected =
            match e land 3 with
            | 0 -> Mathkit.Cplx.one
            | 1 -> Mathkit.Cplx.make 0.0 (-1.0)
            | 2 -> Mathkit.Cplx.re (-1.0)
            | _ -> Mathkit.Cplx.i
          in
          if Mathkit.Cplx.approx ~eps:1e-6 !inner expected then None
          else
            Some
              (Printf.sprintf
                 "tableau generator %s does not stabilize the simulated \
                  state: expected <psi|XZ..|psi> = %s, got %s"
                 (Dataflow.Tableau.generator_to_string (e, x, z))
                 (Mathkit.Cplx.to_string expected)
                 (Mathkit.Cplx.to_string !inner))
        in
        let rec first_failure = function
          | [] -> Ok ()
          | g :: rest -> (
            match check_gen g with
            | Some msg -> Error msg
            | None -> first_failure rest)
        in
        first_failure (Dataflow.Tableau.generators t))
  end

(* ---------- schedule ---------- *)

let check_schedule ~machine ~level ~router ~peephole ~day c =
  let measured = Circuit.measured_qubits c in
  if (not (Device.Machine.fits machine c)) || measured = [] then Ok ()
  else begin
    let config = Triq.Pass.Config.make ~day ~router ~peephole () in
    let schedule = Triq.Pass.Schedule.of_level ~config level in
    match Triq.Pipeline.compile_schedule ~config machine c schedule with
    | exception e ->
      Error
        (Printf.sprintf "%s at %s (router=%s, peephole=%b, day=%d) raised: %s"
           machine.Device.Machine.name
           (Triq.Pipeline.level_name level)
           (Triq.Pass.Config.router_name router)
           peephole day (Printexc.to_string e))
    | compiled -> (
      let executable = Triq.Pipeline.to_compiled compiled in
      match Sim.Verify.check ~program:c ~measured executable with
      | exception e ->
        Error
          (Printf.sprintf "%s at %s: verification raised: %s"
             machine.Device.Machine.name
             (Triq.Pipeline.level_name level)
             (Printexc.to_string e))
      | result ->
        if result.Sim.Verify.equivalent then Ok ()
        else
          Error
            (Printf.sprintf
               "%s at %s (router=%s, peephole=%b, day=%d): compiled output \
                diverges, total variation %.6f"
               machine.Device.Machine.name
               (Triq.Pipeline.level_name level)
               (Triq.Pass.Config.router_name router)
               peephole day result.Sim.Verify.total_variation))
  end

(* ---------- determinism ---------- *)

(* One pool per size, created on first use and kept for the process
   lifetime (mirrors Parallel.Pool.default). *)
let pools = lazy (List.map (fun j -> (j, Parallel.Pool.create ~jobs:j)) [ 1; 2; 8 ])

let outcome_diff (a : Sim.Runner.outcome) (b : Sim.Runner.outcome) =
  if a.Sim.Runner.distribution <> b.Sim.Runner.distribution then
    Some "distribution"
  else if a.Sim.Runner.counts <> b.Sim.Runner.counts then Some "counts"
  else if a.Sim.Runner.success_rate <> b.Sim.Runner.success_rate then
    Some "success_rate"
  else if a.Sim.Runner.dominant_correct <> b.Sim.Runner.dominant_correct then
    Some "dominant_correct"
  else None

let check_determinism ~machine ~sample_counts ~explicit_t1 ~run_seed c =
  let measured = Circuit.measured_qubits c in
  if (not (Device.Machine.fits machine c)) || measured = [] then Ok ()
  else begin
    match
      Triq.Pipeline.compile_level machine c ~level:Triq.Pipeline.OneQOptCN
    with
    | exception e ->
      Error (Printf.sprintf "compile raised: %s" (Printexc.to_string e))
    | compiled -> (
      let executable = Triq.Pipeline.to_compiled compiled in
      let spec =
        match Sim.Runner.ideal_distribution (Circuit.body c) ~measured with
        | [] -> Ir.Spec.deterministic measured (String.make (List.length measured) '0')
        | dist -> Ir.Spec.distribution measured dist
      in
      let run pool =
        Sim.Runner.simulate
          ~config:
            (Sim.Runner.Config.make ~seed:run_seed ~trials:512 ~trajectories:60
               ~sample_counts ~explicit_t1 ~pool ())
          executable spec
      in
      match List.map (fun (j, p) -> (j, run p)) (Lazy.force pools) with
      | exception e ->
        Error (Printf.sprintf "runner raised: %s" (Printexc.to_string e))
      | [] | [ _ ] -> Ok ()
      | (j0, reference) :: rest ->
        List.fold_left
          (fun acc (j, outcome) ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
              match outcome_diff reference outcome with
              | None -> Ok ()
              | Some field ->
                Error
                  (Printf.sprintf
                     "outcome %s differs between -j %d and -j %d (machine %s, \
                      sample_counts=%b, explicit_t1=%b, seed=%d)"
                     field j0 j machine.Device.Machine.name sample_counts
                     explicit_t1 run_seed)))
          (Ok ()) rest)
  end

(* ---------- clifford ---------- *)

let l1_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i p -> d := !d +. Float.abs (p -. b.(i))) a;
  !d

(* Largest per-outcome gap between two reported distributions (missing
   entries count as zero). The reports truncate below 1e-6, so an entry
   sitting exactly on the threshold can appear in only one list — the
   caller's tolerance must absorb that. *)
let dist_gap a b =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  let gap = ref 0.0 in
  List.iter
    (fun (k, v) ->
      let v0 = Option.value ~default:0.0 (Hashtbl.find_opt tbl k) in
      gap := Float.max !gap (Float.abs (v -. v0));
      Hashtbl.remove tbl k)
    b;
  Hashtbl.iter (fun _ v -> gap := Float.max !gap (Float.abs v)) tbl;
  !gap

let check_clifford ~machine ~run_seed c =
  (* IR level: the tableau must agree exactly with the dense backend on
     the Clifford prefix of [c]'s body — full distribution, the
     materialized statevector, and measurement sampling confined to the
     support. *)
  let body = Circuit.body c in
  let n = body.Circuit.n_qubits in
  let prefix =
    let rec take acc = function
      | g :: rest when Dataflow.Tableau.is_clifford_gate g -> take (g :: acc) rest
      | _ -> List.rev acc
    in
    take [] body.Circuit.gates
  in
  let tab = Sim.Stabilizer.init n in
  if not (List.for_all (fun g -> Sim.Stabilizer.apply_gate tab g) prefix) then
    Error "stabilizer rejected a gate the tableau classifies as Clifford"
  else begin
    let p_sv =
      Sim.Statevector.probabilities (Sim.Statevector.run (Circuit.create n prefix))
    in
    let p_tab = Sim.Stabilizer.probabilities tab in
    let p_mat =
      Sim.Statevector.probabilities (Sim.Stabilizer.to_statevector tab)
    in
    let l1_pt = l1_diff p_sv p_tab and l1_pm = l1_diff p_sv p_mat in
    if l1_pt > 1e-9 then
      Error
        (Printf.sprintf "tableau distribution drifts from dense backend: L1=%g"
           l1_pt)
    else if l1_pm > 1e-9 then
      Error
        (Printf.sprintf
           "materialized statevector drifts from dense backend: L1=%g" l1_pm)
    else begin
      let rng = Mathkit.Rng.create run_seed in
      let bad = ref None in
      for _ = 1 to 12 do
        let idx = Sim.Stabilizer.measure_all (Sim.Stabilizer.copy tab) rng in
        if p_sv.(idx) < 1e-12 && !bad = None then bad := Some idx
      done;
      match !bad with
      | Some idx ->
        Error
          (Printf.sprintf "sampled outcome %d lies outside the dense support"
             idx)
      | None ->
        (* Runner level: [Auto] dispatch (stabilizer for Clifford-only
           compilations, hybrid for Clifford prefixes) must reproduce the
           forced dense backend. Fusion off on both sides so error-Pauli
           draws happen in the same order and the comparison is
           numerical, not stochastic. *)
        let measured = Circuit.measured_qubits c in
        if (not (Device.Machine.fits machine c)) || measured = [] then Ok ()
        else begin
          match
            Triq.Pipeline.compile_level machine c ~level:Triq.Pipeline.OneQOptCN
          with
          | exception e ->
            Error (Printf.sprintf "compile raised: %s" (Printexc.to_string e))
          | compiled -> (
            let executable = Triq.Pipeline.to_compiled compiled in
            let spec =
              match Sim.Runner.ideal_distribution (Circuit.body c) ~measured with
              | [] ->
                Ir.Spec.deterministic measured
                  (String.make (List.length measured) '0')
              | dist -> Ir.Spec.distribution measured dist
            in
            let run backend =
              Sim.Runner.simulate
                ~config:
                  (Sim.Runner.Config.make ~seed:run_seed ~trials:512
                     ~trajectories:60 ~fusion:false ~backend ())
                executable spec
            in
            match
              (run Sim.Runner.Config.Auto, run Sim.Runner.Config.Statevector)
            with
            | exception e ->
              Error (Printf.sprintf "runner raised: %s" (Printexc.to_string e))
            | auto, dense ->
              let gap =
                dist_gap auto.Sim.Runner.distribution
                  dense.Sim.Runner.distribution
              in
              (* 2e-6 absorbs the 1e-6 report-truncation threshold on
                 top of float error. *)
              if gap > 2e-6 then
                Error
                  (Printf.sprintf
                     "auto and statevector backends diverge (machine %s, \
                      seed %d): max distribution gap %g"
                     machine.Device.Machine.name run_seed gap)
              else Ok ())
        end
    end
  end

(* ---------- layout ---------- *)

let check_layout ~machine ~day c =
  if not (Device.Machine.fits machine c) then Ok ()
  else begin
    let flat = Ir.Decompose.flatten c in
    let reliability =
      Triq.Reliability.compute_cached ~noise_aware:true machine ~day
    in
    let pr = Triq.Placement.problem reliability flat in
    let bb = Layout.Bb.solve pr in
    let smt = Layout.Smt_search.solve pr in
    let portfolio = Layout.Portfolio.solve pr in
    let n_hardware = Device.Machine.n_qubits machine in
    let valid name (r : Layout.Report.t) =
      let sorted = List.sort_uniq compare (Array.to_list r.Layout.Report.placement) in
      if List.length sorted <> Array.length r.Layout.Report.placement then
        Error (Printf.sprintf "%s placement is not injective" name)
      else if List.exists (fun h -> h < 0 || h >= n_hardware) sorted then
        Error (Printf.sprintf "%s placement leaves the device" name)
      else Ok ()
    in
    let ( let* ) = Result.bind in
    let* () = valid "bb" bb in
    let* () = valid "smt" smt in
    let* () = valid "portfolio" portfolio in
    (* The engines realize the same max-min objective; their scores must
       agree whenever the B&B search completed (generated programs are
       tiny, so it always does — the guard keeps the property honest). *)
    let* () =
      if
        bb.Layout.Report.proven_optimal
        && Float.abs (bb.Layout.Report.objective -. smt.Layout.Report.objective)
           > 1e-9
      then
        Error
          (Printf.sprintf "bb %.9f and smt %.9f disagree on the objective"
             bb.Layout.Report.objective smt.Layout.Report.objective)
      else Ok ()
    in
    let* () =
      if
        bb.Layout.Report.proven_optimal
        && Float.abs
             (bb.Layout.Report.objective -. portfolio.Layout.Report.objective)
           > 1e-9
      then
        Error
          (Printf.sprintf "bb %.9f and portfolio %.9f disagree on the objective"
             bb.Layout.Report.objective portfolio.Layout.Report.objective)
      else Ok ()
    in
    (* Cache round-trip: a repeat solve through the process-wide cache
       must score exactly like the first (hit placements are stored in
       canonical labels and translated back per query). *)
    let solve () =
      Triq.Placement.solve ~reliability
        ~machine_name:machine.Device.Machine.name ~day flat
    in
    let r1 = solve () in
    let r2 = solve () in
    if r2.Layout.Report.cache <> Layout.Report.Hit then
      Error "second solve through the cache did not hit"
    else if r2.Layout.Report.objective <> r1.Layout.Report.objective then
      Error
        (Printf.sprintf "cache hit scores %.12f, cold solve scored %.12f"
           r2.Layout.Report.objective r1.Layout.Report.objective)
    else if r2.Layout.Report.placement <> r1.Layout.Report.placement then
      Error "cache hit returned a different placement than the cold solve"
    else Ok ()
  end

(* ---------- generated case types ---------- *)

type roundtrip_case = { rt_vendor : vendor; rt_circuit : Circuit.t }

type schedule_case = {
  sc_machine : Device.Machine.t;
  sc_level : Triq.Pipeline.level;
  sc_router : Triq.Pass.Config.router;
  sc_peephole : bool;
  sc_day : int;
  sc_circuit : Circuit.t;
}

type determinism_case = {
  dt_machine : Device.Machine.t;
  dt_sample_counts : bool;
  dt_explicit_t1 : bool;
  dt_run_seed : int;
  dt_circuit : Circuit.t;
}

type clifford_case = {
  cl_machine : Device.Machine.t;
  cl_run_seed : int;
  cl_circuit : Circuit.t;
}

type layout_case = {
  ly_machine : Device.Machine.t;
  ly_day : int;
  ly_circuit : Circuit.t;
}

let show_circuit c = Format.asprintf "%a" Circuit.pp c

let level_ctor = function
  | Triq.Pipeline.N -> "N"
  | Triq.Pipeline.OneQOpt -> "OneQOpt"
  | Triq.Pipeline.OneQOptC -> "OneQOptC"
  | Triq.Pipeline.OneQOptCN -> "OneQOptCN"

let router_ctor = function
  | Triq.Pass.Config.Default -> "Default"
  | Triq.Pass.Config.Lookahead -> "Lookahead"

(* ---------- harness specs ---------- *)

let roundtrip_spec : roundtrip_case Harness.spec =
  {
    Harness.name = "roundtrip";
    gen =
      (fun rng ->
        let v = Gen.one_of [ Qasm; Quil; Ti ] rng in
        let circuit =
          match v with
          | Qasm -> Gen.ibm_visible_circuit ~max_qubits:5 ~max_gates:16 rng
          | Quil -> Gen.rigetti_visible_circuit ~max_qubits:5 ~max_gates:16 rng
          | Ti -> Gen.umd_visible_circuit ~max_qubits:5 ~max_gates:16 rng
        in
        { rt_vendor = v; rt_circuit = circuit });
    shrink =
      Shrink.lift
        ~get:(fun c -> c.rt_circuit)
        ~set:(fun c circuit -> { c with rt_circuit = circuit })
        Shrink.circuit;
    show =
      (fun c ->
        Printf.sprintf "format=%s\n%s" (vendor_name c.rt_vendor)
          (show_circuit c.rt_circuit));
    prop = (fun c -> check_roundtrip c.rt_vendor c.rt_circuit);
  }

let semantic_spec : Circuit.t Harness.spec =
  {
    Harness.name = "semantic";
    gen = Gen.body ~max_qubits:6 ~max_gates:24;
    shrink = Shrink.circuit;
    show = show_circuit;
    prop = check_semantic;
  }

let dataflow_spec : Circuit.t Harness.spec =
  {
    Harness.name = "dataflow";
    gen = Gen.circuit ~max_qubits:6 ~max_gates:20;
    shrink = Shrink.circuit;
    show = show_circuit;
    prop = check_dataflow;
  }

let schedule_shrink (c : schedule_case) =
  let configs =
    (if c.sc_peephole then [ { c with sc_peephole = false } ] else [])
    @ (if c.sc_router = Triq.Pass.Config.Lookahead then
         [ { c with sc_router = Triq.Pass.Config.Default } ]
       else [])
    @ (if c.sc_day > 0 then [ { c with sc_day = 0 } ] else [])
    @
    match c.sc_level with
    | Triq.Pipeline.N -> []
    | _ -> [ { c with sc_level = Triq.Pipeline.N } ]
  in
  Seq.append (List.to_seq configs)
    (Seq.map (fun circuit -> { c with sc_circuit = circuit })
       (Shrink.circuit c.sc_circuit))

let schedule_spec : schedule_case Harness.spec =
  {
    Harness.name = "schedule";
    gen =
      (fun rng ->
        let machine = Gen.machine rng in
        let max_qubits = min 5 (Device.Machine.n_qubits machine) in
        {
          sc_machine = machine;
          sc_level = Gen.level rng;
          sc_router = Gen.router rng;
          sc_peephole = Gen.bool 0.3 rng;
          sc_day = Gen.day rng;
          sc_circuit = Gen.circuit ~max_qubits ~max_gates:12 rng;
        });
    shrink = schedule_shrink;
    show =
      (fun c ->
        Printf.sprintf "machine=%s level=%s router=%s peephole=%b day=%d\n%s"
          c.sc_machine.Device.Machine.name
          (Triq.Pipeline.level_name c.sc_level)
          (Triq.Pass.Config.router_name c.sc_router)
          c.sc_peephole c.sc_day (show_circuit c.sc_circuit));
    prop =
      (fun c ->
        check_schedule ~machine:c.sc_machine ~level:c.sc_level
          ~router:c.sc_router ~peephole:c.sc_peephole ~day:c.sc_day c.sc_circuit);
  }

let determinism_spec : determinism_case Harness.spec =
  {
    Harness.name = "determinism";
    gen =
      (fun rng ->
        let machine = Gen.one_of Device.Machines.all rng in
        let max_qubits = min 4 (Device.Machine.n_qubits machine) in
        {
          dt_machine = machine;
          dt_sample_counts = Gen.bool 0.5 rng;
          dt_explicit_t1 = Gen.bool 0.3 rng;
          dt_run_seed = Gen.int_range 0 1_000_000 rng;
          dt_circuit = Gen.circuit ~max_qubits ~max_gates:10 rng;
        });
    shrink =
      Shrink.lift
        ~get:(fun c -> c.dt_circuit)
        ~set:(fun c circuit -> { c with dt_circuit = circuit })
        Shrink.circuit;
    show =
      (fun c ->
        Printf.sprintf "machine=%s sample_counts=%b explicit_t1=%b seed=%d\n%s"
          c.dt_machine.Device.Machine.name c.dt_sample_counts c.dt_explicit_t1
          c.dt_run_seed (show_circuit c.dt_circuit));
    prop =
      (fun c ->
        check_determinism ~machine:c.dt_machine ~sample_counts:c.dt_sample_counts
          ~explicit_t1:c.dt_explicit_t1 ~run_seed:c.dt_run_seed c.dt_circuit);
  }

let clifford_spec : clifford_case Harness.spec =
  {
    Harness.name = "clifford";
    gen =
      (fun rng ->
        let machine = Gen.one_of Device.Machines.all rng in
        let max_qubits = min 4 (Device.Machine.n_qubits machine) in
        let body = Gen.clifford_body ~max_qubits ~max_gates:14 rng in
        let n = body.Circuit.n_qubits in
        (* A non-Clifford tail in ~1/3 of cases exercises the hybrid
           (tableau-prefix + dense-tail) dispatch path. *)
        let body =
          if Gen.bool 0.35 rng then
            Circuit.append body
              (Gen.list_n (Gen.int_range 1 4) (Gen.gate ~n_qubits:n) rng)
          else body
        in
        let c = Circuit.append body (List.init n (fun q -> G.Measure q)) in
        {
          cl_machine = machine;
          cl_run_seed = Gen.int_range 0 1_000_000 rng;
          cl_circuit = c;
        });
    shrink =
      Shrink.lift
        ~get:(fun c -> c.cl_circuit)
        ~set:(fun c circuit -> { c with cl_circuit = circuit })
        Shrink.circuit;
    show =
      (fun c ->
        Printf.sprintf "machine=%s seed=%d\n%s" c.cl_machine.Device.Machine.name
          c.cl_run_seed (show_circuit c.cl_circuit));
    prop =
      (fun c ->
        check_clifford ~machine:c.cl_machine ~run_seed:c.cl_run_seed c.cl_circuit);
  }

let layout_spec : layout_case Harness.spec =
  {
    Harness.name = "layout";
    gen =
      (fun rng ->
        let machine = Gen.machine rng in
        let max_qubits = min 5 (Device.Machine.n_qubits machine) in
        {
          ly_machine = machine;
          ly_day = Gen.day rng;
          ly_circuit = Gen.circuit ~max_qubits ~max_gates:14 rng;
        });
    shrink =
      Shrink.lift
        ~get:(fun c -> c.ly_circuit)
        ~set:(fun c circuit -> { c with ly_circuit = circuit })
        Shrink.circuit;
    show =
      (fun c ->
        Printf.sprintf "machine=%s day=%d\n%s" c.ly_machine.Device.Machine.name
          c.ly_day (show_circuit c.ly_circuit));
    prop =
      (fun c -> check_layout ~machine:c.ly_machine ~day:c.ly_day c.ly_circuit);
  }

(* ---------- reports ---------- *)

let catalog =
  [
    ("roundtrip", "emit -> parse reproduces the circuit for all three vendors");
    ("semantic", "statevector and density simulators agree on ideal outputs");
    ( "dataflow",
      "static dead-gate and Clifford-tableau facts agree with simulation" );
    ("schedule", "every level and router/peephole ablation preserves semantics");
    ("determinism", "Sim.Runner outcomes identical across -j 1/2/8");
    ( "clifford",
      "stabilizer tableau agrees with the dense backend on Clifford circuits" );
    ( "layout",
      "B&B, SMT and the portfolio agree on the max-min objective; cache hits \
       score identically to cold solves" );
  ]

type failure_report = {
  case_index : int;
  message : string;
  original_message : string;
  shrunk_show : string;
  repro : string;
  shrink_steps : int;
}

type report = {
  oracle : string;
  seed : int;
  cases : int;
  cases_run : int;
  failure : failure_report option;
}

let machine_expr (m : Device.Machine.t) =
  Printf.sprintf "(Option.get (Device.Machines.find %S))" m.Device.Machine.name

let run_spec ~seed ~cases (spec : 'a Harness.spec) ~(repro : 'a -> string) =
  let o = Harness.run ~seed ~cases spec in
  {
    oracle = spec.Harness.name;
    seed;
    cases;
    cases_run = o.Harness.cases_run;
    failure =
      Option.map
        (fun (f : 'a Harness.failure) ->
          {
            case_index = f.Harness.case_index;
            message = f.Harness.shrunk_message;
            original_message = f.Harness.original_message;
            shrunk_show = spec.Harness.show f.Harness.shrunk;
            repro = repro f.Harness.shrunk;
            shrink_steps = f.Harness.shrink_steps;
          })
        o.Harness.failure;
  }

let run ~seed ~cases name =
  match name with
  | "roundtrip" ->
    Ok
      (run_spec ~seed ~cases roundtrip_spec ~repro:(fun c ->
           Repro.alcotest_case ~oracle:"roundtrip"
             ~check_expr:
               (Printf.sprintf
                  "Proptest.Oracle.check_roundtrip Proptest.Oracle.%s circuit"
                  (vendor_ctor c.rt_vendor))
             c.rt_circuit))
  | "semantic" ->
    Ok
      (run_spec ~seed ~cases semantic_spec ~repro:(fun c ->
           Repro.alcotest_case ~oracle:"semantic"
             ~check_expr:"Proptest.Oracle.check_semantic circuit" c))
  | "dataflow" ->
    Ok
      (run_spec ~seed ~cases dataflow_spec ~repro:(fun c ->
           Repro.alcotest_case ~oracle:"dataflow"
             ~check_expr:"Proptest.Oracle.check_dataflow circuit" c))
  | "schedule" ->
    Ok
      (run_spec ~seed ~cases schedule_spec ~repro:(fun c ->
           Repro.alcotest_case ~oracle:"schedule"
             ~check_expr:
               (Printf.sprintf
                  "Proptest.Oracle.check_schedule ~machine:%s \
                   ~level:Triq.Pipeline.%s ~router:Triq.Pass.Config.%s \
                   ~peephole:%b ~day:%d circuit"
                  (machine_expr c.sc_machine) (level_ctor c.sc_level)
                  (router_ctor c.sc_router) c.sc_peephole c.sc_day)
             c.sc_circuit))
  | "determinism" ->
    Ok
      (run_spec ~seed ~cases determinism_spec ~repro:(fun c ->
           Repro.alcotest_case ~oracle:"determinism"
             ~check_expr:
               (Printf.sprintf
                  "Proptest.Oracle.check_determinism ~machine:%s \
                   ~sample_counts:%b ~explicit_t1:%b ~run_seed:%d circuit"
                  (machine_expr c.dt_machine) c.dt_sample_counts
                  c.dt_explicit_t1 c.dt_run_seed)
             c.dt_circuit))
  | "clifford" ->
    Ok
      (run_spec ~seed ~cases clifford_spec ~repro:(fun c ->
           Repro.alcotest_case ~oracle:"clifford"
             ~check_expr:
               (Printf.sprintf
                  "Proptest.Oracle.check_clifford ~machine:%s ~run_seed:%d \
                   circuit"
                  (machine_expr c.cl_machine) c.cl_run_seed)
             c.cl_circuit))
  | "layout" ->
    Ok
      (run_spec ~seed ~cases layout_spec ~repro:(fun c ->
           Repro.alcotest_case ~oracle:"layout"
             ~check_expr:
               (Printf.sprintf
                  "Proptest.Oracle.check_layout ~machine:%s ~day:%d circuit"
                  (machine_expr c.ly_machine) c.ly_day)
             c.ly_circuit))
  | other ->
    Error
      (Printf.sprintf "unknown oracle %S (known: %s)" other
         (String.concat ", " (List.map fst catalog)))

let run_all ~seed ~cases =
  List.map
    (fun (name, _) ->
      match run ~seed ~cases name with Ok r -> r | Error msg -> failwith msg)
    catalog

let indent_block prefix s =
  String.split_on_char '\n' s
  |> List.map (fun line -> if line = "" then line else prefix ^ line)
  |> String.concat "\n"

let report_text r =
  match r.failure with
  | None ->
    Printf.sprintf "%-12s %d cases, seed %d: ok" r.oracle r.cases r.seed
  | Some f ->
    String.concat "\n"
      [
        Printf.sprintf "%-12s %d cases, seed %d: FAIL at case %d (%d shrink steps)"
          r.oracle r.cases r.seed f.case_index f.shrink_steps;
        "  message: " ^ f.message;
        "  shrunk counterexample:";
        indent_block "    " f.shrunk_show;
        "  repro (paste into test/test_proptest.ml):";
        indent_block "    " f.repro;
      ]

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json r =
  match r.failure with
  | None ->
    Printf.sprintf
      "{\"oracle\":\"%s\",\"seed\":%d,\"cases\":%d,\"cases_run\":%d,\"status\":\"ok\"}"
      (json_escape r.oracle) r.seed r.cases r.cases_run
  | Some f ->
    Printf.sprintf
      "{\"oracle\":\"%s\",\"seed\":%d,\"cases\":%d,\"cases_run\":%d,\"status\":\"fail\",\"case\":%d,\"shrink_steps\":%d,\"message\":\"%s\",\"original_message\":\"%s\",\"shrunk\":\"%s\",\"repro\":\"%s\"}"
      (json_escape r.oracle) r.seed r.cases r.cases_run f.case_index
      f.shrink_steps (json_escape f.message)
      (json_escape f.original_message)
      (json_escape f.shrunk_show) (json_escape f.repro)
