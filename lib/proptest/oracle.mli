(** The cross-layer oracle catalog behind [triqc fuzz].

    Each oracle is a property over generated circuits (and, where
    relevant, machine/level/config space) that the full stack must
    satisfy for {e every} input, not just the fixture benchmarks:

    - {b roundtrip}: [Backend.*_emit] followed by [Backend.*_parse]
      reproduces the circuit gate-for-gate (angles exact to 1 ulp —
      emitters print 17 significant digits) for all three vendor
      formats, including under CRLF line endings, trailing whitespace
      and tab separators;
    - {b semantic}: the statevector and density-matrix simulators agree
      on ideal output distributions (<= 6 qubits, L1 <= 1e-9);
    - {b schedule}: every optimization level and router/peephole
      ablation compiles generated programs to executables whose
      noiseless output distribution matches the source program's
      ({!Sim.Verify});
    - {b determinism}: {!Sim.Runner} outcomes are bit-for-bit identical
      across domain-pool sizes 1, 2 and 8.

    The [check_*] functions are the raw properties — [Ok ()] on pass or
    vacuously-unmet preconditions, [Error message] on failure — exposed
    so shrunk counterexamples can be pinned as ordinary unit tests
    (see docs/TESTING.md, "Reproducing a fuzz failure"). *)

(** {1 Properties} *)

type vendor = Qasm | Quil | Ti

val vendor_name : vendor -> string

(** [check_roundtrip v c] emits [c] in [v]'s format and parses it back.
    [c] must use only [v]-visible gates (the generators guarantee it);
    an emitter rejection is reported as a failure. Verifies gate
    sequence, qubit count (declared for QASM; inferred from use for
    Quil/TI), the readout map, and that a whitespace-mangled copy of the
    text (CRLF + tabs + trailing blanks) parses identically. Vacuous for
    a gate-free circuit under Quil/TI, whose parsers reject empty
    programs by design. *)
val check_roundtrip : vendor -> Ir.Circuit.t -> (unit, string) result

(** [check_semantic c] compares statevector and density simulations of
    [c]'s measure-free body. Vacuous for circuits over 6 qubits. *)
val check_semantic : Ir.Circuit.t -> (unit, string) result

(** [check_dataflow c] cross-validates the static dataflow domains
    against the simulator: deleting every gate {!Dataflow.Liveness}
    reports dead must leave the measured-outcome distribution untouched,
    and when {!Dataflow.Tableau} models [c]'s body as Clifford, each
    reported stabilizer generator must satisfy [<psi|P|psi> = 1] on the
    simulated statevector. Vacuous over 6 qubits. *)
val check_dataflow : Ir.Circuit.t -> (unit, string) result

(** [check_schedule ~machine ~level ~router ~peephole ~day c] compiles
    [c] under the given schedule/ablation and verifies the executable's
    noiseless semantics against the source program. Vacuous if [c] does
    not fit [machine] or measures nothing. *)
val check_schedule :
  machine:Device.Machine.t ->
  level:Triq.Pipeline.level ->
  router:Triq.Pass.Config.router ->
  peephole:bool ->
  day:int ->
  Ir.Circuit.t ->
  (unit, string) result

(** [check_determinism ~machine ~sample_counts ~explicit_t1 ~run_seed c]
    compiles [c] at TriQ-1QOptCN and runs the noisy simulator on domain
    pools of 1, 2 and 8, requiring identical outcomes (distribution,
    counts, success rate). Vacuous if [c] does not fit or measures
    nothing. The pools are created once and reused across calls. *)
val check_determinism :
  machine:Device.Machine.t ->
  sample_counts:bool ->
  explicit_t1:bool ->
  run_seed:int ->
  Ir.Circuit.t ->
  (unit, string) result

(** [check_clifford ~machine ~run_seed c] cross-validates the
    polynomial-time stabilizer backend against the dense statevector on
    [c]'s Clifford prefix (distribution L1 <= 1e-9, materialized state,
    sampled outcomes confined to the support), then — when [c] fits
    [machine] and measures something — compiles [c] at TriQ-1QOptCN and
    requires the noisy runner's [Auto] dispatch (stabilizer or hybrid)
    to reproduce the forced [Statevector] backend with fusion off
    (identical error-Pauli draw order; max per-outcome gap 2e-6). *)
val check_clifford :
  machine:Device.Machine.t ->
  run_seed:int ->
  Ir.Circuit.t ->
  (unit, string) result

(** [check_layout ~machine ~day c] lowers [c]'s interaction graph against
    the day's noise-aware reliability model and requires (a) the B&B, SMT
    and portfolio layout strategies to return valid injective placements
    agreeing on the max-min objective (within 1e-9, whenever B&B proved
    optimality), and (b) a repeat solve through the process-wide layout
    cache to hit and score exactly like the cold solve. Vacuous if [c]
    does not fit [machine]. *)
val check_layout :
  machine:Device.Machine.t -> day:int -> Ir.Circuit.t -> (unit, string) result

(** {1 Running oracles} *)

(** Canonical (name, description) rows, in catalog order:
    ["roundtrip"; "semantic"; "dataflow"; "schedule"; "determinism";
    "clifford"; "layout"]. *)
val catalog : (string * string) list

type failure_report = {
  case_index : int;  (** failing generated case (0-based, seed-stable) *)
  message : string;  (** failure message of the shrunk case *)
  original_message : string;
  shrunk_show : string;  (** pretty-printed shrunk counterexample *)
  repro : string;  (** paste-ready Alcotest case rebuilding it *)
  shrink_steps : int;
}

type report = {
  oracle : string;
  seed : int;
  cases : int;  (** requested *)
  cases_run : int;  (** executed (stops at first failure) *)
  failure : failure_report option;
}

(** [run ~seed ~cases name] runs one oracle; [Error] on unknown name. *)
val run : seed:int -> cases:int -> string -> (report, string) result

(** All oracles in catalog order. *)
val run_all : seed:int -> cases:int -> report list

(** Multi-line human-readable rendering (stable across runs for a fixed
    seed — no timings — so it can serve as an expected-output
    fixture). *)
val report_text : report -> string

(** One JSON object (single line). *)
val report_json : report -> string
