module G = Ir.Gate

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f." f
  else begin
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
       || String.contains s 'n' (* nan, inf have no digits to misread *)
    then s
    else s ^ "."
  end

(* Wrap negative literals so they parse as constructor arguments. *)
let arg f = if f < 0.0 then "(" ^ float_lit f ^ ")" else float_lit f

let one_q_src (k : G.one_q) =
  match k with
  | G.X -> "X"
  | G.Y -> "Y"
  | G.Z -> "Z"
  | G.H -> "H"
  | G.S -> "S"
  | G.Sdg -> "Sdg"
  | G.T -> "T"
  | G.Tdg -> "Tdg"
  | G.Rx a -> Printf.sprintf "Rx %s" (arg a)
  | G.Ry a -> Printf.sprintf "Ry %s" (arg a)
  | G.Rz a -> Printf.sprintf "Rz %s" (arg a)
  | G.Rxy (t, p) -> Printf.sprintf "Rxy (%s, %s)" (float_lit t) (float_lit p)
  | G.U1 a -> Printf.sprintf "U1 %s" (arg a)
  | G.U2 (p, l) -> Printf.sprintf "U2 (%s, %s)" (float_lit p) (float_lit l)
  | G.U3 (t, p, l) ->
    Printf.sprintf "U3 (%s, %s, %s)" (float_lit t) (float_lit p) (float_lit l)

let two_q_src (k : G.two_q) =
  match k with
  | G.Cnot -> "Cnot"
  | G.Cz -> "Cz"
  | G.Xx a -> Printf.sprintf "Xx %s" (arg a)
  | G.Swap -> "Swap"
  | G.Iswap -> "Iswap"

let gate_src (g : G.t) =
  match g with
  | G.One (k, q) -> Printf.sprintf "One (%s, %d)" (one_q_src k) q
  | G.Two (k, a, b) -> Printf.sprintf "Two (%s, %d, %d)" (two_q_src k) a b
  | G.Ccx (a, b, c) -> Printf.sprintf "Ccx (%d, %d, %d)" a b c
  | G.Cswap (a, b, c) -> Printf.sprintf "Cswap (%d, %d, %d)" a b c
  | G.Measure q -> Printf.sprintf "Measure %d" q

let circuit_src ~indent (c : Ir.Circuit.t) =
  match c.Ir.Circuit.gates with
  | [] -> Printf.sprintf "Ir.Circuit.create %d []" c.Ir.Circuit.n_qubits
  | gates ->
    let body =
      String.concat (";\n" ^ indent ^ "    ") (List.map gate_src gates)
    in
    Printf.sprintf "Ir.Circuit.create %d\n%s  [ %s ]" c.Ir.Circuit.n_qubits
      indent body

let alcotest_case ~oracle ~check_expr c =
  String.concat "\n"
    [
      Printf.sprintf "(* pinned by triqc fuzz: %s oracle *)" oracle;
      "let fuzz_regression () =";
      "  let open Ir.Gate in";
      Printf.sprintf "  let circuit =\n    %s\n  in"
        (circuit_src ~indent:"  " c);
      Printf.sprintf "  match %s with" check_expr;
      "  | Ok () -> ()";
      "  | Error msg -> Alcotest.fail msg";
    ]
