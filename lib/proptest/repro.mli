(** Render failing cases back to OCaml source.

    A shrunk counterexample is only useful if it can be pinned: these
    printers produce a ready-to-paste Alcotest case (for
    [test/test_proptest.ml]) that rebuilds the exact circuit — float
    literals printed with 17 significant digits round-trip exactly — and
    re-runs the oracle that failed. *)

(** A float as a valid OCaml literal ([3.] not [3]; exact to 1 ulp). *)
val float_lit : float -> string

(** A gate as a constructor expression, assuming [open Ir.Gate]. *)
val gate_src : Ir.Gate.t -> string

(** [circuit_src ~indent c] is an [Ir.Circuit.create] expression,
    assuming [open Ir.Gate] in scope. *)
val circuit_src : indent:string -> Ir.Circuit.t -> string

(** [alcotest_case ~oracle ~check_expr c] is a complete test function
    whose body rebuilds [c], binds it to [circuit], and fails the test
    with the oracle's message if [check_expr] returns [Error _].
    [check_expr] must be an expression of type
    [(unit, string) result] referring to [circuit]. *)
val alcotest_case : oracle:string -> check_expr:string -> Ir.Circuit.t -> string
