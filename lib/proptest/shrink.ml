module G = Ir.Gate

type 'a t = 'a -> 'a Seq.t

let nothing _ = Seq.empty

let int n =
  if n = 0 then Seq.empty
  else begin
    let rec candidates acc cur =
      (* 0, n/2, 3n/4, ... n-1: approach n from below. *)
      if cur = n then List.rev acc
      else candidates (cur :: acc) (cur + max 1 ((n - cur) / 2))
    in
    List.to_seq (candidates [] 0)
  end

let append a b x = Seq.append (a x) (b x)

let lift ~get ~set shrink x = Seq.map (set x) (shrink (get x))

(* ---------- circuits ---------- *)

(* Replace an angle by progressively simpler values. 0 first (kills the
   rotation entirely), then a short decimal that keeps the magnitude. *)
let angle_candidates a =
  if a = 0.0 then []
  else begin
    let rounded = Float.of_string (Printf.sprintf "%.3g" a) in
    0.0 :: (if rounded <> a && rounded <> 0.0 then [ rounded ] else [])
  end

let one_q_candidates (k : G.one_q) : G.one_q list =
  match k with
  | G.Rx a -> List.map (fun a -> G.Rx a) (angle_candidates a)
  | G.Ry a -> List.map (fun a -> G.Ry a) (angle_candidates a)
  | G.Rz a -> List.map (fun a -> G.Rz a) (angle_candidates a)
  | G.U1 a -> List.map (fun a -> G.U1 a) (angle_candidates a)
  | G.Rxy (t, p) ->
    List.map (fun t -> G.Rxy (t, p)) (angle_candidates t)
    @ List.map (fun p -> G.Rxy (t, p)) (angle_candidates p)
  | G.U2 (p, l) ->
    List.map (fun p -> G.U2 (p, l)) (angle_candidates p)
    @ List.map (fun l -> G.U2 (p, l)) (angle_candidates l)
  | G.U3 (t, p, l) ->
    List.map (fun t -> G.U3 (t, p, l)) (angle_candidates t)
    @ List.map (fun p -> G.U3 (t, p, l)) (angle_candidates p)
    @ List.map (fun l -> G.U3 (t, p, l)) (angle_candidates l)
  | _ -> []

let gate_candidates (g : G.t) : G.t list =
  match g with
  | G.One (k, q) -> List.map (fun k -> G.One (k, q)) (one_q_candidates k)
  | G.Two (G.Xx a, x, y) ->
    List.map (fun a -> G.Two (G.Xx a, x, y)) (angle_candidates a)
  | _ -> []

(* Aligned-chunk removals: sizes len/2, len/4, ..., 1. *)
let chunk_removals gates =
  let arr = Array.of_list gates in
  let len = Array.length arr in
  let drop_range start size =
    Array.to_list
      (Array.append (Array.sub arr 0 start)
         (Array.sub arr (start + size) (len - start - size)))
  in
  (* Largest chunks first: len/2, len/4, ..., 1. *)
  let rec sizes s = if s < 1 then [] else s :: sizes (s / 2) in
  let chunk_sizes = if len = 0 then [] else if len = 1 then [ 1 ] else sizes (len / 2) in
  List.concat_map
    (fun size ->
      let rec chunks start acc =
        if start + size > len then List.rev acc
        else chunks (start + size) (drop_range start size :: acc)
      in
      chunks 0 [])
    chunk_sizes

let circuit (c : Ir.Circuit.t) =
  let n = c.Ir.Circuit.n_qubits in
  let gates = c.Ir.Circuit.gates in
  let removals =
    List.map (fun gs -> Ir.Circuit.create n gs) (chunk_removals gates)
  in
  let simplifications =
    List.concat
      (List.mapi
         (fun i g ->
           List.map
             (fun g' ->
               Ir.Circuit.create n
                 (List.mapi (fun j old -> if i = j then g' else old) gates))
             (gate_candidates g))
         gates)
  in
  let compacted =
    if List.length (Ir.Circuit.used_qubits c) < n then
      [ fst (Ir.Circuit.compact c) ]
    else []
  in
  (* A candidate equal to the input (e.g. compacting an already-minimal
     circuit) would let the minimizer "commit" forever without progress,
     burning its whole eval budget in a cycle. *)
  List.to_seq
    (List.filter
       (fun c' -> not (Ir.Circuit.equal c' c))
       (removals @ simplifications @ compacted))
