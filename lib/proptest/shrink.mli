(** Shrinking: candidate reductions of a failing test case.

    A shrinker maps a value to a lazy sequence of strictly "smaller"
    candidates, most aggressive first. The harness greedily walks to a
    local minimum: it re-runs the property on each candidate and commits
    to the first one that still fails, repeating until no candidate
    fails (or the evaluation budget runs out). Properties must treat
    cases that no longer meet their preconditions as vacuously passing,
    so shrinking can never escape into meaningless territory. *)

type 'a t = 'a -> 'a Seq.t

(** No candidates: the value is already minimal. *)
val nothing : 'a t

(** Towards zero, halving: [int 12] yields 0, 6, 9, 11. *)
val int : int t

(** Candidate reductions of a circuit, in order:
    - drop aligned chunks of gates (sizes n/2, n/4, ..., 1 — classic
      delta debugging, so a 100-gate failure collapses in ~log steps);
    - simplify each rotation angle (0, then a short decimal);
    - drop unused qubits ({!Ir.Circuit.compact}).
    Every candidate is a valid circuit. *)
val circuit : Ir.Circuit.t t

(** [first_some shrinkers x] concatenates candidates from several
    shrinkers. *)
val append : 'a t -> 'a t -> 'a t

(** Shrink one field of a record: [lift ~get ~set shrink x] applies
    [shrink] to [get x] and re-embeds candidates with [set]. *)
val lift : get:('a -> 'b) -> set:('a -> 'b -> 'a) -> 'b t -> 'a t
