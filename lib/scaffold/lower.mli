(** Lowering from the Scaffold AST to the gate IR (the ScaffCC role).

    Registers are laid out contiguously in declaration order; constant-
    bound [for] loops are fully unrolled and classical expressions are
    resolved at compile time (Scaffold programs are compiled for a fixed
    input, Section 4.1). Gate names are resolved to IR gates, including
    the multi-qubit conveniences (Toffoli/CCNOT, Fredkin/CSWAP). *)

exception Error of string * int
(** [Error (message, line)] *)

type program = {
  circuit : Ir.Circuit.t;
  measured : int list;  (** program qubits in measurement-statement order *)
  qubit_names : (string * int) list;  (** ["q[2]" -> 5] debug mapping *)
}

(** The execution-order trace the linter consumes: register allocations,
    gate operand uses and measurements, each with the source line of the
    statement that caused them. Register names are scope-qualified
    (["sub.q"] for a declaration inside module [sub]). *)
type event =
  | Reg_decl of { name : string; base : int; size : int; line : int }
  | Gate_use of { qubit : int; line : int }
  | Measure_use of { qubit : int; line : int }

type traced = {
  result : (program, string * int) result;
      (** the lowered program, or the first hard error (message, line) *)
  events : event list;  (** trace up to the point of failure, in order *)
}

(** [lower ast] elaborates a parsed program. *)
val lower : Ast.t -> program

(** [lower_traced ast] is [lower] but never raises {!Error}: it returns
    the first hard error alongside the event trace accumulated so far, so
    static analysis can keep reporting on partially-invalid programs. *)
val lower_traced : Ast.t -> traced

(** [compile_string source] parses and lowers in one step. *)
val compile_string : string -> program

(** [compile_file path] reads, parses and lowers a .scaffold file. *)
val compile_file : string -> program
