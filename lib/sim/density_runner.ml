module Machine = Device.Machine
module Compiled = Triq.Compiled

type outcome = {
  distribution : (string * float) list;
  success_rate : float;
  purity : float;
}

let run ?(explicit_t1 = false) (compiled : Compiled.t) spec =
  Obs.Span.with_span
    ~attrs:[ ("machine", Obs.Span.Str compiled.Compiled.machine.Machine.name) ]
    "sim.density"
  @@ fun () ->
  let hardware = compiled.Compiled.hardware in
  let machine = compiled.Compiled.machine in
  let calibration = Machine.calibration machine ~day:compiled.Compiled.day in
  let noise = Noise.create machine calibration in
  let used = Ir.Circuit.used_qubits hardware in
  let k = List.length used in
  if k = 0 then invalid_arg "Density_runner.run: empty circuit";
  if k > 8 then invalid_arg "Density_runner.run: too many qubits for exact simulation";
  let qubit_of =
    let table = Array.make (1 + List.fold_left max 0 used) (-1) in
    List.iteri (fun i q -> table.(q) <- i) used;
    fun h -> table.(h)
  in
  let rho = Density.init k in
  List.iter
    (fun g ->
      match (g : Ir.Gate.t) with
      | Measure _ -> ()
      | One (kind, q) ->
        let cq = qubit_of q in
        Density.apply_one rho (Ir.Matrices.one_q kind) cq;
        let p =
          if explicit_t1 then Noise.gate_error_prob_raw noise g
          else Noise.gate_error_prob noise g
        in
        if p > 0.0 then Density.depolarize_one rho p cq;
        if explicit_t1 then begin
          let gamma = Noise.relaxation_gamma noise g in
          if gamma > 0.0 then Density.amplitude_damp rho gamma cq
        end
      | Two (kind, a, b) ->
        let ca = qubit_of a and cb = qubit_of b in
        Density.apply_two rho (Ir.Matrices.two_q kind) ca cb;
        let p =
          if explicit_t1 then Noise.gate_error_prob_raw noise g
          else Noise.gate_error_prob noise g
        in
        if p > 0.0 then Density.depolarize_two rho p ca cb;
        if explicit_t1 then begin
          let gamma = Noise.relaxation_gamma noise g in
          if gamma > 0.0 then begin
            Density.amplitude_damp rho gamma ca;
            Density.amplitude_damp rho gamma cb
          end
        end
      | Ccx _ | Cswap _ -> invalid_arg "Density_runner.run: not hardware-level")
    hardware.Ir.Circuit.gates;
  let measured_program = spec.Ir.Spec.measured in
  let compact_positions =
    List.map
      (fun p ->
        match List.assoc_opt p compiled.Compiled.readout_map with
        | Some hw -> qubit_of hw
        | None ->
          invalid_arg
            (Printf.sprintf "Density_runner.run: program qubit %d is not measured" p))
      measured_program
  in
  let flip =
    Array.of_list
      (List.map
         (fun p ->
           Noise.readout_flip_prob noise (List.assoc p compiled.Compiled.readout_map))
         measured_program)
  in
  let projected = Dist.project (Density.populations rho) k compact_positions in
  let final = Dist.corrupt_readout projected flip in
  let distribution = Dist.to_strings final in
  (* Exact probabilities: score the spec against a high-resolution count
     rendering so Spec's histogram API applies unchanged. *)
  let counts = Dist.to_counts distribution 10_000_000 in
  {
    distribution;
    success_rate = Ir.Spec.success_rate spec counts;
    purity = Density.purity rho;
  }

let run_batch ?explicit_t1 ?pool pairs =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  Parallel.Pool.map pool (fun (compiled, spec) -> run ?explicit_t1 compiled spec) pairs
