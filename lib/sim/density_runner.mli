(** Exact execution of compiled programs via the density-matrix backend.

    Implements the same noise semantics as the Monte-Carlo {!Runner} —
    each gate followed by its calibrated depolarizing channel, readout
    bits flipped independently — but computes the outcome distribution in
    closed form. Restricted to executables touching at most ~8 hardware
    qubits; used to cross-validate the trajectory sampler and for
    high-precision small-system studies. *)

type outcome = {
  distribution : (string * float) list;
      (** exact readout-corrupted distribution over measured program bits *)
  success_rate : float;
  purity : float;  (** Tr(rho^2) of the final state, before readout *)
}

(** [run ?explicit_t1 compiled spec] executes exactly; [explicit_t1]
    replaces the decoherence fold with amplitude-damping channels. Raises
    [Invalid_argument] when the circuit touches more than 8 qubits. *)
val run : ?explicit_t1:bool -> Triq.Compiled.t -> Ir.Spec.t -> outcome

(** [run_batch pairs] evaluates many (executable, spec) pairs across the
    domain pool (default {!Parallel.Pool.default}), returning outcomes in
    input order. Each evaluation is exact and independent, so results are
    identical to mapping {!run} sequentially, for every pool size. *)
val run_batch :
  ?explicit_t1:bool ->
  ?pool:Parallel.Pool.t ->
  (Triq.Compiled.t * Ir.Spec.t) list ->
  outcome list
