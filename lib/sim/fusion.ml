module Matrix = Mathkit.Matrix

(* One original gate inside a fused step, keyed back to its position in
   the prepared gate stream so error injection can address it. *)
type member = { idx : int; gate : Ir.Gate.t; matrix : Matrix.t }

type step =
  | Apply1 of { q : int; m : Matrix.t; members : member array }
  | Diag1 of {
      q : int;
      d0 : float * float;
      d1 : float * float;
      members : member array;
    }
  | Cnot of { c : int; x : int; members : member array }
  | Cz of { a : int; b : int; members : member array }
  | Swap of { a : int; b : int; members : member array }
  | Iswap of { a : int; b : int; members : member array }
  | Two2 of { m : Matrix.t; a : int; b : int; members : member array }
  | DiagBatch of {
      qs : int array;
      fr : float array;
      fi : float array;
      members : member array;
    }

type t = { steps : step array; n_members : int }

let step_members = function
  | Apply1 { members; _ }
  | Diag1 { members; _ }
  | Cnot { members; _ }
  | Cz { members; _ }
  | Swap { members; _ }
  | Iswap { members; _ }
  | Two2 { members; _ }
  | DiagBatch { members; _ } -> members

let n_steps t = Array.length t.steps
let steps t = t.steps

(* Structural diagonality: the off-diagonal entries must be exactly
   zero. Products of exactly-diagonal matrices stay exactly diagonal,
   so Rz/U1/S/T runs survive fusion as diagonals. *)
let diag_of m =
  let zero (c : Mathkit.Cplx.t) = c.re = 0.0 && c.im = 0.0 in
  if zero (Matrix.get m 0 1) && zero (Matrix.get m 1 0) then
    let d0 = Matrix.get m 0 0 and d1 = Matrix.get m 1 1 in
    Some ((d0.re, d0.im), (d1.re, d1.im))
  else None

(* Most diagonal gates the batcher sees come from compiled circuits'
   Rz/CZ mixtures over a handful of wires; above this many distinct
   wires the factor table stops paying for itself. *)
let max_batch_wires = 8

let is_diag_step = function Diag1 _ | Cz _ -> true | _ -> false

let batch_of run =
  (* Wires in first-appearance order become the table key, high bit
     first. *)
  let wires = ref [] in
  let add q = if not (List.mem q !wires) then wires := q :: !wires in
  List.iter
    (function
      | Diag1 { q; _ } -> add q
      | Cz { a; b; _ } ->
          add a;
          add b
      | _ -> assert false)
    run;
  let qs = Array.of_list (List.rev !wires) in
  let k = Array.length qs in
  let bit_of q =
    let rec find j = if qs.(j) = q then 1 lsl (k - 1 - j) else find (j + 1) in
    find 0
  in
  let size = 1 lsl k in
  let fr = Array.make size 1.0 and fi = Array.make size 0.0 in
  List.iter
    (fun st ->
      match st with
      | Diag1 { q; d0 = r0, i0; d1 = r1, i1; _ } ->
          let bit = bit_of q in
          for key = 0 to size - 1 do
            let cr, ci = if key land bit <> 0 then (r1, i1) else (r0, i0) in
            let r = fr.(key) and i = fi.(key) in
            fr.(key) <- (cr *. r) -. (ci *. i);
            fi.(key) <- (cr *. i) +. (ci *. r)
          done
      | Cz { a; b; _ } ->
          let ba = bit_of a and bb = bit_of b in
          for key = 0 to size - 1 do
            if key land ba <> 0 && key land bb <> 0 then begin
              fr.(key) <- -.fr.(key);
              fi.(key) <- -.fi.(key)
            end
          done
      | _ -> assert false)
    run;
  let members =
    Array.concat (List.map (fun st -> step_members st) run)
  in
  DiagBatch { qs; fr; fi; members }

(* Merge runs of >= 2 consecutive diagonal steps (at least one of them
   a real diagonal multiply — pure-CZ runs stay on the cheaper negation
   kernel) into one table sweep. *)
let batch_diagonals steps =
  let out = ref [] in
  let run = ref [] and run_len = ref 0 and run_diag1 = ref 0 and run_wires = ref [] in
  let flush_run () =
    if !run_len >= 2 && !run_diag1 >= 1 && List.length !run_wires <= max_batch_wires
    then out := batch_of (List.rev !run) :: !out
    else List.iter (fun st -> out := st :: !out) (List.rev !run);
    run := [];
    run_len := 0;
    run_diag1 := 0;
    run_wires := []
  in
  let add_wire q = if not (List.mem q !run_wires) then run_wires := q :: !run_wires in
  List.iter
    (fun st ->
      if is_diag_step st then begin
        (match st with
        | Diag1 { q; _ } ->
            incr run_diag1;
            add_wire q
        | Cz { a; b; _ } ->
            add_wire a;
            add_wire b
        | _ -> ());
        run := st :: !run;
        incr run_len
      end
      else begin
        flush_run ();
        out := st :: !out
      end)
    steps;
  flush_run ();
  List.rev !out

let plan ~n members =
  let steps = ref [] in
  let pending : member list array = Array.make n [] in
  let flush q =
    match pending.(q) with
    | [] -> ()
    | rev_ms ->
        pending.(q) <- [];
        let ms = Array.of_list (List.rev rev_ms) in
        (* Applying g_0 then g_1 ... is the matrix product
           m_last * ... * m_0. *)
        let m = ref ms.(0).matrix in
        for i = 1 to Array.length ms - 1 do
          m := Matrix.mul ms.(i).matrix !m
        done;
        let st =
          match diag_of !m with
          | Some (d0, d1) -> Diag1 { q; d0; d1; members = ms }
          | None -> Apply1 { q; m = !m; members = ms }
        in
        steps := st :: !steps
  in
  Array.iter
    (fun mem ->
      match mem.gate with
      | Ir.Gate.One (_, q) -> pending.(q) <- mem :: pending.(q)
      | Ir.Gate.Two (kind, a, b) ->
          flush a;
          flush b;
          let ms = [| mem |] in
          let st =
            match kind with
            | Ir.Gate.Cnot -> Cnot { c = a; x = b; members = ms }
            | Ir.Gate.Cz -> Cz { a; b; members = ms }
            | Ir.Gate.Swap -> Swap { a; b; members = ms }
            | Ir.Gate.Iswap -> Iswap { a; b; members = ms }
            | Ir.Gate.Xx _ -> Two2 { m = mem.matrix; a; b; members = ms }
          in
          steps := st :: !steps
      | Ir.Gate.Measure _ | Ir.Gate.Ccx _ | Ir.Gate.Cswap _ ->
          invalid_arg "Fusion.plan: only 1Q/2Q gates")
    members;
  for q = 0 to n - 1 do
    flush q
  done;
  {
    steps = Array.of_list (batch_diagonals (List.rev !steps));
    n_members = Array.length members;
  }

(* Apply one original gate, routed to the cheapest kernel for its
   kind — the unfused fallback used when a step contains an erred
   gate. *)
let apply_member sv mem =
  match mem.gate with
  | Ir.Gate.One (_, q) -> (
      match diag_of mem.matrix with
      | Some (d0, d1) -> Statevector.apply_diag_one sv ~d0 ~d1 q
      | None -> Statevector.apply_one sv mem.matrix q)
  | Ir.Gate.Two (Ir.Gate.Cnot, a, b) -> Statevector.apply_cnot sv a b
  | Ir.Gate.Two (Ir.Gate.Cz, a, b) -> Statevector.apply_cz sv a b
  | Ir.Gate.Two (Ir.Gate.Swap, a, b) -> Statevector.apply_swap sv a b
  | Ir.Gate.Two (Ir.Gate.Iswap, a, b) -> Statevector.apply_iswap sv a b
  | Ir.Gate.Two (_, a, b) -> Statevector.apply_two sv mem.matrix a b
  | Ir.Gate.Measure _ | Ir.Gate.Ccx _ | Ir.Gate.Cswap _ -> assert false

let apply_step sv st =
  match st with
  | Apply1 { q; m; _ } -> Statevector.apply_one sv m q
  | Diag1 { q; d0; d1; _ } -> Statevector.apply_diag_one sv ~d0 ~d1 q
  | Cnot { c; x; _ } -> Statevector.apply_cnot sv c x
  | Cz { a; b; _ } -> Statevector.apply_cz sv a b
  | Swap { a; b; _ } -> Statevector.apply_swap sv a b
  | Iswap { a; b; _ } -> Statevector.apply_iswap sv a b
  | Two2 { m; a; b; _ } -> Statevector.apply_two sv m a b
  | DiagBatch { qs; fr; fi; _ } -> Statevector.apply_diag_table sv ~qs ~fr ~fi

let run_clean sv t = Array.iter (apply_step sv) t.steps
