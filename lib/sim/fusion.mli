(** Gate fusion for the dense statevector backend.

    A fusion plan rewrites a prepared 1Q/2Q gate stream into fewer,
    cheaper passes over the amplitude array:

    - maximal runs of 1Q gates on one wire collapse into a single 2x2
      apply (their {!Mathkit.Matrix} product), deferred until a 2Q gate
      touches the wire — a commuting-only reorder, so per-wire gate
      order is preserved exactly;
    - structurally diagonal 2x2s (off-diagonals exactly zero — closed
      under products, so Rz/U1/S/T runs qualify) use the one-multiply
      diagonal kernel;
    - consecutive diagonal steps (diagonal 1Q runs and CZ) over up to 8
      distinct wires merge into one {!Statevector.apply_diag_table}
      sweep;
    - CNOT/CZ/SWAP/iSWAP route to permutation/sign kernels instead of
      the generic 4x4 multiply.

    Every step remembers its constituent gates ({!member}, keyed by
    position in the prepared stream), so trajectory simulation with
    per-gate Pauli error injection can execute a step unfused exactly
    when one of its gates drew an error, preserving the per-wire
    operation order the error model depends on. *)

type member = { idx : int; gate : Ir.Gate.t; matrix : Mathkit.Matrix.t }

type step

type t

(** [plan ~n members] fuses a prepared gate stream over [n] wires.
    Gates must be 1Q/2Q with in-range compact operands; [member.idx] is
    preserved into the plan for error-flag addressing. Raises
    [Invalid_argument] on [Measure]/[Ccx]/[Cswap]. *)
val plan : n:int -> member array -> t

val n_steps : t -> int

val steps : t -> step array

(** The original gates folded into a step, in program order. *)
val step_members : step -> member array

(** Apply a fused step to the state. *)
val apply_step : Statevector.t -> step -> unit

(** Apply one original gate through the cheapest kernel for its kind
    (diagonal / permutation / generic) — the unfused fallback for steps
    containing erred gates. *)
val apply_member : Statevector.t -> member -> unit

(** Run the whole plan (the clean, error-free path). *)
val run_clean : Statevector.t -> t -> unit
