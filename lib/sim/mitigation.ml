let correct ~flip dist =
  let m = Array.length flip in
  Array.iter
    (fun f ->
      if f < 0.0 || f >= 0.5 then
        invalid_arg "Mitigation.correct: flip probability must be in [0, 0.5)")
    flip;
  List.iter
    (fun (bits, _) ->
      if String.length bits <> m then
        invalid_arg "Mitigation.correct: bitstring length mismatch")
    dist;
  (* Dense vector over 2^m outcomes. *)
  let dim = 1 lsl m in
  let v = Array.make dim 0.0 in
  List.iter
    (fun (bits, p) ->
      let idx =
        String.fold_left (fun acc c -> (acc lsl 1) lor (if c = '1' then 1 else 0)) 0 bits
      in
      v.(idx) <- v.(idx) +. p)
    dist;
  (* Apply the inverse 2x2 confusion matrix bit by bit:
     A = [[1-f, f]; [f, 1-f]], A^-1 = 1/(1-2f) [[1-f, -f]; [-f, 1-f]]. *)
  for i = 0 to m - 1 do
    let f = flip.(i) in
    let scale = 1.0 /. (1.0 -. (2.0 *. f)) in
    let stride = 1 lsl (m - 1 - i) in
    let idx = ref 0 in
    while !idx < dim do
      let block_end = !idx + stride in
      while !idx < block_end do
        let x0 = v.(!idx) and x1 = v.(!idx + stride) in
        v.(!idx) <- scale *. (((1.0 -. f) *. x0) -. (f *. x1));
        v.(!idx + stride) <- scale *. (((1.0 -. f) *. x1) -. (f *. x0));
        incr idx
      done;
      idx := !idx + stride
    done
  done;
  (* Clip quasi-probabilities and renormalize. *)
  let total = ref 0.0 in
  Array.iteri
    (fun i x ->
      let x = Float.max 0.0 x in
      v.(i) <- x;
      total := !total +. x)
    v;
  if !total > 0.0 then Array.iteri (fun i x -> v.(i) <- x /. !total) v;
  Dist.to_strings v

let mitigated_success ?seed ?trials ?trajectories (compiled : Triq.Compiled.t) spec =
  let outcome =
    Runner.simulate
      ~config:(Runner.Config.make ?seed ?trials ?trajectories ())
      compiled spec
  in
  let machine = compiled.Triq.Compiled.machine in
  let calibration =
    Device.Machine.calibration machine ~day:compiled.Triq.Compiled.day
  in
  let noise = Noise.create machine calibration in
  let flip =
    Array.of_list
      (List.map
         (fun p ->
           Noise.readout_flip_prob noise
             (List.assoc p compiled.Triq.Compiled.readout_map))
         spec.Ir.Spec.measured)
  in
  let mitigated = correct ~flip outcome.Runner.distribution in
  let counts = Dist.to_counts mitigated outcome.Runner.trials in
  (outcome.Runner.success_rate, Ir.Spec.success_rate spec counts)
