module Rng = Mathkit.Rng
module Machine = Device.Machine
module Compiled = Triq.Compiled

type outcome = {
  distribution : (string * float) list;
  counts : (string * int) list;
  success_rate : float;
  dominant_correct : bool;
  trials : int;
  trajectories : int;
}

(* Trajectories are grouped into fixed-size blocks: a block is the unit of
   work handed to the domain pool, and block partial sums are folded in
   block order on the calling domain. Because the blocking (and the
   per-trajectory RNG streams) never depend on the pool size, the result
   is bit-for-bit identical for every [-j]. *)
let traj_block = 25

module Config = struct
  type t = {
    seed : int;
    trials : int;
    trajectories : int;
    day : int option;
    sample_counts : bool;
    explicit_t1 : bool;
    pool : Parallel.Pool.t option;
  }

  let default =
    {
      seed = 0xC0FFEE;
      trials = 8192;
      trajectories = 300;
      day = None;
      sample_counts = false;
      explicit_t1 = false;
      pool = None;
    }

  let make ?(seed = 0xC0FFEE) ?(trials = 8192) ?(trajectories = 300) ?day
      ?(sample_counts = false) ?(explicit_t1 = false) ?pool () =
    { seed; trials; trajectories; day; sample_counts; explicit_t1; pool }
end

let m_trajectories = Obs.Metrics.counter "sim.trajectories"
let m_blocks = Obs.Metrics.counter "sim.blocks"

let simulate ?(config = Config.default) compiled spec =
  let { Config.seed; trials; trajectories; day; sample_counts; explicit_t1; pool } =
    config
  in
  (* Zero trajectories would silently divide the averaged distribution by
     zero and return all-NaN outcomes; zero trials the same for counts. *)
  if trials < 1 then invalid_arg "Runner.simulate: trials must be >= 1";
  if trajectories < 1 then invalid_arg "Runner.simulate: trajectories must be >= 1";
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  Obs.Span.with_span
    ~attrs:
      [
        ("machine", Obs.Span.Str compiled.Compiled.machine.Machine.name);
        ("trajectories", Obs.Span.Int trajectories);
        ("trials", Obs.Span.Int trials);
      ]
    "sim.run"
  @@ fun () ->
  let hardware = compiled.Compiled.hardware in
  let machine = compiled.Compiled.machine in
  (* [day] overrides the calibration the executable runs under — by default
     the one it was compiled against; passing a later day models running a
     stale executable after the machine drifted. *)
  let day = Option.value ~default:compiled.Compiled.day day in
  let calibration = Machine.calibration machine ~day in
  let noise = Noise.create machine calibration in
  (* Simulate only the qubits the hardware circuit touches. *)
  let used = Ir.Circuit.used_qubits hardware in
  let k = List.length used in
  if k = 0 then invalid_arg "Runner.simulate: empty circuit";
  if k > 20 then invalid_arg "Runner.simulate: circuit touches too many qubits to simulate";
  (* Hardware qubit -> compact simulated index, O(1) on the hot path. *)
  let qubit_of =
    let table = Array.make (1 + List.fold_left max 0 used) (-1) in
    List.iteri (fun i q -> table.(q) <- i) used;
    fun h -> table.(h)
  in
  (* Per-gate precomputation: matrices, compact operands, error probs. *)
  let body =
    List.filter (fun g -> not (Ir.Gate.is_measure g)) hardware.Ir.Circuit.gates
  in
  let prepared =
    Array.of_list
      (List.map
         (fun g ->
           (* With explicit T1 the decoherence contribution is modelled as a
              relaxation channel rather than folded into the Pauli error. *)
           let p =
             if explicit_t1 then Noise.gate_error_prob_raw noise g
             else Noise.gate_error_prob noise g
           in
           let gamma = if explicit_t1 then Noise.relaxation_gamma noise g else 0.0 in
           match (g : Ir.Gate.t) with
           | One (kind, q) -> `One (Ir.Matrices.one_q kind, qubit_of q, p, gamma)
           | Two (kind, a, b) ->
             `Two (Ir.Matrices.two_q kind, qubit_of a, qubit_of b, p, gamma)
           | Measure _ | Ccx _ | Cswap _ -> assert false)
         body)
  in
  let n_gates = Array.length prepared in
  let pauli = [| Ir.Matrices.one_q X; Ir.Matrices.one_q Y; Ir.Matrices.one_q Z |] in
  (* Every trajectory draws from its own stream, split off the master in
     trajectory order; the remaining master stream serves shot sampling.
     Splitting decouples a trajectory's randomness from whichever domain
     happens to execute it. *)
  let master = Rng.create seed in
  let traj_rng = Array.make (max trajectories 1) master in
  for t = 0 to trajectories - 1 do
    traj_rng.(t) <- Rng.split master
  done;
  let counts_rng = Rng.split master in
  (* Sample the error pattern first: clean trajectories (the common case on
     good mappings) reuse the cached ideal output without re-simulating. *)
  let sample_error_flags rng =
    let any = ref false in
    let flags = Array.make n_gates false in
    for i = 0 to n_gates - 1 do
      let p =
        match prepared.(i) with `One (_, _, p, _) | `Two (_, _, _, p, _) -> p
      in
      let e = p > 0.0 && Rng.bool rng p in
      if e then any := true;
      flags.(i) <- e
    done;
    (flags, !any)
  in
  let run_trajectory rng flags =
    let state = Statevector.init k in
    for i = 0 to n_gates - 1 do
      let erred = flags.(i) in
      match prepared.(i) with
      | `One (m, q, _, gamma) ->
        Statevector.apply_one state m q;
        if erred then Statevector.apply_one state pauli.(Rng.int rng 3) q;
        if gamma > 0.0 then ignore (Statevector.relax state q ~gamma rng)
      | `Two (m, a, b, _, gamma) ->
        Statevector.apply_two state m a b;
        if erred then begin
          let rec draw () =
            let pa = Rng.int rng 4 and pb = Rng.int rng 4 in
            if pa = 0 && pb = 0 then draw () else (pa, pb)
          in
          let pa, pb = draw () in
          if pa > 0 then Statevector.apply_one state pauli.(pa - 1) a;
          if pb > 0 then Statevector.apply_one state pauli.(pb - 1) b
        end;
        if gamma > 0.0 then begin
          ignore (Statevector.relax state a ~gamma rng);
          ignore (Statevector.relax state b ~gamma rng)
        end
    done;
    state
  in
  (* Clean trajectories all coincide: compute the ideal output once and
     reuse it whenever the sampled error pattern is empty. *)
  let ideal_state = Statevector.init k in
  Array.iter
    (fun instr ->
      match instr with
      | `One (m, q, _, _) -> Statevector.apply_one ideal_state m q
      | `Two (m, a, b, _, _) -> Statevector.apply_two ideal_state m a b)
    prepared;
  let ideal_probs = Statevector.probabilities ideal_state in
  let dim = 1 lsl k in
  let run_block b =
    let partial = Array.make dim 0.0 in
    let last = min trajectories ((b + 1) * traj_block) - 1 in
    for t = b * traj_block to last do
      let rng = traj_rng.(t) in
      let probs =
        let flags, any = sample_error_flags rng in
        (* Explicit relaxation is stochastic in every trajectory, so the
           clean-trajectory shortcut only applies without it. *)
        if (not any) && not explicit_t1 then ideal_probs
        else Statevector.probabilities (run_trajectory rng flags)
      in
      for i = 0 to dim - 1 do
        partial.(i) <- partial.(i) +. probs.(i)
      done
    done;
    partial
  in
  let n_blocks = (trajectories + traj_block - 1) / traj_block in
  Obs.Metrics.incr m_trajectories ~by:trajectories;
  Obs.Metrics.incr m_blocks ~by:n_blocks;
  (* Each trajectory block gets its own span so a Chrome trace shows how
     blocks spread across pool domains (tid = domain). The wrapper only
     exists while the sink is enabled — the common path hands the bare
     closure to the pool. *)
  let traced_block =
    if Obs.Span.enabled () then fun b ->
      Obs.Span.with_span
        ~attrs:[ ("block", Obs.Span.Int b) ]
        "sim.block"
        (fun () -> run_block b)
    else run_block
  in
  let partials = Parallel.Pool.map pool traced_block (List.init n_blocks Fun.id) in
  let avg = Array.make dim 0.0 in
  List.iter
    (fun partial ->
      for i = 0 to dim - 1 do
        avg.(i) <- avg.(i) +. partial.(i)
      done)
    partials;
  for i = 0 to dim - 1 do
    avg.(i) <- avg.(i) /. float_of_int trajectories
  done;
  (* Readout: program qubits in spec order -> hardware -> compact. *)
  let measured_program = spec.Ir.Spec.measured in
  let compact_positions =
    List.map
      (fun p ->
        match List.assoc_opt p compiled.Compiled.readout_map with
        | Some hw -> qubit_of hw
        | None ->
          invalid_arg
            (Printf.sprintf "Runner.simulate: program qubit %d is not measured" p))
      measured_program
  in
  let flip =
    Array.of_list
      (List.map
         (fun p ->
           let hw = List.assoc p compiled.Compiled.readout_map in
           Noise.readout_flip_prob noise hw)
         measured_program)
  in
  let projected = Dist.project avg k compact_positions in
  let final = Dist.corrupt_readout projected flip in
  let distribution = Dist.to_strings final in
  let counts =
    if sample_counts then begin
      (* Realistic multinomial shot noise instead of deterministic
         largest-remainder rounding. *)
      let table = Hashtbl.create 16 in
      let outcomes = Array.of_list distribution in
      let cumulative =
        let acc = ref 0.0 in
        Array.map
          (fun (_, p) ->
            acc := !acc +. p;
            !acc)
          outcomes
      in
      let total = cumulative.(Array.length cumulative - 1) in
      for _ = 1 to trials do
        let r = Rng.float counts_rng *. total in
        let rec find i =
          if i >= Array.length cumulative - 1 || cumulative.(i) >= r then i
          else find (i + 1)
        in
        let bits, _ = outcomes.(find 0) in
        Hashtbl.replace table bits (1 + Option.value ~default:0 (Hashtbl.find_opt table bits))
      done;
      Hashtbl.fold (fun bits n acc -> (bits, n) :: acc) table []
      |> List.sort (fun (_, n1) (_, n2) -> compare n2 n1)
    end
    else Dist.to_counts distribution trials
  in
  {
    distribution;
    counts;
    success_rate = Ir.Spec.success_rate spec counts;
    dominant_correct = Ir.Spec.dominates spec counts;
    trials;
    trajectories;
  }

let run ?seed ?trials ?trajectories ?day ?sample_counts ?explicit_t1 ?pool
    compiled spec =
  simulate
    ~config:(Config.make ?seed ?trials ?trajectories ?day ?sample_counts
               ?explicit_t1 ?pool ())
    compiled spec

let ideal_distribution (circuit : Ir.Circuit.t) ~measured =
  let state = Statevector.run circuit in
  let k = circuit.Ir.Circuit.n_qubits in
  Dist.to_strings (Dist.project (Statevector.probabilities state) k measured)
