module Rng = Mathkit.Rng
module Machine = Device.Machine
module Compiled = Triq.Compiled

type outcome = {
  distribution : (string * float) list;
  counts : (string * int) list;
  success_rate : float;
  dominant_correct : bool;
  trials : int;
  trajectories : int;
}

(* Trajectories are grouped into fixed-size blocks: a block is the unit of
   work handed to the domain pool, and block partial sums are folded in
   block order on the calling domain. Because the blocking (and the
   per-trajectory RNG streams) never depend on the pool size, the result
   is bit-for-bit identical for every [-j]. *)
let traj_block = 25

module Config = struct
  type backend = Auto | Statevector | Stabilizer

  let backend_of_string = function
    | "auto" -> Some Auto
    | "statevector" -> Some Statevector
    | "stabilizer" -> Some Stabilizer
    | _ -> None

  let backend_to_string = function
    | Auto -> "auto"
    | Statevector -> "statevector"
    | Stabilizer -> "stabilizer"

  type t = {
    seed : int;
    trials : int;
    trajectories : int;
    day : int option;
    sample_counts : bool;
    explicit_t1 : bool;
    pool : Parallel.Pool.t option;
    backend : backend;
    fusion : bool;
  }

  let default =
    {
      seed = 0xC0FFEE;
      trials = 8192;
      trajectories = 300;
      day = None;
      sample_counts = false;
      explicit_t1 = false;
      pool = None;
      backend = Auto;
      fusion = true;
    }

  let make ?(seed = 0xC0FFEE) ?(trials = 8192) ?(trajectories = 300) ?day
      ?(sample_counts = false) ?(explicit_t1 = false) ?pool ?(backend = Auto)
      ?(fusion = true) () =
    {
      seed;
      trials;
      trajectories;
      day;
      sample_counts;
      explicit_t1;
      pool;
      backend;
      fusion;
    }
end

let m_trajectories = Obs.Metrics.counter "sim.trajectories"
let m_blocks = Obs.Metrics.counter "sim.blocks"

(* One prepared (compacted) gate: operands are compact simulator
   indices, matrices/error probabilities precomputed. *)
type pgate = {
  cg : Ir.Gate.t;
  matrix : Mathkit.Matrix.t;
  p_err : float;
  gamma : float;
}

(* Under [Auto], circuits whose Clifford prefix has at least this many
   gates run the prefix on the stabilizer tableau before materializing
   amplitudes for the dense tail. *)
let hybrid_threshold = 4

let simulate ?(config = Config.default) compiled spec =
  let {
    Config.seed;
    trials;
    trajectories;
    day;
    sample_counts;
    explicit_t1;
    pool;
    backend;
    fusion;
  } =
    config
  in
  (* Zero trajectories would silently divide the averaged distribution by
     zero and return all-NaN outcomes; zero trials the same for counts. *)
  if trials < 1 then invalid_arg "Runner.simulate: trials must be >= 1";
  if trajectories < 1 then invalid_arg "Runner.simulate: trajectories must be >= 1";
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  Obs.Span.with_span
    ~attrs:
      [
        ("machine", Obs.Span.Str compiled.Compiled.machine.Machine.name);
        ("trajectories", Obs.Span.Int trajectories);
        ("trials", Obs.Span.Int trials);
      ]
    "sim.run"
  @@ fun () ->
  let hardware = compiled.Compiled.hardware in
  let machine = compiled.Compiled.machine in
  (* [day] overrides the calibration the executable runs under — by default
     the one it was compiled against; passing a later day models running a
     stale executable after the machine drifted. *)
  let day = Option.value ~default:compiled.Compiled.day day in
  let calibration = Machine.calibration machine ~day in
  let noise = Noise.create machine calibration in
  (* Simulate only the qubits the hardware circuit touches. *)
  let used = Ir.Circuit.used_qubits hardware in
  let k = List.length used in
  if k = 0 then invalid_arg "Runner.simulate: empty circuit";
  if k > 20 then invalid_arg "Runner.simulate: circuit touches too many qubits to simulate";
  (* Hardware qubit -> compact simulated index, O(1) on the hot path. *)
  let qubit_of =
    let table = Array.make (1 + List.fold_left max 0 used) (-1) in
    List.iteri (fun i q -> table.(q) <- i) used;
    fun h -> table.(h)
  in
  (* Per-gate precomputation: matrices, compact operands, error probs. *)
  let body =
    List.filter (fun g -> not (Ir.Gate.is_measure g)) hardware.Ir.Circuit.gates
  in
  let prepared =
    Array.of_list
      (List.map
         (fun g ->
           (* With explicit T1 the decoherence contribution is modelled as a
              relaxation channel rather than folded into the Pauli error. *)
           let p =
             if explicit_t1 then Noise.gate_error_prob_raw noise g
             else Noise.gate_error_prob noise g
           in
           let gamma = if explicit_t1 then Noise.relaxation_gamma noise g else 0.0 in
           match (g : Ir.Gate.t) with
           | One (kind, q) ->
             {
               cg = Ir.Gate.One (kind, qubit_of q);
               matrix = Ir.Matrices.one_q kind;
               p_err = p;
               gamma;
             }
           | Two (kind, a, b) ->
             {
               cg = Ir.Gate.Two (kind, qubit_of a, qubit_of b);
               matrix = Ir.Matrices.two_q kind;
               p_err = p;
               gamma;
             }
           | Measure _ | Ccx _ | Cswap _ -> assert false)
         body)
  in
  let n_gates = Array.length prepared in
  (* Backend dispatch: derived Clifford actions (memoized per gate
     shape) decide how much of the circuit the polynomial-time tableau
     can carry. Explicit T1 relaxation is not a Clifford channel, so it
     pins the dense backend. *)
  let actions =
    Array.map (fun pg -> Dataflow.Tableau.Action.of_gate pg.cg) prepared
  in
  let qs_arr =
    Array.map (fun pg -> Array.of_list (Ir.Gate.qubits pg.cg)) prepared
  in
  let prefix_len =
    let i = ref 0 in
    while !i < n_gates && actions.(!i) <> None do incr i done;
    !i
  in
  let mode =
    match backend with
    | Config.Statevector -> `Sv
    | Config.Stabilizer ->
      if explicit_t1 then
        invalid_arg
          "Runner.simulate: stabilizer backend cannot model explicit T1 \
           relaxation";
      if prefix_len < n_gates then
        invalid_arg
          "Runner.simulate: stabilizer backend requires a Clifford-only \
           circuit";
      `Stab
    | Config.Auto ->
      if explicit_t1 then `Sv
      else if prefix_len = n_gates then `Stab
      else if prefix_len >= hybrid_threshold then `Hybrid
      else `Sv
  in
  let mode_name =
    match mode with `Stab -> "stabilizer" | `Hybrid -> "hybrid" | `Sv -> "statevector"
  in
  (* Fusion plans (statevector paths only; explicit T1 interleaves a
     stochastic channel after every gate, which fused groups cannot
     honor). The plan depends only on the circuit, never on the pool or
     the error draws, so cross-pool determinism is preserved. *)
  let use_fusion = fusion && not explicit_t1 in
  let members_of lo hi =
    Array.init (hi - lo) (fun j ->
        let pg = prepared.(lo + j) in
        { Fusion.idx = lo + j; gate = pg.cg; matrix = pg.matrix })
  in
  let full_plan, tail_plan, apps =
    Obs.Span.with_span
      ~attrs:
        [
          ("backend", Obs.Span.Str mode_name);
          ("fusion", Obs.Span.Str (if use_fusion then "on" else "off"));
          ("gates", Obs.Span.Int n_gates);
          ("clifford_prefix", Obs.Span.Int prefix_len);
        ]
      "sim.prepare"
    @@ fun () ->
    (* Tableau-borne gates (the whole circuit under [`Stab], the prefix
       under [`Hybrid]) compile to dense per-gate lookup tables. *)
    let n_apps =
      match mode with `Stab -> n_gates | `Hybrid -> prefix_len | `Sv -> 0
    in
    let apps =
      Array.init n_apps (fun i ->
          Stabilizer.compile_action (Option.get actions.(i)) qs_arr.(i))
    in
    match mode with
    | `Sv when use_fusion && n_gates > 0 ->
      (Some (Fusion.plan ~n:k (members_of 0 n_gates)), None, apps)
    | `Hybrid when use_fusion && prefix_len < n_gates ->
      (None, Some (Fusion.plan ~n:k (members_of prefix_len n_gates)), apps)
    | _ -> (None, None, apps)
  in
  let pauli = [| Ir.Matrices.one_q X; Ir.Matrices.one_q Y; Ir.Matrices.one_q Z |] in
  let tab_pauli = [| Stabilizer.X; Stabilizer.Y; Stabilizer.Z |] in
  (* A 2Q error draws a non-identity Pauli pair by rejection. *)
  let rec draw_two rng =
    let pa = Rng.int rng 4 and pb = Rng.int rng 4 in
    if pa = 0 && pb = 0 then draw_two rng else (pa, pb)
  in
  let inject_sv state rng (cg : Ir.Gate.t) =
    match cg with
    | One (_, q) -> Statevector.apply_one state pauli.(Rng.int rng 3) q
    | Two (_, a, b) ->
      let pa, pb = draw_two rng in
      if pa > 0 then Statevector.apply_one state pauli.(pa - 1) a;
      if pb > 0 then Statevector.apply_one state pauli.(pb - 1) b
    | Measure _ | Ccx _ | Cswap _ -> assert false
  in
  let inject_tab tab rng (cg : Ir.Gate.t) =
    match cg with
    | One (_, q) -> Stabilizer.apply_pauli tab q tab_pauli.(Rng.int rng 3)
    | Two (_, a, b) ->
      let pa, pb = draw_two rng in
      if pa > 0 then Stabilizer.apply_pauli tab a tab_pauli.(pa - 1);
      if pb > 0 then Stabilizer.apply_pauli tab b tab_pauli.(pb - 1)
    | Measure _ | Ccx _ | Cswap _ -> assert false
  in
  (* Same error-Pauli draws as [inject_tab] (identical RNG consumption),
     but as qubit-indexed bit masks for single-row propagation. Pauli
     index order matches [tab_pauli]: 0 = X, 1 = Y, 2 = Z. *)
  let mask_of p q =
    match p with
    | 0 -> (1 lsl q, 0)
    | 1 -> (1 lsl q, 1 lsl q)
    | _ -> (0, 1 lsl q)
  in
  let err_masks rng (cg : Ir.Gate.t) =
    match cg with
    | One (_, q) -> mask_of (Rng.int rng 3) q
    | Two (_, a, b) ->
      let pa, pb = draw_two rng in
      let xa, za = if pa > 0 then mask_of (pa - 1) a else (0, 0) in
      let xb, zb = if pb > 0 then mask_of (pb - 1) b else (0, 0) in
      (xa lor xb, za lor zb)
    | Measure _ | Ccx _ | Cswap _ -> assert false
  in
  (* Every trajectory draws from its own stream, split off the master in
     trajectory order; the remaining master stream serves shot sampling.
     Splitting decouples a trajectory's randomness from whichever domain
     happens to execute it. *)
  let master = Rng.create seed in
  let traj_rng = Array.make (max trajectories 1) master in
  for t = 0 to trajectories - 1 do
    traj_rng.(t) <- Rng.split master
  done;
  let counts_rng = Rng.split master in
  (* Sample the error pattern first: clean trajectories (the common case on
     good mappings) reuse the cached ideal output without re-simulating. *)
  let sample_error_flags rng =
    let any = ref false in
    let flags = Array.make n_gates false in
    for i = 0 to n_gates - 1 do
      let p = prepared.(i).p_err in
      let e = p > 0.0 && Rng.bool rng p in
      if e then any := true;
      flags.(i) <- e
    done;
    (flags, !any)
  in
  (* Unfused statevector execution of gates [lo, hi) with error
     injection — the fusion-off and explicit-T1 path. *)
  let run_range_sv state rng flags lo hi =
    for i = lo to hi - 1 do
      let pg = prepared.(i) in
      (match pg.cg with
      | One (_, q) -> Statevector.apply_one state pg.matrix q
      | Two (_, a, b) -> Statevector.apply_two state pg.matrix a b
      | Measure _ | Ccx _ | Cswap _ -> assert false);
      if flags.(i) then inject_sv state rng pg.cg;
      if pg.gamma > 0.0 then
        match pg.cg with
        | One (_, q) -> ignore (Statevector.relax state q ~gamma:pg.gamma rng)
        | Two (_, a, b) ->
          ignore (Statevector.relax state a ~gamma:pg.gamma rng);
          ignore (Statevector.relax state b ~gamma:pg.gamma rng)
        | Measure _ | Ccx _ | Cswap _ -> assert false
    done
  in
  (* Fused execution: a step whose gates are all clean applies as one
     kernel pass; a step containing an erred gate falls back to its
     member gates one by one, injecting the Pauli right after the erred
     gate (per-wire order is preserved by construction, so this is
     exact). *)
  let run_plan state rng flags plan =
    Array.iter
      (fun step ->
        let ms = Fusion.step_members step in
        let erred = Array.exists (fun (m : Fusion.member) -> flags.(m.idx)) ms in
        if erred then
          Array.iter
            (fun (m : Fusion.member) ->
              Fusion.apply_member state m;
              if flags.(m.idx) then inject_sv state rng m.gate)
            ms
        else Fusion.apply_step state step)
      (Fusion.steps plan)
  in
  (* Tableau execution of the (Clifford) gates [lo, hi): Pauli errors
     are themselves Clifford, so erred trajectories stay polynomial. *)
  let run_range_tab tab rng flags lo hi =
    for i = lo to hi - 1 do
      Stabilizer.apply_app tab apps.(i);
      if flags.(i) then inject_tab tab rng prepared.(i).cg
    done
  in
  let clean_tab hi =
    let tab = Stabilizer.init k in
    for i = 0 to hi - 1 do
      Stabilizer.apply_app tab apps.(i)
    done;
    tab
  in
  (* Per-mode shared precomputation. [`Stab]: the ideal end-state's
     frozen read-out — error trajectories never touch a tableau, they
     only propagate each error Pauli to the circuit end (one row, O(1)
     per gate) and re-price the support's base point. [`Hybrid]: the
     clean prefix state, copied whenever no prefix gate erred (the
     common case — the prefix is a minority of the gates). *)
  let stab_readout =
    match mode with
    | `Stab -> Some (Stabilizer.readout (clean_tab n_gates))
    | `Hybrid | `Sv -> None
  in
  let prefix_state =
    match mode with
    | `Hybrid -> Some (Stabilizer.to_statevector (clean_tab prefix_len))
    | `Stab | `Sv -> None
  in
  let clean_range_sv state lo hi =
    for i = lo to hi - 1 do
      let pg = prepared.(i) in
      match pg.cg with
      | One (_, q) -> Statevector.apply_one state pg.matrix q
      | Two (_, a, b) -> Statevector.apply_two state pg.matrix a b
      | Measure _ | Ccx _ | Cswap _ -> assert false
    done
  in
  let run_trajectory rng flags =
    match mode with
    | `Stab ->
      (* Sign-flip trick: the end-state of an erred trajectory is
         P' |ideal> for some Pauli P' (each injected error conjugated
         through the remaining gates), and a Pauli only flips the signs
         of the stabilizer rows it anticommutes with. Flips from
         successive errors xor, so order is irrelevant. *)
      let readout = Option.get stab_readout in
      let flips = ref 0 in
      for i = 0 to n_gates - 1 do
        if flags.(i) then begin
          let xm0, zm0 = err_masks rng prepared.(i).cg in
          let xm = ref xm0 and zm = ref zm0 in
          for j = i + 1 to n_gates - 1 do
            let x', z' = Stabilizer.conjugate_masks apps.(j) ~xm:!xm ~zm:!zm in
            xm := x';
            zm := z'
          done;
          flips := !flips lxor Stabilizer.flip_mask readout ~xm:!xm
        end
      done;
      Stabilizer.readout_probabilities readout ~flips:!flips
    | `Hybrid ->
      let prefix_erred =
        let e = ref false in
        for i = 0 to prefix_len - 1 do
          if flags.(i) then e := true
        done;
        !e
      in
      let state =
        if prefix_erred then begin
          let tab = Stabilizer.init k in
          run_range_tab tab rng flags 0 prefix_len;
          Stabilizer.to_statevector tab
        end
        else Statevector.copy (Option.get prefix_state)
      in
      (match tail_plan with
      | Some plan -> run_plan state rng flags plan
      | None -> run_range_sv state rng flags prefix_len n_gates);
      Statevector.probabilities state
    | `Sv ->
      let state = Statevector.init k in
      (match full_plan with
      | Some plan -> run_plan state rng flags plan
      | None -> run_range_sv state rng flags 0 n_gates);
      Statevector.probabilities state
  in
  (* Clean trajectories all coincide: compute the ideal output once and
     reuse it whenever the sampled error pattern is empty. *)
  let ideal_probs =
    match mode with
    | `Stab ->
      Stabilizer.readout_probabilities (Option.get stab_readout) ~flips:0
    | `Hybrid ->
      let state = Statevector.copy (Option.get prefix_state) in
      (match tail_plan with
      | Some plan -> Fusion.run_clean state plan
      | None -> clean_range_sv state prefix_len n_gates);
      Statevector.probabilities state
    | `Sv ->
      let state = Statevector.init k in
      (match full_plan with
      | Some plan -> Fusion.run_clean state plan
      | None -> clean_range_sv state 0 n_gates);
      Statevector.probabilities state
  in
  let dim = 1 lsl k in
  let run_block b =
    let partial = Array.make dim 0.0 in
    let last = min trajectories ((b + 1) * traj_block) - 1 in
    for t = b * traj_block to last do
      let rng = traj_rng.(t) in
      let probs =
        let flags, any = sample_error_flags rng in
        (* Explicit relaxation is stochastic in every trajectory, so the
           clean-trajectory shortcut only applies without it. *)
        if (not any) && not explicit_t1 then ideal_probs
        else run_trajectory rng flags
      in
      for i = 0 to dim - 1 do
        partial.(i) <- partial.(i) +. probs.(i)
      done
    done;
    partial
  in
  let n_blocks = (trajectories + traj_block - 1) / traj_block in
  Obs.Metrics.incr m_trajectories ~by:trajectories;
  Obs.Metrics.incr m_blocks ~by:n_blocks;
  (* Each trajectory block gets its own span so a Chrome trace shows how
     blocks spread across pool domains (tid = domain). The wrapper only
     exists while the sink is enabled — the common path hands the bare
     closure to the pool. *)
  let traced_block =
    if Obs.Span.enabled () then fun b ->
      Obs.Span.with_span
        ~attrs:[ ("block", Obs.Span.Int b) ]
        "sim.block"
        (fun () -> run_block b)
    else run_block
  in
  let partials = Parallel.Pool.map pool traced_block (List.init n_blocks Fun.id) in
  let avg = Array.make dim 0.0 in
  List.iter
    (fun partial ->
      for i = 0 to dim - 1 do
        avg.(i) <- avg.(i) +. partial.(i)
      done)
    partials;
  for i = 0 to dim - 1 do
    avg.(i) <- avg.(i) /. float_of_int trajectories
  done;
  (* Readout: program qubits in spec order -> hardware -> compact. *)
  let measured_program = spec.Ir.Spec.measured in
  let compact_positions =
    List.map
      (fun p ->
        match List.assoc_opt p compiled.Compiled.readout_map with
        | Some hw -> qubit_of hw
        | None ->
          invalid_arg
            (Printf.sprintf "Runner.simulate: program qubit %d is not measured" p))
      measured_program
  in
  let flip =
    Array.of_list
      (List.map
         (fun p ->
           let hw = List.assoc p compiled.Compiled.readout_map in
           Noise.readout_flip_prob noise hw)
         measured_program)
  in
  let projected = Dist.project avg k compact_positions in
  let final = Dist.corrupt_readout projected flip in
  let distribution = Dist.to_strings final in
  let counts =
    if sample_counts then begin
      (* Realistic multinomial shot noise instead of deterministic
         largest-remainder rounding. *)
      let table = Hashtbl.create 16 in
      let outcomes = Array.of_list distribution in
      let cumulative =
        let acc = ref 0.0 in
        Array.map
          (fun (_, p) ->
            acc := !acc +. p;
            !acc)
          outcomes
      in
      let total = cumulative.(Array.length cumulative - 1) in
      for _ = 1 to trials do
        let r = Rng.float counts_rng *. total in
        let rec find i =
          if i >= Array.length cumulative - 1 || cumulative.(i) >= r then i
          else find (i + 1)
        in
        let bits, _ = outcomes.(find 0) in
        Hashtbl.replace table bits (1 + Option.value ~default:0 (Hashtbl.find_opt table bits))
      done;
      Hashtbl.fold (fun bits n acc -> (bits, n) :: acc) table []
      |> List.sort (fun (_, n1) (_, n2) -> compare n2 n1)
    end
    else Dist.to_counts distribution trials
  in
  {
    distribution;
    counts;
    success_rate = Ir.Spec.success_rate spec counts;
    dominant_correct = Ir.Spec.dominates spec counts;
    trials;
    trajectories;
  }

let run ?seed ?trials ?trajectories ?day ?sample_counts ?explicit_t1 ?pool
    compiled spec =
  simulate
    ~config:(Config.make ?seed ?trials ?trajectories ?day ?sample_counts
               ?explicit_t1 ?pool ())
    compiled spec

let ideal_distribution (circuit : Ir.Circuit.t) ~measured =
  let state = Statevector.run circuit in
  let k = circuit.Ir.Circuit.n_qubits in
  Dist.to_strings (Dist.project (Statevector.probabilities state) k measured)
