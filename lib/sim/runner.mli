(** Execute compiled programs under noise and score them the way the paper
    does.

    A run Monte-Carlo-samples error trajectories of the compiled hardware
    circuit (each physical gate fails with its calibrated probability and
    injects a random Pauli), averages the resulting output distributions,
    corrupts them with per-qubit readout error analytically, and reports
    the success rate: the probability mass on the correct answer, i.e. the
    expected fraction of repeated trials returning it. Counts are derived
    from the distribution at the requested trial count (8192 for
    superconducting machines and 5000 for UMDTI in the paper).

    Only the qubits the circuit actually touches are simulated, so a
    5-qubit benchmark mapped onto a 16-qubit device stays cheap.

    Trajectories run in parallel across a {!Parallel.Pool}: each
    trajectory draws from its own RNG stream (split off the master seed
    in trajectory order), trajectories are summed in fixed-size blocks,
    and block partials are folded in block order — so the outcome is
    bit-for-bit identical for every pool size, including sequential
    execution ([jobs = 1]). *)

type outcome = {
  distribution : (string * float) list;
      (** readout-corrupted distribution over the program's measured bits,
          descending probability, truncated below 1e-6 *)
  counts : (string * int) list;  (** distribution scaled to [trials] shots *)
  success_rate : float;
  dominant_correct : bool;
      (** whether the expected answer is the mode — the paper's zero-height
          bars are runs where it is not *)
  trials : int;
  trajectories : int;
}

(** Typed run configuration, mirroring [Pass.Config.t] on the compile
    side: one value to build once, thread through helpers, and record in
    reports, instead of re-plumbing seven optional arguments through
    every wrapper. *)
module Config : sig
  (** Simulation backend selection. [Auto] (the default) picks per
      circuit: Clifford-only circuits run entirely on the
      polynomial-time {!Stabilizer} tableau; circuits with a
      substantial Clifford prefix simulate the prefix on the tableau
      and materialize a statevector for the non-Clifford tail; anything
      else (and any [explicit_t1] run — amplitude damping is not a
      Clifford channel) uses the dense {!Statevector}. Forcing
      [Stabilizer] raises [Invalid_argument] on non-Clifford circuits
      or with [explicit_t1]. *)
  type backend = Auto | Statevector | Stabilizer

  val backend_of_string : string -> backend option
  val backend_to_string : backend -> string

  type t = {
    seed : int;  (** master RNG seed (default [0xC0FFEE]) *)
    trials : int;  (** shots the counts are scaled to (default 8192) *)
    trajectories : int;  (** Monte-Carlo error trajectories (default 300) *)
    day : int option;
        (** calibration day the run happens under; [None] (default) uses
            the day the executable was compiled against — pass a later
            day to model a stale executable on a drifted machine *)
    sample_counts : bool;
        (** draw counts as a true multinomial sample (realistic shot
            noise) instead of the default deterministic
            largest-remainder rendering *)
    explicit_t1 : bool;
        (** model decoherence as an amplitude-damping channel
            (quantum-jump trajectories) instead of folding it into the
            depolarizing probability — cross-validated against the exact
            backend *)
    pool : Parallel.Pool.t option;
        (** domain pool trajectories fan out across; [None] (default)
            uses the process-wide {!Parallel.Pool.default}. A [jobs:1]
            pool forces sequential execution; the result is identical
            either way. *)
    backend : backend;  (** backend selection (default [Auto]) *)
    fusion : bool;
        (** fuse the statevector gate stream (1Q run merging, diagonal
            batching, permutation kernels) before executing trajectories
            (default [true]). The plan depends only on the circuit, so
            outcomes stay bit-identical across pool sizes; disabling it
            reproduces the gate-by-gate execution order exactly.
            Ignored (off) under [explicit_t1], whose per-gate stochastic
            relaxation cannot cross fused groups. *)
  }

  val default : t

  val make :
    ?seed:int ->
    ?trials:int ->
    ?trajectories:int ->
    ?day:int ->
    ?sample_counts:bool ->
    ?explicit_t1:bool ->
    ?pool:Parallel.Pool.t ->
    ?backend:backend ->
    ?fusion:bool ->
    unit ->
    t
end

(** [simulate ?config compiled spec] executes a compiled program against
    its specification under [config] (default {!Config.default}).
    [spec.measured] must list exactly the program qubits the compiled
    circuit reads out.

    Observability: the whole run executes inside an [Obs.Span] named
    ["sim.run"], each trajectory block in a child ["sim.block"] span on
    whichever pool domain executed it, and the ["sim.trajectories"] /
    ["sim.blocks"] counters accumulate volume. None of it perturbs the
    simulation: results stay bit-identical with tracing on or off.

    Raises [Invalid_argument] if [trials] or [trajectories] is below 1
    (zero trajectories would yield all-NaN outcomes). *)
val simulate : ?config:Config.t -> Triq.Compiled.t -> Ir.Spec.t -> outcome

(** Deprecated optional-argument spelling of {!simulate}: each argument
    populates the corresponding {!Config.t} field. Behaviour is
    identical (a golden equivalence test pins this). *)
val run :
  ?seed:int ->
  ?trials:int ->
  ?trajectories:int ->
  ?day:int ->
  ?sample_counts:bool ->
  ?explicit_t1:bool ->
  ?pool:Parallel.Pool.t ->
  Triq.Compiled.t ->
  Ir.Spec.t ->
  outcome
[@@deprecated "use Runner.simulate ~config"]

(** [ideal_distribution circuit ~measured] is the noiseless output
    distribution of a *program-level* circuit over the given measured
    qubits (bitstring order = [measured] order) — used to build
    specifications and as a test oracle. *)
val ideal_distribution : Ir.Circuit.t -> measured:int list -> (string * float) list
