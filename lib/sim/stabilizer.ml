module Action = Dataflow.Tableau.Action
module Rng = Mathkit.Rng

(* A row is i^e * prod_q X_q^{x_q} Z_q^{z_q} (X written before Z on each
   qubit), the same convention as {!Dataflow.Tableau}. *)
type row = { mutable e : int; x : bool array; z : bool array }

type t = { n : int; destab : row array; stab : row array }

let init n =
  if n < 1 then invalid_arg "Stabilizer.init: need at least one qubit";
  let x_row q =
    { e = 0; x = (let a = Array.make n false in a.(q) <- true; a); z = Array.make n false }
  and z_row q =
    { e = 0; x = Array.make n false; z = (let a = Array.make n false in a.(q) <- true; a) }
  in
  { n; destab = Array.init n x_row; stab = Array.init n z_row }

let n_qubits t = t.n

let copy_row r = { e = r.e; x = Array.copy r.x; z = Array.copy r.z }

let copy t =
  { n = t.n; destab = Array.map copy_row t.destab; stab = Array.map copy_row t.stab }

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "Stabilizer: qubit out of range"

(* a := a * b, exact Pauli product: commuting b's X factors left across
   a's Z factors picks up (-1) per overlapping qubit. *)
let mul_into n a b =
  let extra = ref 0 in
  for q = 0 to n - 1 do
    if a.z.(q) && b.x.(q) then incr extra;
    a.x.(q) <- a.x.(q) <> b.x.(q);
    a.z.(q) <- a.z.(q) <> b.z.(q)
  done;
  a.e <- (a.e + b.e + (2 * !extra)) land 3

let apply_action t act qs =
  Array.iter (fun q -> check_qubit t q) qs;
  let conj r = r.e <- Action.conjugate act qs ~x:r.x ~z:r.z r.e in
  Array.iter conj t.destab;
  Array.iter conj t.stab

(* Compiled gate application: the action's conjugation baked into a
   dense lookup table over the 4 (1Q) or 16 (2Q) local Pauli patterns
   ({!Dataflow.Tableau.Action.table}), turning the per-row hot path into
   one table read and a few bit writes — no allocation. *)
type app =
  | App1 of { tab : int array; q : int }
  | App2 of { tab : int array; a : int; b : int }

let compile_action act qs =
  let tab = Action.table act in
  match Array.length qs with
  | 1 -> App1 { tab; q = qs.(0) }
  | 2 -> App2 { tab; a = qs.(0); b = qs.(1) }
  | _ -> invalid_arg "Stabilizer.compile_action: 1Q/2Q actions only"

let apply_app t app =
  match app with
  | App1 { tab; q } ->
      let upd r =
        let code = (if r.x.(q) then 1 else 0) lor (if r.z.(q) then 2 else 0) in
        let v = tab.(code) in
        r.x.(q) <- v land 1 <> 0;
        r.z.(q) <- v land 2 <> 0;
        r.e <- (r.e + (v lsr 2)) land 3
      in
      Array.iter upd t.destab;
      Array.iter upd t.stab
  | App2 { tab; a; b } ->
      let upd r =
        let code =
          (if r.x.(a) then 1 else 0)
          lor (if r.z.(a) then 2 else 0)
          lor (if r.x.(b) then 4 else 0)
          lor (if r.z.(b) then 8 else 0)
        in
        let v = tab.(code) in
        r.x.(a) <- v land 1 <> 0;
        r.z.(a) <- v land 2 <> 0;
        r.x.(b) <- v land 4 <> 0;
        r.z.(b) <- v land 8 <> 0;
        r.e <- (r.e + (v lsr 4)) land 3
      in
      Array.iter upd t.destab;
      Array.iter upd t.stab

(* Conjugate one Pauli, given as qubit-indexed bit masks (bit q = qubit
   q), by a compiled gate, dropping the phase. This propagates an
   injected error through the rest of a Clifford circuit as a single
   row, O(1) per gate. *)
let conjugate_masks app ~xm ~zm =
  match app with
  | App1 { tab; q } ->
      let code = ((xm lsr q) land 1) lor (((zm lsr q) land 1) lsl 1) in
      let v = tab.(code) in
      let bit = 1 lsl q in
      let xm = if v land 1 <> 0 then xm lor bit else xm land lnot bit in
      let zm = if v land 2 <> 0 then zm lor bit else zm land lnot bit in
      (xm, zm)
  | App2 { tab; a; b } ->
      let code =
        ((xm lsr a) land 1)
        lor (((zm lsr a) land 1) lsl 1)
        lor (((xm lsr b) land 1) lsl 2)
        lor (((zm lsr b) land 1) lsl 3)
      in
      let v = tab.(code) in
      let ba = 1 lsl a and bb = 1 lsl b in
      let xm = if v land 1 <> 0 then xm lor ba else xm land lnot ba in
      let zm = if v land 2 <> 0 then zm lor ba else zm land lnot ba in
      let xm = if v land 4 <> 0 then xm lor bb else xm land lnot bb in
      let zm = if v land 8 <> 0 then zm lor bb else zm land lnot bb in
      (xm, zm)

let apply_gate t g =
  match g with
  | Ir.Gate.Measure _ -> invalid_arg "Stabilizer.apply_gate: Measure"
  | _ -> (
      match Action.of_gate g with
      | None -> false
      | Some act ->
          apply_action t act (Array.of_list (Ir.Gate.qubits g));
          true)

type pauli = X | Y | Z

(* Conjugating by a Pauli flips the sign of exactly the rows that
   anticommute with it; bit patterns are untouched. *)
let apply_pauli t q p =
  check_qubit t q;
  let anticommutes r =
    match p with
    | X -> r.z.(q)
    | Z -> r.x.(q)
    | Y -> r.x.(q) <> r.z.(q)
  in
  let flip r = if anticommutes r then r.e <- (r.e + 2) land 3 in
  Array.iter flip t.destab;
  Array.iter flip t.stab

let measure t q rng =
  check_qubit t q;
  let p = ref (-1) in
  (try
     for i = 0 to t.n - 1 do
       if t.stab.(i).x.(q) then begin
         p := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !p >= 0 then begin
    (* Random outcome: some stabilizer anticommutes with Z_q. Multiply
       every other row that anticommutes by the pivot (products of two
       anticommuting-with-Z_q rows commute with it), remember the pivot
       as the new destabilizer, and install +/-Z_q as the new pivot
       stabilizer with a fair coin deciding the sign. *)
    let p = !p in
    let sp = copy_row t.stab.(p) in
    Array.iter (fun r -> if r.x.(q) then mul_into t.n r sp) t.destab;
    Array.iteri (fun i r -> if i <> p && r.x.(q) then mul_into t.n r sp) t.stab;
    let m = Rng.bool rng 0.5 in
    t.destab.(p) <- sp;
    t.stab.(p) <-
      { e = (if m then 2 else 0);
        x = Array.make t.n false;
        z = (let z = Array.make t.n false in z.(q) <- true; z) };
    m
  end
  else begin
    (* Deterministic outcome: +/-Z_q is in the stabilizer group; its
       expansion multiplies the stabilizers whose destabilizer partners
       anticommute with Z_q. The product is exactly +/-Z_q, so the
       phase exponent is 0 or 2. *)
    let scratch = { e = 0; x = Array.make t.n false; z = Array.make t.n false } in
    for i = 0 to t.n - 1 do
      if t.destab.(i).x.(q) then mul_into t.n scratch t.stab.(i)
    done;
    scratch.e = 2
  end

let measure_all t rng =
  let idx = ref 0 in
  for q = 0 to t.n - 1 do
    if measure t q rng then idx := !idx lor (1 lsl (t.n - 1 - q))
  done;
  !idx

(* ------------------------------------------------------------------ *)
(* Dense read-out: support enumeration.                                *)
(* ------------------------------------------------------------------ *)

let max_dense = 24

(* Basis-index mask of a qubit bit-vector: qubit q is bit (n-1-q),
   matching {!Statevector} and {!Ir.Matrices}. *)
let basis_mask n bits =
  let m = ref 0 in
  for q = 0 to n - 1 do
    if bits.(q) then m := !m lor (1 lsl (n - 1 - q))
  done;
  !m

(* Echelonize a copy of the stabilizer rows over the X block: the first
   [s] result rows carry X-pivots at distinct qubits, the rest are
   X-free (pure Z rows). *)
let xblock_echelon t =
  let rows = Array.map copy_row t.stab in
  let r = ref 0 in
  for q = 0 to t.n - 1 do
    if !r < t.n then begin
      let pivot = ref (-1) in
      (try
         for i = !r to t.n - 1 do
           if rows.(i).x.(q) then begin
             pivot := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot >= 0 then begin
        let tmp = rows.(!r) in
        rows.(!r) <- rows.(!pivot);
        rows.(!pivot) <- tmp;
        for i = 0 to t.n - 1 do
          if i <> !r && rows.(i).x.(q) then mul_into t.n rows.(i) rows.(!r)
        done;
        incr r
      end
    end
  done;
  (Array.sub rows 0 !r, Array.sub rows !r (t.n - !r))

(* One point of the support: the X-free stabilizer rows are +/- pure-Z
   operators (phase exponent 0 or 2 — an X-free Pauli has no Y factor,
   and an odd exponent would make it non-Hermitian), so each imposes the
   parity constraint z . u = e/2 (mod 2) on the support. Solve the
   system by Gauss-Jordan elimination with free variables at zero. *)
let support_base t zrows =
  let m = Array.length zrows in
  let a = Array.map (fun r -> Array.copy r.z) zrows in
  let b =
    Array.map
      (fun r ->
        if r.e land 1 <> 0 then invalid_arg "Stabilizer: malformed tableau";
        r.e = 2)
      zrows
  in
  let pivot_col = Array.make m (-1) in
  let row = ref 0 in
  for col = 0 to t.n - 1 do
    if !row < m then begin
      let pivot = ref (-1) in
      (try
         for i = !row to m - 1 do
           if a.(i).(col) then begin
             pivot := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot >= 0 then begin
        let tmp = a.(!row) in
        a.(!row) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tb = b.(!row) in
        b.(!row) <- b.(!pivot);
        b.(!pivot) <- tb;
        for i = 0 to m - 1 do
          if i <> !row && a.(i).(col) then begin
            for j = 0 to t.n - 1 do
              a.(i).(j) <- a.(i).(j) <> a.(!row).(j)
            done;
            b.(i) <- b.(i) <> b.(!row)
          end
        done;
        pivot_col.(!row) <- col;
        incr row
      end
    end
  done;
  let u = Array.make t.n false in
  for i = 0 to m - 1 do
    if pivot_col.(i) >= 0 then u.(pivot_col.(i)) <- b.(i)
    else if b.(i) then invalid_arg "Stabilizer: inconsistent tableau"
  done;
  u

let rec ctz x = if x land 1 = 1 then 0 else 1 + ctz (x lsr 1)

let parity x =
  let x = ref x and p = ref false in
  while !x <> 0 do
    p := not !p;
    x := !x land (!x - 1)
  done;
  !p

let check_dense t =
  if t.n > max_dense then invalid_arg "Stabilizer: too many qubits for dense read-out"

(* The support is the affine space u0 + span{x-vectors of the pivot
   rows} (2^s points, each of probability exactly 2^-s); a reflected
   Gray code visits it flipping one generator per step. *)
let probabilities t =
  check_dense t;
  let pivots, zrows = xblock_echelon t in
  let u0 = support_base t zrows in
  let s = Array.length pivots in
  let dim = 1 lsl t.n in
  let probs = Array.make dim 0.0 in
  let p = 1.0 /. float_of_int (1 lsl s) in
  let masks = Array.map (fun r -> basis_mask t.n r.x) pivots in
  let idx = ref (basis_mask t.n u0) in
  probs.(!idx) <- p;
  for cnt = 1 to (1 lsl s) - 1 do
    idx := !idx lxor masks.(ctz cnt);
    probs.(!idx) <- p
  done;
  probs

(* Same walk carrying the phase: a pivot row g = i^e X^x Z^z stabilizes
   the state, so amplitude(u xor x) = i^e * (-1)^(z.u) * amplitude(u);
   with amplitude(u0) fixed real-positive (global phase is free), every
   amplitude is 2^(-s/2) times a power of i. *)
let to_statevector t =
  check_dense t;
  let pivots, zrows = xblock_echelon t in
  let u0 = support_base t zrows in
  let s = Array.length pivots in
  let dim = 1 lsl t.n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  let amp = 1.0 /. sqrt (float_of_int (1 lsl s)) in
  let xmasks = Array.map (fun r -> basis_mask t.n r.x) pivots in
  let zmasks = Array.map (fun r -> basis_mask t.n r.z) pivots in
  let es = Array.map (fun r -> r.e) pivots in
  let set idx ph =
    match ph with
    | 0 -> re.(idx) <- amp
    | 1 -> im.(idx) <- amp
    | 2 -> re.(idx) <- -.amp
    | _ -> im.(idx) <- -.amp
  in
  let idx = ref (basis_mask t.n u0) and ph = ref 0 in
  set !idx 0;
  for cnt = 1 to (1 lsl s) - 1 do
    let j = ctz cnt in
    ph := (!ph + es.(j) + if parity (zmasks.(j) land !idx) then 2 else 0) land 3;
    idx := !idx lxor xmasks.(j);
    set !idx !ph
  done;
  Statevector.of_arrays ~re ~im

(* ------------------------------------------------------------------ *)
(* Precomputed repeated read-out under Pauli sign noise.               *)
(* ------------------------------------------------------------------ *)

(* Conjugating a stabilizer state by a Pauli only flips row signs, so
   every noisy-Clifford-trajectory output shares one support
   *structure* with the ideal state: the same pivot-row span, only the
   affine base point moves. [readout] freezes that structure once
   (echelon + Gauss-Jordan with subset tracking); [readout_probabilities]
   then prices a trajectory at O(m^2) bit operations plus the 2^s
   support walk — no tableau evolution, no echelon, no solve. *)
type readout = {
  rn : int;
  xmasks : int array;  (* pivot-row X vectors as basis-index masks *)
  zq : int array;  (* Z-row Z vectors as qubit-indexed masks *)
  pivot_cols : int array;  (* reduced Z-system pivot qubit per row, -1 = null *)
  subsets : int array;  (* reduced row as xor-subset of the original Z rows *)
  base : bool array;  (* reduced parities of the clean tableau *)
}

let readout t =
  check_dense t;
  let pivots, zrows = xblock_echelon t in
  let xmasks = Array.map (fun r -> basis_mask t.n r.x) pivots in
  let qubit_mask bits =
    let m = ref 0 in
    for q = 0 to t.n - 1 do
      if bits.(q) then m := !m lor (1 lsl q)
    done;
    !m
  in
  let zq = Array.map (fun r -> qubit_mask r.z) zrows in
  let m = Array.length zrows in
  let a = Array.map (fun r -> Array.copy r.z) zrows in
  let b =
    Array.map
      (fun r ->
        if r.e land 1 <> 0 then invalid_arg "Stabilizer: malformed tableau";
        r.e = 2)
      zrows
  in
  let subsets = Array.init m (fun i -> 1 lsl i) in
  let pivot_cols = Array.make m (-1) in
  let row = ref 0 in
  for col = 0 to t.n - 1 do
    if !row < m then begin
      let pivot = ref (-1) in
      (try
         for i = !row to m - 1 do
           if a.(i).(col) then begin
             pivot := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot >= 0 then begin
        let tmp = a.(!row) in
        a.(!row) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tb = b.(!row) in
        b.(!row) <- b.(!pivot);
        b.(!pivot) <- tb;
        let ts = subsets.(!row) in
        subsets.(!row) <- subsets.(!pivot);
        subsets.(!pivot) <- ts;
        for i = 0 to m - 1 do
          if i <> !row && a.(i).(col) then begin
            for j = 0 to t.n - 1 do
              a.(i).(j) <- a.(i).(j) <> a.(!row).(j)
            done;
            b.(i) <- b.(i) <> b.(!row);
            subsets.(i) <- subsets.(i) lxor subsets.(!row)
          end
        done;
        pivot_cols.(!row) <- col;
        incr row
      end
    end
  done;
  (* Null reduced rows (products of Z rows that cancel) must carry even
     parity; sign flips preserve this automatically because the flip of
     a product is the xor of the flips. *)
  for i = !row to m - 1 do
    if b.(i) then invalid_arg "Stabilizer: inconsistent tableau"
  done;
  { rn = t.n; xmasks; zq; pivot_cols; subsets; base = b }

(* A Z row has no X part, so a Pauli P anticommutes with it iff P's X
   mask overlaps the row's Z support on an odd number of qubits. *)
let flip_mask r ~xm =
  let f = ref 0 in
  for i = 0 to Array.length r.zq - 1 do
    if parity (xm land r.zq.(i)) then f := !f lor (1 lsl i)
  done;
  !f

let readout_probabilities r ~flips =
  let dim = 1 lsl r.rn in
  let probs = Array.make dim 0.0 in
  let s = Array.length r.xmasks in
  let p = 1.0 /. float_of_int (1 lsl s) in
  let idx = ref 0 in
  for i = 0 to Array.length r.pivot_cols - 1 do
    let col = r.pivot_cols.(i) in
    if col >= 0 && r.base.(i) <> parity (flips land r.subsets.(i)) then
      idx := !idx lor (1 lsl (r.rn - 1 - col))
  done;
  probs.(!idx) <- p;
  for cnt = 1 to (1 lsl s) - 1 do
    idx := !idx lxor r.xmasks.(ctz cnt);
    probs.(!idx) <- p
  done;
  probs
