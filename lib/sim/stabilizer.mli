(** Aaronson-Gottesman stabilizer simulator: polynomial-time Clifford
    execution.

    Extends {!Dataflow.Tableau}'s generator tableau with the
    destabilizer half, which is what makes measurement sampling O(n^2)
    instead of exponential (Aaronson & Gottesman, "Improved simulation
    of stabilizer circuits", 2004). Gate actions are the numerically
    derived Clifford actions of {!Dataflow.Tableau.Action}, so the whole
    IR gate set is recognized uniformly — [Rz (k*pi/2)], [U2]/[U3] at
    Clifford angles, [Xx (k*pi/4)] — without a case table.

    Dense read-out ({!probabilities}, {!to_statevector}) enumerates the
    support — an affine GF(2) space of 2^s basis states, each carrying
    probability exactly 2^-s — via a Gray-code walk, so Clifford-prefix
    circuits can hand the state over to the dense {!Statevector} backend
    for their non-Clifford tail. Basis-index convention matches
    {!Statevector}: qubit 0 is the highest-order bit. *)

type t

(** [init n] is |0...0> on [n] qubits: destabilizers [X_i], stabilizers
    [Z_i]. No upper bound on [n] for tableau operations; dense read-out
    is capped at 24 qubits like {!Statevector.init}. *)
val init : int -> t

val n_qubits : t -> int

(** Independent deep copy. *)
val copy : t -> t

(** [apply_gate t g] conjugates the tableau by [g] in place and returns
    [true]; returns [false] (state untouched) when [g] is not Clifford.
    Raises [Invalid_argument] on [Measure] or out-of-range operands. *)
val apply_gate : t -> Ir.Gate.t -> bool

(** [apply_action t act qs] conjugates the tableau by a precomputed
    Clifford action on qubits [qs], skipping per-gate action lookup. *)
val apply_action : t -> Dataflow.Tableau.Action.t -> int array -> unit

(** A compiled gate application: the action's conjugation baked into a
    dense lookup table over the 4 (1Q) or 16 (2Q) local Pauli patterns,
    making the per-row update a table read plus bit writes with no
    allocation. This is the hot path for repeated trajectory replays. *)
type app

(** Raises [Invalid_argument] unless the action is 1Q or 2Q. *)
val compile_action : Dataflow.Tableau.Action.t -> int array -> app

val apply_app : t -> app -> unit

(** [conjugate_masks app ~xm ~zm] conjugates a single Pauli — given as
    qubit-indexed bit masks, bit [q] = qubit [q] — by the compiled gate,
    dropping the (globally irrelevant) phase. Used to propagate an
    injected error Pauli through the remainder of a Clifford circuit as
    one row, O(1) per gate. *)
val conjugate_masks : app -> xm:int -> zm:int -> int * int

type pauli = X | Y | Z

(** [apply_pauli t q p] applies the Pauli error [p] to qubit [q] — an
    O(n) sign update, since conjugation by a Pauli only flips the rows
    that anticommute with it. *)
val apply_pauli : t -> int -> pauli -> unit

(** [measure t q rng] measures qubit [q] in the Z basis, collapsing the
    state in place, and returns the outcome. Draws one fair coin from
    [rng] iff the outcome is random (some stabilizer anticommutes with
    [Z_q]); deterministic outcomes consume no randomness. *)
val measure : t -> int -> Mathkit.Rng.t -> bool

(** [measure_all t rng] measures every qubit in order and returns the
    outcome as a basis index (qubit 0 = highest-order bit). *)
val measure_all : t -> Mathkit.Rng.t -> int

(** [probabilities t] is the full 2^n Z-basis probability vector:
    uniform mass 2^-s on the 2^s-point support. Raises
    [Invalid_argument] above 24 qubits. *)
val probabilities : t -> float array

(** [to_statevector t] materializes the exact dense state (amplitudes
    are 2^(-s/2) times powers of i, up to the global phase fixed by
    making the lexicographically-derived base point real-positive).
    This is the Clifford-prefix hand-off to the dense backend. Raises
    [Invalid_argument] above 24 qubits. *)
val to_statevector : t -> Statevector.t

(** Frozen read-out structure for repeated probability extraction from
    sign-perturbed variants of one tableau. Conjugating a stabilizer
    state by a Pauli only flips row signs — the support's linear span
    never moves, only its affine base point — so a whole Monte-Carlo
    run over Pauli error trajectories can precompute the echelonized
    support once and price each trajectory at a handful of bit
    operations plus the 2^s support walk. *)
type readout

(** Freeze the read-out structure of [t] (typically the ideal end-state
    of a Clifford circuit). Raises [Invalid_argument] above 24
    qubits. *)
val readout : t -> readout

(** [flip_mask r ~xm] is the sign-flip pattern (one bit per frozen
    Z-constraint row) induced by conjugating the state with a Pauli
    whose X support is the qubit-indexed mask [xm] — combine patterns
    from successive errors with [lxor]. *)
val flip_mask : readout -> xm:int -> int

(** [readout_probabilities r ~flips] is the full 2^n probability vector
    of the tableau with the given sign-flip pattern applied;
    [~flips:0] reproduces [probabilities] of the frozen state. *)
val readout_probabilities : readout -> flips:int -> float array
