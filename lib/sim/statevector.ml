module M = Mathkit.Matrix

type t = { n : int; re : float array; im : float array }

let init n =
  if n < 1 || n > 24 then invalid_arg "Statevector.init: n out of range";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let n_qubits t = t.n

let of_arrays ~re ~im =
  let dim = Array.length re in
  if dim = 0 || Array.length im <> dim then
    invalid_arg "Statevector.of_arrays: arrays must be equal non-empty length";
  let n = ref 0 in
  while 1 lsl !n < dim do incr n done;
  if 1 lsl !n <> dim || !n < 1 || !n > 24 then
    invalid_arg "Statevector.of_arrays: length must be 2^n, 1 <= n <= 24";
  { n = !n; re; im }

let copy t = { n = t.n; re = Array.copy t.re; im = Array.copy t.im }

let amplitude t i = Mathkit.Cplx.make t.re.(i) t.im.(i)

let probability t i = (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))

let probabilities t = Array.init (1 lsl t.n) (probability t)

let norm2 t =
  let acc = ref 0.0 in
  for i = 0 to (1 lsl t.n) - 1 do
    acc := !acc +. probability t i
  done;
  !acc

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "Statevector: qubit out of range"

let apply_one t m q =
  check_qubit t q;
  if M.rows m <> 2 || M.cols m <> 2 then invalid_arg "Statevector.apply_one: not 2x2";
  let g r c = M.get m r c in
  let a00 = g 0 0 and a01 = g 0 1 and a10 = g 1 0 and a11 = g 1 1 in
  let r00 = a00.re and i00 = a00.im and r01 = a01.re and i01 = a01.im in
  let r10 = a10.re and i10 = a10.im and r11 = a11.re and i11 = a11.im in
  let dim = 1 lsl t.n in
  let stride = 1 lsl (t.n - 1 - q) in
  let re = t.re and im = t.im in
  let idx = ref 0 in
  while !idx < dim do
    (* Iterate over indices whose q-bit is 0 within each block. *)
    let block_end = !idx + stride in
    while !idx < block_end do
      let i0 = !idx in
      let i1 = i0 + stride in
      let xr = re.(i0) and xi = im.(i0) and yr = re.(i1) and yi = im.(i1) in
      re.(i0) <- (r00 *. xr) -. (i00 *. xi) +. (r01 *. yr) -. (i01 *. yi);
      im.(i0) <- (r00 *. xi) +. (i00 *. xr) +. (r01 *. yi) +. (i01 *. yr);
      re.(i1) <- (r10 *. xr) -. (i10 *. xi) +. (r11 *. yr) -. (i11 *. yi);
      im.(i1) <- (r10 *. xi) +. (i10 *. xr) +. (r11 *. yi) +. (i11 *. yr);
      incr idx
    done;
    idx := !idx + stride
  done

let apply_two t m a b =
  check_qubit t a;
  check_qubit t b;
  if a = b then invalid_arg "Statevector.apply_two: identical qubits";
  if M.rows m <> 4 || M.cols m <> 4 then invalid_arg "Statevector.apply_two: not 4x4";
  let mr = Array.init 16 (fun k -> (M.get m (k / 4) (k mod 4)).re) in
  let mi = Array.init 16 (fun k -> (M.get m (k / 4) (k mod 4)).im) in
  let dim = 1 lsl t.n in
  let sa = 1 lsl (t.n - 1 - a) and sb = 1 lsl (t.n - 1 - b) in
  let re = t.re and im = t.im in
  let xr = Array.make 4 0.0 and xi = Array.make 4 0.0 in
  let indices = Array.make 4 0 in
  (* Enumerate the dim/4 group representatives (both bits 0) directly:
     split the index into the runs of bits above, between and below the
     two strides, skipping the set-bit halves block-wise. *)
  let sl = if sa < sb then sa else sb in
  let sh = if sa < sb then sb else sa in
  let h = ref 0 in
  while !h < dim do
    let m_ = ref !h in
    let mid_end = !h + sh in
    while !m_ < mid_end do
      let base = ref !m_ in
      let low_end = !m_ + sl in
      while !base < low_end do
        indices.(0) <- !base;
        indices.(1) <- !base lor sb;
        indices.(2) <- !base lor sa;
        indices.(3) <- !base lor sa lor sb;
        for k = 0 to 3 do
          xr.(k) <- re.(indices.(k));
          xi.(k) <- im.(indices.(k))
        done;
        for r = 0 to 3 do
          let accr = ref 0.0 and acci = ref 0.0 in
          for c = 0 to 3 do
            let k = (r * 4) + c in
            accr := !accr +. (mr.(k) *. xr.(c)) -. (mi.(k) *. xi.(c));
            acci := !acci +. (mr.(k) *. xi.(c)) +. (mi.(k) *. xr.(c))
          done;
          re.(indices.(r)) <- !accr;
          im.(indices.(r)) <- !acci
        done;
        incr base
      done;
      m_ := !m_ + (2 * sl)
    done;
    h := !h + (2 * sh)
  done

(* ------------------------------------------------------------------ *)
(* Specialized kernels: permutation and diagonal gates touch (or move) *)
(* each amplitude once, with no 4x4 product.                           *)
(* ------------------------------------------------------------------ *)

let check_pair t a b =
  check_qubit t a;
  check_qubit t b;
  if a = b then invalid_arg "Statevector: identical qubits"

let apply_cnot t c x =
  check_pair t c x;
  let dim = 1 lsl t.n in
  let sc = 1 lsl (t.n - 1 - c) and sx = 1 lsl (t.n - 1 - x) in
  let sl = if sc < sx then sc else sx in
  let sh = if sc < sx then sx else sc in
  let re = t.re and im = t.im in
  let h = ref 0 in
  while !h < dim do
    let m = ref !h in
    let mid_end = !h + sh in
    while !m < mid_end do
      let base = ref !m in
      let low_end = !m + sl in
      while !base < low_end do
        let i10 = !base lor sc in
        let i11 = i10 lor sx in
        let r = re.(i10) and i = im.(i10) in
        re.(i10) <- re.(i11);
        im.(i10) <- im.(i11);
        re.(i11) <- r;
        im.(i11) <- i;
        incr base
      done;
      m := !m + (2 * sl)
    done;
    h := !h + (2 * sh)
  done

let apply_cz t a b =
  check_pair t a b;
  let dim = 1 lsl t.n in
  let sa = 1 lsl (t.n - 1 - a) and sb = 1 lsl (t.n - 1 - b) in
  let sl = if sa < sb then sa else sb in
  let sh = if sa < sb then sb else sa in
  let re = t.re and im = t.im in
  let h = ref 0 in
  while !h < dim do
    let m = ref !h in
    let mid_end = !h + sh in
    while !m < mid_end do
      let base = ref !m in
      let low_end = !m + sl in
      while !base < low_end do
        let i11 = !base lor sa lor sb in
        re.(i11) <- -.re.(i11);
        im.(i11) <- -.im.(i11);
        incr base
      done;
      m := !m + (2 * sl)
    done;
    h := !h + (2 * sh)
  done

let apply_swap t a b =
  check_pair t a b;
  let dim = 1 lsl t.n in
  let sa = 1 lsl (t.n - 1 - a) and sb = 1 lsl (t.n - 1 - b) in
  let sl = if sa < sb then sa else sb in
  let sh = if sa < sb then sb else sa in
  let re = t.re and im = t.im in
  let h = ref 0 in
  while !h < dim do
    let m = ref !h in
    let mid_end = !h + sh in
    while !m < mid_end do
      let base = ref !m in
      let low_end = !m + sl in
      while !base < low_end do
        let i01 = !base lor sb and i10 = !base lor sa in
        let r = re.(i01) and i = im.(i01) in
        re.(i01) <- re.(i10);
        im.(i01) <- im.(i10);
        re.(i10) <- r;
        im.(i10) <- i;
        incr base
      done;
      m := !m + (2 * sl)
    done;
    h := !h + (2 * sh)
  done

let apply_iswap t a b =
  check_pair t a b;
  let dim = 1 lsl t.n in
  let sa = 1 lsl (t.n - 1 - a) and sb = 1 lsl (t.n - 1 - b) in
  let sl = if sa < sb then sa else sb in
  let sh = if sa < sb then sb else sa in
  let re = t.re and im = t.im in
  let h = ref 0 in
  while !h < dim do
    let m = ref !h in
    let mid_end = !h + sh in
    while !m < mid_end do
      let base = ref !m in
      let low_end = !m + sl in
      while !base < low_end do
        (* |01> -> i|10>, |10> -> i|01>: swap then multiply by i. *)
        let i01 = !base lor sb and i10 = !base lor sa in
        let r01 = re.(i01) and x01 = im.(i01) in
        let r10 = re.(i10) and x10 = im.(i10) in
        re.(i01) <- -.x10;
        im.(i01) <- r10;
        re.(i10) <- -.x01;
        im.(i10) <- r01;
        incr base
      done;
      m := !m + (2 * sl)
    done;
    h := !h + (2 * sh)
  done

let apply_diag_one t ~d0 ~d1 q =
  check_qubit t q;
  let d0r, d0i = d0 and d1r, d1i = d1 in
  let dim = 1 lsl t.n in
  let stride = 1 lsl (t.n - 1 - q) in
  let re = t.re and im = t.im in
  let idx = ref 0 in
  while !idx < dim do
    let block_end = !idx + stride in
    while !idx < block_end do
      let i0 = !idx in
      let i1 = i0 + stride in
      let r0 = re.(i0) and x0 = im.(i0) in
      re.(i0) <- (d0r *. r0) -. (d0i *. x0);
      im.(i0) <- (d0r *. x0) +. (d0i *. r0);
      let r1 = re.(i1) and x1 = im.(i1) in
      re.(i1) <- (d1r *. r1) -. (d1i *. x1);
      im.(i1) <- (d1r *. x1) +. (d1i *. r1);
      incr idx
    done;
    idx := !idx + stride
  done

let apply_diag_table t ~qs ~fr ~fi =
  let k = Array.length qs in
  if k < 1 || k > 16 then invalid_arg "Statevector.apply_diag_table: 1-16 wires";
  if Array.length fr <> 1 lsl k || Array.length fi <> 1 lsl k then
    invalid_arg "Statevector.apply_diag_table: table length must be 2^wires";
  Array.iter (check_qubit t) qs;
  let shifts = Array.map (fun q -> t.n - 1 - q) qs in
  let dim = 1 lsl t.n in
  let re = t.re and im = t.im in
  for idx = 0 to dim - 1 do
    let key = ref 0 in
    for j = 0 to k - 1 do
      key := (!key lsl 1) lor ((idx lsr shifts.(j)) land 1)
    done;
    let cr = fr.(!key) and ci = fi.(!key) in
    let r = re.(idx) and x = im.(idx) in
    re.(idx) <- (cr *. r) -. (ci *. x);
    im.(idx) <- (cr *. x) +. (ci *. r)
  done

let rec apply_gate t (g : Ir.Gate.t) =
  match g with
  | One (k, q) -> apply_one t (Ir.Matrices.one_q k) q
  | Two (k, a, b) -> apply_two t (Ir.Matrices.two_q k) a b
  | Ccx (a, b, c) ->
    (* Phase-free permutation: apply via its decomposition on the state. *)
    List.iter (apply_gate t) (Ir.Decompose.ccx a b c)
  | Cswap (a, b, c) -> List.iter (apply_gate t) (Ir.Decompose.cswap a b c)
  | Measure _ -> invalid_arg "Statevector.apply_gate: Measure"

let run (c : Ir.Circuit.t) =
  let t = init c.Ir.Circuit.n_qubits in
  List.iter
    (fun g -> if not (Ir.Gate.is_measure g) then apply_gate t g)
    c.Ir.Circuit.gates;
  t

let cdf_index cumulative target =
  let dim = Array.length cumulative in
  if dim = 0 then invalid_arg "Statevector.cdf_index: empty table";
  (* Smallest index whose cumulative mass strictly exceeds [target]. The
     comparison must be strict: with [>=], a draw of exactly 0.0 — or one
     landing exactly on a cumulative edge — selects the bucket *ending* at
     that edge, which can be a zero-probability outcome. *)
  let lo = ref 0 and hi = ref (dim - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) > target then hi := mid else lo := mid + 1
  done;
  (* If rounding pushed [target] to (or past) the final cumulative value,
     the search falls through to the last bucket even when it carries no
     mass; walk back to the last bucket with positive mass. *)
  let i = ref !lo in
  while !i > 0 && cumulative.(!i) <= cumulative.(!i - 1) do
    decr i
  done;
  !i

let sampler t =
  (* One O(2^n) pass builds the cumulative table (subsuming the norm2
     scan); every draw is then an O(n) binary search. *)
  let dim = 1 lsl t.n in
  let cumulative = Array.make dim 0.0 in
  let acc = ref 0.0 in
  for i = 0 to dim - 1 do
    acc := !acc +. probability t i;
    cumulative.(i) <- !acc
  done;
  let total = !acc in
  fun rng ->
    let target = Mathkit.Rng.float rng *. total in
    cdf_index cumulative target

let sample t rng = sampler t rng

let scale t c =
  for i = 0 to (1 lsl t.n) - 1 do
    t.re.(i) <- c *. t.re.(i);
    t.im.(i) <- c *. t.im.(i)
  done

let add_scaled dst c src =
  if dst.n <> src.n then invalid_arg "Statevector.add_scaled: size mismatch";
  for i = 0 to (1 lsl dst.n) - 1 do
    dst.re.(i) <- dst.re.(i) +. (c *. src.re.(i));
    dst.im.(i) <- dst.im.(i) +. (c *. src.im.(i))
  done

let zero_like t =
  { n = t.n; re = Array.make (1 lsl t.n) 0.0; im = Array.make (1 lsl t.n) 0.0 }

let excited_population t q =
  check_qubit t q;
  let stride = 1 lsl (t.n - 1 - q) in
  let dim = 1 lsl t.n in
  let acc = ref 0.0 in
  let idx = ref 0 in
  while !idx < dim do
    let block_end = !idx + stride in
    while !idx < block_end do
      let i1 = !idx + stride in
      acc := !acc +. (t.re.(i1) *. t.re.(i1)) +. (t.im.(i1) *. t.im.(i1));
      incr idx
    done;
    idx := !idx + stride
  done;
  !acc

let relax t q ~gamma rng =
  check_qubit t q;
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Statevector.relax: gamma";
  if gamma = 0.0 then false
  else begin
    let p1 = excited_population t q in
    let p_jump = gamma *. p1 in
    let stride = 1 lsl (t.n - 1 - q) in
    let dim = 1 lsl t.n in
    if Mathkit.Rng.bool rng p_jump then begin
      (* Jump: K1 = sqrt(gamma)|0><1|, then renormalize: the |1> amplitudes
         move to |0> and the old |0> amplitudes vanish. *)
      let norm = sqrt p1 in
      let idx = ref 0 in
      while !idx < dim do
        let block_end = !idx + stride in
        while !idx < block_end do
          let i0 = !idx and i1 = !idx + stride in
          t.re.(i0) <- t.re.(i1) /. norm;
          t.im.(i0) <- t.im.(i1) /. norm;
          t.re.(i1) <- 0.0;
          t.im.(i1) <- 0.0;
          incr idx
        done;
        idx := !idx + stride
      done;
      true
    end
    else begin
      (* No jump: K0 = diag(1, sqrt(1-gamma)), renormalized by
         sqrt(1 - gamma*p1). *)
      let damp = sqrt (1.0 -. gamma) in
      let norm = sqrt (1.0 -. p_jump) in
      let idx = ref 0 in
      while !idx < dim do
        let block_end = !idx + stride in
        while !idx < block_end do
          let i0 = !idx and i1 = !idx + stride in
          t.re.(i0) <- t.re.(i0) /. norm;
          t.im.(i0) <- t.im.(i0) /. norm;
          t.re.(i1) <- t.re.(i1) *. damp /. norm;
          t.im.(i1) <- t.im.(i1) *. damp /. norm;
          incr idx
        done;
        idx := !idx + stride
      done;
      false
    end
  end
