(** Dense statevector simulator.

    This is the stand-in for the paper's real hardware: compiled circuits
    execute on a full 2^n amplitude vector. Amplitudes are stored as
    separate unboxed float arrays (real/imaginary) for speed; qubit 0 is
    the highest-order bit of the basis index, matching
    {!Ir.Matrices.circuit_unitary}. Intended for the compacted circuits
    the runner produces (n <= ~14). *)

type t

(** [init n] is |0...0> on [n] qubits (1 <= n <= 24). *)
val init : int -> t

(** [of_arrays ~re ~im] adopts (does not copy) the amplitude arrays as a
    state; both must have the same power-of-two length 2^n with
    1 <= n <= 24. Used by backends that build amplitudes directly (e.g.
    {!Stabilizer.to_statevector}). *)
val of_arrays : re:float array -> im:float array -> t

val n_qubits : t -> int

(** [copy t] is an independent snapshot. *)
val copy : t -> t

(** [amplitude t i] is the amplitude of basis state [i]. *)
val amplitude : t -> int -> Mathkit.Cplx.t

(** [probability t i] is |amplitude|^2 of basis state [i]. *)
val probability : t -> int -> float

(** [probabilities t] is the full probability vector (length 2^n). *)
val probabilities : t -> float array

(** [norm2 t] is the total probability (1 up to rounding). *)
val norm2 : t -> float

(** [apply_one t m q] applies the 2x2 unitary [m] to qubit [q] in place. *)
val apply_one : t -> Mathkit.Matrix.t -> int -> unit

(** [apply_two t m a b] applies the 4x4 unitary [m] to qubits [(a, b)]
    ([a] = high bit of the matrix index) in place. *)
val apply_two : t -> Mathkit.Matrix.t -> int -> int -> unit

(** [apply_cnot t c x] flips qubit [x] where qubit [c] is 1 — a pure
    amplitude permutation, no 4x4 product. *)
val apply_cnot : t -> int -> int -> unit

(** [apply_cz t a b] negates the amplitudes with both qubits 1. *)
val apply_cz : t -> int -> int -> unit

(** [apply_swap t a b] exchanges the two qubits' amplitudes. *)
val apply_swap : t -> int -> int -> unit

(** [apply_iswap t a b] swaps the |01>/|10> amplitudes and multiplies
    each by i. *)
val apply_iswap : t -> int -> int -> unit

(** [apply_diag_one t ~d0 ~d1 q] applies [diag (d0, d1)] (each a
    [(re, im)] pair) to qubit [q]: one complex multiply per
    amplitude. *)
val apply_diag_one : t -> d0:float * float -> d1:float * float -> int -> unit

(** [apply_diag_table t ~qs ~fr ~fi] applies a diagonal operator over
    the wires [qs] (1 to 16 distinct qubits, [qs.(0)] = high bit of the
    table key): amplitude [idx] is multiplied by the complex factor
    [(fr.(key), fi.(key))] where [key] collects the [qs] bits of [idx].
    One table lookup and complex multiply per amplitude regardless of
    how many batched diagonal gates the table folds together. *)
val apply_diag_table :
  t -> qs:int array -> fr:float array -> fi:float array -> unit

(** [apply_gate t g] dispatches a non-measure IR gate; raises
    [Invalid_argument] on [Measure]. *)
val apply_gate : t -> Ir.Gate.t -> unit

(** [run circuit] executes a measure-free prefix view of [circuit] from
    |0...0> (measures are skipped — readout is handled by the caller). *)
val run : Ir.Circuit.t -> t

(** [sample t rng] draws a basis-state index from the state's
    distribution. Rebuilds the O(2^n) cumulative table on {e every}
    call — callers that draw repeatedly must build a {!sampler} once
    instead. *)
val sample : t -> Mathkit.Rng.t -> int
[@@deprecated "build a Statevector.sampler once and reuse it"]

(** [cdf_index cumulative target] is the index of the bucket a draw of
    [target] selects in a non-decreasing cumulative-mass table: the
    smallest [i] with [cumulative.(i) > target], walked back over
    trailing zero-mass buckets when [target] reaches the table's final
    value (rounding can make the draw equal the total). Never selects a
    zero-probability bucket of a well-formed table. Exposed so the
    boundary cases can be tested directly; {!sampler} is the intended
    entry point. *)
val cdf_index : float array -> float -> int

(** [sampler t] precomputes the cumulative probability table once
    (a single O(2^n) pass) and returns a draw function costing O(n) per
    sample — the right tool for repeated sampling from one state. The
    closure snapshots the state: later mutations of [t] are not seen. *)
val sampler : t -> Mathkit.Rng.t -> int

(** [scale t c] multiplies every amplitude by the real scalar [c]
    (used by the density-matrix backend's Kraus sums). *)
val scale : t -> float -> unit

(** [add_scaled dst c src] adds [c] times [src]'s amplitudes into [dst];
    both must have the same qubit count. *)
val add_scaled : t -> float -> t -> unit

(** [zero_like t] is an all-zero amplitude vector of the same shape
    (not a valid quantum state until written to). *)
val zero_like : t -> t

(** [excited_population t q] is the probability of reading 1 on qubit
    [q]. *)
val excited_population : t -> int -> float

(** [relax t q ~gamma rng] applies single-qubit amplitude damping by the
    quantum-jump method: with probability [gamma *
    excited_population t q] the qubit decays to |0> (jump), otherwise the
    no-jump Kraus operator is applied; the state is renormalized either
    way. Returns [true] when a jump occurred. *)
val relax : t -> int -> gamma:float -> Mathkit.Rng.t -> bool
