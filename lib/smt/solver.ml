type literal = int

type t = {
  n_vars : int;
  mutable clauses : literal array list;  (** frozen clause store *)
  mutable n_clauses : int;
  mutable decisions : int;
  mutable scopes : int list;  (** clause-count marks of open assertion scopes *)
}

type outcome = Sat of bool array | Unsat

let create n_vars =
  if n_vars <= 0 then invalid_arg "Solver.create: need at least one variable";
  { n_vars; clauses = []; n_clauses = 0; decisions = 0; scopes = [] }

let n_vars t = t.n_vars
let n_clauses t = t.n_clauses
let decisions t = t.decisions

let check_literal t l =
  let v = abs l in
  if l = 0 || v > t.n_vars then invalid_arg "Solver: literal out of range"

let add_clause t lits =
  List.iter (check_literal t) lits;
  let sorted = List.sort_uniq compare lits in
  if sorted = [] then invalid_arg "Solver.add_clause: empty clause";
  let tautology = List.exists (fun l -> List.mem (-l) sorted) sorted in
  if not tautology then begin
    t.clauses <- Array.of_list sorted :: t.clauses;
    t.n_clauses <- t.n_clauses + 1
  end

(* Assertion scopes: clauses prepend to the store, so a scope is just the
   clause count at [push] time and [pop] drops everything added since. *)
let push t = t.scopes <- t.n_clauses :: t.scopes

let pop t =
  match t.scopes with
  | [] -> invalid_arg "Solver.pop: no open scope"
  | mark :: rest ->
    let rec drop n l =
      if n = 0 then l
      else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
    in
    t.clauses <- drop (t.n_clauses - mark) t.clauses;
    t.n_clauses <- mark;
    t.scopes <- rest

let n_scopes t = List.length t.scopes

let at_most_one t lits =
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
      List.iter (fun l' -> add_clause t [ -l; -l' ]) rest;
      pairs rest
  in
  pairs lits

let exactly_one t lits =
  add_clause t lits;
  at_most_one t lits

(* ---------- DPLL with two-watched literals ---------- *)

(* Literal index: +v -> 2v, -v -> 2v+1. *)
let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

type search = {
  clauses : literal array array;
  (* watches.(lit_index l) = clause indices currently watching l *)
  watches : int list array;
  (* watched.(c) = (i, j): positions within clause c of the two watched
     literals (equal for unit clauses) *)
  watched : (int * int) array;
  (* value.(v) = 0 unassigned, 1 true, -1 false *)
  value : int array;
  mutable trail : literal list;
  (* decision stack: (literal decided, trail length before, tried_both) *)
  mutable stack : (literal * literal list * bool) list;
  mutable queue : literal list;  (** propagation queue *)
}

let lit_value s l =
  let v = s.value.(abs l) in
  if v = 0 then 0 else if (l > 0 && v = 1) || (l < 0 && v = -1) then 1 else -1

let assign s l =
  s.value.(abs l) <- (if l > 0 then 1 else -1);
  s.trail <- l :: s.trail;
  s.queue <- l :: s.queue

(* Propagate until fixpoint. Returns false on conflict. *)
let rec propagate s =
  match s.queue with
  | [] -> true
  | l :: rest ->
    s.queue <- rest;
    (* Clauses watching the falsified literal -l must find a new watch. *)
    let falsified = -l in
    let idx = lit_index falsified in
    let watching = s.watches.(idx) in
    s.watches.(idx) <- [];
    let conflict = ref false in
    let still_watching = ref [] in
    List.iter
      (fun c ->
        if !conflict then still_watching := c :: !still_watching
        else begin
          let clause = s.clauses.(c) in
          let wi, wj = s.watched.(c) in
          (* Position of the falsified watch within the clause. *)
          let pos, other_pos = if clause.(wi) = falsified then (wi, wj) else (wj, wi) in
          let other = clause.(other_pos) in
          if lit_value s other = 1 then
            (* Clause already satisfied; keep watching. *)
            still_watching := c :: !still_watching
          else begin
            (* Find a replacement watch. *)
            let replacement = ref (-1) in
            Array.iteri
              (fun k lit ->
                if !replacement < 0 && k <> pos && k <> other_pos
                   && lit_value s lit >= 0
                then replacement := k)
              clause;
            if !replacement >= 0 then begin
              let k = !replacement in
              s.watched.(c) <- (if pos = wi then (k, wj) else (wi, k));
              s.watches.(lit_index clause.(k)) <- c :: s.watches.(lit_index clause.(k))
            end
            else begin
              (* Unit or conflicting. *)
              still_watching := c :: !still_watching;
              match lit_value s other with
              | 0 -> assign s other
              | -1 -> conflict := true
              | _ -> ()
            end
          end
        end)
      watching;
    s.watches.(idx) <- !still_watching @ s.watches.(idx);
    if !conflict then begin
      s.queue <- [];
      false
    end
    else propagate s

let undo_to s saved_trail =
  let rec pop trail =
    if trail != saved_trail then begin
      match trail with
      | l :: rest ->
        s.value.(abs l) <- 0;
        pop rest
      | [] -> ()
    end
  in
  pop s.trail;
  s.trail <- saved_trail;
  s.queue <- []

let solve ?(assumptions = []) t =
  List.iter (check_literal t) assumptions;
  let clauses = Array.of_list t.clauses in
  let s =
    {
      clauses;
      watches = Array.make ((2 * t.n_vars) + 2) [];
      watched = Array.make (Array.length clauses) (0, 0);
      value = Array.make (t.n_vars + 1) 0;
      trail = [];
      stack = [];
      queue = [];
    }
  in
  t.decisions <- 0;
  (* Install watches: first two literals (or the single one twice). *)
  Array.iteri
    (fun c clause ->
      let i = 0 and j = if Array.length clause > 1 then 1 else 0 in
      s.watched.(c) <- (i, j);
      s.watches.(lit_index clause.(i)) <- c :: s.watches.(lit_index clause.(i));
      if j <> i then
        s.watches.(lit_index clause.(j)) <- c :: s.watches.(lit_index clause.(j)))
    clauses;
  (* Unit clauses and assumptions seed the queue. *)
  let seed_ok =
    Array.for_all
      (fun clause ->
        if Array.length clause = 1 then begin
          match lit_value s clause.(0) with
          | -1 -> false
          | 0 ->
            assign s clause.(0);
            true
          | _ -> true
        end
        else true)
      clauses
    && List.for_all
         (fun l ->
           match lit_value s l with
           | -1 -> false
           | 0 ->
             assign s l;
             true
           | _ -> true)
         assumptions
  in
  if not seed_ok then Unsat
  else if not (propagate s) then Unsat
  else begin
    (* Static decision order: variables as given. *)
    let next_unassigned () =
      let rec scan v = if v > t.n_vars then 0 else if s.value.(v) = 0 then v else scan (v + 1) in
      scan 1
    in
    let rec backtrack () =
      match s.stack with
      | [] -> Unsat
      | (l, saved, tried_both) :: rest ->
        s.stack <- rest;
        undo_to s saved;
        if tried_both then backtrack ()
        else begin
          s.stack <- (-l, saved, true) :: s.stack;
          assign s (-l);
          if propagate s then search () else backtrack ()
        end
    and search () =
      match next_unassigned () with
      | 0 -> Sat (Array.init (t.n_vars + 1) (fun v -> v > 0 && s.value.(v) = 1))
      | v ->
        t.decisions <- t.decisions + 1;
        let saved = s.trail in
        s.stack <- (v, saved, false) :: s.stack;
        assign s v;
        if propagate s then search () else backtrack ()
    in
    search ()
  end
