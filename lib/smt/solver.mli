(** A small CDCL-free SAT solver (DPLL with two-watched-literal unit
    propagation and chronological backtracking).

    The paper formulates qubit mapping as a constrained-optimization
    problem for the Z3 SMT solver; with no Z3 bindings available in this
    environment, this module provides the satisfiability engine for an
    equivalent in-tree encoding (see {!Triq.Mapper_smt}): the max-min
    objective becomes a descending threshold search over SAT instances,
    which is exactly how optimizing SMT solvers realize lexicographic
    max-min objectives.

    Suitable for the assignment-shaped instances the mapper produces
    (hundreds of variables, thousands of clauses). *)

type t

(** Literals are non-zero integers: [v] asserts variable [v] (1-based),
    [-v] its negation — the conventional DIMACS encoding. *)
type literal = int

(** [create n_vars] makes a solver over variables [1..n_vars]. *)
val create : int -> t

(** [add_clause t lits] conjoins a clause. Duplicate literals are merged;
    a clause containing both [v] and [-v] is dropped as a tautology.
    Raises [Invalid_argument] on the empty clause or out-of-range
    literals. *)
val add_clause : t -> literal list -> unit

type outcome =
  | Sat of bool array  (** model indexed by variable (entry 0 unused) *)
  | Unsat

(** [solve ?assumptions t] decides the formula under the optional
    assumption literals. The solver is reusable: state is reset on every
    call, and clauses persist. *)
val solve : ?assumptions:literal list -> t -> outcome

(** [push t] opens an assertion scope: clauses added after the push are
    retracted again by the matching {!pop}. Scopes nest. This is the
    incremental-solving interface the layout engine's descending-threshold
    search uses to reuse the structural (assignment-shaped) clauses across
    thresholds instead of re-encoding the formula per threshold. *)
val push : t -> unit

(** [pop t] closes the innermost assertion scope, dropping every clause
    added since the matching {!push}. Raises [Invalid_argument] when no
    scope is open. *)
val pop : t -> unit

(** [n_scopes t] is the number of currently open assertion scopes. *)
val n_scopes : t -> int

(** [n_vars t] and [n_clauses t] describe the loaded formula. *)
val n_vars : t -> int

val n_clauses : t -> int

(** [decisions t] counts branching decisions of the most recent solve —
    the work metric reported by the mapper ablation. *)
val decisions : t -> int

(** [at_most_one t lits] adds pairwise conflict clauses encoding that at
    most one of [lits] is true. *)
val at_most_one : t -> literal list -> unit

(** [exactly_one t lits] adds [at_most_one] plus the covering clause. *)
val exactly_one : t -> literal list -> unit
