(* Tests for the static-analysis layer: the diagnostic type, every rule in
   the Check catalog (each triggered by a deliberately broken fixture), the
   Scaffold linter, the pass-invariant harness in Pipeline.compile_level, and the
   machine x level x benchmark matrix that must come back clean. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Diag = Analysis.Diag
module Check = Analysis.Check
module Lint = Analysis.Scaffold_lint
module Machines = Device.Machines
module Pipeline = Triq.Pipeline
module Programs = Bench_kit.Programs

let rules ds = List.map (fun d -> d.Diag.rule) ds

let fired name rule ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s" name rule)
    true
    (List.mem rule (rules ds))

let count_rule rule ds = List.length (List.filter (fun d -> d.Diag.rule = rule) ds)

let clean name ds =
  Alcotest.(check (list string)) (name ^ " is clean") [] (rules ds)

(* ---------- Diag basics ---------- *)

let test_diag_render () =
  let d =
    Diag.errorf ~rule:"topo.coupling" ~layer:"routing" ~loc:(Diag.Gate 12)
      "CNOT q3, q7 acts on uncoupled pair"
  in
  Alcotest.(check string) "render"
    "error[topo.coupling] routing @ gate 12: CNOT q3, q7 acts on uncoupled pair"
    (Diag.render d);
  let w = Diag.warnf ~rule:"scf.no-measure" ~layer:"scaffold" "no measure" in
  Alcotest.(check bool) "warning not error" false (Diag.is_error w);
  Alcotest.(check bool) "error is error" true (Diag.is_error d)

let test_diag_json () =
  let d =
    Diag.errorf ~rule:"exec.esp" ~layer:"executable" ~loc:(Diag.Pair (1, 2))
      "esp \"broken\""
  in
  let json = Diag.to_json d in
  (* Keys present and the quote in the message escaped. *)
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (needle ^ " in json") true (contains json needle))
    [ {|"severity":"error"|}; {|"rule":"exec.esp"|}; {|\"broken\"|}; {|"qubits":[1,2]|} ]

let test_diag_order () =
  let e = Diag.errorf ~rule:"b.rule" ~layer:"l" "e" in
  let w = Diag.warnf ~rule:"a.rule" ~layer:"l" "w" in
  (* Errors sort before warnings regardless of rule id. *)
  Alcotest.(check bool) "error first" true (Diag.compare e w < 0);
  Alcotest.(check int) "errors counted" 1 (Diag.error_count [ e; w ])

let test_diag_severity_rank () =
  let e = Diag.errorf ~rule:"z.rule" ~layer:"l" "e" in
  let w = Diag.warnf ~rule:"m.rule" ~layer:"l" "w" in
  let i = Diag.infof ~rule:"a.rule" ~layer:"l" "i" in
  (* Severity dominates rule id: error < warning < info. *)
  let sorted = List.sort Diag.compare [ i; w; e ] in
  Alcotest.(check (list string)) "severity-major order"
    [ "error"; "warning"; "info" ]
    (List.map (fun d -> Diag.severity_name d.Diag.severity) sorted);
  (* Within a severity and rule, location breaks the tie deterministically. *)
  let at l = Diag.errorf ~rule:"r" ~layer:"l" ~loc:l "m" in
  let locs =
    [ Diag.Pair (0, 1); Diag.Qubit 2; Diag.Gate 9; Diag.Gate 1; Diag.Line 4;
      Diag.Nowhere ]
  in
  Alcotest.(check (list string)) "loc tiebreak"
    [ ""; "line 4"; "gate 1"; "gate 9"; "q2"; "q0-q1" ]
    (List.map
       (fun d -> Diag.loc_string d.Diag.loc)
       (List.sort Diag.compare (List.map at locs)));
  Alcotest.(check bool) "info is not an error" false (Diag.has_errors [ i; w ])

let test_diag_loc_string () =
  List.iter
    (fun (loc, want) ->
      Alcotest.(check string) ("loc_string " ^ want) want (Diag.loc_string loc))
    [
      (Diag.Nowhere, "");
      (Diag.Line 7, "line 7");
      (Diag.Gate 0, "gate 0");
      (Diag.Qubit 13, "q13");
      (Diag.Pair (2, 5), "q2-q5");
    ]

let test_diag_json_escaping () =
  let d =
    Diag.make ~severity:Diag.Warning ~rule:"x.y" ~layer:"l"
      "quote \" slash \\ newline \n tab \t bell \007"
  in
  Alcotest.(check string) "escaped json"
    ("{\"severity\":\"warning\",\"rule\":\"x.y\",\"layer\":\"l\",\"loc\":null,"
    ^ "\"message\":\"quote \\\" slash \\\\ newline \\n tab \\t bell \\u0007\"}")
    (Diag.to_json d)

let test_diag_violation_message () =
  let ds =
    [
      Diag.errorf ~rule:"circuit.bounds" ~layer:"evil" ~loc:(Diag.Gate 3)
        "qubit 9 out of range";
      Diag.warnf ~rule:"gate.set" ~layer:"evil" "H not in basis";
    ]
  in
  Alcotest.(check string) "violation message"
    ("pass \"evil\" violated 2 invariant(s):\n\
      \  error[circuit.bounds] evil @ gate 3: qubit 9 out of range\n\
      \  warning[gate.set] evil: H not in basis"
    )
    (Diag.violation_message "evil" ds)

(* ---------- Circuit-shape rules, one broken fixture each ---------- *)

let test_rule_bounds () =
  let ds = Check.qubit_bounds ~n_qubits:3 ~layer:"t" [ G.One (G.X, 5) ] in
  fired "bounds" "circuit.bounds" ds;
  Alcotest.(check int) "once" 1 (count_rule "circuit.bounds" ds);
  clean "in-range" (Check.qubit_bounds ~n_qubits:3 ~layer:"t" [ G.One (G.X, 2) ])

let test_rule_arity () =
  let ds = Check.operand_distinct ~layer:"t" [ G.Two (G.Cnot, 1, 1) ] in
  fired "arity" "circuit.arity" ds;
  clean "distinct" (Check.operand_distinct ~layer:"t" [ G.Two (G.Cnot, 0, 1) ])

let test_rule_flat () =
  let ds = Check.flattened ~layer:"t" [ G.Ccx (0, 1, 2) ] in
  fired "flat" "circuit.flat" ds;
  clean "flat ok" (Check.flattened ~layer:"t" [ G.Two (G.Cnot, 0, 1) ])

let test_rule_gateset () =
  let basis = Machines.ibmq5.Device.Machine.basis in
  let ds = Check.gateset ~layer:"t" basis [ G.One (G.H, 0) ] in
  fired "gateset" "gate.set" ds;
  clean "visible"
    (Check.gateset ~layer:"t" basis [ G.One (G.U1 0.5, 0); G.Two (G.Cnot, 0, 1) ])

let test_rule_coupling () =
  let topo = Machines.ibmq5.Device.Machine.topology in
  let (a, b) = List.hd (Device.Topology.edges topo) in
  let uncoupled =
    (* Find some pair that is not an edge. *)
    let n = Device.Topology.n_qubits topo in
    let found = ref None in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && !found = None && not (Device.Topology.coupled topo i j) then
          found := Some (i, j)
      done
    done;
    Option.get !found
  in
  let u, v = uncoupled in
  fired "coupling" "topo.coupling"
    (Check.coupling ~layer:"t" topo [ G.Two (G.Cnot, u, v) ]);
  clean "coupled" (Check.coupling ~layer:"t" topo [ G.Two (G.Cnot, a, b) ])

let test_rule_direction () =
  let topo = Machines.ibmq5.Device.Machine.topology in
  Alcotest.(check bool) "ibmq5 directed" true (Device.Topology.directed topo);
  let (a, b) = List.hd (Device.Topology.edges topo) in
  fired "direction" "topo.direction"
    (Check.direction ~layer:"t" topo [ G.Two (G.Cnot, b, a) ]);
  clean "right way" (Check.direction ~layer:"t" topo [ G.Two (G.Cnot, a, b) ]);
  (* Undirected topologies never fire the rule. *)
  let agave = Machines.agave.Device.Machine.topology in
  let (x, y) = List.hd (Device.Topology.edges agave) in
  clean "undirected" (Check.direction ~layer:"t" agave [ G.Two (G.Cnot, y, x) ])

let test_rule_measure_once () =
  fired "measure twice" "measure.once"
    (Check.measure_once ~layer:"t" [ G.Measure 0; G.Measure 0 ]);
  clean "measured once" (Check.measure_once ~layer:"t" [ G.Measure 0; G.Measure 1 ])

let test_rule_measure_order () =
  fired "gate after measure" "measure.order"
    (Check.measure_order ~layer:"t" [ G.Measure 0; G.One (G.X, 0) ]);
  clean "measure last"
    (Check.measure_order ~layer:"t" [ G.One (G.X, 0); G.Measure 0 ])

(* ---------- Executable-level rules ---------- *)

let test_rule_placement () =
  fired "out of range" "exec.placement"
    (Check.placement ~layer:"t" ~what:"initial placement" ~n_hardware:3 [| 0; 5 |]);
  fired "not injective" "exec.placement"
    (Check.placement ~layer:"t" ~what:"initial placement" ~n_hardware:3 [| 1; 1 |]);
  clean "permutation"
    (Check.placement ~layer:"t" ~what:"initial placement" ~n_hardware:3 [| 2; 0 |])

let test_rule_readout () =
  let hardware = Circuit.create 3 [ G.One (G.X, 1); G.Measure 1 ] in
  let final_placement = [| 2; 1 |] in
  (* Program qubit 1 sits on hardware 1 and is measured: the good map. *)
  clean "readout ok"
    (Check.readout ~layer:"t" ~measured:[ 1 ] ~final_placement ~hardware [ (1, 1) ]);
  (* Disagrees with the final placement and misses the measured qubit. *)
  fired "readout wrong" "exec.readout"
    (Check.readout ~layer:"t" ~measured:[ 1 ] ~final_placement ~hardware [ (0, 1) ]);
  (* Duplicate program qubit. *)
  fired "readout dup" "exec.readout"
    (Check.readout ~layer:"t" ~final_placement ~hardware [ (1, 1); (1, 1) ])

let test_rule_esp () =
  fired "esp > 1" "exec.esp" (Check.esp_range ~layer:"t" 1.5);
  fired "esp nan" "exec.esp" (Check.esp_range ~layer:"t" Float.nan);
  clean "esp ok" (Check.esp_range ~layer:"t" 0.93)

let test_rule_counters () =
  let basis = Machines.ibmq5.Device.Machine.basis in
  let hardware =
    Circuit.create 2 [ G.One (G.U1 0.3, 0); G.Two (G.Cnot, 0, 1); G.Measure 1 ]
  in
  fired "2q counter" "exec.count-2q" (Check.two_q_counter ~layer:"t" ~hardware 7);
  clean "2q counter ok" (Check.two_q_counter ~layer:"t" ~hardware 1);
  fired "pulse counter" "exec.count-pulse"
    (Check.pulse_counter ~layer:"t" basis ~hardware 99);
  (* Not software-visible: the counter rule defers to gate.set. *)
  clean "pulse skip"
    (Check.pulse_counter ~layer:"t" basis
       ~hardware:(Circuit.create 2 [ G.One (G.H, 0) ])
       99)

(* Tampering with a really-compiled executable is caught by the audit. *)
let test_tampered_executable () =
  let p = Programs.bv 4 in
  let r = Pipeline.compile_level Machines.ibmq5 p.Programs.circuit ~level:Pipeline.OneQOptCN in
  let c = Pipeline.to_compiled r in
  clean "untouched" (Triq.Validate.check_compiled c);
  fired "tampered 2q" "exec.count-2q"
    (Triq.Validate.check_compiled
       { c with Triq.Compiled.two_q_count = c.Triq.Compiled.two_q_count + 1 });
  fired "tampered esp" "exec.esp"
    (Triq.Validate.check_compiled { c with Triq.Compiled.esp = -0.25 });
  fired "tampered readout" "exec.readout"
    (Triq.Validate.check_compiled ~measured:[ 0; 1; 2 ]
       { c with Triq.Compiled.readout_map = [ (0, 4) ] })

(* ---------- Scaffold linter, one broken fixture each ---------- *)

let lint = Lint.lint_source

let test_scf_parse () =
  fired "parse error" "scf.parse" (lint "module main() { qbit q[2]; X(q[0) }")

let test_scf_invalid () =
  let ds = lint "module main() { qbit q[2]; X(q[5]); MeasZ(q[0]); }" in
  fired "out of range index" "scf.invalid" ds

let test_scf_use_after_measure () =
  let ds =
    lint "module main() { qbit q[2]; X(q[0]); MeasZ(q[0]); H(q[0]); }"
  in
  fired "use after measure" "scf.use-after-measure" ds

let test_scf_unused_register () =
  let ds =
    lint "module main() { qbit q[2]; qbit junk[3]; X(q[0]); MeasZ(q[0]); }"
  in
  fired "unused register" "scf.unused-register" ds;
  Alcotest.(check int) "only junk unused" 1 (count_rule "scf.unused-register" ds)

let test_scf_never_gated () =
  let ds = lint "module main() { qbit q[2]; X(q[0]); MeasZ(q[0]); MeasZ(q[1]); }" in
  fired "measured but never gated" "scf.never-gated" ds

let test_scf_no_measure () =
  fired "no measure" "scf.no-measure" (lint "module main() { qbit q[1]; X(q[0]); }")

let test_scf_clean_program () =
  clean "clean scaffold"
    (lint "module main() { qbit q[2]; H(q[0]); CNOT(q[0], q[1]); MeasZ(q[0]); MeasZ(q[1]); }")

(* ---------- Normalized precondition failures ---------- *)

let test_normalized_raises () =
  let message_of f = try ignore (f ()); "" with Invalid_argument m -> m in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let m1 = message_of (fun () -> Triq.Mapper.trivial ~n_program:9 ~n_hardware:5) in
  Alcotest.(check bool) "mapper names rule" true (contains m1 "circuit.bounds");
  Alcotest.(check bool) "mapper names layer" true (contains m1 "mapping");
  let m2 =
    message_of (fun () ->
        Triq.Direction.fix Machines.ibmq5.Device.Machine.topology
          (Circuit.create 5 [ G.Two (G.Cnot, 0, 3) ]))
  in
  (* 0-3 is not an IBMQ5 edge in either direction. *)
  if not (Device.Topology.coupled Machines.ibmq5.Device.Machine.topology 0 3) then begin
    Alcotest.(check bool) "direction names rule" true (contains m2 "topo.coupling");
    Alcotest.(check bool) "direction names pair" true (contains m2 "q0-q3")
  end

(* ---------- The pass-invariant harness over the benchmark matrix ---------- *)

(* Router/peephole ablations as typed configs: the grid iterates
   Config.t values (each selecting a schedule edit), not option tuples. *)
let matrix_configs =
  let open Triq.Pass.Config in
  List.map
    (fun (peephole, router) ->
      {
        default with
        peephole;
        router;
        validate = Triq.Pass.Config.Shape;
        layout = Layout.Config.make ~node_budget:20_000 ();
      })
    [ (false, Default); (true, Default); (false, Lookahead); (true, Lookahead) ]

let test_validated_matrix () =
  (* Every machine x level x fitting benchmark compiles with the validator
     on and the finished executable audits clean. *)
  List.iter
    (fun machine ->
      List.iter
        (fun (p : Programs.t) ->
          if Device.Machine.fits machine p.Programs.circuit then
            List.iter
              (fun level ->
                let config =
                  Triq.Pass.Config.make ~node_budget:20_000 ~validate:Triq.Pass.Config.Shape ()
                in
                let r =
                  Pipeline.compile_schedule ~config machine p.Programs.circuit
                    (Triq.Pass.Schedule.of_level ~config level)
                in
                clean
                  (Printf.sprintf "%s/%s/%s" machine.Device.Machine.name
                     p.Programs.name (Pipeline.level_name level))
                  (Triq.Validate.check_pipeline
                     ~measured:(Circuit.measured_qubits p.Programs.circuit)
                     r))
              Pipeline.all_levels)
        Programs.all)
    Machines.all

let test_validated_ablations () =
  (* Router and peephole ablations stay invariant-clean too (a directed, an
     undirected and the all-to-all machine). *)
  List.iter
    (fun machine ->
      List.iter
        (fun (p : Programs.t) ->
          if Device.Machine.fits machine p.Programs.circuit then
            List.iter
              (fun config ->
                let r =
                  Pipeline.compile_schedule ~config machine p.Programs.circuit
                    (Triq.Pass.Schedule.of_level ~config Pipeline.OneQOptCN)
                in
                clean
                  (Printf.sprintf "%s/%s ablation" machine.Device.Machine.name
                     p.Programs.name)
                  (Triq.Validate.check_pipeline
                     ~measured:(Circuit.measured_qubits p.Programs.circuit)
                     r))
              matrix_configs)
        Programs.all)
    [ Machines.ibmq14; Machines.aspen1; Machines.umdti ]

let test_static_clean_implies_verified () =
  (* Cross-check: executables the static layer calls clean also pass the
     dynamic noiseless-equivalence oracle. *)
  List.iter
    (fun (name, machine) ->
      List.iter
        (fun (p : Programs.t) ->
          if Device.Machine.fits machine p.Programs.circuit then begin
            let measured = Circuit.measured_qubits p.Programs.circuit in
            let r =
              Pipeline.compile_level ~config:(Triq.Pass.Config.make ~validate:Triq.Pass.Config.Shape ())
                machine p.Programs.circuit
                ~level:Pipeline.OneQOptCN
            in
            let c = Pipeline.to_compiled r in
            clean
              (Printf.sprintf "%s on %s static" p.Programs.name name)
              (Triq.Validate.check_compiled ~measured c);
            let v = Sim.Verify.check ~program:p.Programs.circuit ~measured c in
            Alcotest.(check bool)
              (Printf.sprintf "%s on %s dynamically equivalent" p.Programs.name name)
              true v.Sim.Verify.equivalent
          end)
        [ Programs.bv 4; Programs.toffoli; Programs.or_gate; Programs.ghz 4 ])
    [ ("IBMQ5", Machines.ibmq5); ("Agave", Machines.agave); ("UMDTI", Machines.umdti) ]

(* ---------- Catalog completeness ---------- *)

let test_catalogs () =
  (* Catalogued ids are unique across the check and lint catalogs. *)
  let ids = List.map fst Check.catalog @ List.map fst Lint.catalog in
  Alcotest.(check int) "no duplicate rule ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun rule -> Alcotest.(check bool) (rule ^ " catalogued") true (List.mem rule ids))
    [
      "circuit.bounds"; "circuit.arity"; "circuit.flat"; "gate.set"; "topo.coupling";
      "topo.direction"; "measure.once"; "measure.order"; "exec.placement";
      "exec.readout"; "exec.esp"; "exec.count-2q"; "exec.count-pulse"; "scf.parse";
      "scf.invalid"; "scf.use-after-measure"; "scf.unused-register"; "scf.never-gated";
      "scf.no-measure";
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "diag",
        [
          Alcotest.test_case "render" `Quick test_diag_render;
          Alcotest.test_case "json" `Quick test_diag_json;
          Alcotest.test_case "ordering" `Quick test_diag_order;
          Alcotest.test_case "severity rank" `Quick test_diag_severity_rank;
          Alcotest.test_case "loc_string" `Quick test_diag_loc_string;
          Alcotest.test_case "json escaping" `Quick test_diag_json_escaping;
          Alcotest.test_case "violation message" `Quick test_diag_violation_message;
        ] );
      ( "rules",
        [
          Alcotest.test_case "circuit.bounds" `Quick test_rule_bounds;
          Alcotest.test_case "circuit.arity" `Quick test_rule_arity;
          Alcotest.test_case "circuit.flat" `Quick test_rule_flat;
          Alcotest.test_case "gate.set" `Quick test_rule_gateset;
          Alcotest.test_case "topo.coupling" `Quick test_rule_coupling;
          Alcotest.test_case "topo.direction" `Quick test_rule_direction;
          Alcotest.test_case "measure.once" `Quick test_rule_measure_once;
          Alcotest.test_case "measure.order" `Quick test_rule_measure_order;
          Alcotest.test_case "exec.placement" `Quick test_rule_placement;
          Alcotest.test_case "exec.readout" `Quick test_rule_readout;
          Alcotest.test_case "exec.esp" `Quick test_rule_esp;
          Alcotest.test_case "exec.counters" `Quick test_rule_counters;
          Alcotest.test_case "tampered executable" `Quick test_tampered_executable;
        ] );
      ( "scaffold-lint",
        [
          Alcotest.test_case "scf.parse" `Quick test_scf_parse;
          Alcotest.test_case "scf.invalid" `Quick test_scf_invalid;
          Alcotest.test_case "scf.use-after-measure" `Quick test_scf_use_after_measure;
          Alcotest.test_case "scf.unused-register" `Quick test_scf_unused_register;
          Alcotest.test_case "scf.never-gated" `Quick test_scf_never_gated;
          Alcotest.test_case "scf.no-measure" `Quick test_scf_no_measure;
          Alcotest.test_case "clean program" `Quick test_scf_clean_program;
        ] );
      ( "harness",
        [
          Alcotest.test_case "normalized raises" `Quick test_normalized_raises;
          Alcotest.test_case "validated matrix" `Slow test_validated_matrix;
          Alcotest.test_case "validated ablations" `Slow test_validated_ablations;
          Alcotest.test_case "static clean => verified" `Slow
            test_static_clean_implies_verified;
          Alcotest.test_case "catalogs" `Quick test_catalogs;
        ] );
    ]
